package usher_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/vfgopt"
	"github.com/valueflow/usher/internal/workload"
)

// TestPaperFigure2 encodes the paper's Figure 2 program and checks the
// TinyC-style IR shape: address-taken variables (b, c) are accessed
// through allocation sites, loads and stores; top-level variables (a, i)
// become registers.
func TestPaperFigure2(t *testing.T) {
	src := `
int main() {
  int **a;
  int *b;
  int c;
  int i;
  a = &b;
  b = &c;
  c = 10;
  i = c;
  return i;
}`
	prog := usher.MustCompile("fig2.c", src)
	main := prog.FuncByName("main")
	txt := ir.PrintFunc(main)

	// b and c have their addresses taken: they stay as alloc_F objects.
	for _, name := range []string{"@b", "@c"} {
		if !strings.Contains(txt, "alloc_F "+name) {
			t.Errorf("missing allocation for address-taken %s:\n%s", name, txt)
		}
	}
	// a and i are top-level: no allocations survive for them.
	for _, name := range []string{"@a#", "@i#"} {
		if strings.Contains(txt, name) {
			t.Errorf("top-level variable %s not promoted:\n%s", name, txt)
		}
	}
	// The accesses go through stores and loads, as in Figure 2(b).
	if !strings.Contains(txt, "store") || !strings.Contains(txt, "load") {
		t.Errorf("expected load/store form:\n%s", txt)
	}
	res, err := usher.RunNative(prog, usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit.Int != 10 {
		t.Errorf("exit = %d, want 10", res.Exit.Int)
	}
	if len(res.OracleWarnings) != 0 {
		t.Errorf("warnings: %v", res.OracleWarnings)
	}
}

// TestPaperFigure8 encodes Figure 8's value-flow simplification: the MFC
// of z1 = (a1 ⊕ b1) ⊕ (c1 ⊕ d1) has sources {a1, b1, c1, d1}, and Opt I
// propagates their shadows directly to z1, skipping x1 and y1.
func TestPaperFigure8(t *testing.T) {
	src := `
int combine(int a, int b, int c, int d) {
  int x = a + b;
  int y = c + d;
  int z = x + y;
  return z;
}
int main() {
  int *p = malloc(4);
  int r = combine(p[0], p[1], p[2], p[3]);
  if (r) { return 1; }
  return 0;
}`
	prog := usher.MustCompile("fig8.c", src)
	combine := prog.FuncByName("combine")

	// Find z's register (the returned value) and compute its MFC.
	var z *ir.Register
	for _, b := range combine.Blocks {
		for _, in := range b.Instrs {
			if r, ok := in.(*ir.Ret); ok && r.Val != nil {
				z = r.Val.(*ir.Register)
			}
		}
	}
	m := vfgopt.ComputeMFC(z)
	if len(m.Sources) != 4 {
		t.Fatalf("MFC sources = %v, want the 4 parameters", m.Sources)
	}
	if m.Interior != 3 { // x, y, z
		t.Errorf("interior = %d, want 3 (x, y, z)", m.Interior)
	}

	// Opt I must reduce static propagations relative to plain TL+AT.
	plain := usher.MustAnalyze(prog, usher.ConfigUsherTLAT)
	opt := usher.MustAnalyze(prog, usher.ConfigUsherOptI)
	if opt.MFCsSimplified == 0 {
		t.Error("Opt I simplified nothing on the Figure 8 shape")
	}
	if opt.StaticStats().Props >= plain.StaticStats().Props {
		t.Errorf("Opt I props %d not below %d", opt.StaticStats().Props, plain.StaticStats().Props)
	}
}

// TestPaperSection45ParserBug reproduces the evaluation's one real find:
// a use of an undefined value in the parser workload's ppmatch(),
// detected by every analysis configuration (§4.5: "One use of an
// undefined value is detected in the function ppmatch() of 197.parser by
// all the analysis tools").
func TestPaperSection45ParserBug(t *testing.T) {
	prog, err := usher.Compile("parser.c", parserWorkloadSource(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range usher.ExtendedConfigs {
		an := usher.MustAnalyze(prog, cfg)
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			t.Fatalf("[%v] %v", cfg, err)
		}
		found := false
		for _, w := range res.ShadowWarnings {
			if w.Fn == "run_ppmatch" || w.Fn == "ppmatch" {
				found = true
			}
		}
		if !found {
			t.Errorf("[%v] ppmatch bug not reported: %v", cfg, res.ShadowWarnings)
		}
	}
}

func parserWorkloadSource(t *testing.T) string {
	t.Helper()
	p, ok := workload.ByName("parser")
	if !ok {
		t.Fatal("parser workload missing")
	}
	return workload.Generate(p)
}
