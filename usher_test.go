package usher_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher"
)

const facadeSrc = `
int table[8];
int lookup(int i) { return table[i & 7]; }
int main() {
  for (int i = 0; i < 8; i++) { table[i] = i * i; }
  int s = 0;
  for (int i = 0; i < 20; i++) { s += lookup(i); }
  print(s);
  return s & 255;
}
`

func TestCompileAndRunNative(t *testing.T) {
	prog, err := usher.Compile("facade.c", facadeSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := usher.RunNative(prog, usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 {
		t.Fatalf("out = %v", res.Out)
	}
	if len(res.OracleWarnings) != 0 {
		t.Fatalf("warnings on clean program: %v", res.OracleWarnings)
	}
}

func TestCompileError(t *testing.T) {
	_, err := usher.Compile("bad.c", "int main() { return zz; }")
	if err == nil || !strings.Contains(err.Error(), "undefined") {
		t.Fatalf("err = %v, want undefined-symbol error", err)
	}
}

func TestAnalyzeAllConfigs(t *testing.T) {
	prog := usher.MustCompile("facade.c", facadeSrc)
	var exits []int64
	for _, cfg := range usher.Configs {
		an := usher.MustAnalyze(prog, cfg)
		if an.Plan == nil || an.Gamma == nil || an.Graph == nil {
			t.Fatalf("[%v] incomplete analysis", cfg)
		}
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			t.Fatalf("[%v] %v", cfg, err)
		}
		exits = append(exits, res.Exit.Int)
		if len(res.ShadowWarnings) != 0 {
			t.Errorf("[%v] warnings: %v", cfg, res.ShadowWarnings)
		}
	}
	for i := 1; i < len(exits); i++ {
		if exits[i] != exits[0] {
			t.Errorf("exit codes diverge across configs: %v", exits)
		}
	}
}

func TestConfigStrings(t *testing.T) {
	want := map[usher.Config]string{
		usher.ConfigMSan:      "MSan",
		usher.ConfigUsherTL:   "UsherTL",
		usher.ConfigUsherTLAT: "UsherTL+AT",
		usher.ConfigUsherOptI: "UsherOptI",
		usher.ConfigUsherFull: "Usher",
	}
	for cfg, name := range want {
		if cfg.String() != name {
			t.Errorf("%d.String() = %q, want %q", int(cfg), cfg.String(), name)
		}
	}
	if len(usher.Configs) != 5 {
		t.Errorf("Configs has %d entries, want 5", len(usher.Configs))
	}
}

func TestRunOptionsInput(t *testing.T) {
	prog := usher.MustCompile("in.c", `
int main() {
  int a = input();
  int b = input();
  print(a + b);
  return 0;
}`)
	an := usher.MustAnalyze(prog, usher.ConfigUsherFull)
	res, err := an.Run(usher.RunOptions{Input: func(i int) int64 { return int64(10 * (i + 1)) }})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Out) != 1 || res.Out[0] != 30 {
		t.Fatalf("out = %v, want [30]", res.Out)
	}
}

func TestRunArgs(t *testing.T) {
	prog := usher.MustCompile("args.c", `int main(int a, int b) { return a * b; }`)
	res, err := usher.RunNative(prog, usher.RunOptions{Args: []int64{6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Exit.Int != 42 {
		t.Fatalf("exit = %d, want 42", res.Exit.Int)
	}
}

func TestStaticStatsExposed(t *testing.T) {
	prog := usher.MustCompile("facade.c", facadeSrc)
	full := usher.MustAnalyze(prog, usher.ConfigMSan).StaticStats()
	guided := usher.MustAnalyze(prog, usher.ConfigUsherFull).StaticStats()
	if full.Props == 0 || full.Checks == 0 {
		t.Fatalf("MSan stats empty: %+v", full)
	}
	if guided.Props > full.Props || guided.Checks > full.Checks {
		t.Fatalf("guided exceeds full: %+v vs %+v", guided, full)
	}
}

func TestMaxStepsRespected(t *testing.T) {
	prog := usher.MustCompile("spin.c", `int main() { int s = 0; for (int i = 0; i < 1000000; i++) { s += i; } return s; }`)
	_, err := usher.RunNative(prog, usher.RunOptions{MaxSteps: 500})
	if err == nil {
		t.Fatal("expected step-budget error")
	}
}

func TestNoMainIsAnError(t *testing.T) {
	prog := usher.MustCompile("lib.c", `int helper(int x) { return x + 1; }`)
	if _, err := usher.RunNative(prog, usher.RunOptions{}); err == nil {
		t.Fatal("running a program without main must fail")
	}
	// Analysis of a main-less library still works.
	an := usher.MustAnalyze(prog, usher.ConfigUsherFull)
	if an.Plan == nil {
		t.Fatal("analysis failed on a library")
	}
}

func TestWrongArgCount(t *testing.T) {
	prog := usher.MustCompile("m.c", `int main(int a) { return a; }`)
	if _, err := usher.RunNative(prog, usher.RunOptions{}); err == nil {
		t.Fatal("missing main argument must fail")
	}
}

func TestEmptyMain(t *testing.T) {
	prog := usher.MustCompile("m.c", `int main() { return 0; }`)
	for _, cfg := range usher.ExtendedConfigs {
		an := usher.MustAnalyze(prog, cfg)
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			t.Fatalf("[%v] %v", cfg, err)
		}
		if cfg == usher.ConfigMSan {
			continue // full instrumentation relays even `return 0`
		}
		if res.ShadowProps != 0 || res.ShadowChecks != 0 {
			t.Errorf("[%v] empty main executed shadow work: %d/%d",
				cfg, res.ShadowProps, res.ShadowChecks)
		}
	}
}

func TestDeadFunctionsAnalyzed(t *testing.T) {
	// Unreachable functions still get plans and do not disturb main.
	prog := usher.MustCompile("m.c", `
int unused(int *p) { return p[3]; }
int main() { return 0; }`)
	an := usher.MustAnalyze(prog, usher.ConfigUsherFull)
	res, err := an.Run(usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShadowWarnings) != 0 {
		t.Errorf("warnings from dead code: %v", res.ShadowWarnings)
	}
}
