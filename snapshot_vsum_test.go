package usher_test

import (
	"bytes"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/snapshot"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/workload"
)

// These tests pin the VSUM (resolved Γ) snapshot sections end to end.
// Unlike the plan-centric warm-start tests, the snapshots here carry NO
// plans, so the warm session MUST consume the seeded Γ bit vectors to
// answer an analysis — any mismatch between the snapshot's node
// numbering and the rebuilt graph's would surface as a diverging plan.
// (That exact failure mode existed once: phi placement order was seeded
// from map iteration, so VFG node ids varied across compiles of
// identical source. The determinism fixes in memssa/vfg are load-bearing
// for this file.)
//
// Every warm leg decodes the snapshot against its own program
// (snapshot.Read), exactly like the production Save/Load flow: the
// codec is what rebinds the exported points-to locations to the reading
// program's objects. Handing a different program's in-memory Snapshot
// straight to WarmStart would alias objects across programs and is not
// a supported flow.

// vsumSnapshot runs cold resolution only (no plans), snapshots, and
// returns the cold session plus the encoded snapshot bytes.
func vsumSnapshot(t *testing.T, name, src string) (*usher.Session, []byte) {
	t.Helper()
	cold := usher.NewSession(compileWarm(t, name, src))
	if err := cold.PrewarmResolve(1); err != nil {
		t.Fatalf("cold resolve: %v", err)
	}
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if len(snap.Plans) != 0 {
		t.Fatalf("snapshot unexpectedly carries %d plans", len(snap.Plans))
	}
	if len(snap.Gammas) != 2 {
		t.Fatalf("snapshot carries %d Γ entries, want 2 (full + tl)", len(snap.Gammas))
	}
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, cold.Prog, snap); err != nil {
		t.Fatalf("write: %v", err)
	}
	return cold, buf.Bytes()
}

// TestSnapshotGammaSeedsDrivePlans pins that a Γ-only snapshot lets a
// warm session skip both resolve passes while producing plans identical
// to the cold solve for every configuration.
func TestSnapshotGammaSeedsDrivePlans(t *testing.T) {
	p, ok := workload.ByName("equake")
	if !ok {
		t.Fatal("no workload equake")
	}
	src := workload.Generate(p)
	cfgs := usher.ExtendedConfigs

	cold, raw := vsumSnapshot(t, p.Name, src)
	coldFPs := make(map[usher.Config]string, len(cfgs))
	for _, cfg := range cfgs {
		a, err := cold.Analyze(cfg)
		if err != nil {
			t.Fatalf("cold analyze %s: %v", cfg, err)
		}
		coldFPs[cfg] = a.Plan.Fingerprint()
	}

	warmProg := compileWarm(t, p.Name, src)
	snap, err := snapshot.Read(bytes.NewReader(raw), warmProg)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	warmSC := stats.New()
	warm := usher.NewSessionObserved(warmProg, warmSC)
	if _, err := warm.WarmStart(snap); err != nil {
		t.Fatalf("warm start: %v", err)
	}
	for _, cfg := range cfgs {
		a, err := warm.Analyze(cfg)
		if err != nil {
			t.Fatalf("warm analyze %s: %v", cfg, err)
		}
		if got := a.Plan.Fingerprint(); got != coldFPs[cfg] {
			t.Errorf("%s: warm plan built from the seeded Γ diverges from the cold solve", cfg)
		}
	}
	// The seed must have answered the resolve pass for both variants:
	// plan passes ran (no plans in the snapshot), resolve did not.
	runs := passRuns(warmSC)
	if runs["resolve"] != 0 {
		t.Errorf("warm session ran the resolve pass %d times, want 0 (Γ seeded)", runs["resolve"])
	}
	if runs["plan"] == 0 {
		t.Error("warm session ran no plan pass — the test exercised nothing")
	}
}

// TestSnapshotGammaSeedMismatchIgnored pins the defensive re-check: a
// seeded Γ whose node count does not match the rebuilt graph is
// silently discarded and the session falls back to resolving, still
// producing the cold plans.
func TestSnapshotGammaSeedMismatchIgnored(t *testing.T) {
	p, ok := workload.ByName("art")
	if !ok {
		t.Fatal("no workload art")
	}
	src := workload.Generate(p)

	cold, raw := vsumSnapshot(t, p.Name, src)
	a, err := cold.Analyze(usher.ConfigUsherFull)
	if err != nil {
		t.Fatal(err)
	}
	coldFP := a.Plan.Fingerprint()

	warmProg := compileWarm(t, p.Name, src)
	snap, err := snapshot.Read(bytes.NewReader(raw), warmProg)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	// Damage every seed's node count. WarmStart stages them as-is; the
	// store's re-check against the rebuilt graph must reject them.
	for i := range snap.Gammas {
		snap.Gammas[i].Nodes++
	}
	warmSC := stats.New()
	warm := usher.NewSessionObserved(warmProg, warmSC)
	if _, err := warm.WarmStart(snap); err != nil {
		t.Fatalf("warm start: %v", err)
	}
	wa, err := warm.Analyze(usher.ConfigUsherFull)
	if err != nil {
		t.Fatalf("warm analyze: %v", err)
	}
	if wa.Plan.Fingerprint() != coldFP {
		t.Error("plan diverges after rejecting mismatched Γ seeds")
	}
	if runs := passRuns(warmSC); runs["resolve"] == 0 {
		t.Error("mismatched seeds were not rejected: resolve pass never ran")
	}
}
