package usher_test

import (
	"os"
	"strconv"
	"testing"
)

// TestExtendedFuzz runs the soundness property over a much larger seed
// range. Enable with USHER_FUZZ_SEEDS=n; skipped by default to keep the
// normal test run fast.
func TestExtendedFuzz(t *testing.T) {
	env := os.Getenv("USHER_FUZZ_SEEDS")
	if env == "" {
		t.Skip("set USHER_FUZZ_SEEDS=n to run")
	}
	n, err := strconv.ParseInt(env, 10, 64)
	if err != nil {
		t.Fatalf("bad USHER_FUZZ_SEEDS: %v", err)
	}
	for seed := int64(0); seed < n; seed++ {
		if err := checkSeed(seed); err != nil {
			t.Fatal(err)
		}
	}
}
