package usher_test

import (
	"sync"
	"testing"

	"github.com/valueflow/usher"
)

// warmRaceSrc is built so its snapshot carries every kind of warm-start
// payload: several instrumentation-relevant helpers, a heap buffer, a
// conditionally defined value, and — crucially — a variable-indexed
// struct access, which makes the pointer solver collapse the struct to
// field-insensitive. The collapse is recorded in the snapshot and
// REPLAYED BY MUTATING THE IR during WarmStart's import, which is the
// hazard this file's race test exists to pin down.
const warmRaceSrc = `
struct Pair { int lo; int hi; int sum; };

int fill(struct Pair *p, int n) {
  int *f = &p->lo;
  for (int i = 0; i < 3; i++) { f[i] = n + i; }
  return p->sum;
}

int pick(int *buf, int n, int mode) {
  int acc;
  if (mode > 0) { acc = 0; }
  for (int i = 0; i < n; i++) { acc += buf[i]; }
  return acc;
}

int main() {
  struct Pair pairs[4];
  int total = 0;
  for (int i = 0; i < 4; i++) { total += fill(&pairs[i], i); }
  int *heap = malloc(8);
  for (int i = 0; i < 8; i++) { heap[i] = i * 3; }
  total += pick(heap, 8, 1);
  free(heap);
  print(total);
  return 0;
}
`

// TestConcurrentWarmStartAnalyze races Session.WarmStart against
// Session.Analyze on ONE session (run under -race in CI) and pins that
// no interleaving can produce a plan whose fingerprint diverges from
// the cold baseline. The interesting hazard is the pointer import: it
// MUTATES the IR while reconstructing the solved points-to relation
// (replaying object collapses), so it must be serialized with a
// concurrent cold solve inside the store's pointer slot — whichever
// claims the slot first wins outright, and every analysis downstream
// consumes one consistent pointer result either way.
func TestConcurrentWarmStartAnalyze(t *testing.T) {
	cfgs := usher.ExtendedConfigs

	// Cold baseline: solve once, record every fingerprint, snapshot.
	compileRace := func() *usher.Session {
		prog, err := usher.Compile("warmrace.c", warmRaceSrc)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		return usher.NewSession(prog)
	}
	cold := compileRace()
	coldAnalyses, err := cold.AnalyzeAll(cfgs)
	if err != nil {
		t.Fatalf("cold analyze: %v", err)
	}
	coldFPs := make(map[usher.Config]string, len(cfgs))
	for i, cfg := range cfgs {
		coldFPs[cfg] = coldAnalyses[i].Plan.Fingerprint()
	}
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	// Precondition for the test to have teeth: the import must actually
	// mutate the IR, i.e. the snapshot must replay at least one collapse.
	if len(snap.Pointer.Collapsed) == 0 {
		t.Fatal("warmRaceSrc produced no collapsed objects; the import no longer mutates and this race test is inert")
	}

	// Several rounds vary the interleaving: each round is a fresh session
	// with two warm starters racing one analyzer per configuration.
	const rounds = 6
	for round := 0; round < rounds; round++ {
		sess := compileRace()
		var wg sync.WaitGroup

		warmErrs := make([]error, 2)
		for w := range warmErrs {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				_, warmErrs[w] = sess.WarmStart(snap)
			}(w)
		}
		fps := make([]string, len(cfgs))
		analyzeErrs := make([]error, len(cfgs))
		for i, cfg := range cfgs {
			wg.Add(1)
			go func(i int, cfg usher.Config) {
				defer wg.Done()
				a, err := sess.Analyze(cfg)
				if err != nil {
					analyzeErrs[i] = err
					return
				}
				fps[i] = a.Plan.Fingerprint()
			}(i, cfg)
		}
		wg.Wait()

		for w, err := range warmErrs {
			if err != nil {
				t.Fatalf("round %d: warm starter %d: %v", round, w, err)
			}
		}
		for i, cfg := range cfgs {
			if analyzeErrs[i] != nil {
				t.Fatalf("round %d: analyze %s: %v", round, cfg, analyzeErrs[i])
			}
			if fps[i] != coldFPs[cfg] {
				t.Errorf("round %d: %s fingerprint diverged from the cold baseline", round, cfg)
			}
		}
		// The raced session must still be fully usable: a quiet re-analyze
		// of every configuration reproduces the same fingerprints.
		for _, cfg := range cfgs {
			a, err := sess.Analyze(cfg)
			if err != nil {
				t.Fatalf("round %d: re-analyze %s: %v", round, cfg, err)
			}
			if a.Plan.Fingerprint() != coldFPs[cfg] {
				t.Errorf("round %d: %s re-analyze fingerprint diverged", round, cfg)
			}
		}
	}
}
