// Session-caching benchmarks: the cost of analyzing one program under
// the paper's five configurations with and without a shared
// AnalysisSession. The session variant computes the pointer analysis,
// memory SSA and value-flow graphs once per program, so it should be
// severalfold faster while producing identical plans (see session_test.go
// for the equivalence test).
package usher_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/workload"
)

// sessionBenchProg compiles the medium profile once per benchmark run.
func sessionBenchProg(b *testing.B) *ir.Program {
	b.Helper()
	p := mediumProfile()
	src := workload.Generate(p)
	prog, err := usher.Compile(p.Name+".c", src)
	if err != nil {
		b.Fatal(err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkAnalyze5ConfigsStandalone analyzes all five paper
// configurations with independent Analyze calls: every configuration
// re-runs the pointer analysis, memory SSA and VFG construction.
func BenchmarkAnalyze5ConfigsStandalone(b *testing.B) {
	prog := sessionBenchProg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range usher.Configs {
			if an := usher.MustAnalyze(prog, cfg); an.Plan == nil {
				b.Fatal("no plan")
			}
		}
	}
}

// BenchmarkAnalyze5ConfigsSession analyzes all five configurations from
// one session: the config-invariant artifacts are computed once and
// shared, leaving only plan emission (and Opt I/II) per configuration.
func BenchmarkAnalyze5ConfigsSession(b *testing.B) {
	prog := sessionBenchProg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := usher.NewSession(prog)
		for _, cfg := range usher.Configs {
			if an := s.MustAnalyze(cfg); an.Plan == nil {
				b.Fatal("no plan")
			}
		}
	}
}

// BenchmarkSessionBaseArtifacts isolates the cost the session amortizes:
// pointer analysis + memory SSA + full VFG + Γ for one program.
func BenchmarkSessionBaseArtifacts(b *testing.B) {
	prog := sessionBenchProg(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := usher.NewSession(prog)
		s.Graph(false)
	}
}
