package usher_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/workload"
)

// The pipeline A/B harness (modelled on internal/pointer's solver A/B
// test): wiredAnalyze reproduces the pre-pass-manager analysis flow — the
// stages hand-wired in sequence with the old `cfg >=` capability dispatch
// — and every test below demands that the pass-manager Session produces
// exactly the same plans, definedness, and optimization statistics. The
// refactor is behavior-preserving or these fail.

// abResult is the comparable essence of one configuration's analysis.
type abResult struct {
	Fingerprint    string
	Bottom         int
	MFCsSimplified int
	Redirected     int
	ChecksElided   int
}

// wiredAnalyze is the old flow: pointer analysis, memory SSA, VFG build,
// resolve, then Full or Guided emission, dispatched by config ordering
// (the `cfg >=` comparisons the config-capabilities table replaced).
func wiredAnalyze(prog *ir.Program, cfg usher.Config) *usher.Analysis {
	pa := pointer.Analyze(prog)
	mem := memssa.Build(prog, pa)
	topLevelOnly := cfg == usher.ConfigUsherTL
	g := vfg.Build(prog, pa, mem, vfg.Options{TopLevelOnly: topLevelOnly})
	gm := vfg.Resolve(g)
	a := &usher.Analysis{Config: cfg, Prog: prog, Pointer: pa, Mem: mem, Graph: g, Gamma: gm}
	if cfg == usher.ConfigMSan {
		a.Plan = instrument.Full(prog)
		return a
	}
	res := instrument.Guided(cfg.String(), g, gm, instrument.GuidedOptions{
		OptI:       cfg >= usher.ConfigUsherOptI,
		OptII:      cfg >= usher.ConfigUsherFull,
		OptIII:     cfg >= usher.ConfigUsherOptIII,
		MemoryFull: cfg == usher.ConfigUsherTL,
	})
	a.Plan = res.Plan
	a.Gamma = res.Gamma
	a.MFCsSimplified = res.MFCsSimplified
	a.Redirected = res.Redirected
	a.ChecksElided = res.ChecksElided
	return a
}

func summarize(a *usher.Analysis) abResult {
	return abResult{
		Fingerprint:    a.Plan.Fingerprint(),
		Bottom:         a.Gamma.BottomCount(),
		MFCsSimplified: a.MFCsSimplified,
		Redirected:     a.Redirected,
		ChecksElided:   a.ChecksElided,
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func abCompile(t *testing.T, file, src string, level passes.Level) *ir.Program {
	t.Helper()
	prog, err := usher.Compile(file, src)
	if err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	if err := passes.Apply(prog, level); err != nil {
		t.Fatalf("%s: %v", file, err)
	}
	return prog
}

// abCheck compares the wired and pipeline analyses of one program under
// every extended configuration. Compilation is repeated per flow so the
// two sides share nothing.
func abCheck(t *testing.T, name, src string, level passes.Level) {
	t.Helper()
	wiredProg := abCompile(t, name, src, level)
	pipeProg := abCompile(t, name, src, level)
	s := usher.NewSession(pipeProg)
	for _, cfg := range usher.ExtendedConfigs {
		want := summarize(wiredAnalyze(wiredProg, cfg))
		an, err := s.Analyze(cfg)
		if err != nil {
			t.Fatalf("%s/%s: pipeline analyze: %v", name, cfg, err)
		}
		got := summarize(an)
		if got != want {
			t.Errorf("%s/%s: pipeline diverges from hand-wired flow:\nwired:    %+v\npipeline: %+v", name, cfg, want, got)
		}
	}
}

// TestPipelineABCorpus covers the hand-written example corpus, including
// the dynamic warning sites: identical plans must yield identical
// interpreter warnings.
func TestPipelineABCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/*.c")
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src := readFile(t, file)
			abCheck(t, file, src, passes.O0IM)

			// Dynamic A/B: run the wired plan and the pipeline plan and
			// compare the reported warning sites.
			wiredProg := abCompile(t, file, src, passes.O0IM)
			pipeProg := abCompile(t, file, src, passes.O0IM)
			s := usher.NewSession(pipeProg)
			for _, cfg := range usher.ExtendedConfigs {
				wired := wiredAnalyze(wiredProg, cfg)
				wres, err := wired.Run(usher.RunOptions{})
				if err != nil {
					t.Fatalf("%s: wired run: %v", cfg, err)
				}
				pres, err := s.MustAnalyze(cfg).Run(usher.RunOptions{})
				if err != nil {
					t.Fatalf("%s: pipeline run: %v", cfg, err)
				}
				if !reflect.DeepEqual(wres.ShadowWarnings, pres.ShadowWarnings) {
					t.Errorf("%s: warning sites diverge:\nwired:    %v\npipeline: %v", cfg, wres.ShadowWarnings, pres.ShadowWarnings)
				}
			}
		})
	}
}

// TestPipelineABWorkloads covers every synthetic SPEC2000 stand-in
// profile under O0+IM (the level the paper's tables use).
func TestPipelineABWorkloads(t *testing.T) {
	profiles := workload.Profiles
	if testing.Short() {
		profiles = profiles[:3]
	}
	for _, p := range profiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			abCheck(t, p.Name+".c", workload.Generate(p), passes.O0IM)
		})
	}
}

// TestPipelineABRandom sweeps generated programs through both flows.
func TestPipelineABRandom(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 50
	}
	for seed := 0; seed < seeds; seed++ {
		src := randprog.Generate(int64(seed), randprog.DefaultOptions)
		name := fmt.Sprintf("seed%d.c", seed)
		wiredProg, err := usher.Compile(name, src)
		if err != nil {
			continue // generator can emit ill-typed programs; not this test's concern
		}
		if err := passes.Apply(wiredProg, passes.O0IM); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		pipeProg, err := usher.Compile(name, src)
		if err != nil {
			t.Fatalf("seed %d: recompile: %v", seed, err)
		}
		if err := passes.Apply(pipeProg, passes.O0IM); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := usher.NewSession(pipeProg)
		for _, cfg := range usher.ExtendedConfigs {
			want := summarize(wiredAnalyze(wiredProg, cfg))
			an, err := s.Analyze(cfg)
			if err != nil {
				t.Fatalf("seed %d/%s: %v", seed, cfg, err)
			}
			if got := summarize(an); got != want {
				t.Errorf("seed %d/%s: pipeline diverges:\nwired:    %+v\npipeline: %+v", seed, cfg, want, got)
			}
		}
	}
}
