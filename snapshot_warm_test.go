package usher_test

import (
	"errors"
	"os"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/snapshot"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/workload"
)

// These tests pin the snapshot warm-start contract end to end:
//
//   - a warm-started session produces plans with fingerprints identical
//     to the cold solve's, for every configuration the snapshot carries;
//   - the warm session runs NO analysis pass — verified through the
//     per-pass stats counters, which a warm run must not touch for
//     pointer, memssa, vfg, resolve, optII or plan;
//   - stale and corrupted snapshot files surface as errors from the
//     load, and the documented fallback (cold solve) still yields the
//     correct results.

// warmTestSource returns the profile used for the warm-start tests:
// the solver-large MiniC workload, or its small sibling under -short.
func warmTestSource(t *testing.T) (string, string) {
	t.Helper()
	p := workload.LargeProfiles[2] // solver-large
	if testing.Short() {
		p = workload.LargeProfiles[0]
	}
	return p.Name, workload.GenerateLarge(p)
}

func compileWarm(t *testing.T, name, src string) *ir.Program {
	t.Helper()
	prog, err := usher.Compile(name+".c", src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		t.Fatalf("passes: %v", err)
	}
	return prog
}

// passRuns flattens a stats snapshot to pass→total runs.
func passRuns(sc *stats.Collector) map[string]int64 {
	runs := make(map[string]int64)
	for _, ps := range sc.Snapshot() {
		runs[ps.Pass] += ps.Runs
	}
	return runs
}

func TestSnapshotWarmStartSkipsPasses(t *testing.T) {
	name, src := warmTestSource(t)
	dir := t.TempDir()
	cfgs := usher.ExtendedConfigs

	// Cold leg: solve, analyze every configuration, persist.
	coldProg := compileWarm(t, name, src)
	coldSC := stats.New()
	cold := usher.NewSessionObserved(coldProg, coldSC)
	coldAnalyses, err := cold.AnalyzeAll(cfgs)
	if err != nil {
		t.Fatalf("cold analyze: %v", err)
	}
	coldFPs := make(map[usher.Config]string, len(cfgs))
	for i, cfg := range cfgs {
		coldFPs[cfg] = coldAnalyses[i].Plan.Fingerprint()
	}
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := snapshot.Save(dir, coldProg, snap); err != nil {
		t.Fatalf("save: %v", err)
	}
	if runs := passRuns(coldSC); runs["pointer"] != 1 || runs["vfg"] == 0 {
		t.Fatalf("cold run did not exercise the pipeline: %v", runs)
	}

	// Warm leg: fresh compile, load, seed, analyze — no pass may run.
	warmProg := compileWarm(t, name, src)
	loaded, err := snapshot.Load(dir, warmProg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	warmSC := stats.New()
	warm := usher.NewSessionObserved(warmProg, warmSC)
	seeded, err := warm.WarmStart(loaded)
	if err != nil {
		t.Fatalf("warm start: %v", err)
	}
	if want := 1 + len(cfgs) + 2; seeded != want {
		t.Errorf("seeded %d artifacts, want %d (pointer + %d plans + 2 Γs)", seeded, want, len(cfgs))
	}
	for _, cfg := range cfgs {
		a, err := warm.Analyze(cfg)
		if err != nil {
			t.Fatalf("warm analyze %s: %v", cfg, err)
		}
		if got := a.Plan.Fingerprint(); got != coldFPs[cfg] {
			t.Errorf("%s: warm plan fingerprint diverges from cold solve", cfg)
		}
		if a.Pointer == nil {
			t.Errorf("%s: warm analysis carries no pointer result", cfg)
		}
	}
	runs := passRuns(warmSC)
	for _, pass := range []string{"pointer", "memssa", "vfg", "resolve", "optII", "plan"} {
		if runs[pass] != 0 {
			t.Errorf("warm start ran pass %q %d times, want 0 (stats: %v)", pass, runs[pass], runs)
		}
	}
	if runs["snapshot"] != 1 {
		t.Errorf("warm start recorded %d snapshot samples, want 1", runs["snapshot"])
	}
	for _, ps := range warmSC.Snapshot() {
		if ps.Pass == "snapshot" {
			if got, want := ps.Counters["plans_loaded"], int64(len(cfgs)); got != want {
				t.Errorf("snapshot sample counts %d plans loaded, want %d", got, want)
			}
			if got, want := ps.Counters["gammas_loaded"], int64(2); got != want {
				t.Errorf("snapshot sample counts %d Γs loaded, want %d", got, want)
			}
		}
	}
}

// TestSnapshotWarmStartRuns pins that a warm-started analysis is
// actually executable: the interpreter consumes only the plan, and the
// warm plan must drive it to the very same warnings as the cold one.
func TestSnapshotWarmStartRuns(t *testing.T) {
	p, ok := workload.ByName("equake")
	if !ok {
		t.Fatal("no workload equake")
	}
	src := workload.Generate(p)
	dir := t.TempDir()

	runOf := func(a *usher.Analysis) string {
		res, err := a.Run(usher.RunOptions{})
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		out := ""
		for _, w := range res.ShadowWarnings {
			out += w.String() + "\n"
		}
		return out
	}

	coldProg := compileWarm(t, p.Name, src)
	cold := usher.NewSession(coldProg)
	coldA, err := cold.Analyze(usher.ConfigUsherFull)
	if err != nil {
		t.Fatal(err)
	}
	coldW := runOf(coldA)
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Save(dir, coldProg, snap); err != nil {
		t.Fatal(err)
	}

	warmProg := compileWarm(t, p.Name, src)
	loaded, err := snapshot.Load(dir, warmProg)
	if err != nil {
		t.Fatal(err)
	}
	warm := usher.NewSession(warmProg)
	if _, err := warm.WarmStart(loaded); err != nil {
		t.Fatal(err)
	}
	warmA, err := warm.Analyze(usher.ConfigUsherFull)
	if err != nil {
		t.Fatal(err)
	}
	if warmW := runOf(warmA); warmW != coldW {
		t.Errorf("warm run warnings diverge from cold:\ncold:\n%s\nwarm:\n%s", coldW, warmW)
	}
}

// TestSnapshotStaleAndCorruptFallBack pins the failure path a driver
// follows: a stale or corrupted snapshot errors out of the load, and
// the cold solve that follows still produces the correct plan.
func TestSnapshotStaleAndCorruptFallBack(t *testing.T) {
	pa, _ := workload.ByName("equake")
	pb, _ := workload.ByName("art")
	if pa.Name == "" || pb.Name == "" {
		t.Fatal("missing workloads")
	}
	dir := t.TempDir()

	progA := compileWarm(t, pa.Name, workload.Generate(pa))
	sessA := usher.NewSession(progA)
	if _, err := sessA.Analyze(usher.ConfigUsherFull); err != nil {
		t.Fatal(err)
	}
	snapA, err := sessA.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	pathA, err := snapshot.Save(dir, progA, snapA)
	if err != nil {
		t.Fatal(err)
	}

	// Stale: program B's keyed path holds program A's snapshot.
	progB := compileWarm(t, pb.Name, workload.Generate(pb))
	data, err := os.ReadFile(pathA)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snapshot.Path(dir, progB), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Load(dir, progB); !errors.Is(err, snapshot.ErrStale) {
		t.Fatalf("stale load: got %v, want ErrStale", err)
	}

	// Corrupt: damage A's file in place; the load must error (not
	// panic, not succeed), and the cold fallback must still work.
	data[len(data)-10] ^= 0x40
	if err := os.WriteFile(pathA, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := snapshot.Load(dir, progA); err == nil {
		t.Fatal("corrupted snapshot loaded without error")
	}

	coldFP := usher.MustAnalyze(compileWarm(t, pa.Name, workload.Generate(pa)), usher.ConfigUsherFull).Plan.Fingerprint()
	wantFP := snapA.Plans[0].Plan.Fingerprint()
	if coldFP != wantFP {
		t.Errorf("cold fallback plan diverges from the snapshotted one")
	}
}

// TestSnapshotWarmStartWidenedConstructs pins the warm-start contract
// for the widened MiniC surface specifically: a program built around
// string literals, struct assignment by value, varargs and the memory
// intrinsics must round-trip through Save/Load with bit-identical plan
// fingerprints for every configuration, with no analysis pass re-run.
// (The workload-driven warm tests above also contain these constructs,
// but diffuse inside large generated programs; this one fails crisply
// if any single construct stops snapshotting.)
func TestSnapshotWarmStartWidenedConstructs(t *testing.T) {
	const src = `
char greeting[16] = "warm";
int vsum(int n, ...) {
  int t = 0;
  for (int i = 0; i < n; i++) { t += va_arg(i); }
  return t;
}
struct Pair { int x; int y; };
struct Pair mk(int x) { struct Pair p; p.x = x; p.y = x + 1; return p; }
int main() {
  char buf[16];
  memset(buf, 0, 12);
  memcpy(buf, greeting, 4);
  struct Pair a = mk(2);
  struct Pair b = a;
  b.y = vsum(3, a.x, b.x, buf[2]);
  int out = b.y + buf[15];
  print(out);
  return 0;
}
`
	dir := t.TempDir()
	cfgs := usher.ExtendedConfigs

	coldProg := compileWarm(t, "widened", src)
	cold := usher.NewSession(coldProg)
	coldAnalyses, err := cold.AnalyzeAll(cfgs)
	if err != nil {
		t.Fatalf("cold analyze: %v", err)
	}
	snap, err := cold.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	if _, err := snapshot.Save(dir, coldProg, snap); err != nil {
		t.Fatalf("save: %v", err)
	}

	warmProg := compileWarm(t, "widened", src)
	loaded, err := snapshot.Load(dir, warmProg)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	warmSC := stats.New()
	warm := usher.NewSessionObserved(warmProg, warmSC)
	if _, err := warm.WarmStart(loaded); err != nil {
		t.Fatalf("warm start: %v", err)
	}
	for i, cfg := range cfgs {
		a, err := warm.Analyze(cfg)
		if err != nil {
			t.Fatalf("warm analyze %s: %v", cfg, err)
		}
		if got, want := a.Plan.Fingerprint(), coldAnalyses[i].Plan.Fingerprint(); got != want {
			t.Errorf("%s: warm plan fingerprint diverges from cold solve on widened constructs", cfg)
		}
	}
	runs := passRuns(warmSC)
	for _, pass := range []string{"pointer", "memssa", "vfg", "resolve", "optII", "plan"} {
		if runs[pass] != 0 {
			t.Errorf("warm start ran pass %q %d times, want 0", pass, runs[pass])
		}
	}
}
