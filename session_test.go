package usher_test

import (
	"sync"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/workload"
)

func prepProg(t *testing.T, name string) *usher.Session {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	src := workload.Generate(p)
	prog, err := usher.Compile(p.Name+".c", src)
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		t.Fatal(err)
	}
	return usher.NewSession(prog)
}

// TestSessionMatchesStandaloneAnalyze is the sharing-hazard regression
// test: analyzing every configuration from one shared session must
// produce exactly the plans, Γ and optimization statistics of independent
// Analyze calls. A config-specific pass mutating the shared graph or
// gamma would leak into later configurations and break this.
func TestSessionMatchesStandaloneAnalyze(t *testing.T) {
	for _, name := range []string{"mcf", "equake"} {
		s := prepProg(t, name)
		// Deliberately analyze in an order that interleaves the TL and
		// full graphs and runs the mutating-prone opts (I/II/III) before
		// re-analyzing earlier configs.
		order := append(append([]usher.Config{}, usher.ExtendedConfigs...), usher.Configs...)
		for _, cfg := range order {
			got := s.MustAnalyze(cfg)
			want := usher.MustAnalyze(s.Prog, cfg)
			if g, w := got.Plan.Fingerprint(), want.Plan.Fingerprint(); g != w {
				t.Fatalf("%s/%v: session plan diverges from standalone plan:\nsession:\n%s\nstandalone:\n%s", name, cfg, g, w)
			}
			if g, w := got.Gamma.BottomCount(), want.Gamma.BottomCount(); g != w {
				t.Errorf("%s/%v: ⊥ count %d != %d", name, cfg, g, w)
			}
			if got.MFCsSimplified != want.MFCsSimplified || got.Redirected != want.Redirected || got.ChecksElided != want.ChecksElided {
				t.Errorf("%s/%v: opt stats (%d,%d,%d) != (%d,%d,%d)", name, cfg,
					got.MFCsSimplified, got.Redirected, got.ChecksElided,
					want.MFCsSimplified, want.Redirected, want.ChecksElided)
			}
			if got.StaticStats() != want.StaticStats() {
				t.Errorf("%s/%v: static stats %+v != %+v", name, cfg, got.StaticStats(), want.StaticStats())
			}
			if len(got.Graph.Nodes) != len(want.Graph.Nodes) {
				t.Errorf("%s/%v: graph size %d != %d", name, cfg, len(got.Graph.Nodes), len(want.Graph.Nodes))
			}
		}
	}
}

// TestSessionSharesArtifacts asserts the caching actually happens: all
// configurations see the same pointer analysis, and all non-TL
// configurations the same graph instance.
func TestSessionSharesArtifacts(t *testing.T) {
	s := prepProg(t, "mcf")
	msan := s.MustAnalyze(usher.ConfigMSan)
	tl := s.MustAnalyze(usher.ConfigUsherTL)
	full := s.MustAnalyze(usher.ConfigUsherFull)
	opt1 := s.MustAnalyze(usher.ConfigUsherOptI)

	if msan.Pointer != tl.Pointer || tl.Pointer != full.Pointer {
		t.Error("pointer analysis not shared across configurations")
	}
	if msan.Mem != full.Mem {
		t.Error("memory SSA not shared across configurations")
	}
	if msan.Graph != full.Graph || full.Graph != opt1.Graph {
		t.Error("full VFG not shared across non-TL configurations")
	}
	if tl.Graph == full.Graph {
		t.Error("TL configuration must use its own top-level-only graph")
	}
	if !tl.Graph.Opts.TopLevelOnly {
		t.Error("TL graph not built top-level-only")
	}
}

// TestSessionConcurrentAnalyze exercises the shared artifacts from many
// goroutines (run under -race to catch mutation of shared state) and
// checks the results still match a serial session.
func TestSessionConcurrentAnalyze(t *testing.T) {
	s := prepProg(t, "equake")
	serial := prepProg(t, "equake")

	want := make(map[usher.Config]string)
	for _, cfg := range usher.ExtendedConfigs {
		want[cfg] = serial.MustAnalyze(cfg).Plan.Fingerprint()
	}

	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan string, len(usher.ExtendedConfigs)*rounds)
	for r := 0; r < rounds; r++ {
		for _, cfg := range usher.ExtendedConfigs {
			wg.Add(1)
			go func(cfg usher.Config) {
				defer wg.Done()
				an := s.MustAnalyze(cfg)
				if fp := an.Plan.Fingerprint(); fp != want[cfg] {
					errs <- cfg.String()
				}
			}(cfg)
		}
	}
	wg.Wait()
	close(errs)
	for cfg := range errs {
		t.Errorf("concurrent analysis of %s diverged from serial", cfg)
	}
}

// TestSessionRunsExecutable makes sure a session-produced analysis still
// drives the interpreter end to end.
func TestSessionRunsExecutable(t *testing.T) {
	s := prepProg(t, "mcf")
	native, err := usher.RunNative(s.Prog, usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, cfg := range usher.Configs {
		res, err := s.MustAnalyze(cfg).Run(usher.RunOptions{})
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if res.Exit.Int != native.Exit.Int {
			t.Fatalf("%v: exit %d != native %d", cfg, res.Exit.Int, native.Exit.Int)
		}
		if len(res.ShadowViolations) > 0 {
			t.Fatalf("%v: shadow violation: %s", cfg, res.ShadowViolations[0])
		}
	}
}
