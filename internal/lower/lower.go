// Package lower translates a type-checked MiniC AST into IR.
//
// Lowering follows the Clang -O0 discipline: every source variable
// (including parameters) is given a stack slot via an Alloc in the entry
// block and accessed through loads and stores; expression temporaries are
// virtual registers that are assigned exactly once by construction. The
// mem2reg pass in package ssa subsequently promotes the slots of
// non-address-taken scalars to registers, reproducing the paper's O0+IM
// pipeline.
package lower

import (
	"fmt"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/token"
	"github.com/valueflow/usher/internal/types"
)

// bailout is the sentinel panicked by failf to abandon lowering of the
// current function. It never escapes lowerFunc, which recovers it (and
// any unexpected panic) and poisons only the offending function.
type bailout struct{}

// Lower translates prog (already checked, with info) into an IR program.
func Lower(prog *ast.Program, info *types.Info) (*ir.Program, error) {
	lw := &lowerer{
		info:    info,
		irp:     ir.NewProgram(),
		globals: make(map[*types.Symbol]*ir.Object),
		funcs:   make(map[*types.Symbol]*ir.Function),
		strLits: make(map[string]*ir.Object),
	}
	// Globals first: they are address-taken variables, default-initialized
	// (alloc_T in the paper's terms).
	for _, sym := range info.Globals {
		obj := lw.irp.NewObject(sym.Name, sym.Type.Size(), ir.ObjGlobal)
		obj.ZeroInit = true
		if _, isArr := sym.Type.(*types.Array); isArr {
			obj.Collapse()
		}
		if vd, ok := sym.Decl.(*ast.VarDecl); ok && vd.Init != nil {
			switch n := vd.Init.(type) {
			case *ast.NumberLit:
				obj.InitVal = n.Value
			case *ast.StringLit:
				// Cells past the literal (including the NUL) stay zero, per
				// C's static initialization — the object is ZeroInit, so
				// InitVals is clipped to the literal instead of materializing
				// the whole extent (char g[1e9] = "x" must not allocate 8GB
				// at compile time).
				size := len(n.Value)
				if size > obj.Size {
					size = obj.Size
				}
				vals := make([]int64, size)
				for i := range vals {
					vals[i] = int64(n.Value[i])
				}
				obj.InitVals = vals
			}
		}
		lw.irp.Globals = append(lw.irp.Globals, obj)
		lw.globals[sym] = obj
	}
	// Function shells next, so calls can reference them in any order.
	// Prototype-only functions get bodiless shells and behave as external
	// library calls.
	for _, d := range prog.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok {
			continue
		}
		sym := info.Symbols[fd]
		if sym == nil {
			continue
		}
		if _, exists := lw.funcs[sym]; exists {
			if fd.Body != nil {
				lw.funcs[sym].HasBody = true
			}
			continue
		}
		fn := &ir.Function{Name: fd.Name, Pos: fd.Pos(), HasBody: fd.Body != nil}
		lw.irp.AddFunc(fn)
		lw.funcs[sym] = fn
	}
	for _, fd := range info.Funcs {
		lw.lowerFunc(fd)
	}
	if err := lw.diags.Err(); err != nil {
		return nil, err
	}
	for _, fn := range lw.irp.Funcs {
		pruneUnreachable(fn)
		ir.ComputeCFG(fn)
	}
	if err := ir.Verify(lw.irp); err != nil {
		return nil, fmt.Errorf("lowering produced invalid IR: %w", err)
	}
	return lw.irp, nil
}

type loopCtx struct {
	breakTo    *ir.Block
	continueTo *ir.Block
}

type lowerer struct {
	info    *types.Info
	irp     *ir.Program
	diags   diag.List
	globals map[*types.Symbol]*ir.Object
	funcs   map[*types.Symbol]*ir.Function
	// strLits dedups string-literal objects by content; every literal is a
	// read-only, fully-defined global.
	strLits map[string]*ir.Object

	// per-function state
	fn    *ir.Function
	cur   *ir.Block
	entry *ir.Block
	slots map[*types.Symbol]*ir.Register // symbol -> alloca address register
	loops []loopCtx
	// sret is the hidden first parameter carrying the caller-allocated
	// result slot of a struct-returning function; retSize is its extent.
	sret    *ir.Register
	retSize int
	// vaParam is the hidden trailing parameter of a variadic function: the
	// address of the caller-packed array of extra int arguments.
	vaParam *ir.Register
	isVoid  bool
}

// stringObject interns a string literal as a global object whose cells are
// the literal's bytes plus a NUL terminator, all defined at program start.
func (lw *lowerer) stringObject(s string) *ir.Object {
	if obj, ok := lw.strLits[s]; ok {
		return obj
	}
	size := len(s) + 1
	obj := lw.irp.NewObject(fmt.Sprintf(".str%d", len(lw.strLits)), size, ir.ObjGlobal)
	obj.ZeroInit = true
	obj.Collapse() // array-like, indexed dynamically
	vals := make([]int64, size)
	for i := 0; i < len(s); i++ {
		vals[i] = int64(s[i])
	}
	obj.InitVals = vals
	lw.irp.Globals = append(lw.irp.Globals, obj)
	lw.strLits[s] = obj
	return obj
}

// failf records a lowering diagnostic and abandons the current function
// via a bailout panic, which lowerFunc recovers.
func (lw *lowerer) failf(pos token.Pos, format string, args ...any) {
	lw.diags.Addf(diag.PhaseLower, pos, format, args...)
	panic(bailout{})
}

func (lw *lowerer) emit(in ir.Instr, pos token.Pos) {
	type positioned interface{ SetPos(token.Pos) }
	if p, ok := in.(positioned); ok {
		p.SetPos(pos)
	}
	lw.cur.Append(in)
}

// terminated reports whether the current block already ends control flow.
func (lw *lowerer) terminated() bool { return lw.cur.Terminator() != nil }

// startBlock switches emission to b.
func (lw *lowerer) startBlock(b *ir.Block) { lw.cur = b }

// allocaAtEntry creates a stack slot in the entry block, before the
// entry's terminator if one exists (it never does during lowering of the
// body, because allocas are created first).
func (lw *lowerer) allocaAtEntry(name string, size int, pos token.Pos) (*ir.Register, *ir.Object) {
	obj := lw.irp.NewObject(name, size, ir.ObjStack)
	obj.Fn = lw.fn
	addr := lw.fn.NewReg(name + ".addr")
	a := ir.NewAlloc(addr, obj)
	a.SetPos(pos)
	lw.entry.Append(a)
	return addr, obj
}

// lowerFunc lowers one function body. Lowering errors — a failf bailout
// or an unexpected panic — poison only this function: its partial body
// is dropped and the remaining functions still lower, so one bad
// function yields one diagnostic instead of aborting the program.
func (lw *lowerer) lowerFunc(fd *ast.FuncDecl) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if _, ok := r.(bailout); !ok {
			lw.diags.Add(diag.Recovered(diag.PhaseLower, r))
		}
		if lw.fn != nil {
			lw.fn.Blocks = nil
			lw.fn.HasBody = false
		}
	}()
	sym := lw.info.Symbols[fd]
	fn := lw.funcs[sym]
	lw.fn = fn // set before anything can panic, so recovery poisons this fn
	ft := sym.Type.(*types.Func)
	lw.slots = make(map[*types.Symbol]*ir.Register)
	lw.loops = nil
	lw.isVoid = ft.Ret == types.Void
	lw.sret = nil
	lw.retSize = 0
	lw.vaParam = nil

	lw.entry = fn.NewBlock("entry")
	body := fn.NewBlock("body")
	lw.startBlock(body)

	// Struct-returning functions take a hidden first parameter: the address
	// of the caller-allocated result slot. `return e;` copies into it.
	if st, ok := ft.Ret.(*types.Struct); ok {
		lw.sret = fn.NewReg("sret")
		fn.Params = append(fn.Params, lw.sret)
		lw.retSize = st.Size()
	}

	// Parameters: spill each into a fresh slot, Clang-style. The slot is
	// initialized by the incoming value, so the store marks it defined.
	// By-value struct parameters pass the address of a caller-side copy
	// instead; that temporary is the parameter's storage, so no spill (and
	// no callee copy) is needed.
	psyms := lw.info.ParamSymbols[fd]
	for i, ps := range psyms {
		preg := fn.NewReg(ps.Name)
		fn.Params = append(fn.Params, preg)
		if _, isStruct := ps.Type.(*types.Struct); isStruct {
			lw.slots[ps] = preg
			continue
		}
		addr, _ := lw.allocaAtEntry(ps.Name, 1, fd.Params[i].Pos)
		lw.emit(ir.NewStore(addr, preg), fd.Params[i].Pos)
		lw.slots[ps] = addr
	}
	// Variadic functions take a hidden trailing parameter: the address of
	// the caller-packed extras array, read by va_arg.
	if ft.Variadic {
		lw.vaParam = fn.NewReg("va")
		fn.Params = append(fn.Params, lw.vaParam)
	}

	lw.lowerBlockStmts(fd.Body)

	if !lw.terminated() {
		lw.emitImplicitReturn(fd.Pos())
	}
	// The entry block falls through to the body.
	lw.entry.Append(ir.NewJump(body))
	// Entry sits at position 0 (it was created first, so it is).
}

// emitImplicitReturn handles control reaching the end of a function body.
// For void functions this is a plain return. For value-returning functions
// the C-level result is an undefined value, which is modelled faithfully
// as a load from a fresh uninitialized cell so the analysis and runtime
// see it as any other use of undefined memory.
func (lw *lowerer) emitImplicitReturn(pos token.Pos) {
	if lw.isVoid || lw.sret != nil {
		// For a struct-returning function the caller's result slot simply
		// stays undefined, like any other missed initialization.
		lw.emit(ir.NewRet(nil), pos)
		return
	}
	addr, _ := lw.allocaAtEntry("undef.ret", 1, pos)
	v := lw.fn.NewReg("")
	lw.emit(ir.NewLoad(v, addr), pos)
	lw.emit(ir.NewRet(v), pos)
}

func (lw *lowerer) lowerBlockStmts(b *ast.Block) {
	for _, s := range b.Stmts {
		if lw.terminated() {
			// Unreachable statements still lower (they may declare labels
			// in richer languages); here we start a dead block that
			// pruneUnreachable removes.
			dead := lw.fn.NewBlock("dead")
			lw.startBlock(dead)
		}
		lw.lowerStmt(s)
	}
}

func (lw *lowerer) lowerStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		lw.lowerBlockStmts(s)
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		lw.lowerLocalDecl(s.Decl)
	case *ast.ExprStmt:
		lw.rvalueOrVoid(s.X)
	case *ast.IfStmt:
		lw.lowerIf(s)
	case *ast.WhileStmt:
		lw.lowerWhile(s)
	case *ast.ForStmt:
		lw.lowerFor(s)
	case *ast.ReturnStmt:
		if s.X != nil && lw.sret != nil {
			src := lw.aggrAddr(s.X)
			lw.emit(ir.NewMemCopy(lw.sret, src, ir.IntConst(int64(lw.retSize))), s.Pos())
			lw.emit(ir.NewRet(nil), s.Pos())
		} else if s.X != nil {
			v := lw.rvalue(s.X)
			lw.emit(ir.NewRet(v), s.Pos())
		} else {
			lw.emit(ir.NewRet(nil), s.Pos())
		}
	case *ast.BreakStmt:
		if len(lw.loops) == 0 {
			lw.failf(s.Pos(), "break outside loop")
		}
		lw.emit(ir.NewJump(lw.loops[len(lw.loops)-1].breakTo), s.Pos())
	case *ast.ContinueStmt:
		if len(lw.loops) == 0 {
			lw.failf(s.Pos(), "continue outside loop")
		}
		lw.emit(ir.NewJump(lw.loops[len(lw.loops)-1].continueTo), s.Pos())
	default:
		lw.failf(s.Pos(), "unknown statement %T", s)
	}
}

func (lw *lowerer) lowerLocalDecl(d *ast.VarDecl) {
	sym := lw.info.Symbols[d]
	addr, obj := lw.allocaAtEntry(sym.Name, sym.Type.Size(), d.Pos())
	if _, isArr := sym.Type.(*types.Array); isArr {
		obj.Collapse()
	}
	lw.slots[sym] = addr
	if d.Init == nil {
		return
	}
	switch t := sym.Type.(type) {
	case *types.Array:
		// The checker only admits string-literal array initializers. Copy
		// the literal (with its NUL if it fits) and zero-fill the rest,
		// exercising both memory intrinsics.
		sl, ok := d.Init.(*ast.StringLit)
		if !ok {
			lw.failf(d.Pos(), "array initializer for %s is not a string literal", d.Name)
		}
		lit := &ir.GlobalAddr{Obj: lw.stringObject(sl.Value)}
		n := len(sl.Value) + 1
		if n > t.Len {
			n = t.Len
		}
		lw.emit(ir.NewMemCopy(addr, lit, ir.IntConst(int64(n))), d.Pos())
		if rest := t.Len - n; rest > 0 {
			restAddr := lw.fn.NewReg("")
			lw.emit(ir.NewIndexAddr(restAddr, addr, ir.IntConst(int64(n))), d.Pos())
			lw.emit(ir.NewMemSet(restAddr, ir.IntConst(0), ir.IntConst(int64(rest))), d.Pos())
		}
	case *types.Struct:
		src := lw.aggrAddr(d.Init)
		lw.emit(ir.NewMemCopy(addr, src, ir.IntConst(int64(t.Size()))), d.Pos())
	default:
		v := lw.rvalue(d.Init)
		lw.emit(ir.NewStore(addr, v), d.Pos())
	}
}

func (lw *lowerer) lowerIf(s *ast.IfStmt) {
	cond := lw.rvalue(s.Cond)
	then := lw.fn.NewBlock("if.then")
	done := lw.fn.NewBlock("if.done")
	els := done
	if s.Else != nil {
		els = lw.fn.NewBlock("if.else")
	}
	lw.emit(ir.NewBranch(cond, then, els), s.Pos())

	lw.startBlock(then)
	lw.lowerStmt(s.Then)
	if !lw.terminated() {
		lw.emit(ir.NewJump(done), s.Pos())
	}
	if s.Else != nil {
		lw.startBlock(els)
		lw.lowerStmt(s.Else)
		if !lw.terminated() {
			lw.emit(ir.NewJump(done), s.Pos())
		}
	}
	lw.startBlock(done)
}

func (lw *lowerer) lowerWhile(s *ast.WhileStmt) {
	condB := lw.fn.NewBlock("while.cond")
	bodyB := lw.fn.NewBlock("while.body")
	doneB := lw.fn.NewBlock("while.done")
	lw.emit(ir.NewJump(condB), s.Pos())

	lw.startBlock(condB)
	cond := lw.rvalue(s.Cond)
	lw.emit(ir.NewBranch(cond, bodyB, doneB), s.Pos())

	lw.loops = append(lw.loops, loopCtx{breakTo: doneB, continueTo: condB})
	lw.startBlock(bodyB)
	lw.lowerStmt(s.Body)
	if !lw.terminated() {
		lw.emit(ir.NewJump(condB), s.Pos())
	}
	lw.loops = lw.loops[:len(lw.loops)-1]
	lw.startBlock(doneB)
}

func (lw *lowerer) lowerFor(s *ast.ForStmt) {
	if s.Init != nil {
		lw.lowerStmt(s.Init)
	}
	condB := lw.fn.NewBlock("for.cond")
	bodyB := lw.fn.NewBlock("for.body")
	postB := lw.fn.NewBlock("for.post")
	doneB := lw.fn.NewBlock("for.done")
	lw.emit(ir.NewJump(condB), s.Pos())

	lw.startBlock(condB)
	if s.Cond != nil {
		cond := lw.rvalue(s.Cond)
		lw.emit(ir.NewBranch(cond, bodyB, doneB), s.Pos())
	} else {
		lw.emit(ir.NewJump(bodyB), s.Pos())
	}

	lw.loops = append(lw.loops, loopCtx{breakTo: doneB, continueTo: postB})
	lw.startBlock(bodyB)
	lw.lowerStmt(s.Body)
	if !lw.terminated() {
		lw.emit(ir.NewJump(postB), s.Pos())
	}
	lw.loops = lw.loops[:len(lw.loops)-1]

	lw.startBlock(postB)
	if s.Post != nil {
		lw.rvalueOrVoid(s.Post)
	}
	lw.emit(ir.NewJump(condB), s.Pos())
	lw.startBlock(doneB)
}

// pruneUnreachable removes blocks not reachable from the entry block.
func pruneUnreachable(fn *ir.Function) {
	if len(fn.Blocks) == 0 {
		return
	}
	reach := make(map[*ir.Block]bool)
	var stack []*ir.Block
	stack = append(stack, fn.Blocks[0])
	reach[fn.Blocks[0]] = true
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		var succs []*ir.Block
		switch t := b.Terminator().(type) {
		case *ir.Jump:
			succs = []*ir.Block{t.Target}
		case *ir.Branch:
			succs = []*ir.Block{t.Then, t.Else}
		}
		for _, s := range succs {
			if !reach[s] {
				reach[s] = true
				stack = append(stack, s)
			}
		}
	}
	var kept []*ir.Block
	for _, b := range fn.Blocks {
		if reach[b] {
			kept = append(kept, b)
		}
	}
	fn.Blocks = kept
}
