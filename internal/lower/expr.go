package lower

import (
	"fmt"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/token"
	"github.com/valueflow/usher/internal/types"
)

// maxFieldSensitiveCells bounds the size of heap objects modelled
// field-sensitively. Struct-shaped allocations stay well below it; any
// larger constant extent behaves like an array and is collapsed.
const maxFieldSensitiveCells = 4096

// rvalueOrVoid lowers an expression in statement position, tolerating void
// calls.
func (lw *lowerer) rvalueOrVoid(e ast.Expr) {
	if call, ok := e.(*ast.Call); ok {
		if lw.info.TypeOf(call) == types.Void {
			lw.lowerCall(call, false)
			return
		}
	}
	lw.rvalue(e)
}

// rvalue lowers e to a single-cell value.
func (lw *lowerer) rvalue(e ast.Expr) ir.Value {
	switch e := e.(type) {
	case *ast.NumberLit:
		return ir.IntConst(e.Value)
	case *ast.StringLit:
		// Array-to-pointer decay of the interned literal object.
		return &ir.GlobalAddr{Obj: lw.stringObject(e.Value)}
	case *ast.Ident:
		sym := lw.info.Uses[e]
		switch sym.Kind {
		case types.SymFunc:
			return &ir.FuncValue{Fn: lw.funcs[sym]}
		case types.SymBuiltin:
			lw.failf(e.Pos(), "builtin %s used as a value", sym.Name)
		}
		if _, isArr := sym.Type.(*types.Array); isArr {
			return lw.lvalue(e) // array-to-pointer decay
		}
		addr := lw.lvalue(e)
		dst := lw.fn.NewReg(sym.Name)
		lw.emit(ir.NewLoad(dst, addr), e.Pos())
		return dst
	case *ast.Unary:
		return lw.lowerUnary(e)
	case *ast.Binary:
		return lw.lowerBinary(e)
	case *ast.Assign:
		if _, isStruct := lw.info.TypeOf(e.LHS).(*types.Struct); isStruct {
			return lw.lowerStructAssign(e)
		}
		addr := lw.lvalue(e.LHS)
		v := lw.rvalue(e.RHS)
		lw.emit(ir.NewStore(addr, v), e.Pos())
		return v
	case *ast.Call:
		return lw.lowerCall(e, true)
	case *ast.Index, *ast.FieldAccess:
		if _, isArr := lw.info.TypeOf(e).(*types.Array); isArr {
			return lw.lvalue(e) // decay of aggregate-typed element
		}
		addr := lw.lvalue(e)
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewLoad(dst, addr), e.Pos())
		return dst
	case *ast.SizeofExpr:
		// The checker validated the type; recompute its size here.
		t := lw.resolveSizeType(e.T)
		return ir.IntConst(int64(t.Size()))
	}
	lw.failf(e.Pos(), "unknown rvalue %T", e)
	return nil
}

// resolveSizeType resolves a type expression for sizeof. It mirrors the
// checker's resolution but without error accumulation.
func (lw *lowerer) resolveSizeType(te ast.TypeExpr) types.Type {
	switch te := te.(type) {
	case *ast.IntTypeExpr:
		return types.Int
	case *ast.CharTypeExpr:
		return types.Int
	case *ast.VoidTypeExpr:
		return types.Void
	case *ast.StructTypeExpr:
		if st, ok := lw.info.Structs[te.Name]; ok {
			return st
		}
		return types.Int
	case *ast.PointerTypeExpr:
		return &types.Pointer{Elem: lw.resolveSizeType(te.Elem)}
	case *ast.ArrayTypeExpr:
		return &types.Array{Elem: lw.resolveSizeType(te.Elem), Len: int(te.Len)}
	case *ast.FuncTypeExpr:
		return &types.Func{}
	}
	return types.Int
}

// lowerStructAssign copies the whole struct value with a MemCopy and
// returns the destination address (used by chained struct assignments).
func (lw *lowerer) lowerStructAssign(e *ast.Assign) ir.Value {
	st := lw.info.TypeOf(e.LHS).(*types.Struct)
	dst := lw.lvalue(e.LHS)
	src := lw.aggrAddr(e.RHS)
	lw.emit(ir.NewMemCopy(dst, src, ir.IntConst(int64(st.Size()))), e.Pos())
	return dst
}

// aggrAddr lowers an aggregate-typed expression to the address of its
// storage. Struct-valued calls yield the hidden-result temporary; struct
// assignments yield their destination; everything else is an lvalue.
func (lw *lowerer) aggrAddr(e ast.Expr) ir.Value {
	switch e := e.(type) {
	case *ast.Assign:
		if _, isStruct := lw.info.TypeOf(e.LHS).(*types.Struct); isStruct {
			return lw.lowerStructAssign(e)
		}
	case *ast.Call:
		return lw.lowerCall(e, true)
	case *ast.StringLit:
		return &ir.GlobalAddr{Obj: lw.stringObject(e.Value)}
	}
	return lw.lvalue(e)
}

// lvalue lowers e to the address of the denoted cell.
func (lw *lowerer) lvalue(e ast.Expr) ir.Value {
	switch e := e.(type) {
	case *ast.StringLit:
		return &ir.GlobalAddr{Obj: lw.stringObject(e.Value)}
	case *ast.Ident:
		sym := lw.info.Uses[e]
		switch sym.Kind {
		case types.SymGlobal:
			return &ir.GlobalAddr{Obj: lw.globals[sym]}
		case types.SymLocal, types.SymParam:
			return lw.slots[sym]
		}
		lw.failf(e.Pos(), "%s is not an lvalue", sym.Name)
	case *ast.Unary:
		if e.Op == token.STAR {
			return lw.rvalue(e.X)
		}
	case *ast.Index:
		xt := lw.info.TypeOf(e.X)
		var base ir.Value
		if _, isArr := xt.(*types.Array); isArr {
			base = lw.lvalue(e.X) // address of the array start
		} else {
			base = lw.rvalue(e.X)
		}
		idx := lw.rvalue(e.Idx)
		// Scale the index by the element size for aggregate elements.
		elemSize := 1
		switch xt := xt.(type) {
		case *types.Array:
			elemSize = xt.Elem.Size()
		case *types.Pointer:
			elemSize = xt.Elem.Size()
		}
		if elemSize > 1 {
			scaled := lw.fn.NewReg("")
			lw.emit(ir.NewBinOp(scaled, ir.OpMul, idx, ir.IntConst(int64(elemSize))), e.Pos())
			idx = scaled
		}
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewIndexAddr(dst, base, idx), e.Pos())
		return dst
	case *ast.FieldAccess:
		var base ir.Value
		var st *types.Struct
		if e.Arrow {
			base = lw.rvalue(e.X)
			pt := lw.info.TypeOf(e.X).(*types.Pointer)
			st = pt.Elem.(*types.Struct)
		} else {
			base = lw.lvalue(e.X)
			st = lw.info.TypeOf(e.X).(*types.Struct)
		}
		f := st.Field(e.Name)
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewFieldAddr(dst, base, f.Offset), e.Pos())
		return dst
	}
	lw.failf(e.Pos(), "unknown lvalue %T", e)
	return nil
}

func (lw *lowerer) lowerUnary(e *ast.Unary) ir.Value {
	switch e.Op {
	case token.STAR:
		addr := lw.rvalue(e.X)
		if _, isArr := lw.info.TypeOf(e).(*types.Array); isArr {
			return addr
		}
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewLoad(dst, addr), e.Pos())
		return dst
	case token.AMP:
		return lw.lvalue(e.X)
	case token.MINUS:
		x := lw.rvalue(e.X)
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewBinOp(dst, ir.OpSub, ir.IntConst(0), x), e.Pos())
		return dst
	case token.NOT:
		x := lw.rvalue(e.X)
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewBinOp(dst, ir.OpEq, x, ir.IntConst(0)), e.Pos())
		return dst
	case token.TILDE:
		x := lw.rvalue(e.X)
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewBinOp(dst, ir.OpXor, x, ir.IntConst(-1)), e.Pos())
		return dst
	}
	lw.failf(e.Pos(), "unknown unary %s", e.Op)
	return nil
}

var binOps = map[token.Kind]ir.Op{
	token.PLUS: ir.OpAdd, token.MINUS: ir.OpSub, token.STAR: ir.OpMul,
	token.SLASH: ir.OpDiv, token.PERCENT: ir.OpRem, token.SHL: ir.OpShl,
	token.SHR: ir.OpShr, token.AMP: ir.OpAnd, token.PIPE: ir.OpOr,
	token.CARET: ir.OpXor, token.EQ: ir.OpEq, token.NEQ: ir.OpNe,
	token.LT: ir.OpLt, token.LEQ: ir.OpLe, token.GT: ir.OpGt,
	token.GEQ: ir.OpGe,
}

func (lw *lowerer) lowerBinary(e *ast.Binary) ir.Value {
	switch e.Op {
	case token.LAND, token.LOR:
		return lw.lowerShortCircuit(e)
	}
	// Pointer arithmetic becomes IndexAddr so the pointer analysis sees it.
	xt, yt := lw.decayedType(e.X), lw.decayedType(e.Y)
	if e.Op == token.PLUS || e.Op == token.MINUS {
		if types.IsPointer(xt) && types.IsInt(yt) {
			base := lw.rvalue(e.X)
			idx := lw.rvalue(e.Y)
			if e.Op == token.MINUS {
				neg := lw.fn.NewReg("")
				lw.emit(ir.NewBinOp(neg, ir.OpSub, ir.IntConst(0), idx), e.Pos())
				idx = neg
			}
			dst := lw.fn.NewReg("")
			lw.emit(ir.NewIndexAddr(dst, base, idx), e.Pos())
			return dst
		}
		if e.Op == token.PLUS && types.IsInt(xt) && types.IsPointer(yt) {
			idx := lw.rvalue(e.X)
			base := lw.rvalue(e.Y)
			dst := lw.fn.NewReg("")
			lw.emit(ir.NewIndexAddr(dst, base, idx), e.Pos())
			return dst
		}
	}
	x := lw.rvalue(e.X)
	y := lw.rvalue(e.Y)
	dst := lw.fn.NewReg("")
	lw.emit(ir.NewBinOp(dst, binOps[e.Op], x, y), e.Pos())
	return dst
}

func (lw *lowerer) decayedType(e ast.Expr) types.Type {
	t := lw.info.TypeOf(e)
	if a, ok := t.(*types.Array); ok {
		return &types.Pointer{Elem: a.Elem}
	}
	return t
}

// lowerShortCircuit lowers && and || with control flow, materializing the
// result through a stack slot that mem2reg later turns into phis.
func (lw *lowerer) lowerShortCircuit(e *ast.Binary) ir.Value {
	slot, _ := lw.allocaAtEntry("sc", 1, e.Pos())
	rhsB := lw.fn.NewBlock("sc.rhs")
	doneB := lw.fn.NewBlock("sc.done")

	x := lw.rvalue(e.X)
	xb := lw.fn.NewReg("")
	lw.emit(ir.NewBinOp(xb, ir.OpNe, x, ir.IntConst(0)), e.Pos())
	lw.emit(ir.NewStore(slot, xb), e.Pos())
	if e.Op == token.LAND {
		lw.emit(ir.NewBranch(xb, rhsB, doneB), e.Pos())
	} else {
		lw.emit(ir.NewBranch(xb, doneB, rhsB), e.Pos())
	}

	lw.startBlock(rhsB)
	y := lw.rvalue(e.Y)
	yb := lw.fn.NewReg("")
	lw.emit(ir.NewBinOp(yb, ir.OpNe, y, ir.IntConst(0)), e.Pos())
	lw.emit(ir.NewStore(slot, yb), e.Pos())
	lw.emit(ir.NewJump(doneB), e.Pos())

	lw.startBlock(doneB)
	dst := lw.fn.NewReg("")
	lw.emit(ir.NewLoad(dst, slot), e.Pos())
	return dst
}

// lowerCall lowers a call expression; wantValue selects whether a result
// register is produced.
func (lw *lowerer) lowerCall(e *ast.Call, wantValue bool) ir.Value {
	// Builtin dispatch.
	if id, ok := e.Fun.(*ast.Ident); ok {
		if sym := lw.info.Uses[id]; sym != nil && sym.Kind == types.SymBuiltin {
			return lw.lowerBuiltin(sym.Name, e, wantValue)
		}
	}

	var callee ir.Value
	if id, ok := e.Fun.(*ast.Ident); ok {
		if sym := lw.info.Uses[id]; sym != nil && sym.Kind == types.SymFunc {
			callee = &ir.FuncValue{Fn: lw.funcs[sym]}
		}
	}
	if callee == nil {
		callee = lw.rvalue(e.Fun) // indirect through a function pointer
	}
	ft := lw.calleeFuncType(e.Fun)
	if ft == nil {
		lw.failf(e.Pos(), "call target has no function type")
	}

	// Argument layout mirrors lowerFunc: [sret] fixed-params... [va].
	var args []ir.Value
	var sretTemp *ir.Register
	retT := lw.info.TypeOf(e)
	if st, ok := retT.(*types.Struct); ok {
		// Hidden result slot: a fresh temporary per call site, undefined
		// until the callee's return copies into it.
		sretTemp, _ = lw.allocaAtEntry("sret", st.Size(), e.Pos())
		args = append(args, sretTemp)
	}
	nfixed := len(ft.Params)
	if nfixed > len(e.Args) {
		nfixed = len(e.Args)
	}
	for i := 0; i < nfixed; i++ {
		a := e.Args[i]
		if st, ok := ft.Params[i].(*types.Struct); ok {
			// By-value struct argument: copy into a call-local temporary
			// and pass its address; the callee uses it as the parameter's
			// storage, so each call gets an independent copy.
			tmp, _ := lw.allocaAtEntry("byval", st.Size(), a.Pos())
			src := lw.aggrAddr(a)
			lw.emit(ir.NewMemCopy(tmp, src, ir.IntConst(int64(st.Size()))), a.Pos())
			args = append(args, tmp)
			continue
		}
		args = append(args, lw.rvalue(a))
	}
	if ft.Variadic {
		// Pack the extra int arguments into a caller-side array and pass
		// its address as the hidden trailing parameter. The array is
		// collapsed (the callee indexes it dynamically), so with zero
		// extras its single cell simply stays undefined.
		extras := e.Args[len(ft.Params):]
		size := len(extras)
		if size == 0 {
			size = 1
		}
		va, vaObj := lw.allocaAtEntry("va", size, e.Pos())
		vaObj.Collapse()
		for j, a := range extras {
			v := lw.rvalue(a)
			slotAddr := lw.fn.NewReg("")
			lw.emit(ir.NewIndexAddr(slotAddr, va, ir.IntConst(int64(j))), a.Pos())
			lw.emit(ir.NewStore(slotAddr, v), a.Pos())
		}
		args = append(args, va)
	}

	var dst *ir.Register
	if retT != types.Void && sretTemp == nil {
		dst = lw.fn.NewReg("")
	}
	lw.emit(ir.NewCall(dst, callee, args, ir.NotBuiltin), e.Pos())
	if sretTemp != nil {
		return sretTemp // the struct value lives in the hidden result slot
	}
	if dst == nil {
		return ir.IntConst(0)
	}
	return dst
}

// calleeFuncType returns the semantic function type of a call target.
func (lw *lowerer) calleeFuncType(fun ast.Expr) *types.Func {
	t := lw.info.TypeOf(fun)
	if pt, ok := t.(*types.Pointer); ok {
		if ft, ok := pt.Elem.(*types.Func); ok {
			return ft
		}
	}
	if ft, ok := t.(*types.Func); ok {
		return ft
	}
	return nil
}

func (lw *lowerer) lowerBuiltin(name string, e *ast.Call, wantValue bool) ir.Value {
	if name != "input" && len(e.Args) < 1 {
		// The checker reports the arity error; don't lower past it.
		lw.failf(e.Pos(), "builtin %s needs an argument", name)
	}
	switch name {
	case "malloc", "calloc":
		zero := name == "calloc"
		size := 1
		var dyn ir.Value
		// Lower the size first: literals and sizeof expressions fold to
		// constants, giving the allocation a static extent.
		sizeVal := lw.rvalue(e.Args[0])
		if c, ok := sizeVal.(*ir.Const); ok && c.Val > 0 {
			size = int(c.Val)
		} else {
			dyn = sizeVal
		}
		obj := lw.irp.NewObject(fmt.Sprintf("%s.l%s", name, e.Pos()), size, ir.ObjHeap)
		obj.ZeroInit = zero
		obj.Fn = lw.fn
		// Dynamic extents and very large constant extents are modelled
		// field-insensitively: the analyses walk every field of a
		// field-sensitive object, so malloc(200000000) must collapse like
		// an array or the pointer analysis chews through 2e8 field
		// variables.
		if dyn != nil || size > maxFieldSensitiveCells {
			obj.Collapse()
		}
		dst := lw.fn.NewReg("")
		a := ir.NewAlloc(dst, obj)
		a.DynSize = dyn
		lw.emit(a, e.Pos())
		return dst
	case "free":
		p := lw.rvalue(e.Args[0])
		lw.emit(ir.NewCall(nil, nil, []ir.Value{p}, ir.BuiltinFree), e.Pos())
		return ir.IntConst(0)
	case "print":
		v := lw.rvalue(e.Args[0])
		lw.emit(ir.NewCall(nil, nil, []ir.Value{v}, ir.BuiltinPrint), e.Pos())
		return ir.IntConst(0)
	case "input":
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewCall(dst, nil, nil, ir.BuiltinInput), e.Pos())
		return dst
	case "memset":
		if len(e.Args) < 3 {
			lw.failf(e.Pos(), "memset needs 3 arguments")
		}
		p := lw.rvalue(e.Args[0])
		v := lw.rvalue(e.Args[1])
		n := lw.rvalue(e.Args[2])
		lw.emit(ir.NewMemSet(p, v, n), e.Pos())
		return p
	case "memcpy", "memmove":
		// One IR op for both: the runtime buffers the source range, so the
		// copy is overlap-safe either way.
		if len(e.Args) < 3 {
			lw.failf(e.Pos(), "%s needs 3 arguments", name)
		}
		dstp := lw.rvalue(e.Args[0])
		srcp := lw.rvalue(e.Args[1])
		n := lw.rvalue(e.Args[2])
		lw.emit(ir.NewMemCopy(dstp, srcp, n), e.Pos())
		return dstp
	case "va_arg":
		if lw.vaParam == nil {
			lw.failf(e.Pos(), "va_arg outside a variadic function")
		}
		idx := lw.rvalue(e.Args[0])
		addr := lw.fn.NewReg("")
		lw.emit(ir.NewIndexAddr(addr, lw.vaParam, idx), e.Pos())
		dst := lw.fn.NewReg("")
		lw.emit(ir.NewLoad(dst, addr), e.Pos())
		return dst
	}
	lw.failf(e.Pos(), "unknown builtin %s", name)
	return nil
}
