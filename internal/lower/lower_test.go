package lower_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/lower"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/types"
)

func lowerSrc(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return irp
}

func TestLowerSimple(t *testing.T) {
	irp := lowerSrc(t, `int main() { int x = 1; int y = 2; return x + y; }`)
	main := irp.FuncByName("main")
	if main == nil {
		t.Fatal("no main")
	}
	txt := ir.PrintFunc(main)
	for _, want := range []string{"alloc_F", "store", "load", "add", "ret"} {
		if !strings.Contains(txt, want) {
			t.Errorf("IR missing %q:\n%s", want, txt)
		}
	}
}

func TestLowerControlFlow(t *testing.T) {
	irp := lowerSrc(t, `
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 10; i++) {
    if (i % 2) { s += i; } else { continue; }
    if (s > 5) { break; }
  }
  while (s) { s -= 1; }
  return s;
}`)
	main := irp.FuncByName("main")
	var branches, jumps int
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			switch in.(type) {
			case *ir.Branch:
				branches++
			case *ir.Jump:
				jumps++
			}
		}
	}
	if branches < 4 {
		t.Errorf("got %d branches, want >= 4", branches)
	}
	if jumps < 4 {
		t.Errorf("got %d jumps, want >= 4", jumps)
	}
}

func TestLowerPointers(t *testing.T) {
	irp := lowerSrc(t, `
int main() {
  int a;
  int *p = &a;
  *p = 5;
  return a;
}`)
	txt := ir.PrintFunc(irp.FuncByName("main"))
	// &a must not produce a load of a.
	if !strings.Contains(txt, "store") {
		t.Errorf("missing store:\n%s", txt)
	}
}

func TestLowerHeapAllocs(t *testing.T) {
	irp := lowerSrc(t, `
int main() {
  int *p = malloc(4);
  int *q = calloc(2);
  p[0] = 1;
  free(p);
  return q[1];
}`)
	var mallocObj, callocObj *ir.Object
	for _, o := range irp.Objects() {
		if o.Kind == ir.ObjHeap {
			if o.ZeroInit {
				callocObj = o
			} else {
				mallocObj = o
			}
		}
	}
	if mallocObj == nil || mallocObj.Size != 4 {
		t.Errorf("malloc obj = %+v, want size 4 uninit", mallocObj)
	}
	if callocObj == nil || callocObj.Size != 2 {
		t.Errorf("calloc obj = %+v, want size 2 zeroinit", callocObj)
	}
}

func TestLowerDynamicMalloc(t *testing.T) {
	irp := lowerSrc(t, `
int main(int n) {
  int *p = malloc(n);
  return p[0];
}`)
	var dynAlloc *ir.Alloc
	for _, b := range irp.FuncByName("main").Blocks {
		for _, in := range b.Instrs {
			if a, ok := in.(*ir.Alloc); ok && a.Obj.Kind == ir.ObjHeap {
				dynAlloc = a
			}
		}
	}
	if dynAlloc == nil || dynAlloc.DynSize == nil {
		t.Fatalf("dynamic malloc not lowered with DynSize: %v", dynAlloc)
	}
	if !dynAlloc.Obj.Collapsed() {
		t.Error("dynamic heap object should be collapsed")
	}
}

func TestLowerStructFields(t *testing.T) {
	irp := lowerSrc(t, `
struct P { int x; int y; };
int main() {
  struct P p;
  p.y = 3;
  struct P *q = &p;
  return q->y;
}`)
	txt := ir.PrintFunc(irp.FuncByName("main"))
	if !strings.Contains(txt, "fieldaddr") || !strings.Contains(txt, "+1") {
		t.Errorf("missing fieldaddr +1:\n%s", txt)
	}
}

func TestLowerArrays(t *testing.T) {
	irp := lowerSrc(t, `
int main() {
  int a[5];
  a[2] = 7;
  int *p = a + 1;
  return p[1] + a[2];
}`)
	txt := ir.PrintFunc(irp.FuncByName("main"))
	if !strings.Contains(txt, "indexaddr") {
		t.Errorf("missing indexaddr:\n%s", txt)
	}
	// the array object must be collapsed
	for _, o := range irp.Objects() {
		if o.Name == "a" && !o.Collapsed() {
			t.Error("array object not collapsed")
		}
	}
}

func TestLowerGlobals(t *testing.T) {
	irp := lowerSrc(t, `
int g = 42;
int h;
int main() { g = g + h; return g; }`)
	if len(irp.Globals) != 2 {
		t.Fatalf("globals = %d, want 2", len(irp.Globals))
	}
	if !irp.Globals[0].ZeroInit || irp.Globals[0].InitVal != 42 {
		t.Errorf("g = %+v, want zeroinit with InitVal 42", irp.Globals[0])
	}
	txt := ir.PrintFunc(irp.FuncByName("main"))
	if !strings.Contains(txt, "@g") {
		t.Errorf("global address not used:\n%s", txt)
	}
}

func TestLowerCalls(t *testing.T) {
	irp := lowerSrc(t, `
int twice(int x) { return x * 2; }
int apply(int (*f)(int), int v) { return f(v); }
int main() { return apply(twice, 21); }`)
	apply := irp.FuncByName("apply")
	indirect := false
	for _, b := range apply.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Direct() == nil && c.Builtin == ir.NotBuiltin {
				indirect = true
			}
		}
	}
	if !indirect {
		t.Error("apply should contain an indirect call")
	}
	main := irp.FuncByName("main")
	direct := false
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Direct() != nil && c.Direct().Name == "apply" {
				direct = true
			}
		}
	}
	if !direct {
		t.Error("main should contain a direct call to apply")
	}
}

func TestLowerShortCircuit(t *testing.T) {
	irp := lowerSrc(t, `
int main(int a, int b) {
  if (a && b) { return 1; }
  if (a || b) { return 2; }
  return 0;
}`)
	main := irp.FuncByName("main")
	if len(main.Blocks) < 8 {
		t.Errorf("short-circuit lowering produced only %d blocks", len(main.Blocks))
	}
}

func TestImplicitUndefReturn(t *testing.T) {
	irp := lowerSrc(t, `
int maybe(int c) {
  if (c) { return 1; }
}
int main() { return maybe(0); }`)
	txt := ir.PrintFunc(irp.FuncByName("maybe"))
	if !strings.Contains(txt, "undef.ret") {
		t.Errorf("missing undef.ret modelling of missing return:\n%s", txt)
	}
}

func TestDeadCodePruned(t *testing.T) {
	irp := lowerSrc(t, `
int main() {
  return 1;
  return 2;
}`)
	main := irp.FuncByName("main")
	for _, b := range main.Blocks {
		if strings.HasPrefix(b.Name, "dead") {
			t.Errorf("dead block %s not pruned", b)
		}
	}
}

func TestVerifyAll(t *testing.T) {
	srcs := []string{
		`int main() { return 0; }`,
		`void f() {} int main() { f(); return 0; }`,
		`int g; int main() { int *p = &g; return *p; }`,
		`struct S { int a; struct S *n; };
		 int main() { struct S s; s.n = &s; s.a = 1; return s.n->a; }`,
	}
	for _, src := range srcs {
		irp := lowerSrc(t, src)
		if err := ir.Verify(irp); err != nil {
			t.Errorf("verify(%q): %v", src, err)
		}
	}
}
