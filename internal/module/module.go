// Package module turns a set of MiniC source files into one analyzable
// whole program, incrementally.
//
// Each file is a module; `#include "name"` names a dependency on another
// module in the set. The package builds the dependency graph (cycles and
// unknown includes are positioned errors), assigns every module a
// transitive content hash — the hash covers the module's own source and
// the hashes of its direct dependencies, so editing a module changes
// exactly its own key and its dependents' — and compiles modules in
// parallel topological batches: every module in a batch depends only on
// earlier batches, so a batch compiles with bench.ForEach concurrency
// while the build stays deterministic.
//
// A module compiles against the *exports* of its transitive
// dependencies: struct declarations, global declarations and function
// prototypes, spliced (read-only) ahead of the module's own
// declarations. The per-module frontend runs parse → typecheck → lower
// → mem2reg → verify, producing an immutable per-module SSA program
// that a Cache retains across builds keyed by the content hash — a warm
// build recompiles only edited modules and their dependents, with every
// other module's frontend passes at zero runs. Linking (link.go) then
// deep-clones each module's owned globals and defined functions into a
// fresh ir.Program for the shared pointer/VFG/Γ phases.
package module

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"sort"

	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/lexer"
	"github.com/valueflow/usher/internal/token"
)

// File is one module source: a name (also used as the position file name
// and the include key) and its content.
type File struct {
	Name   string
	Source string
}

// Module is one node of the dependency graph.
type Module struct {
	Name   string
	Source string
	// Deps are the direct dependencies, sorted and deduplicated.
	Deps []string
	// Hash is the transitive content hash (hex): it covers Name, Source
	// and the hashes of Deps, so it changes exactly when the module or
	// anything it depends on changes.
	Hash string
	// Batch is the topological level: 0 for dependency-free modules,
	// 1 + max(dep batches) otherwise.
	Batch int

	includePos map[string]token.Pos
}

// Graph is the validated dependency graph of a module set.
type Graph struct {
	// Modules in link order: topological, ties broken by name. This
	// order is also the declaration order of the equivalent single-file
	// program (see Flatten).
	Modules []*Module
	byName  map[string]*Module
}

// NewGraph scans the includes of every file, validates the graph
// (duplicate module names, unknown includes, include cycles — all
// positioned diagnostics) and computes content hashes and batches.
func NewGraph(files []File) (*Graph, error) {
	g := &Graph{byName: make(map[string]*Module, len(files))}
	var diags diag.List
	var names []string
	for _, f := range files {
		if f.Name == "" {
			diags.Addf(diag.PhaseModule, token.Pos{}, "module with empty name")
			continue
		}
		if _, dup := g.byName[f.Name]; dup {
			diags.Addf(diag.PhaseModule, token.Pos{File: f.Name}, "duplicate module %q in the file set", f.Name)
			continue
		}
		m := &Module{Name: f.Name, Source: f.Source}
		m.Deps, m.includePos = scanIncludes(f.Name, f.Source)
		g.byName[f.Name] = m
		names = append(names, f.Name)
	}
	if err := diags.Err(); err != nil {
		return nil, err
	}
	sort.Strings(names)
	for _, name := range names {
		m := g.byName[name]
		for _, dep := range m.Deps {
			if dep == m.Name {
				diags.Addf(diag.PhaseModule, m.includePos[dep], "module %q includes itself", m.Name)
			} else if g.byName[dep] == nil {
				diags.Addf(diag.PhaseModule, m.includePos[dep], "module %q includes unknown module %q", m.Name, dep)
			}
		}
	}
	if err := diags.Err(); err != nil {
		return nil, err
	}
	if err := g.topoSort(names); err != nil {
		return nil, err
	}
	g.hash()
	return g, nil
}

// ByName returns the named module, or nil.
func (g *Graph) ByName(name string) *Module { return g.byName[name] }

// scanIncludes extracts `#include "name"` pairs with a raw token scan —
// no AST, so the dependency graph (and with it every content hash) is
// known before any module compiles. Lexical errors are ignored here;
// the parse pass of the module itself reports them with positions.
func scanIncludes(name, src string) ([]string, map[string]token.Pos) {
	lx := lexer.New(name, src)
	var deps []string
	pos := make(map[string]token.Pos)
	prev := token.Token{}
	for {
		t := lx.Next()
		if t.Kind == token.EOF {
			break
		}
		if prev.Kind == token.INCLUDE && t.Kind == token.STRING && t.Text != "" {
			if _, seen := pos[t.Text]; !seen {
				deps = append(deps, t.Text)
				pos[t.Text] = t.Pos
			}
		}
		prev = t
	}
	sort.Strings(deps)
	return deps, pos
}

// topoSort orders Modules topologically (Kahn), ties broken by module
// name, and assigns batches. A cycle is reported as a positioned error
// naming its members.
func (g *Graph) topoSort(names []string) error {
	indeg := make(map[string]int, len(names))
	dependents := make(map[string][]string, len(names))
	for _, name := range names {
		m := g.byName[name]
		indeg[name] = len(m.Deps)
		for _, dep := range m.Deps {
			dependents[dep] = append(dependents[dep], name)
		}
	}
	// ready is kept sorted; names was sorted and dependents preserve
	// per-dep insertion order, so a sorted insert keeps determinism.
	var ready []string
	for _, name := range names {
		if indeg[name] == 0 {
			ready = append(ready, name)
		}
	}
	for len(ready) > 0 {
		name := ready[0]
		ready = ready[1:]
		m := g.byName[name]
		for _, dep := range m.Deps {
			if d := g.byName[dep]; d.Batch >= m.Batch {
				m.Batch = d.Batch + 1
			}
		}
		g.Modules = append(g.Modules, m)
		for _, dependent := range dependents[name] {
			indeg[dependent]--
			if indeg[dependent] == 0 {
				i := sort.SearchStrings(ready, dependent)
				ready = append(ready, "")
				copy(ready[i+1:], ready[i:])
				ready[i] = dependent
			}
		}
	}
	if len(g.Modules) == len(names) {
		return nil
	}
	// Every unplaced module is on or downstream of a cycle; report the
	// lexicographically first unplaced module's include that closes one.
	var diags diag.List
	placed := make(map[string]bool, len(g.Modules))
	for _, m := range g.Modules {
		placed[m.Name] = true
	}
	var stuck []string
	for _, name := range names {
		if !placed[name] {
			stuck = append(stuck, name)
		}
	}
	m := g.byName[stuck[0]]
	cycle := g.findCycle(m)
	pos := m.includePos[m.Deps[0]]
	if len(cycle) > 1 {
		pos = m.includePos[cycle[1]]
	}
	diags.Addf(diag.PhaseModule, pos, "include cycle: %s", formatCycle(cycle))
	return diags.Err()
}

// findCycle walks unplaced dependencies from m until a module repeats,
// returning the cycle path starting and ending at the repeated module.
func (g *Graph) findCycle(m *Module) []string {
	seen := make(map[string]int)
	var path []string
	cur := m
	for {
		if i, ok := seen[cur.Name]; ok {
			return append(path[i:], cur.Name)
		}
		seen[cur.Name] = len(path)
		path = append(path, cur.Name)
		// Follow the first dependency that is itself stuck; one exists,
		// or cur would have been placed.
		next := ""
		for _, dep := range cur.Deps {
			d := g.byName[dep]
			if d != nil && !g.isPlaced(d) {
				next = dep
				break
			}
		}
		if next == "" {
			return path
		}
		cur = g.byName[next]
	}
}

func (g *Graph) isPlaced(m *Module) bool {
	for _, p := range g.Modules {
		if p == m {
			return true
		}
	}
	return false
}

func formatCycle(cycle []string) string {
	s := ""
	for i, name := range cycle {
		if i > 0 {
			s += " -> "
		}
		s += fmt.Sprintf("%q", name)
	}
	return s
}

// hash assigns transitive content hashes in link order (dependencies
// hash before dependents).
func (g *Graph) hash() {
	for _, m := range g.Modules {
		h := sha256.New()
		h.Write([]byte("usher-module\x00"))
		writeLenPrefixed(h, m.Name)
		writeLenPrefixed(h, m.Source)
		for _, dep := range m.Deps {
			writeLenPrefixed(h, dep)
			writeLenPrefixed(h, g.byName[dep].Hash)
		}
		m.Hash = hex.EncodeToString(h.Sum(nil))
	}
}

func writeLenPrefixed(h interface{ Write(p []byte) (int, error) }, s string) {
	var n [8]byte
	binary.LittleEndian.PutUint64(n[:], uint64(len(s)))
	h.Write(n[:])
	h.Write([]byte(s))
}

// SetHash is one hash over the whole module set (every module name and
// transitive hash, in link order): the content key of the linked
// program. usherd keys multi-file sessions by (level, SetHash).
func (g *Graph) SetHash() string {
	h := sha256.New()
	h.Write([]byte("usher-module-set\x00"))
	for _, m := range g.Modules {
		writeLenPrefixed(h, m.Name)
		writeLenPrefixed(h, m.Hash)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Batches groups Modules by topological level: batch 0 has no
// dependencies, batch k depends only on batches < k. Modules within a
// batch are independent and compile in parallel.
func (g *Graph) Batches() [][]*Module {
	max := 0
	for _, m := range g.Modules {
		if m.Batch > max {
			max = m.Batch
		}
	}
	out := make([][]*Module, max+1)
	for _, m := range g.Modules {
		out[m.Batch] = append(out[m.Batch], m)
	}
	return out
}

// Closure returns m's transitive dependencies in link order (m itself
// excluded). The order is a pure function of the closure subgraph —
// unrelated modules cannot affect it — so a module's compile unit is
// fully determined by its own source and its dependencies' hashes.
func (g *Graph) Closure(m *Module) []*Module {
	in := make(map[string]bool)
	var visit func(name string)
	visit = func(name string) {
		if in[name] {
			return
		}
		in[name] = true
		for _, dep := range g.byName[name].Deps {
			visit(dep)
		}
	}
	for _, dep := range m.Deps {
		visit(dep)
	}
	var out []*Module
	for _, cm := range g.Modules {
		if in[cm.Name] {
			out = append(out, cm)
		}
	}
	return out
}

// Flatten renders the module set as the equivalent single translation
// unit: module sources concatenated in link order with include
// directives dropped. Compiling the flattened source through the
// single-file pipeline yields the same warning sites as the multi-file
// build (pinned by tests) — positions differ, program behavior does not.
func Flatten(files []File) (string, error) {
	g, err := NewGraph(files)
	if err != nil {
		return "", err
	}
	out := ""
	for _, m := range g.Modules {
		out += stripIncludes(m.Source) + "\n"
	}
	return out, nil
}

// stripIncludes drops every line that holds exactly one include
// directive, keeping all other lines byte-for-byte.
func stripIncludes(src string) string {
	lines := splitLines(src)
	out := ""
	for _, line := range lines {
		if isIncludeLine(line) {
			continue
		}
		out += line
	}
	return out
}

// splitLines splits keeping terminators, recognizing \n, \r\n and \r.
func splitLines(src string) []string {
	var lines []string
	start := 0
	for i := 0; i < len(src); i++ {
		switch src[i] {
		case '\n':
			lines = append(lines, src[start:i+1])
			start = i + 1
		case '\r':
			end := i + 1
			if end < len(src) && src[end] == '\n' {
				end++
			}
			lines = append(lines, src[start:end])
			start = end
			i = end - 1
		}
	}
	if start < len(src) {
		lines = append(lines, src[start:])
	}
	return lines
}

// isIncludeLine reports whether the line consists of exactly one
// `#include "name"` directive (plus whitespace).
func isIncludeLine(line string) bool {
	lx := lexer.New("", line)
	t1 := lx.Next()
	if t1.Kind != token.INCLUDE {
		return false
	}
	t2 := lx.Next()
	if t2.Kind != token.STRING {
		return false
	}
	return lx.Next().Kind == token.EOF
}
