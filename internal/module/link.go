package module

import (
	"fmt"

	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/ssa"
)

// link merges compiled units (in link order) into one fresh whole
// program. Cached unit programs are immutable, so everything is
// deep-cloned (ir.CloneBody / ir.CloneGlobal); per-function labels and
// register IDs are preserved, and globals and allocation sites are
// renumbered in the same order single-file lowering of the flattened
// source would produce — multi-file and single-file analysis of
// equivalent programs agree on warning sites.
//
// Link-time errors are positioned diagnostics: duplicate global or
// function definitions across modules, conflicting arities, and a name
// used as a global by one module and a function by another.
func link(units []*Unit) (*ir.Program, map[string]int64, error) {
	var diags diag.List

	// Conflict checks over every module's own declarations.
	globalOwner := make(map[string]*Unit)
	funcArity := make(map[string]int)
	funcDefiner := make(map[string]string)
	for _, u := range units {
		for _, gs := range u.OwnGlobals {
			if prev, ok := globalOwner[gs.Name]; ok {
				diags.Addf(diag.PhaseLink, gs.Pos, "global %s redefined in module %q (first defined in module %q)", gs.Name, u.Name, prev.Name)
				continue
			}
			globalOwner[gs.Name] = u
		}
		for _, fs := range u.OwnFuncs {
			if arity, ok := funcArity[fs.Name]; ok && arity != fs.Arity {
				diags.Addf(diag.PhaseLink, fs.Pos, "function %s declared with %d parameter(s) in module %q but %d elsewhere", fs.Name, fs.Arity, u.Name, arity)
				continue
			}
			funcArity[fs.Name] = fs.Arity
			if fs.Defined {
				if prev, ok := funcDefiner[fs.Name]; ok {
					diags.Addf(diag.PhaseLink, fs.Pos, "function %s defined in module %q and module %q", fs.Name, prev, u.Name)
					continue
				}
				funcDefiner[fs.Name] = u.Name
			}
		}
	}
	for name := range funcArity {
		owner, ok := globalOwner[name]
		if !ok {
			continue
		}
		for _, gs := range owner.OwnGlobals {
			if gs.Name == name {
				diags.Addf(diag.PhaseLink, gs.Pos, "%s is a global in module %q and a function elsewhere", name, owner.Name)
				break
			}
		}
	}
	if err := diags.Err(); err != nil {
		return nil, nil, err
	}

	dst := ir.NewProgram()

	// Phase 1: canonical globals, in link order — the declaration order
	// of the flattened program, so object IDs match single-file builds.
	canonGlobals := make(map[string]*ir.Object, len(globalOwner))
	for _, u := range units {
		byName := make(map[string]*ir.Object, len(u.Prog.Globals))
		for _, o := range u.Prog.Globals {
			byName[o.Name] = o
		}
		for _, gs := range u.OwnGlobals {
			src := byName[gs.Name]
			obj := ir.CloneGlobal(dst, src)
			dst.Globals = append(dst.Globals, obj)
			canonGlobals[gs.Name] = obj
		}
	}

	// Phase 2: function shells, in first-declaration order.
	for _, u := range units {
		for _, fs := range u.OwnFuncs {
			if dst.FuncByName(fs.Name) != nil {
				continue
			}
			dst.AddFunc(&ir.Function{Name: fs.Name, Pos: fs.Pos})
		}
	}

	// Phase 3: clone bodies, in definition order. Allocation-site
	// objects are numbered during cloning, mirroring single-file
	// lowering order.
	//
	// String-literal globals (the lowerer's interned ".str%d" objects)
	// are not module-level declarations, so they are not in
	// canonGlobals: each unit numbers its own literals from .str0. They
	// are re-interned here by content on first use, which both avoids
	// cross-module name collisions and deduplicates identical literals
	// the way single-file lowering of the flattened source would.
	litByContent := make(map[string]*ir.Object)
	litOf := make(map[*ir.Object]*ir.Object)
	globalOf := func(o *ir.Object) *ir.Object {
		if canon, ok := litOf[o]; ok {
			return canon
		}
		if canon, ok := canonGlobals[o.Name]; ok {
			return canon
		}
		if o.InitVals == nil {
			return nil // named global missing from canonGlobals: CloneBody panics
		}
		key := fmt.Sprintf("%d:%v", o.Size, o.InitVals)
		canon, ok := litByContent[key]
		if !ok {
			canon = ir.CloneGlobal(dst, o)
			canon.Name = fmt.Sprintf(".str%d", len(litByContent))
			litByContent[key] = canon
			dst.Globals = append(dst.Globals, canon)
		}
		litOf[o] = canon
		return canon
	}
	for _, u := range units {
		for _, name := range u.DefinedFuncs {
			ir.CloneBody(dst.FuncByName(name), u.Prog.FuncByName(name), globalOf)
		}
	}

	if err := ir.Verify(dst); err != nil {
		diags.Merge(diag.PhaseLink, err)
		return nil, nil, diags.Err()
	}
	if err := ssa.VerifySSA(dst); err != nil {
		diags.Merge(diag.PhaseLink, err)
		return nil, nil, diags.Err()
	}

	instrs := 0
	for _, fn := range dst.Funcs {
		for _, b := range fn.Blocks {
			instrs += len(b.Instrs)
		}
	}
	counters := map[string]int64{
		"funcs":   int64(len(dst.Funcs)),
		"globals": int64(len(dst.Globals)),
		"instrs":  int64(instrs),
	}
	return dst, counters, nil
}
