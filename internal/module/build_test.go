package module_test

import (
	"fmt"
	"sync"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/module"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/workload"
)

// testFiles is a small hand-written module set with one planted
// undefined-value use (main branches on a conditionally assigned local).
var testFiles = []module.File{
	{Name: "math", Source: `
#include "proto"
int twice(int x) { return x + x; }
int pick(int a, int b) {
  if (flag(a) > 0) { return a; }
  return b;
}
`},
	{Name: "proto", Source: `
int flag(int v);
struct Pair { int x; int y; };
`},
	{Name: "impl", Source: `
#include "proto"
int flag(int v) { return v & 1; }
`},
	{Name: "main", Source: `
#include "math"
#include "impl"
int main() {
  int u;
  struct Pair p;
  p.x = twice(3);
  p.y = pick(p.x, 4);
  if (p.y > 100) { u = 1; }
  if (u > 0) { p.y += 1; }
  print(p.x + p.y);
  return 0;
}
`},
}

func projectFiles(t *testing.T) []module.File {
	t.Helper()
	mf := workload.DefaultModuleProject.GenerateModules()
	out := make([]module.File, len(mf))
	for i, f := range mf {
		out[i] = module.File{Name: f.Name, Source: f.Source}
	}
	return out
}

type configAnswer struct {
	props, checks int
	warnings      []string
}

// answers analyzes and runs prog under every extended config, reducing
// each to static stats plus position-free warning sites (function,
// instruction label, message) — the representation that must agree
// between multi-file and flattened single-file builds, whose positions
// necessarily differ.
func answers(t *testing.T, prog *ir.Program) []configAnswer {
	t.Helper()
	sess := usher.NewSession(prog)
	var out []configAnswer
	for _, cfg := range usher.ExtendedConfigs {
		an, err := sess.Analyze(cfg)
		if err != nil {
			t.Fatalf("analyze %s: %v", cfg, err)
		}
		st := an.StaticStats()
		a := configAnswer{props: st.Props, checks: st.Checks}
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			t.Fatalf("run %s: %v", cfg, err)
		}
		for _, w := range res.ShadowWarnings {
			a.warnings = append(a.warnings, fmt.Sprintf("%s@%d: %s", w.Fn, w.Label, w.What))
		}
		out = append(out, a)
	}
	return out
}

func equalAnswers(a, b []configAnswer) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].props != b[i].props || a[i].checks != b[i].checks {
			return false
		}
		if len(a[i].warnings) != len(b[i].warnings) {
			return false
		}
		for j := range a[i].warnings {
			if a[i].warnings[j] != b[i].warnings[j] {
				return false
			}
		}
	}
	return true
}

// TestBuildMatchesFlattened is the tentpole equivalence criterion:
// multi-file and single-file analysis of equivalent programs produce
// bit-identical warning sites and static stats across all six configs.
func TestBuildMatchesFlattened(t *testing.T) {
	for _, tc := range []struct {
		name  string
		files []module.File
	}{
		{"hand-written", testFiles},
		{"modproj-50", projectFiles(t)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			res, err := module.Build(tc.files, module.Options{})
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			flat, err := module.Flatten(tc.files)
			if err != nil {
				t.Fatalf("flatten: %v", err)
			}
			single, err := usher.Compile("flat.c", flat)
			if err != nil {
				t.Fatalf("compile flattened: %v", err)
			}
			multi := answers(t, res.Prog)
			want := answers(t, single)
			if !equalAnswers(multi, want) {
				t.Fatalf("multi-file answers diverge from flattened single file:\nmulti: %+v\nflat:  %+v", multi, want)
			}
			if len(multi[len(multi)-1].warnings) == 0 {
				t.Fatal("equivalence is vacuous: no warnings in the corpus")
			}
		})
	}
}

// runsByPass folds a snapshot into pass → total runs and pass/variant →
// runs maps.
func runsByPass(snap []stats.PassStats) (map[string]int64, map[string]int64) {
	byPass := make(map[string]int64)
	byVariant := make(map[string]int64)
	for _, ps := range snap {
		byPass[ps.Pass] += ps.Runs
		byVariant[ps.Pass+"/"+ps.Variant] = ps.Runs
	}
	return byPass, byVariant
}

func delta(before, after map[string]int64) map[string]int64 {
	out := make(map[string]int64)
	for k, v := range after {
		if d := v - before[k]; d != 0 {
			out[k] = d
		}
	}
	return out
}

// TestIncrementalInvalidation pins the incremental contract with -stats
// evidence: a warm rebuild runs zero frontend passes; a 1-line edit of
// one leaf lib re-runs the frontend for exactly the edited module and
// its dependents; and the warm result's warning sites are bit-identical
// to a cold full analysis of the same sources.
func TestIncrementalInvalidation(t *testing.T) {
	files := projectFiles(t)
	cache := module.NewCache(256 << 20)
	sc := stats.New()

	// Cold: every module's frontend runs exactly once.
	res, err := module.Build(files, module.Options{Cache: cache, Stats: sc, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compiled != 50 || res.Reused != 0 {
		t.Fatalf("cold build compiled/reused = %d/%d, want 50/0", res.Compiled, res.Reused)
	}
	_, byVariant := runsByPass(sc.Snapshot())
	for _, m := range res.Graph.Modules {
		for _, pass := range []string{"parse", "typecheck", "lower", "mem2reg", "verify"} {
			if got := byVariant[pass+"/"+m.Name]; got != 1 {
				t.Fatalf("cold %s of %s ran %d times, want 1", pass, m.Name, got)
			}
		}
	}

	// Warm, unchanged: frontend Runs stay flat for every module; only
	// link re-runs.
	before, _ := runsByPass(sc.Snapshot())
	res, err = module.Build(files, module.Options{Cache: cache, Stats: sc, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != 50 || res.Compiled != 0 {
		t.Fatalf("warm build compiled/reused = %d/%d, want 0/50", res.Compiled, res.Reused)
	}
	after, _ := runsByPass(sc.Snapshot())
	d := delta(before, after)
	if len(d) != 1 || d["link"] != 1 {
		t.Fatalf("warm rebuild pass deltas = %v, want only link=1", d)
	}

	// Edit one leaf lib: exactly lib_07, agg_1 and main recompile.
	mf := workload.DefaultModuleProject.GenerateModules()
	mf, ok := workload.Edit(mf, "lib_07", 2)
	if !ok {
		t.Fatal("edit failed")
	}
	edited := make([]module.File, len(mf))
	for i, f := range mf {
		edited[i] = module.File{Name: f.Name, Source: f.Source}
	}
	_, byVarBefore := runsByPass(sc.Snapshot())
	res, err = module.Build(edited, module.Options{Cache: cache, Stats: sc, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reused != 47 || res.Compiled != 3 {
		t.Fatalf("post-edit build compiled/reused = %d/%d, want 3/47", res.Compiled, res.Reused)
	}
	_, byVarAfter := runsByPass(sc.Snapshot())
	recompiled := map[string]bool{"lib_07": true, "agg_1": true, "main": true}
	for _, m := range res.Graph.Modules {
		got := byVarAfter["parse/"+m.Name] - byVarBefore["parse/"+m.Name]
		want := int64(0)
		if recompiled[m.Name] {
			want = 1
		}
		if got != want {
			t.Errorf("after the edit, parse of %s ran %d more times, want %d", m.Name, got, want)
		}
	}

	// Warm result ≡ cold full analysis of the same edited sources.
	cold, err := module.Build(edited, module.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Print(res.Prog) != ir.Print(cold.Prog) {
		t.Fatal("warm incremental program differs from a cold build of the same sources")
	}
	if !equalAnswers(answers(t, res.Prog), answers(t, cold.Prog)) {
		t.Fatal("warm incremental answers differ from a cold build of the same sources")
	}
}

// TestBuildParallelDeterminism pins that the linked program is
// byte-identical for sequential and parallel batch compiles.
func TestBuildParallelDeterminism(t *testing.T) {
	files := projectFiles(t)
	seq, err := module.Build(files, module.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := module.Build(files, module.Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if ir.Print(seq.Prog) != ir.Print(par.Prog) {
		t.Fatal("parallel build produced a different program than sequential")
	}
}

// TestBuildLinkErrors pins cross-module conflicts as positioned link
// diagnostics.
func TestBuildLinkErrors(t *testing.T) {
	dupGlobal := []module.File{
		{Name: "a", Source: "int shared;\n"},
		{Name: "b", Source: "int shared;\nint main() { return 0; }\n"},
	}
	if _, err := module.Build(dupGlobal, module.Options{}); err == nil {
		t.Error("duplicate global across modules not reported")
	}
	dupFunc := []module.File{
		{Name: "a", Source: "int f() { return 1; }\n"},
		{Name: "b", Source: "int f() { return 2; }\nint main() { return f(); }\n"},
	}
	if _, err := module.Build(dupFunc, module.Options{}); err == nil {
		t.Error("duplicate function definition across modules not reported")
	}
}

// TestCacheSingleFlight pins that concurrent builds of the same hash
// coalesce onto one compile (run under -race in CI).
func TestCacheSingleFlight(t *testing.T) {
	files := projectFiles(t)
	cache := module.NewCache(256 << 20)
	const builders = 6
	var wg sync.WaitGroup
	results := make([]*module.Result, builders)
	errs := make([]error, builders)
	for i := 0; i < builders; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = module.Build(files, module.Options{Cache: cache, Parallel: 2})
		}(i)
	}
	wg.Wait()
	totalCompiled := 0
	for i := 0; i < builders; i++ {
		if errs[i] != nil {
			t.Fatalf("builder %d: %v", i, errs[i])
		}
		if results[i].Compiled+results[i].Reused != 50 {
			t.Fatalf("builder %d resolved %d modules, want 50",
				i, results[i].Compiled+results[i].Reused)
		}
		totalCompiled += results[i].Compiled
	}
	// Every module compiles at most once across ALL builders: the rest
	// are cache hits or coalesced waiters.
	if totalCompiled > 50 {
		t.Fatalf("modules compiled %d times across %d concurrent builds, want <= 50", totalCompiled, builders)
	}
	want := ir.Print(results[0].Prog)
	for i := 1; i < builders; i++ {
		if ir.Print(results[i].Prog) != want {
			t.Fatalf("builder %d linked a different program", i)
		}
	}
}
