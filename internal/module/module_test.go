package module

import (
	"strings"
	"testing"
)

func TestGraphBasics(t *testing.T) {
	files := []File{
		{Name: "main", Source: "#include \"b\"\n#include \"a\"\n#include \"b\"\nint main() { return f() + g(); }\n"},
		{Name: "a", Source: "int f() { return 1; }\n"},
		{Name: "b", Source: "#include \"a\"\nint g() { return f(); }\n"},
	}
	g, err := NewGraph(files)
	if err != nil {
		t.Fatal(err)
	}
	m := g.ByName("main")
	// Deps are sorted and deduplicated.
	if len(m.Deps) != 2 || m.Deps[0] != "a" || m.Deps[1] != "b" {
		t.Fatalf("main deps = %v, want [a b]", m.Deps)
	}
	// Link order is topological with name tie-breaks: a, b, main.
	var order []string
	for _, mod := range g.Modules {
		order = append(order, mod.Name)
	}
	if strings.Join(order, ",") != "a,b,main" {
		t.Fatalf("link order = %v", order)
	}
	if g.ByName("a").Batch != 0 || g.ByName("b").Batch != 1 || m.Batch != 2 {
		t.Fatalf("batches = %d/%d/%d, want 0/1/2",
			g.ByName("a").Batch, g.ByName("b").Batch, m.Batch)
	}
	batches := g.Batches()
	if len(batches) != 3 {
		t.Fatalf("batch count = %d, want 3", len(batches))
	}
	// Closure is in link order and excludes the module itself.
	cl := g.Closure(m)
	if len(cl) != 2 || cl[0].Name != "a" || cl[1].Name != "b" {
		t.Fatalf("closure(main) = %v", cl)
	}
}

func TestGraphHashPropagation(t *testing.T) {
	base := []File{
		{Name: "a", Source: "int f() { return 1; }\n"},
		{Name: "b", Source: "#include \"a\"\nint g() { return f(); }\n"},
		{Name: "c", Source: "int h() { return 3; }\n"},
	}
	g0, err := NewGraph(base)
	if err != nil {
		t.Fatal(err)
	}
	// Same inputs, same hashes: the hash is a pure function of content.
	g1, _ := NewGraph(base)
	for _, m := range g0.Modules {
		if g1.ByName(m.Name).Hash != m.Hash {
			t.Fatalf("hash of %s not stable", m.Name)
		}
	}
	if g0.SetHash() != g1.SetHash() {
		t.Fatal("set hash not stable")
	}
	// Editing a changes a and its dependent b, but not the unrelated c.
	edited := append([]File(nil), base...)
	edited[0].Source += "// touched\n"
	g2, err := NewGraph(edited)
	if err != nil {
		t.Fatal(err)
	}
	if g2.ByName("a").Hash == g0.ByName("a").Hash {
		t.Error("edited module kept its hash")
	}
	if g2.ByName("b").Hash == g0.ByName("b").Hash {
		t.Error("dependent of the edited module kept its hash")
	}
	if g2.ByName("c").Hash != g0.ByName("c").Hash {
		t.Error("unrelated module changed hash")
	}
	if g2.SetHash() == g0.SetHash() {
		t.Error("set hash unchanged by an edit")
	}
}

func TestGraphErrors(t *testing.T) {
	cases := []struct {
		name  string
		files []File
		want  string
	}{
		{"empty name", []File{{Name: "", Source: "int f();"}}, "empty name"},
		{"duplicate", []File{{Name: "a", Source: ""}, {Name: "a", Source: ""}}, `duplicate module "a"`},
		{"self include", []File{{Name: "a", Source: "#include \"a\"\n"}}, `includes itself`},
		{"unknown include", []File{{Name: "a", Source: "#include \"ghost\"\n"}}, `unknown module "ghost"`},
		{"cycle", []File{
			{Name: "a", Source: "#include \"b\"\nint f();\n"},
			{Name: "b", Source: "#include \"a\"\nint g();\n"},
		}, "include cycle"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewGraph(tc.files)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

// TestGraphCyclePosition pins that a cycle diagnostic points at an
// include directive inside the cycle, with file/line/column.
func TestGraphCyclePosition(t *testing.T) {
	files := []File{
		{Name: "x", Source: "// header\n#include \"y\"\n"},
		{Name: "y", Source: "#include \"x\"\n"},
	}
	_, err := NewGraph(files)
	if err == nil {
		t.Fatal("cycle not detected")
	}
	msg := err.Error()
	if !strings.Contains(msg, "x:2:") && !strings.Contains(msg, "y:1:") {
		t.Fatalf("cycle diagnostic carries no include position: %v", msg)
	}
	if !strings.Contains(msg, `"x" -> "y" -> "x"`) && !strings.Contains(msg, `"y" -> "x" -> "y"`) {
		t.Fatalf("cycle diagnostic does not name the cycle: %v", msg)
	}
}

func TestFlattenStripsIncludes(t *testing.T) {
	files := []File{
		{Name: "b", Source: "#include \"a\"\r\nint g() { return f(); }\r\n"},
		{Name: "a", Source: "int f() { return 1; }\n"},
	}
	flat, err := Flatten(files)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(flat, "#include") {
		t.Fatalf("flattened source still has includes:\n%s", flat)
	}
	// Link order: a before its dependent b; non-include lines survive
	// byte-for-byte (including the CRLF terminator).
	ia := strings.Index(flat, "int f()")
	ib := strings.Index(flat, "int g()")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("flatten order wrong:\n%s", flat)
	}
	if !strings.Contains(flat, "int g() { return f(); }\r\n") {
		t.Fatalf("non-include line not preserved byte-for-byte:\n%s", flat)
	}
	if _, err := Flatten([]File{{Name: "a", Source: "#include \"a\"\n"}}); err == nil {
		t.Fatal("Flatten accepted an invalid graph")
	}
}
