package module

import (
	"sync"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/cache"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/pool"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/token"
)

// FuncSig records one of a module's own top-level function declarations,
// for link-time conflict checks and deterministic shell ordering.
type FuncSig struct {
	Name    string
	Arity   int
	Defined bool // has a body in this module
	Pos     token.Pos
}

// GlobalSig records one of a module's own top-level globals.
type GlobalSig struct {
	Name string
	Pos  token.Pos
}

// Unit is one compiled module: the immutable artifact cached across
// builds under the module's transitive content hash. Prog is the
// module's own SSA program — its functions compiled against bodiless
// dependency shells — and is never mutated after compilation; linking
// clones out of it (see ir.CloneBody).
type Unit struct {
	Name string
	Hash string
	// Exports are the declarations dependents compile against: struct
	// declarations, global declarations, and function prototypes
	// (bodies stripped). The nodes are shared read-only across every
	// dependent's type check.
	Exports []ast.Decl
	// Prog is the per-module SSA IR (O0, mem2reg'd, verified).
	Prog *ir.Program
	// OwnGlobals and OwnFuncs list the module's own top-level
	// declarations in source order; DefinedFuncs the subset of function
	// names the module defines. Link order is derived from these.
	OwnGlobals   []GlobalSig
	OwnFuncs     []FuncSig
	DefinedFuncs []string
	// SizeEstimate is the deterministic byte-size estimate used for
	// cache accounting.
	SizeEstimate int64
}

// Cache retains compiled Units across builds, keyed by transitive
// content hash and bounded by a byte budget. Concurrent requests for
// the same hash are single-flighted: one builds, the rest wait for its
// result. Publication into the LRU happens before the in-flight marker
// is dropped, so there is no window where a racing caller misses both.
type Cache struct {
	lru *cache.LRU[*Unit]

	mu       sync.Mutex
	inflight map[string]*unitFlight
}

type unitFlight struct {
	done chan struct{}
	unit *Unit
	err  error
}

// NewCache returns a unit cache bounded to budget bytes (of
// SizeEstimate accounting).
func NewCache(budget int64) *Cache {
	return &Cache{
		lru:      cache.New[*Unit](budget),
		inflight: make(map[string]*unitFlight),
	}
}

// Stats returns the underlying LRU counters.
func (c *Cache) Stats() cache.Stats { return c.lru.Stats() }

// getOrBuild returns the cached unit for hash, or runs build exactly
// once per concurrent group of callers. reused is true when the caller
// did not run build itself (cache hit or coalesced onto another
// caller's build). Build errors are returned to every waiter and never
// cached — the next build retries.
func (c *Cache) getOrBuild(hash string, build func() (*Unit, error)) (unit *Unit, reused bool, err error) {
	c.mu.Lock()
	if u, ok := c.lru.Get(hash); ok {
		c.mu.Unlock()
		return u, true, nil
	}
	if f, ok := c.inflight[hash]; ok {
		c.mu.Unlock()
		<-f.done
		if f.err != nil {
			return nil, false, f.err
		}
		return f.unit, true, nil
	}
	f := &unitFlight{done: make(chan struct{})}
	c.inflight[hash] = f
	c.mu.Unlock()

	f.unit, f.err = build()

	c.mu.Lock()
	if f.err == nil {
		c.lru.Put(hash, f.unit, f.unit.SizeEstimate)
	}
	delete(c.inflight, hash)
	c.mu.Unlock()
	close(f.done)
	return f.unit, false, f.err
}

// Options configures a Build.
type Options struct {
	// Cache retains units across builds; nil compiles every module.
	Cache *Cache
	// Stats receives per-pass observations (variant = module name for
	// the frontend passes, "" for link). Nil records nothing.
	Stats *stats.Collector
	// Parallel bounds per-batch compile concurrency (values < 2 are
	// sequential, matching pool.ForEach).
	Parallel int
}

// Result is a completed multi-file build.
type Result struct {
	// Prog is the linked whole program, ready for ApplyLevel and the
	// shared analysis pipeline.
	Prog  *ir.Program
	Graph *Graph
	// Units in link order.
	Units []*Unit
	// Reused counts modules resolved from warm artifacts (cache hits or
	// coalesced builds); Compiled counts modules whose frontend ran.
	Reused, Compiled int
}

// Build compiles a module set into one linked program: dependency
// graph, per-module frontend in parallel topological batches (warm
// units from opts.Cache skip their frontend entirely), then link. The
// result is deterministic for any Parallel value.
func Build(files []File, opts Options) (_ *Result, err error) {
	defer diag.Guard(diag.PhaseInternal, &err)
	g, err := NewGraph(files)
	if err != nil {
		return nil, err
	}
	res := &Result{Graph: g}
	units := make(map[string]*Unit, len(g.Modules))
	for _, batch := range g.Batches() {
		outs := make([]*Unit, len(batch))
		hits := make([]bool, len(batch))
		batch := batch
		ferr := pool.ForEach(opts.Parallel, len(batch), func(i int) error {
			m := batch[i]
			build := func() (*Unit, error) { return compileModule(g, m, units, opts.Stats) }
			if opts.Cache == nil {
				u, uerr := build()
				outs[i] = u
				return uerr
			}
			u, reused, uerr := opts.Cache.getOrBuild(m.Hash, build)
			outs[i], hits[i] = u, reused
			return uerr
		})
		if ferr != nil {
			return nil, ferr
		}
		for i, u := range outs {
			units[u.Name] = u
			if hits[i] {
				res.Reused++
			} else {
				res.Compiled++
			}
		}
	}
	for _, m := range g.Modules {
		res.Units = append(res.Units, units[m.Name])
	}
	err = pipeline.ObservePass(opts.Stats, "link", "", func() (map[string]int64, error) {
		prog, counters, lerr := link(res.Units)
		if lerr != nil {
			return nil, lerr
		}
		counters["modules"] = int64(len(res.Units))
		counters["reused"] = int64(res.Reused)
		res.Prog = prog
		return counters, nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// compileModule runs the per-module frontend: parse the module's own
// source, splice its transitive dependencies' exports ahead of its own
// declarations, then typecheck → lower → mem2reg → verify the unit.
// Every pass is observed under the module's name as the variant.
func compileModule(g *Graph, m *Module, units map[string]*Unit, sc *stats.Collector) (*Unit, error) {
	astProg, err := pipeline.ParseSource(m.Name, m.Source, m.Name, sc)
	if err != nil {
		return nil, err
	}
	closure := g.Closure(m)
	var decls []ast.Decl
	for _, dep := range closure {
		decls = append(decls, units[dep.Name].Exports...)
	}
	u := &Unit{Name: m.Name, Hash: m.Hash}
	for _, d := range astProg.Decls {
		switch d := d.(type) {
		case *ast.Include:
			continue
		case *ast.VarDecl:
			u.OwnGlobals = append(u.OwnGlobals, GlobalSig{Name: d.Name, Pos: d.Pos()})
		case *ast.FuncDecl:
			u.OwnFuncs = append(u.OwnFuncs, FuncSig{
				Name: d.Name, Arity: len(d.Params), Defined: d.Body != nil, Pos: d.Pos(),
			})
			if d.Body != nil {
				u.DefinedFuncs = append(u.DefinedFuncs, d.Name)
			}
		}
		decls = append(decls, d)
	}
	unitAST := &ast.Program{File: m.Name, Decls: decls}
	prog, err := pipeline.CompileUnit(unitAST, m.Name, sc)
	if err != nil {
		return nil, err
	}
	u.Prog = prog
	u.Exports = exportsOf(astProg)
	u.SizeEstimate = sizeEstimate(m.Source, prog)
	return u, nil
}

// exportsOf builds the interface a module presents to its dependents:
// structs and globals as-is, functions stripped to prototypes. The
// prototype nodes are created once here and shared read-only by every
// dependent unit (types.Check does not mutate the AST).
func exportsOf(astProg *ast.Program) []ast.Decl {
	var out []ast.Decl
	seenProto := make(map[string]bool)
	for _, d := range astProg.Decls {
		switch d := d.(type) {
		case *ast.StructDecl:
			out = append(out, d)
		case *ast.VarDecl:
			out = append(out, d)
		case *ast.FuncDecl:
			// A module with both a prototype and a definition exports
			// one prototype.
			if seenProto[d.Name] {
				continue
			}
			seenProto[d.Name] = true
			out = append(out, &ast.FuncDecl{
				NamePos: d.NamePos, Ret: d.Ret, Name: d.Name, Params: d.Params,
				Variadic: d.Variadic,
			})
		}
	}
	return out
}

// sizeEstimate is the deterministic cache-accounting size of a unit:
// source bytes plus a per-instruction charge for the retained IR and
// AST. Deterministic sizing keeps eviction behavior reproducible.
func sizeEstimate(src string, prog *ir.Program) int64 {
	instrs := 0
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			instrs += len(b.Instrs)
		}
	}
	return int64(len(src)) + int64(instrs)*256 + 4096
}
