package module_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/module"
)

// stringFiles exercises the widened MiniC surface across module
// boundaries: string-literal char arrays (two modules each interning
// their own ".str0", one literal shared by content), a global
// string-initialized array, struct-by-value returns, memory intrinsics,
// and a cross-module variadic call with one planted underfed use.
var stringFiles = []module.File{
	{Name: "sproto", Source: `
struct S { int a; int b; };
int vsum(int n, ...);
struct S mk(int a);
`},
	{Name: "svimpl", Source: `
#include "sproto"
int vsum(int n, ...) {
  int t = 0;
  for (int i = 0; i < n; i++) { t += va_arg(i); }
  return t;
}
struct S mk(int a) { struct S s; s.a = a; s.b = a + 1; return s; }
`},
	{Name: "strs", Source: `
char greet[6] = "hey";
int lit1() { char a[4] = "abc"; return a[0] + greet[0]; }
`},
	{Name: "strs2", Source: `
int lit2() { char b[6] = "xy"; char c[4] = "abc"; return b[0] + c[2]; }
`},
	{Name: "main", Source: `
#include "sproto"
#include "strs"
#include "strs2"
int main() {
  char buf[8];
  memset(buf, lit1(), 4);
  char dst[8];
  memcpy(dst, buf, 4);
  struct S s = mk(dst[0]);
  int good = vsum(2, s.a, s.b);
  int bad = vsum(1);
  print(good + lit2());
  if (bad > 0) { print(1); }
  return 0;
}
`},
}

// TestBuildMatchesFlattenedWidened extends the tentpole equivalence
// criterion to the widened constructs: the multi-file build must agree
// with single-file analysis of the flattened source on warning sites
// and static stats across all six configs, and link must dedup
// string-literal globals by content rather than colliding on the
// per-unit ".str%d" names.
func TestBuildMatchesFlattenedWidened(t *testing.T) {
	res, err := module.Build(stringFiles, module.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	flat, err := module.Flatten(stringFiles)
	if err != nil {
		t.Fatalf("flatten: %v", err)
	}
	single, err := usher.Compile("flat.c", flat)
	if err != nil {
		t.Fatalf("compile flattened: %v", err)
	}
	multi := answers(t, res.Prog)
	want := answers(t, single)
	if !equalAnswers(multi, want) {
		t.Fatalf("multi-file answers diverge from flattened single file:\nmulti: %+v\nflat:  %+v", multi, want)
	}
	if len(multi[0].warnings) == 0 {
		t.Fatal("equivalence is vacuous: no warnings in the corpus")
	}

	// "abc" is used by both strs and strs2; each unit interns it as its
	// own local literal, and link must merge them into one canonical
	// object. Distinct literals after linking: "abc" and "xy".
	lits := 0
	for _, o := range res.Prog.Globals {
		if strings.HasPrefix(o.Name, ".str") {
			lits++
		}
	}
	if lits != 2 {
		t.Fatalf("linked program has %d .str literal globals, want 2 (content-deduped)", lits)
	}
}
