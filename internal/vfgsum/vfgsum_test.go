package vfgsum_test

import (
	"fmt"
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/vfgsum"
	"github.com/valueflow/usher/internal/workload"
)

func buildGraph(t *testing.T, name, src string) *vfg.Graph {
	t.Helper()
	irp := compile.MustSource(name, src)
	pa := pointer.Analyze(irp)
	mem := memssa.Build(irp, pa)
	return vfg.Build(irp, pa, mem, vfg.Options{})
}

func buildGraphTL(t *testing.T, name, src string) *vfg.Graph {
	t.Helper()
	irp := compile.MustSource(name, src)
	pa := pointer.Analyze(irp)
	mem := memssa.Build(irp, pa)
	return vfg.Build(irp, pa, mem, vfg.Options{TopLevelOnly: true})
}

// requireSameGamma fails unless the two Γs agree on every node.
func requireSameGamma(t *testing.T, g *vfg.Graph, dense, sum *vfg.Gamma, label string) {
	t.Helper()
	for _, n := range g.Nodes {
		if dense.Of(n) != sum.Of(n) {
			t.Fatalf("%s: node %v: dense %v, summary %v", label, n, dense.Of(n), sum.Of(n))
		}
	}
	db, sb := dense.BottomBits(), sum.BottomBits()
	if !db.Equal(sb) {
		t.Fatalf("%s: ⊥ bit vectors differ (dense %d vs summary %d bits)",
			label, db.Count(), sb.Count())
	}
}

// TestSummaryGammaIdenticalOnWorkloads pins summary resolution against
// the dense resolver on the workload benchmarks, both graph variants.
func TestSummaryGammaIdenticalOnWorkloads(t *testing.T) {
	for _, p := range workload.Profiles {
		src := workload.Generate(p)
		for _, tl := range []bool{false, true} {
			var g *vfg.Graph
			if tl {
				g = buildGraphTL(t, p.Name+".c", src)
			} else {
				g = buildGraph(t, p.Name+".c", src)
			}
			sum := vfgsum.Build(g)
			requireSameGamma(t, g, vfg.Resolve(g), sum.Resolve(),
				fmt.Sprintf("%s tl=%v", p.Name, tl))
			if sum.Supernodes() >= len(g.Nodes) {
				t.Errorf("%s tl=%v: condensation is vacuous (%d supernodes for %d nodes)",
					p.Name, tl, sum.Supernodes(), len(g.Nodes))
			}
		}
	}
}

// TestSummaryGammaIdenticalOnRandomPrograms extends the identity to the
// fuzzer corpus.
func TestSummaryGammaIdenticalOnRandomPrograms(t *testing.T) {
	seeds := 300
	if testing.Short() {
		seeds = 50
	}
	for seed := 0; seed < seeds; seed++ {
		src := randprog.Generate(int64(seed), randprog.DefaultOptions)
		irp, err := compile.Source("rand.c", src)
		if err != nil {
			continue
		}
		pa := pointer.Analyze(irp)
		mem := memssa.Build(irp, pa)
		g := vfg.Build(irp, pa, mem, vfg.Options{})
		requireSameGamma(t, g, vfg.Resolve(g), vfgsum.Build(g).Resolve(),
			fmt.Sprintf("seed %d", seed))
	}
}

// TestSummaryResolveCutIdentical pins the cut-aware path (Opt II's
// re-resolution) against vfg.ResolveCut under a spread of synthetic cut
// predicates.
func TestSummaryResolveCutIdentical(t *testing.T) {
	cuts := []struct {
		name string
		cut  func(from, to *vfg.Node) bool
	}{
		{"none", func(from, to *vfg.Node) bool { return false }},
		{"mod3", func(from, to *vfg.Node) bool { return (from.ID+to.ID)%3 == 0 }},
		{"mod7", func(from, to *vfg.Node) bool { return from.ID%7 == 2 }},
		{"roots", func(from, to *vfg.Node) bool { return to.Kind == vfg.NodeRootF && from.ID%2 == 0 }},
	}
	for seed := 0; seed < 40; seed++ {
		src := randprog.Generate(int64(seed), randprog.DefaultOptions)
		irp, err := compile.Source("rand.c", src)
		if err != nil {
			continue
		}
		pa := pointer.Analyze(irp)
		mem := memssa.Build(irp, pa)
		g := vfg.Build(irp, pa, mem, vfg.Options{})
		for _, c := range cuts {
			requireSameGamma(t, g, vfg.ResolveCut(g, c.cut), vfgsum.ResolveCut(g, c.cut),
				fmt.Sprintf("seed %d cut %s", seed, c.name))
		}
	}
}

// TestSummaryDeterministicAcrossWorkers pins the build's deterministic
// counters and the resolved Γ at every condensation worker count.
func TestSummaryDeterministicAcrossWorkers(t *testing.T) {
	p := workload.Profiles[0]
	g := buildGraph(t, p.Name+".c", workload.Generate(p))
	defer func(w int) { vfgsum.Workers = w }(vfgsum.Workers)

	vfgsum.Workers = 1
	base := vfgsum.Build(g)
	baseGamma := base.Resolve()
	for _, w := range []int{2, 4, 8} {
		vfgsum.Workers = w
		sum := vfgsum.Build(g)
		if sum.Stats != base.Stats {
			t.Fatalf("workers=%d: stats %+v differ from sequential %+v", w, sum.Stats, base.Stats)
		}
		requireSameGamma(t, g, baseGamma, sum.Resolve(), fmt.Sprintf("workers=%d", w))
	}
}

// TestSummaryStatsMeaningful spot-checks that condensation actually
// collapses something on a program with loops and pass-through chains.
func TestSummaryStatsMeaningful(t *testing.T) {
	src := `
int chain3(int x) { int a = x; int b = a; int c = b; return c; }
int loopy(int n) {
  int acc = n;
  while (n > 0) { acc = acc + n; n = n - 1; }
  return acc;
}
int main(int c) {
  int u;
  if (c) { u = 1; }
  int a = chain3(u);
  int b = loopy(a);
  print(b);
  return 0;
}`
	g := buildGraph(t, "stats.c", src)
	sum := vfgsum.Build(g)
	st := sum.Stats
	if st.Supernodes <= 0 || st.Supernodes >= len(g.Nodes) {
		t.Errorf("supernodes = %d for %d nodes; expected a real condensation", st.Supernodes, len(g.Nodes))
	}
	if st.SCCsCollapsed == 0 {
		t.Errorf("no SCCs collapsed despite the loop-carried dependence")
	}
	if st.ChainsCollapsed == 0 {
		t.Errorf("no chains collapsed despite the pass-through chain")
	}
	if st.Ports == 0 || st.BoundaryEdges == 0 {
		t.Errorf("ports=%d boundary=%d; interprocedural structure missing", st.Ports, st.BoundaryEdges)
	}
	requireSameGamma(t, g, vfg.Resolve(g), sum.Resolve(), "stats.c")
}
