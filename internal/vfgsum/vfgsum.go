// Package vfgsum implements Opt IV: summary-based sparse Γ resolution.
//
// Dense resolution (vfg.ResolveWith) walks the value-flow graph once per
// (node, context) state, so a function body entered through k call sites
// is re-traversed up to k+1 times. This package precomputes per-function
// definedness summaries instead: the VFG is first condensed — every
// intraprocedural strongly connected component and every pure
// pass-through chain collapses to a single supernode — and each
// condensed region's summary records which interprocedural exits
// (call-edge and return-edge targets, with their call sites) its
// undefinedness can reach. Resolution then runs over supernode states:
// the intraprocedural closure of a region is walked exactly once, on
// first entry, and every later entry under a new call-site context
// re-checks only the region's return exits — the part of the transfer
// that actually depends on the entry context. Return-edge summaries
// whose target has already been reached under the unknown (widened)
// context are dominated by that stronger summary and pruned from the
// exit lists as resolution proceeds.
//
// The construction is exact, not approximate: interprocedural edge
// targets and undefinedness roots are always supernode entry points, so
// every dense (node, context) derivation decomposes into supernode-level
// transitions, and the resulting ⊥ set is bit-identical to the dense
// resolver's for any graph. The A/B harness at the repository root pins
// this over the corpus, the workload profiles, and randprog seeds across
// all six configurations.
//
// Condensation decomposes by function (intraprocedural edges never link
// two functions; any stray cross-function region is merged into one
// bucket first), so the bottom-up summary construction runs in parallel
// over the function buckets via internal/pool, with a deterministic
// global renumbering that makes the result independent of the worker
// count.
package vfgsum

import (
	"sort"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pool"
	"github.com/valueflow/usher/internal/vfg"
)

// Enabled routes the pipeline's Γ resolution (and Opt II's cut
// re-resolution) through summary-based resolution. The dense resolver
// remains the default; the -gamma-summaries flag on the binaries flips
// this process-wide.
var Enabled bool

// Workers bounds the parallelism of the per-function condensation pass.
// 0 means one worker per CPU.
var Workers int

// Stats are the deterministic work counters of a summary build — they
// feed the `summaries` pipeline pass and are bit-identical at any
// worker count.
type Stats struct {
	// Supernodes is the region count after condensation.
	Supernodes int
	// Ports counts supernodes that are resolution entry points: targets
	// of interprocedural edges or of undefinedness roots.
	Ports int
	// SCCsCollapsed counts multi-node intraprocedural SCCs collapsed.
	SCCsCollapsed int
	// ChainsCollapsed counts pass-through regions merged into their
	// unique predecessor.
	ChainsCollapsed int
	// BoundaryEdges counts the deduplicated interprocedural exits
	// recorded across all summaries.
	BoundaryEdges int
	// PrunedEdges counts redundant summary edges dropped at build time
	// (duplicate exits with identical target and call site).
	PrunedEdges int
}

// exitEdge is one interprocedural summary exit: reaching the owning
// region implies entering supernode sn, through call site context site.
type exitEdge struct {
	sn   int32
	site int32
}

// Summary is the condensed value-flow graph plus per-region definedness
// summaries, ready for repeated resolution. It is immutable after Build
// and safe to share across concurrent resolutions.
type Summary struct {
	g   *vfg.Graph
	nsn int // supernode count

	snOf []int32 // node id -> supernode id (-1 for root nodes)

	// Members, condensed intraprocedural adjacency, and boundary exits,
	// all in CSR form indexed by supernode id.
	memStart  []int32
	memList   []int32
	adjStart  []int32
	adjList   []int32
	callStart []int32
	callList  []exitEdge
	retStart  []int32
	retList   []exitEdge

	// seeds are the supernodes undefinedness is born in (root edges),
	// in deterministic first-occurrence order.
	seeds    []int32
	numSites int

	// Stats carries the build's deterministic counters.
	Stats Stats
}

// Graph returns the graph the summary condenses.
func (s *Summary) Graph() *vfg.Graph { return s.g }

// Supernodes returns the region count after condensation.
func (s *Summary) Supernodes() int { return s.nsn }

// Build condenses g and constructs its definedness summaries.
func Build(g *vfg.Graph) *Summary { return build(g, nil) }

// BuildCut is Build with a dependence-edge filter, matching
// vfg.ResolveCut's semantics: a user edge whose corresponding dependence
// edge is cut is absent from the condensation. Opt II's re-resolution
// must use a cut-aware summary — a cut edge inside a collapsed region
// would otherwise be traversed through the region's supernode.
func BuildCut(g *vfg.Graph, cut func(from, to *vfg.Node) bool) *Summary {
	return build(g, cut)
}

func build(g *vfg.Graph, cut func(from, to *vfg.Node) bool) *Summary {
	n := len(g.Nodes)
	s := &Summary{g: g, snOf: make([]int32, n)}
	_, s.numSites = g.Sites()

	// Pass 1: cut-filtered intraprocedural adjacency in CSR form, plus
	// the interprocedural edge list and the root seeds. A user edge from
	// u to e.To corresponds to the dependence edge e.To -> u, which is
	// what the cut predicate keys on (as in vfg.ResolveWith).
	intraStart := make([]int32, n+1)
	type interEdge struct {
		from, to int32
		site     int32
		kind     vfg.EdgeKind
	}
	var inter []interEdge
	isRoot := func(nd *vfg.Node) bool {
		return nd.Kind == vfg.NodeRootT || nd.Kind == vfg.NodeRootF
	}
	siteIDs, _ := g.Sites()
	for _, u := range g.Nodes {
		if isRoot(u) {
			continue
		}
		for _, e := range u.Users {
			if cut != nil && cut(e.To, u) {
				continue
			}
			if e.Kind == vfg.EdgeIntra {
				intraStart[u.ID+1]++
			} else {
				inter = append(inter, interEdge{
					from: int32(u.ID), to: int32(e.To.ID),
					site: int32(siteIDs[e.Site]), kind: e.Kind,
				})
			}
		}
	}
	for i := 0; i < n; i++ {
		intraStart[i+1] += intraStart[i]
	}
	intraList := make([]int32, intraStart[n])
	fill := make([]int32, n)
	copy(fill, intraStart[:n])
	for _, u := range g.Nodes {
		if isRoot(u) {
			continue
		}
		for _, e := range u.Users {
			if e.Kind != vfg.EdgeIntra || (cut != nil && cut(e.To, u)) {
				continue
			}
			intraList[fill[u.ID]] = int32(e.To.ID)
			fill[u.ID]++
		}
	}
	var seedNodes []int32
	for _, e := range g.RootF.Users {
		if cut != nil && cut(e.To, g.RootF) {
			continue
		}
		seedNodes = append(seedNodes, int32(e.To.ID))
	}

	// Pass 2: bucket nodes by function. Intraprocedural edges are built
	// within one function, but the partition does not assume it: any
	// cross-bucket intra edge merges its endpoints' buckets, so each
	// bucket's subgraph is closed under intra edges and can be condensed
	// independently.
	bucketOf := make([]int32, n)
	for i := range bucketOf {
		bucketOf[i] = -1
	}
	fnBucket := make(map[*ir.Function]int32)
	nb := int32(0)
	for _, nd := range g.Nodes {
		if isRoot(nd) {
			continue
		}
		b, ok := fnBucket[nd.Fn]
		if !ok {
			b = nb
			nb++
			fnBucket[nd.Fn] = b
		}
		bucketOf[nd.ID] = b
	}
	bParent := make([]int32, nb)
	for i := range bParent {
		bParent[i] = int32(i)
	}
	var bFind func(x int32) int32
	bFind = func(x int32) int32 {
		for bParent[x] != x {
			bParent[x] = bParent[bParent[x]]
			x = bParent[x]
		}
		return x
	}
	for u := 0; u < n; u++ {
		if bucketOf[u] < 0 {
			continue
		}
		for _, v := range intraList[intraStart[u]:intraStart[u+1]] {
			bu, bv := bFind(bucketOf[u]), bFind(bucketOf[v])
			if bu != bv {
				bParent[bv] = bu
			}
		}
	}
	bucketNodes := make(map[int32][]int32)
	for u := 0; u < n; u++ {
		if bucketOf[u] < 0 {
			continue
		}
		b := bFind(bucketOf[u])
		bucketNodes[b] = append(bucketNodes[b], int32(u))
	}
	buckets := make([][]int32, 0, len(bucketNodes))
	for _, nodes := range bucketNodes {
		buckets = append(buckets, nodes)
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i][0] < buckets[j][0] })

	// Pass 3: intraprocedural SCCs per bucket, in parallel. Each worker
	// writes the prelim component id of its own nodes only; the ids are
	// made globally unique by offsetting with the node index, so the
	// partition (what matters) is identical at any worker count.
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	workers := Workers
	if workers <= 0 {
		workers = pool.DefaultParallelism()
	}
	_ = pool.ForEach(workers, len(buckets), func(bi int) error {
		tarjan(buckets[bi], intraStart, intraList, comp)
		return nil
	})

	// Renumber prelim components densely and deterministically by first
	// appearance in node-id order.
	prelim := make([]int32, n)
	for i := range prelim {
		prelim[i] = -1
	}
	compIndex := make(map[int32]int32)
	np := int32(0)
	for u := 0; u < n; u++ {
		if comp[u] < 0 {
			continue
		}
		c, ok := compIndex[comp[u]]
		if !ok {
			c = np
			np++
			compIndex[comp[u]] = c
		}
		prelim[u] = c
	}
	sccsCollapsed := 0
	{
		sizes := make([]int32, np)
		for u := 0; u < n; u++ {
			if prelim[u] >= 0 {
				sizes[prelim[u]]++
			}
		}
		for _, sz := range sizes {
			if sz > 1 {
				sccsCollapsed++
			}
		}
	}

	// Pass 4: chain collapsing. A component with no entry points (no
	// interprocedural in-edge, no root seed) whose intra in-edges all
	// come from one other component is reached exactly when that
	// predecessor is, under exactly the same contexts — merge them.
	// Merging is computed on the prelim component DAG, so it is
	// deterministic and cannot form cycles.
	const (
		predNone  = int32(-1)
		predMulti = int32(-2)
	)
	pred := make([]int32, np)
	for i := range pred {
		pred[i] = predNone
	}
	hasEntry := make([]bool, np)
	for u := 0; u < n; u++ {
		if prelim[u] < 0 {
			continue
		}
		pu := prelim[u]
		for _, v := range intraList[intraStart[u]:intraStart[u+1]] {
			pv := prelim[v]
			if pv == pu {
				continue
			}
			switch pred[pv] {
			case predNone:
				pred[pv] = pu
			case pu, predMulti:
			default:
				pred[pv] = predMulti
			}
		}
	}
	for _, e := range inter {
		hasEntry[prelim[e.to]] = true
	}
	for _, t := range seedNodes {
		hasEntry[prelim[t]] = true
	}
	parent := make([]int32, np)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	chains := 0
	for v := int32(0); v < np; v++ {
		if !hasEntry[v] && pred[v] >= 0 {
			parent[v] = pred[v] // resolved transitively by find
			chains++
		}
	}

	// Final supernode numbering: rank of the minimum member node id.
	s.snOf = make([]int32, n)
	for i := range s.snOf {
		s.snOf[i] = -1
	}
	finalIndex := make(map[int32]int32)
	nsn := int32(0)
	for u := 0; u < n; u++ {
		if prelim[u] < 0 {
			continue
		}
		root := find(prelim[u])
		id, ok := finalIndex[root]
		if !ok {
			id = nsn
			nsn++
			finalIndex[root] = id
		}
		s.snOf[u] = id
	}
	s.nsn = int(nsn)

	// Members CSR (ascending node ids by construction).
	s.memStart = make([]int32, nsn+1)
	for u := 0; u < n; u++ {
		if s.snOf[u] >= 0 {
			s.memStart[s.snOf[u]+1]++
		}
	}
	for i := int32(0); i < nsn; i++ {
		s.memStart[i+1] += s.memStart[i]
	}
	s.memList = make([]int32, s.memStart[nsn])
	memFill := make([]int32, nsn)
	copy(memFill, s.memStart[:nsn])
	for u := 0; u < n; u++ {
		if sn := s.snOf[u]; sn >= 0 {
			s.memList[memFill[sn]] = int32(u)
			memFill[sn]++
		}
	}

	// Condensed adjacency and boundary exits, deduplicated per region.
	// Iterating regions over their (ascending) members keeps the order
	// deterministic; the stamp array gives exact intra dedup in O(E).
	stamp := make([]int32, nsn)
	for i := range stamp {
		stamp[i] = -1
	}
	s.adjStart = make([]int32, nsn+1)
	s.callStart = make([]int32, nsn+1)
	s.retStart = make([]int32, nsn+1)
	// Group interprocedural edges by source supernode for the exit scan.
	callBySN := make([][]exitEdge, nsn)
	retBySN := make([][]exitEdge, nsn)
	for _, e := range inter {
		su := s.snOf[e.from]
		ex := exitEdge{sn: s.snOf[e.to], site: e.site}
		if e.kind == vfg.EdgeCall {
			callBySN[su] = append(callBySN[su], ex)
		} else {
			retBySN[su] = append(retBySN[su], ex)
		}
	}
	pruned := 0
	dedupExits := func(list []exitEdge) []exitEdge {
		out := list[:0]
		for _, e := range list {
			dup := false
			for _, p := range out {
				if p == e {
					dup = true
					break
				}
			}
			if dup {
				pruned++
				continue
			}
			out = append(out, e)
		}
		return out
	}
	for sn := int32(0); sn < nsn; sn++ {
		for _, u := range s.memList[s.memStart[sn]:s.memStart[sn+1]] {
			for _, v := range intraList[intraStart[u]:intraStart[u+1]] {
				sv := s.snOf[v]
				if sv != sn && stamp[sv] != sn {
					stamp[sv] = sn
					s.adjList = append(s.adjList, sv)
				}
			}
		}
		s.adjStart[sn+1] = int32(len(s.adjList))
		callBySN[sn] = dedupExits(callBySN[sn])
		retBySN[sn] = dedupExits(retBySN[sn])
		s.callList = append(s.callList, callBySN[sn]...)
		s.retList = append(s.retList, retBySN[sn]...)
		s.callStart[sn+1] = int32(len(s.callList))
		s.retStart[sn+1] = int32(len(s.retList))
	}

	// Seeds and entry-point (port) count.
	seedStamp := make([]bool, nsn)
	for _, t := range seedNodes {
		sn := s.snOf[t]
		if !seedStamp[sn] {
			seedStamp[sn] = true
			s.seeds = append(s.seeds, sn)
		}
	}
	portStamp := make([]bool, nsn)
	ports := 0
	markPort := func(sn int32) {
		if !portStamp[sn] {
			portStamp[sn] = true
			ports++
		}
	}
	for _, sn := range s.seeds {
		markPort(sn)
	}
	for _, e := range inter {
		markPort(s.snOf[e.to])
	}

	s.Stats = Stats{
		Supernodes:      s.nsn,
		Ports:           ports,
		SCCsCollapsed:   sccsCollapsed,
		ChainsCollapsed: chains,
		BoundaryEdges:   len(s.callList) + len(s.retList),
		PrunedEdges:     pruned,
	}
	return s
}

// tarjan runs an iterative Tarjan SCC pass over one bucket's subgraph
// (nodes, with adjacency restricted by construction to the bucket) and
// writes each node's component id into comp. Component ids are the SCC
// root's node id, which is globally unique across buckets, so workers
// condensing disjoint buckets never conflict.
func tarjan(nodes []int32, adjStart, adjList []int32, comp []int32) {
	index := make(map[int32]int32, len(nodes))
	low := make(map[int32]int32, len(nodes))
	onStack := make(map[int32]bool, len(nodes))
	var stack []int32
	next := int32(0)

	type frame struct {
		v  int32
		ei int32
	}
	var frames []frame
	for _, start := range nodes {
		if _, seen := index[start]; seen {
			continue
		}
		frames = append(frames[:0], frame{v: start})
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			v := f.v
			advanced := false
			for f.ei < adjStart[v+1]-adjStart[v] {
				w := adjList[adjStart[v]+f.ei]
				f.ei++
				if _, seen := index[w]; !seen {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
					advanced = true
					break
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			// v is finished: pop its SCC if it is a root.
			if low[v] == index[v] {
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					comp[w] = v
					if w == v {
						break
					}
				}
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := frames[len(frames)-1].v
				if low[v] < low[p] {
					low[p] = low[v]
				}
			}
		}
	}
}
