package vfgsum

import (
	"github.com/valueflow/usher/internal/bitset"
	"github.com/valueflow/usher/internal/vfg"
)

// ctxUnknown is the widened top context, matching vfg's resolution: a
// flow in the unknown context may leave its function through any return.
const ctxUnknown = 0

// Resolve computes Γ over the condensed graph. The result is
// bit-identical to vfg.Resolve on the graph the summary was built from
// (or to vfg.ResolveCut under the cut BuildCut was given).
//
// States are (supernode, context) pairs. The first time a region is
// reached, its intraprocedural closure is walked once: every closure
// member becomes ⊥ and the closure's interprocedural exits are recorded
// as the region's summary. Call exits are context-independent (entering
// a callee at site s always yields context s) and fire once. Return
// exits are the context-dependent part of the summary: each later entry
// under a new context re-checks only them. A return exit whose target
// has already been resolved under the unknown context is dominated by
// that stronger summary and is pruned from the list, so hot regions'
// re-checks shrink as resolution proceeds.
//
// Resolution is sequential and deterministic; it never mutates the
// summary, so concurrent resolutions may share one Summary.
func (s *Summary) Resolve() *vfg.Gamma {
	nn := len(s.g.Nodes)
	bottom := bitset.New(nn)
	nsn := s.nsn

	// Visited (supernode, ctx) states; unknown subsumes every specific
	// context, exactly as in the dense resolver.
	seenUnknown := bitset.New(nsn)
	seenCtx := make([]*bitset.Set, nsn)
	numCtx := s.numSites + 1

	type state struct {
		sn  int32
		ctx int32
	}
	var work []state
	push := func(sn, ctx int32) {
		if seenUnknown.Has(int(sn)) {
			return
		}
		if ctx == ctxUnknown {
			seenUnknown.Add(int(sn))
			seenCtx[sn] = nil
		} else {
			if seenCtx[sn].Has(int(ctx)) {
				return
			}
			b := seenCtx[sn]
			if b == nil {
				b = bitset.New(numCtx)
				seenCtx[sn] = b
			}
			b.Add(int(ctx))
		}
		work = append(work, state{sn, ctx})
	}

	// Per-region summaries, materialized lazily on first entry.
	expanded := bitset.New(nsn)
	marked := bitset.New(nsn)
	callEx := make([][]exitEdge, nsn)
	retEx := make([][]exitEdge, nsn)
	visitGen := make([]int32, nsn)
	for i := range visitGen {
		visitGen[i] = -1
	}
	var stack []int32
	expand := func(sn int32) {
		// The walk is complete per region — it stops on this walk's own
		// visited stamps, never on already-⊥ regions — because the exits
		// collected here summarize everything reachable from sn, not just
		// the unvisited remainder.
		stack = append(stack[:0], sn)
		visitGen[sn] = sn
		var ce, re []exitEdge
		for len(stack) > 0 {
			t := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if marked.Add(int(t)) {
				for _, m := range s.memList[s.memStart[t]:s.memStart[t+1]] {
					bottom.Add(int(m))
				}
			}
			for _, v := range s.adjList[s.adjStart[t]:s.adjStart[t+1]] {
				if visitGen[v] != sn {
					visitGen[v] = sn
					stack = append(stack, v)
				}
			}
			ce = append(ce, s.callList[s.callStart[t]:s.callStart[t+1]]...)
			re = append(re, s.retList[s.retStart[t]:s.retStart[t+1]]...)
		}
		callEx[sn], retEx[sn] = ce, re
	}

	for _, sn := range s.seeds {
		push(sn, ctxUnknown)
	}
	for len(work) > 0 {
		st := work[len(work)-1]
		work = work[:len(work)-1]
		if expanded.Add(int(st.sn)) {
			expand(st.sn)
			// Call exits are entry-context-independent: fire them once.
			for _, e := range callEx[st.sn] {
				push(e.sn, e.site)
			}
		}
		// Return exits: leaving towards site e.site is allowed when the
		// flow entered there or the entry context is unknown. Exits whose
		// target is already ⊥ under the unknown context are redundant
		// summaries — compact them out in place.
		re := retEx[st.sn]
		keep := re[:0]
		for _, e := range re {
			if seenUnknown.Has(int(e.sn)) {
				continue
			}
			if st.ctx == ctxUnknown || st.ctx == e.site {
				push(e.sn, ctxUnknown)
				continue
			}
			keep = append(keep, e)
		}
		retEx[st.sn] = keep
	}
	return vfg.NewGammaFromBits(s.g, bottom)
}

// ResolveCut builds a cut-aware summary of g and resolves it — the
// summary-based equivalent of vfg.ResolveCut, used by Opt II's
// re-resolution. The cached cut-free summary cannot be reused: a cut
// edge inside a condensed region would be traversed through the region's
// supernode.
func ResolveCut(g *vfg.Graph, cut func(from, to *vfg.Node) bool) *vfg.Gamma {
	return BuildCut(g, cut).Resolve()
}
