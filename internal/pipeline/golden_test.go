package pipeline

import (
	"os"
	"strings"
	"testing"
)

// TestRegistryMatchesDocs is the code/documentation drift guard: the pass
// table in docs/ANALYSIS.md §8 must list exactly the registered passes,
// in registry order, with matching phase, needs, variants and counters.
func TestRegistryMatchesDocs(t *testing.T) {
	data, err := os.ReadFile("../../docs/ANALYSIS.md")
	if err != nil {
		t.Fatal(err)
	}
	rows := parsePassTable(t, string(data))
	if len(rows) != len(Registry) {
		t.Fatalf("docs table has %d rows, registry has %d passes", len(rows), len(Registry))
	}
	for i, p := range Registry {
		want := []string{
			p.Name,
			string(p.Phase),
			listCell(p.Needs),
			orDash(p.Variants),
			listCell(p.Counters),
		}
		for j, col := range []string{"pass", "phase", "needs", "variants", "counters"} {
			if rows[i][j] != want[j] {
				t.Errorf("row %d (%s), column %q: docs say %q, registry says %q",
					i, p.Name, col, rows[i][j], want[j])
			}
		}
	}
}

// parsePassTable extracts the cells of the markdown table whose header
// row is "| pass | phase | needs | variants | counters |".
func parsePassTable(t *testing.T, doc string) [][]string {
	t.Helper()
	lines := strings.Split(doc, "\n")
	var rows [][]string
	inTable := false
	for _, line := range lines {
		line = strings.TrimSpace(line)
		switch {
		case line == "| pass | phase | needs | variants | counters |":
			inTable = true
		case inTable && strings.HasPrefix(line, "|---"):
			// separator row
		case inTable && strings.HasPrefix(line, "|"):
			cells := strings.Split(strings.Trim(line, "|"), "|")
			if len(cells) != 5 {
				t.Fatalf("pass-table row has %d cells, want 5: %q", len(cells), line)
			}
			for i := range cells {
				cells[i] = strings.TrimSpace(cells[i])
			}
			rows = append(rows, cells)
		case inTable:
			return rows // table ended
		}
	}
	if !inTable {
		t.Fatal("docs/ANALYSIS.md has no pass table (header row not found)")
	}
	return rows
}

func listCell(items []string) string {
	if len(items) == 0 {
		return "-"
	}
	return strings.Join(items, ", ")
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// TestRegistryWellFormed checks the registry's internal consistency:
// unique names (also enforced at init), needs that reference only earlier
// passes, and sorted counter lists (the docs render them sorted, and the
// stats table prints them sorted).
func TestRegistryWellFormed(t *testing.T) {
	rank := make(map[string]int)
	for i, p := range Registry {
		if _, dup := rank[p.Name]; dup {
			t.Fatalf("duplicate pass %q", p.Name)
		}
		rank[p.Name] = i
		for _, need := range p.Needs {
			j, ok := rank[need]
			if !ok {
				t.Errorf("pass %q needs %q, which is not registered earlier", p.Name, need)
			} else if j >= i {
				t.Errorf("pass %q needs %q, which is registered later", p.Name, need)
			}
		}
		for k := 1; k < len(p.Counters); k++ {
			if p.Counters[k-1] >= p.Counters[k] {
				t.Errorf("pass %q counters not sorted/unique at %q", p.Name, p.Counters[k])
			}
		}
	}
	// ByName must agree with positions.
	for i, p := range Registry {
		got, gotRank := ByName(p.Name)
		if got != p || gotRank != i {
			t.Errorf("ByName(%q) = (%v, %d), want (%v, %d)", p.Name, got, gotRank, p, i)
		}
	}
}

// TestByNameUnknownPanics: an unknown pass name is a programming error.
func TestByNameUnknownPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ByName on unknown pass did not panic")
		}
	}()
	ByName("no-such-pass")
}
