package pipeline

import (
	"errors"
	"reflect"
	"sync"
	"testing"

	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/stats"
)

const storeTestSrc = `
int decide(int input) {
  int mode;
  if (input > 10) { mode = input * 2; }
  if (mode > 15) { return 1; }
  return 0;
}

int main() {
  int hits = 0;
  for (int i = 0; i < 20; i++) { hits += decide(i); }
  print(hits);
  return 0;
}
`

// testSpecs mirrors the six instrumentation configurations (the store is
// config-agnostic; usher's config table feeds it equivalent specs).
var testSpecs = []PlanSpec{
	{Name: "MSan", Full: true},
	{Name: "UsherTL", TopLevelOnly: true, MemoryFull: true},
	{Name: "UsherTL+AT"},
	{Name: "UsherOptI", OptI: true},
	{Name: "Usher", OptI: true, OptII: true},
	{Name: "Usher+OptIII", OptI: true, OptII: true, OptIII: true},
}

func compileTestProg(t *testing.T, sc *stats.Collector) *Store {
	t.Helper()
	prog, err := Compile("store_test.c", storeTestSrc, sc)
	if err != nil {
		t.Fatal(err)
	}
	if err := ApplyLevel(prog, passes.O0IM, sc); err != nil {
		t.Fatal(err)
	}
	return NewStore(prog, sc)
}

// TestStoreExactlyOnce drives every artifact from many goroutines at once
// (run under -race in CI) and checks through the collector that each
// pass/variant pair ran exactly one time.
func TestStoreExactlyOnce(t *testing.T) {
	sc := stats.New()
	st := compileTestProg(t, sc)

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, spec := range testSpecs {
				if _, err := st.Plan(spec); err != nil {
					errs[i] = err
					return
				}
			}
			if _, err := st.Pointer(); err != nil {
				errs[i] = err
			}
			if _, err := st.Graph(true); err != nil {
				errs[i] = err
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	snap := sc.Snapshot()
	if len(snap) == 0 {
		t.Fatal("collector recorded nothing")
	}
	seen := make(map[Key]bool)
	for _, ps := range snap {
		if ps.Runs != 1 {
			t.Errorf("pass %s variant %q ran %d times, want exactly 1", ps.Pass, ps.Variant, ps.Runs)
		}
		k := Key{ps.Pass, ps.Variant}
		if seen[k] {
			t.Errorf("pass %s variant %q reported twice in snapshot", ps.Pass, ps.Variant)
		}
		seen[k] = true
	}
	// The sweep over all six configurations must have materialized both
	// graph flavors, the shared Opt II artifact, and one plan per config.
	for _, want := range []Key{
		{"pointer", ""}, {"memssa", ""},
		{"vfg", "full"}, {"vfg", "tl"},
		{"resolve", "full"}, {"resolve", "tl"},
		{"optII", ""},
	} {
		if !seen[want] {
			t.Errorf("missing snapshot entry for %v", want)
		}
	}
	for _, spec := range testSpecs {
		if !seen[Key{"plan", spec.Name}] {
			t.Errorf("missing plan entry for config %s", spec.Name)
		}
	}
}

// TestStoreSharesArtifacts pins the pointer-identity sharing contract:
// config-invariant artifacts are the same object no matter which consumer
// asks, and the two graph flavors stay distinct.
func TestStoreSharesArtifacts(t *testing.T) {
	st := compileTestProg(t, nil)
	pa1, err := st.Pointer()
	if err != nil {
		t.Fatal(err)
	}
	pa2, _ := st.Pointer()
	if pa1 != pa2 {
		t.Error("Pointer() returned distinct results across calls")
	}
	full, err := st.Graph(false)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := st.Graph(true)
	if err != nil {
		t.Fatal(err)
	}
	if full == tl {
		t.Error("full and top-level-only graphs share one artifact slot")
	}
	if full2, _ := st.Graph(false); full2 != full {
		t.Error("Graph(false) returned distinct graphs across calls")
	}
	o1, err := st.OptII()
	if err != nil {
		t.Fatal(err)
	}
	if o2, _ := st.OptII(); o1 != o2 {
		t.Error("OptII() returned distinct artifacts across calls")
	}
}

// TestStoreCachedError checks the cached-error half of the memoization
// contract: a failing pass body runs once, and every later request for
// that key observes the identical error value.
func TestStoreCachedError(t *testing.T) {
	st := compileTestProg(t, nil)
	boom := errors.New("boom")
	calls := 0
	fail := func() (any, map[string]int64, error) {
		calls++
		return nil, nil, boom
	}
	// "plan"/"broken" is a legal registry key whose real producer is never
	// invoked here; run is exercised directly to isolate the caching.
	_, err1 := st.run("plan", "broken", fail)
	_, err2 := st.run("plan", "broken", fail)
	if calls != 1 {
		t.Fatalf("failing pass body ran %d times, want 1", calls)
	}
	if err1 != boom {
		t.Fatalf("first error = %v, want the pass's own error", err1)
	}
	if err2 != err1 {
		t.Fatalf("cached error not identical: %v vs %v", err2, err1)
	}
}

// TestStoreCachedPanic checks that a panicking pass is converted to a
// diagnostic error once and never re-entered.
func TestStoreCachedPanic(t *testing.T) {
	st := compileTestProg(t, nil)
	calls := 0
	explode := func() (any, map[string]int64, error) {
		calls++
		panic("store_test: deliberate panic")
	}
	_, err1 := st.run("plan", "panicking", explode)
	_, err2 := st.run("plan", "panicking", explode)
	if calls != 1 {
		t.Fatalf("panicking pass body ran %d times, want 1", calls)
	}
	if err1 == nil {
		t.Fatal("panic was not converted to an error")
	}
	if err2 != err1 {
		t.Fatalf("cached panic error not identical: %v vs %v", err2, err1)
	}
}

// TestStoreEvictErrorsRetries pins the retry path a long-lived process
// depends on: a cached failure is replayed until EvictErrors discards
// it, after which the same key re-runs its pass and can succeed.
func TestStoreEvictErrorsRetries(t *testing.T) {
	st := compileTestProg(t, nil)
	transient := errors.New("transient failure")
	calls := 0
	flaky := func() (any, map[string]int64, error) {
		calls++
		if calls == 1 {
			return nil, nil, transient
		}
		return "recovered", nil, nil
	}
	if _, err := st.run("plan", "flaky", flaky); err != transient {
		t.Fatalf("first run error = %v, want the transient failure", err)
	}
	// Before eviction the failure is memoized: the body must not re-run.
	if _, err := st.run("plan", "flaky", flaky); err != transient || calls != 1 {
		t.Fatalf("cached error not replayed (err=%v, calls=%d)", err, calls)
	}
	if n := st.EvictErrors(); n != 1 {
		t.Fatalf("EvictErrors evicted %d slots, want 1", n)
	}
	v, err := st.run("plan", "flaky", flaky)
	if err != nil || v != "recovered" || calls != 2 {
		t.Fatalf("retry after eviction: v=%v err=%v calls=%d, want recovered/nil/2", v, err, calls)
	}
	// A second eviction finds nothing: success is never evicted, and the
	// recovered value stays memoized.
	if n := st.EvictErrors(); n != 0 {
		t.Fatalf("EvictErrors evicted %d slots after success, want 0", n)
	}
	if v, err := st.run("plan", "flaky", flaky); err != nil || v != "recovered" || calls != 2 {
		t.Fatalf("recovered value not memoized (v=%v err=%v calls=%d)", v, err, calls)
	}
}

// TestStoreEvictErrorsSparesSuccess drives real artifacts to completion,
// caches one failure beside them, and checks eviction is surgical.
func TestStoreEvictErrorsSparesSuccess(t *testing.T) {
	st := compileTestProg(t, nil)
	pa1, err := st.Pointer()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.run("plan", "doomed", func() (any, map[string]int64, error) {
		return nil, nil, errors.New("doomed")
	}); err == nil {
		t.Fatal("doomed pass did not fail")
	}
	if n := st.EvictErrors(); n != 1 {
		t.Fatalf("EvictErrors evicted %d slots, want 1", n)
	}
	pa2, err := st.Pointer()
	if err != nil {
		t.Fatal(err)
	}
	if pa1 != pa2 {
		t.Error("eviction discarded a successful artifact (pointer result recomputed)")
	}
}

// TestStoreEvictErrorsConcurrent hammers a failing key with concurrent
// requests and evictions (run under -race in CI): every request must
// observe either a cached error or a successful retry, and the store
// must stay consistent throughout.
func TestStoreEvictErrorsConcurrent(t *testing.T) {
	st := compileTestProg(t, nil)
	var mu sync.Mutex
	fails := 3
	flaky := func() (any, map[string]int64, error) {
		mu.Lock()
		defer mu.Unlock()
		if fails > 0 {
			fails--
			return nil, nil, errors.New("transient failure")
		}
		return "ok", nil, nil
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				v, err := st.run("plan", "flaky", flaky)
				if err != nil {
					st.EvictErrors()
					continue
				}
				if v != "ok" {
					t.Errorf("successful run returned %v, want ok", v)
					return
				}
			}
		}()
	}
	wg.Wait()
	if v, err := st.run("plan", "flaky", flaky); err != nil || v != "ok" {
		t.Fatalf("final state: v=%v err=%v, want ok/nil", v, err)
	}
}

// TestStorePreloadFuncClaims pins the seed-by-function contract: the
// seeding body runs inside the slot's once (so at most once), the seeded
// value answers later pass demands, and a second seed attempt is a no-op.
func TestStorePreloadFuncClaims(t *testing.T) {
	st := compileTestProg(t, nil)
	calls := 0
	seed := func() (any, error) { calls++; return "seeded", nil }
	ok, err := st.PreloadFunc("plan", "warm", seed)
	if !ok || err != nil || calls != 1 {
		t.Fatalf("first seed: ok=%v err=%v calls=%d, want true/nil/1", ok, err, calls)
	}
	if ok, err := st.PreloadFunc("plan", "warm", seed); ok || err != nil || calls != 1 {
		t.Fatalf("second seed: ok=%v err=%v calls=%d, want false/nil/1", ok, err, calls)
	}
	// A pass demand for the seeded key must consume the seed, not run.
	v, err := st.run("plan", "warm", func() (any, map[string]int64, error) {
		t.Error("pass body ran despite the seed")
		return nil, nil, nil
	})
	if err != nil || v != "seeded" {
		t.Fatalf("run after seed: v=%v err=%v, want seeded/nil", v, err)
	}
	if _, ok := st.preloadedVal("plan", "warm"); !ok {
		t.Error("seeded slot not marked preloaded")
	}
}

// TestStorePreloadFuncLosesToRun pins precedence: a pass that ran wins,
// and the seeding body is never executed on a claimed slot.
func TestStorePreloadFuncLosesToRun(t *testing.T) {
	st := compileTestProg(t, nil)
	if _, err := st.run("plan", "claimed", func() (any, map[string]int64, error) {
		return "computed", nil, nil
	}); err != nil {
		t.Fatal(err)
	}
	ok, err := st.PreloadFunc("plan", "claimed", func() (any, error) {
		t.Error("seed body ran on a computed slot")
		return nil, nil
	})
	if ok || err != nil {
		t.Fatalf("seed on computed slot: ok=%v err=%v, want false/nil", ok, err)
	}
	if _, preloaded := st.preloadedVal("plan", "claimed"); preloaded {
		t.Error("computed slot reported as preloaded")
	}
}

// TestStorePreloadFuncErrorEvicts pins the failure path: a failed seed
// reports its error, does not poison the slot, and the next demand runs
// the real pass.
func TestStorePreloadFuncErrorEvicts(t *testing.T) {
	st := compileTestProg(t, nil)
	broken := errors.New("damaged snapshot")
	ok, err := st.PreloadFunc("plan", "warm", func() (any, error) { return nil, broken })
	if ok || err != broken {
		t.Fatalf("failed seed: ok=%v err=%v, want false and the seed's error", ok, err)
	}
	v, err := st.run("plan", "warm", func() (any, map[string]int64, error) {
		return "cold", nil, nil
	})
	if err != nil || v != "cold" {
		t.Fatalf("pass after failed seed: v=%v err=%v, want cold/nil (slot evicted)", v, err)
	}
}

// TestStoreCounterDeterminism compiles and analyzes the same program in
// two independent observed stores — one queried serially, one hammered
// concurrently — and requires the scrubbed snapshots (runs + counters,
// measurements zeroed) to match exactly.
func TestStoreCounterDeterminism(t *testing.T) {
	serial := stats.New()
	st1 := compileTestProg(t, serial)
	for _, spec := range testSpecs {
		if _, err := st1.Plan(spec); err != nil {
			t.Fatal(err)
		}
	}

	concurrent := stats.New()
	st2 := compileTestProg(t, concurrent)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, spec := range testSpecs {
				st2.Plan(spec)
			}
		}()
	}
	wg.Wait()

	a := stats.Scrub(serial.Snapshot())
	b := stats.Scrub(concurrent.Snapshot())
	if !reflect.DeepEqual(a, b) {
		t.Errorf("scrubbed snapshots differ:\nserial:     %+v\nconcurrent: %+v", a, b)
	}
}
