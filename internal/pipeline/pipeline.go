// Package pipeline is the pass manager of the Usher static analysis
// toolchain. It names every stage of the paper's pipeline (§4) — frontend
// lowering, SSA promotion, scalar optimization, pointer analysis, memory
// SSA, value-flow graph construction, Γ resolution, the VFG-based
// optimizations and instrumentation-plan emission — as a registered pass
// with a phase tag and declared inputs/outputs, and provides the keyed,
// concurrency-safe artifact store (store.go) every driver shares:
// usher.Session is a thin facade over a Store, and internal/bench and
// internal/difftest run on the same layer.
//
// Registering passes in one table buys three things:
//
//   - one wiring: the frontend (Compile), the session facade and every
//     driver resolve artifacts through the same dependency edges, instead
//     of each re-wiring the stage order by hand;
//   - per-phase observability: every pass run is timed and counted into a
//     stats.Collector, so performance work can attribute wins to phases
//     (usher-bench -stats, usher-difftest -stats);
//   - a documented contract: the registry is golden-tested against the
//     pass table in docs/ANALYSIS.md, so code and documentation cannot
//     drift apart.
package pipeline

import "fmt"

// Phase tags group passes by pipeline stage. They appear in stats output
// and diagnostics.
type Phase string

// The pipeline phases, in execution order.
const (
	PhaseFrontend   Phase = "frontend"
	PhaseSSA        Phase = "ssa"
	PhaseLink       Phase = "link"
	PhaseScalarOpt  Phase = "scalaropt"
	PhaseSnapshot   Phase = "snapshot"
	PhasePointer    Phase = "pointer"
	PhaseMemSSA     Phase = "memssa"
	PhaseVFG        Phase = "vfg"
	PhaseSummary    Phase = "summary"
	PhaseResolve    Phase = "resolve"
	PhaseOpt        Phase = "opt"
	PhaseInstrument Phase = "instrument"
)

// Pass describes one registered stage of the static pipeline: its name,
// phase, declared inputs (the passes whose artifacts it consumes), the
// artifact it produces, and the key dimension its instances vary over.
type Pass struct {
	Name  string
	Phase Phase
	// Needs lists the producing passes of this pass's inputs.
	Needs []string
	// Produces describes the artifact type (documentation; the store's
	// typed accessors are the compile-time contract).
	Produces string
	// Variants names the artifact-key dimension: "" for config-invariant
	// singletons, "module" for per-module frontend runs (single-file
	// compilation uses the empty variant), "graph" for the full/tl VFG
	// flavors, "config" for per-configuration artifacts, "level" for
	// scalar optimization levels.
	Variants string
	// Counters lists the deterministic work counters the pass reports
	// (golden-tested against docs/ANALYSIS.md).
	Counters []string
}

// Registry lists every pass in pipeline order. Ordering is meaningful:
// stats snapshots sort by registry position, and the docs/ANALYSIS.md
// pass table must list the same passes in the same order.
var Registry = []*Pass{
	{Name: "parse", Phase: PhaseFrontend, Variants: "module",
		Produces: "*ast.Program"},
	{Name: "typecheck", Phase: PhaseFrontend, Needs: []string{"parse"}, Variants: "module",
		Produces: "*types.Info"},
	{Name: "lower", Phase: PhaseFrontend, Needs: []string{"typecheck"}, Variants: "module",
		Produces: "*ir.Program",
		Counters: []string{"funcs", "instrs"}},
	{Name: "mem2reg", Phase: PhaseSSA, Needs: []string{"lower"}, Variants: "module",
		Produces: "*ir.Program (SSA)",
		Counters: []string{"promoted"}},
	{Name: "verify", Phase: PhaseSSA, Needs: []string{"mem2reg"}, Variants: "module",
		Produces: "verified IR"},
	{Name: "link", Phase: PhaseLink, Needs: []string{"verify"},
		Produces: "*ir.Program (linked whole program)",
		Counters: []string{"funcs", "globals", "instrs", "modules", "reused"}},
	{Name: "scalar", Phase: PhaseScalarOpt, Needs: []string{"verify"}, Variants: "level",
		Produces: "*ir.Program (optimized)"},
	{Name: "snapshot", Phase: PhaseSnapshot, Needs: []string{"scalar"},
		Produces: "preloaded artifacts (pointer result, resolved Γs, instrumentation plans)",
		Counters: []string{"call_edges", "gammas_loaded", "plans_loaded", "pts_regs"}},
	{Name: "pointer", Phase: PhasePointer, Needs: []string{"scalar"},
		Produces: "*pointer.Result (frozen)",
		Counters: []string{"constraint_nodes", "constraints", "copy_edges", "locations", "sccs_collapsed", "solver_visits", "solver_waves"}},
	{Name: "memssa", Phase: PhaseMemSSA, Needs: []string{"pointer"},
		Produces: "*memssa.Info",
		Counters: []string{"defs", "funcs"}},
	{Name: "vfg", Phase: PhaseVFG, Needs: []string{"pointer", "memssa"}, Variants: "graph",
		Produces: "*vfg.Graph (sealed)",
		Counters: []string{"edges", "nodes", "semistrong_cuts"}},
	{Name: "summaries", Phase: PhaseSummary, Needs: []string{"vfg"}, Variants: "graph",
		Produces: "*vfgsum.Summary (condensed graph + definedness summaries)",
		Counters: []string{"boundary_edges", "chains_collapsed", "ports", "pruned_edges", "sccs_collapsed", "supernodes"}},
	{Name: "resolve", Phase: PhaseResolve, Needs: []string{"vfg", "summaries"}, Variants: "graph",
		Produces: "*vfg.Gamma",
		Counters: []string{"bottom", "nodes"}},
	{Name: "optII", Phase: PhaseOpt, Needs: []string{"vfg", "resolve"},
		Produces: "*vfg.Gamma (checks redirected to ⊤)",
		Counters: []string{"redirected"}},
	{Name: "plan", Phase: PhaseInstrument, Needs: []string{"vfg", "resolve", "optII"}, Variants: "config",
		Produces: "*pipeline.PlanResult",
		Counters: []string{"checks", "checks_elided", "items", "mfcs_simplified", "props"}},
}

var byName = func() map[string]int {
	m := make(map[string]int, len(Registry))
	for i, p := range Registry {
		if _, dup := m[p.Name]; dup {
			panic(fmt.Sprintf("pipeline: duplicate pass %q", p.Name))
		}
		m[p.Name] = i
	}
	return m
}()

// ByName returns the registered pass and its registry rank; it panics on
// an unknown name (a programming error — passes are registered statically).
func ByName(name string) (*Pass, int) {
	i, ok := byName[name]
	if !ok {
		panic(fmt.Sprintf("pipeline: unknown pass %q", name))
	}
	return Registry[i], i
}
