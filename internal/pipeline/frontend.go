package pipeline

import (
	"runtime"
	"time"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/lower"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/ssa"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/types"
)

// ObservePass times one eagerly-run pass and records it into sc. The
// frontend passes run in sequence (no artifact store — each consumes its
// predecessor's output directly), but they report through the same
// registry and collector as the analysis passes. Multi-file builds
// (package module) run the frontend once per module with the module
// name as the variant, so `-stats` shows exactly which modules an
// incremental build recompiled.
func ObservePass(sc *stats.Collector, pass, variant string, fn func() (map[string]int64, error)) error {
	if !sc.Enabled() {
		_, err := fn()
		return err
	}
	p, rank := ByName(pass)
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	counters, err := fn()
	wall := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	sc.Add(stats.Sample{
		Rank: rank, Pass: p.Name, Phase: string(p.Phase), Variant: variant,
		Wall: wall, AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
		Counters: counters,
	})
	return err
}

// ParseSource runs the parse pass over one source file, observed into sc
// under the given variant (the module name for multi-file builds, ""
// for single-file compilation).
func ParseSource(file, src, variant string, sc *stats.Collector) (*ast.Program, error) {
	var astProg *ast.Program
	err := ObservePass(sc, "parse", variant, func() (map[string]int64, error) {
		var perr error
		astProg, perr = parser.Parse(file, src)
		return nil, perr
	})
	if err != nil {
		return nil, err
	}
	return astProg, nil
}

// CompileUnit runs typecheck, lower, mem2reg and verify over one parsed
// translation unit, producing SSA-form IR at the O0 baseline. The
// variant tags each recorded pass (module name for multi-file builds).
func CompileUnit(astProg *ast.Program, variant string, sc *stats.Collector) (*ir.Program, error) {
	var info *types.Info
	if err := ObservePass(sc, "typecheck", variant, func() (map[string]int64, error) {
		var terr error
		info, terr = types.Check(astProg)
		return nil, terr
	}); err != nil {
		return nil, err
	}

	var irp *ir.Program
	if err := ObservePass(sc, "lower", variant, func() (map[string]int64, error) {
		var lerr error
		irp, lerr = lower.Lower(astProg, info)
		if lerr != nil {
			return nil, lerr
		}
		funcs, instrs := 0, 0
		for _, fn := range irp.Funcs {
			if !fn.HasBody {
				continue
			}
			funcs++
			for _, b := range fn.Blocks {
				instrs += len(b.Instrs)
			}
		}
		return map[string]int64{"funcs": int64(funcs), "instrs": int64(instrs)}, nil
	}); err != nil {
		return nil, err
	}

	if err := ObservePass(sc, "mem2reg", variant, func() (map[string]int64, error) {
		promoted := ssa.Promote(irp)
		for _, fn := range irp.Funcs {
			ir.ComputeCFG(fn)
		}
		return map[string]int64{"promoted": int64(promoted)}, nil
	}); err != nil {
		return nil, err
	}

	if err := ObservePass(sc, "verify", variant, func() (map[string]int64, error) {
		var diags diag.List
		if verr := ir.Verify(irp); verr != nil {
			diags.Merge(diag.PhaseVerify, verr)
		} else if verr := ssa.VerifySSA(irp); verr != nil {
			diags.Merge(diag.PhaseVerify, verr)
		}
		return nil, diags.Err()
	}); err != nil {
		return nil, err
	}
	return irp, nil
}

// Compile runs the frontend passes — parse, typecheck, lower, mem2reg,
// verify — producing SSA-form IR (the paper's O0 baseline; apply further
// levels with ApplyLevel). It is the implementation behind
// compile.Source, with each stage observed into sc (nil records
// nothing).
//
// Compile never panics on malformed input: every frontend problem is
// reported as positioned diagnostics (see package diag), and an
// unexpected panic below — an internal invariant violation — is
// converted into an internal-error diagnostic at this boundary.
func Compile(file, src string, sc *stats.Collector) (_ *ir.Program, err error) {
	defer diag.Guard(diag.PhaseInternal, &err)

	astProg, err := ParseSource(file, src, "", sc)
	if err != nil {
		return nil, err
	}
	return CompileUnit(astProg, "", sc)
}

// ApplyLevel runs the scalar-optimization pipeline for the level, in
// place, recorded as the "scalar" pass (variant: the level name).
func ApplyLevel(prog *ir.Program, level passes.Level, sc *stats.Collector) error {
	return ObservePass(sc, "scalar", level.String(), func() (map[string]int64, error) {
		return nil, passes.Apply(prog, level)
	})
}
