package pipeline

import (
	"runtime"
	"time"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/lower"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/ssa"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/types"
)

// observe times one eagerly-run pass and records it into sc. The
// frontend passes run in sequence (no artifact store — each consumes its
// predecessor's output directly), but they report through the same
// registry and collector as the analysis passes.
func observe(sc *stats.Collector, pass, variant string, fn func() (map[string]int64, error)) error {
	if !sc.Enabled() {
		_, err := fn()
		return err
	}
	p, rank := ByName(pass)
	var m0 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	counters, err := fn()
	wall := time.Since(start)
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	sc.Add(stats.Sample{
		Rank: rank, Pass: p.Name, Phase: string(p.Phase), Variant: variant,
		Wall: wall, AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
		Counters: counters,
	})
	return err
}

// Compile runs the frontend passes — parse, typecheck, lower, mem2reg,
// verify — producing SSA-form IR (the paper's O0 baseline; apply further
// levels with ApplyLevel). It is the implementation behind
// compile.Source, with each stage observed into sc (nil records
// nothing).
//
// Compile never panics on malformed input: every frontend problem is
// reported as positioned diagnostics (see package diag), and an
// unexpected panic below — an internal invariant violation — is
// converted into an internal-error diagnostic at this boundary.
func Compile(file, src string, sc *stats.Collector) (_ *ir.Program, err error) {
	defer diag.Guard(diag.PhaseInternal, &err)

	var astProg *ast.Program
	if err := observe(sc, "parse", "", func() (map[string]int64, error) {
		var perr error
		astProg, perr = parser.Parse(file, src)
		return nil, perr
	}); err != nil {
		return nil, err
	}

	var info *types.Info
	if err := observe(sc, "typecheck", "", func() (map[string]int64, error) {
		var terr error
		info, terr = types.Check(astProg)
		return nil, terr
	}); err != nil {
		return nil, err
	}

	var irp *ir.Program
	if err := observe(sc, "lower", "", func() (map[string]int64, error) {
		var lerr error
		irp, lerr = lower.Lower(astProg, info)
		if lerr != nil {
			return nil, lerr
		}
		funcs, instrs := 0, 0
		for _, fn := range irp.Funcs {
			if !fn.HasBody {
				continue
			}
			funcs++
			for _, b := range fn.Blocks {
				instrs += len(b.Instrs)
			}
		}
		return map[string]int64{"funcs": int64(funcs), "instrs": int64(instrs)}, nil
	}); err != nil {
		return nil, err
	}

	if err := observe(sc, "mem2reg", "", func() (map[string]int64, error) {
		promoted := ssa.Promote(irp)
		for _, fn := range irp.Funcs {
			ir.ComputeCFG(fn)
		}
		return map[string]int64{"promoted": int64(promoted)}, nil
	}); err != nil {
		return nil, err
	}

	if err := observe(sc, "verify", "", func() (map[string]int64, error) {
		var diags diag.List
		if verr := ir.Verify(irp); verr != nil {
			diags.Merge(diag.PhaseVerify, verr)
		} else if verr := ssa.VerifySSA(irp); verr != nil {
			diags.Merge(diag.PhaseVerify, verr)
		}
		return nil, diags.Err()
	}); err != nil {
		return nil, err
	}
	return irp, nil
}

// ApplyLevel runs the scalar-optimization pipeline for the level, in
// place, recorded as the "scalar" pass (variant: the level name).
func ApplyLevel(prog *ir.Program, level passes.Level, sc *stats.Collector) error {
	return observe(sc, "scalar", level.String(), func() (map[string]int64, error) {
		return nil, passes.Apply(prog, level)
	})
}
