package pipeline

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/valueflow/usher/internal/bitset"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/pool"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/vfgopt"
	"github.com/valueflow/usher/internal/vfgsum"
)

// Graph-variant key strings.
const (
	variantFull = "full"
	variantTL   = "tl"
)

// Key identifies one artifact in a Store: the producing pass plus its
// variant (see Pass.Variants).
type Key struct {
	Pass    string
	Variant string
}

// entry is one memoized artifact slot. The error is cached exactly like
// the value: every later request for the same key observes the identical
// error (the cached-error contract usher.Session documents) — until the
// owner calls EvictErrors, which discards failed slots so the pass can
// be retried. Long-lived stores (the usherd daemon) need that escape
// hatch: without it one transient failure poisons the key for the
// process lifetime.
type entry struct {
	once sync.Once
	val  any
	err  error
}

// Store is the keyed, concurrency-safe artifact store for one compiled
// program. Every registered pass computes its artifact exactly once per
// store, no matter how many goroutines request it concurrently; dependent
// passes resolve their inputs through the store, so requesting any
// artifact lazily materializes its whole prerequisite chain.
//
// Sharing the artifacts is sound because every stored structure is
// immutable once its pass returns: the pointer Result freezes its
// union-find, VFGs are sealed (enforced here, at the store boundary), and
// per-configuration passes only read the shared graph or derive fresh
// data from it. A panic inside a pass is captured as an error and cached
// with the artifact.
//
// When the store carries a stats.Collector, every pass run is recorded:
// wall time, allocation volume, and the pass's deterministic work
// counters (see the Registry and package stats for the determinism
// contract).
type Store struct {
	prog *ir.Program
	sc   *stats.Collector

	mu      sync.Mutex
	entries map[Key]*entry
	// done marks keys whose entry has completed (pass ran or seed
	// applied); preloaded marks the subset seeded via Preload rather than
	// computed. Both are guarded by mu — completion is published here
	// after once.Do returns, so readers never race the pass body.
	done      map[Key]bool
	preloaded map[Key]bool
	// gammaSeeds holds snapshot-loaded resolved Γ bit vectors keyed by
	// graph variant, consumed by Gamma once the graph exists (the VSUM
	// warm-start path: a Γ cannot be preloaded as an artifact before the
	// graph it indexes is built).
	gammaSeeds map[string]gammaSeed
}

// gammaSeed is one pending VSUM warm-start payload.
type gammaSeed struct {
	nodes  int
	bottom *bitset.Set
}

// NewStore prepares an artifact store for prog, recording pass
// observations into sc (nil records nothing). Artifacts are computed
// lazily; a store that is never queried costs nothing.
func NewStore(prog *ir.Program, sc *stats.Collector) *Store {
	return &Store{
		prog: prog, sc: sc,
		entries:    make(map[Key]*entry),
		done:       make(map[Key]bool),
		preloaded:  make(map[Key]bool),
		gammaSeeds: make(map[string]gammaSeed),
	}
}

// Prog returns the program the store analyzes.
func (st *Store) Prog() *ir.Program { return st.prog }

// Collector returns the store's stats collector (nil when unobserved).
func (st *Store) Collector() *stats.Collector { return st.sc }

func (st *Store) entryFor(k Key) *entry {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entries[k]
	if e == nil {
		e = &entry{}
		st.entries[k] = e
	}
	return e
}

// run computes the keyed artifact exactly once. fn returns the artifact
// plus its deterministic counters; dependencies must be resolved by the
// caller BEFORE run so a pass's recorded wall time covers only its own
// work. Panics become cached errors (diag.PhaseAnalyze).
func (st *Store) run(pass, variant string, fn func() (any, map[string]int64, error)) (any, error) {
	e := st.entryFor(Key{pass, variant})
	e.once.Do(func() {
		defer diag.Guard(diag.PhaseAnalyze, &e.err)
		p, rank := ByName(pass)
		var m0 runtime.MemStats
		var start time.Time
		observed := st.sc.Enabled()
		if observed {
			runtime.ReadMemStats(&m0)
			start = time.Now()
		}
		v, counters, err := fn()
		if observed {
			wall := time.Since(start)
			var m1 runtime.MemStats
			runtime.ReadMemStats(&m1)
			st.sc.Add(stats.Sample{
				Rank: rank, Pass: p.Name, Phase: string(p.Phase), Variant: variant,
				Wall: wall, AllocBytes: m1.TotalAlloc - m0.TotalAlloc,
				Counters: counters,
			})
		}
		if err != nil {
			e.err = err
			return
		}
		e.val = v
	})
	st.setDone(Key{pass, variant}, e)
	return e.val, e.err
}

// setDone publishes e's completion, but only while e is still the live
// slot for k: a request that raced an EvictErrors call must not mark
// the replacement slot done before its pass has run.
func (st *Store) setDone(k Key, e *entry) {
	st.mu.Lock()
	if st.entries[k] == e {
		st.done[k] = true
	}
	st.mu.Unlock()
}

// EvictErrors discards every completed entry whose pass failed, so the
// next request for each evicted key re-runs the pass instead of
// replaying the cached error. Requests already in flight on an evicted
// slot still observe its error (they resolved the slot before the
// eviction); entries still computing are left alone. Returns the number
// of slots evicted.
//
// Within one slot's lifetime the cached-error contract is unchanged —
// every request observes the identical error value. EvictErrors bounds
// that lifetime, which is what a long-lived process needs after a
// transient failure (a canceled pass, a resource limit) so the content
// hash is not poisoned forever.
func (st *Store) EvictErrors() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	n := 0
	for k, e := range st.entries {
		if !st.done[k] || e.err == nil {
			continue
		}
		delete(st.entries, k)
		delete(st.done, k)
		delete(st.preloaded, k)
		n++
	}
	return n
}

// Preload seeds the keyed artifact with an externally produced value —
// the snapshot warm-start path — without running its pass. The seed is
// dropped (returns false) when the artifact was already computed or
// seeded: a pass that ran always wins over a snapshot.
func (st *Store) Preload(pass, variant string, v any) bool {
	ByName(pass) // unknown pass is a programming error, exactly like run
	k := Key{pass, variant}
	e := st.entryFor(k)
	seeded := false
	e.once.Do(func() {
		e.val = v
		seeded = true
	})
	if seeded {
		st.mu.Lock()
		st.done[k] = true
		st.preloaded[k] = true
		st.mu.Unlock()
	}
	return seeded
}

// PreloadFunc seeds the keyed artifact by running fn inside the slot's
// once-guard, which serializes the seed against a concurrent pass run
// for the same key: exactly one of them executes, and the loser observes
// the winner's result. Preload cannot give that guarantee a seed that
// must mutate shared state (pointer.Import collapses IR objects while
// reconstructing the solved points-to relation) — racing the real pass
// body would corrupt the program both are reading.
//
// When the slot is already claimed (computed, computing, or seeded), fn
// never runs and PreloadFunc returns (false, nil): a pass that ran wins
// over a snapshot. When fn itself fails, the slot is evicted immediately
// (the EvictErrors semantics: racing requests observe the error once,
// the next request re-runs the real pass) and the error is returned.
func (st *Store) PreloadFunc(pass, variant string, fn func() (any, error)) (bool, error) {
	ByName(pass) // unknown pass is a programming error, exactly like run
	k := Key{pass, variant}
	e := st.entryFor(k)
	seeded := false
	e.once.Do(func() {
		defer diag.Guard(diag.PhaseAnalyze, &e.err)
		seeded = true
		e.val, e.err = fn()
	})
	if !seeded {
		return false, nil
	}
	st.mu.Lock()
	if e.err != nil {
		if st.entries[k] == e {
			delete(st.entries, k)
		}
	} else {
		st.done[k] = true
		st.preloaded[k] = true
	}
	st.mu.Unlock()
	return e.err == nil, e.err
}

// preloadedVal returns the seeded artifact for k, if the key was
// populated by Preload (not by a pass run).
func (st *Store) preloadedVal(pass, variant string) (any, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := Key{pass, variant}
	if !st.preloaded[k] {
		return nil, false
	}
	return st.entries[k].val, true
}

// PreloadedPointer returns the snapshot-seeded pointer result, if any.
func (st *Store) PreloadedPointer() (*pointer.Result, bool) {
	v, ok := st.preloadedVal("pointer", "")
	if !ok {
		return nil, false
	}
	return v.(*pointer.Result), true
}

// PreloadedPlan returns the snapshot-seeded plan artifact for the named
// configuration, if any.
func (st *Store) PreloadedPlan(name string) (*PlanResult, bool) {
	v, ok := st.preloadedVal("plan", name)
	if !ok {
		return nil, false
	}
	return v.(*PlanResult), true
}

// CachedPlan returns the named plan artifact if it has already been
// materialized (computed or preloaded), without triggering any pass.
func (st *Store) CachedPlan(name string) (*PlanResult, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := Key{"plan", name}
	if !st.done[k] {
		return nil, false
	}
	e := st.entries[k]
	if e == nil || e.err != nil || e.val == nil {
		return nil, false
	}
	return e.val.(*PlanResult), true
}

// PlanNames returns the names of every plan artifact the store holds
// (computed or preloaded, errors excluded), sorted.
func (st *Store) PlanNames() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var names []string
	for k := range st.done {
		if k.Pass != "plan" {
			continue
		}
		if e := st.entries[k]; e != nil && e.err == nil && e.val != nil {
			names = append(names, k.Variant)
		}
	}
	sort.Strings(names)
	return names
}

// Observe records one externally timed sample for a registered pass.
// The snapshot warm start uses it: the load happens outside the store's
// own run path but should still appear in per-phase observability.
func (st *Store) Observe(pass, variant string, wall time.Duration, counters map[string]int64) {
	if !st.sc.Enabled() {
		return
	}
	p, rank := ByName(pass)
	st.sc.Add(stats.Sample{
		Rank: rank, Pass: p.Name, Phase: string(p.Phase), Variant: variant,
		Wall: wall, Counters: counters,
	})
}

// Pointer returns the whole-program pointer analysis, solving on first
// use.
func (st *Store) Pointer() (*pointer.Result, error) {
	v, err := st.run("pointer", "", func() (any, map[string]int64, error) {
		pa := pointer.Analyze(st.prog)
		ss := pa.Stats
		return pa, map[string]int64{
			"constraint_nodes": int64(ss.Nodes),
			"constraints":      int64(ss.Constraints),
			"copy_edges":       int64(ss.CopyEdges),
			"locations":        int64(ss.Locations),
			"sccs_collapsed":   int64(ss.SCCsCollapsed),
			"solver_visits":    int64(ss.Visits),
			"solver_waves":     int64(ss.Waves),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*pointer.Result), nil
}

// MemSSA returns the whole-program memory SSA.
func (st *Store) MemSSA() (*memssa.Info, error) {
	pa, err := st.Pointer()
	if err != nil {
		return nil, err
	}
	v, err := st.run("memssa", "", func() (any, map[string]int64, error) {
		mem := memssa.Build(st.prog, pa)
		defs := 0
		for _, fi := range mem.Funcs {
			defs += len(fi.AllDefs)
		}
		return mem, map[string]int64{
			"funcs": int64(len(mem.Funcs)),
			"defs":  int64(defs),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*memssa.Info), nil
}

func graphVariant(topLevelOnly bool) string {
	if topLevelOnly {
		return variantTL
	}
	return variantFull
}

// Graph returns the sealed value-flow graph of the requested flavor
// (topLevelOnly selects the Usher_TL graph). The sealing invariant is
// enforced here: an unsealed graph would let concurrent consumers
// materialize nodes and race, so it is rejected at the store boundary.
func (st *Store) Graph(topLevelOnly bool) (*vfg.Graph, error) {
	pa, err := st.Pointer()
	if err != nil {
		return nil, err
	}
	mem, err := st.MemSSA()
	if err != nil {
		return nil, err
	}
	v, err := st.run("vfg", graphVariant(topLevelOnly), func() (any, map[string]int64, error) {
		g := vfg.Build(st.prog, pa, mem, vfg.Options{TopLevelOnly: topLevelOnly})
		if !g.Sealed() {
			return nil, nil, fmt.Errorf("pipeline: vfg.Build returned an unsealed graph (store sharing invariant violated)")
		}
		edges := 0
		for _, n := range g.Nodes {
			edges += len(n.Deps)
		}
		return g, map[string]int64{
			"nodes":           int64(len(g.Nodes)),
			"edges":           int64(edges),
			"semistrong_cuts": int64(g.SemiStrongCuts),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*vfg.Graph), nil
}

// Summaries returns the Opt IV condensation artifact of the requested
// graph flavor: the supernode graph plus per-region definedness
// summaries (see internal/vfgsum). It is only computed when summary
// resolution is enabled; Gamma resolves its inputs accordingly.
func (st *Store) Summaries(topLevelOnly bool) (*vfgsum.Summary, error) {
	g, err := st.Graph(topLevelOnly)
	if err != nil {
		return nil, err
	}
	v, err := st.run("summaries", graphVariant(topLevelOnly), func() (any, map[string]int64, error) {
		sum := vfgsum.Build(g)
		ss := sum.Stats
		return sum, map[string]int64{
			"boundary_edges":   int64(ss.BoundaryEdges),
			"chains_collapsed": int64(ss.ChainsCollapsed),
			"ports":            int64(ss.Ports),
			"pruned_edges":     int64(ss.PrunedEdges),
			"sccs_collapsed":   int64(ss.SCCsCollapsed),
			"supernodes":       int64(ss.Supernodes),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*vfgsum.Summary), nil
}

// SeedGamma stages a snapshot-loaded resolved Γ for the given graph
// variant ("full" or "tl"). The seed is consumed by the first Gamma
// request: if the rebuilt graph's node count matches, resolution is
// skipped and the Γ is reconstructed from the bits (graph construction
// is deterministic, so node numbering is reproducible for an identical
// program); on a mismatch the seed is ignored and the pass runs. A seed
// staged after the resolve pass already ran has no effect.
func (st *Store) SeedGamma(variant string, nodes int, bottom *bitset.Set) {
	st.mu.Lock()
	st.gammaSeeds[variant] = gammaSeed{nodes: nodes, bottom: bottom}
	st.mu.Unlock()
}

func (st *Store) gammaSeedFor(variant string, nodes int) (*bitset.Set, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	seed, ok := st.gammaSeeds[variant]
	if !ok || seed.nodes != nodes {
		return nil, false
	}
	return seed.bottom, true
}

// Gamma returns the resolved definedness of the requested graph flavor.
// Resolution runs dense (vfg.Resolve) by default, through the Opt IV
// summaries when vfgsum.Enabled is set, and from a snapshot-seeded bit
// vector (SeedGamma) when one matches the rebuilt graph — all three
// paths produce bit-identical Γ.
func (st *Store) Gamma(topLevelOnly bool) (*vfg.Gamma, error) {
	g, err := st.Graph(topLevelOnly)
	if err != nil {
		return nil, err
	}
	variant := graphVariant(topLevelOnly)
	// A staged VSUM seed that matches the rebuilt graph answers the
	// resolve slot the way a preloaded plan answers the plan slot:
	// without running — or recording — the pass. PreloadFunc serializes
	// the seed against a concurrent real resolve; whichever claims the
	// slot first wins, and both produce bit-identical Γ.
	seedBits, seeded := st.gammaSeedFor(variant, len(g.Nodes))
	if seeded {
		if _, err := st.PreloadFunc("resolve", variant, func() (any, error) {
			return vfg.NewGammaFromBits(g, seedBits), nil
		}); err != nil {
			return nil, err
		}
	}
	// Resolve inputs outside the timed pass body.
	var sum *vfgsum.Summary
	if !seeded && vfgsum.Enabled {
		if sum, err = st.Summaries(topLevelOnly); err != nil {
			return nil, err
		}
	}
	v, err := st.run("resolve", variant, func() (any, map[string]int64, error) {
		var gm *vfg.Gamma
		if sum != nil {
			gm = sum.Resolve()
		} else {
			gm = vfg.Resolve(g)
		}
		return gm, map[string]int64{
			"nodes":  int64(len(g.Nodes)),
			"bottom": int64(gm.BottomCount()),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*vfg.Gamma), nil
}

// CachedGamma returns the resolved Γ for the given graph variant if the
// resolve pass already ran (or was seeded), without triggering it. The
// snapshot export path uses it to serialize only what a session actually
// resolved.
func (st *Store) CachedGamma(variant string) (*vfg.Gamma, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	k := Key{"resolve", variant}
	if !st.done[k] {
		return nil, false
	}
	e := st.entries[k]
	if e == nil || e.err != nil || e.val == nil {
		return nil, false
	}
	return e.val.(*vfg.Gamma), true
}

// PrewarmResolve materializes every resolution artifact — Γ over both
// graph variants plus the Opt II re-resolution — concurrently on up to
// parallel workers (0 means one per CPU). The store's once-memoization
// makes the results, and every recorded counter, bit-identical to the
// sequential lazy order at any worker count; only the wall-clock moves.
func (st *Store) PrewarmResolve(parallel int) error {
	if parallel <= 0 {
		parallel = pool.DefaultParallelism()
	}
	tasks := []func() error{
		func() error { _, err := st.Gamma(false); return err },
		func() error { _, err := st.Gamma(true); return err },
		func() error { _, err := st.OptII(); return err },
	}
	return pool.ForEach(parallel, len(tasks), func(i int) error { return tasks[i]() })
}

// OptIIResult is the artifact of the Opt II pass: the re-resolved Γ with
// redundant-check sources redirected to ⊤, shared by every configuration
// that enables Opt II (Usher and Usher+OptIII consume the same artifact).
type OptIIResult struct {
	Gamma      *vfg.Gamma
	Redirected int
}

// OptII returns the redundant-check-elimination artifact over the full
// graph (Algorithm 1 of the paper).
func (st *Store) OptII() (*OptIIResult, error) {
	g, err := st.Graph(false)
	if err != nil {
		return nil, err
	}
	gm, err := st.Gamma(false)
	if err != nil {
		return nil, err
	}
	v, err := st.run("optII", "", func() (any, map[string]int64, error) {
		// Opt IV routes the re-resolution through a cut-aware summary
		// build: the cached cut-free summary cannot serve a cut (an edge
		// removed inside a condensed region must split the region).
		resolve := func(cut func(from, to *vfg.Node) bool) *vfg.Gamma {
			if vfgsum.Enabled {
				return vfgsum.ResolveCut(g, cut)
			}
			return vfg.ResolveCut(g, cut)
		}
		g2, redirected := vfgopt.RedundantCheckElimWith(g, gm, resolve)
		return &OptIIResult{Gamma: g2, Redirected: redirected},
			map[string]int64{"redirected": int64(redirected)}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*OptIIResult), nil
}

// PlanSpec declares one instrumentation configuration's capabilities: the
// single table usher's config dispatch is driven by. The zero value is a
// guided configuration over the full graph with no optimizations
// (Usher_TL+AT).
type PlanSpec struct {
	// Name keys the plan artifact and labels the emitted plan.
	Name string
	// Full selects MSan-style full instrumentation (no VFG guidance).
	Full bool
	// TopLevelOnly selects the Usher_TL graph (no address-taken modeling).
	TopLevelOnly bool
	// OptI/OptII/OptIII enable the VFG-based optimizations (§3.5 and the
	// Opt III extension).
	OptI, OptII, OptIII bool
	// MemoryFull instruments every allocation and store unconditionally
	// (required when the graph cannot prove memory shadows unnecessary).
	MemoryFull bool
}

// PlanResult is the per-configuration artifact: the instrumentation plan,
// the Γ it was emitted against, and the optimization statistics.
type PlanResult struct {
	Plan *instrument.Plan
	// Gamma is the definedness used for emission (the Opt II artifact's
	// re-resolved Γ when the configuration enables Opt II).
	Gamma *vfg.Gamma
	// MFCsSimplified, Redirected and ChecksElided are the Opt I / Opt II /
	// Opt III statistics (zero for configurations that do not run them).
	MFCsSimplified int
	Redirected     int
	ChecksElided   int
	// Demanded counts VFG nodes that required shadow tracking.
	Demanded int
}

// Plan returns the instrumentation plan artifact for spec, computing it
// (and every prerequisite) on first use.
func (st *Store) Plan(spec PlanSpec) (*PlanResult, error) {
	// A preloaded plan (snapshot warm start) answers immediately:
	// resolving the graph inputs below would build the very artifacts
	// the snapshot exists to skip.
	if pr, ok := st.PreloadedPlan(spec.Name); ok {
		return pr, nil
	}
	// Resolve the inputs outside the timed pass body.
	g, err := st.Graph(spec.TopLevelOnly && !spec.Full)
	if err != nil {
		return nil, err
	}
	gm, err := st.Gamma(spec.TopLevelOnly && !spec.Full)
	if err != nil {
		return nil, err
	}
	redirected := 0
	if spec.OptII && !spec.Full {
		o2, err := st.OptII()
		if err != nil {
			return nil, err
		}
		gm, redirected = o2.Gamma, o2.Redirected
	}
	v, err := st.run("plan", spec.Name, func() (any, map[string]int64, error) {
		var res *PlanResult
		if spec.Full {
			res = &PlanResult{Plan: instrument.Full(st.prog), Gamma: gm}
		} else {
			er := instrument.Emit(spec.Name, g, gm, redirected, instrument.GuidedOptions{
				OptI:       spec.OptI,
				OptIII:     spec.OptIII,
				MemoryFull: spec.MemoryFull,
			})
			res = &PlanResult{
				Plan:           er.Plan,
				Gamma:          er.Gamma,
				MFCsSimplified: er.MFCsSimplified,
				Redirected:     er.Redirected,
				ChecksElided:   er.ChecksElided,
				Demanded:       er.Demanded,
			}
		}
		ss := res.Plan.StaticStats()
		return res, map[string]int64{
			"items":           int64(ss.Items),
			"props":           int64(ss.Props),
			"checks":          int64(ss.Checks),
			"mfcs_simplified": int64(res.MFCsSimplified),
			"checks_elided":   int64(res.ChecksElided),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*PlanResult), nil
}
