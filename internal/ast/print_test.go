package ast_test

import (
	"testing"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/workload"
)

// roundTrip parses src, prints it, reparses, prints again, and checks the
// two printed forms are identical (printer fixpoint) — which also
// validates that the printer emits parseable MiniC.
func roundTrip(t *testing.T, name, src string) {
	t.Helper()
	p1, err := parser.Parse(name, src)
	if err != nil {
		t.Fatalf("parse original: %v", err)
	}
	out1 := ast.Print(p1)
	p2, err := parser.Parse(name+".rt", out1)
	if err != nil {
		t.Fatalf("reparse printed output: %v\n--- printed ---\n%s", err, out1)
	}
	out2 := ast.Print(p2)
	if out1 != out2 {
		t.Fatalf("printer not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", out1, out2)
	}
}

func TestRoundTripBasics(t *testing.T) {
	srcs := []string{
		`int g = 3; int main() { return g; }`,
		`struct S { int a; int *p; struct S *next; };
		 int f(struct S *s) { return s->a + (*s).a; }
		 int main() { struct S s; s.a = 1; return f(&s); }`,
		`int apply(int (*f)(int, int), int a, int b) { return f(a, b); }
		 int add(int a, int b) { return a + b; }
		 int main() { return apply(add, 2, 3); }`,
		`int main() {
		   int arr[4];
		   int *ps[3];
		   for (int i = 0; i < 4; i++) { arr[i] = i << 1; }
		   int s = 0;
		   while (s < 100) { s += arr[2]; if (s % 7 == 0) { break; } else { continue; } }
		   return s;
		 }`,
		`int proto(int);
		 int main() { return proto(sizeof(int*)); }`,
		`void v() { return; }
		 int main() { v(); ; return !1 + ~0 - (-3); }`,
	}
	for i, src := range srcs {
		roundTrip(t, "t.c", src)
		_ = i
	}
}

func TestRoundTripWorkloads(t *testing.T) {
	for _, name := range []string{"gzip", "parser"} {
		p, _ := workload.ByName(name)
		roundTrip(t, name+".c", workload.Generate(p))
	}
}

func TestRoundTripRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		roundTrip(t, "rand.c", randprog.Generate(seed, randprog.DefaultOptions))
	}
}

func TestDeclaratorForms(t *testing.T) {
	// Exercise the inverse declarator construction for gnarly types.
	srcs := []string{
		"int *a[3];",                        // array of pointers
		"int (*b)[3];",                      // pointer to array
		"int (*c)(int, int*);",              // function pointer
		"int *(*d)(int (*)(int));",          // fp taking fp, returning int*
		"int m[2][3];",                      // nested arrays
		"struct T { int x; }; struct T *t;", // struct pointer
	}
	for _, src := range srcs {
		roundTrip(t, "decl.c", src)
	}
}
