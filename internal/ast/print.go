package ast

import (
	"fmt"
	"strings"

	"github.com/valueflow/usher/internal/token"
)

// Print renders the program back as MiniC source. Printing a parsed
// program and reparsing it yields an identical tree (round-trip tested),
// which makes the printer reliable for debugging generated workloads and
// fuzzer findings.
func Print(p *Program) string {
	pr := &printer{}
	for i, d := range p.Decls {
		if i > 0 {
			pr.b.WriteString("\n")
		}
		pr.decl(d)
	}
	return pr.b.String()
}

type printer struct {
	b      strings.Builder
	indent int
}

func (p *printer) pf(format string, args ...any) { fmt.Fprintf(&p.b, format, args...) }

func (p *printer) pad() { p.b.WriteString(strings.Repeat("  ", p.indent)) }

func (p *printer) decl(d Decl) {
	switch d := d.(type) {
	case *Include:
		p.pf("#include %q\n", d.Path)
	case *StructDecl:
		p.pf("struct %s {\n", d.Name)
		p.indent++
		for _, f := range d.Fields {
			p.pad()
			p.pf("%s;\n", declarator(f.Type, f.Name))
		}
		p.indent--
		p.pf("};\n")
	case *VarDecl:
		p.pf("%s", declarator(d.Type, d.Name))
		if d.Init != nil {
			p.pf(" = %s", exprString(d.Init))
		}
		p.pf(";\n")
	case *FuncDecl:
		params := make([]string, len(d.Params))
		for i, prm := range d.Params {
			params[i] = declarator(prm.Type, prm.Name)
		}
		if d.Variadic {
			params = append(params, "...")
		}
		p.pf("%s(%s)", declarator(d.Ret, d.Name), strings.Join(params, ", "))
		if d.Body == nil {
			p.pf(";\n")
			return
		}
		p.pf(" ")
		p.block(d.Body)
		p.pf("\n")
	}
}

// declarator renders a C declarator for the given type and name, the
// inverse of the parser's inside-out type construction.
func declarator(t TypeExpr, name string) string {
	base, decl := splitDeclarator(t, name)
	if decl == "" {
		return base
	}
	return base + " " + decl
}

// splitDeclarator returns the base type keyword and the declarator part.
func splitDeclarator(t TypeExpr, inner string) (string, string) {
	switch t := t.(type) {
	case *IntTypeExpr:
		return "int", inner
	case *CharTypeExpr:
		return "char", inner
	case *VoidTypeExpr:
		return "void", inner
	case *StructTypeExpr:
		return "struct " + t.Name, inner
	case *PointerTypeExpr:
		return splitDeclarator(t.Elem, "*"+inner)
	case *ArrayTypeExpr:
		if strings.HasPrefix(inner, "*") {
			inner = "(" + inner + ")"
		}
		return splitDeclarator(t.Elem, fmt.Sprintf("%s[%d]", inner, t.Len))
	case *FuncTypeExpr:
		if strings.HasPrefix(inner, "*") {
			inner = "(" + inner + ")"
		}
		params := make([]string, len(t.Params))
		for i, pt := range t.Params {
			params[i] = declarator(pt, "")
		}
		if t.Variadic {
			params = append(params, "...")
		}
		return splitDeclarator(t.Ret, fmt.Sprintf("%s(%s)", inner, strings.Join(params, ", ")))
	}
	return "?", inner
}

func (p *printer) block(b *Block) {
	p.pf("{\n")
	p.indent++
	for _, s := range b.Stmts {
		p.stmt(s)
	}
	p.indent--
	p.pad()
	p.pf("}")
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *Block:
		p.pad()
		p.block(s)
		p.pf("\n")
	case *EmptyStmt:
		p.pad()
		p.pf(";\n")
	case *DeclStmt:
		p.pad()
		p.pf("%s", declarator(s.Decl.Type, s.Decl.Name))
		if s.Decl.Init != nil {
			p.pf(" = %s", exprString(s.Decl.Init))
		}
		p.pf(";\n")
	case *ExprStmt:
		p.pad()
		p.pf("%s;\n", exprString(s.X))
	case *IfStmt:
		p.pad()
		p.pf("if (%s) ", exprString(s.Cond))
		p.stmtAsBlock(s.Then)
		if s.Else != nil {
			p.pf(" else ")
			p.stmtAsBlock(s.Else)
		}
		p.pf("\n")
	case *WhileStmt:
		p.pad()
		p.pf("while (%s) ", exprString(s.Cond))
		p.stmtAsBlock(s.Body)
		p.pf("\n")
	case *ForStmt:
		p.pad()
		p.pf("for (")
		switch init := s.Init.(type) {
		case *DeclStmt:
			p.pf("%s", declarator(init.Decl.Type, init.Decl.Name))
			if init.Decl.Init != nil {
				p.pf(" = %s", exprString(init.Decl.Init))
			}
		case *ExprStmt:
			p.pf("%s", exprString(init.X))
		}
		p.pf("; ")
		if s.Cond != nil {
			p.pf("%s", exprString(s.Cond))
		}
		p.pf("; ")
		if s.Post != nil {
			p.pf("%s", exprString(s.Post))
		}
		p.pf(") ")
		p.stmtAsBlock(s.Body)
		p.pf("\n")
	case *ReturnStmt:
		p.pad()
		if s.X != nil {
			p.pf("return %s;\n", exprString(s.X))
		} else {
			p.pf("return;\n")
		}
	case *BreakStmt:
		p.pad()
		p.pf("break;\n")
	case *ContinueStmt:
		p.pad()
		p.pf("continue;\n")
	}
}

// stmtAsBlock prints a statement, wrapping non-blocks in braces so the
// output is unambiguous.
func (p *printer) stmtAsBlock(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.block(b)
		return
	}
	p.pf("{\n")
	p.indent++
	p.stmt(s)
	p.indent--
	p.pad()
	p.pf("}")
}

var opText = map[token.Kind]string{
	token.PLUS: "+", token.MINUS: "-", token.STAR: "*", token.SLASH: "/",
	token.PERCENT: "%", token.SHL: "<<", token.SHR: ">>", token.AMP: "&",
	token.PIPE: "|", token.CARET: "^", token.EQ: "==", token.NEQ: "!=",
	token.LT: "<", token.LEQ: "<=", token.GT: ">", token.GEQ: ">=",
	token.LAND: "&&", token.LOR: "||", token.NOT: "!", token.TILDE: "~",
}

// exprString renders an expression, parenthesizing conservatively.
func exprString(e Expr) string {
	switch e := e.(type) {
	case *NumberLit:
		return fmt.Sprintf("%d", e.Value)
	case *StringLit:
		return Quote(e.Value)
	case *Ident:
		return e.Name
	case *Unary:
		op := opText[e.Op]
		if e.Op == token.STAR {
			op = "*"
		} else if e.Op == token.AMP {
			op = "&"
		}
		return fmt.Sprintf("%s(%s)", op, exprString(e.X))
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", exprString(e.X), opText[e.Op], exprString(e.Y))
	case *Assign:
		return fmt.Sprintf("%s = %s", exprString(e.LHS), exprString(e.RHS))
	case *Call:
		args := make([]string, len(e.Args))
		for i, a := range e.Args {
			args[i] = exprString(a)
		}
		return fmt.Sprintf("%s(%s)", exprString(e.Fun), strings.Join(args, ", "))
	case *Index:
		return fmt.Sprintf("%s[%s]", exprString(e.X), exprString(e.Idx))
	case *FieldAccess:
		sep := "."
		if e.Arrow {
			sep = "->"
		}
		x := exprString(e.X)
		if _, isUnary := e.X.(*Unary); isUnary {
			x = "(" + x + ")"
		}
		return x + sep + e.Name
	case *SizeofExpr:
		return fmt.Sprintf("sizeof(%s)", declarator(e.T, ""))
	}
	return "?"
}

// Quote renders s as a MiniC string literal using only the escape
// sequences the lexer decodes, so printing and reparsing round-trips.
func Quote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b.WriteString(`\"`)
		case c == '\\':
			b.WriteString(`\\`)
		case c == '\n':
			b.WriteString(`\n`)
		case c == '\t':
			b.WriteString(`\t`)
		case c == '\r':
			b.WriteString(`\r`)
		case c == 0:
			b.WriteString(`\0`)
		case c < 32 || c >= 127:
			fmt.Fprintf(&b, `\x%02x`, c)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}
