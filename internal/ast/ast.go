// Package ast defines the abstract syntax tree for MiniC.
//
// The tree is produced by package parser, checked and annotated by package
// types, and consumed by package lower, which translates it to the IR in
// package ir.
package ast

import "github.com/valueflow/usher/internal/token"

// Node is the interface implemented by all AST nodes.
type Node interface {
	Pos() token.Pos
}

// Program is a parsed translation unit.
type Program struct {
	File  string
	Decls []Decl
}

// Pos returns the position of the first declaration.
func (p *Program) Pos() token.Pos {
	if len(p.Decls) > 0 {
		return p.Decls[0].Pos()
	}
	return token.Pos{File: p.File}
}

// Decl is a top-level declaration.
type Decl interface {
	Node
	declNode()
}

// Include is a `#include "name"` directive naming another module of a
// multi-file program. The frontend does not resolve it — package module
// builds the dependency graph from these nodes and compiles each module
// against its dependencies' exported declarations. An Include that
// survives to the type checker (single-file compilation) is an error.
type Include struct {
	HashPos token.Pos // position of the '#'
	Path    string    // module name between the quotes
	PathPos token.Pos // position of the string literal
}

// StructDecl declares a struct type.
type StructDecl struct {
	NamePos token.Pos
	Name    string
	Fields  []Field
}

// Field is a single struct field.
type Field struct {
	Type TypeExpr
	Name string
	Pos  token.Pos
}

// VarDecl declares a variable (global when at top level, local inside a
// function body). A nil Init leaves the variable uninitialized; globals are
// default-initialized per C semantics regardless.
type VarDecl struct {
	NamePos token.Pos
	Type    TypeExpr
	Name    string
	Init    Expr // optional
}

// Param is a function parameter.
type Param struct {
	Type TypeExpr
	Name string
	Pos  token.Pos
}

// FuncDecl declares a function. Body is nil for a prototype. Variadic
// marks a trailing `...` in the parameter list.
type FuncDecl struct {
	NamePos  token.Pos
	Ret      TypeExpr
	Name     string
	Params   []Param
	Variadic bool
	Body     *Block
}

func (d *Include) Pos() token.Pos    { return d.HashPos }
func (d *StructDecl) Pos() token.Pos { return d.NamePos }
func (d *VarDecl) Pos() token.Pos    { return d.NamePos }
func (d *FuncDecl) Pos() token.Pos   { return d.NamePos }

func (*Include) declNode()    {}
func (*StructDecl) declNode() {}
func (*VarDecl) declNode()    {}
func (*FuncDecl) declNode()   {}

// TypeExpr is a syntactic type.
type TypeExpr interface {
	Node
	typeExprNode()
}

// IntTypeExpr is the `int` type.
type IntTypeExpr struct{ P token.Pos }

// CharTypeExpr is the `char` type. In the abstract-cell model a char is
// a one-cell integer, so it checks as an alias of int; the node is kept
// distinct so printing round-trips.
type CharTypeExpr struct{ P token.Pos }

// VoidTypeExpr is the `void` type (function returns only).
type VoidTypeExpr struct{ P token.Pos }

// StructTypeExpr is a reference `struct Name`.
type StructTypeExpr struct {
	P    token.Pos
	Name string
}

// PointerTypeExpr is `Elem *`.
type PointerTypeExpr struct {
	P    token.Pos
	Elem TypeExpr
}

// ArrayTypeExpr is `Elem [Len]`.
type ArrayTypeExpr struct {
	P    token.Pos
	Elem TypeExpr
	Len  int64
}

// FuncTypeExpr is a function type, used for function pointers. Variadic
// marks a trailing `...` in the parameter type list.
type FuncTypeExpr struct {
	P        token.Pos
	Ret      TypeExpr
	Params   []TypeExpr
	Variadic bool
}

func (t *IntTypeExpr) Pos() token.Pos     { return t.P }
func (t *CharTypeExpr) Pos() token.Pos    { return t.P }
func (t *VoidTypeExpr) Pos() token.Pos    { return t.P }
func (t *StructTypeExpr) Pos() token.Pos  { return t.P }
func (t *PointerTypeExpr) Pos() token.Pos { return t.P }
func (t *ArrayTypeExpr) Pos() token.Pos   { return t.P }
func (t *FuncTypeExpr) Pos() token.Pos    { return t.P }

func (*IntTypeExpr) typeExprNode()     {}
func (*CharTypeExpr) typeExprNode()    {}
func (*VoidTypeExpr) typeExprNode()    {}
func (*StructTypeExpr) typeExprNode()  {}
func (*PointerTypeExpr) typeExprNode() {}
func (*ArrayTypeExpr) typeExprNode()   {}
func (*FuncTypeExpr) typeExprNode()    {}

// Stmt is a statement.
type Stmt interface {
	Node
	stmtNode()
}

// Block is a brace-delimited statement list with its own scope.
type Block struct {
	P     token.Pos
	Stmts []Stmt
}

// DeclStmt is a local variable declaration statement.
type DeclStmt struct{ Decl *VarDecl }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ X Expr }

// IfStmt is `if (Cond) Then else Else`; Else may be nil.
type IfStmt struct {
	P    token.Pos
	Cond Expr
	Then Stmt
	Else Stmt
}

// WhileStmt is `while (Cond) Body`.
type WhileStmt struct {
	P    token.Pos
	Cond Expr
	Body Stmt
}

// ForStmt is `for (Init; Cond; Post) Body`; each clause may be nil. Init is
// either a DeclStmt or an ExprStmt.
type ForStmt struct {
	P    token.Pos
	Init Stmt
	Cond Expr
	Post Expr
	Body Stmt
}

// ReturnStmt is `return X;` with X possibly nil.
type ReturnStmt struct {
	P token.Pos
	X Expr
}

// BreakStmt is `break;`.
type BreakStmt struct{ P token.Pos }

// ContinueStmt is `continue;`.
type ContinueStmt struct{ P token.Pos }

// EmptyStmt is a lone `;`.
type EmptyStmt struct{ P token.Pos }

func (s *Block) Pos() token.Pos        { return s.P }
func (s *DeclStmt) Pos() token.Pos     { return s.Decl.Pos() }
func (s *ExprStmt) Pos() token.Pos     { return s.X.Pos() }
func (s *IfStmt) Pos() token.Pos       { return s.P }
func (s *WhileStmt) Pos() token.Pos    { return s.P }
func (s *ForStmt) Pos() token.Pos      { return s.P }
func (s *ReturnStmt) Pos() token.Pos   { return s.P }
func (s *BreakStmt) Pos() token.Pos    { return s.P }
func (s *ContinueStmt) Pos() token.Pos { return s.P }
func (s *EmptyStmt) Pos() token.Pos    { return s.P }

func (*Block) stmtNode()        {}
func (*DeclStmt) stmtNode()     {}
func (*ExprStmt) stmtNode()     {}
func (*IfStmt) stmtNode()       {}
func (*WhileStmt) stmtNode()    {}
func (*ForStmt) stmtNode()      {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*EmptyStmt) stmtNode()    {}

// Expr is an expression.
type Expr interface {
	Node
	exprNode()
}

// NumberLit is an integer literal. Character literals also parse to
// NumberLit, carrying the byte value.
type NumberLit struct {
	P     token.Pos
	Value int64
}

// StringLit is a string literal. Value holds the decoded bytes (without
// the implicit NUL terminator). Its type is a char array of length
// len(Value)+1; in rvalue position it decays to a pointer to a
// fully-defined read-only global object.
type StringLit struct {
	P     token.Pos
	Value string
}

// Ident is a use of a named variable or function.
type Ident struct {
	P    token.Pos
	Name string
}

// Unary is a prefix unary operation: * & - ! ~.
type Unary struct {
	P  token.Pos
	Op token.Kind
	X  Expr
}

// Binary is an infix binary operation.
type Binary struct {
	P    token.Pos
	Op   token.Kind
	X, Y Expr
}

// Assign is `LHS = RHS`. Compound assignments and ++/-- are desugared to
// plain Assign with a Binary RHS by the parser.
type Assign struct {
	P   token.Pos
	LHS Expr
	RHS Expr
}

// Call is a function call; Fun is an Ident for direct calls or any pointer
// expression for indirect calls.
type Call struct {
	P    token.Pos
	Fun  Expr
	Args []Expr
}

// Index is `X[Idx]`.
type Index struct {
	P   token.Pos
	X   Expr
	Idx Expr
}

// FieldAccess is `X.Name` (Arrow false) or `X->Name` (Arrow true).
type FieldAccess struct {
	P     token.Pos
	X     Expr
	Name  string
	Arrow bool
}

// SizeofExpr is `sizeof(T)`, measured in abstract cells.
type SizeofExpr struct {
	P token.Pos
	T TypeExpr
}

func (e *NumberLit) Pos() token.Pos   { return e.P }
func (e *StringLit) Pos() token.Pos   { return e.P }
func (e *Ident) Pos() token.Pos       { return e.P }
func (e *Unary) Pos() token.Pos       { return e.P }
func (e *Binary) Pos() token.Pos      { return e.P }
func (e *Assign) Pos() token.Pos      { return e.P }
func (e *Call) Pos() token.Pos        { return e.P }
func (e *Index) Pos() token.Pos       { return e.P }
func (e *FieldAccess) Pos() token.Pos { return e.P }
func (e *SizeofExpr) Pos() token.Pos  { return e.P }

func (*NumberLit) exprNode()   {}
func (*StringLit) exprNode()   {}
func (*Ident) exprNode()       {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*Assign) exprNode()      {}
func (*Call) exprNode()        {}
func (*Index) exprNode()       {}
func (*FieldAccess) exprNode() {}
func (*SizeofExpr) exprNode()  {}
