package pool

import (
	"runtime"
	"sync"
)

// Package pool provides the bounded, deterministic worker pool shared
// by the drivers (via bench.ForEach) and the module build's batch
// compiles.

// DefaultParallelism is the worker count used by the non-parallel entry
// points: one worker per CPU.
func DefaultParallelism() int { return runtime.NumCPU() }

// ForEach runs f(0..n-1) on at most parallel workers and returns the
// first (lowest-index) error. With parallel <= 1 it degenerates to a
// plain sequential loop, reproducing the pre-parallel driver exactly.
// Results must be written by f into pre-sized slices indexed by i, which
// keeps output ordering deterministic regardless of scheduling. It is
// the shared worker pool behind usher-bench and usher-difftest.
func ForEach(parallel, n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	if parallel > n {
		parallel = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	// done is closed by the first worker that records an error, stopping
	// the dispatcher from handing out the remaining indices (the serial
	// loop likewise stops at the first failure). In-flight work finishes.
	done := make(chan struct{})
	var closeOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if errs[i] = f(i); errs[i] != nil {
					closeOnce.Do(func() { close(done) })
				}
			}
		}()
	}
dispatch:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-done:
			break dispatch
		}
	}
	close(idx)
	wg.Wait()
	// Lowest index wins. This matches the serial loop: indices are handed
	// out in order, so any index the serial loop would have failed on was
	// dispatched no later than the error that stopped the dispatcher.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
