package bench

import (
	"encoding/json"
	"os"
	"time"
)

// PhaseTime records the wall-clock duration of one driver phase.
type PhaseTime struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// LevelRows pairs a Figure 10 run with its optimization level.
type LevelRows struct {
	Level string        `json:"level"`
	Rows  []OverheadRow `json:"rows"`
}

// SchemaVersion identifies the JSON layout of Report, so downstream
// tooling can evolve alongside it. Bump on any incompatible change.
const SchemaVersion = 1

// Report is the machine-readable form of one usher-bench invocation,
// written by the -json flag. It captures everything the text renderers
// print plus the execution environment and per-phase wall-clock, so perf
// trajectories can be tracked across commits and machines.
type Report struct {
	SchemaVersion int    `json:"schemaVersion"`
	GeneratedAt   string `json:"generated_at"`
	NumCPU        int    `json:"num_cpu"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Parallel      int    `json:"parallel"`
	// Solver names the pointer-solver implementation the run used
	// ("bitvector" or "legacy", see usher-bench -legacy-solver).
	Solver string `json:"solver,omitempty"`

	Phases []PhaseTime `json:"phases"`

	// Error is set when a phase failed: the report then holds the results
	// of every phase completed before the failure.
	Error string `json:"error,omitempty"`

	Table1    []Table1Row   `json:"table1,omitempty"`
	Fig10     []LevelRows   `json:"fig10,omitempty"`
	Fig11     []StaticRow   `json:"fig11,omitempty"`
	Ablations []AblationRow `json:"ablations,omitempty"`
}

// AddPhase appends a phase timing.
func (r *Report) AddPhase(name string, start time.Time) {
	r.Phases = append(r.Phases, PhaseTime{Name: name, Seconds: time.Since(start).Seconds()})
}

// WriteFailure records err on the report and writes the partial report
// to path: every phase completed before the failure is preserved, with
// the failure itself in the "error" field. It is the -json rendering of
// a phase failure in cmd/usher-bench.
func (r *Report) WriteFailure(path string, err error) error {
	r.Error = err.Error()
	return r.WriteJSON(path)
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
