package bench

import (
	"time"

	"github.com/valueflow/usher/internal/stats"
)

// PhaseTime records the wall-clock duration of one driver phase (table1,
// fig10, ...), as opposed to the per-pass analysis phases in Phases.
type PhaseTime struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// LevelRows pairs a Figure 10 run with its optimization level.
type LevelRows struct {
	Level string        `json:"level"`
	Rows  []OverheadRow `json:"rows"`
}

// SchemaVersion identifies the JSON layout of the drivers' reports
// (usher-bench and usher-difftest share it), so downstream tooling can
// evolve alongside them. Bump on any incompatible change.
//
// v2: "phases" became the per-pass analysis stats (pass/phase/variant,
// runs, wall_sec, alloc_bytes, counters — see internal/stats); the driver
// phase timings moved to "driver_phases".
//
// v3: added the "resolve" section (-resolve-scale: summary-based Γ
// resolution vs the dense baseline) and the top-level "gamma_summaries"
// field recording whether the run resolved through Opt IV summaries.
//
// v4: usher-difftest gained the sanitizer-vs-sanitizer mutation
// campaign: the report's "mutants" counts replayed mutants and each
// finding may carry a "mutation" tag naming the semantic mutation
// (kind#index) that planted the divergence.
const SchemaVersion = 4

// Report is the machine-readable form of one usher-bench invocation,
// written by the -json flag. It captures everything the text renderers
// print plus the execution environment, per-driver-phase wall-clock, and
// (with -stats) per-analysis-pass observations, so perf trajectories can
// be tracked across commits and machines and attributed to pipeline
// phases.
type Report struct {
	SchemaVersion int    `json:"schemaVersion"`
	GeneratedAt   string `json:"generated_at"`
	NumCPU        int    `json:"num_cpu"`
	GOMAXPROCS    int    `json:"gomaxprocs"`
	Parallel      int    `json:"parallel"`
	// Solver names the pointer-solver implementation the run used
	// ("bitvector" or "legacy", see usher-bench -legacy-solver).
	Solver string `json:"solver,omitempty"`
	// SolverWorkers is the -solver-workers value (0 = sequential). All
	// reported results are bit-identical for any value; only timings move.
	SolverWorkers int `json:"solver_workers"`
	// GammaSummaries is the -gamma-summaries value: whether Γ resolution
	// ran through the Opt IV summary resolver. Results are bit-identical
	// either way; only timings move.
	GammaSummaries bool `json:"gamma_summaries"`

	// DriverPhases times the driver's coarse phases (table1, fig10, ...).
	DriverPhases []PhaseTime `json:"driver_phases"`
	// Phases is the per-pass analysis breakdown (present with -stats).
	// Runs and counters are bit-identical for any -parallel value; the
	// wall_sec/alloc_bytes measurements are not part of that contract.
	Phases []stats.PassStats `json:"phases,omitempty"`

	// Error is set when a phase failed: the report then holds the results
	// of every phase completed before the failure.
	Error string `json:"error,omitempty"`

	Table1    []Table1Row   `json:"table1,omitempty"`
	Fig10     []LevelRows   `json:"fig10,omitempty"`
	Fig11     []StaticRow   `json:"fig11,omitempty"`
	Ablations []AblationRow `json:"ablations,omitempty"`
	// SolverScale is the -solver-scale section: wave-solver scaling over
	// the XL profiles and snapshot warm-start timings (additive — older
	// readers ignore it, so the schema version is unchanged).
	SolverScale *SolverScaleResult `json:"solver_scale,omitempty"`
	// Incremental is the -incremental section: multi-file module builds,
	// cold vs. warm vs. after a 1-line edit (also additive).
	Incremental *IncrementalResult `json:"incremental,omitempty"`
	// Resolve is the -resolve-scale section: summary-based Γ resolution
	// against the dense baseline over the resolve-stress XL profiles and
	// module projects.
	Resolve *ResolveScaleResult `json:"resolve,omitempty"`
}

// AddPhase appends a driver-phase timing.
func (r *Report) AddPhase(name string, start time.Time) {
	r.DriverPhases = append(r.DriverPhases, PhaseTime{Name: name, Seconds: time.Since(start).Seconds()})
}

// WriteFailure records err on the report and writes the partial report
// to path: every phase completed before the failure is preserved, with
// the failure itself in the "error" field. It is the -json rendering of
// a phase failure in cmd/usher-bench.
func (r *Report) WriteFailure(path string, err error) error {
	r.Error = err.Error()
	return r.WriteJSON(path)
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	return WriteJSONFile(path, r)
}
