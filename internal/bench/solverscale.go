package bench

import (
	"crypto/sha256"
	"fmt"
	"io"
	"os"
	"time"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/snapshot"
	"github.com/valueflow/usher/internal/workload"
)

// This file is the -solver-scale driver: the measurement harness behind
// BENCH_solver_scale.json. It has two legs:
//
//   - Wave-solver scaling: every XL constraint-graph profile is solved
//     at workers = 0 (classic sequential solver) and each requested
//     wave-solver worker count, timing each solve and asserting that
//     (a) every run's points-to/call-graph signature matches the
//     sequential solve and (b) the wave solver's deterministic stats
//     are bit-identical across worker counts. The test suite pins the
//     same properties; the checks here guard the benchmark numbers
//     themselves.
//   - Snapshot warm starts: the solver-large MiniC workload runs the
//     whole pipeline cold (compile excluded, analyze all configurations),
//     persists a snapshot, then warm-starts a fresh session from it and
//     re-analyzes, verifying the plans are fingerprint-identical. Cold
//     vs warm wall time is the headline number; the snapshot's size and
//     save/load costs are recorded alongside.
//
// Wall-clock numbers are measurements, not part of any determinism
// contract; the identical-stats/identical-fingerprint booleans are.

// SolverScaleWorkerCounts is the default wave-solver sweep.
var SolverScaleWorkerCounts = []int{1, 2, 4, 8}

// WorkerTiming is one solve's wall time at a worker count.
type WorkerTiming struct {
	// Workers is the solver worker count (0 = classic sequential).
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// Speedup is sequential-seconds / this-seconds (1.0 for the
	// sequential row itself).
	Speedup float64 `json:"speedup_vs_sequential"`
}

// ScaleRow is the wave-solver scaling result for one XL profile.
type ScaleRow struct {
	Profile string `json:"profile"`
	// Constraints is complex constraints + copy-edge insertions: the
	// total constraint count the profile presents to the solver.
	Constraints int            `json:"constraints"`
	Timings     []WorkerTiming `json:"timings"`
	// StatsIdentical records that every wave-solver run reported
	// bit-identical solver stats (visits, waves, SCCs, ...) regardless
	// of worker count. The classic sequential solver (workers=0) is
	// excluded: it schedules LCD differently, so its internal work
	// counters may differ even though its results are identical.
	StatsIdentical bool `json:"stats_identical"`
	// SignatureIdentical records that every run — sequential included —
	// produced the same points-to sets and call-graph edges. Both
	// booleans must always be true.
	SignatureIdentical bool `json:"signature_identical"`
}

// SnapshotRow is the warm-start result over the solver-large pipeline.
type SnapshotRow struct {
	Profile string `json:"profile"`
	Configs int    `json:"configs"`
	// ColdSeconds is the full cold analysis (pointer solve through plan
	// emission, every configuration); WarmSeconds is load + import +
	// analyze from the snapshot.
	ColdSeconds float64 `json:"cold_seconds"`
	SaveSeconds float64 `json:"save_seconds"`
	LoadSeconds float64 `json:"load_seconds"`
	WarmSeconds float64 `json:"warm_seconds"`
	// SpeedupWarm is ColdSeconds / (LoadSeconds + WarmSeconds).
	SpeedupWarm float64 `json:"speedup_warm"`
	// SnapshotBytes is the on-disk snapshot size.
	SnapshotBytes int64 `json:"snapshot_bytes"`
	// PlansIdentical records that every warm plan fingerprint matched
	// its cold counterpart. Must always be true.
	PlansIdentical bool `json:"plans_identical"`
}

// SolverScaleResult is the -solver-scale section of the JSON report.
type SolverScaleResult struct {
	WorkerCounts []int         `json:"worker_counts"`
	XL           []ScaleRow    `json:"xl"`
	Snapshot     []SnapshotRow `json:"snapshot"`
}

// SolverScale runs the scaling harness. snapshotDir is where warm-start
// snapshots are written ("" = a temporary directory, removed after).
func SolverScale(workerCounts []int, snapshotDir string) (*SolverScaleResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = SolverScaleWorkerCounts
	}
	res := &SolverScaleResult{WorkerCounts: workerCounts}
	for _, p := range workload.XLProfiles {
		row, err := scaleProfile(p, workerCounts)
		if err != nil {
			return nil, err
		}
		res.XL = append(res.XL, row)
	}
	if snapshotDir == "" {
		dir, err := os.MkdirTemp("", "usher-snap-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		snapshotDir = dir
	}
	snapRow, err := snapshotProfile(snapshotDir)
	if err != nil {
		return nil, err
	}
	res.Snapshot = append(res.Snapshot, snapRow)
	return res, nil
}

// scaleProfile times one XL profile's solve at every worker count. The
// IR is rebuilt fresh for every run: solving mutates shared object
// state (collapsing), and the builds are deterministic. The timing
// excludes the signature hash, which exists only to pin result parity.
func scaleProfile(p workload.XLProfile, workerCounts []int) (ScaleRow, error) {
	solveAt := func(workers int) (time.Duration, pointer.SolverStats, [sha256.Size]byte) {
		prog := workload.BuildXL(p)
		start := time.Now()
		r := pointer.AnalyzeWorkers(prog, workers)
		wall := time.Since(start)
		return wall, r.Stats, resultSignature(prog, r)
	}
	seqWall, seqStats, seqSig := solveAt(0)
	row := ScaleRow{
		Profile:            p.Name,
		Constraints:        seqStats.Constraints + seqStats.CopyEdges,
		StatsIdentical:     true,
		SignatureIdentical: true,
		Timings: []WorkerTiming{{
			Workers: 0, Seconds: seqWall.Seconds(), Speedup: 1,
		}},
	}
	var waveStats pointer.SolverStats
	for i, w := range workerCounts {
		wall, st, sig := solveAt(w)
		if i == 0 {
			waveStats = st
		} else if st != waveStats {
			row.StatsIdentical = false
		}
		if sig != seqSig {
			row.SignatureIdentical = false
		}
		row.Timings = append(row.Timings, WorkerTiming{
			Workers: w,
			Seconds: wall.Seconds(),
			Speedup: seqWall.Seconds() / wall.Seconds(),
		})
	}
	if !row.StatsIdentical {
		return row, fmt.Errorf("bench: %s: wave-solver stats diverge across worker counts", p.Name)
	}
	if !row.SignatureIdentical {
		return row, fmt.Errorf("bench: %s: points-to results diverge from the sequential solve", p.Name)
	}
	return row, nil
}

// resultSignature hashes every register's points-to set and every
// call's resolved callees: two solves agree exactly when their
// signatures agree. Used to pin wave-solver/sequential result parity
// on the benchmark runs themselves (the test suite pins it too).
func resultSignature(prog *ir.Program, res *pointer.Result) [sha256.Size]byte {
	h := sha256.New()
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if r := in.Defines(); r != nil {
					if locs := res.PointsTo(r); len(locs) > 0 {
						fmt.Fprintf(h, "pts %s %s =", fn.Name, r)
						for _, l := range locs {
							fmt.Fprintf(h, " %s", l)
						}
						fmt.Fprintln(h)
					}
				}
				if c, ok := in.(*ir.Call); ok {
					if fns := res.Callees(c); len(fns) > 0 {
						fmt.Fprintf(h, "call %s %d =", fn.Name, c.Label())
						for _, f := range fns {
							fmt.Fprintf(h, " %s", f.Name)
						}
						fmt.Fprintln(h)
					}
				}
			}
		}
	}
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// snapshotProfile measures cold-vs-warm over the solver-large pipeline.
func snapshotProfile(dir string) (SnapshotRow, error) {
	p := workload.LargeProfiles[2] // solver-large
	src := workload.GenerateLarge(p)
	cfgs := usher.ExtendedConfigs
	compile := func() (*usher.Session, error) {
		prog, err := usher.Compile(p.Name+".c", src)
		if err != nil {
			return nil, err
		}
		if err := passes.Apply(prog, passes.O0IM); err != nil {
			return nil, err
		}
		return usher.NewSession(prog), nil
	}

	row := SnapshotRow{Profile: p.Name, Configs: len(cfgs), PlansIdentical: true}

	cold, err := compile()
	if err != nil {
		return row, err
	}
	start := time.Now()
	coldAnalyses, err := cold.AnalyzeAll(cfgs)
	if err != nil {
		return row, err
	}
	row.ColdSeconds = time.Since(start).Seconds()

	start = time.Now()
	snap, err := cold.Snapshot()
	if err != nil {
		return row, err
	}
	path, err := snapshot.Save(dir, cold.Prog, snap)
	if err != nil {
		return row, err
	}
	row.SaveSeconds = time.Since(start).Seconds()
	if fi, err := os.Stat(path); err == nil {
		row.SnapshotBytes = fi.Size()
	}

	warm, err := compile()
	if err != nil {
		return row, err
	}
	start = time.Now()
	loaded, err := snapshot.Load(dir, warm.Prog)
	if err != nil {
		return row, err
	}
	row.LoadSeconds = time.Since(start).Seconds()
	start = time.Now()
	if _, err := warm.WarmStart(loaded); err != nil {
		return row, err
	}
	warmAnalyses, err := warm.AnalyzeAll(cfgs)
	if err != nil {
		return row, err
	}
	row.WarmSeconds = time.Since(start).Seconds()
	for i := range cfgs {
		if warmAnalyses[i].Plan.Fingerprint() != coldAnalyses[i].Plan.Fingerprint() {
			row.PlansIdentical = false
		}
	}
	if !row.PlansIdentical {
		return row, fmt.Errorf("bench: %s: warm plans diverge from cold solve", p.Name)
	}
	row.SpeedupWarm = row.ColdSeconds / (row.LoadSeconds + row.WarmSeconds)
	return row, nil
}

// WriteSolverScale renders the scaling results as text tables.
func WriteSolverScale(w io.Writer, res *SolverScaleResult) {
	if len(res.XL) == 0 {
		return
	}
	fmt.Fprintln(w, "wave-solver scaling (fresh solve per cell; workers=0 is the classic sequential solver):")
	fmt.Fprintf(w, "  %-18s %12s", "profile", "constraints")
	fmt.Fprintf(w, " %10s", "seq(s)")
	for _, t := range res.XL[0].Timings[1:] {
		fmt.Fprintf(w, " %12s", fmt.Sprintf("workers=%d", t.Workers))
	}
	fmt.Fprintln(w)
	for _, row := range res.XL {
		fmt.Fprintf(w, "  %-18s %12d %10.3f", row.Profile, row.Constraints, row.Timings[0].Seconds)
		for _, t := range row.Timings[1:] {
			fmt.Fprintf(w, " %6.3fs/%.2fx", t.Seconds, t.Speedup)
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "snapshot warm starts (full pipeline, all configurations):")
	for _, s := range res.Snapshot {
		fmt.Fprintf(w, "  %-14s cold %.3fs  save %.3fs (%d bytes)  load %.3fs  warm %.3fs  speedup %.1fx  plans-identical=%v\n",
			s.Profile, s.ColdSeconds, s.SaveSeconds, s.SnapshotBytes, s.LoadSeconds, s.WarmSeconds, s.SpeedupWarm, s.PlansIdentical)
	}
}
