package bench

import (
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/workload"
)

// TestResolveScaleRowParity runs the -resolve-scale harness's row
// driver over the small resolve-stress profile: the summary legs must
// be bit-identical to the dense baseline (resolveScaleRow hard-errors
// otherwise), and the condensed graph must be a real contraction.
func TestResolveScaleRowParity(t *testing.T) {
	p, ok := workload.XLByName("resolve-xl-small")
	if !ok {
		t.Fatal("no resolve-xl-small profile")
	}
	row, err := resolveScaleRow(p.Name, "xl", []int{1, 2}, func() (*ir.Program, error) {
		return workload.BuildXL(p), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !row.Identical {
		t.Fatal("summary legs diverge from dense resolution")
	}
	if row.Nodes == 0 || row.Supernodes == 0 || row.Supernodes >= row.Nodes {
		t.Errorf("condensation is vacuous: %d supernodes over %d nodes", row.Supernodes, row.Nodes)
	}
	if len(row.Timings) != 3 {
		t.Errorf("got %d timings, want dense + 2 summary legs", len(row.Timings))
	}
}

// TestResolveProfilesIsolated pins that the resolve-stress generator is
// fully gated: solver profiles carry none of the undef-dispatch IR, so
// their generated programs are unchanged by the Undef* fields.
func TestResolveProfilesIsolated(t *testing.T) {
	solver, ok := workload.XLByName("solver-xl-small")
	if !ok {
		t.Fatal("no solver-xl-small profile")
	}
	if txt := ir.Print(workload.BuildXL(solver)); strings.Contains(txt, "usite_") || strings.Contains(txt, "utarget_") {
		t.Error("solver profile contains resolve-stress functions")
	}
	res, ok := workload.XLByName("resolve-xl-small")
	if !ok {
		t.Fatal("no resolve-xl-small profile")
	}
	txt := ir.Print(workload.BuildXL(res))
	for _, want := range []string{"usite_0", "utarget_0", "ucell_0"} {
		if !strings.Contains(txt, want) {
			t.Errorf("resolve profile is missing %q", want)
		}
	}
}
