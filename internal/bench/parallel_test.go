package bench_test

import (
	"reflect"
	"testing"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/workload"
)

// The -parallel N / -parallel 1 contract: every reported number is
// identical regardless of worker count; only the measured wall-clock
// and allocation columns may differ. These tests enforce the contract
// at the API level, which is what cmd/usher-bench prints.

func subset(t *testing.T, names ...string) []workload.Profile {
	t.Helper()
	out := make([]workload.Profile, 0, len(names))
	for _, n := range names {
		p, ok := workload.ByName(n)
		if !ok {
			t.Fatalf("no workload %s", n)
		}
		out = append(out, p)
	}
	return out
}

func TestFig10ParallelMatchesSerial(t *testing.T) {
	profiles := subset(t, "mcf", "equake")
	serial, err := bench.Fig10Profiles(profiles, passes.O0IM, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := bench.Fig10Profiles(profiles, passes.O0IM, 4)
	if err != nil {
		t.Fatal(err)
	}
	// WallSec is a measurement, not a result; everything else must match.
	scrub := func(rows []bench.OverheadRow) {
		for i := range rows {
			for j := range rows[i].Runs {
				rows[i].Runs[j].WallSec = 0
			}
		}
	}
	scrub(serial)
	scrub(par)
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("fig10 rows differ between -parallel 1 and -parallel 4:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestTable1ParallelMatchesSerial(t *testing.T) {
	serial, err := bench.Table1Parallel(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := bench.Table1Parallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(par) {
		t.Fatalf("row counts differ: %d vs %d", len(serial), len(par))
	}
	for i := range serial {
		a, b := serial[i], par[i]
		a.TimeSec, b.TimeSec = 0, 0
		a.MemMB, b.MemMB = 0, 0
		if a != b {
			t.Errorf("table1 row %s differs between -parallel 1 and -parallel 4:\nserial: %+v\nparallel: %+v", serial[i].Name, a, b)
		}
	}
}

func TestFig11ParallelMatchesSerial(t *testing.T) {
	serial, err := bench.Fig11Parallel(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := bench.Fig11Parallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("fig11 rows differ between -parallel 1 and -parallel 4:\nserial: %+v\nparallel: %+v", serial, par)
	}
}

func TestAblationsParallelMatchesSerial(t *testing.T) {
	serial, err := bench.AblationsParallel(1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := bench.AblationsParallel(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, par) {
		t.Errorf("ablation rows differ between -parallel 1 and -parallel 4:\nserial: %+v\nparallel: %+v", serial, par)
	}
}
