package bench

import (
	"runtime"
	"sync"
)

// DefaultParallelism is the worker count used by the non-parallel entry
// points (Table1, Fig10, ...): one worker per CPU.
func DefaultParallelism() int { return runtime.NumCPU() }

// forEach runs f(0..n-1) on at most parallel workers and returns the
// first (lowest-index) error. With parallel <= 1 it degenerates to a
// plain sequential loop, reproducing the pre-parallel driver exactly.
// Results must be written by f into pre-sized slices indexed by i, which
// keeps output ordering deterministic regardless of scheduling.
func forEach(parallel, n int, f func(i int) error) error {
	if n == 0 {
		return nil
	}
	if parallel <= 1 {
		for i := 0; i < n; i++ {
			if err := f(i); err != nil {
				return err
			}
		}
		return nil
	}
	if parallel > n {
		parallel = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = f(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	// Lowest index wins, matching the error the serial loop would return.
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
