package bench

import "github.com/valueflow/usher/internal/pool"

// DefaultParallelism is the worker count used by the non-parallel entry
// points (Table1, Fig10, ...): one worker per CPU.
func DefaultParallelism() int { return pool.DefaultParallelism() }

// ForEach runs f(0..n-1) on at most parallel workers and returns the
// first (lowest-index) error. With parallel <= 1 it degenerates to a
// plain sequential loop, reproducing the pre-parallel driver exactly.
// Results must be written by f into pre-sized slices indexed by i, which
// keeps output ordering deterministic regardless of scheduling. It is
// the shared worker pool behind usher-bench, usher-difftest and the
// module build (see internal/pool for the implementation).
func ForEach(parallel, n int, f func(i int) error) error {
	return pool.ForEach(parallel, n, f)
}
