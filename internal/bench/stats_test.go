package bench_test

import (
	"reflect"
	"testing"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/stats"
)

// The -stats extension of the -parallel contract: the pass-stats Runs and
// Counters columns are pure functions of the analyzed programs, so two
// sweeps over the same inputs at different worker counts must produce
// identical scrubbed snapshots (measurements zeroed, see stats.Scrub).

func TestFig10StatsDeterministicAcrossParallel(t *testing.T) {
	profiles := subset(t, "mcf", "equake")

	serial := stats.New()
	if _, err := bench.Fig10Observed(profiles, passes.O0IM, 1, serial); err != nil {
		t.Fatal(err)
	}
	par := stats.New()
	if _, err := bench.Fig10Observed(profiles, passes.O0IM, 4, par); err != nil {
		t.Fatal(err)
	}

	a := stats.Scrub(serial.Snapshot())
	b := stats.Scrub(par.Snapshot())
	if len(a) == 0 {
		t.Fatal("observed sweep recorded no pass stats")
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("pass stats differ between -parallel 1 and -parallel 4:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

func TestTable1StatsDeterministicAcrossParallel(t *testing.T) {
	serial := stats.New()
	if _, err := bench.Table1Observed(1, serial); err != nil {
		t.Fatal(err)
	}
	par := stats.New()
	if _, err := bench.Table1Observed(4, par); err != nil {
		t.Fatal(err)
	}
	a := stats.Scrub(serial.Snapshot())
	b := stats.Scrub(par.Snapshot())
	if !reflect.DeepEqual(a, b) {
		t.Errorf("table1 pass stats differ between -parallel 1 and -parallel 4:\nserial:   %+v\nparallel: %+v", a, b)
	}
}

// TestObservedMatchesUnobserved: threading a collector through a sweep
// must not change any reported number.
func TestObservedMatchesUnobserved(t *testing.T) {
	profiles := subset(t, "mcf")
	plain, err := bench.Fig10Profiles(profiles, passes.O0IM, 1)
	if err != nil {
		t.Fatal(err)
	}
	observed, err := bench.Fig10Observed(profiles, passes.O0IM, 1, stats.New())
	if err != nil {
		t.Fatal(err)
	}
	scrub := func(rows []bench.OverheadRow) {
		for i := range rows {
			for j := range rows[i].Runs {
				rows[i].Runs[j].WallSec = 0
			}
		}
	}
	scrub(plain)
	scrub(observed)
	if !reflect.DeepEqual(plain, observed) {
		t.Errorf("observed sweep changed results:\nplain:    %+v\nobserved: %+v", plain, observed)
	}
}
