// Package bench regenerates every table and figure of the paper's
// evaluation (§4) over the synthetic workload suite:
//
//   - Table 1: per-benchmark static statistics of the value-flow analysis
//     under O0+IM;
//   - Figure 10: execution-time slowdowns of MSan, Usher_TL, Usher_TL+AT,
//     Usher_OptI and Usher relative to native execution;
//   - Figure 11: static shadow-propagation and check counts normalized to
//     MSan;
//   - §4.6: the same slowdowns under the O1 and O2 pipelines.
//
// Slowdown is measured with a deterministic cost model: each executed
// shadow propagation costs PropCost native-operation equivalents and each
// executed check CheckCost; overhead = shadow work / native work. The
// model makes runs reproducible to the instruction; wall-clock
// measurements of the same interpreter agree in ordering.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/workload"
)

// Cost-model weights, calibrated so full instrumentation lands near the
// paper's ~3x slowdown for MSan under O0+IM: shadow propagations touch
// shadow memory (and on real hardware dilate the cache footprint), checks
// add a compare+branch.
const (
	// PropCost is the native-op-equivalent cost of one shadow
	// propagation.
	PropCost = 3.3
	// CheckCost is the native-op-equivalent cost of one executed check.
	CheckCost = 1.5
)

// Overhead converts dynamic shadow counts into a slowdown percentage.
func Overhead(res *interp.Result) float64 {
	if res.Steps == 0 {
		return 0
	}
	work := PropCost*float64(res.ShadowProps) + CheckCost*float64(res.ShadowChecks)
	return 100 * work / float64(res.Steps)
}

// Compiled is one prepared benchmark.
type Compiled struct {
	Profile workload.Profile
	Source  string
	Prog    *ir.Program
	Level   passes.Level
}

// Prepare generates, compiles and optimizes one profile.
func Prepare(p workload.Profile, level passes.Level) (*Compiled, error) {
	return PrepareObserved(p, level, nil)
}

// PrepareObserved is Prepare with per-pass observability: the frontend
// and scalar passes are recorded into sc (nil records nothing).
func PrepareObserved(p workload.Profile, level passes.Level, sc *stats.Collector) (*Compiled, error) {
	src := workload.Generate(p)
	prog, err := pipeline.Compile(p.Name+".c", src, sc)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	if err := pipeline.ApplyLevel(prog, level, sc); err != nil {
		return nil, fmt.Errorf("%s: %w", p.Name, err)
	}
	return &Compiled{Profile: p, Source: src, Prog: prog, Level: level}, nil
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Name    string
	KLOC    float64
	TimeSec float64
	MemMB   float64
	// VarTL is the number of top-level variables (virtual registers).
	VarTL int
	// Stack/Heap/Global count the address-taken variables by storage.
	Stack, Heap, Global int
	// PctF is the percentage of address-taken objects uninitialized when
	// allocated.
	PctF float64
	// SemiPerSite is the number of semi-strong-update applications per
	// non-array heap allocation site.
	SemiPerSite float64
	// Stores is the number of store instructions; PctSU / PctWU are the
	// percentages with strong updates and with single-target weak
	// updates.
	Stores       int
	PctSU, PctWU float64
	// VFGNodes is the size of the value-flow graph; PctB the percentage
	// of nodes reaching at least one critical statement.
	VFGNodes int
	PctB     float64
	// OptIS is the number of MFCs simplified by Opt I; OptIIR the number
	// of nodes redirected to T by Opt II.
	OptIS, OptIIR int
}

// Table1 computes the static statistics of every benchmark under O0+IM
// with the default parallelism.
func Table1() ([]Table1Row, error) { return Table1Parallel(DefaultParallelism()) }

// Table1Parallel computes Table 1 using up to parallel workers.
// Generation, compilation and optimization run concurrently across
// profiles; the measured analyses (the Time/Mem columns) then run
// serially so per-benchmark allocation and wall-clock attribution stay
// clean. All reported numbers are identical for any parallelism.
func Table1Parallel(parallel int) ([]Table1Row, error) {
	return Table1Observed(parallel, nil)
}

// Table1Observed is Table1Parallel with per-pass observability into sc.
// Compilation passes are recorded from the (parallel) preparation stage;
// the analysis passes are recorded from the serial measurement stage. The
// aggregated counter stats are identical for any parallelism; the timing
// and allocation fields are measurements and are not.
func Table1Observed(parallel int, sc *stats.Collector) ([]Table1Row, error) {
	profiles := workload.Profiles
	compiled := make([]*Compiled, len(profiles))
	err := ForEach(parallel, len(profiles), func(i int) error {
		c, err := PrepareObserved(profiles[i], passes.O0IM, sc)
		if err != nil {
			return err
		}
		compiled[i] = c
		return nil
	})
	if err != nil {
		return nil, err
	}
	rows := make([]Table1Row, len(profiles))
	for i, c := range compiled {
		row, err := table1Row(c, sc)
		if err != nil {
			return nil, err
		}
		rows[i] = row
	}
	return rows, nil
}

func table1Row(c *Compiled, sc *stats.Collector) (Table1Row, error) {
	row := Table1Row{Name: c.Profile.Name}
	row.KLOC = float64(strings.Count(c.Source, "\n")) / 1000

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	an, err := usher.NewSessionObserved(c.Prog, sc).Analyze(usher.ConfigUsherFull)
	if err != nil {
		return row, fmt.Errorf("%s: %w", c.Profile.Name, err)
	}
	row.TimeSec = time.Since(start).Seconds()
	runtime.ReadMemStats(&m1)
	row.MemMB = float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20)

	for _, fn := range c.Prog.Funcs {
		if fn.HasBody {
			row.VarTL += fn.NumRegs()
		}
	}
	objs := c.Prog.Objects()
	uninit := 0
	for _, o := range objs {
		switch o.Kind {
		case ir.ObjStack:
			row.Stack++
		case ir.ObjHeap:
			row.Heap++
		case ir.ObjGlobal:
			row.Global++
		}
		if !o.ZeroInit {
			uninit++
		}
	}
	if len(objs) > 0 {
		row.PctF = 100 * float64(uninit) / float64(len(objs))
	}

	// Store-update classification: a store counts as strong if any of its
	// chis was strongly updated, weak-singleton if any was a
	// single-target weak update.
	g := an.Graph
	storeKind := make(map[ir.Instr]vfg.UpdateKind)
	for chi, kind := range g.StoreUpdates {
		prev, seen := storeKind[chi.Instr]
		if !seen || kind < prev {
			storeKind[chi.Instr] = kind
		}
	}
	var stores, su, wu int
	for _, fn := range c.Prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if _, ok := in.(*ir.Store); ok {
					stores++
					switch storeKind[in] {
					case vfg.UpdateStrong:
						su++
					case vfg.UpdateSemiStrong, vfg.UpdateWeakSingleton:
						wu++
					}
				}
			}
		}
	}
	row.Stores = stores
	if stores > 0 {
		row.PctSU = 100 * float64(su) / float64(stores)
		row.PctWU = 100 * float64(wu) / float64(stores)
	}

	// Semi-strong cuts per non-array heap allocation site.
	heapSites := 0
	for _, o := range objs {
		if o.Kind == ir.ObjHeap && !(o.Collapsed() && o.Size > 1) {
			heapSites++
		}
	}
	if heapSites > 0 {
		row.SemiPerSite = float64(g.SemiStrongCuts) / float64(heapSites)
	}

	row.VFGNodes = len(g.Nodes)
	reach := vfg.ReachesCritical(g)
	nb := 0
	for _, r := range reach {
		if r {
			nb++
		}
	}
	if len(reach) > 0 {
		row.PctB = 100 * float64(nb) / float64(len(reach))
	}
	row.OptIS = an.MFCsSimplified
	row.OptIIR = an.Redirected
	return row, nil
}

// ConfigRun is one configuration's dynamic result on one benchmark.
type ConfigRun struct {
	Config      usher.Config
	ConfigName  string
	Props       int64
	Checks      int64
	OverheadPct float64
	Warnings    int
	WallSec     float64
}

// OverheadRow is one benchmark's Figure 10 measurements.
type OverheadRow struct {
	Name        string
	NativeSteps int64
	Runs        []ConfigRun
}

// Fig10 measures the dynamic slowdown of every configuration on every
// benchmark under the given optimization level (O0+IM for the paper's
// Figure 10; O1/O2 for §4.6), with the default parallelism.
func Fig10(level passes.Level) ([]OverheadRow, error) {
	return Fig10Parallel(level, DefaultParallelism())
}

// Fig10Parallel is Fig10 with an explicit worker bound, applied at two
// levels: across workload profiles, and across configurations within a
// profile (which share one analysis session, so the pointer analysis,
// memory SSA and VFG of each program are built once, not once per
// configuration). parallel <= 1 reproduces the serial driver exactly.
func Fig10Parallel(level passes.Level, parallel int) ([]OverheadRow, error) {
	return Fig10Profiles(workload.Profiles, level, parallel)
}

// Fig10ParallelObserved is Fig10Parallel with per-pass observability
// into sc.
func Fig10ParallelObserved(level passes.Level, parallel int, sc *stats.Collector) ([]OverheadRow, error) {
	return Fig10Observed(workload.Profiles, level, parallel, sc)
}

// Fig10Profiles measures the given profiles only (the full suite for the
// paper's figure; subsets for tests).
func Fig10Profiles(profiles []workload.Profile, level passes.Level, parallel int) ([]OverheadRow, error) {
	return Fig10Observed(profiles, level, parallel, nil)
}

// Fig10Observed is Fig10Profiles with per-pass observability into sc.
func Fig10Observed(profiles []workload.Profile, level passes.Level, parallel int, sc *stats.Collector) ([]OverheadRow, error) {
	rows := make([]OverheadRow, len(profiles))
	err := ForEach(parallel, len(profiles), func(i int) error {
		c, err := PrepareObserved(profiles[i], level, sc)
		if err != nil {
			return err
		}
		row, err := overheadRow(c, parallel, sc)
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func overheadRow(c *Compiled, parallel int, sc *stats.Collector) (OverheadRow, error) {
	row := OverheadRow{Name: c.Profile.Name}
	native, err := usher.RunNative(c.Prog, usher.RunOptions{})
	if err != nil {
		return row, fmt.Errorf("%s native: %w", c.Profile.Name, err)
	}
	row.NativeSteps = native.Steps
	session := usher.NewSessionObserved(c.Prog, sc)
	row.Runs = make([]ConfigRun, len(usher.Configs))
	err = ForEach(parallel, len(usher.Configs), func(i int) error {
		cfg := usher.Configs[i]
		an, err := session.Analyze(cfg)
		if err != nil {
			return fmt.Errorf("%s %v: %w", c.Profile.Name, cfg, err)
		}
		start := time.Now()
		res, err := an.Run(usher.RunOptions{})
		wall := time.Since(start).Seconds()
		if err != nil {
			return fmt.Errorf("%s %v: %w", c.Profile.Name, cfg, err)
		}
		if len(res.ShadowViolations) > 0 {
			return fmt.Errorf("%s %v: shadow violations: %v", c.Profile.Name, cfg, res.ShadowViolations[0])
		}
		if res.Exit.Int != native.Exit.Int {
			return fmt.Errorf("%s %v: exit diverged (%d vs %d)", c.Profile.Name, cfg, res.Exit.Int, native.Exit.Int)
		}
		row.Runs[i] = ConfigRun{
			Config:      cfg,
			ConfigName:  cfg.String(),
			Props:       res.ShadowProps,
			Checks:      res.ShadowChecks,
			OverheadPct: Overhead(res),
			Warnings:    len(res.ShadowWarnings),
			WallSec:     wall,
		}
		return nil
	})
	return row, err
}

// StaticRow is one benchmark's Figure 11 measurements: static counts per
// configuration, normalized to MSan.
type StaticRow struct {
	Name string
	// Base is MSan's absolute static counts.
	Base instrument.Stats
	// PropsPct and ChecksPct are per-configuration percentages of the
	// MSan counts, ordered like usher.Configs.
	PropsPct  []float64
	ChecksPct []float64
}

// Fig11 computes the static instrumentation counts under O0+IM with the
// default parallelism.
func Fig11() ([]StaticRow, error) { return Fig11Parallel(DefaultParallelism()) }

// Fig11Parallel computes Figure 11 using up to parallel workers across
// profiles and across configurations within a profile (per-profile
// analysis sessions share the config-invariant artifacts).
func Fig11Parallel(parallel int) ([]StaticRow, error) {
	return Fig11Observed(parallel, nil)
}

// Fig11Observed is Fig11Parallel with per-pass observability into sc.
func Fig11Observed(parallel int, sc *stats.Collector) ([]StaticRow, error) {
	profiles := workload.Profiles
	rows := make([]StaticRow, len(profiles))
	err := ForEach(parallel, len(profiles), func(i int) error {
		c, err := PrepareObserved(profiles[i], passes.O0IM, sc)
		if err != nil {
			return err
		}
		session := usher.NewSessionObserved(c.Prog, sc)
		sts := make([]instrument.Stats, len(usher.Configs))
		err = ForEach(parallel, len(usher.Configs), func(j int) error {
			an, err := session.Analyze(usher.Configs[j])
			if err != nil {
				return fmt.Errorf("%s %v: %w", profiles[i].Name, usher.Configs[j], err)
			}
			sts[j] = an.StaticStats()
			return nil
		})
		if err != nil {
			return err
		}
		row := StaticRow{Name: profiles[i].Name, Base: sts[0]}
		for _, st := range sts {
			row.PropsPct = append(row.PropsPct, pct(st.Props, sts[0].Props))
			row.ChecksPct = append(row.ChecksPct, pct(st.Checks, sts[0].Checks))
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

func pct(n, base int) float64 {
	if base == 0 {
		return 0
	}
	return 100 * float64(n) / float64(base)
}

// Averages computes the arithmetic mean of a column selector over rows.
func Averages[T any](rows []T, sel func(T) float64) float64 {
	if len(rows) == 0 {
		return 0
	}
	sum := 0.0
	for _, r := range rows {
		sum += sel(r)
	}
	return sum / float64(len(rows))
}
