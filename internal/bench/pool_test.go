package bench

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestForEachStopsDispatchOnError pins the early-cancel contract of the
// parallel path: once a worker records an error, no new indices are
// handed out (the serial path likewise stops at the first failure). The
// pre-fix driver dispatched all n indices regardless.
func TestForEachStopsDispatchOnError(t *testing.T) {
	const n = 1000
	var calls atomic.Int64
	boom := errors.New("boom")
	err := ForEach(4, n, func(i int) error {
		calls.Add(1)
		if i == 0 {
			return boom
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("forEach error = %v, want %v", err, boom)
	}
	if got := calls.Load(); got > n/2 {
		t.Errorf("forEach invoked f %d times after an immediate failure; want far fewer than %d", got, n)
	}
}

// TestForEachReturnsLowestIndexError checks that when several workers
// fail, the error returned is the one the serial loop would have hit.
func TestForEachReturnsLowestIndexError(t *testing.T) {
	for _, parallel := range []int{1, 4} {
		err := ForEach(parallel, 64, func(i int) error {
			if i >= 2 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 2" {
			t.Errorf("parallel=%d: forEach error = %v, want fail 2", parallel, err)
		}
	}
}

// TestForEachCompletesWithoutError checks the happy path visits every
// index exactly once.
func TestForEachCompletesWithoutError(t *testing.T) {
	for _, parallel := range []int{1, 3, 16} {
		const n = 100
		seen := make([]atomic.Int32, n)
		if err := ForEach(parallel, n, func(i int) error {
			seen[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("parallel=%d: forEach error = %v", parallel, err)
		}
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("parallel=%d: index %d visited %d times", parallel, i, got)
			}
		}
	}
}
