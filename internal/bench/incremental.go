package bench

import (
	"fmt"
	"io"
	"time"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/module"
	"github.com/valueflow/usher/internal/workload"
)

// IncrementalRow is one project's cold/warm/edit measurement: the
// multi-file frontend cost when everything compiles, when everything is
// warm, and after the canonical 1-line lib edit — against the flattened
// single-file frontend, which pays the whole program on every change.
type IncrementalRow struct {
	Project string `json:"project"`
	Modules int    `json:"modules"`
	Batches int    `json:"batches"`

	// Build times cover the module frontend + link (or, for Flat, the
	// single-file parse → verify pipeline); Analyze times cover
	// ApplyLevel plus the shared pointer/VFG/Γ phases under the full
	// Usher config. Milliseconds, best of Iterations runs.
	ColdBuildMS   float64 `json:"cold_build_ms"`
	ColdAnalyzeMS float64 `json:"cold_analyze_ms"`
	WarmBuildMS   float64 `json:"warm_build_ms"`
	EditBuildMS   float64 `json:"edit_build_ms"`
	EditAnalyzeMS float64 `json:"edit_analyze_ms"`
	FlatBuildMS   float64 `json:"flat_build_ms"`

	// EditCompiled/EditReused split the post-edit build: the edited lib
	// and its dependents compile, everything else resolves warm.
	EditCompiled int `json:"edit_compiled"`
	EditReused   int `json:"edit_reused"`

	// BuildSpeedupVsCold is ColdBuild/EditBuild: the frontend win of
	// recompiling 3 modules instead of all of them.
	BuildSpeedupVsCold float64 `json:"build_speedup_vs_cold"`
}

// IncrementalResult is the -incremental section of the report
// (committed as BENCH_incremental.json).
type IncrementalResult struct {
	Parallel   int              `json:"parallel"`
	Iterations int              `json:"iterations"`
	Rows       []IncrementalRow `json:"rows"`
}

// incrementalProjects are the measured shapes: the committed 50-module
// default and a wider 135-module variant.
var incrementalProjects = []workload.ModuleProject{
	workload.DefaultModuleProject,
	{Name: "modproj-wide", Libs: 120, LibsPerAgg: 10, BugEvery: 13},
}

// Incremental measures cold vs. warm vs. post-edit multi-file builds
// over the synthetic module projects. Each timing is the best of iters
// runs; every run's correctness is cross-checked against the flattened
// single-file program's analysis (static props/checks under the full
// Usher config must match).
func Incremental(parallel, iters int) (*IncrementalResult, error) {
	if iters <= 0 {
		iters = 3
	}
	res := &IncrementalResult{Parallel: parallel, Iterations: iters}
	for _, p := range incrementalProjects {
		row, err := incrementalProject(p, parallel, iters)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func toFiles(mf []workload.ModuleFile) []module.File {
	out := make([]module.File, len(mf))
	for i, f := range mf {
		out[i] = module.File{Name: f.Name, Source: f.Source}
	}
	return out
}

// best runs f iters times and returns the fastest wall clock in ms.
func best(iters int, f func() error) (float64, error) {
	bestMS := 0.0
	for i := 0; i < iters; i++ {
		start := time.Now()
		if err := f(); err != nil {
			return 0, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if i == 0 || ms < bestMS {
			bestMS = ms
		}
	}
	return bestMS, nil
}

func analyzeStatic(res *module.Result) (props, checks int, err error) {
	sess := usher.NewSession(res.Prog)
	an, err := sess.Analyze(usher.ConfigUsherFull)
	if err != nil {
		return 0, 0, err
	}
	st := an.StaticStats()
	return st.Props, st.Checks, nil
}

func incrementalProject(p workload.ModuleProject, parallel, iters int) (IncrementalRow, error) {
	files := toFiles(p.GenerateModules())
	editedMF, ok := workload.Edit(p.GenerateModules(), "lib_07", 2)
	if !ok {
		return IncrementalRow{}, fmt.Errorf("%s: edit site lib_07 not found", p.Name)
	}
	edited := toFiles(editedMF)

	g, err := module.NewGraph(files)
	if err != nil {
		return IncrementalRow{}, err
	}
	row := IncrementalRow{
		Project: fmt.Sprintf("%s-%d", p.Name, p.NumModules()),
		Modules: len(g.Modules),
		Batches: len(g.Batches()),
	}

	// Cold: fresh cache each iteration.
	var coldRes *module.Result
	row.ColdBuildMS, err = best(iters, func() error {
		coldRes, err = module.Build(files, module.Options{Cache: module.NewCache(256 << 20), Parallel: parallel})
		return err
	})
	if err != nil {
		return row, err
	}
	row.ColdAnalyzeMS, err = best(iters, func() error {
		_, _, aerr := analyzeStatic(coldRes)
		return aerr
	})
	if err != nil {
		return row, err
	}

	// Warm: identical rebuild against a primed cache; every module must
	// resolve from a warm unit.
	warmCache := module.NewCache(256 << 20)
	if _, err := module.Build(files, module.Options{Cache: warmCache, Parallel: parallel}); err != nil {
		return row, err
	}
	row.WarmBuildMS, err = best(iters, func() error {
		res, berr := module.Build(files, module.Options{Cache: warmCache, Parallel: parallel})
		if berr == nil && res.Reused != len(files) {
			berr = fmt.Errorf("warm build reused %d of %d modules", res.Reused, len(files))
		}
		return berr
	})
	if err != nil {
		return row, err
	}

	// Post-edit: each iteration primes a fresh cache with the base set
	// (untimed), then times the edited build, so every measured build
	// really recompiles the edited lib and its dependents.
	var editRes *module.Result
	for i := 0; i < iters; i++ {
		c := module.NewCache(256 << 20)
		if _, err := module.Build(files, module.Options{Cache: c, Parallel: parallel}); err != nil {
			return row, err
		}
		start := time.Now()
		editRes, err = module.Build(edited, module.Options{Cache: c, Parallel: parallel})
		if err != nil {
			return row, err
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		if i == 0 || ms < row.EditBuildMS {
			row.EditBuildMS = ms
		}
		row.EditCompiled, row.EditReused = editRes.Compiled, editRes.Reused
	}
	row.EditAnalyzeMS, err = best(iters, func() error {
		_, _, aerr := analyzeStatic(editRes)
		return aerr
	})
	if err != nil {
		return row, err
	}

	// Flattened single-file baseline over the same edited sources.
	flat, err := module.Flatten(edited)
	if err != nil {
		return row, err
	}
	var flatProg *ir.Program
	row.FlatBuildMS, err = best(iters, func() error {
		flatProg, err = usher.Compile("flat.c", flat)
		return err
	})
	if err != nil {
		return row, err
	}

	// Correctness cross-check: the incremental build answers like the
	// flattened program.
	mp, mc, err := analyzeStatic(editRes)
	if err != nil {
		return row, err
	}
	fsess := usher.NewSession(flatProg)
	fan, err := fsess.Analyze(usher.ConfigUsherFull)
	if err != nil {
		return row, err
	}
	fst := fan.StaticStats()
	if mp != fst.Props || mc != fst.Checks {
		return row, fmt.Errorf("%s: incremental answers diverge from flattened (props %d/%d, checks %d/%d)",
			row.Project, mp, fst.Props, mc, fst.Checks)
	}

	if row.EditBuildMS > 0 {
		row.BuildSpeedupVsCold = row.ColdBuildMS / row.EditBuildMS
	}
	return row, nil
}

// WriteIncremental renders the -incremental section as text.
func WriteIncremental(w io.Writer, res *IncrementalResult) {
	fmt.Fprintf(w, "%-16s %8s %8s %10s %10s %10s %10s %12s %10s\n",
		"project", "modules", "batches", "cold(ms)", "warm(ms)", "edit(ms)", "flat(ms)", "edit-reuse", "speedup")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-16s %8d %8d %10.2f %10.2f %10.2f %10.2f %6d/%-5d %9.1fx\n",
			r.Project, r.Modules, r.Batches, r.ColdBuildMS, r.WarmBuildMS, r.EditBuildMS, r.FlatBuildMS,
			r.EditReused, r.Modules, r.BuildSpeedupVsCold)
	}
}
