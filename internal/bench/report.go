package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/passes"
)

// WriteTable1 renders Table 1 as text.
func WriteTable1(w io.Writer, rows []Table1Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	header := "Benchmark\tKLOC\tTime(s)\tMem(MB)\tVarTL\tStack\tHeap\tGlobal\t%F\tS\tStores\t%SU\t%WU\tVFG\t%B\tS(OptI)\tR(OptII)"
	fmt.Fprintf(tw, "%s\n", header)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.3f\t%.0f\t%d\t%d\t%d\t%d\t%.0f\t%.1f\t%d\t%.0f\t%.0f\t%d\t%.0f\t%d\t%d\n",
			r.Name, r.KLOC, r.TimeSec, r.MemMB, r.VarTL, r.Stack, r.Heap, r.Global,
			r.PctF, r.SemiPerSite, r.Stores, r.PctSU, r.PctWU, r.VFGNodes, r.PctB, r.OptIS, r.OptIIR)
	}
	fmt.Fprintf(tw, "average\t%.1f\t%.3f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.1f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
		Averages(rows, func(r Table1Row) float64 { return r.KLOC }),
		Averages(rows, func(r Table1Row) float64 { return r.TimeSec }),
		Averages(rows, func(r Table1Row) float64 { return r.MemMB }),
		Averages(rows, func(r Table1Row) float64 { return float64(r.VarTL) }),
		Averages(rows, func(r Table1Row) float64 { return float64(r.Stack) }),
		Averages(rows, func(r Table1Row) float64 { return float64(r.Heap) }),
		Averages(rows, func(r Table1Row) float64 { return float64(r.Global) }),
		Averages(rows, func(r Table1Row) float64 { return r.PctF }),
		Averages(rows, func(r Table1Row) float64 { return r.SemiPerSite }),
		Averages(rows, func(r Table1Row) float64 { return float64(r.Stores) }),
		Averages(rows, func(r Table1Row) float64 { return r.PctSU }),
		Averages(rows, func(r Table1Row) float64 { return r.PctWU }),
		Averages(rows, func(r Table1Row) float64 { return float64(r.VFGNodes) }),
		Averages(rows, func(r Table1Row) float64 { return r.PctB }),
		Averages(rows, func(r Table1Row) float64 { return float64(r.OptIS) }),
		Averages(rows, func(r Table1Row) float64 { return float64(r.OptIIR) }),
	)
	tw.Flush()
}

// WriteFig10 renders the slowdown figure as text.
func WriteFig10(w io.Writer, level passes.Level, rows []OverheadRow) {
	fmt.Fprintf(w, "Execution-time overhead vs native (%%), level %s\n", level)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark\tnative-ops")
	for _, cfg := range usher.Configs {
		fmt.Fprintf(tw, "\t%s", cfg)
	}
	fmt.Fprintln(tw, "\twarnings")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d", r.Name, r.NativeSteps)
		warn := 0
		for _, run := range r.Runs {
			fmt.Fprintf(tw, "\t%.0f", run.OverheadPct)
			if run.Warnings > warn {
				warn = run.Warnings
			}
		}
		fmt.Fprintf(tw, "\t%d\n", warn)
	}
	fmt.Fprint(tw, "average\t")
	for i := range usher.Configs {
		i := i
		avg := Averages(rows, func(r OverheadRow) float64 { return r.Runs[i].OverheadPct })
		fmt.Fprintf(tw, "\t%.0f", avg)
	}
	fmt.Fprintln(tw, "\t")
	tw.Flush()
}

// WriteFig11 renders the static instrumentation counts as text.
func WriteFig11(w io.Writer, rows []StaticRow) {
	fmt.Fprintln(w, "Static shadow propagations and checks (% of MSan)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "Benchmark")
	for _, cfg := range usher.Configs[1:] {
		fmt.Fprintf(tw, "\tP:%s", cfg)
	}
	for _, cfg := range usher.Configs[1:] {
		fmt.Fprintf(tw, "\tC:%s", cfg)
	}
	fmt.Fprintln(tw)
	for _, r := range rows {
		fmt.Fprintf(tw, "%s", r.Name)
		for i := 1; i < len(r.PropsPct); i++ {
			fmt.Fprintf(tw, "\t%.0f", r.PropsPct[i])
		}
		for i := 1; i < len(r.ChecksPct); i++ {
			fmt.Fprintf(tw, "\t%.0f", r.ChecksPct[i])
		}
		fmt.Fprintln(tw)
	}
	fmt.Fprint(tw, "average")
	for i := 1; i < len(usher.Configs); i++ {
		i := i
		fmt.Fprintf(tw, "\t%.0f", Averages(rows, func(r StaticRow) float64 { return r.PropsPct[i] }))
	}
	for i := 1; i < len(usher.Configs); i++ {
		i := i
		fmt.Fprintf(tw, "\t%.0f", Averages(rows, func(r StaticRow) float64 { return r.ChecksPct[i] }))
	}
	fmt.Fprintln(tw)
	tw.Flush()
}
