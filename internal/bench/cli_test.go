package bench

import (
	"flag"
	"io"
	"strings"
	"testing"
)

// TestCommonFlagsValidate pins the shared validation rule all driver
// binaries apply after flag parsing: the pools treat out-of-range values
// leniently (ForEach serializes on parallel <= 1), so the CLI must
// reject them loudly instead of silently degrading a run.
func TestCommonFlagsValidate(t *testing.T) {
	cases := []struct {
		args    []string
		wantErr string
	}{
		{nil, ""},
		{[]string{"-parallel", "1"}, ""},
		{[]string{"-parallel", "8", "-solver-workers", "4"}, ""},
		{[]string{"-solver-workers", "0"}, ""},
		{[]string{"-parallel", "0"}, "-parallel"},
		{[]string{"-parallel", "-3"}, "-parallel"},
		{[]string{"-solver-workers", "-1"}, "-solver-workers"},
	}
	for _, tc := range cases {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		fs.SetOutput(io.Discard)
		cf := RegisterCommonFlags(fs)
		if err := fs.Parse(tc.args); err != nil {
			t.Fatalf("%v: parse: %v", tc.args, err)
		}
		err := cf.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%v: unexpected error %v", tc.args, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%v: accepted, want an error naming %s", tc.args, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%v: error %q does not name the flag %s", tc.args, err, tc.wantErr)
		}
	}
}

// TestSolverFlagMatchesCommon keeps the standalone -solver-workers
// registration (usherc, vfg-dump, usherd) in lockstep with the
// CommonFlags one: same default, same validation outcome.
func TestSolverFlagMatchesCommon(t *testing.T) {
	for _, workers := range []int{-2, -1, 0, 1, 8} {
		sf := &SolverFlag{Workers: workers}
		cf := &CommonFlags{Parallel: 1, SolverWorkers: workers}
		sfErr, cfErr := sf.Validate(), cf.Validate()
		if (sfErr == nil) != (cfErr == nil) {
			t.Errorf("workers=%d: SolverFlag err %v, CommonFlags err %v", workers, sfErr, cfErr)
		}
	}
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sf := RegisterSolverFlag(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if sf.Workers != 0 {
		t.Errorf("default solver workers = %d, want 0 (sequential)", sf.Workers)
	}
}
