package bench_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/workload"
)

func prepareOne(t *testing.T, name string) *bench.Compiled {
	t.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		t.Fatalf("no workload %s", name)
	}
	c, err := bench.Prepare(p, passes.O0IM)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestOverheadModel(t *testing.T) {
	c := prepareOne(t, "gzip")
	an := usher.MustAnalyze(c.Prog, usher.ConfigMSan)
	res, err := an.Run(usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	oh := bench.Overhead(res)
	if oh < 100 || oh > 600 {
		t.Errorf("MSan overhead = %.0f%%, want a few-hundred-percent slowdown", oh)
	}
}

func TestFig10ShapeOnSubset(t *testing.T) {
	// The full suite is exercised by the benchmarks; here, verify the
	// ordering invariant cheaply on two benchmarks.
	for _, name := range []string{"mcf", "parser"} {
		c := prepareOne(t, name)
		var prev float64 = 1e18
		for _, cfg := range usher.Configs {
			an := usher.MustAnalyze(c.Prog, cfg)
			res, err := an.Run(usher.RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			oh := bench.Overhead(res)
			if oh > prev+1e-9 {
				t.Errorf("%s: %v overhead %.1f%% exceeds previous config's %.1f%%", name, cfg, oh, prev)
			}
			prev = oh
			if name == "parser" && cfg == usher.ConfigUsherFull && len(res.ShadowWarnings) == 0 {
				t.Error("parser's planted bug missed by Usher")
			}
		}
	}
}

func TestTable1RowSanity(t *testing.T) {
	c := prepareOne(t, "mcf")
	rows, err := bench.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("rows = %d, want 15", len(rows))
	}
	for _, r := range rows {
		if r.VarTL == 0 || r.VFGNodes == 0 {
			t.Errorf("%s: empty stats %+v", r.Name, r)
		}
		if r.PctF < 0 || r.PctF > 100 || r.PctB < 0 || r.PctB > 100 {
			t.Errorf("%s: percentage out of range: %+v", r.Name, r)
		}
		if r.PctSU+r.PctWU > 100.001 {
			t.Errorf("%s: SU+WU = %.1f > 100", r.Name, r.PctSU+r.PctWU)
		}
	}
	_ = c
}

func TestRenderers(t *testing.T) {
	rows := []bench.Table1Row{{Name: "demo", KLOC: 1.2, VarTL: 10, VFGNodes: 20, PctF: 30}}
	var sb strings.Builder
	bench.WriteTable1(&sb, rows)
	if !strings.Contains(sb.String(), "demo") {
		t.Error("table1 renderer dropped the row")
	}

	orows := []bench.OverheadRow{{
		Name:        "demo",
		NativeSteps: 100,
		Runs: []bench.ConfigRun{
			{Config: usher.ConfigMSan, OverheadPct: 300},
			{Config: usher.ConfigUsherTL, OverheadPct: 270},
			{Config: usher.ConfigUsherTLAT, OverheadPct: 200},
			{Config: usher.ConfigUsherOptI, OverheadPct: 180},
			{Config: usher.ConfigUsherFull, OverheadPct: 120},
		},
	}}
	sb.Reset()
	bench.WriteFig10(&sb, passes.O0IM, orows)
	if !strings.Contains(sb.String(), "300") {
		t.Error("fig10 renderer dropped the data")
	}

	srows := []bench.StaticRow{{
		Name:      "demo",
		PropsPct:  []float64{100, 57, 32, 22, 16},
		ChecksPct: []float64{100, 72, 44, 44, 23},
	}}
	sb.Reset()
	bench.WriteFig11(&sb, srows)
	if !strings.Contains(sb.String(), "57") {
		t.Error("fig11 renderer dropped the data")
	}
}

func TestAverages(t *testing.T) {
	rows := []float64{1, 2, 3}
	avg := bench.Averages(rows, func(v float64) float64 { return v })
	if avg != 2 {
		t.Errorf("avg = %f, want 2", avg)
	}
	if bench.Averages(nil, func(v float64) float64 { return v }) != 0 {
		t.Error("empty average should be 0")
	}
}

func TestAblationRow(t *testing.T) {
	row, err := bench.AblationFor("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if row.BottomCI < row.BottomCS {
		t.Errorf("context-insensitive ⊥ %d below sensitive %d", row.BottomCI, row.BottomCS)
	}
	if row.BottomNoSemi < row.BottomCS {
		t.Errorf("no-semistrong ⊥ %d below baseline %d", row.BottomNoSemi, row.BottomCS)
	}
	if row.ChecksNoCloning < row.ChecksFull {
		t.Errorf("no-cloning checks %d below cloned %d", row.ChecksNoCloning, row.ChecksFull)
	}
	if row.MergedAway <= 0 || row.MergedAway >= row.VFGNodes {
		t.Errorf("merged-away = %d of %d nodes", row.MergedAway, row.VFGNodes)
	}
	var sb strings.Builder
	bench.WriteAblations(&sb, []bench.AblationRow{row})
	if !strings.Contains(sb.String(), "mcf") {
		t.Error("ablation renderer dropped the row")
	}
}

func TestFig11OnSuiteSubsetMonotone(t *testing.T) {
	rows, err := bench.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		for i := 1; i < len(r.PropsPct); i++ {
			if r.PropsPct[i] > r.PropsPct[i-1]+1e-9 {
				t.Errorf("%s: props pct not monotone: %v", r.Name, r.PropsPct)
			}
			if r.ChecksPct[i] > r.ChecksPct[i-1]+1e-9 {
				t.Errorf("%s: checks pct not monotone: %v", r.Name, r.ChecksPct)
			}
		}
	}
}
