package bench

import (
	"fmt"
	"io"
	"text/tabwriter"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/ssa"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/workload"
)

// AblationRow quantifies the contribution of each design choice on one
// benchmark: 1-callsite context sensitivity in definedness resolution,
// semi-strong updates at stores, heap cloning via allocation-wrapper
// inlining, and access-equivalent node merging.
type AblationRow struct {
	Name string
	// BottomCS / BottomCI: ⊥ node counts with context-sensitive vs
	// context-insensitive resolution.
	BottomCS, BottomCI int
	// BottomNoSemi: ⊥ nodes with semi-strong updates disabled.
	BottomNoSemi int
	// ChecksFull / ChecksNoCloning: Usher's static checks with and
	// without allocation-wrapper inlining (heap cloning).
	ChecksFull, ChecksNoCloning int
	// ChecksOptIII: static checks with the Opt III extension (dominated
	// same-value check elimination) enabled on top of Usher.
	ChecksOptIII int
	// VFGNodes / MergedAway: graph size and nodes removed by
	// access-equivalence merging.
	VFGNodes, MergedAway int
}

// Ablations measures every design-choice ablation over the suite with
// the default parallelism.
func Ablations() ([]AblationRow, error) { return AblationsParallel(DefaultParallelism()) }

// AblationsParallel runs the ablation study using up to parallel workers
// across profiles. Each row builds its own graphs, so rows are fully
// independent.
func AblationsParallel(parallel int) ([]AblationRow, error) {
	profiles := workload.Profiles
	rows := make([]AblationRow, len(profiles))
	err := ForEach(parallel, len(profiles), func(i int) error {
		row, err := ablationRow(profiles[i])
		if err != nil {
			return err
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// AblationFor measures the ablations for a single named benchmark.
func AblationFor(name string) (AblationRow, error) {
	p, ok := workload.ByName(name)
	if !ok {
		return AblationRow{}, fmt.Errorf("unknown workload %q", name)
	}
	return ablationRow(p)
}

func ablationRow(p workload.Profile) (AblationRow, error) {
	row := AblationRow{Name: p.Name}

	// Baseline: full O0+IM pipeline.
	c, err := Prepare(p, passes.O0IM)
	if err != nil {
		return row, err
	}
	pa := pointer.Analyze(c.Prog)
	mem := memssa.Build(c.Prog, pa)
	g := vfg.Build(c.Prog, pa, mem, vfg.Options{})
	row.VFGNodes = len(g.Nodes)

	cs := vfg.Resolve(g)
	row.BottomCS = cs.BottomCount()
	ci := vfg.ResolveWith(g, vfg.ResolveOptions{ContextInsensitive: true})
	row.BottomCI = ci.BottomCount()

	gNoSemi := vfg.Build(c.Prog, pa, mem, vfg.Options{NoSemiStrong: true})
	row.BottomNoSemi = vfg.Resolve(gNoSemi).BottomCount()

	eq := vfg.ComputeAccessEquivalence(g)
	row.MergedAway = eq.Merged(g)

	full := instrument.Guided("usher", g, cs, instrument.GuidedOptions{OptI: true, OptII: true})
	row.ChecksFull = full.Plan.StaticStats().Checks
	ext := instrument.Guided("usher+3", g, cs, instrument.GuidedOptions{OptI: true, OptII: true, OptIII: true})
	row.ChecksOptIII = ext.Plan.StaticStats().Checks

	// No heap cloning: recompile without allocation-wrapper inlining.
	prog2, err := usher.Compile(p.Name+".c", c.Source)
	if err != nil {
		return row, err
	}
	passes.InlineFunctionPointerArgs(prog2)
	ssa.Promote(prog2)
	for _, fn := range prog2.Funcs {
		if fn.HasBody {
			ir.ComputeCFG(fn)
		}
	}
	an2, err := usher.Analyze(prog2, usher.ConfigUsherFull)
	if err != nil {
		return row, err
	}
	row.ChecksNoCloning = an2.StaticStats().Checks
	return row, nil
}

// WriteAblations renders the ablation study.
func WriteAblations(w io.Writer, rows []AblationRow) {
	fmt.Fprintln(w, "Design-choice ablations (⊥ = possibly-undefined VFG nodes; lower is more precise)")
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Benchmark\tVFG\t⊥ ctx-sens\t⊥ ctx-insens\t⊥ no-semistrong\tchecks\tchecks no-cloning\tchecks opt3\tmerged-away")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%d\n",
			r.Name, r.VFGNodes, r.BottomCS, r.BottomCI, r.BottomNoSemi,
			r.ChecksFull, r.ChecksNoCloning, r.ChecksOptIII, r.MergedAway)
	}
	fmt.Fprintf(tw, "average\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\t%.0f\n",
		Averages(rows, func(r AblationRow) float64 { return float64(r.VFGNodes) }),
		Averages(rows, func(r AblationRow) float64 { return float64(r.BottomCS) }),
		Averages(rows, func(r AblationRow) float64 { return float64(r.BottomCI) }),
		Averages(rows, func(r AblationRow) float64 { return float64(r.BottomNoSemi) }),
		Averages(rows, func(r AblationRow) float64 { return float64(r.ChecksFull) }),
		Averages(rows, func(r AblationRow) float64 { return float64(r.ChecksNoCloning) }),
		Averages(rows, func(r AblationRow) float64 { return float64(r.ChecksOptIII) }),
		Averages(rows, func(r AblationRow) float64 { return float64(r.MergedAway) }),
	)
	tw.Flush()
}
