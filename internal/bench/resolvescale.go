package bench

import (
	"crypto/sha256"
	"fmt"
	"io"
	"time"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/module"
	"github.com/valueflow/usher/internal/vfgsum"
	"github.com/valueflow/usher/internal/workload"
)

// This file is the -resolve-scale driver: the measurement harness
// behind BENCH_resolve.json, pitting the dense Γ resolver
// (vfg.Resolve) against the Opt IV summary-based resolver
// (internal/vfgsum) over the resolve-stress XL profiles and the
// multi-file module projects.
//
// Every row measures the full resolution workload a session pays — Γ
// over both graph variants plus the Opt II cut re-resolution — through
// Session.PrewarmResolve. Graph construction (pointer solve, memory
// SSA, VFG build) is prewarmed untimed so the timings isolate
// resolution. The dense leg runs sequentially; each summary leg runs
// with the condensation's worker count and the prewarm's config
// parallelism set to the swept value. Each leg builds a fresh program:
// both generators are deterministic, so every leg resolves the
// identical graph.
//
// Wall-clock numbers are measurements; the Identical boolean is a
// contract. Every leg's Γ bit vectors (both variants), full-Usher plan
// fingerprint and Opt II/III statistics are hashed, and any divergence
// from the dense leg is a hard error — the speedup table is only worth
// committing if the results are bit-identical.

// ResolveScaleWorkerCounts is the default summary-leg sweep.
var ResolveScaleWorkerCounts = []int{1, 2, 4}

// ResolveTiming is one resolution leg's wall time.
type ResolveTiming struct {
	// Mode is "dense" (sequential vfg.Resolve baseline) or "summary"
	// (Opt IV condensation + sparse resolution).
	Mode string `json:"mode"`
	// Workers is the summary leg's worker count (condensation and
	// per-config prewarm parallelism); 0 for the dense baseline.
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// Speedup is dense-seconds / this-seconds (1.0 for the dense row).
	Speedup float64 `json:"speedup_vs_dense"`
}

// ResolveRow is the dense-vs-summary result for one profile.
type ResolveRow struct {
	Profile string `json:"profile"`
	// Kind is "xl" (IR-level resolve-stress generator) or "modules"
	// (multi-file module project).
	Kind string `json:"kind"`
	// Nodes is the full VFG's node count; Supernodes/Ports describe the
	// condensed graph the summary legs resolved over.
	Nodes      int `json:"nodes"`
	Supernodes int `json:"supernodes"`
	Ports      int `json:"ports"`
	// ChecksElided is the full-Usher configuration's Opt II result,
	// identical on every leg.
	ChecksElided int             `json:"checks_elided"`
	Timings      []ResolveTiming `json:"timings"`
	// Identical records that every summary leg's Γ bits, plan
	// fingerprint and optimization statistics matched the dense leg.
	// Must always be true.
	Identical bool `json:"identical"`
}

// ResolveScaleResult is the -resolve-scale section of the JSON report.
type ResolveScaleResult struct {
	WorkerCounts []int        `json:"worker_counts"`
	Rows         []ResolveRow `json:"rows"`
}

// ResolveScale runs the resolution-scaling harness over the
// resolve-stress XL profiles and the module projects.
func ResolveScale(workerCounts []int) (*ResolveScaleResult, error) {
	if len(workerCounts) == 0 {
		workerCounts = ResolveScaleWorkerCounts
	}
	res := &ResolveScaleResult{WorkerCounts: workerCounts}
	for _, p := range workload.ResolveProfiles {
		p := p
		row, err := resolveScaleRow(p.Name, "xl", workerCounts, func() (*ir.Program, error) {
			return workload.BuildXL(p), nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	for _, mp := range incrementalProjects {
		files := toFiles(mp.GenerateModules())
		name := fmt.Sprintf("%s-%d", mp.Name, mp.NumModules())
		row, err := resolveScaleRow(name, "modules", workerCounts, func() (*ir.Program, error) {
			r, err := module.Build(files, module.Options{Cache: module.NewCache(256 << 20), Parallel: 1})
			if err != nil {
				return nil, err
			}
			return r.Prog, nil
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// resolveLeg is one timed resolution run plus its untimed parity data.
type resolveLeg struct {
	seconds float64
	sig     [sha256.Size]byte
	nodes   int
	elided  int
}

// resolveScaleRow times one profile's dense baseline and every summary
// worker count, hard-failing on any result divergence.
func resolveScaleRow(name, kind string, workerCounts []int, build func() (*ir.Program, error)) (ResolveRow, error) {
	row := ResolveRow{Profile: name, Kind: kind, Identical: true}

	leg := func(summary bool, workers int) (resolveLeg, *usher.Session, error) {
		prog, err := build()
		if err != nil {
			return resolveLeg{}, nil, err
		}
		sess := usher.NewSession(prog)
		if err := sess.PrewarmGraphs(); err != nil {
			return resolveLeg{}, nil, err
		}
		defer func(e bool, w int) { vfgsum.Enabled, vfgsum.Workers = e, w }(vfgsum.Enabled, vfgsum.Workers)
		vfgsum.Enabled, vfgsum.Workers = summary, workers
		par := workers
		if !summary {
			par = 1
		}
		start := time.Now()
		if err := sess.PrewarmResolve(par); err != nil {
			return resolveLeg{}, nil, err
		}
		lr := resolveLeg{seconds: time.Since(start).Seconds()}
		lr.sig, lr.nodes, lr.elided, err = resolveSignature(sess)
		return lr, sess, err
	}

	dense, _, err := leg(false, 0)
	if err != nil {
		return row, err
	}
	row.Nodes = dense.nodes
	row.ChecksElided = dense.elided
	row.Timings = []ResolveTiming{{Mode: "dense", Workers: 0, Seconds: dense.seconds, Speedup: 1}}

	for _, w := range workerCounts {
		sl, sess, err := leg(true, w)
		if err != nil {
			return row, err
		}
		if sl.sig != dense.sig {
			row.Identical = false
		}
		row.Timings = append(row.Timings, ResolveTiming{
			Mode:    "summary",
			Workers: w,
			Seconds: sl.seconds,
			Speedup: dense.seconds / sl.seconds,
		})
		sum, err := sess.Summaries(false)
		if err != nil {
			return row, err
		}
		row.Supernodes = sum.Stats.Supernodes
		row.Ports = sum.Stats.Ports
	}
	if !row.Identical {
		return row, fmt.Errorf("bench: %s: summary resolution diverges from the dense resolver", name)
	}
	return row, nil
}

// resolveSignature hashes everything resolution feeds downstream: both
// graph variants' Γ ⊥ bit vectors, the full-Usher plan fingerprint and
// its Opt II/III statistics. Two legs agree exactly when their
// signatures agree.
func resolveSignature(sess *usher.Session) (sig [sha256.Size]byte, nodes, elided int, err error) {
	h := sha256.New()
	for _, tl := range []bool{false, true} {
		g, gm, gerr := sess.Graph(tl)
		if gerr != nil {
			return sig, 0, 0, gerr
		}
		if !tl {
			nodes = len(g.Nodes)
		}
		fmt.Fprintf(h, "gamma tl=%v nodes=%d bottom=%d words", tl, len(g.Nodes), gm.BottomCount())
		for _, w := range gm.BottomBits().Words() {
			fmt.Fprintf(h, " %x", w)
		}
		fmt.Fprintln(h)
	}
	a, aerr := sess.Analyze(usher.ConfigUsherFull)
	if aerr != nil {
		return sig, 0, 0, aerr
	}
	fmt.Fprintf(h, "plan %s redirected=%d elided=%d mfcs=%d\n",
		a.Plan.Fingerprint(), a.Redirected, a.ChecksElided, a.MFCsSimplified)
	h.Sum(sig[:0])
	return sig, nodes, a.ChecksElided, nil
}

// WriteResolveScale renders the resolution-scaling results as a text
// table.
func WriteResolveScale(w io.Writer, res *ResolveScaleResult) {
	fmt.Fprintln(w, "summary-based Γ resolution (Opt IV; dense sequential resolver is the baseline):")
	fmt.Fprintf(w, "  %-18s %-8s %9s %11s %7s %10s", "profile", "kind", "nodes", "supernodes", "elided", "dense(s)")
	for _, wc := range res.WorkerCounts {
		fmt.Fprintf(w, " %14s", fmt.Sprintf("summary w=%d", wc))
	}
	fmt.Fprintln(w)
	for _, row := range res.Rows {
		fmt.Fprintf(w, "  %-18s %-8s %9d %11d %7d %10.3f",
			row.Profile, row.Kind, row.Nodes, row.Supernodes, row.ChecksElided, row.Timings[0].Seconds)
		for _, t := range row.Timings[1:] {
			fmt.Fprintf(w, " %7.3fs/%.2fx", t.Seconds, t.Speedup)
		}
		fmt.Fprintf(w, "  identical=%v\n", row.Identical)
	}
}
