package bench

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/stats"
	"github.com/valueflow/usher/internal/vfgsum"
)

// CommonFlags is the CLI plumbing shared by usher-bench and
// usher-difftest: the worker bound, the JSON report path, per-pass
// observability, solver parallelism and profiling. Centralizing it here
// keeps the binaries' flag semantics (and the report schema they write)
// from drifting apart.
type CommonFlags struct {
	// Parallel bounds the worker pool (see ForEach).
	Parallel int
	// JSONPath is the -json report destination ("" = no report).
	JSONPath string
	// Stats records whether -stats was requested.
	Stats bool
	// SolverWorkers is the pointer-solver worker count (0 = the classic
	// sequential solver; >= 1 selects the wave solver). Applied
	// process-wide by ApplySolver.
	SolverWorkers int
	// GammaSummaries routes Γ resolution through the Opt IV summary
	// resolver (internal/vfgsum); results are bit-identical to the
	// default dense resolver. Applied process-wide by ApplySolver.
	GammaSummaries bool
	// Profile holds the -cpuprofile/-memprofile destinations.
	Profile *ProfileFlags

	sc *stats.Collector
}

// RegisterCommonFlags registers -parallel, -json, -stats,
// -solver-workers, -cpuprofile and -memprofile on fs with the shared
// defaults and help text.
func RegisterCommonFlags(fs *flag.FlagSet) *CommonFlags {
	cf := &CommonFlags{Profile: RegisterProfileFlags(fs)}
	fs.IntVar(&cf.Parallel, "parallel", DefaultParallelism(),
		"max concurrent workers (results are identical for any value)")
	fs.StringVar(&cf.JSONPath, "json", "", "write a machine-readable report to this path")
	fs.BoolVar(&cf.Stats, "stats", false,
		"collect and print per-pass pipeline stats (wall time, allocs, work counters)")
	fs.IntVar(&cf.SolverWorkers, "solver-workers", 0,
		"pointer-solver worker count (0 = sequential; results are identical for any value)")
	fs.BoolVar(&cf.GammaSummaries, "gamma-summaries", false,
		"resolve Γ through per-function definedness summaries (Opt IV; results are identical)")
	return cf
}

// Validate rejects flag values the pools would silently misinterpret:
// ForEach treats parallel <= 1 as "sequential", so a mistyped
// "-parallel -4" or "-parallel 0" would not fail, it would quietly
// serialize a benchmark run. Call after flag parsing, before any work;
// every binary sharing these flags applies the same rule.
func (cf *CommonFlags) Validate() error {
	if cf.Parallel < 1 {
		return fmt.Errorf("-parallel must be at least 1 worker, got %d", cf.Parallel)
	}
	return validateSolverWorkers(cf.SolverWorkers)
}

// ApplySolver installs the requested solver selections process-wide —
// the pointer-solver worker count and the Γ resolution strategy. Call it
// once, after Validate and before any analysis.
func (cf *CommonFlags) ApplySolver() {
	pointer.Workers = cf.SolverWorkers
	vfgsum.Enabled = cf.GammaSummaries
}

func validateSolverWorkers(n int) error {
	if n < 0 {
		return fmt.Errorf("-solver-workers must be 0 (sequential solver) or a positive worker count, got %d", n)
	}
	return nil
}

// SolverFlag is the -solver-workers/-gamma-summaries registration for
// binaries that do not take the full CommonFlags set (usherc, vfg-dump):
// the same flag names, defaults, help text and validation rules as
// RegisterCommonFlags, without the pool/report plumbing.
type SolverFlag struct {
	Workers        int
	GammaSummaries bool
}

// RegisterSolverFlag registers -solver-workers and -gamma-summaries on fs.
func RegisterSolverFlag(fs *flag.FlagSet) *SolverFlag {
	sf := &SolverFlag{}
	fs.IntVar(&sf.Workers, "solver-workers", 0,
		"pointer-solver worker count (0 = sequential; results are identical for any value)")
	fs.BoolVar(&sf.GammaSummaries, "gamma-summaries", false,
		"resolve Γ through per-function definedness summaries (Opt IV; results are identical)")
	return sf
}

// Validate rejects a negative worker count with the shared diagnostic.
func (sf *SolverFlag) Validate() error { return validateSolverWorkers(sf.Workers) }

// Apply installs the selections process-wide (see CommonFlags.ApplySolver).
func (sf *SolverFlag) Apply() {
	pointer.Workers = sf.Workers
	vfgsum.Enabled = sf.GammaSummaries
}

// ProfileFlags is the -cpuprofile/-memprofile pair every driver binary
// offers, so solver and pipeline hot spots can be attributed with the
// standard pprof toolchain.
type ProfileFlags struct {
	CPUProfile string
	MemProfile string
}

// RegisterProfileFlags registers -cpuprofile and -memprofile on fs.
// Binaries that do not take the full CommonFlags set (usherc, vfg-dump)
// call this directly.
func RegisterProfileFlags(fs *flag.FlagSet) *ProfileFlags {
	pf := &ProfileFlags{}
	fs.StringVar(&pf.CPUProfile, "cpuprofile", "", "write a CPU profile to this path")
	fs.StringVar(&pf.MemProfile, "memprofile", "", "write a heap profile to this path on exit")
	return pf
}

// Start begins CPU profiling when -cpuprofile was given. The returned
// stop function finishes the CPU profile and writes the -memprofile
// heap snapshot; call it exactly once on every exit path that should
// produce profiles (defer in main).
func (pf *ProfileFlags) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if pf.CPUProfile != "" {
		cpuFile, err = os.Create(pf.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("bench: -cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("bench: -cpuprofile: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if pf.MemProfile != "" {
			f, err := os.Create(pf.MemProfile)
			if err != nil {
				return fmt.Errorf("bench: -memprofile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date heap statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("bench: -memprofile: %w", err)
			}
		}
		return nil
	}, nil
}

// Collector returns the collector to thread through the run: a live one
// when -stats was given, nil (record nothing) otherwise. The same
// collector is returned on every call.
func (cf *CommonFlags) Collector() *stats.Collector {
	if !cf.Stats {
		return nil
	}
	if cf.sc == nil {
		cf.sc = stats.New()
	}
	return cf.sc
}

// WriteJSONFile writes v as indented JSON to path with a trailing
// newline, the report format both drivers use.
func WriteJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
