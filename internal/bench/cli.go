package bench

import (
	"encoding/json"
	"flag"
	"os"

	"github.com/valueflow/usher/internal/stats"
)

// CommonFlags is the CLI plumbing shared by usher-bench and
// usher-difftest: the worker bound, the JSON report path, and per-pass
// observability. Centralizing it here keeps the two binaries' flag
// semantics (and the report schema they write) from drifting apart.
type CommonFlags struct {
	// Parallel bounds the worker pool (see ForEach).
	Parallel int
	// JSONPath is the -json report destination ("" = no report).
	JSONPath string
	// Stats records whether -stats was requested.
	Stats bool

	sc *stats.Collector
}

// RegisterCommonFlags registers -parallel, -json and -stats on fs with
// the shared defaults and help text.
func RegisterCommonFlags(fs *flag.FlagSet) *CommonFlags {
	cf := &CommonFlags{}
	fs.IntVar(&cf.Parallel, "parallel", DefaultParallelism(),
		"max concurrent workers (results are identical for any value)")
	fs.StringVar(&cf.JSONPath, "json", "", "write a machine-readable report to this path")
	fs.BoolVar(&cf.Stats, "stats", false,
		"collect and print per-pass pipeline stats (wall time, allocs, work counters)")
	return cf
}

// Collector returns the collector to thread through the run: a live one
// when -stats was given, nil (record nothing) otherwise. The same
// collector is returned on every call.
func (cf *CommonFlags) Collector() *stats.Collector {
	if !cf.Stats {
		return nil
	}
	if cf.sc == nil {
		cf.sc = stats.New()
	}
	return cf.sc
}

// WriteJSONFile writes v as indented JSON to path with a trailing
// newline, the report format both drivers use.
func WriteJSONFile(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	return os.WriteFile(path, data, 0o644)
}
