package bench

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestWriteFailureKeepsCompletedPhases pins the partial-report contract:
// when a phase fails, the JSON written by the failure path still carries
// every phase completed before it, plus the error. The pre-fix driver
// exited without writing anything.
func TestWriteFailureKeepsCompletedPhases(t *testing.T) {
	r := &Report{GeneratedAt: "2026-01-01T00:00:00Z", NumCPU: 4, GOMAXPROCS: 4, Parallel: 4}
	r.AddPhase("table1", time.Now())
	r.Table1 = []Table1Row{{Name: "mcf", KLOC: 1.5}}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteFailure(path, errors.New("fig10 exploded")); err != nil {
		t.Fatalf("WriteFailure: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if got.Error != "fig10 exploded" {
		t.Errorf("Error = %q, want the phase failure", got.Error)
	}
	if len(got.Table1) != 1 || got.Table1[0].Name != "mcf" {
		t.Errorf("Table1 = %+v, want the completed phase preserved", got.Table1)
	}
	if len(got.DriverPhases) != 1 || got.DriverPhases[0].Name != "table1" {
		t.Errorf("DriverPhases = %+v, want the completed phase timing preserved", got.DriverPhases)
	}
}

// TestWriteJSONOmitsErrorOnSuccess keeps successful reports free of an
// "error" key.
func TestWriteJSONOmitsErrorOnSuccess(t *testing.T) {
	r := &Report{GeneratedAt: "2026-01-01T00:00:00Z"}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read report: %v", err)
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatalf("unmarshal report: %v", err)
	}
	if _, present := raw["error"]; present {
		t.Errorf("successful report contains an error key: %s", data)
	}
}
