package vfgopt_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/vfgopt"
)

func build(t *testing.T, src string) (*ir.Program, *vfg.Graph, *vfg.Gamma) {
	t.Helper()
	irp := compile.MustSource("t.c", src)
	pa := pointer.Analyze(irp)
	mem := memssa.Build(irp, pa)
	g := vfg.Build(irp, pa, mem, vfg.Options{})
	return irp, g, vfg.Resolve(g)
}

// findRetReg returns the register returned from fn's first value return.
func findRetReg(t *testing.T, irp *ir.Program, fn string) *ir.Register {
	t.Helper()
	f := irp.FuncByName(fn)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if r, ok := in.(*ir.Ret); ok && r.Val != nil {
				if reg, ok := r.Val.(*ir.Register); ok {
					return reg
				}
			}
		}
	}
	t.Fatalf("no register return in %s", fn)
	return nil
}

func TestMFCChain(t *testing.T) {
	irp, _, _ := build(t, `
int f(int x) {
  int a = x + 1;
  int b = a * 2;
  int c = b - 3;
  return c;
}
int main() { return f(4); }`)
	c := findRetReg(t, irp, "f")
	m := vfgopt.ComputeMFC(c)
	// Closure: c, b, a, x (x is the source: a parameter).
	if len(m.All) != 4 {
		t.Fatalf("closure size = %d, want 4: %v", len(m.All), m.All)
	}
	if len(m.Sources) != 1 || m.Sources[0].Name != "x" {
		t.Fatalf("sources = %v, want [x]", m.Sources)
	}
	if m.Interior != 3 {
		t.Fatalf("interior = %d, want 3", m.Interior)
	}
	if !m.Simplified() {
		t.Fatal("chain should be simplifiable")
	}
}

func TestMFCDiamondDAG(t *testing.T) {
	irp, _, _ := build(t, `
int f(int x, int y) {
  int a = x + y;
  int b = a * 2;
  int c = a - 1;
  int d = b + c;
  return d;
}
int main() { return f(1, 2); }`)
	d := findRetReg(t, irp, "f")
	m := vfgopt.ComputeMFC(d)
	// d, b, c, a, x, y — a visited once despite two paths.
	if len(m.All) != 6 {
		t.Fatalf("closure size = %d, want 6: %v", len(m.All), m.All)
	}
	if len(m.Sources) != 2 {
		t.Fatalf("sources = %v, want {x, y}", m.Sources)
	}
}

func TestMFCStopsAtLoadsAndCalls(t *testing.T) {
	irp, _, _ := build(t, `
int g(int v) { return v; }
int f(int *p) {
  int a = *p;        // load: a source
  int b = g(a);      // call: a source
  int c = a + b;
  return c;
}
int main() { int x = 1; return f(&x); }`)
	c := findRetReg(t, irp, "f")
	m := vfgopt.ComputeMFC(c)
	if len(m.Sources) != 2 {
		t.Fatalf("sources = %v, want load+call results", m.Sources)
	}
	for _, s := range m.Sources {
		switch s.Def.(type) {
		case *ir.Load, *ir.Call:
		default:
			t.Errorf("source %s defined by %T, want load or call", s, s.Def)
		}
	}
}

func TestMFCBottomSources(t *testing.T) {
	irp, g, gm := build(t, `
int main() {
  int *p = malloc(1);
  int a = *p;        // ⊥ source
  int b = 7;         // ⊤ source (constant copy)
  int c = a + b;
  if (c) { return 1; }
  return 0;
}`)
	main := irp.FuncByName("main")
	var c *ir.Register
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if bin, ok := in.(*ir.BinOp); ok && bin.Op == ir.OpAdd {
				c = bin.Dst
			}
		}
	}
	m := vfgopt.ComputeMFC(c)
	bottom := m.BottomSources(g, gm)
	if len(bottom) != 1 {
		t.Fatalf("bottom sources = %v, want exactly the load", bottom)
	}
	if _, isLoad := bottom[0].Def.(*ir.Load); !isLoad {
		t.Fatalf("bottom source defined by %T, want load", bottom[0].Def)
	}
}

func TestRedundantCheckElimFigure9(t *testing.T) {
	// Figure 9's shape: c1 = a1 ∧ b1 checked at l1; e1 = b1 ∧ d1 checked
	// at l2, l1 dominating l2. After Opt II, e1 must resolve to ⊤.
	irp, g, gm := build(t, `
int main() {
  int *src = malloc(1);
  int b = *src;          // the undefined source
  int a = 3;
  int c = a + b;
  print(c);              // l1: detects b if undefined
  int d = 0;
  int e = b + d;
  if (e) { return 1; }   // l2: redundant given l1
  return 0;
}`)
	gm2, redirected := vfgopt.RedundantCheckElim(g, gm)
	if redirected == 0 {
		t.Fatal("Opt II redirected nothing")
	}
	// Find e (the second add) and check its new state.
	main := irp.FuncByName("main")
	var adds []*ir.Register
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if bin, ok := in.(*ir.BinOp); ok && bin.Op == ir.OpAdd {
				adds = append(adds, bin.Dst)
			}
		}
	}
	if len(adds) < 2 {
		t.Fatalf("adds = %v", adds)
	}
	e := adds[len(adds)-1]
	if gm.Of(g.RegNode(e)) != vfg.Bottom {
		t.Fatal("test premise broken: e should be ⊥ before Opt II")
	}
	if gm2.Of(g.RegNode(e)) != vfg.Top {
		t.Error("e should be ⊤ after Opt II (check at l2 eliminated)")
	}
	// c must remain ⊥ (its check is the one that reports).
	c := adds[0]
	if gm2.Of(g.RegNode(c)) != vfg.Bottom {
		t.Error("c must stay ⊥: its check performs the detection")
	}
}

func TestRedundantCheckElimRespectsDominance(t *testing.T) {
	// The second use is NOT dominated by the first (they are in sibling
	// branches), so no cut may happen between them.
	_, g, gm := build(t, `
int main(int sel) {
  int *src = malloc(1);
  int b = *src;
  if (sel) {
    int c = b + 1;
    print(c);
  } else {
    int e = b * 2;
    if (e) { return 1; }
  }
  return 0;
}`)
	gm2, _ := vfgopt.RedundantCheckElim(g, gm)
	// Both uses must remain ⊥: neither dominates the other.
	bottoms := 0
	for _, n := range g.Nodes {
		if n.Kind == vfg.NodeReg && gm.Of(n) == vfg.Bottom {
			if gm2.Of(n) == vfg.Top {
				// A node was upgraded; ensure it is not one of the two
				// checked values by checking overall: in this program no
				// upgrade is legal for checked nodes.
				for _, in := range vfg.CriticalUses(g)[n] {
					t.Errorf("checked node %v upgraded despite no dominance (use at l%d)", n, in.Label())
				}
			}
			bottoms++
		}
	}
	if bottoms == 0 {
		t.Fatal("test premise broken: no ⊥ nodes")
	}
}

func TestMFCNonChainNotSimplified(t *testing.T) {
	irp, _, _ := build(t, `
int f(int *p) { return *p; }
int main() { int x = 2; return f(&x); }`)
	r := findRetReg(t, irp, "f")
	m := vfgopt.ComputeMFC(r)
	if m.Simplified() {
		t.Errorf("a bare load has no interior to simplify: %+v", m)
	}
}
