// Package vfgopt implements the paper's two VFG-based
// instrumentation-reducing optimizations (§3.5):
//
//   - Opt I, value-flow simplification: the shadow of a top-level variable
//     is the conjunction of the shadows of the sources of its Must
//     Flow-from Closure (MFC, Definition 2); interior nodes of the closure
//     need no shadow propagation of their own.
//   - Opt II, redundant check elimination (Algorithm 1): when an undefined
//     value is guaranteed to be detected at a critical statement s, its
//     onward flow into values defined at statements dominated by s can be
//     treated as defined, disabling the downstream checks.
package vfgopt

import (
	"github.com/valueflow/usher/internal/cfg"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/vfg"
)

// MFC computes the Must Flow-from Closure of a register: the set of
// registers whose values definitely flow into it through copies and
// binary operations (Definition 2). The returned closure includes x
// itself; Sources are the members whose definitions are not copies or
// binary operations (loads, calls, parameters, phis, allocs).
type MFC struct {
	// All is every register in the closure.
	All []*ir.Register
	// Sources are the closure's source registers.
	Sources []*ir.Register
	// Interior is len(All) - len(Sources): the propagations Opt I saves.
	Interior int
}

// ComputeMFC walks back from x through copy and binop definitions.
func ComputeMFC(x *ir.Register) *MFC {
	m := &MFC{}
	seen := make(map[*ir.Register]bool)
	var walk func(r *ir.Register)
	walk = func(r *ir.Register) {
		if seen[r] {
			return
		}
		seen[r] = true
		m.All = append(m.All, r)
		switch def := r.Def.(type) {
		case *ir.Copy:
			if src, ok := def.Src.(*ir.Register); ok {
				walk(src)
				return
			}
			// Constant copy: terminates at T; r is interior with no
			// register sources of its own.
			return
		case *ir.BinOp:
			interior := false
			if xr, ok := def.X.(*ir.Register); ok {
				walk(xr)
				interior = true
			}
			if yr, ok := def.Y.(*ir.Register); ok {
				walk(yr)
				interior = true
			}
			_ = interior
			return
		default:
			m.Sources = append(m.Sources, r)
		}
	}
	walk(x)
	// Count interiors: members that are not sources.
	m.Interior = len(m.All) - len(m.Sources)
	return m
}

// BottomSources returns the MFC's sources whose VFG state is ⊥. The
// shadow of x is the conjunction of exactly these shadows (⊤ sources
// contribute T).
func (m *MFC) BottomSources(g *vfg.Graph, gm *vfg.Gamma) []*ir.Register {
	var out []*ir.Register
	for _, s := range m.Sources {
		if gm.Of(g.RegNode(s)) == vfg.Bottom {
			out = append(out, s)
		}
	}
	return out
}

// Simplified reports whether Opt I changes x's shadow computation: the
// closure has interior nodes to skip over.
func (m *MFC) Simplified() bool { return m.Interior > 1 || (m.Interior == 1 && len(m.Sources) > 0) }

// RedundantCheckElim applies Algorithm 1: for every ⊥ top-level variable
// x used at a critical statement s, flows out of x's extended closure
// into values defined at statements dominated by s are redirected to T,
// and Γ is re-resolved on the modified graph. It returns the new Γ and
// the number of redirected nodes (the R column of Table 1).
//
// The instrumentation must still be generated over the *original* VFG
// using the returned Γ, so that all shadow values remain initialized
// (line 9 of Algorithm 1).
func RedundantCheckElim(g *vfg.Graph, gm *vfg.Gamma) (*vfg.Gamma, int) {
	return RedundantCheckElimWith(g, gm, func(cut func(from, to *vfg.Node) bool) *vfg.Gamma {
		return vfg.ResolveCut(g, cut)
	})
}

// RedundantCheckElimWith is RedundantCheckElim with an injected
// re-resolver: the pipeline passes the summary-based resolver (Opt IV)
// when it is enabled, the dense vfg.ResolveCut otherwise. Both produce
// bit-identical Γ under the same cut set.
func RedundantCheckElimWith(g *vfg.Graph, gm *vfg.Gamma,
	resolve func(cut func(from, to *vfg.Node) bool) *vfg.Gamma) (*vfg.Gamma, int) {
	type edge struct{ from, to int }
	cuts := make(map[edge]bool)
	redirected := make(map[int]bool)

	// Dominator trees per function, built on demand.
	doms := make(map[*ir.Function]*cfg.DomTree)
	domOf := func(fn *ir.Function) *cfg.DomTree {
		if d, ok := doms[fn]; ok {
			return d
		}
		d := cfg.NewDomTree(fn)
		doms[fn] = d
		return d
	}

	for node, stmts := range vfg.CriticalUses(g) {
		if node.Kind != vfg.NodeReg || gm.Of(node) != vfg.Bottom {
			continue
		}
		m := ComputeMFC(node.Reg)
		// The extended closure x̄: MFC registers plus the concrete
		// address-taken versions read by the closure's loads (line 4).
		closure := make(map[int]bool)
		for _, r := range m.All {
			if rn := g.RegNode(r); rn != nil {
				closure[rn.ID] = true
			}
		}
		for _, r := range m.All {
			if _, isLoad := r.Def.(*ir.Load); !isLoad {
				continue
			}
			ln := g.RegNode(r)
			if ln == nil {
				continue
			}
			for _, e := range ln.Deps {
				if e.To.Kind == vfg.NodeMem && concreteVar(g, e.To.Mem.Var) {
					closure[e.To.ID] = true
				}
			}
		}
		for _, s := range stmts {
			dom := domOf(s.Parent().Fn)
			// R_x: users r of the closure that are outside it, whose
			// defining statement is dominated by s.
			for tid := range closure {
				t := g.Nodes[tid]
				for _, ue := range t.Users {
					r := ue.To
					if closure[r.ID] {
						continue
					}
					rDef := defInstr(r)
					if rDef == nil || rDef.Parent() == nil || rDef.Parent().Fn != s.Parent().Fn {
						continue
					}
					if !dom.InstrDominates(s, rDef) {
						continue
					}
					cuts[edge{r.ID, t.ID}] = true
					redirected[r.ID] = true
				}
			}
		}
	}
	if len(cuts) == 0 {
		return gm, 0
	}
	newGamma := resolve(func(from, to *vfg.Node) bool {
		return cuts[edge{from.ID, to.ID}]
	})
	return newGamma, len(redirected)
}

// defInstr returns the IR instruction that defines a VFG node's value, if
// any.
func defInstr(n *vfg.Node) ir.Instr {
	switch n.Kind {
	case vfg.NodeReg:
		return n.Reg.Def
	case vfg.NodeMem:
		if n.Mem.Kind == memssa.DefChi {
			return n.Mem.Instr
		}
	}
	return nil
}

// concreteVar mirrors the graph's notion of a concrete location.
func concreteVar(g *vfg.Graph, v memssa.MemVar) bool {
	if v.Obj.Collapsed() && v.Obj.Size > 1 {
		return false
	}
	switch v.Obj.Kind {
	case ir.ObjGlobal:
		return true
	case ir.ObjStack:
		return !g.Pointer.Recursive(v.Obj.Fn)
	default:
		return false
	}
}
