package vfg_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/workload"
)

// benchGraph builds the full VFG of one workload profile.
func benchGraph(b *testing.B, name string) *vfg.Graph {
	b.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("no workload %s", name)
	}
	src := workload.Generate(p)
	prog, err := usher.Compile(p.Name+".c", src)
	if err != nil {
		b.Fatal(err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		b.Fatal(err)
	}
	pa := pointer.Analyze(prog)
	mem := memssa.Build(prog, pa)
	return vfg.Build(prog, pa, mem, vfg.Options{})
}

// BenchmarkResolve measures bit-set Γ resolution on a mid-size graph
// (~10k nodes).
func BenchmarkResolve(b *testing.B) {
	g := benchGraph(b, "mesa")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gm := vfg.Resolve(g)
		if gm.BottomCount() == 0 {
			b.Fatal("no ⊥ nodes")
		}
	}
}

// BenchmarkResolveMerged resolves over access-equivalence classes.
func BenchmarkResolveMerged(b *testing.B) {
	g := benchGraph(b, "mesa")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gm := vfg.ResolveWith(g, vfg.ResolveOptions{MergeEquivalent: true})
		if gm.BottomCount() == 0 {
			b.Fatal("no ⊥ nodes")
		}
	}
}

// BenchmarkResolveContextInsensitive is the §3.3 ablation's resolution.
func BenchmarkResolveContextInsensitive(b *testing.B) {
	g := benchGraph(b, "mesa")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gm := vfg.ResolveWith(g, vfg.ResolveOptions{ContextInsensitive: true})
		if gm.BottomCount() == 0 {
			b.Fatal("no ⊥ nodes")
		}
	}
}

// BenchmarkResolveLarge runs resolution on the largest suite graph
// (~90k nodes) to expose cache behaviour at scale.
func BenchmarkResolveLarge(b *testing.B) {
	g := benchGraph(b, "gcc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vfg.Resolve(g)
	}
}
