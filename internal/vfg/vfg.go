// Package vfg builds the paper's value-flow graph (§3.2) and resolves the
// definedness of every value on it (§3.3).
//
// Nodes represent SSA definitions: one per virtual register (top-level
// variable) and one per memory SSA version (address-taken variable), plus
// the two roots T (defined) and F (undefined). A dependence edge v → u
// means v's value flows from u. Interprocedural edges carry their call
// site so that definedness resolution can match calls with returns
// (1-callsite context sensitivity).
//
// Stores support three update flavors:
//
//   - strong: the pointer uniquely targets a concrete location (a global
//     cell or a non-recursive function's stack cell): the old version is
//     killed.
//   - semi-strong: the pointer uniquely targets one abstract object whose
//     allocation result register dominates the store; the value flow is
//     rerouted around the allocation's own (possibly undefined) initial
//     state to the version before the allocation (Figure 6).
//   - weak: everything else; the old version flows into the new one.
package vfg

import (
	"fmt"
	"sort"

	"github.com/valueflow/usher/internal/cfg"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
)

// NodeKind classifies VFG nodes.
type NodeKind int

// Node kinds.
const (
	NodeRootT NodeKind = iota
	NodeRootF
	NodeReg
	NodeMem
)

// EdgeKind classifies dependence edges.
type EdgeKind int

// Edge kinds. Call and Ret edges carry their call site.
const (
	EdgeIntra EdgeKind = iota
	// EdgeCall links a formal parameter (or callee entry memory version)
	// to the actual at a call site: crossing into the callee.
	EdgeCall
	// EdgeRet links a call result (or post-call memory version) to the
	// callee's returned value (or exit memory version): crossing out.
	EdgeRet
)

// Node is one VFG node.
type Node struct {
	ID   int
	Kind NodeKind
	// Reg is set for NodeReg.
	Reg *ir.Register
	// Mem is set for NodeMem.
	Mem *memssa.Def
	// Fn is the containing function (nil for roots).
	Fn *ir.Function

	// Deps are the nodes this node's value flows from.
	Deps []Edge
	// Users is the reverse adjacency, built by Finish.
	Users []Edge
}

func (n *Node) String() string {
	switch n.Kind {
	case NodeRootT:
		return "T"
	case NodeRootF:
		return "F"
	case NodeReg:
		return fmt.Sprintf("%s:%s", n.Fn.Name, n.Reg)
	default:
		return fmt.Sprintf("%s:%s", n.Fn.Name, n.Mem)
	}
}

// Edge is one dependence edge.
type Edge struct {
	To   *Node
	Kind EdgeKind
	Site *ir.Call
}

// UpdateKind classifies how a store's chi was handled.
type UpdateKind int

// Store update flavors.
const (
	UpdateStrong UpdateKind = iota
	UpdateSemiStrong
	// UpdateWeakSingleton: the pointer targets a single abstract object
	// but neither a strong nor a semi-strong update applies.
	UpdateWeakSingleton
	// UpdateWeakMulti: the pointer may target several objects.
	UpdateWeakMulti
)

func (k UpdateKind) String() string {
	switch k {
	case UpdateStrong:
		return "strong"
	case UpdateSemiStrong:
		return "semi-strong"
	case UpdateWeakSingleton:
		return "weak-singleton"
	default:
		return "weak-multi"
	}
}

// Options configures graph construction.
type Options struct {
	// TopLevelOnly builds the Usher_TL variant: only top-level variables
	// are modelled; every load conservatively depends on F.
	TopLevelOnly bool
	// NoSemiStrong disables semi-strong updates (ablation).
	NoSemiStrong bool
}

// Graph is the whole-program VFG.
type Graph struct {
	Prog    *ir.Program
	Pointer *pointer.Result
	Mem     *memssa.Info
	Opts    Options

	RootT *Node
	RootF *Node
	Nodes []*Node

	regNodes map[*ir.Register]*Node
	memNodes map[*memssa.Def]*Node

	// StoreUpdates records the update flavor chosen per store chi.
	StoreUpdates map[*memssa.Def]UpdateKind
	// SemiStrongCuts counts applications of the semi-strong rule.
	SemiStrongCuts int

	// sealed marks the graph immutable: after Build returns, node lookups
	// never materialize new nodes, so a Graph (and everything hanging off
	// it) can be shared read-only across concurrent consumers.
	sealed bool
	// siteIDs/numSites assign a dense, deterministic id (1..numSites) to
	// every call site appearing on an interprocedural edge; id 0 is the
	// unknown context. Precomputing the table at build time keeps Resolve
	// read-only on the graph.
	siteIDs  map[*ir.Call]int
	numSites int
}

// Build constructs the VFG.
func Build(prog *ir.Program, pa *pointer.Result, mem *memssa.Info, opts Options) *Graph {
	g := &Graph{
		Prog:         prog,
		Pointer:      pa,
		Mem:          mem,
		Opts:         opts,
		regNodes:     make(map[*ir.Register]*Node),
		memNodes:     make(map[*memssa.Def]*Node),
		StoreUpdates: make(map[*memssa.Def]UpdateKind),
	}
	g.RootT = g.newNode(NodeRootT, nil)
	g.RootF = g.newNode(NodeRootF, nil)
	for _, fn := range prog.Funcs {
		if fn.HasBody {
			g.buildFunc(fn)
		}
	}
	g.linkParams()
	g.seal()
	return g
}

// seal completes construction and freezes the graph: every register that
// could ever be queried gets its node now, the reverse adjacency and the
// call-site table are built, and lazy node creation is switched off.
func (g *Graph) seal() {
	// Materialize nodes for every parameter and every defined register,
	// so post-build lookups (CriticalUses, instrumentation, Opt II) never
	// mutate the node table. Operand registers are always defined by some
	// instruction or parameter, so this covers all of them.
	for _, fn := range g.Prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, prm := range fn.Params {
			g.RegNode(prm)
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in := in.(type) {
				case *ir.Alloc:
					g.RegNode(in.Dst)
				case *ir.Copy:
					g.RegNode(in.Dst)
				case *ir.BinOp:
					g.RegNode(in.Dst)
				case *ir.FieldAddr:
					g.RegNode(in.Dst)
				case *ir.IndexAddr:
					g.RegNode(in.Dst)
				case *ir.Phi:
					g.RegNode(in.Dst)
				case *ir.Load:
					g.RegNode(in.Dst)
				case *ir.Call:
					if in.Dst != nil {
						g.RegNode(in.Dst)
					}
				}
			}
		}
	}
	g.finish()

	// Dense call-site ids, assigned in deterministic edge order.
	g.siteIDs = make(map[*ir.Call]int)
	for _, n := range g.Nodes {
		for _, e := range n.Deps {
			if e.Site == nil {
				continue
			}
			if _, ok := g.siteIDs[e.Site]; !ok {
				g.numSites++
				g.siteIDs[e.Site] = g.numSites
			}
		}
	}
	g.sealed = true
}

// Sealed reports whether the graph has been made immutable (set by Build
// before returning). The pipeline artifact store refuses to share an
// unsealed graph: lookups on it would materialize nodes and race.
func (g *Graph) Sealed() bool { return g.sealed }

// Sites returns the graph's dense call-site numbering: a map from call
// site to context id (1..numSites; 0 is the unknown context) plus the
// site count. Sealed graphs carry the table precomputed at build time;
// unsealed ones (hand-built in tests) get a fresh assignment in the same
// deterministic dependence-edge order, so resolution — dense or
// summary-based — always agrees on context ids.
func (g *Graph) Sites() (map[*ir.Call]int, int) {
	if g.siteIDs != nil {
		return g.siteIDs, g.numSites
	}
	siteIDs := make(map[*ir.Call]int)
	numSites := 0
	for _, n := range g.Nodes {
		for _, e := range n.Deps {
			if e.Site != nil {
				if _, ok := siteIDs[e.Site]; !ok {
					numSites++
					siteIDs[e.Site] = numSites
				}
			}
		}
	}
	return siteIDs, numSites
}

func (g *Graph) newNode(kind NodeKind, fn *ir.Function) *Node {
	n := &Node{ID: len(g.Nodes), Kind: kind, Fn: fn}
	g.Nodes = append(g.Nodes, n)
	return n
}

// RegNode returns the node of a register definition. On a sealed graph
// misses return nil instead of materializing a node (callers treat nil
// conservatively), keeping lookups free of side effects so they are safe
// under concurrent sharing.
func (g *Graph) RegNode(r *ir.Register) *Node {
	if n, ok := g.regNodes[r]; ok {
		return n
	}
	if g.sealed {
		return nil
	}
	n := g.newNode(NodeReg, r.Fn)
	n.Reg = r
	g.regNodes[r] = n
	return n
}

// MemNode returns the node of a memory SSA definition.
func (g *Graph) MemNode(d *memssa.Def) *Node {
	if g.Opts.TopLevelOnly {
		// Should not be called in TL mode; defensive.
		return g.RootF
	}
	if n, ok := g.memNodes[d]; ok {
		return n
	}
	if g.sealed {
		return nil
	}
	n := g.newNode(NodeMem, d.Fn)
	n.Mem = d
	g.memNodes[d] = n
	return n
}

// ValueNode returns the node representing an operand's value: T for
// constants, function addresses and global addresses; the register node
// otherwise.
func (g *Graph) ValueNode(v ir.Value) *Node {
	if r, ok := v.(*ir.Register); ok {
		return g.RegNode(r)
	}
	return g.RootT
}

func (g *Graph) addDep(from, to *Node) { g.addDepE(from, to, EdgeIntra, nil) }

func (g *Graph) addDepE(from, to *Node, kind EdgeKind, site *ir.Call) {
	from.Deps = append(from.Deps, Edge{To: to, Kind: kind, Site: site})
}

// finish builds the reverse adjacency.
func (g *Graph) finish() {
	for _, n := range g.Nodes {
		for _, e := range n.Deps {
			e.To.Users = append(e.To.Users, Edge{To: n, Kind: e.Kind, Site: e.Site})
		}
	}
}

// concreteLocation reports whether a memory variable denotes exactly one
// runtime cell, making strong updates safe: a global cell, or a stack cell
// of a non-recursive function; and never part of a collapsed multi-cell
// object.
func (g *Graph) concreteLocation(v memssa.MemVar) bool {
	if v.Obj.Collapsed() && v.Obj.Size > 1 {
		return false
	}
	if v.Obj.Site != nil && v.Obj.Site.DynSize != nil {
		return false
	}
	switch v.Obj.Kind {
	case ir.ObjGlobal:
		return true
	case ir.ObjStack:
		return !g.Pointer.Recursive(v.Obj.Fn)
	default:
		return false
	}
}

func (g *Graph) buildFunc(fn *ir.Function) {
	fi := g.Mem.Funcs[fn]
	dom := cfg.NewDomTree(fn)

	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in := in.(type) {
			case *ir.Alloc:
				g.buildAlloc(fi, in)
			case *ir.Copy:
				g.addDep(g.RegNode(in.Dst), g.ValueNode(in.Src))
			case *ir.BinOp:
				d := g.RegNode(in.Dst)
				g.addDep(d, g.ValueNode(in.X))
				g.addDep(d, g.ValueNode(in.Y))
			case *ir.FieldAddr:
				g.addDep(g.RegNode(in.Dst), g.ValueNode(in.Base))
			case *ir.IndexAddr:
				d := g.RegNode(in.Dst)
				g.addDep(d, g.ValueNode(in.Base))
				g.addDep(d, g.ValueNode(in.Idx))
			case *ir.Phi:
				d := g.RegNode(in.Dst)
				for _, v := range in.Vals {
					g.addDep(d, g.ValueNode(v))
				}
			case *ir.Load:
				g.buildLoad(fi, in)
			case *ir.Store:
				g.buildStore(fi, dom, in)
			case *ir.MemSet:
				g.buildMemSet(fi, in)
			case *ir.MemCopy:
				g.buildMemCopy(fi, in)
			case *ir.Call:
				g.buildCall(fi, in)
			}
		}
	}
	if g.Opts.TopLevelOnly || fi == nil {
		return
	}
	// Memory phis. fi.Phis is keyed by block; iterate the function's
	// block list rather than the map so node creation order — and with
	// it the graph's node numbering, which snapshot Γ bit vectors index
	// — is identical on every run.
	for _, b := range fn.Blocks {
		for _, d := range fi.Phis[b] {
			nd := g.MemNode(d)
			for _, arg := range d.PhiArgs {
				g.addDep(nd, g.memDefNode(arg))
			}
		}
	}
	// Entry versions of variables that cannot pre-exist are defined.
	for _, d := range fi.AllDefs {
		if d.Kind == memssa.DefEntryUndef {
			g.addDep(g.MemNode(d), g.RootT)
		}
	}
}

// memDefNode maps a memory SSA def to its node, treating entry-undef
// versions as defined.
func (g *Graph) memDefNode(d *memssa.Def) *Node {
	return g.MemNode(d)
}

func (g *Graph) buildAlloc(fi *memssa.FuncInfo, in *ir.Alloc) {
	// The returned pointer is always defined ([⊤-Alloc]).
	g.addDep(g.RegNode(in.Dst), g.RootT)
	if g.Opts.TopLevelOnly || fi == nil {
		return
	}
	initRoot := g.RootF
	if in.Obj.ZeroInit {
		initRoot = g.RootT
	}
	for _, chi := range fi.Chis[in.Label()] {
		n := g.MemNode(chi)
		g.addDep(n, initRoot)
		// Older instances of the same abstract object keep their state.
		g.addDep(n, g.memDefNode(chi.Prev))
	}
}

func (g *Graph) buildLoad(fi *memssa.FuncInfo, in *ir.Load) {
	d := g.RegNode(in.Dst)
	if g.Opts.TopLevelOnly || fi == nil {
		// Without address-taken tracking, loaded values are unknown.
		g.addDep(d, g.RootF)
		return
	}
	mus := fi.Mus[in.Label()]
	if len(mus) == 0 {
		// No statically visible target (e.g. empty points-to set): the
		// value cannot be proven defined.
		g.addDep(d, g.RootF)
		return
	}
	for _, mu := range mus {
		g.addDep(d, g.memDefNode(mu.Use))
	}
}

func (g *Graph) buildStore(fi *memssa.FuncInfo, dom *cfg.DomTree, in *ir.Store) {
	if g.Opts.TopLevelOnly || fi == nil {
		return
	}
	valNode := g.ValueNode(in.Val)
	uniq, isUniq := g.Pointer.UniqueTarget(in.Addr)
	for _, chi := range fi.Chis[in.Label()] {
		n := g.MemNode(chi)
		g.addDep(n, valNode)
		kind := UpdateWeakMulti
		if isUniq {
			uvar := memssa.MemVar{Obj: uniq.Obj, Field: g.Pointer.CanonField(uniq.Obj, uniq.Field)}
			switch {
			case uvar == chi.Var && g.concreteLocation(uvar):
				// Strong update: the old version is killed.
				kind = UpdateStrong
			case uvar == chi.Var && !g.Opts.NoSemiStrong && g.semiStrong(dom, in, chi, n):
				kind = UpdateSemiStrong
			default:
				kind = UpdateWeakSingleton
				g.addDep(n, g.memDefNode(chi.Prev))
			}
		} else {
			g.addDep(n, g.memDefNode(chi.Prev))
		}
		g.StoreUpdates[chi] = kind
	}
}

// buildMemSet wires a memset intrinsic's chis: every targeted variable's
// new version flows from the fill value and — because the runtime range
// may not cover the variable — from the incoming version. The always-weak
// treatment keeps the chis sound for any length, including zero.
func (g *Graph) buildMemSet(fi *memssa.FuncInfo, in *ir.MemSet) {
	if g.Opts.TopLevelOnly || fi == nil {
		return
	}
	valNode := g.ValueNode(in.Val)
	for _, chi := range fi.Chis[in.Label()] {
		n := g.MemNode(chi)
		g.addDep(n, valNode)
		g.addDep(n, g.memDefNode(chi.Prev))
	}
}

// buildMemCopy wires a memcpy/memmove intrinsic's chis: every targeted
// variable's new version flows from the source variables' reaching
// versions (the instruction's mus) and from its own incoming version
// (always weak, as for memset). An empty source points-to set means the
// copied values are statically unknown and therefore possibly undefined.
func (g *Graph) buildMemCopy(fi *memssa.FuncInfo, in *ir.MemCopy) {
	if g.Opts.TopLevelOnly || fi == nil {
		return
	}
	mus := fi.Mus[in.Label()]
	for _, chi := range fi.Chis[in.Label()] {
		n := g.MemNode(chi)
		if len(mus) == 0 {
			g.addDep(n, g.RootF)
		}
		for _, mu := range mus {
			g.addDep(n, g.memDefNode(mu.Use))
		}
		g.addDep(n, g.memDefNode(chi.Prev))
	}
}

// semiStrong attempts the semi-strong update of §3.2: if the allocation
// site of the stored-to object produces a pointer register whose
// definition dominates the store, the store definitely overwrites the
// freshly allocated cell, so the value flow is rerouted to the version
// before the allocation's chi, bypassing the allocation's own undefined
// initial state. Returns true (and adds the rerouted edge) on success.
func (g *Graph) semiStrong(dom *cfg.DomTree, st *ir.Store, chi *memssa.Def, n *Node) bool {
	// The rule is only sound when the variable denotes exactly one cell
	// per instance: the store then definitely overwrites the fresh cell.
	// A collapsed multi-cell object (array, dynamic allocation) is a
	// summary of many cells, of which the store writes only one.
	obj := chi.Var.Obj
	if obj.Collapsed() && obj.Size > 1 {
		return false
	}
	site := obj.Site
	if site == nil || site.DynSize != nil {
		return false
	}
	if site.Parent() == nil || site.Parent().Fn != st.Parent().Fn {
		return false
	}
	if !dom.InstrDominates(site, st) {
		return false
	}
	// Find the version of this variable before the allocation's chi.
	fi := g.Mem.Funcs[st.Parent().Fn]
	for _, allocChi := range fi.Chis[site.Label()] {
		if allocChi.Var == chi.Var {
			g.addDep(n, g.memDefNode(allocChi.Prev))
			g.SemiStrongCuts++
			return true
		}
	}
	return false
}

func (g *Graph) buildCall(fi *memssa.FuncInfo, in *ir.Call) {
	switch in.Builtin {
	case ir.BuiltinInput:
		g.addDep(g.RegNode(in.Dst), g.RootT)
		return
	case ir.BuiltinPrint, ir.BuiltinFree:
		return
	}
	callees := g.Pointer.Callees(in)
	if len(callees) == 0 || (in.Direct() != nil && !in.Direct().HasBody) {
		// External call: modelled as returning a defined value.
		if in.Dst != nil {
			g.addDep(g.RegNode(in.Dst), g.RootT)
		}
		return
	}
	for _, callee := range callees {
		if !callee.HasBody {
			if in.Dst != nil {
				g.addDep(g.RegNode(in.Dst), g.RootT)
			}
			continue
		}
		// Formal parameters depend on actuals (call edges).
		for i, prm := range callee.Params {
			if i < len(in.Args) {
				g.addDepE(g.RegNode(prm), g.ValueNode(in.Args[i]), EdgeCall, in)
			}
		}
		cfi := g.Mem.Funcs[callee]
		// Return value flows to the call result (ret edges).
		if in.Dst != nil {
			for _, b := range callee.Blocks {
				for _, ci := range b.Instrs {
					if r, ok := ci.(*ir.Ret); ok && r.Val != nil {
						g.addDepE(g.RegNode(in.Dst), g.valueNodeIn(callee, r.Val), EdgeRet, in)
					}
				}
			}
		}
		if g.Opts.TopLevelOnly || fi == nil || cfi == nil {
			continue
		}
		// Virtual input parameters: callee entry versions depend on the
		// caller's current versions at the call site.
		muByVar := make(map[memssa.MemVar]*memssa.Def)
		for _, mu := range fi.Mus[in.Label()] {
			muByVar[mu.Var] = mu.Use
		}
		for _, v := range cfi.InVars {
			entry := cfi.EntryDefs[v]
			if entry == nil {
				continue
			}
			if use, ok := muByVar[v]; ok {
				g.addDepE(g.MemNode(entry), g.memDefNode(use), EdgeCall, in)
			}
		}
		// Virtual output parameters: the caller's post-call versions
		// depend on the callee's versions at each return. RetVersions is
		// keyed by ret label; iterate the labels sorted so node creation
		// and edge order (and with them the graph's node numbering) are
		// identical on every run.
		outSet := make(map[memssa.MemVar]bool, len(cfi.OutVars))
		for _, v := range cfi.OutVars {
			outSet[v] = true
		}
		retLabels := make([]int, 0, len(cfi.RetVersions))
		for l := range cfi.RetVersions {
			retLabels = append(retLabels, l)
		}
		sort.Ints(retLabels)
		for _, chi := range fi.Chis[in.Label()] {
			n := g.MemNode(chi)
			if outSet[chi.Var] {
				for _, l := range retLabels {
					if d, ok := cfi.RetVersions[l][chi.Var]; ok {
						g.addDepE(n, g.memDefNode(d), EdgeRet, in)
					}
				}
			} else {
				// Some other callee modifies this variable; through this
				// callee it is unchanged.
				g.addDep(n, g.memDefNode(chi.Prev))
			}
		}
	}
}

// valueNodeIn is ValueNode for operands of another function (ret values).
func (g *Graph) valueNodeIn(fn *ir.Function, v ir.Value) *Node {
	return g.ValueNode(v)
}

// linkParams gives defined roots to the parameters and entry memory
// versions of functions that are never called (program entry points).
func (g *Graph) linkParams() {
	for _, fn := range g.Prog.Funcs {
		if !fn.HasBody {
			continue
		}
		if len(g.Pointer.Callers(fn)) > 0 {
			continue
		}
		for _, prm := range fn.Params {
			g.addDep(g.RegNode(prm), g.RootT)
		}
		if g.Opts.TopLevelOnly {
			continue
		}
		if fi := g.Mem.Funcs[fn]; fi != nil {
			// At program start, globals are initialized and no heap
			// instances exist.
			for _, v := range fi.InVars {
				if d := fi.EntryDefs[v]; d != nil {
					g.addDep(g.MemNode(d), g.RootT)
				}
			}
		}
	}
}
