package vfg

import (
	"fmt"
	"sort"
	"strings"

	"github.com/valueflow/usher/internal/ir"
)

// Equivalence partitions VFG nodes into access-equivalence classes: nodes
// whose dependence edges are identical (same targets, kinds and call
// sites) necessarily resolve to the same definedness, so resolution can
// run once per class. This is the node-merging technique of Hardekopf &
// Lin that the paper applies to its VFGs (§4.1).
type Equivalence struct {
	rep []int // node id -> representative node id
	// classUsers[repID] is the union of the user edges of every class
	// member (targets not remapped; push remaps).
	classUsers map[int][]Edge
	classes    int
}

// Rep returns the representative node id of n.
func (eq *Equivalence) Rep(id int) int { return eq.rep[id] }

// Classes returns the number of equivalence classes among mergeable
// nodes.
func (eq *Equivalence) Classes() int { return eq.classes }

// Merged returns how many nodes were merged away.
func (eq *Equivalence) Merged(g *Graph) int { return len(g.Nodes) - eq.classes }

// ComputeAccessEquivalence builds the partition. Root nodes are never
// merged.
func ComputeAccessEquivalence(g *Graph) *Equivalence {
	eq := &Equivalence{
		rep:        make([]int, len(g.Nodes)),
		classUsers: make(map[int][]Edge),
	}
	byKey := make(map[string]int)
	// Call-site identities must be global: instruction labels are only
	// unique per function.
	siteIDs := make(map[*ir.Call]int)
	siteID := func(c *ir.Call) int {
		if id, ok := siteIDs[c]; ok {
			return id
		}
		id := len(siteIDs) + 1
		siteIDs[c] = id
		return id
	}
	for _, n := range g.Nodes {
		if n.Kind == NodeRootT || n.Kind == NodeRootF {
			eq.rep[n.ID] = n.ID
			eq.classes++
			continue
		}
		key := depKey(n, siteID)
		if rep, ok := byKey[key]; ok {
			eq.rep[n.ID] = rep
		} else {
			byKey[key] = n.ID
			eq.rep[n.ID] = n.ID
			eq.classes++
		}
	}
	for _, n := range g.Nodes {
		r := eq.rep[n.ID]
		eq.classUsers[r] = append(eq.classUsers[r], n.Users...)
	}
	return eq
}

// depKey canonically encodes a node's dependence edges.
func depKey(n *Node, siteID func(*ir.Call) int) string {
	parts := make([]string, len(n.Deps))
	for i, e := range n.Deps {
		site := -1
		if e.Site != nil {
			site = siteID(e.Site)
		}
		parts[i] = fmt.Sprintf("%d:%d:%d", e.To.ID, e.Kind, site)
	}
	sort.Strings(parts)
	// Distinguish kinds so a register never merges with a memory version
	// of a different function (harmless but confusing in reports).
	return fmt.Sprintf("%d|%s", n.Kind, strings.Join(parts, ","))
}
