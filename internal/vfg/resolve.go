package vfg

import (
	"github.com/valueflow/usher/internal/bitset"
	"github.com/valueflow/usher/internal/ir"
)

// State is the resolved definedness of a node: Top (⊤, provably defined)
// or Bottom (⊥, possibly undefined).
type State bool

// Definedness states.
const (
	Top    State = false // reachable only from T
	Bottom State = true  // reachable from F
)

func (s State) String() string {
	if s == Bottom {
		return "⊥"
	}
	return "⊤"
}

// Gamma maps VFG nodes to their definedness. The ⊥ set is a dense bit
// set over node ids, one word per 64 nodes (the shared internal/bitset
// package, also the pointer solver's points-to representation).
type Gamma struct {
	g      *Graph
	n      int // node count at resolution time
	bottom *bitset.Set
	// eq is set when resolution ran over access-equivalence classes.
	eq *Equivalence
}

// Of returns the state of n. Nodes unknown to the resolution (nil, or
// created after it — impossible on sealed graphs) are conservatively ⊥.
func (gm *Gamma) Of(n *Node) State {
	if n == nil {
		return Bottom
	}
	id := n.ID
	if gm.eq != nil {
		id = gm.eq.Rep(id)
	}
	if id >= gm.n || gm.bottom.Has(id) {
		return Bottom
	}
	return Top
}

// OfValue returns the state of an operand: constants and addresses are ⊤.
func (gm *Gamma) OfValue(v ir.Value) State {
	if r, ok := v.(*ir.Register); ok {
		if n, ok := gm.g.regNodes[r]; ok {
			return gm.Of(n)
		}
		return Bottom // unmodelled register: be conservative
	}
	return Top
}

// NewGammaFromBits reconstructs a Γ from a previously exported ⊥ bit
// vector over g's node ids (see BottomBits). The caller asserts that the
// bits were resolved against a graph with identical node numbering — the
// snapshot warm-start path guarantees it by keying on the program
// fingerprint and re-checking the node count.
func NewGammaFromBits(g *Graph, bottom *bitset.Set) *Gamma {
	return &Gamma{g: g, n: len(g.Nodes), bottom: bottom}
}

// BottomBits exposes the ⊥ set as a dense bit vector over node ids, or
// nil when the resolution ran over merged equivalence classes (the bits
// then live on class representatives and are not meaningful per node).
// The returned set must be treated as read-only.
func (gm *Gamma) BottomBits() *bitset.Set {
	if gm.eq != nil {
		return nil
	}
	return gm.bottom
}

// NodeCount returns the node count the resolution ran against.
func (gm *Gamma) NodeCount() int { return gm.n }

// BottomCount returns the number of ⊥ nodes.
func (gm *Gamma) BottomCount() int {
	if gm.eq == nil {
		return gm.bottom.Count()
	}
	// Under merging, ⊥ bits live on class representatives; count members.
	n := 0
	for _, node := range gm.g.Nodes {
		if gm.Of(node) == Bottom {
			n++
		}
	}
	return n
}

// ctx is a resolution context: the call site through which undefinedness
// entered the current function, or unknown (the widened top context).
const ctxUnknown = 0

// ResolveOptions tunes definedness resolution.
type ResolveOptions struct {
	// ContextInsensitive disables call/return edge matching (ablation of
	// §3.3's context sensitivity): every interprocedural edge is treated
	// like an intraprocedural one.
	ContextInsensitive bool
	// MergeEquivalent resolves over access-equivalence classes instead of
	// individual nodes (the node-merging of §4.1). The resulting Γ is
	// identical; resolution visits fewer states.
	MergeEquivalent bool
	// Cut filters dependence edges: an edge (from, to) for which it
	// returns true is treated as replaced by from → T (Opt II's
	// Algorithm 1 rewiring).
	Cut func(from, to *Node) bool
}

// Resolve computes Γ by forward reachability from the F root along user
// edges, matching call and return edges with 1-callsite context
// sensitivity (§3.3): a flow that entered a callee through call site c may
// leave it only through c's return edges. The unknown context subsumes
// every specific context.
func Resolve(g *Graph) *Gamma { return ResolveWith(g, ResolveOptions{}) }

// ResolveCut is Resolve with an edge filter (see ResolveOptions.Cut).
func ResolveCut(g *Graph, cut func(from, to *Node) bool) *Gamma {
	return ResolveWith(g, ResolveOptions{Cut: cut})
}

// ResolveWith is the general entry point.
//
// The propagation state is kept in dense bit sets rather than per-node
// maps: the ⊥ frontier is one bit per node, the visited-in-unknown-context
// set is one bit per node, and the visited-in-specific-context sets are
// per-node context bit vectors allocated only for nodes that are ever
// reached under a specific call-site context. Resolution performs no
// allocation proportional to the number of (node, context) visits and
// never mutates the graph, so it may run concurrently over a shared graph.
func ResolveWith(g *Graph, opts ResolveOptions) *Gamma {
	cut := opts.Cut
	nn := len(g.Nodes)
	gm := &Gamma{g: g, n: nn, bottom: bitset.New(nn)}

	// Access-equivalence merging: resolve per class representative.
	// Edge cuts key on individual nodes, so merging is disabled under
	// them (Opt II re-resolution).
	var eq *Equivalence
	rep := func(n *Node) *Node { return n }
	usersOf := func(n *Node) []Edge { return n.Users }
	if opts.MergeEquivalent && cut == nil {
		eq = ComputeAccessEquivalence(g)
		gm.eq = eq
		rep = func(n *Node) *Node { return g.Nodes[eq.Rep(n.ID)] }
		usersOf = func(n *Node) []Edge { return eq.classUsers[n.ID] }
	}

	// Context ids: 0 = unknown, otherwise the graph's dense call-site id.
	siteIDs, numSites := g.Sites()
	numCtx := numSites + 1

	type state struct {
		node *Node
		ctx  int
	}
	// Visited sets: ctxUnknown subsumes every specific context. Reads on
	// nil per-node context sets are fine (a nil *bitset.Set is empty).
	visitedUnknown := bitset.New(nn)
	visitedCtx := make([]*bitset.Set, nn)
	seen := func(n *Node, ctx int) bool {
		if visitedUnknown.Has(n.ID) {
			return true
		}
		if ctx == ctxUnknown {
			return false
		}
		return visitedCtx[n.ID].Has(ctx)
	}
	mark := func(n *Node, ctx int) {
		if ctx == ctxUnknown {
			// Widen: unknown subsumes all specific contexts.
			visitedUnknown.Add(n.ID)
			visitedCtx[n.ID] = nil
		} else {
			b := visitedCtx[n.ID]
			if b == nil {
				b = bitset.New(numCtx)
				visitedCtx[n.ID] = b
			}
			b.Add(ctx)
		}
		gm.bottom.Add(n.ID)
	}

	var work []state
	push := func(n *Node, ctx int) {
		if n.Kind == NodeRootT || n.Kind == NodeRootF {
			return
		}
		n = rep(n)
		if seen(n, ctx) {
			return
		}
		mark(n, ctx)
		work = append(work, state{n, ctx})
	}

	for _, e := range g.RootF.Users {
		// Flows start where an undefined value is born; the birth context
		// is unknown (it can leave its function through any return).
		if cut != nil && cut(e.To, g.RootF) {
			continue
		}
		push(e.To, ctxUnknown)
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range usersOf(s.node) {
			// A user edge from s.node to e.To corresponds to the
			// dependence edge e.To → s.node.
			if cut != nil && cut(e.To, s.node) {
				continue
			}
			kind := e.Kind
			if opts.ContextInsensitive {
				kind = EdgeIntra
			}
			switch kind {
			case EdgeIntra:
				push(e.To, s.ctx)
			case EdgeCall:
				// Entering the callee at e.Site: remember it (1 level).
				push(e.To, siteIDs[e.Site])
			case EdgeRet:
				// Leaving the callee towards e.Site: allowed if we entered
				// there, or if the entry site is unknown.
				if s.ctx == ctxUnknown || s.ctx == siteIDs[e.Site] {
					push(e.To, ctxUnknown)
				}
			}
		}
	}
	return gm
}

// CriticalUses lists the VFG nodes whose values are used at critical
// operations, mapping each node to the set of critical instructions using
// it. Constants at critical operations are always defined and omitted.
func CriticalUses(g *Graph) map[*Node][]ir.Instr {
	uses := make(map[*Node][]ir.Instr)
	for _, fn := range g.Prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				vals, ok := ir.IsCritical(in)
				if !ok {
					continue
				}
				for _, v := range vals {
					if r, isReg := v.(*ir.Register); isReg {
						if n := g.RegNode(r); n != nil {
							uses[n] = append(uses[n], in)
						}
					}
				}
			}
		}
	}
	return uses
}

// ReachesCritical computes, context-insensitively, the set of nodes whose
// values may flow into a node used at a critical operation. Only these
// nodes ever need shadow tracking; the percentage of such nodes is
// Table 1's %B column.
func ReachesCritical(g *Graph) []bool {
	reach := make([]bool, len(g.Nodes))
	var work []*Node
	for n := range CriticalUses(g) {
		if !reach[n.ID] {
			reach[n.ID] = true
			work = append(work, n)
		}
	}
	for len(work) > 0 {
		n := work[len(work)-1]
		work = work[:len(work)-1]
		for _, e := range n.Deps {
			if t := e.To; t.Kind != NodeRootT && t.Kind != NodeRootF && !reach[t.ID] {
				reach[t.ID] = true
				work = append(work, t)
			}
		}
	}
	return reach
}
