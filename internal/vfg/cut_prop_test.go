package vfg_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/vfgsum"
	"github.com/valueflow/usher/internal/workload"
)

// randomCut returns a deterministic pseudo-random edge predicate: the
// salt picks a different ~1/k slice of the edge space per iteration, so
// the property sweep covers cuts of seed edges (from RootF), intra
// edges, and interprocedural edges alike.
func randomCut(salt, k int) func(from, to *vfg.Node) bool {
	return func(from, to *vfg.Node) bool {
		return (from.ID*2654435761+to.ID*40503+salt)%k == 0
	}
}

// checkCutEquivalence pins three facts about one (graph, cut) pair:
//
//  1. ResolveCut is exactly ResolveWith with the same Cut option (the
//     convenience wrapper adds nothing);
//  2. the Opt IV summary-based vfgsum.ResolveCut produces the identical
//     Γ (cuts force a cut-aware condensation — a cached cut-free
//     summary cannot serve them — and that rebuild must not change the
//     result);
//  3. cutting edges is monotone: an edge cut only removes ⊥ flows, so
//     the cut ⊥ set is a subset of the uncut one.
func checkCutEquivalence(t *testing.T, tag string, g *vfg.Graph, cut func(from, to *vfg.Node) bool) {
	t.Helper()
	uncut := vfg.Resolve(g)
	viaCut := vfg.ResolveCut(g, cut)
	viaWith := vfg.ResolveWith(g, vfg.ResolveOptions{Cut: cut})
	viaSum := vfgsum.ResolveCut(g, cut)
	for _, n := range g.Nodes {
		if viaCut.Of(n) != viaWith.Of(n) {
			t.Fatalf("%s: node %v: ResolveCut %v, ResolveWith{Cut} %v",
				tag, n, viaCut.Of(n), viaWith.Of(n))
		}
		if viaCut.Of(n) != viaSum.Of(n) {
			t.Fatalf("%s: node %v: dense cut %v, summary cut %v",
				tag, n, viaCut.Of(n), viaSum.Of(n))
		}
		if viaCut.Of(n) == vfg.Bottom && uncut.Of(n) == vfg.Top {
			t.Fatalf("%s: node %v: ⊥ under the cut but ⊤ without it (cut added a flow)",
				tag, n)
		}
	}
}

// TestResolveCutEquivalenceWorkloads sweeps pseudo-random cut
// predicates over workload graphs.
func TestResolveCutEquivalenceWorkloads(t *testing.T) {
	for _, name := range []string{"gzip", "equake", "ammp"} {
		p, ok := workload.ByName(name)
		if !ok {
			t.Fatalf("no workload %s", name)
		}
		g := buildGraph(t, workload.Generate(p))
		for salt := 0; salt < 4; salt++ {
			for _, k := range []int{2, 5, 13} {
				checkCutEquivalence(t, name, g, randomCut(salt, k))
			}
		}
		// Degenerate cuts: nothing cut (must equal the plain resolution)
		// and everything cut (⊥ must be empty — even seed edges are cut).
		none := vfg.ResolveCut(g, func(from, to *vfg.Node) bool { return false })
		plain := vfg.Resolve(g)
		for _, n := range g.Nodes {
			if none.Of(n) != plain.Of(n) {
				t.Fatalf("%s: node %v: empty cut diverges from plain resolution", name, n)
			}
		}
		all := vfg.ResolveCut(g, func(from, to *vfg.Node) bool { return true })
		if all.BottomCount() != 0 {
			t.Errorf("%s: cutting every edge left %d ⊥ nodes", name, all.BottomCount())
		}
	}
}

// TestResolveCutEquivalenceRandom extends the sweep to the fuzzer
// corpus.
func TestResolveCutEquivalenceRandom(t *testing.T) {
	seeds := int64(60)
	if testing.Short() {
		seeds = 15
	}
	for seed := int64(0); seed < seeds; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		irp := compile.MustSource("rand.c", src)
		pa := pointer.Analyze(irp)
		mem := memssa.Build(irp, pa)
		g := vfg.Build(irp, pa, mem, vfg.Options{})
		for _, k := range []int{2, 7} {
			checkCutEquivalence(t, src, g, randomCut(int(seed), k))
		}
	}
}
