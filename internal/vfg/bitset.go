package vfg

import "math/bits"

// bitset is a dense bit vector over node (or context) ids: one word per 64
// ids. Resolution uses it for the ⊥ frontier and the visited sets, which
// keeps Γ resolution allocation-free per step and cache-friendly compared
// to per-node maps.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) has(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<(uint(i)&63)) != 0
}

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

// count returns the number of set bits.
func (b bitset) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}
