package vfg_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/workload"
)

func buildGraph(t *testing.T, src string) *vfg.Graph {
	t.Helper()
	irp := compile.MustSource("t.c", src)
	pa := pointer.Analyze(irp)
	mem := memssa.Build(irp, pa)
	return vfg.Build(irp, pa, mem, vfg.Options{})
}

const ctxSrc = `
int id(int x) { return x; }
int main(int c) {
  int u;
  if (c) { u = 1; }
  int a = id(u);
  int b = id(5);
  if (a) { print(1); }
  if (b) { print(2); }
  return 0;
}`

// TestContextInsensitiveAblation shows why context sensitivity matters:
// without call/return matching, the undefined value entering id() at one
// call site pollutes the result at the other.
func TestContextInsensitiveAblation(t *testing.T) {
	g := buildGraph(t, ctxSrc)
	cs := vfg.Resolve(g)
	ci := vfg.ResolveWith(g, vfg.ResolveOptions{ContextInsensitive: true})

	if ci.BottomCount() <= cs.BottomCount() {
		t.Errorf("context-insensitive ⊥ count %d not above sensitive %d",
			ci.BottomCount(), cs.BottomCount())
	}
	// CI must be a sound over-approximation: every CS-⊥ node stays ⊥.
	for _, n := range g.Nodes {
		if cs.Of(n) == vfg.Bottom && ci.Of(n) != vfg.Bottom {
			t.Errorf("node %v: ⊥ under CS but ⊤ under CI (unsound ablation?)", n)
		}
	}
}

// TestMergeEquivalentGammaIdentical checks that resolving over
// access-equivalence classes yields exactly the same Γ on every workload
// benchmark.
func TestMergeEquivalentGammaIdentical(t *testing.T) {
	for _, name := range []string{"gzip", "mcf", "parser"} {
		p, _ := workload.ByName(name)
		irp := compile.MustSource(name+".c", workload.Generate(p))
		pa := pointer.Analyze(irp)
		mem := memssa.Build(irp, pa)
		g := vfg.Build(irp, pa, mem, vfg.Options{})

		plain := vfg.Resolve(g)
		merged := vfg.ResolveWith(g, vfg.ResolveOptions{MergeEquivalent: true})
		for _, n := range g.Nodes {
			if plain.Of(n) != merged.Of(n) {
				t.Fatalf("%s: node %v: plain %v, merged %v", name, n, plain.Of(n), merged.Of(n))
			}
		}
		eq := vfg.ComputeAccessEquivalence(g)
		if eq.Merged(g) == 0 {
			t.Errorf("%s: no nodes merged; merging is vacuous", name)
		}
	}
}

// TestMergeEquivalentOnRandomPrograms extends the identity check to the
// fuzzer corpus.
func TestMergeEquivalentOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		irp := compile.MustSource("rand.c", src)
		pa := pointer.Analyze(irp)
		mem := memssa.Build(irp, pa)
		g := vfg.Build(irp, pa, mem, vfg.Options{})
		plain := vfg.Resolve(g)
		merged := vfg.ResolveWith(g, vfg.ResolveOptions{MergeEquivalent: true})
		for _, n := range g.Nodes {
			if plain.Of(n) != merged.Of(n) {
				t.Fatalf("seed %d: node %v: plain %v, merged %v\n%s",
					seed, n, plain.Of(n), merged.Of(n), src)
			}
		}
	}
}

// TestContextInsensitiveSoundOnRandomPrograms: CI ⊥ sets always contain
// the CS ⊥ sets.
func TestContextInsensitiveSoundOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		irp := compile.MustSource("rand.c", src)
		pa := pointer.Analyze(irp)
		mem := memssa.Build(irp, pa)
		g := vfg.Build(irp, pa, mem, vfg.Options{})
		cs := vfg.Resolve(g)
		ci := vfg.ResolveWith(g, vfg.ResolveOptions{ContextInsensitive: true})
		for _, n := range g.Nodes {
			if cs.Of(n) == vfg.Bottom && ci.Of(n) == vfg.Top {
				t.Fatalf("seed %d: node %v ⊥ under CS, ⊤ under CI", seed, n)
			}
		}
	}
}
