package vfg_test

import (
	"testing"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/vfg"
)

// These tables pin CriticalUses/ReachesCritical on the control-flow
// shapes the dominance-based optimizations trip over: zero-trip loops
// (the body may never run, yet its values and uses are part of the
// graph) and statically unreachable blocks (never executed, still
// walked — both functions are conservative over the whole CFG, and the
// instrumentation planner relies on that).

// mulMarker finds the VFG node of the unique `x * K` marker in the
// program; tests tag values of interest with distinct multipliers.
func mulMarker(t *testing.T, irp *ir.Program, g *vfg.Graph, k int64) *vfg.Node {
	t.Helper()
	for _, fn := range irp.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				bin, ok := in.(*ir.BinOp)
				if !ok || bin.Op != ir.OpMul {
					continue
				}
				if c, isConst := bin.Y.(*ir.Const); isConst && c.Val == k {
					n := g.RegNode(bin.Dst)
					if n == nil {
						t.Fatalf("marker *%d has no VFG node", k)
					}
					return n
				}
			}
		}
	}
	t.Fatalf("no *%d marker in program", k)
	return nil
}

// TestReachesCriticalEdgeCases drives both functions over zero-trip
// loops and unreachable blocks.
func TestReachesCriticalEdgeCases(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// markers maps a `* K` tag to whether the tagged value must
		// reach a critical use.
		markers map[int64]bool
	}{
		{
			// A while loop that may run zero times: the induction value
			// feeds the loop branch (critical) through the header phi;
			// values that only circulate through the body and the return
			// reach nothing critical.
			name: "zero-trip-while",
			src: `
int main(int c) {
  int i = c * 3;
  int acc = c * 5;
  int dead = c * 7;
  while (i) { i = i - 1; acc = acc + 1; }
  return acc + dead;
}`,
			markers: map[int64]bool{3: true, 5: false, 7: false},
		},
		{
			// The loop body never runs (constant-false condition), so the
			// body is dynamically dead — but its print is still a critical
			// use and the printed value must be marked for tracking.
			name: "zero-trip-dead-body",
			src: `
int main(int c) {
  int x = c * 3;
  int quiet = c * 5;
  while (0) { print(x); }
  return x + quiet;
}`,
			markers: map[int64]bool{3: true, 5: false},
		},
		{
			// A statically unreachable then-block: ReachesCritical walks
			// the whole CFG, so the value printed inside it still reaches
			// a critical use (conservative inclusion).
			name: "unreachable-then-block",
			src: `
int main(int c) {
  int x = c * 3;
  int y = c * 5;
  if (0) { print(x); }
  return x + y;
}`,
			markers: map[int64]bool{3: true, 5: false},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			irp, g, _ := build(t, tc.src, vfg.Options{})
			reach := vfg.ReachesCritical(g)
			for k, want := range tc.markers {
				n := mulMarker(t, irp, g, k)
				if got := reach[n.ID]; got != want {
					t.Errorf("marker *%d: ReachesCritical = %v, want %v", k, got, want)
				}
			}
		})
	}
}

// TestCriticalUsesInDeadCode pins the conservative contract directly:
// critical instructions inside never-executed blocks (a zero-trip loop
// body and a constant-false branch) are still collected, each attached
// to the node it uses.
func TestCriticalUsesInDeadCode(t *testing.T) {
	irp, g, _ := build(t, `
int main(int c) {
  int x = c * 3;
  while (0) { print(x); }
  if (0) { free(malloc(1)); }
  return x;
}`, vfg.Options{})
	uses := vfg.CriticalUses(g)
	n := mulMarker(t, irp, g, 3)
	var sawPrint bool
	for _, in := range uses[n] {
		if call, ok := in.(*ir.Call); ok && call.Builtin == ir.BuiltinPrint {
			sawPrint = true
		}
	}
	if !sawPrint {
		t.Error("print(x) in the zero-trip loop body was not collected as a critical use of x")
	}
	// The free() in the unreachable branch must appear as a critical use
	// of the malloc'd pointer.
	var sawFree bool
	for _, ins := range uses {
		for _, in := range ins {
			if call, ok := in.(*ir.Call); ok && call.Builtin == ir.BuiltinFree {
				sawFree = true
			}
		}
	}
	if !sawFree {
		t.Error("free() in the unreachable branch was not collected as a critical use")
	}
}

// TestZeroTripLoopGammaBottom pins the semantic companion: a variable
// assigned only inside a zero-trip-able loop is ⊥ at its post-loop
// critical use (the loop may not run), and ReachesCritical marks it.
func TestZeroTripLoopGammaBottom(t *testing.T) {
	irp, g, gm := build(t, `
int main(int c) {
  int u;
  while (c) { u = 1; c = 0; }
  print(u);
  return 0;
}`, vfg.Options{})
	reach := vfg.ReachesCritical(g)
	var checked int
	for _, fn := range irp.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				call, ok := in.(*ir.Call)
				if !ok || call.Builtin != ir.BuiltinPrint {
					continue
				}
				r, ok := call.Args[0].(*ir.Register)
				if !ok {
					t.Fatal("print argument is not a register")
				}
				n := g.RegNode(r)
				if n == nil {
					t.Fatal("print argument has no VFG node")
				}
				checked++
				if gm.Of(n) != vfg.Bottom {
					t.Error("u is ⊤ at print(u) despite the zero-trip path")
				}
				if !reach[n.ID] {
					t.Error("printed value does not reach a critical use")
				}
			}
		}
	}
	if checked == 0 {
		t.Fatal("test premise broken: no print call found")
	}
}
