package vfg_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/vfg"
)

func build(t *testing.T, src string, opts vfg.Options) (*ir.Program, *vfg.Graph, *vfg.Gamma) {
	t.Helper()
	irp := compile.MustSource("t.c", src)
	pa := pointer.Analyze(irp)
	mem := memssa.Build(irp, pa)
	g := vfg.Build(irp, pa, mem, opts)
	gm := vfg.Resolve(g)
	return irp, g, gm
}

// loadStates returns the Γ state of every load destination in fn.
func loadStates(g *vfg.Graph, gm *vfg.Gamma, fn *ir.Function) []vfg.State {
	var states []vfg.State
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if l, ok := in.(*ir.Load); ok {
				states = append(states, gm.Of(g.RegNode(l.Dst)))
			}
		}
	}
	return states
}

func TestFullyDefinedProgram(t *testing.T) {
	irp, g, gm := build(t, `
int g_var = 1;
int add(int a, int b) { return a + b; }
int main() {
  int x = add(g_var, 2);
  int *p = malloc(1);
  *p = x;
  return *p;
}`, vfg.Options{})
	for _, st := range loadStates(g, gm, irp.FuncByName("main")) {
		if st != vfg.Top {
			t.Errorf("load state = %v, want ⊤ (everything is defined)", st)
		}
	}
}

func TestUninitializedHeapIsBottom(t *testing.T) {
	irp, g, gm := build(t, `
int main() {
  int *p = malloc(2);
  return p[1];
}`, vfg.Options{})
	states := loadStates(g, gm, irp.FuncByName("main"))
	bottom := false
	for _, st := range states {
		if st == vfg.Bottom {
			bottom = true
		}
	}
	if !bottom {
		t.Error("load of uninitialized heap must be ⊥")
	}
}

func TestStrongUpdateKillsUndef(t *testing.T) {
	irp, g, gm := build(t, `
int main() {
  int a;
  int *p = &a;
  *p = 1;
  return a;
}`, vfg.Options{})
	// The load of a (the final return) must be ⊤: the store strongly
	// updates the concrete stack cell.
	states := loadStates(g, gm, irp.FuncByName("main"))
	for _, st := range states {
		if st != vfg.Top {
			t.Errorf("load after strong update = %v, want ⊤", st)
		}
	}
	// And the chi must be classified strong.
	found := false
	for _, kind := range g.StoreUpdates {
		if kind == vfg.UpdateStrong {
			found = true
		}
	}
	if !found {
		t.Errorf("no strong update recorded: %v", g.StoreUpdates)
	}
}

func TestWeakUpdateKeepsUndef(t *testing.T) {
	irp, g, gm := build(t, `
int main(int c) {
  int a;
  int b;
  int *q;
  if (c) { q = &a; } else { q = &b; }
  *q = 1;
  return a;     // may still be undefined (q may have targeted b)
}`, vfg.Options{})
	states := loadStates(g, gm, irp.FuncByName("main"))
	bottom := false
	for _, st := range states {
		if st == vfg.Bottom {
			bottom = true
		}
	}
	if !bottom {
		t.Error("load after weak update over {a,b} must stay ⊥")
	}
	multi := false
	for _, kind := range g.StoreUpdates {
		if kind == vfg.UpdateWeakMulti {
			multi = true
		}
	}
	if !multi {
		t.Errorf("store not classified weak-multi: %v", g.StoreUpdates)
	}
}

func TestSemiStrongUpdateFigure6(t *testing.T) {
	// The Figure 6 pattern: a heap object allocated and immediately
	// initialized inside a function called many times. A weak update
	// would leave the load ⊥ forever; the semi-strong update bypasses the
	// allocation's F.
	src := `
int foo() {
  int *q = malloc(1);
  *q = 0;
  return *q;
}
int main() { foo(); return foo(); }`

	// With semi-strong updates (default): the load is ⊤.
	irp, g, gm := build(t, src, vfg.Options{})
	for _, st := range loadStates(g, gm, irp.FuncByName("foo")) {
		if st != vfg.Top {
			t.Errorf("with semi-strong updates: load = %v, want ⊤", st)
		}
	}
	if g.SemiStrongCuts == 0 {
		t.Error("semi-strong rule never applied")
	}

	// Ablation: disabling semi-strong updates loses the result.
	irp2, g2, gm2 := build(t, src, vfg.Options{NoSemiStrong: true})
	bottom := false
	for _, st := range loadStates(g2, gm2, irp2.FuncByName("foo")) {
		if st == vfg.Bottom {
			bottom = true
		}
	}
	if !bottom {
		t.Error("without semi-strong updates the load should be ⊥ (weak update keeps alloc_F)")
	}
}

func TestContextSensitivity(t *testing.T) {
	irp, g, gm := build(t, `
int id(int x) { return x; }
int main(int c) {
  int u;
  if (c) { u = 1; }
  int a = id(u);   // undefined may enter here
  int b = id(5);   // but not here
  if (a) { print(1); }
  if (b) { print(2); }
  return 0;
}`, vfg.Options{})
	main := irp.FuncByName("main")
	// Find the two call results.
	var results []*ir.Register
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if call, ok := in.(*ir.Call); ok && call.Direct() != nil && call.Direct().Name == "id" {
				results = append(results, call.Dst)
			}
		}
	}
	if len(results) != 2 {
		t.Fatalf("found %d calls to id, want 2", len(results))
	}
	if st := gm.Of(g.RegNode(results[0])); st != vfg.Bottom {
		t.Errorf("id(u) = %v, want ⊥", st)
	}
	if st := gm.Of(g.RegNode(results[1])); st != vfg.Top {
		t.Errorf("id(5) = %v, want ⊤ (context-sensitive resolution)", st)
	}
}

func TestTopLevelOnlyIsConservative(t *testing.T) {
	irp, g, gm := build(t, `
int main() {
  int *p = calloc(1);
  return *p;      // defined, but Usher_TL cannot see it
}`, vfg.Options{TopLevelOnly: true})
	states := loadStates(g, gm, irp.FuncByName("main"))
	for _, st := range states {
		if st != vfg.Bottom {
			t.Errorf("TL-only load = %v, want ⊥ (loads are untracked)", st)
		}
	}
	_ = irp
}

func TestInterproceduralUndefThroughHeap(t *testing.T) {
	irp, g, gm := build(t, `
int *make() { return malloc(1); }
int use(int *p) { return *p; }
int main() {
  int *p = make();
  return use(p);
}`, vfg.Options{})
	states := loadStates(g, gm, irp.FuncByName("use"))
	bottom := false
	for _, st := range states {
		if st == vfg.Bottom {
			bottom = true
		}
	}
	if !bottom {
		t.Error("use() loads uninitialized heap; must be ⊥")
	}
}

func TestCallocInterprocedurallyDefined(t *testing.T) {
	irp, g, gm := build(t, `
int *make() { return calloc(4); }
int use(int *p) { return p[2]; }
int main() {
  int *p = make();
  return use(p);
}`, vfg.Options{})
	for _, st := range loadStates(g, gm, irp.FuncByName("use")) {
		if st != vfg.Top {
			t.Errorf("use() loads calloc'd memory = %v, want ⊤", st)
		}
	}
}

func TestGlobalsDefined(t *testing.T) {
	irp, g, gm := build(t, `
int g1;
int g2 = 7;
int main() { return g1 + g2; }`, vfg.Options{})
	for _, st := range loadStates(g, gm, irp.FuncByName("main")) {
		if st != vfg.Top {
			t.Errorf("global load = %v, want ⊤ (globals are default-initialized)", st)
		}
	}
}

func TestGlobalThroughCallChain(t *testing.T) {
	irp, g, gm := build(t, `
int acc;
void add(int v) { acc = acc + v; }
int total() { return acc; }
int main() {
  add(1);
  add(2);
  return total();
}`, vfg.Options{})
	for _, st := range loadStates(g, gm, irp.FuncByName("total")) {
		if st != vfg.Top {
			t.Errorf("total() = %v, want ⊤", st)
		}
	}
}

func TestReachesCritical(t *testing.T) {
	irp, g, _ := build(t, `
int main() {
  int a = 1;
  int b = a + 2;     // flows into the branch: needs tracking
  int dead = a * 3;  // flows nowhere critical
  if (b) { return 1; }
  return 0;
}`, vfg.Options{})
	reach := vfg.ReachesCritical(g)
	main := irp.FuncByName("main")
	var bReach, deadReach bool
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			bin, ok := in.(*ir.BinOp)
			if !ok {
				continue
			}
			n := g.RegNode(bin.Dst)
			switch bin.Op {
			case ir.OpAdd:
				bReach = reach[n.ID]
			case ir.OpMul:
				deadReach = reach[n.ID]
			}
		}
	}
	if !bReach {
		t.Error("b flows into a branch and must reach a critical node")
	}
	if deadReach {
		t.Error("dead value must not reach any critical node")
	}
}

func TestMissingReturnBottom(t *testing.T) {
	irp, g, gm := build(t, `
int f(int c) { if (c) { return 1; } }
int main() {
  int v = f(0);
  if (v) { return 1; }
  return 0;
}`, vfg.Options{})
	main := irp.FuncByName("main")
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if call, ok := in.(*ir.Call); ok && call.Dst != nil {
				if st := gm.Of(g.RegNode(call.Dst)); st != vfg.Bottom {
					t.Errorf("missing-return result = %v, want ⊥", st)
				}
			}
		}
	}
}
