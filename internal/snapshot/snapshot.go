// Package snapshot persists solved analysis artifacts — points-to sets,
// the call graph, object collapses, and per-configuration
// instrumentation plans — in a binary file keyed by a content hash of
// the program's IR, so a later run over the same program can warm-start:
// load the snapshot, verify the fingerprint, and skip the pointer solve
// and value-flow construction entirely.
//
// # File format (version 1)
//
//	offset  size  field
//	0       8     magic "USHSNAP1"
//	8       4     format version, uint32 little-endian
//	12      32    fingerprint: sha256 of ir.Print(prog)
//	44      ...   sections until EOF
//
// Each section is framed as
//
//	tag      4 bytes (ASCII)
//	length   uint32 little-endian, payload bytes
//	payload  length bytes
//	crc      uint32 little-endian, IEEE CRC-32 of payload
//
// Three section tags exist: "PTRS" (exactly one; the pointer-analysis
// export — solver stats, collapsed objects, interned location table,
// per-register points-to sets, call-graph edges), "VSUM" (zero or more,
// at most one per VFG variant; a resolved Γ as its ⊥ bit vector over
// node ids, so warm starts skip Γ resolution) and "PLAN" (zero or
// more; one instrumentation plan per configuration, with its Opt I/II/
// III statistics). Payload integers are unsigned varints (zigzag for
// the one signed field, constant values); object references are IDs,
// functions are indices into prog.Funcs, and registers are ids within
// their function — the same dense-index discipline as pointer.Export.
// (VSUM bitset words are fixed 8-byte little-endian, not varints.)
// Unknown tags are an error: the version field gates incompatible
// format evolution, while additive sections like VSUM keep the version
// — a new reader consumes old files unchanged, and an old reader
// treats a newer file exactly like corruption, falling back to the
// safe cold solve.
//
// # Failure discipline
//
// Read distinguishes the one expected mismatch from damage:
// ErrStale means the file is a well-formed snapshot of a DIFFERENT
// program (fingerprint mismatch) — the normal miss after source
// changes. Everything else (short file, bad magic, wrong version, CRC
// mismatch, out-of-range index) is a corruption error. Both are plain
// errors, never panics, so callers fall back to a cold solve.
package snapshot

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pointer"
)

const (
	magic   = "USHSNAP1"
	version = 1

	tagPointer = "PTRS"
	tagPlan    = "PLAN"
	tagVSum    = "VSUM"
)

// ErrStale reports a structurally valid snapshot whose fingerprint does
// not match the program being loaded for.
var ErrStale = errors.New("snapshot: fingerprint mismatch (snapshot is for a different program)")

// Snapshot is the in-memory form of one snapshot file: the solved
// pointer state plus any instrumentation plans that were computed.
type Snapshot struct {
	Pointer *pointer.Export
	Plans   []PlanEntry
	// Gammas holds the resolved Γ bit vectors of the VFG variants the
	// session materialized (the VSUM sections), so a warm start skips Γ
	// resolution — and with it the VFG-side re-derivation cost — not
	// just the pointer solve.
	Gammas []GammaEntry
}

// PlanEntry is one configuration's instrumentation plan with the
// optimization statistics its PlanResult carries.
type PlanEntry struct {
	Name           string
	Plan           *instrument.Plan
	MFCsSimplified int
	Redirected     int
	ChecksElided   int
	Demanded       int
}

// PlanByName returns the stored plan entry for a configuration.
func (s *Snapshot) PlanByName(name string) (PlanEntry, bool) {
	for _, pe := range s.Plans {
		if pe.Name == name {
			return pe, true
		}
	}
	return PlanEntry{}, false
}

// Fingerprint is the content hash snapshots are keyed by: the sha256 of
// the program's canonical text rendering. ir.Print is insensitive to
// the solver's only IR mutation (object collapsing), so a snapshot
// saved after solving still matches a fresh compile of the same source.
func Fingerprint(prog *ir.Program) [sha256.Size]byte {
	return sha256.Sum256([]byte(ir.Print(prog)))
}

// Path returns the file a snapshot of prog lives at under dir: the
// first 16 hex digits of the fingerprint, extension ".usnap". A
// different program hashes to a different path, so a lookup for a
// never-snapshotted program is a clean file-not-found miss.
func Path(dir string, prog *ir.Program) string {
	fp := Fingerprint(prog)
	return filepath.Join(dir, hex.EncodeToString(fp[:8])+".usnap")
}

// Save writes prog's snapshot under dir (created if needed) and returns
// the path. The write goes through a temp file and rename so a crashed
// save never leaves a truncated snapshot at the keyed path.
func Save(dir string, prog *ir.Program, snap *Snapshot) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	var buf bytes.Buffer
	if err := Write(&buf, prog, snap); err != nil {
		return "", err
	}
	path := Path(dir, prog)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	return path, nil
}

// Load reads the snapshot keyed to prog under dir. A missing file
// surfaces as an fs.ErrNotExist error (the normal cold-start miss);
// see Read for the stale/corrupt discipline.
func Load(dir string, prog *ir.Program) (*Snapshot, error) {
	data, err := os.ReadFile(Path(dir, prog))
	if err != nil {
		return nil, err
	}
	return Read(bytes.NewReader(data), prog)
}

// Write serializes snap, fingerprinted against prog.
func Write(w io.Writer, prog *ir.Program, snap *Snapshot) error {
	if snap.Pointer == nil {
		return errors.New("snapshot: nothing to write (no pointer export)")
	}
	ctx, err := newEncodeContext(prog)
	if err != nil {
		return err
	}
	var hdr bytes.Buffer
	hdr.WriteString(magic)
	var v4 [4]byte
	binary.LittleEndian.PutUint32(v4[:], version)
	hdr.Write(v4[:])
	fp := Fingerprint(prog)
	hdr.Write(fp[:])
	if _, err := w.Write(hdr.Bytes()); err != nil {
		return err
	}
	payload, err := encodePointer(ctx, snap.Pointer)
	if err != nil {
		return err
	}
	if err := writeSection(w, tagPointer, payload); err != nil {
		return err
	}
	for _, ge := range snap.Gammas {
		payload, err := encodeGamma(ge)
		if err != nil {
			return err
		}
		if err := writeSection(w, tagVSum, payload); err != nil {
			return err
		}
	}
	for _, pe := range snap.Plans {
		payload, err := encodePlan(ctx, pe)
		if err != nil {
			return err
		}
		if err := writeSection(w, tagPlan, payload); err != nil {
			return err
		}
	}
	return nil
}

// Read parses a snapshot and resolves it against prog. The fingerprint
// is verified before any section is decoded; a mismatch is ErrStale.
func Read(r io.Reader, prog *ir.Program) (*Snapshot, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("snapshot: read: %w", err)
	}
	if len(data) < len(magic)+4+sha256.Size {
		return nil, errors.New("snapshot: file too short for header")
	}
	if string(data[:len(magic)]) != magic {
		return nil, errors.New("snapshot: bad magic")
	}
	data = data[len(magic):]
	if v := binary.LittleEndian.Uint32(data[:4]); v != version {
		return nil, fmt.Errorf("snapshot: unsupported format version %d (want %d)", v, version)
	}
	data = data[4:]
	want := Fingerprint(prog)
	if !bytes.Equal(data[:sha256.Size], want[:]) {
		return nil, ErrStale
	}
	data = data[sha256.Size:]

	ctx, err := newDecodeContext(prog)
	if err != nil {
		return nil, err
	}
	snap := &Snapshot{}
	for len(data) > 0 {
		tag, payload, rest, err := readSection(data)
		if err != nil {
			return nil, err
		}
		data = rest
		switch tag {
		case tagPointer:
			if snap.Pointer != nil {
				return nil, errors.New("snapshot: duplicate PTRS section")
			}
			snap.Pointer, err = decodePointer(ctx, payload)
		case tagPlan:
			var pe PlanEntry
			pe, err = decodePlan(ctx, payload)
			if err == nil {
				snap.Plans = append(snap.Plans, pe)
			}
		case tagVSum:
			var ge GammaEntry
			ge, err = decodeGamma(payload)
			if err == nil {
				if _, dup := snap.GammaByVariant(ge.Variant); dup {
					err = fmt.Errorf("snapshot: duplicate VSUM section for variant %q", ge.Variant)
				} else {
					snap.Gammas = append(snap.Gammas, ge)
				}
			}
		default:
			err = fmt.Errorf("snapshot: unknown section tag %q", tag)
		}
		if err != nil {
			return nil, err
		}
	}
	if snap.Pointer == nil {
		return nil, errors.New("snapshot: missing PTRS section")
	}
	return snap, nil
}

// writeSection frames one payload: tag, length, bytes, CRC.
func writeSection(w io.Writer, tag string, payload []byte) error {
	var frame [8]byte
	copy(frame[:4], tag)
	binary.LittleEndian.PutUint32(frame[4:], uint32(len(payload)))
	if _, err := w.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.Write(payload); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	_, err := w.Write(crc[:])
	return err
}

// readSection unframes the next section, verifying its CRC.
func readSection(data []byte) (tag string, payload, rest []byte, err error) {
	if len(data) < 8 {
		return "", nil, nil, errors.New("snapshot: truncated section header")
	}
	tag = string(data[:4])
	n := binary.LittleEndian.Uint32(data[4:8])
	data = data[8:]
	// Compare in uint64: a hostile length near MaxUint32 would overflow
	// n+4 in uint32 arithmetic, pass the truncation check, and panic
	// slicing below instead of returning the corruption error.
	if uint64(len(data)) < uint64(n)+4 {
		return "", nil, nil, fmt.Errorf("snapshot: section %q truncated", tag)
	}
	payload = data[:n]
	want := binary.LittleEndian.Uint32(data[n : n+4])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return "", nil, nil, fmt.Errorf("snapshot: section %q checksum mismatch", tag)
	}
	return tag, payload, data[n+4:], nil
}
