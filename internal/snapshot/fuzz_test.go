package snapshot

import (
	"bytes"
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/pointer"
)

// FuzzSnapshotRead throws arbitrary bytes — seeded with a genuine
// snapshot so the fuzzer starts past the header checks — at the full
// load path: Read must return an error or a snapshot, never panic, and
// an accepted snapshot must survive pointer.Import (the component that
// sizes dense tables from decoded indices).
func FuzzSnapshotRead(f *testing.F) {
	prog, err := compile.Source("fuzz.c", corruptSrc)
	if err != nil {
		f.Fatal(err)
	}
	st := pipeline.NewStore(prog, nil)
	pa, err := st.Pointer()
	if err != nil {
		f.Fatal(err)
	}
	ex, err := pa.Export(prog)
	if err != nil {
		f.Fatal(err)
	}
	pr, err := st.Plan(pipeline.PlanSpec{Name: "Usher", OptI: true, OptII: true})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	err = Write(&buf, prog, &Snapshot{
		Pointer: ex,
		Plans:   []PlanEntry{{Name: "Usher", Plan: pr.Plan}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add(buf.Bytes()[:len(buf.Bytes())/2])
	f.Add([]byte(magic))

	f.Fuzz(func(t *testing.T, data []byte) {
		// Each iteration needs a fresh program: decode resolves against
		// live IR, and pointer.Import mutates it (object collapsing).
		prog, err := compile.Source("fuzz.c", corruptSrc)
		if err != nil {
			t.Fatal(err)
		}
		snap, err := Read(bytes.NewReader(data), prog)
		if err != nil {
			return
		}
		if snap.Pointer == nil {
			t.Fatal("accepted snapshot without PTRS section")
		}
		if _, err := pointer.Import(prog, snap.Pointer); err != nil {
			// A decoded-but-unimportable snapshot is acceptable (Import
			// applies stricter cross-entity checks); it must only fail
			// with an error, which reaching here demonstrates.
			return
		}
	})
}
