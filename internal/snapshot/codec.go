package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pointer"
)

// This file is the payload codec: varint-based encoders/decoders for
// the PTRS and PLAN sections. Encoding references program entities by
// dense index (functions by position in prog.Funcs, objects by ID,
// registers by id within their function); decoding resolves every
// index against the live program and fails with an error — never a
// panic — on anything out of range, so a damaged payload that survives
// the CRC still cannot produce a wild pointer.

// enc is an append-only varint writer.
type enc struct{ buf []byte }

func (e *enc) u(v uint64)  { e.buf = binary.AppendUvarint(e.buf, v) }
func (e *enc) i(v int64)   { e.buf = binary.AppendVarint(e.buf, v) }
func (e *enc) b(v bool)    { e.buf = append(e.buf, boolByte(v)) }
func (e *enc) byte(v byte) { e.buf = append(e.buf, v) }
func (e *enc) str(s string) {
	e.u(uint64(len(s)))
	e.buf = append(e.buf, s...)
}
func (e *enc) bools(bs []bool) {
	e.u(uint64(len(bs)))
	for _, v := range bs {
		e.b(v)
	}
}

func boolByte(v bool) byte {
	if v {
		return 1
	}
	return 0
}

// dec is the bounds-checked mirror of enc: the first failure latches
// err and every later read returns a zero value.
type dec struct {
	buf []byte
	err error
}

func (d *dec) fail(msg string) {
	if d.err == nil {
		d.err = errors.New("snapshot: decode: " + msg)
	}
}

func (d *dec) u() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("bad uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *dec) i() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("bad varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// n reads a count and sanity-bounds it against the remaining payload so
// a damaged length cannot drive a huge allocation.
func (d *dec) n() int {
	v := d.u()
	if d.err == nil && v > uint64(len(d.buf)) {
		d.fail("count exceeds remaining payload")
		return 0
	}
	return int(v)
}

func (d *dec) byte() byte {
	if d.err != nil {
		return 0
	}
	if len(d.buf) == 0 {
		d.fail("unexpected end of payload")
		return 0
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	return v
}

func (d *dec) b() bool { return d.byte() != 0 }

func (d *dec) str() string {
	n := d.n()
	if d.err != nil || n > len(d.buf) {
		d.fail("string exceeds payload")
		return ""
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s
}

func (d *dec) bools() []bool {
	n := d.n()
	if d.err != nil {
		return nil
	}
	bs := make([]bool, n)
	for i := range bs {
		bs[i] = d.b()
	}
	return bs
}

func (d *dec) done() error {
	if d.err != nil {
		return d.err
	}
	if len(d.buf) != 0 {
		return fmt.Errorf("snapshot: decode: %d trailing bytes in section", len(d.buf))
	}
	return nil
}

// encodeContext indexes the program for encoding.
type encodeContext struct {
	fnIdx map[*ir.Function]int
}

func newEncodeContext(prog *ir.Program) (*encodeContext, error) {
	ctx := &encodeContext{fnIdx: make(map[*ir.Function]int, len(prog.Funcs))}
	for i, fn := range prog.Funcs {
		ctx.fnIdx[fn] = i
	}
	return ctx, nil
}

// decodeContext resolves indices back to program entities.
type decodeContext struct {
	prog    *ir.Program
	objByID map[int]*ir.Object
	regTabs map[*ir.Function]map[int]*ir.Register
}

func newDecodeContext(prog *ir.Program) (*decodeContext, error) {
	ctx := &decodeContext{
		prog:    prog,
		objByID: make(map[int]*ir.Object),
		regTabs: make(map[*ir.Function]map[int]*ir.Register),
	}
	for _, o := range prog.Objects() {
		ctx.objByID[o.ID] = o
	}
	return ctx, nil
}

func (ctx *decodeContext) fn(idx int) (*ir.Function, error) {
	if idx < 0 || idx >= len(ctx.prog.Funcs) {
		return nil, fmt.Errorf("snapshot: decode: function index %d out of range", idx)
	}
	return ctx.prog.Funcs[idx], nil
}

func (ctx *decodeContext) obj(id int) (*ir.Object, error) {
	o := ctx.objByID[id]
	if o == nil {
		return nil, fmt.Errorf("snapshot: decode: object #%d not in program", id)
	}
	return o, nil
}

// regs returns fn's register table (id → *Register), built once by
// walking parameters, defining instructions, and operands. Every
// register a plan can reference appears there: SSA guarantees each used
// register is a parameter or has a defining instruction in fn.
func (ctx *decodeContext) regs(fn *ir.Function) map[int]*ir.Register {
	if t, ok := ctx.regTabs[fn]; ok {
		return t
	}
	t := make(map[int]*ir.Register)
	add := func(r *ir.Register) {
		if r != nil {
			t[r.ID] = r
		}
	}
	for _, p := range fn.Params {
		add(p)
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			add(in.Defines())
			for _, op := range in.Operands() {
				if r, ok := op.(*ir.Register); ok {
					add(r)
				}
			}
		}
	}
	ctx.regTabs[fn] = t
	return t
}

// ---- PTRS section ----

// Location tags inside the PTRS payload.
const (
	locObj = 0 // object location: object ID, field
	locFn  = 1 // function location: function index
)

func encodePointer(ctx *encodeContext, ex *pointer.Export) ([]byte, error) {
	e := &enc{}
	ss := ex.Stats
	for _, v := range []int{ss.Nodes, ss.Locations, ss.Constraints, ss.CopyEdges, ss.Visits, ss.Waves, ss.SCCsCollapsed} {
		e.u(uint64(v))
	}
	e.u(uint64(len(ex.Collapsed)))
	for _, id := range ex.Collapsed {
		e.u(uint64(id))
	}
	e.u(uint64(len(ex.Locs)))
	for _, l := range ex.Locs {
		switch {
		case l.Fn != nil:
			fi, ok := ctx.fnIdx[l.Fn]
			if !ok {
				return nil, fmt.Errorf("snapshot: encode: location function %s not in program", l.Fn.Name)
			}
			e.byte(locFn)
			e.u(uint64(fi))
		case l.Obj != nil:
			e.byte(locObj)
			e.u(uint64(l.Obj.ID))
			e.u(uint64(l.Field))
		default:
			return nil, errors.New("snapshot: encode: empty location")
		}
	}
	e.u(uint64(len(ex.Regs)))
	for _, rp := range ex.Regs {
		e.u(uint64(rp.Fn))
		e.u(uint64(rp.Reg))
		e.u(uint64(len(rp.Locs)))
		for _, li := range rp.Locs {
			e.u(uint64(li))
		}
	}
	e.u(uint64(len(ex.Calls)))
	for _, ce := range ex.Calls {
		e.u(uint64(ce.Site))
		e.u(uint64(len(ce.Callees)))
		for _, fi := range ce.Callees {
			e.u(uint64(fi))
		}
	}
	return e.buf, nil
}

func decodePointer(ctx *decodeContext, payload []byte) (*pointer.Export, error) {
	d := &dec{buf: payload}
	ex := &pointer.Export{}
	ex.Stats.Nodes = int(d.u())
	ex.Stats.Locations = int(d.u())
	ex.Stats.Constraints = int(d.u())
	ex.Stats.CopyEdges = int(d.u())
	ex.Stats.Visits = int(d.u())
	ex.Stats.Waves = int(d.u())
	ex.Stats.SCCsCollapsed = int(d.u())
	for i, n := 0, d.n(); i < n && d.err == nil; i++ {
		ex.Collapsed = append(ex.Collapsed, int(d.u()))
	}
	for i, n := 0, d.n(); i < n && d.err == nil; i++ {
		var l pointer.Loc
		switch tag := d.byte(); tag {
		case locFn:
			fn, err := ctx.fn(int(d.u()))
			if err != nil {
				return nil, err
			}
			l.Fn = fn
		case locObj:
			obj, err := ctx.obj(int(d.u()))
			if err != nil {
				return nil, err
			}
			l.Obj = obj
			l.Field = int(d.u())
		default:
			d.fail(fmt.Sprintf("unknown location tag %d", tag))
		}
		ex.Locs = append(ex.Locs, l)
	}
	for i, n := 0, d.n(); i < n && d.err == nil; i++ {
		rp := pointer.RegPts{Fn: int(d.u()), Reg: int(d.u())}
		// Resolve the function and register here, not just in
		// pointer.Import: Import sizes per-function tables by the raw
		// register id, so an unvalidated id from a hostile payload would
		// drive an enormous allocation before Import could reject it.
		if d.err == nil {
			fn, err := ctx.fn(rp.Fn)
			if err != nil {
				return nil, err
			}
			if ctx.regs(fn)[rp.Reg] == nil {
				return nil, fmt.Errorf("snapshot: decode: points-to register id %d not in %s", rp.Reg, fn.Name)
			}
		}
		for j, m := 0, d.n(); j < m && d.err == nil; j++ {
			rp.Locs = append(rp.Locs, int32(d.u()))
		}
		ex.Regs = append(ex.Regs, rp)
	}
	for i, n := 0, d.n(); i < n && d.err == nil; i++ {
		ce := pointer.CallEdges{Site: int(d.u())}
		for j, m := 0, d.n(); j < m && d.err == nil; j++ {
			ce.Callees = append(ce.Callees, int32(d.u()))
		}
		ex.Calls = append(ex.Calls, ce)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return ex, nil
}

// ---- PLAN section ----

// Value tags inside the PLAN payload.
const (
	valNil        = 0
	valRegister   = 1 // register id (within the plan function)
	valConst      = 2 // zigzag varint constant
	valFuncValue  = 3 // function index
	valGlobalAddr = 4 // object ID
)

func encodeValue(ctx *encodeContext, e *enc, v ir.Value) error {
	switch v := v.(type) {
	case nil:
		e.byte(valNil)
	case *ir.Register:
		e.byte(valRegister)
		e.u(uint64(v.ID))
	case *ir.Const:
		e.byte(valConst)
		e.i(v.Val)
	case *ir.FuncValue:
		fi, ok := ctx.fnIdx[v.Fn]
		if !ok {
			return fmt.Errorf("snapshot: encode: function value %s not in program", v.Fn.Name)
		}
		e.byte(valFuncValue)
		e.u(uint64(fi))
	case *ir.GlobalAddr:
		e.byte(valGlobalAddr)
		e.u(uint64(v.Obj.ID))
	default:
		return fmt.Errorf("snapshot: encode: unsupported value type %T in plan", v)
	}
	return nil
}

func decodeValue(ctx *decodeContext, d *dec, regs map[int]*ir.Register) (ir.Value, error) {
	switch tag := d.byte(); tag {
	case valNil:
		return nil, nil
	case valRegister:
		id := int(d.u())
		if d.err != nil {
			return nil, d.err
		}
		r := regs[id]
		if r == nil {
			return nil, fmt.Errorf("snapshot: decode: register id %d not in function", id)
		}
		return r, nil
	case valConst:
		return ir.IntConst(d.i()), nil
	case valFuncValue:
		fn, err := ctx.fn(int(d.u()))
		if err != nil {
			return nil, err
		}
		return &ir.FuncValue{Fn: fn}, nil
	case valGlobalAddr:
		obj, err := ctx.obj(int(d.u()))
		if err != nil {
			return nil, err
		}
		return &ir.GlobalAddr{Obj: obj}, nil
	default:
		if d.err != nil {
			return nil, d.err
		}
		return nil, fmt.Errorf("snapshot: decode: unknown value tag %d", tag)
	}
}

func encodePlan(ctx *encodeContext, pe PlanEntry) ([]byte, error) {
	if pe.Plan == nil {
		return nil, fmt.Errorf("snapshot: encode: plan %q is nil", pe.Name)
	}
	e := &enc{}
	e.str(pe.Name)
	e.str(pe.Plan.Name)
	for _, v := range []int{pe.MFCsSimplified, pe.Redirected, pe.ChecksElided, pe.Demanded} {
		e.u(uint64(v))
	}
	// Functions in prog.Funcs order for a deterministic encoding.
	type fnPlan struct {
		idx int
		fp  *instrument.FnPlan
	}
	fns := make([]fnPlan, 0, len(pe.Plan.Fns))
	for fn, fp := range pe.Plan.Fns {
		fi, ok := ctx.fnIdx[fn]
		if !ok {
			return nil, fmt.Errorf("snapshot: encode: planned function %s not in program", fn.Name)
		}
		fns = append(fns, fnPlan{fi, fp})
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].idx < fns[j].idx })
	e.u(uint64(len(fns)))
	for _, f := range fns {
		fp := f.fp
		e.u(uint64(f.idx))
		e.bools(fp.ParamRecv)
		e.bools(fp.ParamSetT)
		e.b(fp.RetSend)
		ids := fp.ShadowedRegIDs()
		e.u(uint64(len(ids)))
		for _, id := range ids {
			e.u(uint64(id))
		}
		labels := make([]int, 0, len(fp.Items))
		for l := range fp.Items {
			labels = append(labels, l)
		}
		sort.Ints(labels)
		e.u(uint64(len(labels)))
		for _, l := range labels {
			items := fp.Items[l]
			e.u(uint64(l))
			e.u(uint64(len(items)))
			for _, it := range items {
				e.byte(byte(it.Kind))
				if it.Dst == nil {
					e.u(0)
				} else {
					e.u(uint64(it.Dst.ID) + 1)
				}
				if err := encodeValue(ctx, e, it.Val); err != nil {
					return nil, err
				}
				e.u(uint64(len(it.Srcs)))
				for _, s := range it.Srcs {
					if err := encodeValue(ctx, e, s); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return e.buf, nil
}

func decodePlan(ctx *decodeContext, payload []byte) (PlanEntry, error) {
	d := &dec{buf: payload}
	pe := PlanEntry{Name: d.str()}
	plan := &instrument.Plan{Name: d.str(), Fns: make(map[*ir.Function]*instrument.FnPlan)}
	pe.MFCsSimplified = int(d.u())
	pe.Redirected = int(d.u())
	pe.ChecksElided = int(d.u())
	pe.Demanded = int(d.u())
	for i, n := 0, d.n(); i < n && d.err == nil; i++ {
		fn, err := ctx.fn(int(d.u()))
		if err != nil {
			return PlanEntry{}, err
		}
		fp := &instrument.FnPlan{Fn: fn, Items: make(map[int][]instrument.Item)}
		fp.ParamRecv = d.bools()
		fp.ParamSetT = d.bools()
		fp.RetSend = d.b()
		regs := ctx.regs(fn)
		for j, m := 0, d.n(); j < m && d.err == nil; j++ {
			// MarkShadowedID grows a dense []bool up to the id, so the id
			// must resolve to a live register before it sizes anything.
			id := int(d.u())
			if d.err != nil {
				break
			}
			if regs[id] == nil {
				return PlanEntry{}, fmt.Errorf("snapshot: decode: shadowed register id %d not in %s", id, fn.Name)
			}
			fp.MarkShadowedID(id)
		}
		for j, m := 0, d.n(); j < m && d.err == nil; j++ {
			label := int(d.u())
			for k, c := 0, d.n(); k < c && d.err == nil; k++ {
				it := instrument.Item{Kind: instrument.ItemKind(d.byte())}
				if it.Kind < instrument.PropCompute || it.Kind > instrument.MemShadowCopy {
					d.fail(fmt.Sprintf("unknown item kind %d", it.Kind))
					break
				}
				if did := d.u(); did != 0 {
					r := regs[int(did-1)]
					if r == nil {
						return PlanEntry{}, fmt.Errorf("snapshot: decode: item dst register %d not in %s", did-1, fn.Name)
					}
					it.Dst = r
				}
				val, err := decodeValue(ctx, d, regs)
				if err != nil {
					return PlanEntry{}, err
				}
				it.Val = val
				for s, ns := 0, d.n(); s < ns && d.err == nil; s++ {
					sv, err := decodeValue(ctx, d, regs)
					if err != nil {
						return PlanEntry{}, err
					}
					it.Srcs = append(it.Srcs, sv)
				}
				fp.Items[label] = append(fp.Items[label], it)
			}
		}
		if d.err == nil {
			plan.Fns[fn] = fp
		}
	}
	if err := d.done(); err != nil {
		return PlanEntry{}, err
	}
	pe.Plan = plan
	return pe, nil
}
