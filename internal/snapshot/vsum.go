package snapshot

import (
	"encoding/binary"
	"fmt"

	"github.com/valueflow/usher/internal/bitset"
)

// This file is the VSUM section codec. A VSUM section stores one graph
// variant's resolved Γ as its ⊥ bit vector over VFG node ids: the node
// count the resolution ran against followed by the raw bitset words.
// Graph construction is deterministic, so node numbering is reproducible
// for an identical program (the fingerprint pins that), and a warm start
// can rebuild the Γ without running resolution; the node count is
// re-checked against the rebuilt graph before the seed is used.

// Gamma graph-variant labels, mirroring the pipeline store's keys.
const (
	GammaFull = "full"
	GammaTL   = "tl"
)

// GammaEntry is one graph variant's resolved Γ.
type GammaEntry struct {
	Variant string
	Nodes   int
	Bottom  *bitset.Set
}

// GammaByVariant returns the stored Γ entry for a graph variant.
func (s *Snapshot) GammaByVariant(variant string) (GammaEntry, bool) {
	for _, ge := range s.Gammas {
		if ge.Variant == variant {
			return ge, true
		}
	}
	return GammaEntry{}, false
}

func encodeGamma(ge GammaEntry) ([]byte, error) {
	if ge.Variant != GammaFull && ge.Variant != GammaTL {
		return nil, fmt.Errorf("snapshot: unknown gamma variant %q", ge.Variant)
	}
	e := &enc{}
	e.str(ge.Variant)
	e.u(uint64(ge.Nodes))
	words := ge.Bottom.Words()
	e.u(uint64(len(words)))
	for _, w := range words {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, w)
	}
	return e.buf, nil
}

func decodeGamma(payload []byte) (GammaEntry, error) {
	d := &dec{buf: payload}
	var ge GammaEntry
	ge.Variant = d.str()
	if d.err == nil && ge.Variant != GammaFull && ge.Variant != GammaTL {
		return GammaEntry{}, fmt.Errorf("snapshot: unknown gamma variant %q", ge.Variant)
	}
	nodes := d.u()
	if d.err == nil && nodes > 1<<48 {
		d.fail("gamma node count out of range")
	}
	nw := d.u()
	// The word vector is sized to the highest ⊥ id, so it never exceeds
	// one word per 64 nodes; both bounds keep a damaged length from
	// driving a huge allocation.
	if d.err == nil && (nw > uint64(len(d.buf))/8 || nw > (nodes+63)/64) {
		d.fail("gamma word count out of range")
	}
	if d.err != nil {
		return GammaEntry{}, d.err
	}
	ge.Nodes = int(nodes)
	words := make([]uint64, nw)
	for i := range words {
		words[i] = binary.LittleEndian.Uint64(d.buf[8*i:])
	}
	d.buf = d.buf[8*nw:]
	ge.Bottom = bitset.FromWords(words)
	return ge, nil
}
