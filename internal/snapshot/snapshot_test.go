package snapshot_test

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/snapshot"
	"github.com/valueflow/usher/internal/workload"
)

// compileFresh compiles src through the standard pass stack.
func compileFresh(t *testing.T, name, src string) *ir.Program {
	t.Helper()
	prog, err := usher.Compile(name, src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		t.Fatalf("%s: passes: %v", name, err)
	}
	return prog
}

// snapSpecs are the configurations the round-trip stores plans for: the
// full-instrumentation extreme and a guided, optimized one.
var snapSpecs = []pipeline.PlanSpec{
	{Name: "MSan", Full: true},
	{Name: "Usher", OptI: true, OptII: true},
}

// buildSnapshot solves prog and assembles the snapshot a warm start
// would persist: the pointer export plus both configurations' plans.
func buildSnapshot(t *testing.T, prog *ir.Program) *snapshot.Snapshot {
	t.Helper()
	st := pipeline.NewStore(prog, nil)
	pa, err := st.Pointer()
	if err != nil {
		t.Fatalf("pointer: %v", err)
	}
	ex, err := pa.Export(prog)
	if err != nil {
		t.Fatalf("export: %v", err)
	}
	snap := &snapshot.Snapshot{Pointer: ex}
	for _, spec := range snapSpecs {
		pr, err := st.Plan(spec)
		if err != nil {
			t.Fatalf("plan %s: %v", spec.Name, err)
		}
		snap.Plans = append(snap.Plans, snapshot.PlanEntry{
			Name:           spec.Name,
			Plan:           pr.Plan,
			MFCsSimplified: pr.MFCsSimplified,
			Redirected:     pr.Redirected,
			ChecksElided:   pr.ChecksElided,
			Demanded:       pr.Demanded,
		})
	}
	return snap
}

// corpusSources returns a few checked-in example programs plus a
// generated workload, as (name, source) pairs.
func corpusSources(t *testing.T) map[string]string {
	t.Helper()
	srcs := make(map[string]string)
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		srcs[filepath.Base(f)] = string(data)
	}
	srcs["solver-small"] = workload.GenerateLarge(workload.LargeProfiles[0])
	return srcs
}

// TestSnapshotRoundTrip pins the whole serialization boundary: a
// snapshot written from one compile and read back against a FRESH
// compile of the same source must decode to structurally identical
// artifacts. Byte-for-byte re-encoding equality is the strongest form
// of that claim (every index is position-based and compiles are
// deterministic); plan fingerprints and an Import over the fresh
// program additionally pin the semantic surface downstream passes see.
func TestSnapshotRoundTrip(t *testing.T) {
	for name, src := range corpusSources(t) {
		progA := compileFresh(t, name, src)
		snapA := buildSnapshot(t, progA)
		var fileA bytes.Buffer
		if err := snapshot.Write(&fileA, progA, snapA); err != nil {
			t.Fatalf("%s: write: %v", name, err)
		}

		progB := compileFresh(t, name, src)
		snapB, err := snapshot.Read(bytes.NewReader(fileA.Bytes()), progB)
		if err != nil {
			t.Fatalf("%s: read: %v", name, err)
		}
		var fileB bytes.Buffer
		if err := snapshot.Write(&fileB, progB, snapB); err != nil {
			t.Fatalf("%s: re-write: %v", name, err)
		}
		if !bytes.Equal(fileA.Bytes(), fileB.Bytes()) {
			t.Errorf("%s: decoded snapshot re-encodes differently (%d vs %d bytes)",
				name, fileA.Len(), fileB.Len())
		}
		for i, peA := range snapA.Plans {
			peB := snapB.Plans[i]
			if peA.Name != peB.Name {
				t.Fatalf("%s: plan %d name %q != %q", name, i, peB.Name, peA.Name)
			}
			if got, want := peB.Plan.Fingerprint(), peA.Plan.Fingerprint(); got != want {
				t.Errorf("%s: plan %s fingerprint diverges after round trip", name, peA.Name)
			}
			if peB.MFCsSimplified != peA.MFCsSimplified || peB.Redirected != peA.Redirected ||
				peB.ChecksElided != peA.ChecksElided || peB.Demanded != peA.Demanded {
				t.Errorf("%s: plan %s stats diverge: %+v vs %+v", name, peA.Name, peB, peA)
			}
		}
		if _, err := pointer.Import(progB, snapB.Pointer); err != nil {
			t.Errorf("%s: imported pointer export rejected: %v", name, err)
		}
		if snapB.Pointer.Stats != snapA.Pointer.Stats {
			t.Errorf("%s: solver stats diverge: %+v vs %+v",
				name, snapB.Pointer.Stats, snapA.Pointer.Stats)
		}
	}
}

// TestSnapshotSaveLoad pins the keyed file layer: Save under a dir,
// Load finds it by fingerprint; a different program misses with
// fs.ErrNotExist (distinct hash, distinct path).
func TestSnapshotSaveLoad(t *testing.T) {
	dir := t.TempDir()
	src := workload.Generate(workload.Profiles[0])
	prog := compileFresh(t, "save-load", src)
	snap := buildSnapshot(t, prog)

	path, err := snapshot.Save(dir, prog, snap)
	if err != nil {
		t.Fatalf("save: %v", err)
	}
	if want := snapshot.Path(dir, prog); path != want {
		t.Errorf("save path %q != keyed path %q", path, want)
	}
	if _, err := snapshot.Load(dir, prog); err != nil {
		t.Errorf("load after save: %v", err)
	}

	other := compileFresh(t, "other", workload.Generate(workload.Profiles[1]))
	if _, err := snapshot.Load(dir, other); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("load of unsnapshotted program: got %v, want fs.ErrNotExist", err)
	}
}

// TestSnapshotStale pins the fingerprint gate: a well-formed snapshot
// of program A read against program B is ErrStale, nothing else.
func TestSnapshotStale(t *testing.T) {
	progA := compileFresh(t, "a", workload.Generate(workload.Profiles[0]))
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, progA, buildSnapshot(t, progA)); err != nil {
		t.Fatal(err)
	}
	progB := compileFresh(t, "b", workload.Generate(workload.Profiles[1]))
	if _, err := snapshot.Read(bytes.NewReader(buf.Bytes()), progB); !errors.Is(err, snapshot.ErrStale) {
		t.Errorf("stale read: got %v, want ErrStale", err)
	}
}

// TestSnapshotCorrupt pins the damage discipline: every mutilation of
// the file surfaces as a non-stale error — never a panic, never a
// silently wrong snapshot.
func TestSnapshotCorrupt(t *testing.T) {
	prog := compileFresh(t, "corrupt", workload.Generate(workload.Profiles[0]))
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, prog, buildSnapshot(t, prog)); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	mutations := map[string]func([]byte) []byte{
		"bad magic": func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bad version": func(b []byte) []byte {
			b[8] = 0xee
			return b
		},
		"payload bit flip": func(b []byte) []byte {
			b[len(b)/2] ^= 0x10
			return b
		},
		"truncated section": func(b []byte) []byte { return b[:len(b)-3] },
		"truncated header":  func(b []byte) []byte { return b[:20] },
		"unknown trailing section": func(b []byte) []byte {
			return append(b, 'J', 'U', 'N', 'K', 0, 0, 0, 0, 0, 0, 0, 0)
		},
	}
	for name, mut := range mutations {
		b := mut(append([]byte(nil), good...))
		_, err := snapshot.Read(bytes.NewReader(b), prog)
		if err == nil {
			t.Errorf("%s: corrupted snapshot accepted", name)
		} else if errors.Is(err, snapshot.ErrStale) && name != "payload bit flip" {
			t.Errorf("%s: corruption misreported as stale: %v", name, err)
		}
	}
}
