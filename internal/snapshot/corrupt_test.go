package snapshot

// Hostile-input tests for the decoder. CRC framing catches random
// corruption, but a CRC is a checksum, not a MAC: an adversarial
// snapshot can carry any payload with a perfectly valid checksum, so
// every decoded length and index must be bounded against the live
// program before it sizes an allocation. These tests craft such
// payloads directly with the package's own encoder.

import (
	"bytes"
	"encoding/binary"
	"runtime"
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pipeline"
)

const corruptSrc = `
int helper(int x) {
  int y;
  if (x > 2) { y = x; }
  return y + 1;
}
int main() {
  int acc = 0;
  for (int i = 0; i < 5; i++) { acc += helper(i); }
  print(acc);
  return 0;
}
`

func corruptProg(t *testing.T) *ir.Program {
	t.Helper()
	prog, err := compile.Source("corrupt.c", corruptSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// header renders the magic/version/fingerprint preamble for prog.
func header(prog *ir.Program) []byte {
	var buf bytes.Buffer
	buf.WriteString(magic)
	var v4 [4]byte
	binary.LittleEndian.PutUint32(v4[:], version)
	buf.Write(v4[:])
	fp := Fingerprint(prog)
	buf.Write(fp[:])
	return buf.Bytes()
}

// section frames payload under tag with a valid CRC.
func section(tag string, payload []byte) []byte {
	var buf bytes.Buffer
	if err := writeSection(&buf, tag, payload); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// emptyPointerSection is a well-formed PTRS payload with every count
// zero, for tests whose hostile bytes live in a later section.
func emptyPointerSection() []byte {
	e := &enc{}
	for i := 0; i < 7; i++ { // stats
		e.u(0)
	}
	e.u(0) // collapsed
	e.u(0) // locs
	e.u(0) // regs
	e.u(0) // calls
	return section(tagPointer, e.buf)
}

// mustErr runs Read over data and requires a decode error — never a
// panic, never success — while bounding how much the attempt may
// allocate: a hostile length that survives validation shows up as a
// gigantic make before any error can be returned.
func mustErr(t *testing.T, name string, prog *ir.Program, data []byte, wantSub string) {
	t.Helper()
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	snap, err := Read(bytes.NewReader(data), prog)
	runtime.ReadMemStats(&m1)
	if err == nil {
		t.Fatalf("%s: hostile snapshot accepted: %+v", name, snap)
	}
	if wantSub != "" && !strings.Contains(err.Error(), wantSub) {
		t.Errorf("%s: error %q does not mention %q", name, err, wantSub)
	}
	const allocBudget = 16 << 20
	if grew := m1.TotalAlloc - m0.TotalAlloc; grew > allocBudget {
		t.Errorf("%s: decode attempt allocated %d bytes (budget %d)", name, grew, allocBudget)
	}
}

// TestReadHostileSectionLength pins the uint32-overflow fix in
// readSection: a section length near MaxUint32 must be reported as a
// truncated section, not overflow the n+4 bounds check and panic.
func TestReadHostileSectionLength(t *testing.T) {
	prog := corruptProg(t)
	for _, n := range []uint32{0xFFFFFFFF, 0xFFFFFFFE, 0xFFFFFFFC} {
		var buf bytes.Buffer
		buf.Write(header(prog))
		buf.WriteString(tagPointer)
		var v4 [4]byte
		binary.LittleEndian.PutUint32(v4[:], n)
		buf.Write(v4[:])
		buf.Write(make([]byte, 64))
		mustErr(t, "section length", prog, buf.Bytes(), "truncated")
	}
}

// TestReadHostilePointerRegister feeds a CRC-valid PTRS section whose
// register id is astronomically large. pointer.Import sizes a dense
// per-function table by that id, so the decoder must reject it first.
func TestReadHostilePointerRegister(t *testing.T) {
	prog := corruptProg(t)
	e := &enc{}
	for i := 0; i < 7; i++ {
		e.u(0)
	}
	e.u(0)       // collapsed
	e.u(0)       // locs
	e.u(1)       // one RegPts entry
	e.u(0)       // fn index
	e.u(1 << 40) // hostile register id
	e.u(0)       // its locs
	e.u(0)       // calls
	data := append(header(prog), section(tagPointer, e.buf)...)
	mustErr(t, "pointer register", prog, data, "register id")
}

// TestReadHostileShadowedRegister does the same for a PLAN section's
// shadowed-register list, which MarkShadowedID expands into a dense
// []bool of the id's size.
func TestReadHostileShadowedRegister(t *testing.T) {
	prog := corruptProg(t)
	e := &enc{}
	e.str("Usher")           // entry name
	e.str("Usher")           // plan name
	for i := 0; i < 4; i++ { // opt stats
		e.u(0)
	}
	e.u(1)       // one function plan
	e.u(0)       // fn index
	e.bools(nil) // ParamRecv
	e.bools(nil) // ParamSetT
	e.b(false)   // RetSend
	e.u(1)       // one shadowed register
	e.u(1 << 40) // hostile id
	e.u(0)       // labels
	data := append(header(prog), emptyPointerSection()...)
	data = append(data, section(tagPlan, e.buf)...)
	mustErr(t, "shadowed register", prog, data, "register id")
}

// TestReadHostileFunctionIndex checks that out-of-range function
// indices in both sections resolve to errors.
func TestReadHostileFunctionIndex(t *testing.T) {
	prog := corruptProg(t)
	e := &enc{}
	for i := 0; i < 7; i++ {
		e.u(0)
	}
	e.u(0) // collapsed
	e.u(1) // one loc
	e.byte(locFn)
	e.u(1 << 30) // hostile function index
	e.u(0)       // regs
	e.u(0)       // calls
	data := append(header(prog), section(tagPointer, e.buf)...)
	mustErr(t, "function index", prog, data, "out of range")
}

// TestReadTruncationSweep truncates a genuine snapshot at every length
// from zero to full size minus one: each prefix must either produce an
// error — never a panic — or, when the cut lands exactly on a section
// boundary (the format is "sections until EOF", so that is not
// detectable), parse as a strictly smaller snapshot that still carries
// the mandatory PTRS section. (The full file, by construction, reads
// back.)
func TestReadTruncationSweep(t *testing.T) {
	prog := corruptProg(t)
	st := pipeline.NewStore(prog, nil)
	pa, err := st.Pointer()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := pa.Export(prog)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := st.Plan(pipeline.PlanSpec{Name: "Usher", OptI: true, OptII: true})
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Pointer: ex, Plans: []PlanEntry{{Name: "Usher", Plan: pr.Plan}}}
	var buf bytes.Buffer
	if err := Write(&buf, prog, snap); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if _, err := Read(bytes.NewReader(full), prog); err != nil {
		t.Fatalf("full snapshot does not read back: %v", err)
	}
	for n := 0; n < len(full); n++ {
		got, err := Read(bytes.NewReader(full[:n]), prog)
		if err != nil {
			continue
		}
		if got.Pointer == nil || len(got.Plans) >= len(snap.Plans) {
			t.Fatalf("truncation to %d/%d bytes accepted as a full snapshot (%d plans)",
				n, len(full), len(got.Plans))
		}
	}
}
