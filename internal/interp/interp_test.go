package interp_test

import (
	"errors"
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/interp"
)

func run(t *testing.T, src string, args ...int64) *interp.Result {
	t.Helper()
	irp := compile.MustSource("t.c", src)
	var vals []interp.Value
	for _, a := range args {
		vals = append(vals, interp.IntVal(a))
	}
	res, err := interp.Run(irp, "main", vals, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func exitInt(t *testing.T, res *interp.Result) int64 {
	t.Helper()
	if res.Exit.Kind != interp.KindInt {
		t.Fatalf("exit value = %v, want int", res.Exit)
	}
	return res.Exit.Int
}

func TestArithmetic(t *testing.T) {
	tests := []struct {
		expr string
		want int64
	}{
		{"1 + 2 * 3", 7},
		{"(1 + 2) * 3", 9},
		{"10 / 3", 3},
		{"10 % 3", 1},
		{"1 << 4", 16},
		{"255 >> 4", 15},
		{"12 & 10", 8},
		{"12 | 10", 14},
		{"12 ^ 10", 6},
		{"5 - 9", -4},
		{"-(5)", -5},
		{"!0", 1},
		{"!7", 0},
		{"~0", -1},
		{"3 < 4", 1},
		{"4 <= 4", 1},
		{"5 > 6", 0},
		{"5 >= 5", 1},
		{"3 == 3", 1},
		{"3 != 3", 0},
	}
	for _, tt := range tests {
		res := run(t, "int main() { return "+tt.expr+"; }")
		if got := exitInt(t, res); got != tt.want {
			t.Errorf("%s = %d, want %d", tt.expr, got, tt.want)
		}
	}
}

func TestControlFlow(t *testing.T) {
	res := run(t, `
int main() {
  int s = 0;
  for (int i = 1; i <= 10; i++) {
    if (i % 2 == 0) { s += i; }
  }
  return s;
}`)
	if got := exitInt(t, res); got != 30 {
		t.Errorf("sum of evens = %d, want 30", got)
	}
}

func TestWhileBreakContinue(t *testing.T) {
	res := run(t, `
int main() {
  int i = 0;
  int s = 0;
  while (1) {
    i++;
    if (i > 100) { break; }
    if (i % 3) { continue; }
    s += i;
  }
  return s;
}`)
	// multiples of 3 up to 99: 3+6+...+99 = 3*(1+..+33) = 3*561 = 1683
	if got := exitInt(t, res); got != 1683 {
		t.Errorf("got %d, want 1683", got)
	}
}

func TestRecursion(t *testing.T) {
	res := run(t, `
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(15); }`)
	if got := exitInt(t, res); got != 610 {
		t.Errorf("fib(15) = %d, want 610", got)
	}
}

func TestPointersAndHeap(t *testing.T) {
	res := run(t, `
int main() {
  int *p = malloc(3);
  p[0] = 10;
  p[1] = 20;
  p[2] = p[0] + p[1];
  int r = p[2];
  free(p);
  return r;
}`)
	if got := exitInt(t, res); got != 30 {
		t.Errorf("got %d, want 30", got)
	}
}

func TestStructsLinkedList(t *testing.T) {
	res := run(t, `
struct Node { int val; struct Node *next; };
int main() {
  struct Node *head = 0;
  for (int i = 1; i <= 5; i++) {
    struct Node *n = malloc(sizeof(struct Node));
    n->val = i;
    n->next = head;
    head = n;
  }
  int s = 0;
  while (head != 0) {
    s += head->val;
    head = head->next;
  }
  return s;
}`)
	if got := exitInt(t, res); got != 15 {
		t.Errorf("list sum = %d, want 15", got)
	}
}

func TestFunctionPointerDispatch(t *testing.T) {
	res := run(t, `
int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int apply(int (*f)(int), int v) { return f(v); }
int main() {
  int (*g)(int);
  g = inc;
  int a = apply(g, 10);
  g = dbl;
  int b = apply(g, 10);
  return a * 100 + b;
}`)
	if got := exitInt(t, res); got != 1120 {
		t.Errorf("got %d, want 1120", got)
	}
}

func TestGlobals(t *testing.T) {
	res := run(t, `
int counter = 5;
void bump() { counter += 1; }
int main() { bump(); bump(); return counter; }`)
	if got := exitInt(t, res); got != 7 {
		t.Errorf("counter = %d, want 7", got)
	}
}

func TestPrintAndInput(t *testing.T) {
	res := run(t, `
int main() {
  print(42);
  int v = input();
  print(v + 1);
  return 0;
}`)
	if len(res.Out) != 2 || res.Out[0] != 42 {
		t.Errorf("out = %v", res.Out)
	}
}

func TestOracleUninitLocal(t *testing.T) {
	res := run(t, `
int main(int c) {
  int x;
  if (c) { x = 1; }
  if (x) { return 1; }
  return 0;
}`, 0)
	if len(res.OracleWarnings) == 0 {
		t.Fatal("oracle missed branch on uninitialized x")
	}
}

func TestOracleNoFalsePositive(t *testing.T) {
	res := run(t, `
int main(int c) {
  int x;
  if (c) { x = 1; } else { x = 2; }
  if (x) { return 1; }
  return 0;
}`, 0)
	if len(res.OracleWarnings) != 0 {
		t.Fatalf("oracle false positives: %v", res.OracleWarnings)
	}
}

func TestOracleUninitHeapPropagation(t *testing.T) {
	res := run(t, `
int main() {
  int *p = malloc(2);
  p[0] = 1;
  int y = p[1];      // undefined
  int z = y + 3;     // taints z
  print(z);          // critical use
  return 0;
}`)
	if len(res.OracleWarnings) == 0 {
		t.Fatal("oracle missed tainted print")
	}
}

func TestCallocDefined(t *testing.T) {
	res := run(t, `
int main() {
  int *p = calloc(4);
  print(p[3]);
  return p[0];
}`)
	if len(res.OracleWarnings) != 0 {
		t.Fatalf("calloc memory should be defined: %v", res.OracleWarnings)
	}
	if got := exitInt(t, res); got != 0 {
		t.Errorf("calloc cell = %d, want 0", got)
	}
}

func TestMissingReturnIsUndefined(t *testing.T) {
	res := run(t, `
int f(int c) { if (c) { return 7; } }
int main() { int v = f(0); if (v) { return 1; } return 0; }`)
	if len(res.OracleWarnings) == 0 {
		t.Fatal("oracle missed branch on missing-return value")
	}
}

func TestRuntimeErrorNullDeref(t *testing.T) {
	irp := compile.MustSource("t.c", `int main() { int *p = 0; return *p; }`)
	_, err := interp.Run(irp, "main", nil, interp.Options{})
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RuntimeError", err)
	}
}

func TestRuntimeErrorUseAfterFree(t *testing.T) {
	irp := compile.MustSource("t.c", `
int main() {
  int *p = malloc(1);
  free(p);
  return *p;
}`)
	_, err := interp.Run(irp, "main", nil, interp.Options{})
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RuntimeError (use after free)", err)
	}
}

func TestStepBudget(t *testing.T) {
	irp := compile.MustSource("t.c", `int main() { while (1) {} return 0; }`)
	_, err := interp.Run(irp, "main", nil, interp.Options{MaxSteps: 1000})
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RuntimeError (budget)", err)
	}
}

func TestStackOverflow(t *testing.T) {
	irp := compile.MustSource("t.c", `int f(int n) { return f(n + 1); } int main() { return f(0); }`)
	_, err := interp.Run(irp, "main", nil, interp.Options{MaxDepth: 64})
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RuntimeError (overflow)", err)
	}
}

// runShadow executes under the full-instrumentation (MSan model) plan.
func runShadow(t *testing.T, src string, args ...int64) *interp.Result {
	t.Helper()
	irp := compile.MustSource("t.c", src)
	plan := instrument.Full(irp)
	var vals []interp.Value
	for _, a := range args {
		vals = append(vals, interp.IntVal(a))
	}
	res, err := interp.Run(irp, "main", vals, interp.Options{
		Shadow: &interp.ShadowConfig{Plan: plan},
	})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestFullInstrumentationMatchesOracle(t *testing.T) {
	srcs := []string{
		// clean program
		`int main() {
  int s = 0;
  for (int i = 0; i < 8; i++) { s += i; }
  print(s);
  return s;
}`,
		// uninitialized local through a pointer
		`int main() {
  int x;
  int *p = &x;
  if (*p) { return 1; }
  return 0;
}`,
		// heap taint chain across calls
		`int taint(int *p) { return p[1]; }
int main() {
  int *p = malloc(2);
  p[0] = 1;
  int t = taint(p);
  print(t + p[0]);
  return 0;
}`,
		// defined: calloc + full init
		`int main() {
  int *p = malloc(3);
  for (int i = 0; i < 3; i++) { p[i] = i; }
  print(p[0] + p[1] + p[2]);
  return 0;
}`,
	}
	for i, src := range srcs {
		res := runShadow(t, src)
		oracle := res.OracleSites()
		shadow := res.ShadowSites()
		if len(oracle) != len(shadow) {
			t.Errorf("case %d: oracle %d sites, shadow %d sites\noracle: %v\nshadow: %v",
				i, len(oracle), len(shadow), res.OracleWarnings, res.ShadowWarnings)
			continue
		}
		for s := range oracle {
			if !shadow[s] {
				t.Errorf("case %d: oracle site %v missed by full instrumentation", i, s)
			}
		}
		if len(res.ShadowViolations) != 0 {
			t.Errorf("case %d: shadow violations: %v", i, res.ShadowViolations)
		}
	}
}

func TestFullInstrumentationCounts(t *testing.T) {
	res := runShadow(t, `
int main() {
  int s = 0;
  for (int i = 0; i < 100; i++) { s += i; }
  return s;
}`)
	if res.ShadowProps == 0 {
		t.Error("full instrumentation executed no shadow propagations")
	}
	if res.ShadowChecks == 0 {
		t.Error("full instrumentation executed no checks")
	}
	if res.Steps == 0 {
		t.Error("no native steps counted")
	}
}

func TestShadowThroughFunctionPointers(t *testing.T) {
	res := runShadow(t, `
int pass(int x) { return x; }
int main() {
  int (*f)(int);
  f = pass;
  int u;
  int v = f(u);   // undefined flows through the indirect call
  if (v) { return 1; }
  return 0;
}`)
	if len(res.ShadowSites()) == 0 {
		t.Errorf("shadow missed undefined flow through indirect call; oracle=%v", res.OracleWarnings)
	}
	oracle, shadow := res.OracleSites(), res.ShadowSites()
	for s := range oracle {
		if !shadow[s] {
			t.Errorf("site %v missed", s)
		}
	}
}

func TestExternalFunctionCall(t *testing.T) {
	// A declared-but-undefined function is treated as an external library
	// call returning a defined value.
	res := run(t, `
int external_lib(int x);
int main() {
  int v = external_lib(3);
  if (v) { return 1; }
  return v;
}`)
	if len(res.OracleWarnings) != 0 {
		t.Fatalf("external call result should be defined: %v", res.OracleWarnings)
	}
	if res.Exit.Int != 0 {
		t.Fatalf("external call should return 0, got %v", res.Exit)
	}
}

func TestDanglingStackPointerTraps(t *testing.T) {
	// Stack storage dies with its activation; dereferencing an escaped
	// pointer afterwards is C UB and traps here.
	irp := compile.MustSource("t.c", `
int *escape() {
  int local = 5;
  return &local;
}
int main() {
  int *p = escape();
  return *p;
}`)
	_, err := interp.Run(irp, "main", nil, interp.Options{})
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RuntimeError (dangling stack pointer)", err)
	}
}

func TestShadowExternalCallUnderAllPlans(t *testing.T) {
	src := `
int external_lib(int x);
int main() {
  int v = external_lib(7);
  if (v > 0) { print(v); }
  return 0;
}`
	res := runShadow(t, src)
	if len(res.ShadowWarnings) != 0 || len(res.ShadowViolations) != 0 {
		t.Fatalf("external call under full instrumentation: warnings=%v violations=%v",
			res.ShadowWarnings, res.ShadowViolations)
	}
}

func TestIndirectCallToExternalFunction(t *testing.T) {
	// A function pointer whose runtime target has no body: the result is
	// a defined value under every instrumentation.
	src := `
int ext(int x);
int pick(int c) {
  int (*f)(int);
  if (c) { f = ext; }
  int v = f(1);
  if (v) { return 1; }
  return 0;
}
int main() { return pick(1); }`
	res := runShadow(t, src)
	if len(res.ShadowViolations) != 0 {
		t.Fatalf("violations: %v", res.ShadowViolations)
	}
	if len(res.ShadowWarnings) != len(res.OracleWarnings) {
		t.Fatalf("shadow %v vs oracle %v", res.ShadowWarnings, res.OracleWarnings)
	}
}

func TestLoopedStackAllocasAllDie(t *testing.T) {
	// After inlining, an alloca can execute repeatedly inside a loop; each
	// instance must die at function return.
	irp := compile.MustSource("t.c", `
int g_hold;
int *leak() {
  int local = 7;
  return &local;
}
int main() {
  int *last = 0;
  for (int i = 0; i < 3; i++) { last = leak(); }
  return *last;
}`)
	_, err := interp.Run(irp, "main", nil, interp.Options{})
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want RuntimeError (every stack instance dies)", err)
	}
}

func TestPhiSwapShadowSimultaneity(t *testing.T) {
	// A loop swapping two variables, one undefined: after mem2reg the two
	// phis reference each other, and shadow propagation must read both
	// incoming shadows before writing either (simultaneous assignment).
	src := `
int main(int n) {
  int *p = malloc(1);
  int x = p[0];   // undefined
  int y = 1;      // defined
  for (int i = 0; i < n; i++) {
    int t = x;
    x = y;
    y = t;
  }
  if (y) { return 1; }   // n=1: y holds the undefined value
  return 0;
}`
	res := runShadow(t, src, 1)
	if len(res.ShadowViolations) != 0 {
		t.Fatalf("violations: %v", res.ShadowViolations)
	}
	oracle, shadow := res.OracleSites(), res.ShadowSites()
	if len(oracle) == 0 {
		t.Fatal("test premise broken: no oracle warning")
	}
	for s := range oracle {
		if !shadow[s] {
			t.Errorf("swap pattern: missed oracle site %v", s)
		}
	}
	for s := range shadow {
		if !oracle[s] {
			t.Errorf("swap pattern: false positive at %v", s)
		}
	}

	// And with an even number of swaps the defined value lands in y:
	// no warnings at all.
	res2 := runShadow(t, src, 2)
	if len(res2.ShadowWarnings) != 0 || len(res2.OracleWarnings) != 0 {
		t.Errorf("even swaps should be clean: shadow=%v oracle=%v",
			res2.ShadowWarnings, res2.OracleWarnings)
	}
}
