package interp

import (
	"fmt"

	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/ir"
)

// ShadowConfig enables shadow execution under an instrumentation plan.
type ShadowConfig struct {
	Plan *instrument.Plan
}

// sbit is a tri-state shadow value. Reading an uninitialized shadow is a
// soundness violation of the instrumentation (the paper's §3.4 guarantees
// guided instrumentation never does this); the shadow machine records it
// in Result.ShadowViolations.
type sbit uint8

const (
	sUninit sbit = iota
	sT
	sF
)

func (s sbit) String() string {
	switch s {
	case sT:
		return "T"
	case sF:
		return "F"
	default:
		return "uninit"
	}
}

// shadowFrame holds register shadows for one activation.
type shadowFrame struct {
	fp    *instrument.FnPlan
	regs  []sbit
	items [][]instrument.Item // label-indexed, shared per function
}

// shadowMachine executes the planned shadow statements alongside the
// interpreter.
type shadowMachine struct {
	m    *Machine
	plan *instrument.Plan

	frames []*shadowFrame

	// itemTables caches each function's items as a slice indexed by
	// instruction label, avoiding a map lookup per executed instruction.
	itemTables map[*ir.Function][][]instrument.Item

	// pendingArgs carry argument shadows across a call boundary (the
	// paper's σ_g relay); pendingRet carries the return shadow back.
	pendingArgs []sbit
	pendingRet  sbit

	warned map[Site]bool
}

func newShadowMachine(m *Machine, cfg *ShadowConfig) *shadowMachine {
	sm := &shadowMachine{
		m:          m,
		plan:       cfg.Plan,
		itemTables: make(map[*ir.Function][][]instrument.Item),
		warned:     make(map[Site]bool),
	}
	// Globals are defined at startup; MSan's runtime likewise maps the
	// data segment to defined shadow.
	for _, inst := range m.globals {
		cells := make([]sbit, len(inst.Cells))
		for i := range cells {
			cells[i] = sT
		}
		inst.shadow = cells
	}
	return sm
}

// itemsFor returns the label-indexed item table of fn's plan.
func (sm *shadowMachine) itemsFor(fn *ir.Function, fp *instrument.FnPlan) [][]instrument.Item {
	if t, ok := sm.itemTables[fn]; ok {
		return t
	}
	max := -1
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if in.Label() > max {
				max = in.Label()
			}
		}
	}
	t := make([][]instrument.Item, max+1)
	for label, items := range fp.Items {
		if label >= 0 && label <= max {
			t[label] = items
		}
	}
	sm.itemTables[fn] = t
	return t
}

func (sm *shadowMachine) top() *shadowFrame { return sm.frames[len(sm.frames)-1] }

func (sm *shadowMachine) violation(format string, args ...any) {
	if len(sm.m.res.ShadowViolations) < 100 {
		sm.m.res.ShadowViolations = append(sm.m.res.ShadowViolations, fmt.Sprintf(format, args...))
	}
}

// shadowOf evaluates the shadow of an operand. Constants, function
// addresses and global addresses are always defined; unshadowed registers
// are statically known defined.
func (sm *shadowMachine) shadowOf(sf *shadowFrame, v ir.Value) sbit {
	r, ok := v.(*ir.Register)
	if !ok {
		return sT
	}
	if sf.fp == nil || !sf.fp.Shadowed(r) {
		return sT
	}
	s := sf.regs[r.ID]
	if s == sUninit {
		sm.violation("read of uninitialized register shadow σ(%s) in %s", r, sf.fp.Fn.Name)
		return sT
	}
	return s
}

// cellShadow returns a pointer to the shadow of one memory cell, creating
// the (uninitialized) shadow array on first touch.
func (sm *shadowMachine) cellShadow(inst *Instance, off int) *sbit {
	if inst.shadow == nil {
		inst.shadow = make([]sbit, len(inst.Cells))
	}
	if off < 0 || off >= len(inst.shadow) {
		return nil
	}
	return &inst.shadow[off]
}

// enter pushes a shadow frame for a new activation and applies the
// parameter rules ([⊤-Para]/[⊥-Para]).
func (sm *shadowMachine) enter(fr *frame) {
	fp := sm.plan.FnPlanOf(fr.fn)
	sf := &shadowFrame{fp: fp, regs: make([]sbit, fr.fn.NumRegs())}
	sm.frames = append(sm.frames, sf)
	if fp == nil {
		sm.pendingArgs = nil
		return
	}
	sf.items = sm.itemsFor(fr.fn, fp)
	for i, prm := range fr.fn.Params {
		switch {
		case i < len(fp.ParamSetT) && fp.ParamSetT[i]:
			sf.regs[prm.ID] = sT
		case i < len(fp.ParamRecv) && fp.ParamRecv[i]:
			s := sT
			if i < len(sm.pendingArgs) {
				s = sm.pendingArgs[i]
			}
			sf.regs[prm.ID] = s
			sm.m.res.ShadowProps++ // σ(a) := σ_g
		}
	}
	sm.pendingArgs = nil
}

// leave pops the activation's shadow frame.
func (sm *shadowMachine) leave(fr *frame) {
	sm.frames = sm.frames[:len(sm.frames)-1]
}

// beforeCall stages argument shadows for an internal call.
func (sm *shadowMachine) beforeCall(fr *frame, in *ir.Call, callee *ir.Function) {
	sf := sm.top()
	calleeFP := sm.plan.FnPlanOf(callee)
	sm.pendingRet = sT
	sm.pendingArgs = nil
	if calleeFP == nil {
		return
	}
	for i, a := range in.Args {
		s := sT
		if i < len(calleeFP.ParamRecv) && calleeFP.ParamRecv[i] {
			s = sm.shadowOf(sf, a)
			sm.m.res.ShadowProps++ // σ_g := σ(y_i)
		}
		sm.pendingArgs = append(sm.pendingArgs, s)
	}
}

// externalCallResult marks the result of a call that resolved to a
// bodiless (external) function as defined. Without this, an indirect call
// whose runtime target is external would leave the result's shadow
// uninitialized.
func (sm *shadowMachine) externalCallResult(fr *frame, in *ir.Call) {
	sf := sm.top()
	if sf.fp != nil && sf.fp.Shadowed(in.Dst) {
		sf.regs[in.Dst.ID] = sT
	}
}

// afterCallReturn applies the relayed return shadow to the call result.
func (sm *shadowMachine) afterCallReturn(fr *frame, in *ir.Call) {
	if in.Dst == nil {
		return
	}
	sf := sm.top()
	if sf.fp != nil && sf.fp.Shadowed(in.Dst) {
		sf.regs[in.Dst.ID] = sm.pendingRet
	}
}

// phiShadow reads the shadow a phi would receive from its chosen incoming
// value, or (sT, false) when the phi is uninstrumented. It must be called
// for every phi of a block BEFORE any of their shadows are written: phis
// assign simultaneously, and a swap pattern (x, y = y, x) would otherwise
// read an already-updated shadow.
func (sm *shadowMachine) phiShadow(fr *frame, phi *ir.Phi, predIdx int) (sbit, bool) {
	sf := sm.top()
	if sf.fp == nil || phi.Label() >= len(sf.items) {
		return sT, false
	}
	for _, it := range sf.items[phi.Label()] {
		if it.Kind == instrument.PropCompute && it.Dst == phi.Dst {
			return sm.shadowOf(sf, phi.Vals[predIdx]), true
		}
	}
	return sT, false
}

// setPhiShadow applies a shadow captured by phiShadow.
func (sm *shadowMachine) setPhiShadow(fr *frame, phi *ir.Phi, s sbit) {
	sf := sm.top()
	if sf.fp == nil || !sf.fp.Shadowed(phi.Dst) {
		return
	}
	sf.regs[phi.Dst.ID] = s
	sm.m.res.ShadowProps++
}

// after executes the instrumentation items attached to in.
func (sm *shadowMachine) after(fr *frame, in ir.Instr) {
	sf := sm.top()
	if sf.fp == nil {
		return
	}
	if _, isPhi := in.(*ir.Phi); isPhi {
		return // handled by afterPhi
	}
	if l := in.Label(); l < len(sf.items) {
		for _, it := range sf.items[l] {
			sm.execItem(fr, sf, in, it)
		}
	}
	// Return-shadow relay ([⊥-Ret]).
	if ret, ok := in.(*ir.Ret); ok {
		if sf.fp.RetSend && ret.Val != nil {
			sm.pendingRet = sm.shadowOf(sf, ret.Val)
			sm.m.res.ShadowProps++
		} else {
			sm.pendingRet = sT
		}
	}
}

func (sm *shadowMachine) execItem(fr *frame, sf *shadowFrame, in ir.Instr, it instrument.Item) {
	switch it.Kind {
	case instrument.PropSetT:
		sf.regs[it.Dst.ID] = sT
		sm.m.res.ShadowProps++
	case instrument.PropSetF:
		sf.regs[it.Dst.ID] = sF
		sm.m.res.ShadowProps++
	case instrument.PropCompute:
		s := sT
		for _, src := range it.Srcs {
			if sm.shadowOf(sf, src) == sF {
				s = sF
			}
		}
		sf.regs[it.Dst.ID] = s
		sm.m.res.ShadowProps++
	case instrument.PropLoad:
		ld := in.(*ir.Load)
		addr, _ := sm.m.eval(fr, ld.Addr)
		s := sT
		if addr.Kind == KindAddr && !addr.Addr.IsNull() {
			if cs := sm.cellShadow(addr.Addr.Inst, addr.Addr.Off); cs != nil {
				s = *cs
				if s == sUninit {
					sm.violation("load of uninitialized cell shadow at %s (l%d in %s)",
						addr.Addr, in.Label(), fr.fn.Name)
					s = sT
				}
			}
		}
		sf.regs[it.Dst.ID] = s
		sm.m.res.ShadowProps++
	case instrument.PropStore:
		st := in.(*ir.Store)
		addr, _ := sm.m.eval(fr, st.Addr)
		if addr.Kind == KindAddr && !addr.Addr.IsNull() {
			if cs := sm.cellShadow(addr.Addr.Inst, addr.Addr.Off); cs != nil {
				*cs = sm.shadowOf(sf, it.Val)
			}
		}
		sm.m.res.ShadowProps++
	case instrument.MemSetT, instrument.MemSetF:
		s := sT
		if it.Kind == instrument.MemSetF {
			s = sF
		}
		switch in := in.(type) {
		case *ir.Alloc:
			// Initialize the whole freshly allocated instance.
			inst, _ := sm.m.eval(fr, in.Dst)
			if inst.Kind == KindAddr && inst.Addr.Inst != nil {
				target := inst.Addr.Inst
				cells := make([]sbit, len(target.Cells))
				for i := range cells {
					cells[i] = s
				}
				target.shadow = cells
			}
		case *ir.Store:
			// Strong update of the stored-to cell ([⊤-Store_SU]).
			addr, _ := sm.m.eval(fr, in.Addr)
			if addr.Kind == KindAddr && !addr.Addr.IsNull() {
				if cs := sm.cellShadow(addr.Addr.Inst, addr.Addr.Off); cs != nil {
					*cs = s
				}
			}
		}
		sm.m.res.ShadowProps++
	case instrument.MemFill:
		// σ(*to+i) := σ(v) over the requested range. The instruction has
		// already executed without trapping, so the range is in bounds;
		// shadow work is charged by the range, never the object size.
		ms := in.(*ir.MemSet)
		to, _ := sm.m.eval(fr, ms.To)
		ln, _ := sm.m.eval(fr, ms.Len)
		if to.Kind == KindAddr && !to.Addr.IsNull() {
			s := sm.shadowOf(sf, it.Val)
			for i := 0; i < int(ln.Int); i++ {
				if cs := sm.cellShadow(to.Addr.Inst, to.Addr.Off+i); cs != nil {
					*cs = s
				}
			}
		}
		sm.m.res.ShadowProps++
	case instrument.MemShadowCopy:
		// σ(*to+i) := σ(*from+i) over the requested range. The source
		// shadows are buffered first so overlapping memmove ranges copy
		// the pre-instruction shadows, mirroring the data copy.
		mc := in.(*ir.MemCopy)
		to, _ := sm.m.eval(fr, mc.To)
		from, _ := sm.m.eval(fr, mc.From)
		ln, _ := sm.m.eval(fr, mc.Len)
		n := int(ln.Int)
		if n > 0 && to.Kind == KindAddr && !to.Addr.IsNull() &&
			from.Kind == KindAddr && !from.Addr.IsNull() {
			buf := make([]sbit, n)
			for i := range buf {
				s := sT
				if cs := sm.cellShadow(from.Addr.Inst, from.Addr.Off+i); cs != nil {
					s = *cs
					if s == sUninit {
						sm.violation("copy of uninitialized cell shadow at %s (l%d in %s)",
							from.Addr, in.Label(), fr.fn.Name)
						s = sT
					}
				}
				buf[i] = s
			}
			for i, s := range buf {
				if cs := sm.cellShadow(to.Addr.Inst, to.Addr.Off+i); cs != nil {
					*cs = s
				}
			}
		}
		sm.m.res.ShadowProps++
	case instrument.CheckVal:
		for _, v := range it.Srcs {
			sm.m.res.ShadowChecks++
			if sm.shadowOf(sf, v) == sF {
				sm.shadowWarn(fr, in)
			}
		}
	}
}

func (sm *shadowMachine) shadowWarn(fr *frame, in ir.Instr) {
	site := Site{fr.fn.Name, in.Label()}
	if sm.warned[site] {
		return
	}
	sm.warned[site] = true
	sm.m.res.ShadowWarnings = append(sm.m.res.ShadowWarnings,
		Warning{Fn: fr.fn.Name, Label: in.Label(), Pos: in.Pos(), What: "shadow check failed"})
}
