package interp

import (
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/token"
)

// TestTrapWrapsForeignPanics pins the hardened trap contract: a panic
// that is not a *RuntimeError (an interpreter bug) must come back as an
// error carrying the current function name and instruction label, not
// re-panic bare.
func TestTrapWrapsForeignPanics(t *testing.T) {
	fn := &ir.Function{Name: "victim"}
	b := fn.NewBlock("entry")
	dst := fn.NewReg("x")
	in := ir.NewLoad(dst, ir.IntConst(0))
	in.SetPos(token.Pos{File: "v.c", Line: 3, Col: 7})
	b.Append(in)

	m := &Machine{res: &Result{}}
	m.curFn, m.curIn = fn, in
	err := m.trap(func() { panic("kaboom") })
	if err == nil {
		t.Fatal("trap returned nil for a foreign panic")
	}
	re, ok := err.(*RuntimeError)
	if !ok {
		t.Fatalf("trap returned %T, want *RuntimeError", err)
	}
	if re.Fn != "victim" {
		t.Errorf("Fn = %q, want the current function", re.Fn)
	}
	if re.Pos.Line != 3 {
		t.Errorf("Pos = %v, want the current instruction position", re.Pos)
	}
	if !strings.Contains(re.Msg, "kaboom") || !strings.Contains(re.Msg, "l"+itoa(in.Label())) {
		t.Errorf("Msg = %q, want the panic value and instruction label", re.Msg)
	}
	if re.Result != m.res {
		t.Error("Result not attached to the wrapped error")
	}
}

// TestTrapPassesRuntimeErrors keeps the expected-trap path intact.
func TestTrapPassesRuntimeErrors(t *testing.T) {
	m := &Machine{res: &Result{}}
	want := &RuntimeError{Msg: "boom", Fn: "main"}
	err := m.trap(func() { panic(want) })
	if err != want {
		t.Fatalf("trap returned %v, want the original *RuntimeError", err)
	}
	if want.Result != m.res {
		t.Error("Result not attached to the runtime error")
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
