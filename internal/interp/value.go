// Package interp executes IR programs.
//
// The interpreter serves three roles in the reproduction:
//
//  1. Native execution: it runs a program and counts executed native
//     operations, the baseline of the paper's slowdown measurements.
//  2. Ground-truth oracle: independently of any instrumentation, every
//     runtime value carries a definedness bit with exact MSan-style
//     propagation; uses of undefined values at critical operations are
//     recorded as oracle warnings. A sound detector must flag a superset
//     of nothing and a subset of nothing — i.e. exactly these sites.
//  3. Shadow execution: given an instrumentation plan (package
//     instrument), it additionally maintains shadow state and executes
//     the planned shadow propagations and checks, counting them; this is
//     the dynamic cost that Usher's static analysis reduces.
package interp

import (
	"fmt"

	"github.com/valueflow/usher/internal/ir"
)

// ValueKind discriminates runtime values.
type ValueKind int

// Value kinds. Undefined cells hold KindInt zero with Defined=false.
const (
	KindInt ValueKind = iota
	KindAddr
	KindFunc
)

// Instance is a runtime instantiation of an abstract object. A single
// abstract object (allocation site) may have many instances at run time —
// the gap that makes strong updates unsound in general and motivates the
// paper's semi-strong updates.
type Instance struct {
	Obj   *ir.Object
	Cells []Cell
	Freed bool
	Seq   int // creation order, for diagnostics
	// shadow holds the instrumentation's per-cell shadow bits, allocated
	// lazily by the shadow machine.
	shadow []sbit
}

func (i *Instance) String() string {
	if i == nil {
		return "null"
	}
	return fmt.Sprintf("%s@%d", i.Obj, i.Seq)
}

// Cell is one memory cell: a concrete value plus its ground-truth
// definedness.
type Cell struct {
	Val     Value
	Defined bool
}

// Address is a pointer value: an instance plus a cell offset. A nil Inst
// is the null pointer.
type Address struct {
	Inst *Instance
	Off  int
}

// IsNull reports whether the address is the null pointer.
func (a Address) IsNull() bool { return a.Inst == nil }

func (a Address) String() string {
	if a.IsNull() {
		return "null"
	}
	return fmt.Sprintf("&%s+%d", a.Inst, a.Off)
}

// Value is a runtime value.
type Value struct {
	Kind ValueKind
	Int  int64
	Addr Address
	Fn   *ir.Function
}

// IntVal makes an integer value.
func IntVal(v int64) Value { return Value{Kind: KindInt, Int: v} }

// AddrVal makes a pointer value.
func AddrVal(inst *Instance, off int) Value {
	return Value{Kind: KindAddr, Addr: Address{Inst: inst, Off: off}}
}

// FuncVal makes a function value.
func FuncVal(fn *ir.Function) Value { return Value{Kind: KindFunc, Fn: fn} }

// Truthy reports whether the value is nonzero in a condition.
func (v Value) Truthy() bool {
	switch v.Kind {
	case KindInt:
		return v.Int != 0
	case KindAddr:
		return !v.Addr.IsNull()
	default:
		return v.Fn != nil
	}
}

func (v Value) String() string {
	switch v.Kind {
	case KindInt:
		return fmt.Sprintf("%d", v.Int)
	case KindAddr:
		return v.Addr.String()
	default:
		if v.Fn == nil {
			return "func(nil)"
		}
		return "@" + v.Fn.Name
	}
}

// equal compares two values for the Eq/Ne operators.
func equal(a, b Value) bool {
	// Null pointers and integer zero compare equal (C null constants).
	norm := func(v Value) Value {
		if v.Kind == KindAddr && v.Addr.IsNull() {
			return IntVal(0)
		}
		return v
	}
	a, b = norm(a), norm(b)
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KindInt:
		return a.Int == b.Int
	case KindAddr:
		return a.Addr == b.Addr
	default:
		return a.Fn == b.Fn
	}
}
