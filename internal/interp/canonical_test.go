package interp_test

import (
	"errors"
	"sort"
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/interp"
)

// TestWarningsCanonicalOrder pins the canonical warning order: warnings
// are reported sorted by (Fn, Pos, Label), not in execution order. The
// program below executes zwarn's critical use before main's, so the raw
// append order is [zwarn, main]; the canonical form sorts main first.
func TestWarningsCanonicalOrder(t *testing.T) {
	src := `
int zwarn() {
  int u;
  print(u);
  return 0;
}
int main() {
  int v;
  zwarn();
  print(v);
  return 0;
}`
	prog := compile.MustSource("t.c", src)
	res, err := interp.Run(prog, "main", nil, interp.Options{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.OracleWarnings) != 2 {
		t.Fatalf("oracle warnings = %v, want 2", res.OracleWarnings)
	}
	if res.OracleWarnings[0].Fn != "main" || res.OracleWarnings[1].Fn != "zwarn" {
		t.Errorf("warnings not in canonical (Fn, Pos, Label) order: %v", res.OracleWarnings)
	}
	if !sort.SliceIsSorted(res.OracleWarnings, func(i, j int) bool {
		return res.OracleWarnings[i].Fn < res.OracleWarnings[j].Fn
	}) {
		t.Errorf("oracle warnings unsorted: %v", res.OracleWarnings)
	}

	// The instrumented run's shadow warnings follow the same order.
	full := instrument.Full(prog)
	sres, err := interp.Run(prog, "main", nil, interp.Options{Shadow: &interp.ShadowConfig{Plan: full}})
	if err != nil {
		t.Fatalf("shadow run: %v", err)
	}
	if len(sres.ShadowWarnings) != 2 {
		t.Fatalf("shadow warnings = %v, want 2", sres.ShadowWarnings)
	}
	if sres.ShadowWarnings[0].Fn != "main" || sres.ShadowWarnings[1].Fn != "zwarn" {
		t.Errorf("shadow warnings not canonical: %v", sres.ShadowWarnings)
	}
}

// TestWarningsCanonicalOnTrap checks that a partial result carried by a
// runtime trap is canonicalized too.
func TestWarningsCanonicalOnTrap(t *testing.T) {
	src := `
int zwarn() {
  int u;
  print(u);
  return 0;
}
int main() {
  int v;
  zwarn();
  print(v);
  int *p = 0;
  return p[0];
}`
	prog := compile.MustSource("t.c", src)
	_, err := interp.Run(prog, "main", nil, interp.Options{})
	var re *interp.RuntimeError
	if !errors.As(err, &re) {
		t.Fatalf("expected RuntimeError, got %v", err)
	}
	ws := re.Result.OracleWarnings
	if len(ws) != 2 || ws[0].Fn != "main" || ws[1].Fn != "zwarn" {
		t.Errorf("partial result warnings not canonical: %v", ws)
	}
}
