package interp

import (
	"fmt"
	"sort"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/token"
)

// Options configures an execution.
type Options struct {
	// MaxSteps bounds the number of executed instructions (0 = default).
	MaxSteps int64
	// MaxDepth bounds the call stack (0 = default).
	MaxDepth int
	// MaxCells bounds the total number of memory cells allocated over the
	// whole execution (0 = default). Without it a single huge allocation
	// — int a[200000000] — makes the interpreter swallow gigabytes before
	// a single instruction runs.
	MaxCells int64
	// Input supplies the value returned by the i-th call to input().
	// Defaults to a fixed deterministic sequence.
	Input func(i int) int64
	// Shadow, when non-nil, enables shadow execution under an
	// instrumentation plan (see shadow.go).
	Shadow *ShadowConfig
}

// Warning records a use of an undefined value at a critical operation.
// Warnings are deduplicated per site (function + label), matching how
// dynamic detectors report each offending source location once.
type Warning struct {
	Fn    string
	Label int
	Pos   token.Pos
	What  string
}

// Site identifies a warning site.
type Site struct {
	Fn    string
	Label int
}

func (w Warning) String() string {
	return fmt.Sprintf("%s: use of undefined value in %s (l%d): %s", w.Pos, w.Fn, w.Label, w.What)
}

// Result is the outcome of an execution.
type Result struct {
	// Exit is main's return value.
	Exit Value
	// Out collects the arguments of print calls, in order.
	Out []int64
	// Steps is the number of executed native instructions.
	Steps int64
	// OracleWarnings are the ground-truth undefined-value uses at critical
	// operations, deduplicated by site.
	OracleWarnings []Warning
	// ShadowWarnings are the sites flagged by the instrumented checks
	// (empty when running natively). A sound instrumentation reports every
	// oracle site that its checks cover.
	ShadowWarnings []Warning
	// ShadowProps and ShadowChecks count dynamically executed shadow
	// propagations and checks (zero when running natively).
	ShadowProps  int64
	ShadowChecks int64
	// ShadowViolations record instrumentation soundness bugs: reads of
	// shadow state that the plan never initialized. A correct plan
	// produces none (the paper's §3.4 well-definedness guarantee).
	ShadowViolations []string
	// Diags are non-fatal anomalies (double free, division by zero).
	Diags []string
}

// OracleSites returns the oracle warning sites as a set.
func (r *Result) OracleSites() map[Site]bool {
	s := make(map[Site]bool, len(r.OracleWarnings))
	for _, w := range r.OracleWarnings {
		s[Site{w.Fn, w.Label}] = true
	}
	return s
}

// ShadowSites returns the instrumented warning sites as a set.
func (r *Result) ShadowSites() map[Site]bool {
	s := make(map[Site]bool, len(r.ShadowWarnings))
	for _, w := range r.ShadowWarnings {
		s[Site{w.Fn, w.Label}] = true
	}
	return s
}

// canonicalize puts the warning lists into their canonical order —
// sorted by (Fn, Pos, Label) with per-site duplicates removed — so that
// two runs reporting the same sites yield bit-identical warning slices
// regardless of the execution order that produced them. Run applies it
// on every exit path, including trap returns with a partial result.
func (r *Result) canonicalize() {
	r.OracleWarnings = canonicalWarnings(r.OracleWarnings)
	r.ShadowWarnings = canonicalWarnings(r.ShadowWarnings)
}

func canonicalWarnings(ws []Warning) []Warning {
	if len(ws) < 2 {
		return ws
	}
	sort.Slice(ws, func(i, j int) bool {
		a, b := ws[i], ws[j]
		if a.Fn != b.Fn {
			return a.Fn < b.Fn
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Col != b.Pos.Col {
			return a.Pos.Col < b.Pos.Col
		}
		return a.Label < b.Label
	})
	// Collection already dedupes per (Fn, Label); this guards the
	// canonical form against identical sites reached via distinct paths.
	out := ws[:1]
	for _, w := range ws[1:] {
		last := out[len(out)-1]
		if w.Fn == last.Fn && w.Label == last.Label {
			continue
		}
		out = append(out, w)
	}
	return out
}

// RuntimeError is a trap: invalid dereference, stack overflow, fuel
// exhaustion. The partial Result is still available.
type RuntimeError struct {
	Msg    string
	Fn     string
	Pos    token.Pos
	Result *Result
}

func (e *RuntimeError) Error() string {
	s := "runtime error"
	if e.Fn != "" {
		s += " in " + e.Fn
	}
	s += ": " + e.Msg
	if e.Pos.IsValid() {
		return e.Pos.String() + ": " + s
	}
	return s
}

// Machine executes one program.
type Machine struct {
	prog      *ir.Program
	opts      Options
	globals   map[*ir.Object]*Instance
	res       *Result
	oracle    map[Site]bool
	shadowM   *shadowMachine
	nextSeq   int
	ninput    int
	depth     int
	cellsLeft int64

	// curFn and curIn track the instruction being executed, so that an
	// unexpected panic can be wrapped with its location (see trap).
	curFn *ir.Function
	curIn ir.Instr

	// phi evaluation scratch, reused across blocks (consumed before any
	// nested call can start).
	phiVals      []Value
	phiDefs      []bool
	phiShadows   []sbit
	phiShadowSet []bool
}

// Run executes fn (by name, usually "main") with the given arguments and
// returns the result. A *RuntimeError carries the partial result.
func Run(prog *ir.Program, fnName string, args []Value, opts Options) (*Result, error) {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 200_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 8192
	}
	if opts.MaxCells == 0 {
		opts.MaxCells = 1 << 24
	}
	if opts.Input == nil {
		opts.Input = func(i int) int64 { return int64((i*2654435761 + 12345) % 1000) }
	}
	m := &Machine{
		prog:      prog,
		opts:      opts,
		globals:   make(map[*ir.Object]*Instance),
		res:       &Result{},
		oracle:    make(map[Site]bool),
		cellsLeft: opts.MaxCells,
	}
	fn := prog.FuncByName(fnName)
	if fn == nil || !fn.HasBody {
		return m.res, fmt.Errorf("interp: no function %q with a body", fnName)
	}
	if len(args) != len(fn.Params) {
		return m.res, fmt.Errorf("interp: %s takes %d args, got %d", fnName, len(fn.Params), len(args))
	}
	defs := make([]bool, len(args))
	for i := range defs {
		defs[i] = true
	}
	var exit Value
	// Global allocation runs under the trap too: an over-budget global
	// (int a[200000000]) traps like any other allocation instead of
	// exhausting host memory before execution starts.
	err := m.trap(func() {
		for _, g := range prog.Globals {
			inst := m.newInstance(g, g.Size)
			if g.InitVals != nil {
				for i, v := range g.InitVals {
					if i < len(inst.Cells) {
						inst.Cells[i].Val = IntVal(v)
					}
				}
			} else if g.Size > 0 {
				inst.Cells[0].Val = IntVal(g.InitVal)
			}
			m.globals[g] = inst
		}
		if opts.Shadow != nil {
			m.shadowM = newShadowMachine(m, opts.Shadow)
		}
		v, _ := m.call(fn, args, defs)
		exit = v
	})
	m.res.Exit = exit
	m.res.canonicalize()
	if err != nil {
		return m.res, err
	}
	return m.res, nil
}

// trap converts panics raised during execution into *RuntimeError.
// Expected traps arrive as *RuntimeError (via fail). Anything else is an
// interpreter bug; instead of re-panicking bare it is wrapped with the
// current function and instruction label so the report is actionable.
func (m *Machine) trap(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			me, ok := r.(*RuntimeError)
			if !ok {
				me = &RuntimeError{Msg: fmt.Sprintf("internal error: %v", r)}
				if m.curFn != nil {
					me.Fn = m.curFn.Name
				}
				if m.curIn != nil {
					me.Msg = fmt.Sprintf("internal error at l%d (%s): %v", m.curIn.Label(), m.curIn, r)
					me.Pos = m.curIn.Pos()
				}
			}
			me.Result = m.res
			err = me
		}
	}()
	f()
	return nil
}

func (m *Machine) fail(fn *ir.Function, pos token.Pos, format string, args ...any) {
	panic(&RuntimeError{Msg: fmt.Sprintf(format, args...), Fn: fn.Name, Pos: pos})
}

func (m *Machine) newInstance(obj *ir.Object, size int) *Instance {
	if int64(size) > m.cellsLeft {
		panic(&RuntimeError{Msg: fmt.Sprintf(
			"allocation of %d cells for %s exceeds the remaining memory budget (%d of %d cells)",
			size, obj.Name, m.cellsLeft, m.opts.MaxCells)})
	}
	m.cellsLeft -= int64(size)
	inst := &Instance{Obj: obj, Cells: make([]Cell, size), Seq: m.nextSeq}
	m.nextSeq++
	if obj.ZeroInit {
		for i := range inst.Cells {
			inst.Cells[i].Defined = true
		}
	}
	return inst
}

func (m *Machine) oracleWarn(fn *ir.Function, in ir.Instr, what string) {
	site := Site{fn.Name, in.Label()}
	if m.oracle[site] {
		return
	}
	m.oracle[site] = true
	m.res.OracleWarnings = append(m.res.OracleWarnings,
		Warning{Fn: fn.Name, Label: in.Label(), Pos: in.Pos(), What: what})
}

func (m *Machine) diag(format string, args ...any) {
	if len(m.res.Diags) < 100 {
		m.res.Diags = append(m.res.Diags, fmt.Sprintf(format, args...))
	}
}

// frame is one activation.
type frame struct {
	fn   *ir.Function
	regs []Value
	defs []bool // ground-truth definedness per register
	// stacks holds this activation's stack instances; after inlining an
	// allocation site may execute several times per activation (e.g.
	// inside a loop), so every instance is kept and dies at return.
	stacks []*Instance
}

// eval resolves an operand within a frame, returning its value and
// ground-truth definedness.
func (m *Machine) eval(fr *frame, v ir.Value) (Value, bool) {
	switch v := v.(type) {
	case *ir.Const:
		return IntVal(v.Val), true
	case *ir.FuncValue:
		return FuncVal(v.Fn), true
	case *ir.GlobalAddr:
		return AddrVal(m.globals[v.Obj], 0), true
	case *ir.Register:
		return fr.regs[v.ID], fr.defs[v.ID]
	}
	m.fail(fr.fn, token.Pos{}, "unknown operand %T", v)
	return Value{}, false
}

func (fr *frame) set(r *ir.Register, v Value, defined bool) {
	fr.regs[r.ID] = v
	fr.defs[r.ID] = defined
}

// call executes fn and returns its result value and definedness.
func (m *Machine) call(fn *ir.Function, args []Value, argDefs []bool) (Value, bool) {
	m.depth++
	if m.depth > m.opts.MaxDepth {
		m.fail(fn, fn.Pos, "call stack overflow (depth %d)", m.depth)
	}
	defer func() { m.depth-- }()

	fr := &frame{
		fn:   fn,
		regs: make([]Value, fn.NumRegs()),
		defs: make([]bool, fn.NumRegs()),
	}
	for i, p := range fn.Params {
		fr.set(p, args[i], argDefs[i])
	}
	if m.shadowM != nil {
		m.shadowM.enter(fr)
		defer m.shadowM.leave(fr)
	}

	block := fn.Entry()
	var prev *ir.Block
	for {
		next, retV, retD, returned := m.execBlock(fr, block, prev)
		if returned {
			// Stack storage dies with the activation; later accesses
			// through escaped pointers trap, matching C's undefined
			// behaviour and keeping the static analysis honest.
			for _, inst := range fr.stacks {
				inst.Freed = true
			}
			return retV, retD
		}
		prev, block = block, next
	}
}

// execBlock runs one basic block. It returns the successor or the return
// value.
func (m *Machine) execBlock(fr *frame, b *ir.Block, prev *ir.Block) (next *ir.Block, retV Value, retD bool, returned bool) {
	// Phis read their inputs simultaneously on entry. The scratch buffers
	// live on the machine: they are fully consumed before any instruction
	// (and hence any nested call) executes.
	phiVals := m.phiVals[:0]
	phiDefs := m.phiDefs[:0]
	phiShadows := m.phiShadows[:0]
	phiShadowSet := m.phiShadowSet[:0]
	nphis := 0
	for _, in := range b.Instrs {
		phi, ok := in.(*ir.Phi)
		if !ok {
			break
		}
		idx := phi.IncomingIndex(prev)
		if idx < 0 {
			m.fail(fr.fn, phi.Pos(), "phi %s has no incoming value from %s", phi, prev)
		}
		v, d := m.eval(fr, phi.Vals[idx])
		phiVals = append(phiVals, v)
		phiDefs = append(phiDefs, d)
		if m.shadowM != nil {
			s, ok := m.shadowM.phiShadow(fr, phi, idx)
			phiShadows = append(phiShadows, s)
			phiShadowSet = append(phiShadowSet, ok)
		}
		nphis++
	}
	m.phiVals, m.phiDefs = phiVals, phiDefs
	m.phiShadows, m.phiShadowSet = phiShadows, phiShadowSet
	for i := 0; i < nphis; i++ {
		phi := b.Instrs[i].(*ir.Phi)
		m.step(fr, phi)
		fr.set(phi.Dst, phiVals[i], phiDefs[i])
		if m.shadowM != nil && phiShadowSet[i] {
			m.shadowM.setPhiShadow(fr, phi, phiShadows[i])
		}
	}

	for _, in := range b.Instrs[nphis:] {
		m.step(fr, in)
		switch in := in.(type) {
		case *ir.Alloc:
			m.execAlloc(fr, in)
		case *ir.Copy:
			v, d := m.eval(fr, in.Src)
			fr.set(in.Dst, v, d)
		case *ir.BinOp:
			m.execBinOp(fr, in)
		case *ir.Load:
			addr := m.checkAddr(fr, in, in.Addr, "load")
			cell := addr.Inst.Cells[addr.Off]
			fr.set(in.Dst, cell.Val, cell.Defined)
		case *ir.Store:
			addr := m.checkAddr(fr, in, in.Addr, "store")
			v, d := m.eval(fr, in.Val)
			addr.Inst.Cells[addr.Off] = Cell{Val: v, Defined: d}
		case *ir.MemSet:
			m.execMemSet(fr, in)
		case *ir.MemCopy:
			m.execMemCopy(fr, in)
		case *ir.FieldAddr:
			base, d := m.eval(fr, in.Base)
			if base.Kind != KindAddr {
				m.fail(fr.fn, in.Pos(), "fieldaddr of non-pointer %s", base)
			}
			fr.set(in.Dst, AddrVal(base.Addr.Inst, base.Addr.Off+in.Off), d)
		case *ir.IndexAddr:
			base, bd := m.eval(fr, in.Base)
			idx, id := m.eval(fr, in.Idx)
			if base.Kind != KindAddr {
				m.fail(fr.fn, in.Pos(), "indexaddr of non-pointer %s", base)
			}
			if idx.Kind != KindInt {
				m.fail(fr.fn, in.Pos(), "indexaddr with non-integer index %s", idx)
			}
			fr.set(in.Dst, AddrVal(base.Addr.Inst, base.Addr.Off+int(idx.Int)), bd && id)
		case *ir.Call:
			m.execCall(fr, in)
		case *ir.Ret:
			if m.shadowM != nil {
				m.shadowM.after(fr, in)
			}
			if in.Val == nil {
				return nil, IntVal(0), true, true
			}
			v, d := m.eval(fr, in.Val)
			return nil, v, d, true
		case *ir.Jump:
			if m.shadowM != nil {
				m.shadowM.after(fr, in)
			}
			return in.Target, Value{}, false, false
		case *ir.Branch:
			cond, d := m.eval(fr, in.Cond)
			if !d {
				m.oracleWarn(fr.fn, in, "branch on undefined value")
			}
			if m.shadowM != nil {
				m.shadowM.after(fr, in)
			}
			if cond.Truthy() {
				return in.Then, Value{}, false, false
			}
			return in.Else, Value{}, false, false
		default:
			m.fail(fr.fn, in.Pos(), "unknown instruction %T", in)
		}
		if m.shadowM != nil {
			m.shadowM.after(fr, in)
		}
	}
	m.fail(fr.fn, token.Pos{}, "block %s fell through without terminator", b)
	return nil, Value{}, false, false
}

func (m *Machine) step(fr *frame, in ir.Instr) {
	m.curFn, m.curIn = fr.fn, in
	m.res.Steps++
	if m.res.Steps > m.opts.MaxSteps {
		m.fail(fr.fn, in.Pos(), "step budget exhausted (%d)", m.opts.MaxSteps)
	}
}

// checkAddr evaluates a pointer operand of a critical memory operation,
// recording oracle warnings for undefined pointers and trapping on invalid
// accesses.
func (m *Machine) checkAddr(fr *frame, in ir.Instr, op ir.Value, what string) Address {
	v, d := m.eval(fr, op)
	if !d {
		m.oracleWarn(fr.fn, in, what+" through undefined pointer")
	}
	if v.Kind != KindAddr || v.Addr.IsNull() {
		m.fail(fr.fn, in.Pos(), "%s through invalid pointer %s", what, v)
	}
	a := v.Addr
	if a.Inst.Freed {
		m.fail(fr.fn, in.Pos(), "%s through freed memory %s", what, a)
	}
	if a.Off < 0 || a.Off >= len(a.Inst.Cells) {
		m.fail(fr.fn, in.Pos(), "%s out of bounds: %s (size %d)", what, a, len(a.Inst.Cells))
	}
	return a
}

// rangeLen evaluates the length operand of a memory intrinsic. An
// undefined length is an oracle warning (it is a critical use); a
// non-integer or negative length traps.
func (m *Machine) rangeLen(fr *frame, in ir.Instr, op ir.Value, what string) int {
	v, d := m.eval(fr, op)
	if !d {
		m.oracleWarn(fr.fn, in, what+" with undefined length")
	}
	if v.Kind != KindInt {
		m.fail(fr.fn, in.Pos(), "%s with non-integer length %s", what, v)
	}
	if v.Int < 0 {
		m.fail(fr.fn, in.Pos(), "%s with negative length %d", what, v.Int)
	}
	return int(v.Int)
}

// checkRange validates that [a, a+n) lies inside a's instance BEFORE any
// cell is touched, so adversarial lengths trap immediately instead of
// writing until they run off the object. After it passes, the intrinsic's
// work is bounded by the instance size (itself bounded by MaxCells).
func (m *Machine) checkRange(fr *frame, in ir.Instr, a Address, n int, what string) {
	if n > 0 && a.Off+n > len(a.Inst.Cells) {
		m.fail(fr.fn, in.Pos(), "%s out of bounds: %s + %d cells (size %d)", what, a, n, len(a.Inst.Cells))
	}
}

// chargeCells charges the step budget for an intrinsic's bulk work: a
// memset/memcopy over n cells costs n steps on top of the instruction
// itself. Without this, a loop of whole-object intrinsics over a
// collapsed (>4096-cell) allocation does MaxSteps×range cell writes
// under a MaxSteps budget — the work must be charged by the requested
// range so adversarial lengths exhaust the budget instead of hanging.
// The charge depends only on the program's own length operands, so
// native and instrumented runs stay step-identical.
func (m *Machine) chargeCells(fr *frame, in ir.Instr, n int) {
	m.res.Steps += int64(n)
	if m.res.Steps > m.opts.MaxSteps {
		m.fail(fr.fn, in.Pos(), "step budget exhausted (%d)", m.opts.MaxSteps)
	}
}

func (m *Machine) execMemSet(fr *frame, in *ir.MemSet) {
	n := m.rangeLen(fr, in, in.Len, "memset")
	to := m.checkAddr(fr, in, in.To, "memset")
	m.checkRange(fr, in, to, n, "memset")
	m.chargeCells(fr, in, n)
	// The filled value's definedness is copied into every cell, not
	// checked: memset with an undefined value only becomes an error at a
	// later critical use of the range.
	v, d := m.eval(fr, in.Val)
	for i := 0; i < n; i++ {
		to.Inst.Cells[to.Off+i] = Cell{Val: v, Defined: d}
	}
}

func (m *Machine) execMemCopy(fr *frame, in *ir.MemCopy) {
	n := m.rangeLen(fr, in, in.Len, "memcopy")
	from := m.checkAddr(fr, in, in.From, "memcopy source")
	to := m.checkAddr(fr, in, in.To, "memcopy")
	m.checkRange(fr, in, from, n, "memcopy source")
	m.checkRange(fr, in, to, n, "memcopy")
	m.chargeCells(fr, in, n)
	if n == 0 {
		return
	}
	// Buffer the source range so overlapping memmove-style copies are
	// safe; values and definedness bits move together, MSan-style.
	buf := make([]Cell, n)
	copy(buf, from.Inst.Cells[from.Off:from.Off+n])
	copy(to.Inst.Cells[to.Off:to.Off+n], buf)
}

func (m *Machine) execAlloc(fr *frame, in *ir.Alloc) {
	size := in.Obj.Size
	if in.DynSize != nil {
		v, d := m.eval(fr, in.DynSize)
		if v.Kind != KindInt || !d || v.Int <= 0 {
			m.diag("%s: allocation with invalid size %s", in.Pos(), v)
			size = 1
		} else {
			size = int(v.Int)
		}
	}
	inst := m.newInstance(in.Obj, size)
	if in.Obj.Kind == ir.ObjStack {
		fr.stacks = append(fr.stacks, inst)
	}
	fr.set(in.Dst, AddrVal(inst, 0), true)
}

func (m *Machine) execBinOp(fr *frame, in *ir.BinOp) {
	x, xd := m.eval(fr, in.X)
	y, yd := m.eval(fr, in.Y)
	d := xd && yd
	switch in.Op {
	case ir.OpEq:
		fr.set(in.Dst, boolVal(equal(x, y)), d)
		return
	case ir.OpNe:
		fr.set(in.Dst, boolVal(!equal(x, y)), d)
		return
	}
	if x.Kind != KindInt || y.Kind != KindInt {
		// Arithmetic on pointers outside IndexAddr: treat operands as
		// opaque integers (their identities), keeping execution total.
		x, y = coerceInt(x), coerceInt(y)
	}
	var r int64
	switch in.Op {
	case ir.OpAdd:
		r = x.Int + y.Int
	case ir.OpSub:
		r = x.Int - y.Int
	case ir.OpMul:
		r = x.Int * y.Int
	case ir.OpDiv:
		if y.Int == 0 {
			m.diag("%s: division by zero", in.Pos())
		} else {
			r = x.Int / y.Int
		}
	case ir.OpRem:
		if y.Int == 0 {
			m.diag("%s: remainder by zero", in.Pos())
		} else {
			r = x.Int % y.Int
		}
	case ir.OpShl:
		r = x.Int << uint(y.Int&63)
	case ir.OpShr:
		r = x.Int >> uint(y.Int&63)
	case ir.OpAnd:
		r = x.Int & y.Int
	case ir.OpOr:
		r = x.Int | y.Int
	case ir.OpXor:
		r = x.Int ^ y.Int
	case ir.OpLt:
		r = b2i(x.Int < y.Int)
	case ir.OpLe:
		r = b2i(x.Int <= y.Int)
	case ir.OpGt:
		r = b2i(x.Int > y.Int)
	case ir.OpGe:
		r = b2i(x.Int >= y.Int)
	default:
		m.fail(fr.fn, in.Pos(), "unknown operator %s", in.Op)
	}
	fr.set(in.Dst, IntVal(r), d)
}

func coerceInt(v Value) Value {
	switch v.Kind {
	case KindInt:
		return v
	case KindAddr:
		if v.Addr.IsNull() {
			return IntVal(0)
		}
		return IntVal(int64(v.Addr.Inst.Seq)<<16 + int64(v.Addr.Off) + 1)
	default:
		return IntVal(1)
	}
}

func boolVal(b bool) Value { return IntVal(b2i(b)) }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func (m *Machine) execCall(fr *frame, in *ir.Call) {
	switch in.Builtin {
	case ir.BuiltinFree:
		v, d := m.eval(fr, in.Args[0])
		if !d {
			m.oracleWarn(fr.fn, in, "free of undefined pointer")
		}
		if v.Kind == KindAddr && !v.Addr.IsNull() {
			if v.Addr.Inst.Freed {
				m.diag("%s: double free of %s", in.Pos(), v.Addr)
			}
			v.Addr.Inst.Freed = true
		}
		return
	case ir.BuiltinPrint:
		v, d := m.eval(fr, in.Args[0])
		if !d {
			m.oracleWarn(fr.fn, in, "print of undefined value")
		}
		m.res.Out = append(m.res.Out, coerceInt(v).Int)
		return
	case ir.BuiltinInput:
		fr.set(in.Dst, IntVal(m.opts.Input(m.ninput)), true)
		m.ninput++
		return
	}

	var callee *ir.Function
	if direct := in.Direct(); direct != nil {
		callee = direct
	} else {
		v, d := m.eval(fr, in.Callee)
		if !d {
			m.oracleWarn(fr.fn, in, "indirect call through undefined pointer")
		}
		if v.Kind != KindFunc || v.Fn == nil {
			m.fail(fr.fn, in.Pos(), "indirect call through non-function %s", v)
		}
		callee = v.Fn
	}
	if !callee.HasBody {
		// External function: returns a defined zero, like a modelled
		// library call.
		if in.Dst != nil {
			fr.set(in.Dst, IntVal(0), true)
			if m.shadowM != nil {
				m.shadowM.externalCallResult(fr, in)
			}
		}
		return
	}
	args := make([]Value, len(in.Args))
	defs := make([]bool, len(in.Args))
	for i, a := range in.Args {
		args[i], defs[i] = m.eval(fr, a)
	}
	if len(args) != len(callee.Params) {
		m.fail(fr.fn, in.Pos(), "call to %s with %d args, want %d", callee.Name, len(args), len(callee.Params))
	}
	if m.shadowM != nil {
		m.shadowM.beforeCall(fr, in, callee)
	}
	v, d := m.call(callee, args, defs)
	if in.Dst != nil {
		fr.set(in.Dst, v, d)
	}
	if m.shadowM != nil {
		m.shadowM.afterCallReturn(fr, in)
	}
}
