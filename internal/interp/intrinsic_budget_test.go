package interp_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/interp"
)

// The lowering collapses constant allocations above 4096 cells (see
// lower.maxFieldSensitiveCells); the interpreter still materializes the
// full extent, so whole-object intrinsics over such objects are the
// worst case for step accounting. These tests pin the contract: the
// intrinsic's work is charged by the *requested range*, and adversarial
// lengths exhaust the step budget (a trap) instead of hanging.

func runOpts(t *testing.T, src string, opts interp.Options) (*interp.Result, error) {
	t.Helper()
	irp := compile.MustSource("budget.c", src)
	return interp.Run(irp, "main", nil, opts)
}

func collapsedFillProgram(fillLen int) string {
	return `
int main() {
  int *p = malloc(8200);
  memset(p, 7, ` + itoaTest(fillLen) + `);
  int x = p[0];
  free(p);
  print(x);
  return 0;
}
`
}

func itoaTest(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

// TestMemsetChargedByRequestedRange: two programs identical except for
// the memset length must differ in Steps by exactly the length delta —
// the bulk work is charged per cell, not per instruction.
func TestMemsetChargedByRequestedRange(t *testing.T) {
	big, err := runOpts(t, collapsedFillProgram(8200), interp.Options{})
	if err != nil {
		t.Fatalf("full fill: %v", err)
	}
	small, err := runOpts(t, collapsedFillProgram(1), interp.Options{})
	if err != nil {
		t.Fatalf("one-cell fill: %v", err)
	}
	if got := big.Steps - small.Steps; got != 8199 {
		t.Errorf("step delta between memset(…, 8200) and memset(…, 1) = %d, want 8199", got)
	}
}

// TestMemcpyChargedByRequestedRange does the same for the copy
// intrinsics.
func TestMemcpyChargedByRequestedRange(t *testing.T) {
	prog := func(n int) string {
		return `
int main() {
  int *a = malloc(8200);
  int *b = malloc(8200);
  memset(a, 3, 8200);
  memcpy(b, a, ` + itoaTest(n) + `);
  int x = b[0];
  free(a);
  free(b);
  print(x);
  return 0;
}
`
	}
	big, err := runOpts(t, prog(8200), interp.Options{})
	if err != nil {
		t.Fatalf("full copy: %v", err)
	}
	small, err := runOpts(t, prog(1), interp.Options{})
	if err != nil {
		t.Fatalf("one-cell copy: %v", err)
	}
	if got := big.Steps - small.Steps; got != 8199 {
		t.Errorf("step delta between memcpy(…, 8200) and memcpy(…, 1) = %d, want 8199", got)
	}
}

// TestIntrinsicLoopExhaustsStepBudget: a loop of whole-object memsets
// over a collapsed allocation must trap on the step budget after
// ~MaxSteps/8200 iterations — not run MaxSteps iterations doing 8200
// writes each. A tiny budget makes a hang (the pre-charging behavior)
// fail fast instead of stalling the suite.
func TestIntrinsicLoopExhaustsStepBudget(t *testing.T) {
	src := `
int main() {
  int *p = malloc(8200);
  int i = 0;
  while (i < 1000000) {
    memset(p, i, 8200);
    i = i + 1;
  }
  free(p);
  return 0;
}
`
	_, err := runOpts(t, src, interp.Options{MaxSteps: 100_000})
	if err == nil {
		t.Fatal("loop of large memsets completed under a 100k step budget")
	}
	if !strings.Contains(err.Error(), "step budget exhausted") {
		t.Errorf("trap = %v, want a step-budget exhaustion", err)
	}
}

// TestAdversarialLengthsTrapBeforeWork: out-of-bounds and negative
// lengths are rejected before any cell is touched, in O(1).
func TestAdversarialLengthsTrapBeforeWork(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"memset-oob", `
int main() {
  int *p = malloc(8200);
  memset(p, 1, 2000000000);
  return 0;
}
`, "out of bounds"},
		{"memset-negative", `
int main() {
  int *p = malloc(8200);
  memset(p, 1, 0 - 5);
  return 0;
}
`, "negative length"},
		{"memcpy-oob-src", `
int main() {
  int *a = malloc(16);
  int *b = malloc(8200);
  memcpy(b, a, 8200);
  return 0;
}
`, "out of bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// MaxSteps is tiny relative to the requested ranges: if the
			// interpreter did the work (or charged it) before validating,
			// the message would be a budget trap, not the range trap.
			_, err := runOpts(t, tc.src, interp.Options{MaxSteps: 10_000})
			if err == nil {
				t.Fatal("adversarial length did not trap")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("trap = %v, want %q", err, tc.want)
			}
		})
	}
}
