package stats

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilCollector pins the nil-is-valid contract: every method on a nil
// collector is a no-op, so callers can thread one through unconditionally.
func TestNilCollector(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Error("nil collector reports Enabled")
	}
	c.Add(Sample{Pass: "pointer"}) // must not panic
	if snap := c.Snapshot(); snap != nil {
		t.Errorf("nil collector snapshot = %v, want nil", snap)
	}
}

func TestAddAggregates(t *testing.T) {
	c := New()
	c.Add(Sample{Rank: 6, Pass: "pointer", Phase: "pointer", Wall: 2 * time.Millisecond,
		AllocBytes: 100, Counters: map[string]int64{"constraints": 3}})
	c.Add(Sample{Rank: 6, Pass: "pointer", Phase: "pointer", Wall: 3 * time.Millisecond,
		AllocBytes: 50, Counters: map[string]int64{"constraints": 4, "copy_edges": 1}})
	snap := c.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("got %d entries, want 1", len(snap))
	}
	ps := snap[0]
	if ps.Runs != 2 {
		t.Errorf("Runs = %d, want 2", ps.Runs)
	}
	if ps.AllocBytes != 150 {
		t.Errorf("AllocBytes = %d, want 150", ps.AllocBytes)
	}
	want := map[string]int64{"constraints": 7, "copy_edges": 1}
	if !reflect.DeepEqual(ps.Counters, want) {
		t.Errorf("Counters = %v, want %v", ps.Counters, want)
	}
}

// TestSnapshotOrder checks pipeline ordering: rank first, then pass name,
// then variant, so reports always read in registration order.
func TestSnapshotOrder(t *testing.T) {
	c := New()
	c.Add(Sample{Rank: 11, Pass: "plan", Phase: "instrument", Variant: "Usher"})
	c.Add(Sample{Rank: 8, Pass: "vfg", Phase: "vfg", Variant: "tl"})
	c.Add(Sample{Rank: 11, Pass: "plan", Phase: "instrument", Variant: "MSan"})
	c.Add(Sample{Rank: 8, Pass: "vfg", Phase: "vfg", Variant: "full"})
	c.Add(Sample{Rank: 0, Pass: "parse", Phase: "frontend"})
	var got []string
	for _, ps := range c.Snapshot() {
		got = append(got, ps.Pass+"/"+ps.Variant)
	}
	want := []string{"parse/", "vfg/full", "vfg/tl", "plan/MSan", "plan/Usher"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("snapshot order = %v, want %v", got, want)
	}
}

// TestSnapshotIsCopy: mutating a snapshot's counter map must not leak back
// into the collector.
func TestSnapshotIsCopy(t *testing.T) {
	c := New()
	c.Add(Sample{Pass: "pointer", Counters: map[string]int64{"constraints": 1}})
	snap := c.Snapshot()
	snap[0].Counters["constraints"] = 999
	if v := c.Snapshot()[0].Counters["constraints"]; v != 1 {
		t.Errorf("collector counter mutated through snapshot: %d", v)
	}
}

func TestScrub(t *testing.T) {
	c := New()
	c.Add(Sample{Pass: "pointer", Wall: time.Second, AllocBytes: 42,
		Counters: map[string]int64{"constraints": 5}})
	snap := Scrub(c.Snapshot())
	ps := snap[0]
	if ps.WallSec != 0 || ps.AllocBytes != 0 {
		t.Errorf("Scrub left measurements: wall=%v alloc=%d", ps.WallSec, ps.AllocBytes)
	}
	if ps.Runs != 1 || ps.Counters["constraints"] != 5 {
		t.Errorf("Scrub damaged deterministic fields: %+v", ps)
	}
}

// TestConcurrentAdd exercises the collector from many goroutines (run
// under -race in CI) and checks the commutative-aggregation contract.
func TestConcurrentAdd(t *testing.T) {
	c := New()
	const goroutines, adds = 8, 100
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < adds; j++ {
				c.Add(Sample{Pass: "pointer", Counters: map[string]int64{"constraints": 1}})
			}
		}()
	}
	wg.Wait()
	ps := c.Snapshot()[0]
	if ps.Runs != goroutines*adds {
		t.Errorf("Runs = %d, want %d", ps.Runs, goroutines*adds)
	}
	if ps.Counters["constraints"] != goroutines*adds {
		t.Errorf("counter = %d, want %d", ps.Counters["constraints"], goroutines*adds)
	}
}

func TestWriteTable(t *testing.T) {
	c := New()
	c.Add(Sample{Rank: 6, Pass: "pointer", Phase: "pointer",
		Counters: map[string]int64{"constraints": 7, "copy_edges": 2}})
	c.Add(Sample{Rank: 0, Pass: "parse", Phase: "frontend"})
	var sb strings.Builder
	Write(&sb, c.Snapshot())
	out := sb.String()
	for _, want := range []string{"pass", "counters", "constraints=7 copy_edges=2", "parse"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q:\n%s", want, out)
		}
	}
	// Counter-less passes render "-" so columns stay aligned.
	if !strings.Contains(out, "-") {
		t.Errorf("table output missing '-' placeholder:\n%s", out)
	}
}
