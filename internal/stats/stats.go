// Package stats collects per-pass observability for the static analysis
// pipeline: wall-clock time, allocation volume and pass-specific work
// counters, aggregated across every program a driver analyzes.
//
// The split between measurements and counters is load-bearing for the
// drivers' determinism contract (usher-bench and usher-difftest promise
// bit-identical reports for any -parallel value):
//
//   - WallSec and AllocBytes are measurements. They vary run to run and
//     across worker counts (allocation attribution is only clean with one
//     worker), and are excluded from the bit-identical contract.
//   - Runs and Counters are pure functions of the analyzed programs. Each
//     pipeline pass runs exactly once per artifact store regardless of
//     scheduling, and counter aggregation is commutative, so these fields
//     are identical for any parallelism.
//
// A nil *Collector is valid everywhere and records nothing, so callers
// thread one collector through unconditionally and only allocate it when
// observability was requested (the -stats flag).
package stats

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"text/tabwriter"
	"time"
)

// PassStats is the aggregate of every observed run of one pass variant.
type PassStats struct {
	// Pass and Phase identify the pipeline pass (see internal/pipeline's
	// registry); Variant distinguishes keyed instances of the same pass
	// (the VFG graph flavor, the instrumentation configuration, the
	// scalar-optimization level).
	Pass    string `json:"pass"`
	Phase   string `json:"phase"`
	Variant string `json:"variant,omitempty"`
	// Runs counts pass executions. Deterministic for any -parallel value.
	Runs int64 `json:"runs"`
	// WallSec and AllocBytes are measurements (see the package comment);
	// they are NOT covered by the bit-identical-under-parallel contract.
	WallSec    float64 `json:"wall_sec"`
	AllocBytes uint64  `json:"alloc_bytes"`
	// Counters are the pass-specific work counters (constraints solved,
	// SCCs collapsed, VFG nodes/edges, MFCs simplified, checks elided, ...),
	// summed over runs. Deterministic for any -parallel value.
	Counters map[string]int64 `json:"counters,omitempty"`

	// rank orders snapshots by pipeline position (registration order).
	rank int
}

// Sample is one observed pass execution.
type Sample struct {
	// Rank is the pass's position in the pipeline registry; snapshots are
	// sorted by it so reports read in pipeline order.
	Rank                 int
	Pass, Phase, Variant string
	Wall                 time.Duration
	AllocBytes           uint64
	Counters             map[string]int64
}

// Collector aggregates samples. It is safe for concurrent use, and a nil
// collector silently discards everything.
type Collector struct {
	mu    sync.Mutex
	byKey map[collectorKey]*PassStats
}

type collectorKey struct{ pass, variant string }

// New returns an empty collector.
func New() *Collector {
	return &Collector{byKey: make(map[collectorKey]*PassStats)}
}

// Enabled reports whether the collector records samples (i.e. is non-nil).
func (c *Collector) Enabled() bool { return c != nil }

// Add folds one sample into the aggregate.
func (c *Collector) Add(s Sample) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	k := collectorKey{s.Pass, s.Variant}
	ps := c.byKey[k]
	if ps == nil {
		ps = &PassStats{Pass: s.Pass, Phase: s.Phase, Variant: s.Variant, rank: s.Rank}
		c.byKey[k] = ps
	}
	ps.Runs++
	ps.WallSec += s.Wall.Seconds()
	ps.AllocBytes += s.AllocBytes
	if len(s.Counters) > 0 {
		if ps.Counters == nil {
			ps.Counters = make(map[string]int64, len(s.Counters))
		}
		for name, v := range s.Counters {
			ps.Counters[name] += v
		}
	}
}

// Snapshot returns the aggregated stats in pipeline order (rank, then
// pass name, then variant). The returned slices and maps are copies; the
// collector may keep aggregating afterwards.
func (c *Collector) Snapshot() []PassStats {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]PassStats, 0, len(c.byKey))
	for _, ps := range c.byKey {
		cp := *ps
		if ps.Counters != nil {
			cp.Counters = make(map[string]int64, len(ps.Counters))
			for name, v := range ps.Counters {
				cp.Counters[name] = v
			}
		}
		out = append(out, cp)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.rank != b.rank {
			return a.rank < b.rank
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Variant < b.Variant
	})
	return out
}

// Scrub zeroes the measurement fields of a snapshot in place and returns
// it, leaving only the deterministic fields (Runs, Counters). Tests use
// it to state the bit-identical-under-parallel contract precisely.
func Scrub(snap []PassStats) []PassStats {
	for i := range snap {
		snap[i].WallSec = 0
		snap[i].AllocBytes = 0
	}
	return snap
}

// Write renders a snapshot as an aligned text table: one row per pass
// variant with wall time, allocation volume and the counters.
func Write(w io.Writer, snap []PassStats) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pass\tphase\tvariant\truns\twall(ms)\talloc(MB)\tcounters")
	for _, ps := range snap {
		variant := ps.Variant
		if variant == "" {
			variant = "-"
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%d\t%.2f\t%.2f\t%s\n",
			ps.Pass, ps.Phase, variant, ps.Runs,
			1000*ps.WallSec, float64(ps.AllocBytes)/(1<<20), formatCounters(ps.Counters))
	}
	tw.Flush()
}

func formatCounters(cs map[string]int64) string {
	if len(cs) == 0 {
		return "-"
	}
	names := make([]string, 0, len(cs))
	for name := range cs {
		names = append(names, name)
	}
	sort.Strings(names)
	parts := make([]string, len(names))
	for i, name := range names {
		parts[i] = fmt.Sprintf("%s=%d", name, cs[name])
	}
	return strings.Join(parts, " ")
}
