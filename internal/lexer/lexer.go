// Package lexer tokenizes MiniC source text.
//
// Position model: columns count characters (runes), not bytes, and tabs
// count as one character each, matching how editors report the cursor
// column. "\n", "\r\n" and a lone "\r" all terminate a line; the "\n" of
// a CRLF pair does not start a line of its own, so files saved with
// Windows line endings get the same positions as their Unix twins.
package lexer

import (
	"fmt"
	"unicode/utf8"

	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/token"
)

// Lexer scans MiniC source text into tokens. The zero value is not usable;
// construct with New.
type Lexer struct {
	src  string
	file string
	off  int // byte offset of the next unread byte
	line int
	col  int
	errs []*diag.Diagnostic
}

// New returns a lexer over src. The file name is used in positions only.
func New(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// Errors returns the lexical diagnostics encountered so far.
func (l *Lexer) Errors() []*diag.Diagnostic { return l.errs }

func (l *Lexer) errorf(pos token.Pos, format string, args ...any) {
	l.errs = append(l.errs, &diag.Diagnostic{Phase: diag.PhaseLex, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{File: l.file, Line: l.line, Col: l.col}
}

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	switch {
	case c == '\n':
		l.line++
		l.col = 1
	case c == '\r':
		// "\r\n" is one line terminator: swallow the '\n' here so the
		// pair advances the line exactly once and the '\r' never lands
		// in a column count. A lone '\r' terminates a line by itself.
		l.line++
		l.col = 1
		if l.off < len(l.src) && l.src[l.off] == '\n' {
			l.off++
		}
	case c&0xC0 == 0x80:
		// UTF-8 continuation byte: still inside the character whose
		// leading byte already advanced the column. Columns count
		// characters, not bytes, so editors and diagnostics agree on
		// sources with non-ASCII comments.
	default:
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' && l.peek() != '\r' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
			}
		default:
			return
		}
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || isDigit(c) }

// Next returns the next token. After the input is exhausted it returns EOF
// tokens forever.
func (l *Lexer) Next() token.Token {
	l.skipSpaceAndComments()
	pos := l.pos()
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.advance()

	mk := func(k token.Kind, text string) token.Token {
		return token.Token{Kind: k, Text: text, Pos: pos}
	}
	// two-character operator helper: if the next byte is want, consume it
	// and return two; otherwise return one.
	two := func(want byte, twoK, oneK token.Kind) token.Token {
		if l.peek() == want {
			l.advance()
			return mk(twoK, string([]byte{c, want}))
		}
		return mk(oneK, string(c))
	}

	switch {
	case isDigit(c):
		start := l.off - 1
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return mk(token.NUMBER, l.src[start:l.off])
	case c == '#':
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		name := l.src[start:l.off]
		if name == "include" {
			return mk(token.INCLUDE, "#include")
		}
		l.errorf(pos, "unknown directive #%s (only #include is supported)", name)
		return mk(token.ILLEGAL, "#"+name)
	case c == '"':
		// String literal (a value in expression position, a path after
		// #include). The token text carries the decoded bytes; the literal
		// must close before the end of the line.
		start := l.off
		var buf []byte
		for l.off < len(l.src) {
			switch l.peek() {
			case '"':
				l.advance()
				return mk(token.STRING, string(buf))
			case '\n', '\r':
				l.errorf(pos, "unterminated string literal")
				return mk(token.ILLEGAL, l.src[start-1:l.off])
			case '\\':
				l.advance()
				b, ok := l.escape(pos)
				if !ok {
					return mk(token.ILLEGAL, l.src[start-1:l.off])
				}
				buf = append(buf, b)
			default:
				buf = append(buf, l.advance())
			}
		}
		l.errorf(pos, "unterminated string literal")
		return mk(token.ILLEGAL, l.src[start-1:l.off])
	case c == '\'':
		// Character literal: exactly one (possibly escaped) byte.
		start := l.off
		var b byte
		switch l.peek() {
		case 0, '\n', '\r':
			l.errorf(pos, "unterminated character literal")
			return mk(token.ILLEGAL, l.src[start-1:l.off])
		case '\'':
			l.advance()
			l.errorf(pos, "empty character literal")
			return mk(token.ILLEGAL, "''")
		case '\\':
			l.advance()
			var ok bool
			b, ok = l.escape(pos)
			if !ok {
				return mk(token.ILLEGAL, l.src[start-1:l.off])
			}
		default:
			b = l.advance()
		}
		if l.peek() != '\'' {
			l.errorf(pos, "character literal must contain exactly one character")
			return mk(token.ILLEGAL, l.src[start-1:l.off])
		}
		l.advance()
		return mk(token.CHAR, string(b))
	case isIdentStart(c):
		start := l.off - 1
		for l.off < len(l.src) && isIdentCont(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if k, ok := token.Keywords[text]; ok {
			return mk(k, text)
		}
		return mk(token.IDENT, text)
	}

	switch c {
	case '(':
		return mk(token.LPAREN, "(")
	case ')':
		return mk(token.RPAREN, ")")
	case '{':
		return mk(token.LBRACE, "{")
	case '}':
		return mk(token.RBRACE, "}")
	case '[':
		return mk(token.LBRACKET, "[")
	case ']':
		return mk(token.RBRACKET, "]")
	case ',':
		return mk(token.COMMA, ",")
	case ';':
		return mk(token.SEMI, ";")
	case '.':
		if l.peek() == '.' && l.peek2() == '.' {
			l.advance()
			l.advance()
			return mk(token.ELLIPSIS, "...")
		}
		return mk(token.DOT, ".")
	case '~':
		return mk(token.TILDE, "~")
	case '^':
		return mk(token.CARET, "^")
	case '%':
		return mk(token.PERCENT, "%")
	case '/':
		return mk(token.SLASH, "/")
	case '*':
		return mk(token.STAR, "*")
	case '=':
		return two('=', token.EQ, token.ASSIGN)
	case '!':
		return two('=', token.NEQ, token.NOT)
	case '+':
		if l.peek() == '+' {
			l.advance()
			return mk(token.PLUSPLUS, "++")
		}
		return two('=', token.PLUSASSIGN, token.PLUS)
	case '-':
		if l.peek() == '-' {
			l.advance()
			return mk(token.MINUSMINUS, "--")
		}
		if l.peek() == '>' {
			l.advance()
			return mk(token.ARROW, "->")
		}
		return two('=', token.MINUSASSIGN, token.MINUS)
	case '&':
		return two('&', token.LAND, token.AMP)
	case '|':
		return two('|', token.LOR, token.PIPE)
	case '<':
		if l.peek() == '<' {
			l.advance()
			return mk(token.SHL, "<<")
		}
		return two('=', token.LEQ, token.LT)
	case '>':
		if l.peek() == '>' {
			l.advance()
			return mk(token.SHR, ">>")
		}
		return two('=', token.GEQ, token.GT)
	}
	if c >= utf8.RuneSelf {
		// Consume the whole rune so one illegal character yields one
		// diagnostic at one column, not a diagnostic per byte.
		start := l.off - 1
		r, size := utf8.DecodeRuneInString(l.src[start:])
		for i := 1; i < size; i++ {
			l.advance()
		}
		l.errorf(pos, "illegal character %q", r)
		return mk(token.ILLEGAL, l.src[start:l.off])
	}
	l.errorf(pos, "illegal character %q", c)
	return mk(token.ILLEGAL, string(c))
}

// escape decodes the escape sequence following a consumed backslash and
// returns the denoted byte. On an unknown escape it emits a diagnostic
// and reports ok=false.
func (l *Lexer) escape(pos token.Pos) (b byte, ok bool) {
	if l.off >= len(l.src) {
		l.errorf(pos, "unterminated escape sequence")
		return 0, false
	}
	c := l.advance()
	switch c {
	case 'n':
		return '\n', true
	case 't':
		return '\t', true
	case 'r':
		return '\r', true
	case '0':
		return 0, true
	case '\\', '"', '\'':
		return c, true
	case 'x':
		v := 0
		n := 0
		for n < 2 && l.off < len(l.src) {
			d := hexVal(l.peek())
			if d < 0 {
				break
			}
			v = v*16 + d
			l.advance()
			n++
		}
		if n == 0 {
			l.errorf(pos, `\x escape needs at least one hex digit`)
			return 0, false
		}
		return byte(v), true
	}
	l.errorf(pos, "unknown escape sequence \\%c", c)
	return 0, false
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'F':
		return int(c-'A') + 10
	}
	return -1
}

// All tokenizes the remaining input including the terminating EOF token.
func (l *Lexer) All() []token.Token {
	var toks []token.Token
	for {
		t := l.Next()
		toks = append(toks, t)
		if t.Kind == token.EOF {
			return toks
		}
	}
}
