package lexer

import (
	"testing"

	"github.com/valueflow/usher/internal/token"
)

func kinds(src string) []token.Kind {
	l := New("test.c", src)
	var ks []token.Kind
	for _, t := range l.All() {
		ks = append(ks, t.Kind)
	}
	return ks
}

func TestOperators(t *testing.T) {
	tests := []struct {
		src  string
		want []token.Kind
	}{
		{"+ - * / %", []token.Kind{token.PLUS, token.MINUS, token.STAR, token.SLASH, token.PERCENT, token.EOF}},
		{"== != <= >= < >", []token.Kind{token.EQ, token.NEQ, token.LEQ, token.GEQ, token.LT, token.GT, token.EOF}},
		{"&& || & |", []token.Kind{token.LAND, token.LOR, token.AMP, token.PIPE, token.EOF}},
		{"<< >>", []token.Kind{token.SHL, token.SHR, token.EOF}},
		{"-> . ++ --", []token.Kind{token.ARROW, token.DOT, token.PLUSPLUS, token.MINUSMINUS, token.EOF}},
		{"+= -= = !", []token.Kind{token.PLUSASSIGN, token.MINUSASSIGN, token.ASSIGN, token.NOT, token.EOF}},
		{"( ) { } [ ] , ;", []token.Kind{token.LPAREN, token.RPAREN, token.LBRACE, token.RBRACE, token.LBRACKET, token.RBRACKET, token.COMMA, token.SEMI, token.EOF}},
		{"~ ^", []token.Kind{token.TILDE, token.CARET, token.EOF}},
	}
	for _, tt := range tests {
		got := kinds(tt.src)
		if len(got) != len(tt.want) {
			t.Errorf("%q: got %v, want %v", tt.src, got, tt.want)
			continue
		}
		for i := range got {
			if got[i] != tt.want[i] {
				t.Errorf("%q: token %d: got %v, want %v", tt.src, i, got[i], tt.want[i])
			}
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	l := New("t.c", "int x while whilex _y y2 struct")
	toks := l.All()
	want := []struct {
		kind token.Kind
		text string
	}{
		{token.KwInt, "int"},
		{token.IDENT, "x"},
		{token.KwWhile, "while"},
		{token.IDENT, "whilex"},
		{token.IDENT, "_y"},
		{token.IDENT, "y2"},
		{token.KwStruct, "struct"},
		{token.EOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d", len(toks), len(want))
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d: got %v %q, want %v %q", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestNumbers(t *testing.T) {
	l := New("t.c", "0 42 123456789")
	toks := l.All()
	wantTexts := []string{"0", "42", "123456789"}
	for i, w := range wantTexts {
		if toks[i].Kind != token.NUMBER || toks[i].Text != w {
			t.Errorf("token %d: got %v %q, want NUMBER %q", i, toks[i].Kind, toks[i].Text, w)
		}
	}
}

func TestComments(t *testing.T) {
	src := `int a; // line comment
/* block
   comment */ int b;`
	got := kinds(src)
	want := []token.Kind{token.KwInt, token.IDENT, token.SEMI, token.KwInt, token.IDENT, token.SEMI, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestUnterminatedComment(t *testing.T) {
	l := New("t.c", "/* never closed")
	l.All()
	if len(l.Errors()) == 0 {
		t.Error("expected error for unterminated block comment")
	}
}

func TestPositions(t *testing.T) {
	l := New("t.c", "int\n  x;")
	toks := l.All()
	if p := toks[0].Pos; p.Line != 1 || p.Col != 1 {
		t.Errorf("int at %d:%d, want 1:1", p.Line, p.Col)
	}
	if p := toks[1].Pos; p.Line != 2 || p.Col != 3 {
		t.Errorf("x at %d:%d, want 2:3", p.Line, p.Col)
	}
}

func TestIllegalChar(t *testing.T) {
	l := New("t.c", "int $x;")
	toks := l.All()
	found := false
	for _, tk := range toks {
		if tk.Kind == token.ILLEGAL {
			found = true
		}
	}
	if !found || len(l.Errors()) == 0 {
		t.Error("expected ILLEGAL token and error for '$'")
	}
}

func TestEOFForever(t *testing.T) {
	l := New("t.c", "")
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("call %d: got %v, want EOF", i, tk.Kind)
		}
	}
}
