package pointer

// White-box benchmarks for the constraint-generation phase alone: the
// two-level slice interning (regNodes/fieldNodes keyed by the IR's dense
// ids) against the legacy struct-keyed map interning. The solve phase is
// deliberately excluded — BenchmarkSolver* in solver_bench_test.go
// covers it end to end.

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/workload"
)

func generateBenchProg(b *testing.B) *ir.Program {
	b.Helper()
	p, ok := workload.LargeByName("solver-medium")
	if !ok {
		b.Fatal("no solver-medium profile")
	}
	prog, err := compile.Source(p.Name+".c", workload.GenerateLarge(p))
	if err != nil {
		b.Fatal(err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		b.Fatal(err)
	}
	return prog
}

func BenchmarkSolverGenerate(b *testing.B) {
	prog := generateBenchProg(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newSolver(prog)
		s.generate()
	}
}

func BenchmarkSolverGenerateLegacy(b *testing.B) {
	prog := generateBenchProg(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newLegacySolver(prog)
		s.generate()
	}
}
