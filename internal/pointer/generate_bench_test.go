package pointer

// White-box benchmarks for the constraint-generation phase alone: the
// two-level slice interning (regNodes/fieldNodes keyed by the IR's dense
// ids) against the legacy struct-keyed map interning. The solve phase is
// deliberately excluded — BenchmarkSolver* in solver_bench_test.go
// covers it end to end.

import (
	"testing"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/lower"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/ssa"
	"github.com/valueflow/usher/internal/types"
	"github.com/valueflow/usher/internal/workload"
)

// compileSource is a minimal frontend for these white-box benchmarks.
// They live in package pointer (not pointer_test) for solver access, so
// they cannot import internal/compile: its implementation lives in
// internal/pipeline, which imports this package.
func compileSource(file, src string) (*ir.Program, error) {
	astProg, err := parser.Parse(file, src)
	if err != nil {
		return nil, err
	}
	info, err := types.Check(astProg)
	if err != nil {
		return nil, err
	}
	irp, err := lower.Lower(astProg, info)
	if err != nil {
		return nil, err
	}
	ssa.Promote(irp)
	for _, fn := range irp.Funcs {
		ir.ComputeCFG(fn)
	}
	return irp, nil
}

func generateBenchProg(b *testing.B) *ir.Program {
	b.Helper()
	p, ok := workload.LargeByName("solver-medium")
	if !ok {
		b.Fatal("no solver-medium profile")
	}
	prog, err := compileSource(p.Name+".c", workload.GenerateLarge(p))
	if err != nil {
		b.Fatal(err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		b.Fatal(err)
	}
	return prog
}

func BenchmarkSolverGenerate(b *testing.B) {
	prog := generateBenchProg(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newSolver(prog)
		s.generate()
	}
}

func BenchmarkSolverGenerateLegacy(b *testing.B) {
	prog := generateBenchProg(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newLegacySolver(prog)
		s.generate()
	}
}
