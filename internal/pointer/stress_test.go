package pointer_test

import (
	"reflect"
	"testing"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pointer"
)

// objNames maps locations to bare object/function names (Loc.String
// includes object ids, which the assertions here don't care about).
func objNames(locs []pointer.Loc) []string {
	var out []string
	for _, l := range locs {
		if l.Fn != nil {
			out = append(out, l.Fn.Name)
		} else {
			out = append(out, l.Obj.Name)
		}
	}
	return out
}

// The stress tests target the solver's cycle-elimination machinery:
// self-loop copy edges, copy cycles built from mutual recursion (both
// direct and through function pointers), and the interaction between
// collapsed cycles and field-sensitive locations.

// calleeNames returns the sorted callee names of every indirect call in
// fn, keyed nothing — just flattened in instruction order.
func calleeNames(res interface {
	Callees(*ir.Call) []*ir.Function
}, fn *ir.Function) [][]string {
	var out [][]string
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			c, ok := in.(*ir.Call)
			if !ok || c.Direct() != nil || c.Builtin != ir.NotBuiltin {
				continue
			}
			var names []string
			for _, f := range res.Callees(c) {
				names = append(names, f.Name)
			}
			out = append(out, names)
		}
	}
	return out
}

// TestSelfLoopCopyEdges: straight-line and loop-carried self-assignments
// create copy edges from a node (or its merged representative) to
// itself. The solver must neither diverge nor lose facts on them.
func TestSelfLoopCopyEdges(t *testing.T) {
	irp, res := analyze(t, `
int g;
int *self(int *p, int d) {
  if (d == 0) { return p; }
  return self(p, d - 1);
}
int main() {
  int a;
  int *p = &a;
  p = p;
  int i = 0;
  while (i < 3) {
    p = p;
    i = i + 1;
  }
  int *q = self(&g, 2);
  *p = 1;
  *q = 2;
  return *p + *q;
}`)
	main := irp.FuncByName("main")
	var stores []*ir.Store
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if st, ok := in.(*ir.Store); ok {
				stores = append(stores, st)
			}
		}
	}
	if len(stores) < 2 {
		t.Fatalf("want >= 2 stores in main, got %d:\n%s", len(stores), ir.PrintFunc(main))
	}
	// *p = 1 must see exactly {a}; *q = 2 exactly {g}: the self-loops (and
	// the self-recursive parameter cycle in self) must not smear sets.
	if got := objNames(res.PointsTo(stores[0].Addr)); !reflect.DeepEqual(got, []string{"a"}) {
		t.Errorf("pts(*p) = %v, want [a]", got)
	}
	if got := objNames(res.PointsTo(stores[1].Addr)); !reflect.DeepEqual(got, []string{"g"}) {
		t.Errorf("pts(*q) = %v, want [g]", got)
	}
	if !res.Recursive(irp.FuncByName("self")) {
		t.Errorf("self not marked recursive")
	}
}

// TestMutuallyRecursiveFunctionPointers: two functions call each other
// only through function-pointer globals, so the copy cycle between their
// parameter and return nodes is discovered while the call graph is still
// being resolved.
func TestMutuallyRecursiveFunctionPointers(t *testing.T) {
	irp, res := analyze(t, `
int cell;
int *(*g0)(int *, int);
int *(*g1)(int *, int);
int *f0(int *p, int d) {
  if (d == 0) { return p; }
  int *(*h)(int *, int) = g1;
  return h(p, d - 1);
}
int *f1(int *p, int d) {
  if (d == 0) { return p; }
  int *(*h)(int *, int) = g0;
  return h(p, d - 1);
}
int main() {
  g0 = f0;
  g1 = f1;
  int *r = f0(&cell, 4);
  return *r;
}`)
	f0, f1 := irp.FuncByName("f0"), irp.FuncByName("f1")
	if got := calleeNames(res, f0); !reflect.DeepEqual(got, [][]string{{"f1"}}) {
		t.Errorf("f0 indirect callees = %v, want [[f1]]", got)
	}
	if got := calleeNames(res, f1); !reflect.DeepEqual(got, [][]string{{"f0"}}) {
		t.Errorf("f1 indirect callees = %v, want [[f0]]", got)
	}
	if !res.Recursive(f0) || !res.Recursive(f1) {
		t.Errorf("f0/f1 recursive = %v/%v, want true/true", res.Recursive(f0), res.Recursive(f1))
	}
	main := irp.FuncByName("main")
	var ret *ir.Register
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if ld, ok := in.(*ir.Load); ok {
				ret = ld.Addr.(*ir.Register)
			}
		}
	}
	if ret == nil {
		t.Fatalf("no load of r in main:\n%s", ir.PrintFunc(main))
	}
	if got := objNames(res.PointsTo(ret)); !reflect.DeepEqual(got, []string{"cell"}) {
		t.Errorf("pts(r) = %v, want [cell]", got)
	}
}

// TestCycleCollapsePreservesFields: a copy cycle whose members carry
// field addresses is collapsed into one representative, but the field
// nodes themselves are collapse barriers — &s.a and &s.b must stay
// distinct locations afterwards, and values read through them must not
// cross-contaminate.
func TestCycleCollapsePreservesFields(t *testing.T) {
	irp, res := analyze(t, `
struct S { int *a; int *b; };
int x;
int y;
int *sel(struct S *s, int d);
int *sel2(struct S *s, int d) { return sel(s, d - 1); }
int *sel(struct S *s, int d) {
  if (d == 0) { return s->a; }
  return sel2(s, d);
}
int main() {
  struct S s;
  s.a = &x;
  s.b = &y;
  int *r = sel(&s, 3);
  int *q = s.b;
  int *p2 = r;
  int i = 0;
  while (i < 3) {
    r = p2;
    p2 = r;
    i = i + 1;
  }
  return *r + *q;
}`)
	main := irp.FuncByName("main")
	var loads []*ir.Load
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if ld, ok := in.(*ir.Load); ok {
				loads = append(loads, ld)
			}
		}
	}
	// Final loads are *r and *q (in source order after the s.b load).
	if len(loads) < 2 {
		t.Fatalf("want >= 2 loads in main, got %d:\n%s", len(loads), ir.PrintFunc(main))
	}
	rAddr, qAddr := loads[len(loads)-2].Addr, loads[len(loads)-1].Addr
	if got := objNames(res.PointsTo(rAddr)); !reflect.DeepEqual(got, []string{"x"}) {
		t.Errorf("pts(r) = %v, want [x] — cycle collapse leaked s.b into s.a", got)
	}
	if got := objNames(res.PointsTo(qAddr)); !reflect.DeepEqual(got, []string{"y"}) {
		t.Errorf("pts(q) = %v, want [y] — cycle collapse leaked s.a into s.b", got)
	}
}
