package pointer_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pointer"
)

func analyze(t *testing.T, src string) (*ir.Program, *pointer.Result) {
	t.Helper()
	irp := compile.MustSource("t.c", src)
	return irp, pointer.Analyze(irp)
}

// findReg locates the register defined by the first instruction in fn
// whose printed form contains substr.
func findReg(t *testing.T, fn *ir.Function, substr string) *ir.Register {
	t.Helper()
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if strings.Contains(in.String(), substr) && in.Defines() != nil {
				return in.Defines()
			}
		}
	}
	t.Fatalf("no defining instruction matching %q in %s:\n%s", substr, fn.Name, ir.PrintFunc(fn))
	return nil
}

func locNames(locs []pointer.Loc) []string {
	var out []string
	for _, l := range locs {
		out = append(out, l.String())
	}
	return out
}

func TestBasicAddressOf(t *testing.T) {
	irp, res := analyze(t, `
int main() {
  int a;
  int b;
  int *p = &a;
  int *q = &b;
  *p = 1;
  *q = 2;
  return a + b;
}`)
	main := irp.FuncByName("main")
	// p's value flows through stores/loads; find the alloca addresses.
	var pa, qa *ir.Register
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if a, ok := in.(*ir.Alloc); ok {
				switch a.Obj.Name {
				case "a":
					pa = a.Dst
				case "b":
					qa = a.Dst
				}
			}
		}
	}
	aLocs := res.PointsTo(pa)
	bLocs := res.PointsTo(qa)
	if len(aLocs) != 1 || aLocs[0].Obj.Name != "a" {
		t.Errorf("pts(&a) = %v", locNames(aLocs))
	}
	if len(bLocs) != 1 || bLocs[0].Obj.Name != "b" {
		t.Errorf("pts(&b) = %v", locNames(bLocs))
	}
}

func TestFlowThroughMemory(t *testing.T) {
	irp, res := analyze(t, `
int g;
int main() {
  int **pp = malloc(1);
  *pp = &g;
  int *p = *pp;
  *p = 3;
  return g;
}`)
	main := irp.FuncByName("main")
	p := findReg(t, main, "load") // the load of *pp... first load
	_ = p
	// The store *p = 3 must target the global g: find the last store's
	// address operand and query it.
	var lastStore *ir.Store
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if st, ok := in.(*ir.Store); ok {
				lastStore = st
			}
		}
	}
	locs := res.PointsTo(lastStore.Addr)
	found := false
	for _, l := range locs {
		if l.Obj != nil && l.Obj.Name == "g" {
			found = true
		}
	}
	if !found {
		t.Errorf("store addr pts = %v, want g", locNames(locs))
	}
}

func TestFieldSensitivity(t *testing.T) {
	irp, res := analyze(t, `
struct S { int *a; int *b; };
int x;
int y;
int main() {
  struct S s;
  s.a = &x;
  s.b = &y;
  int *p = s.a;
  *p = 1;
  return x;
}`)
	main := irp.FuncByName("main")
	var lastStore *ir.Store
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if st, ok := in.(*ir.Store); ok {
				lastStore = st
			}
		}
	}
	locs := res.PointsTo(lastStore.Addr)
	// p = s.a must point to x only, not y: field-sensitive.
	if len(locs) != 1 || locs[0].Obj.Name != "x" {
		t.Errorf("pts(p) = %v, want exactly [x] (field-sensitive)", locNames(locs))
	}
}

func TestArrayCollapsing(t *testing.T) {
	irp, res := analyze(t, `
int main() {
  int a[10];
  int *p = &a[3];
  *p = 1;
  return a[3];
}`)
	main := irp.FuncByName("main")
	var store *ir.Store
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if st, ok := in.(*ir.Store); ok {
				store = st
			}
		}
	}
	locs := res.PointsTo(store.Addr)
	if len(locs) != 1 || locs[0].Obj.Name != "a" || locs[0].Field != 0 {
		t.Errorf("pts into array = %v, want [a] collapsed", locNames(locs))
	}
	if !locs[0].Obj.Collapsed() {
		t.Error("array object must be collapsed")
	}
}

func TestInterproceduralFlow(t *testing.T) {
	irp, res := analyze(t, `
int g;
int *id(int *p) { return p; }
int main() {
  int *q = id(&g);
  *q = 5;
  return g;
}`)
	main := irp.FuncByName("main")
	var store *ir.Store
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if st, ok := in.(*ir.Store); ok {
				store = st
			}
		}
	}
	locs := res.PointsTo(store.Addr)
	if len(locs) != 1 || locs[0].Obj.Name != "g" {
		t.Errorf("pts(q) = %v, want [g]", locNames(locs))
	}
}

func TestIndirectCallResolution(t *testing.T) {
	irp, res := analyze(t, `
int f1(int x) { return x; }
int f2(int x) { return x + 1; }
int apply(int (*f)(int), int v) { return f(v); }
int main() {
  int a = apply(f1, 1);
  int b = apply(f2, 2);
  return a + b;
}`)
	apply := irp.FuncByName("apply")
	var indirect *ir.Call
	for _, b := range apply.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Direct() == nil && c.Builtin == ir.NotBuiltin {
				indirect = c
			}
		}
	}
	callees := res.Callees(indirect)
	names := map[string]bool{}
	for _, fn := range callees {
		names[fn.Name] = true
	}
	if !names["f1"] || !names["f2"] || len(callees) != 2 {
		t.Errorf("callees = %v, want {f1, f2}", names)
	}
	// Callers of f1 must include the indirect call.
	callers := res.Callers(irp.FuncByName("f1"))
	if len(callers) != 1 || callers[0] != indirect {
		t.Errorf("callers(f1) = %v", callers)
	}
}

func TestRecursionDetection(t *testing.T) {
	irp, res := analyze(t, `
int even(int n);
int odd(int n) { if (n == 0) { return 0; } return even(n - 1); }
int even(int n) { if (n == 0) { return 1; } return odd(n - 1); }
int fact(int n) { if (n < 2) { return 1; } return n * fact(n - 1); }
int leaf(int n) { return n; }
int main() { return even(4) + fact(3) + leaf(1); }`)
	for name, want := range map[string]bool{
		"even": true, "odd": true, "fact": true, "leaf": false, "main": false,
	} {
		if got := res.Recursive(irp.FuncByName(name)); got != want {
			t.Errorf("Recursive(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestUniqueTarget(t *testing.T) {
	irp, res := analyze(t, `
int a;
int b;
int main(int c) {
  int *p = &a;
  int *q;
  if (c) { q = &a; } else { q = &b; }
  *p = 1;
  *q = 2;
  return a + b;
}`)
	main := irp.FuncByName("main")
	var stores []*ir.Store
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if st, ok := in.(*ir.Store); ok {
				stores = append(stores, st)
			}
		}
	}
	var uniq, multi int
	for _, st := range stores {
		if _, ok := res.UniqueTarget(st.Addr); ok {
			uniq++
		} else if len(res.PointsTo(st.Addr)) > 1 {
			multi++
		}
	}
	if uniq < 1 {
		t.Errorf("no store with a unique target (p)")
	}
	if multi < 1 {
		t.Errorf("no store with multiple targets (q)")
	}
}

func TestHeapObjectsDistinctPerSite(t *testing.T) {
	irp, res := analyze(t, `
int main() {
  int *p = malloc(2);
  int *q = malloc(2);
  *p = 1;
  *q = 2;
  return *p + *q;
}`)
	main := irp.FuncByName("main")
	var allocs []*ir.Alloc
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if a, ok := in.(*ir.Alloc); ok && a.Obj.Kind == ir.ObjHeap {
				allocs = append(allocs, a)
			}
		}
	}
	if len(allocs) != 2 {
		t.Fatalf("heap allocs = %d, want 2", len(allocs))
	}
	l1 := res.PointsTo(allocs[0].Dst)
	l2 := res.PointsTo(allocs[1].Dst)
	if len(l1) != 1 || len(l2) != 1 || l1[0].Obj == l2[0].Obj {
		t.Errorf("allocation sites must be distinct objects: %v vs %v", locNames(l1), locNames(l2))
	}
}

func TestSoundnessAgainstRuntime(t *testing.T) {
	// Every address dereferenced at runtime must be in the static
	// points-to set (invariant 4 of DESIGN.md). Exercised on a program
	// with heap, fields, branches and function pointers.
	src := `
struct Node { int val; struct Node *next; };
struct Node *make(int v) {
  struct Node *n = malloc(sizeof(struct Node));
  n->val = v;
  n->next = 0;
  return n;
}
int sum(struct Node *head) {
  int s = 0;
  while (head != 0) { s += head->val; head = head->next; }
  return s;
}
int main() {
  struct Node *a = make(1);
  struct Node *b = make(2);
  a->next = b;
  return sum(a);
}`
	irp, res := analyze(t, src)
	// make() is called twice but there is one allocation site: both list
	// nodes must share one abstract object.
	makeFn := irp.FuncByName("make")
	var alloc *ir.Alloc
	for _, blk := range makeFn.Blocks {
		for _, in := range blk.Instrs {
			if a, ok := in.(*ir.Alloc); ok && a.Obj.Kind == ir.ObjHeap {
				alloc = a
			}
		}
	}
	if alloc == nil {
		t.Fatal("no heap alloc in make")
	}
	// sum's head->val load must point into that object.
	sumFn := irp.FuncByName("sum")
	var load *ir.Load
	for _, blk := range sumFn.Blocks {
		for _, in := range blk.Instrs {
			if l, ok := in.(*ir.Load); ok {
				load = l
				break
			}
		}
		if load != nil {
			break
		}
	}
	locs := res.PointsTo(load.Addr)
	found := false
	for _, l := range locs {
		if l.Obj == alloc.Obj {
			found = true
		}
	}
	if !found {
		t.Errorf("sum load pts %v does not include the make() allocation", locNames(locs))
	}
}

func TestFunctionPointersThroughMemory(t *testing.T) {
	// Function pointers stored in an array and loaded back: the indirect
	// call must resolve through the memory flow.
	irp, res := analyze(t, `
int f1(int x) { return x + 1; }
int f2(int x) { return x * 2; }
int main() {
  int (*tab[2])(int);
  tab[0] = f1;
  tab[1] = f2;
  int s = 0;
  for (int i = 0; i < 2; i++) {
    int (*g)(int) = tab[i];
    s += g(i);
  }
  return s;
}`)
	main := irp.FuncByName("main")
	var indirect *ir.Call
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Direct() == nil && c.Builtin == ir.NotBuiltin {
				indirect = c
			}
		}
	}
	if indirect == nil {
		t.Fatal("no indirect call found")
	}
	callees := res.Callees(indirect)
	names := map[string]bool{}
	for _, fn := range callees {
		names[fn.Name] = true
	}
	if !names["f1"] || !names["f2"] {
		t.Errorf("callees through memory = %v, want {f1, f2}", names)
	}
}

func TestDoubleIndirectionChain(t *testing.T) {
	irp, res := analyze(t, `
int target;
int main() {
  int *p = &target;
  int **pp = &p;
  int ***ppp = &pp;
  int *q = **ppp;
  *q = 9;
  return target;
}`)
	main := irp.FuncByName("main")
	var lastStore *ir.Store
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if st, ok := in.(*ir.Store); ok {
				lastStore = st
			}
		}
	}
	locs := res.PointsTo(lastStore.Addr)
	found := false
	for _, l := range locs {
		if l.Obj != nil && l.Obj.Name == "target" {
			found = true
		}
	}
	if !found {
		t.Errorf("***chain store pts = %v, want target", locNames(locs))
	}
}

func TestStructOfFunctionPointers(t *testing.T) {
	irp, res := analyze(t, `
struct Ops { int (*run)(int); int tag; };
int work(int x) { return x; }
int main() {
  struct Ops ops;
  ops.run = work;
  ops.tag = 1;
  int (*f)(int) = ops.run;
  return f(5);
}`)
	main := irp.FuncByName("main")
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if c, ok := in.(*ir.Call); ok && c.Direct() == nil && c.Builtin == ir.NotBuiltin {
				callees := res.Callees(c)
				if len(callees) != 1 || callees[0].Name != "work" {
					t.Errorf("struct-field fp callees = %v, want [work]", callees)
				}
				return
			}
		}
	}
	t.Fatal("no indirect call found")
}
