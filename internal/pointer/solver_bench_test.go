package pointer_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/workload"
)

func benchProgFor(b *testing.B, name string) *ir.Program {
	b.Helper()
	p, ok := workload.ByName(name)
	if !ok {
		b.Fatalf("no workload %s", name)
	}
	src := workload.Generate(p)
	prog, err := usher.Compile(p.Name+".c", src)
	if err != nil {
		b.Fatal(err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		b.Fatal(err)
	}
	return prog
}

// BenchmarkPointerSolve measures the inclusion-based solve on a mid-size
// program.
func BenchmarkPointerSolve(b *testing.B) {
	prog := benchProgFor(b, "mesa")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := pointer.Analyze(prog)
		if res == nil {
			b.Fatal("no result")
		}
	}
}

// BenchmarkPointerSolveLarge measures the solve on the largest suite
// program.
func BenchmarkPointerSolveLarge(b *testing.B) {
	prog := benchProgFor(b, "gcc")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.Analyze(prog)
	}
}

// BenchmarkPointerQueries measures the read-only query surface (frozen
// after solving): PointsTo over every load/store address in the program.
func BenchmarkPointerQueries(b *testing.B) {
	prog := benchProgFor(b, "mesa")
	res := pointer.Analyze(prog)
	var addrs []ir.Value
	for _, fn := range prog.Funcs {
		for _, blk := range fn.Blocks {
			for _, in := range blk.Instrs {
				switch in := in.(type) {
				case *ir.Load:
					addrs = append(addrs, in.Addr)
				case *ir.Store:
					addrs = append(addrs, in.Addr)
				}
			}
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		for _, a := range addrs {
			n += len(res.PointsTo(a))
		}
		if n == 0 {
			b.Fatal("no points-to facts")
		}
	}
}

// benchLargeProg compiles a solver-scaling profile (see
// internal/workload.LargeProfiles) under O0+IM.
func benchLargeProg(b *testing.B, name string) *ir.Program {
	b.Helper()
	p, ok := workload.LargeByName(name)
	if !ok {
		b.Fatalf("no large profile %s", name)
	}
	src := workload.GenerateLarge(p)
	prog, err := usher.Compile(p.Name+".c", src)
	if err != nil {
		b.Fatal(err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		b.Fatal(err)
	}
	return prog
}

// The BenchmarkSolver* family drives the solver-scaling acceptance
// criterion: the bit-vector solver vs the retired map-based baseline on
// the same programs (see EXPERIMENTS.md, "Solver scaling"). CI runs them
// with -benchtime=1x as a smoke test; the recorded numbers in
// BENCH_solver_baseline.json come from a full -benchtime run.

func BenchmarkSolverLarge(b *testing.B) {
	prog := benchLargeProg(b, "solver-large")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.Analyze(prog)
	}
}

func BenchmarkSolverLargeLegacy(b *testing.B) {
	prog := benchLargeProg(b, "solver-large")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.AnalyzeLegacy(prog)
	}
}

func BenchmarkSolverMedium(b *testing.B) {
	prog := benchLargeProg(b, "solver-medium")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.Analyze(prog)
	}
}

func BenchmarkSolverMediumLegacy(b *testing.B) {
	prog := benchLargeProg(b, "solver-medium")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.AnalyzeLegacy(prog)
	}
}

func BenchmarkSolverSmall(b *testing.B) {
	prog := benchLargeProg(b, "solver-small")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.Analyze(prog)
	}
}

func BenchmarkSolverSmallLegacy(b *testing.B) {
	prog := benchLargeProg(b, "solver-small")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pointer.AnalyzeLegacy(prog)
	}
}
