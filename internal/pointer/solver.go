package pointer

import (
	"sort"

	"github.com/valueflow/usher/internal/bitset"
	"github.com/valueflow/usher/internal/ir"
)

// This file is the production Andersen solver, engineered around three
// classic scaling techniques (see DESIGN.md, "Solver architecture"):
//
//   - Bit-vector points-to sets. Abstract locations get dense ids as they
//     are created; each constraint node's points-to set and pending delta
//     are bitset.Sets over those ids, so set union, membership and
//     difference run word-at-a-time instead of per-element map probes.
//
//   - Difference propagation. Every node carries a delta of facts not yet
//     pushed through its constraints. Worklist visits process only the
//     delta, and propagation along a copy edge is a single word-level
//     union-with-difference; a warm edge (nothing new) costs a few word
//     compares.
//
//   - Online cycle elimination. Copy-edge cycles make the worklist thrash:
//     every member re-propagates the whole set around the ring. Following
//     lazy cycle detection (Hardekopf & Lin), a propagation that changes
//     nothing between two nodes with equal points-to sets triggers a
//     Tarjan SCC pass over the copy graph, and every multi-node SCC is
//     collapsed into a union-find representative. Location nodes are
//     collapse barriers: merging two distinct abstract locations would
//     change the analysis' answers (see TestCycleCollapsePreservesFields),
//     so cycles running through memory are only shortened, never fused.
//
// Node interning avoids hashing where the IR already provides dense ids:
// registers are keyed [function index][register id], object fields
// [object id][field], globals and functions by their dense ids — two-level
// slice lookups instead of struct-keyed map probes (see
// BenchmarkSolverGenerate).
//
// The solved state honors the same read-only contract as before: freeze()
// flattens the union-find, and every query entry point canonicalizes with
// findRO (no path compression), so a frozen Result performs no writes and
// can be shared across goroutines (the usher.Session contract).

type fieldCons struct {
	dst int
	off int
}

// node holds the per-node constraint state.
type node struct {
	pts   bitset.Set // location ids
	delta bitset.Set // newly added location ids, pending propagation
	succs []int32    // copy edges out (node ids, insertion order)
	// Successor dedup is hybrid: short lists are scanned linearly; once a
	// node crosses succListMax edges, membership moves to a bit set
	// (succBig). Merging a small node into a big one may leave a few list
	// entries out of the set, so a duplicate edge can slip in — harmless,
	// since propagation is idempotent; dedup is an optimization only.
	succSet bitset.Set // bits are node ids at insertion time (pre-union)
	succBig bool

	loads   []int32 // x = *n : dst node ids
	stores  []int32 // *n = y : src node ids
	fields  []fieldCons
	indexes []int32 // x = n[idx] : dst node ids
	calls   []*ir.Call

	// locID indexes solver.locs for location nodes; -1 otherwise.
	locID int32
}

type solver struct {
	prog *ir.Program

	nodes  []*node
	arena  []node // chunked node storage: stable pointers, amortized allocs
	parent []int32

	// locs and locNode give every abstract location a dense id: locs[lid]
	// is the location, locNode[lid] the node created for it (canonicalize
	// through find before use — collapsing merges field nodes).
	locs    []Loc
	locNode []int32

	// Two-level slice interning over the IR's dense ids (-1 = no node).
	fnIdx      map[*ir.Function]int
	regNodes   [][]int32    // [fnIdx][register id]
	funcNodes  []int32      // [fnIdx]: function location nodes
	funcConsts []int32      // [fnIdx]: constant function-address nodes
	fieldNodes [][]int32    // [object id][field]
	globNodes  []int32      // [object id]: global-address operand nodes
	collapsed  []bool       // [object id]
	retVals    [][]ir.Value // [fnIdx]: returned values

	callees map[*ir.Call][]*ir.Function
	// resolved guards against re-adding call edges (bits are fn indexes).
	resolved map[*ir.Call]*bitset.Set

	work []int32
	// onWork dedupes worklist entries: a node already queued (and not yet
	// dequeued) is not pushed again — its pending delta covers both pushes.
	onWork bitset.Set

	// edgeEpoch counts copy-edge insertions; lcdEpoch records the epoch of
	// the last cycle-collapse pass; lcdTriggers counts suspected-cycle
	// propagations since that pass. A collapse pass only runs once enough
	// suspicions accumulate after graph growth, so its O(N+E) cost is
	// amortized against real worklist thrash, not paid per trigger.
	edgeEpoch   int
	lcdEpoch    int
	lcdTriggers int

	// visits counts worklist visits with a non-empty delta; waves counts
	// worklist rounds (each round is one wave of the wave-parallel solver);
	// sccCollapsed counts multi-node SCCs folded by collapseCycles. All
	// feed SolverStats (pure functions of the input program: the worklist
	// is deterministic — and the wave solver's schedule is worker-count
	// independent, see parallel.go — so they are covered by the drivers'
	// bit-identical reporting contract).
	visits       int
	waves        int
	sccCollapsed int

	// Scratch state reused across collapseCycles passes.
	sccIndex   []int32
	sccLow     []int32
	sccOnStack []bool
	sccStack   []int32
	sccDfs     []sccFrame

	// spare recycles delta storage across worklist visits.
	spare bitset.Set
}

// lcdTriggerBatch is the number of suspected-cycle propagations that must
// accumulate (after new edges appeared) before a Tarjan collapse pass runs.
const lcdTriggerBatch = 256

// succListMax is the successor-list length at which a node's edge dedup
// switches from linear scan to a bit set.
const succListMax = 32

// sccFrame is a collapseCycles DFS stack frame.
type sccFrame struct {
	v  int32
	si int // next successor index to examine
}

func newSolver(prog *ir.Program) *solver {
	s := &solver{
		prog:     prog,
		fnIdx:    make(map[*ir.Function]int, len(prog.Funcs)),
		callees:  make(map[*ir.Call][]*ir.Function),
		resolved: make(map[*ir.Call]*bitset.Set),
	}
	for i, fn := range prog.Funcs {
		s.fnIdx[fn] = i
	}
	nf := len(prog.Funcs)
	s.regNodes = make([][]int32, nf)
	s.funcNodes = newNeg32(nf)
	s.funcConsts = newNeg32(nf)
	s.retVals = make([][]ir.Value, nf)
	maxObj := 0
	for _, o := range prog.Objects() {
		if o.ID >= maxObj {
			maxObj = o.ID + 1
		}
	}
	s.fieldNodes = make([][]int32, maxObj)
	s.globNodes = newNeg32(maxObj)
	s.collapsed = make([]bool, maxObj)
	return s
}

// newNeg32 returns an n-slot table initialized to the -1 sentinel.
func newNeg32(n int) []int32 {
	t := make([]int32, n)
	for i := range t {
		t[i] = -1
	}
	return t
}

// grow32 extends t with -1 slots to hold index n.
func grow32(t []int32, n int) []int32 {
	for len(t) <= n {
		t = append(t, -1)
	}
	return t
}

func (s *solver) newNode() int {
	if len(s.arena) == 0 {
		s.arena = make([]node, 512)
	}
	nd := &s.arena[0]
	s.arena = s.arena[1:]
	nd.locID = -1
	id := len(s.nodes)
	s.nodes = append(s.nodes, nd)
	s.parent = append(s.parent, int32(id))
	return id
}

// newLocNode creates a node representing the abstract location loc and
// assigns it the next dense location id.
func (s *solver) newLocNode(loc Loc) int {
	id := s.newNode()
	lid := len(s.locs)
	s.locs = append(s.locs, loc)
	s.locNode = append(s.locNode, int32(id))
	s.nodes[id].locID = int32(lid)
	return id
}

func (s *solver) find(n int) int {
	for int(s.parent[n]) != n {
		s.parent[n] = s.parent[s.parent[n]]
		n = int(s.parent[n])
	}
	return n
}

// findRO canonicalizes without path compression. Query entry points use
// it so that a solved Result is strictly read-only and can be shared
// across concurrent consumers (path compression writes would race).
func (s *solver) findRO(n int) int {
	for int(s.parent[n]) != n {
		n = int(s.parent[n])
	}
	return n
}

// freeze flattens the union-find once solving is done, so subsequent
// queries perform no writes. Every points-to set is sealed: a frozen
// Result is shared read-only across goroutines (the usher.Session
// contract), and sealing turns any accidental post-freeze mutation into
// an immediate panic instead of a data race.
func (s *solver) freeze() {
	for i := range s.parent {
		s.parent[i] = int32(s.find(i))
	}
	for _, nd := range s.nodes {
		nd.pts.Seal()
	}
}

// union merges node b into node a (canonicalizing both), returning the
// root. When exactly one of the two is a location node it becomes the
// root, so a location never loses its identity to a register
// representative.
func (s *solver) union(a, b int) int {
	a = s.merge(a, b)
	// Re-push the whole set through the merged constraints once.
	na := s.nodes[a]
	if !na.pts.Empty() {
		na.delta.CopyFrom(&na.pts)
		s.enqueue(a)
	}
	return a
}

// merge is union without the re-push: the caller is responsible for
// re-enqueueing the representative with its full set once a batch of
// merges is done (collapseCycles folds whole SCCs with one re-push).
func (s *solver) merge(a, b int) int {
	a, b = s.find(a), s.find(b)
	if a == b {
		return a
	}
	na, nb := s.nodes[a], s.nodes[b]
	if na.locID < 0 && nb.locID >= 0 {
		a, b = b, a
		na, nb = nb, na
	}
	s.parent[b] = int32(a)
	na.pts.UnionDiffInto(&nb.pts, &na.delta)
	na.succs = append(na.succs, nb.succs...)
	na.succSet.UnionWith(&nb.succSet)
	na.succBig = na.succBig || nb.succBig
	na.loads = append(na.loads, nb.loads...)
	na.stores = append(na.stores, nb.stores...)
	na.fields = append(na.fields, nb.fields...)
	na.indexes = append(na.indexes, nb.indexes...)
	na.calls = append(na.calls, nb.calls...)
	return a
}

func (s *solver) enqueue(n int) {
	if s.onWork.Add(n) {
		s.work = append(s.work, int32(n))
	}
}

func (s *solver) regNode(r *ir.Register) int {
	fi, ok := s.fnIdx[r.Fn]
	if !ok {
		// A register of a function outside the program: no constraints can
		// involve it (ir.Verify rejects such IR); model it as a fresh node.
		return s.newNode()
	}
	regs := s.regNodes[fi]
	if regs == nil {
		regs = newNeg32(r.Fn.NumRegs())
		s.regNodes[fi] = regs
	}
	if r.ID >= len(regs) {
		regs = grow32(regs, r.ID)
		s.regNodes[fi] = regs
	}
	if id := regs[r.ID]; id >= 0 {
		return int(id)
	}
	id := s.newNode()
	regs[r.ID] = int32(id)
	return id
}

// fieldNode returns the canonical node for (obj, field).
func (s *solver) fieldNode(obj *ir.Object, field int) int {
	if obj.ID >= len(s.collapsed) {
		// An object minted after solver construction (not produced by any
		// current pipeline): grow the tables.
		s.fieldNodes = append(s.fieldNodes, make([][]int32, obj.ID+1-len(s.fieldNodes))...)
		s.globNodes = grow32(s.globNodes, obj.ID)
		s.collapsed = append(s.collapsed, make([]bool, obj.ID+1-len(s.collapsed))...)
	}
	if s.collapsed[obj.ID] || obj.Collapsed() {
		field = 0
	} else if field < 0 || field >= obj.Size {
		// Out-of-bounds constant offset: fold to the collapsed view to
		// stay sound.
		s.collapseObj(obj)
		field = 0
	}
	fields := s.fieldNodes[obj.ID]
	if fields == nil {
		n := obj.Size
		if s.collapsed[obj.ID] || obj.Collapsed() {
			// Only field 0 is ever addressed: a 1-slot table keeps a
			// collapsed char c[1e9] from allocating (and collapseObj from
			// walking) a billion-entry table.
			n = 1
		}
		if n < 1 {
			n = 1
		}
		fields = newNeg32(n)
		s.fieldNodes[obj.ID] = fields
	}
	if id := fields[field]; id >= 0 {
		return s.find(int(id))
	}
	id := s.newLocNode(Loc{Obj: obj, Field: field})
	fields[field] = int32(id)
	return id
}

func (s *solver) funcNode(fn *ir.Function) int {
	fi := s.fnIdx[fn]
	if id := s.funcNodes[fi]; id >= 0 {
		return int(id)
	}
	id := s.newLocNode(Loc{Fn: fn})
	s.funcNodes[fi] = int32(id)
	return id
}

// collapseObj makes obj field-insensitive, merging all its field nodes.
func (s *solver) collapseObj(obj *ir.Object) {
	if s.collapsed[obj.ID] {
		return
	}
	s.collapsed[obj.ID] = true
	obj.Collapse()
	base := s.find(s.fieldNode(obj, 0))
	for f, id := range s.fieldNodes[obj.ID] {
		if f != 0 && id >= 0 {
			base = s.union(base, s.find(int(id)))
		}
	}
	// The merged representative answers for the whole object.
	s.nodes[base].locID = s.nodes[s.find(int(s.fieldNodes[obj.ID][0]))].locID
	if lid := s.nodes[base].locID; lid >= 0 {
		s.locs[lid] = Loc{Obj: obj, Field: 0}
	}
}

// operandNode returns the constraint node of an operand. Constants have
// no node. When create is false, missing nodes are not materialized.
func (s *solver) operandNode(v ir.Value, create bool) (int, bool) {
	switch v := v.(type) {
	case *ir.Register:
		if fi, ok := s.fnIdx[v.Fn]; ok {
			if regs := s.regNodes[fi]; regs != nil && v.ID < len(regs) && regs[v.ID] >= 0 {
				return s.findRO(int(regs[v.ID])), true
			}
		}
		if !create {
			return 0, false
		}
		return s.regNode(v), true
	case *ir.GlobalAddr:
		if v.Obj.ID < len(s.globNodes) {
			if id := s.globNodes[v.Obj.ID]; id >= 0 {
				return s.findRO(int(id)), true
			}
		}
		if !create {
			return 0, false
		}
		id := s.newNode()
		s.globNodes[v.Obj.ID] = int32(id)
		s.addLoc(id, s.fieldNode(v.Obj, 0))
		return id, true
	case *ir.FuncValue:
		// A constant function address: node with the singleton location.
		id := s.funcConstNode(v.Fn, create)
		if id < 0 {
			return 0, false
		}
		return id, true
	}
	return 0, false
}

func (s *solver) funcConstNode(fn *ir.Function, create bool) int {
	fi, ok := s.fnIdx[fn]
	if !ok {
		return -1
	}
	if id := s.funcConsts[fi]; id >= 0 {
		return s.findRO(int(id))
	}
	if !create {
		return -1
	}
	id := s.newNode()
	s.funcConsts[fi] = int32(id)
	s.addLoc(id, s.funcNode(fn))
	return id
}

// addLoc adds the abstract location held by node loc to pts(n).
func (s *solver) addLoc(n, loc int) {
	n = s.find(n)
	lid := int(s.nodes[s.find(loc)].locID)
	nd := s.nodes[n]
	if nd.pts.Add(lid) {
		nd.delta.Add(lid)
		s.enqueue(n)
	}
}

func (s *solver) addEdge(from, to int) {
	from, to = s.find(from), s.find(to)
	if from == to {
		return
	}
	nf := s.nodes[from]
	if nf.succBig {
		if !nf.succSet.Add(to) {
			return
		}
	} else {
		for _, e := range nf.succs {
			if int(e) == to {
				return
			}
		}
		if len(nf.succs) >= succListMax {
			nf.succBig = true
			for _, e := range nf.succs {
				nf.succSet.Add(int(e))
			}
			nf.succSet.Add(to)
		}
	}
	nf.succs = append(nf.succs, int32(to))
	s.edgeEpoch++
	// Propagate the existing points-to set across the new edge.
	nt := s.nodes[to]
	if nt.pts.UnionDiffInto(&nf.pts, &nt.delta) {
		s.enqueue(to)
	}
}

// assign adds pts(dst) ⊇ pts(src) for an operand src.
func (s *solver) assign(dst *ir.Register, src ir.Value) {
	sn, ok := s.operandNode(src, true)
	if !ok {
		return
	}
	s.addEdge(sn, s.regNode(dst))
}

// generate creates the initial constraints from the IR.
func (s *solver) generate() {
	for _, fn := range s.prog.Funcs {
		if !fn.HasBody {
			continue
		}
		fi := s.fnIdx[fn]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if r, ok := in.(*ir.Ret); ok && r.Val != nil {
					s.retVals[fi] = append(s.retVals[fi], r.Val)
				}
			}
		}
	}
	for _, fn := range s.prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				s.genInstr(in)
			}
		}
	}
}

func (s *solver) genInstr(in ir.Instr) {
	switch in := in.(type) {
	case *ir.Alloc:
		s.addLoc(s.regNode(in.Dst), s.fieldNode(in.Obj, 0))
	case *ir.Copy:
		s.assign(in.Dst, in.Src)
	case *ir.Phi:
		for _, v := range in.Vals {
			s.assign(in.Dst, v)
		}
	case *ir.Load:
		an, ok := s.operandNode(in.Addr, true)
		if !ok {
			return
		}
		an = s.find(an)
		s.nodes[an].loads = append(s.nodes[an].loads, int32(s.regNode(in.Dst)))
		s.enqueue(an)
	case *ir.Store:
		an, aok := s.operandNode(in.Addr, true)
		vn, vok := s.operandNode(in.Val, true)
		if !aok || !vok {
			return
		}
		an = s.find(an)
		s.nodes[an].stores = append(s.nodes[an].stores, int32(vn))
		s.enqueue(an)
	case *ir.FieldAddr:
		bn, ok := s.operandNode(in.Base, true)
		if !ok {
			return
		}
		bn = s.find(bn)
		s.nodes[bn].fields = append(s.nodes[bn].fields, fieldCons{dst: s.regNode(in.Dst), off: in.Off})
		s.enqueue(bn)
	case *ir.IndexAddr:
		bn, ok := s.operandNode(in.Base, true)
		if !ok {
			return
		}
		bn = s.find(bn)
		s.nodes[bn].indexes = append(s.nodes[bn].indexes, int32(s.regNode(in.Dst)))
		s.enqueue(bn)
	case *ir.MemSet:
		// The fill value is a scalar, so no pointer flow; materialize the
		// target operand's node so PointsTo sees the written object.
		s.operandNode(in.To, true)
	case *ir.MemCopy:
		// The runtime range may span any field, so route both ends through
		// index-style constraints (which collapse the touched objects) and
		// copy through a temp: t ⊇ *src; *dst ⊇ t.
		fromN, fok := s.operandNode(in.From, true)
		toN, tok := s.operandNode(in.To, true)
		if !fok || !tok {
			return
		}
		sTmp, dTmp, t := s.newNode(), s.newNode(), s.newNode()
		s.nodes[sTmp].loads = append(s.nodes[sTmp].loads, int32(t))
		s.nodes[dTmp].stores = append(s.nodes[dTmp].stores, int32(t))
		fromN = s.find(fromN)
		s.nodes[fromN].indexes = append(s.nodes[fromN].indexes, int32(sTmp))
		s.enqueue(fromN)
		toN = s.find(toN)
		s.nodes[toN].indexes = append(s.nodes[toN].indexes, int32(dTmp))
		s.enqueue(toN)
	case *ir.Call:
		if in.Builtin != ir.NotBuiltin {
			return
		}
		if direct := in.Direct(); direct != nil {
			s.resolveCall(in, direct)
			return
		}
		cn, ok := s.operandNode(in.Callee, true)
		if !ok {
			return
		}
		cn = s.find(cn)
		s.nodes[cn].calls = append(s.nodes[cn].calls, in)
		s.enqueue(cn)
	}
}

// resolveCall wires argument and return value flow for a (call, callee)
// pair, once.
func (s *solver) resolveCall(c *ir.Call, fn *ir.Function) {
	r := s.resolved[c]
	if r == nil {
		r = bitset.New(0)
		s.resolved[c] = r
	}
	fi := s.fnIdx[fn]
	if !r.Add(fi) {
		return
	}
	s.callees[c] = append(s.callees[c], fn)
	if !fn.HasBody {
		return
	}
	n := len(c.Args)
	if len(fn.Params) < n {
		n = len(fn.Params)
	}
	for i := 0; i < n; i++ {
		s.assign(fn.Params[i], c.Args[i])
	}
	if c.Dst != nil {
		for _, rv := range s.retVals[fi] {
			s.assign(c.Dst, rv)
		}
	}
}

// solve runs the worklist to a fixpoint.
func (s *solver) solve() {
	var round []int32
	for len(s.work) > 0 {
		// Process in rounds (wave order): everything queued now is visited
		// in insertion order before anything it newly enqueues, so a fact
		// crosses long copy chains once per round instead of thrashing a
		// LIFO stack.
		round, s.work = s.work, round[:0]
		s.waves++
		for _, rawN := range round {
			n := int(rawN)
			s.onWork.Remove(n)
			n = s.find(n)
			nd := s.nodes[n]
			if nd.delta.Empty() {
				continue
			}
			s.visits++
			// Detach the delta; the node continues accumulating into a
			// fresh (recycled) set while this one is processed.
			delta := nd.delta
			nd.delta = s.spare
			s.spare = bitset.Set{}

			s.applyComplex(nd, &delta)

			// Propagate the delta along copy edges: one word-level
			// union-with-difference per successor.
			for _, rawS := range nd.succs {
				succ := s.find(int(rawS))
				if succ == n {
					continue
				}
				sn := s.nodes[succ]
				if sn.pts.UnionDiffInto(&delta, &sn.delta) {
					s.enqueue(succ)
				} else if s.edgeEpoch != s.lcdEpoch && nd.pts.Equal(&sn.pts) {
					// Lazy cycle detection: a no-op propagation between
					// nodes with identical sets suggests a copy cycle.
					// Individual suspicions are cheap false positives
					// (converged neighbors look the same), so a Tarjan pass
					// only runs once a batch of them accumulates; after it
					// runs, detection is re-armed by the next graph growth.
					s.lcdTriggers++
					if s.lcdTriggers >= lcdTriggerBatch {
						s.lcdTriggers = 0
						s.lcdEpoch = s.edgeEpoch
						s.collapseCycles()
						if s.find(n) != n {
							// n was merged away; its representative was
							// re-enqueued with the full set, which covers
							// the remaining succs.
							break
						}
					}
				}
			}

			delta.Clear()
			s.spare = delta
		}
	}
}

// applyComplex applies nd's complex constraints (loads, stores, field and
// index offsets, indirect calls) to every location in delta. Pure copy
// nodes (the vast majority) have no complex constraints and return
// immediately. Shared by the sequential worklist (solve) and the
// wave-parallel solver's sequential barrier phase (solveWaves): complex
// constraints mutate graph structure — new edges, new field nodes, object
// collapses, call resolution — so both solvers run them single-threaded.
func (s *solver) applyComplex(nd *node, delta *bitset.Set) {
	if len(nd.loads)+len(nd.stores)+len(nd.fields)+len(nd.indexes)+len(nd.calls) == 0 {
		return
	}
	delta.ForEach(func(lid int) {
		c := s.find(int(s.locNode[lid]))
		s.locNode[lid] = int32(c) // path-compress the loc table
		ln := s.nodes[c]
		if ln.locID < 0 {
			return
		}
		loc := s.locs[ln.locID]
		if loc.Fn != nil {
			// Function address: resolve indirect calls through n.
			for _, call := range nd.calls {
				s.resolveCall(call, loc.Fn)
			}
			return
		}
		// Memory location: apply load/store/field/index constraints.
		for _, dst := range nd.loads {
			s.addEdge(c, int(dst))
		}
		for _, src := range nd.stores {
			s.addEdge(int(src), c)
		}
		for _, fc := range nd.fields {
			target := s.fieldNode(loc.Obj, loc.Field+fc.off)
			s.addLoc(fc.dst, target)
		}
		for _, dst := range nd.indexes {
			s.collapseObj(loc.Obj)
			s.addLoc(int(dst), s.fieldNode(loc.Obj, 0))
		}
	})
}

// collapseCycles runs an iterative Tarjan SCC pass over the canonical
// copy graph and collapses every multi-node SCC into one union-find
// representative. Location nodes are barriers: they are neither traversed
// through nor merged, so distinct abstract locations always survive (a
// cycle through memory would otherwise fuse unrelated objects' fields).
func (s *solver) collapseCycles() {
	n := len(s.nodes)
	if cap(s.sccIndex) < n {
		s.sccIndex = make([]int32, n) // 0 = unvisited, else visit order + 1
		s.sccLow = make([]int32, n)
		s.sccOnStack = make([]bool, n)
	}
	index := s.sccIndex[:n]
	low := s.sccLow[:n]
	onStack := s.sccOnStack[:n]
	for i := range index {
		index[i] = 0
		onStack[i] = false
	}
	stack := s.sccStack[:0]
	next := int32(0)

	dfs := s.sccDfs

	for root := 0; root < n; root++ {
		if int(s.parent[root]) != root || s.nodes[root].locID >= 0 || index[root] != 0 {
			continue
		}
		dfs = append(dfs[:0], sccFrame{int32(root), 0})
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := int(f.v)
			if f.si == 0 {
				next++
				index[v] = next
				low[v] = next
				stack = append(stack, int32(v))
				onStack[v] = true
			}
			nv := s.nodes[v]
			advanced := false
			for f.si < len(nv.succs) {
				w := s.find(int(nv.succs[f.si]))
				f.si++
				if w == v || s.nodes[w].locID >= 0 {
					continue
				}
				if index[w] == 0 {
					dfs = append(dfs, sccFrame{int32(w), 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				if p := int(dfs[len(dfs)-1].v); low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			// v roots an SCC: pop it and collapse if non-trivial.
			popTo := len(stack)
			for popTo > 0 {
				popTo--
				onStack[stack[popTo]] = false
				if int(stack[popTo]) == v {
					break
				}
			}
			scc := stack[popTo:]
			if len(scc) > 1 {
				s.sccCollapsed++
				rep := scc[0]
				for _, w := range scc[1:] {
					if w < rep {
						rep = w
					}
				}
				r := int(rep)
				for _, w := range scc {
					if int(w) != r {
						r = s.merge(r, int(w))
					}
				}
				// One full re-push for the whole SCC: the merged constraint
				// lists see the combined set exactly once.
				rn := s.nodes[r]
				if !rn.pts.Empty() {
					rn.delta.CopyFrom(&rn.pts)
					s.enqueue(r)
				}
			}
			stack = stack[:popTo]
		}
	}
	s.sccStack = stack[:0]
	s.sccDfs = dfs[:0]
}

// stats summarizes the solved constraint system. Call after freeze():
// constraint lists are concatenated onto representatives by merge, so
// summing over union-find roots counts each constraint exactly once.
func (s *solver) stats() SolverStats {
	ss := SolverStats{
		Nodes:         len(s.nodes),
		Locations:     len(s.locs),
		CopyEdges:     s.edgeEpoch,
		Visits:        s.visits,
		Waves:         s.waves,
		SCCsCollapsed: s.sccCollapsed,
	}
	for i, nd := range s.nodes {
		if int(s.parent[i]) != i {
			continue
		}
		ss.Constraints += len(nd.loads) + len(nd.stores) + len(nd.fields) + len(nd.indexes) + len(nd.calls)
	}
	return ss
}

// locsOf returns the canonicalized, deduplicated, sorted locations of a
// node.
func (s *solver) locsOf(n int) []Loc {
	n = s.findRO(n)
	nd := s.nodes[n]
	var locs []Loc
	seen := make(map[int32]struct{})
	nd.pts.ForEach(func(lid int) {
		c := s.findRO(int(s.locNode[lid]))
		ln := s.nodes[c]
		if ln.locID < 0 {
			return
		}
		if _, dup := seen[ln.locID]; dup {
			return
		}
		seen[ln.locID] = struct{}{}
		locs = append(locs, s.locs[ln.locID])
	})
	sortLocs(locs)
	return locs
}

// sortLocs orders locations deterministically: memory locations by
// (object id, field), then function locations by name.
func sortLocs(locs []Loc) {
	sort.Slice(locs, func(i, j int) bool {
		a, b := locs[i], locs[j]
		if (a.Fn != nil) != (b.Fn != nil) {
			return a.Fn == nil
		}
		if a.Fn != nil {
			return a.Fn.Name < b.Fn.Name
		}
		if a.Obj.ID != b.Obj.ID {
			return a.Obj.ID < b.Obj.ID
		}
		return a.Field < b.Field
	})
}
