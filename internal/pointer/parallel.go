package pointer

import (
	"slices"
	"sync"

	"github.com/valueflow/usher/internal/bitset"
	"github.com/valueflow/usher/internal/ir"
)

// This file is the wave-parallel variant of the production solver
// (solver.go). It reuses the solver's constraint representation, cycle
// elimination and statistics wholesale and replaces only the worklist
// loop, trading the sequential round structure for a three-step wave:
//
//  1. Collect. Every queued node's pending delta is detached and frozen,
//     exactly like a sequential round. The frozen (node, delta) pairs are
//     the wave; nothing mutates them until the wave completes.
//
//  2. Parallel copy propagation. Copy edges — the overwhelming majority
//     of the constraint graph, and the phase where word-level set unions
//     dominate solve time — are propagated by a bounded goroutine pool
//     using owner-computes sharding: successor node t is owned by worker
//     t mod W, and only t's owner ever touches t's points-to set or
//     delta, so no locks are needed. The union-find is frozen during
//     this phase (findRO, no path compression) and the wave's deltas are
//     read-only, so workers share them freely.
//
//  3. Sequential barrier. Complex constraints (loads, stores, field and
//     index offsets, indirect calls) mutate graph structure — new edges,
//     new field nodes, object collapses, call-graph growth — so they run
//     single-threaded at the wave barrier, as does lazy cycle
//     elimination (the same exact Tarjan collapse as the sequential
//     solver).
//
// Determinism at any worker count is by construction, not by locking:
//
//   - Each owner scans the whole wave in wave order, so for any target
//     node the deltas are applied in wave order regardless of W; the
//     final points-to sets and deltas after phase 2 are W-independent.
//   - A target enters the next frontier exactly once (on its first
//     empty→non-empty delta transition), owners never share targets, and
//     the merged frontier is sorted by node id before enqueueing — so the
//     next wave's order is W-independent too.
//   - Cycle-detection suspicions are pure event counts summed at the
//     barrier (commutative), not order-sensitive comparisons. The
//     sequential solver's pts-equality heuristic is deliberately not
//     used here: it reads the propagating node's set, which another
//     worker may be updating concurrently, and its outcome would depend
//     on schedule. Extra suspicions only make the exact Tarjan pass run
//     earlier; they never change its result.
//
// Together these make every solver counter (visits, waves, copy edges,
// SCCs collapsed) and the final least fixpoint bit-identical for every
// workers value ≥ 1, which is what lets -solver-workers fall under the
// drivers' bit-identical reporting contract.

// Workers selects the solver Analyze routes through: 0 (the default)
// is the classic sequential worklist, any value ≥ 1 the wave-parallel
// solver with that many goroutines. Like UseLegacySolver it must be set
// before analyses start; it is not safe to flip concurrently with
// running analyses.
var Workers int

// AnalyzeWorkers runs the analysis with an explicit solver selection:
// workers ≤ 0 is the classic sequential worklist, workers ≥ 1 the
// wave-parallel solver. All selections compute the same least fixpoint
// and identical Result signatures; the wave solver's stats counters are
// additionally identical for every workers value ≥ 1.
func AnalyzeWorkers(prog *ir.Program, workers int) *Result {
	s := newSolver(prog)
	s.generate()
	if workers >= 1 {
		s.solveWaves(workers)
	} else {
		s.solve()
	}
	s.freeze()
	res := finishResult(prog, s, s.callees)
	res.Stats = s.stats()
	return res
}

// waveLcdBatch is the cycle-collapse trigger threshold of the wave
// solver. Wave suspicions are plain no-op-propagation counts (no
// set-equality filter, see the file comment), which fire more often than
// the sequential solver's, so the batch is larger to keep the amortized
// Tarjan cost comparable.
const waveLcdBatch = 1024

// waveEntry is one frozen (node, delta) pair of the current wave.
type waveEntry struct {
	n     int32
	delta bitset.Set
}

// solveWaves runs the worklist to a fixpoint in parallel waves.
func (s *solver) solveWaves(workers int) {
	if workers < 1 {
		workers = 1
	}
	var (
		round    []int32
		wave     []waveEntry
		pool     []bitset.Set // recycled delta storage
		frontier []int32
		touched  = make([][]int32, workers)
		susp     = make([]int, workers)
	)
	for len(s.work) > 0 {
		// Collect: detach every queued node's delta, canonicalizing and
		// deduplicating exactly like the sequential round loop.
		round, s.work = s.work, round[:0]
		wave = wave[:0]
		for _, rawN := range round {
			n := int(rawN)
			s.onWork.Remove(n)
			n = s.find(n)
			nd := s.nodes[n]
			if nd.delta.Empty() {
				continue
			}
			s.visits++
			delta := nd.delta
			if len(pool) > 0 {
				nd.delta = pool[len(pool)-1]
				pool = pool[:len(pool)-1]
			} else {
				nd.delta = bitset.Set{}
			}
			wave = append(wave, waveEntry{n: int32(n), delta: delta})
		}
		if len(wave) == 0 {
			continue
		}
		s.waves++

		// Parallel copy propagation. The union-find is frozen (workers
		// canonicalize with findRO) and wave deltas are read-only; each
		// worker writes only the points-to sets and deltas of the nodes
		// it owns.
		if workers == 1 {
			s.propagateShard(wave, 0, 1, &touched[0], &susp[0])
		} else {
			var wg sync.WaitGroup
			for o := 0; o < workers; o++ {
				wg.Add(1)
				go func(o int) {
					defer wg.Done()
					s.propagateShard(wave, o, workers, &touched[o], &susp[o])
				}(o)
			}
			wg.Wait()
		}

		// Merge the per-owner frontiers. Owners never share a target and
		// record each at most once, so concatenation is duplicate-free;
		// sorting by node id makes the next wave's order independent of
		// the worker count.
		frontier = frontier[:0]
		for o := 0; o < workers; o++ {
			frontier = append(frontier, touched[o]...)
			s.lcdTriggers += susp[o]
		}
		slices.Sort(frontier)
		for _, t := range frontier {
			s.enqueue(int(t))
		}

		// Sequential barrier: complex constraints in wave order, then
		// (possibly) a cycle-collapse pass — both mutate graph structure
		// and the union-find, which phase 2's freeze relies on.
		for i := range wave {
			e := &wave[i]
			s.applyComplex(s.nodes[e.n], &e.delta)
			e.delta.Clear()
			pool = append(pool, e.delta)
		}
		if s.edgeEpoch != s.lcdEpoch && s.lcdTriggers >= waveLcdBatch {
			s.lcdTriggers = 0
			s.lcdEpoch = s.edgeEpoch
			s.collapseCycles()
		}
	}
}

// propagateShard is one worker's share of a wave's copy propagation: it
// scans every wave entry's successors in wave order and applies the
// frozen delta to the successors it owns (succ mod workers == owner).
// Targets whose pending delta transitions empty→non-empty are recorded
// in touched (each exactly once); propagations that change nothing are
// counted in suspects, the wave solver's cycle suspicion heuristic.
func (s *solver) propagateShard(wave []waveEntry, owner, workers int, touched *[]int32, suspects *int) {
	tl := (*touched)[:0]
	susp := 0
	for i := range wave {
		e := &wave[i]
		n := int(e.n)
		nd := s.nodes[n]
		for _, rawS := range nd.succs {
			succ := s.findRO(int(rawS))
			if succ == n || succ%workers != owner {
				continue
			}
			sn := s.nodes[succ]
			wasEmpty := sn.delta.Empty()
			if sn.pts.UnionDiffInto(&e.delta, &sn.delta) {
				if wasEmpty {
					tl = append(tl, int32(succ))
				}
			} else {
				susp++
			}
		}
	}
	*touched = tl
	*suspects = susp
}
