package pointer_test

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/workload"
)

// The wave-parallel solver's contract (parallel.go) is stronger than the
// A/B harness's: not only must the points-to signatures match the
// sequential solver on every program, but the solver's own stats
// counters must be bit-identical at every worker count. These tests pin
// both, over the checked-in corpus, the workload generators and a
// randprog sweep; runs under -race additionally check the owner-computes
// sharding for data races.

// parallelWorkerCounts is the sweep used throughout: 1 (wave algorithm,
// no concurrency), small counts, and more workers than this machine has
// cores (sharding must not care).
var parallelWorkerCounts = []int{1, 2, 3, 4, 8}

// waveResultFor compiles src fresh and solves with the wave solver at
// the given worker count (0 = classic sequential). Fresh compiles keep
// runs comparable even though solving mutates shared IR state (object
// collapsing), exactly like the A/B harness.
func waveResultFor(t *testing.T, name, src string, workers int) (string, pointer.SolverStats) {
	t.Helper()
	prog, err := usher.Compile(name, src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		t.Fatalf("%s: passes: %v", name, err)
	}
	res := pointer.AnalyzeWorkers(prog, workers)
	return pointerSignature(prog, res), res.Stats
}

// checkParallel asserts that every worker count produces the sequential
// solver's signature, and that all wave-solver runs (workers >= 1) agree
// on every stats counter.
func checkParallel(t *testing.T, name, src string) {
	t.Helper()
	seqSig, _ := waveResultFor(t, name, src, 0)
	baseSig, baseStats := waveResultFor(t, name, src, 1)
	if baseSig != seqSig {
		t.Errorf("%s: wave solver (workers=1) diverges from sequential:\n%s",
			name, diffLines(baseSig, seqSig))
	}
	for _, w := range parallelWorkerCounts[1:] {
		sig, stats := waveResultFor(t, name, src, w)
		if sig != seqSig {
			t.Errorf("%s: workers=%d diverges from sequential:\n%s",
				name, w, diffLines(sig, seqSig))
		}
		if stats != baseStats {
			t.Errorf("%s: workers=%d stats diverge from workers=1:\n got %+v\nwant %+v",
				name, w, stats, baseStats)
		}
	}
}

// TestParallelSolverCorpus sweeps the checked-in corpus and the workload
// generators at every worker count. This is the CI -race smoke: the
// owner-computes sharding must be free of data races at any W.
func TestParallelSolverCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		checkParallel(t, filepath.Base(f), string(src))
	}
	for _, p := range workload.Profiles {
		checkParallel(t, p.Name, workload.Generate(p))
	}
	for _, p := range workload.LargeProfiles {
		if p.Name == "solver-large" {
			continue // covered (with everything else XL) by TestParallelSolverXL
		}
		checkParallel(t, p.Name, workload.GenerateLarge(p))
	}
}

// TestParallelSolverXL pins the wave solver on the XL constraint-graph
// profiles — the programs the parallel solve exists for. The full
// solver-xl profile (1M+ constraints) runs only without -short.
func TestParallelSolverXL(t *testing.T) {
	src := workload.GenerateLarge(workload.LargeProfiles[2]) // solver-large
	if !testing.Short() {
		checkParallel(t, "solver-large", src)
	}
	for _, p := range workload.XLProfiles {
		if testing.Short() && p.Name != "solver-xl-small" {
			continue
		}
		seq := xlSignature(t, p, 0)
		base, baseStats := xlSignatureStats(t, p, 1)
		if base != seq {
			t.Errorf("%s: wave solver (workers=1) diverges from sequential", p.Name)
		}
		for _, w := range parallelWorkerCounts[1:] {
			sig, stats := xlSignatureStats(t, p, w)
			if sig != seq {
				t.Errorf("%s: workers=%d diverges from sequential", p.Name, w)
			}
			if stats != baseStats {
				t.Errorf("%s: workers=%d stats diverge:\n got %+v\nwant %+v", p.Name, w, stats, baseStats)
			}
		}
	}
}

func xlSignature(t *testing.T, p workload.XLProfile, workers int) string {
	sig, _ := xlSignatureStats(t, p, workers)
	return sig
}

// xlSignatureStats builds the XL profile's IR fresh and solves it.
func xlSignatureStats(t *testing.T, p workload.XLProfile, workers int) (string, pointer.SolverStats) {
	t.Helper()
	prog := workload.BuildXL(p)
	res := pointer.AnalyzeWorkers(prog, workers)
	return pointerSignature(prog, res), res.Stats
}

// TestParallelSolverRandprog sweeps randprog seeds: signature parity on
// every seed at workers=1 and workers=4, and end-to-end warning-site
// parity (full pipeline, instrumented run) against the sequential
// solver.
func TestParallelSolverRandprog(t *testing.T) {
	seeds := 200
	if testing.Short() {
		seeds = 40
	}
	opts := randprog.DefaultOptions
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := randprog.Generate(seed, opts)
		name := fmt.Sprintf("randprog-%d", seed)
		seqSig, _ := waveResultFor(t, name, src, 0)
		oneSig, oneStats := waveResultFor(t, name, src, 1)
		fourSig, fourStats := waveResultFor(t, name, src, 4)
		if oneSig != seqSig {
			t.Errorf("%s: workers=1 diverges:\n%s", name, diffLines(oneSig, seqSig))
		}
		if fourSig != seqSig {
			t.Errorf("%s: workers=4 diverges:\n%s", name, diffLines(fourSig, seqSig))
		}
		if oneStats != fourStats {
			t.Errorf("%s: stats diverge between workers=1 and 4:\n got %+v\nwant %+v",
				name, fourStats, oneStats)
		}
		seqW := warningsForWorkers(t, name, src, 0)
		parW := warningsForWorkers(t, name, src, 4)
		if seqW != parW {
			t.Errorf("%s: end-to-end warning divergence:\nsequential: %s\nworkers=4:  %s",
				name, seqW, parW)
		}
	}
}

// warningsForWorkers is warningsFor with a solver worker count instead
// of the legacy switch: full pipeline, instrumented run, canonical
// warning sites.
func warningsForWorkers(t *testing.T, name, src string, workers int) string {
	t.Helper()
	prev := pointer.Workers
	pointer.Workers = workers
	defer func() { pointer.Workers = prev }()

	prog, err := usher.Compile(name, src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		t.Fatalf("%s: passes: %v", name, err)
	}
	a, err := usher.Analyze(prog, usher.ConfigUsherFull)
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	res, err := a.Run(usher.RunOptions{})
	if err != nil {
		return "run-error: " + err.Error()
	}
	out := "shadow:"
	for _, w := range res.ShadowWarnings {
		out += " " + w.String()
	}
	out += " oracle:"
	for _, w := range res.OracleWarnings {
		out += " " + w.String()
	}
	return out
}
