package pointer

import (
	"errors"
	"fmt"

	"github.com/valueflow/usher/internal/ir"
)

// This file is the solved-state serialization boundary used by snapshot
// warm starts (internal/snapshot): Export flattens a solved Result into
// plain index-based tables, Import rebuilds an equivalent Result over a
// freshly compiled program. The exported view is exactly the public
// query surface — per-register points-to sets, the call graph, and the
// object collapses the solver performed — because that is all any
// downstream consumer (memory SSA, VFG, instrumentation) ever reads; the
// solver's constraint graph itself never needs to survive the trip.
//
// Determinism contract: Export visits registers and call sites in
// deterministic program order and emits locations through the solver's
// canonical sorted locsOf, so exporting the same Result twice yields
// identical tables, and an imported Result answers every query
// identically to the Result it was exported from (pinned by
// TestExportImportRoundTrip).

// Export is a Result flattened to dense indices: functions by position
// in prog.Funcs, registers by their ids, call sites by ordinal in a
// deterministic walk (body functions in program order, blocks and
// instructions in order, counting only *ir.Call), locations by position
// in the interned Locs table.
type Export struct {
	// Collapsed lists the IDs of multi-cell objects the solver made
	// field-insensitive. Import must re-apply these before anything
	// consults the program's collapse state: solving mutates the IR, and
	// a warm start has to leave the program exactly as a cold solve
	// would.
	Collapsed []int
	// Locs is the interned abstract-location table.
	Locs []Loc
	// Regs holds one entry per register with a non-empty points-to set.
	Regs []RegPts
	// Calls holds one entry per call site with at least one callee.
	Calls []CallEdges
	// Stats is carried verbatim so a warm start reports the solve it
	// reused.
	Stats SolverStats
}

// RegPts is one register's points-to set: locations as indices into
// Export.Locs, in the canonical sorted order locsOf produces.
type RegPts struct {
	Fn   int // index into prog.Funcs
	Reg  int // register id within the function
	Locs []int32
}

// CallEdges is one call site's resolved callees (function indices),
// keyed by the site's ordinal in the deterministic program walk.
type CallEdges struct {
	Site    int
	Callees []int32
}

// Export flattens the Result for serialization. It requires the
// bit-vector solver's state; results produced by the legacy solver or by
// Import itself are not exportable.
func (r *Result) Export(prog *ir.Program) (*Export, error) {
	s, ok := r.solver.(*solver)
	if !ok {
		return nil, errors.New("pointer: Export requires a bit-vector solver Result")
	}
	ex := &Export{Stats: r.Stats}
	for _, o := range prog.Objects() {
		if o.Size > 1 && o.Collapsed() {
			ex.Collapsed = append(ex.Collapsed, o.ID)
		}
	}
	locIdx := make(map[Loc]int32)
	intern := func(l Loc) int32 {
		if i, ok := locIdx[l]; ok {
			return i
		}
		i := int32(len(ex.Locs))
		ex.Locs = append(ex.Locs, l)
		locIdx[l] = i
		return i
	}
	for fi := range prog.Funcs {
		for rid, nid := range s.regNodes[fi] {
			if nid < 0 {
				continue
			}
			locs := s.locsOf(int(nid))
			if len(locs) == 0 {
				continue
			}
			idxs := make([]int32, len(locs))
			for i, l := range locs {
				idxs[i] = intern(l)
			}
			ex.Regs = append(ex.Regs, RegPts{Fn: fi, Reg: rid, Locs: idxs})
		}
	}
	walkCalls(prog, func(ord int, c *ir.Call) {
		fns := r.callees[c]
		if len(fns) == 0 {
			return
		}
		ce := CallEdges{Site: ord, Callees: make([]int32, len(fns))}
		for i, f := range fns {
			ce.Callees[i] = int32(s.fnIdx[f])
		}
		ex.Calls = append(ex.Calls, ce)
	})
	return ex, nil
}

// Import rebuilds a Result over prog from exported tables. prog must be
// the same program the export came from (same compile of the same
// source); the snapshot layer guards this with a content fingerprint,
// and Import additionally validates every index so a stale or damaged
// export surfaces as an error — never a panic — letting callers fall
// back to a cold solve.
func Import(prog *ir.Program, ex *Export) (*Result, error) {
	objByID := make(map[int]*ir.Object)
	for _, o := range prog.Objects() {
		objByID[o.ID] = o
	}
	for _, id := range ex.Collapsed {
		o := objByID[id]
		if o == nil {
			return nil, fmt.Errorf("pointer: import: collapsed object #%d not in program", id)
		}
		o.Collapse()
	}
	ls := &loadedSolver{
		fnIdx:   make(map[*ir.Function]int, len(prog.Funcs)),
		regNode: make([][]int32, len(prog.Funcs)),
	}
	for i, fn := range prog.Funcs {
		ls.fnIdx[fn] = i
	}
	for _, rp := range ex.Regs {
		if rp.Fn < 0 || rp.Fn >= len(prog.Funcs) || rp.Reg < 0 {
			return nil, fmt.Errorf("pointer: import: register (%d, %d) out of range", rp.Fn, rp.Reg)
		}
		locs := make([]Loc, len(rp.Locs))
		for i, li := range rp.Locs {
			if li < 0 || int(li) >= len(ex.Locs) {
				return nil, fmt.Errorf("pointer: import: location index %d out of range", li)
			}
			locs[i] = ex.Locs[li]
		}
		regs := ls.regNode[rp.Fn]
		if rp.Reg >= len(regs) {
			regs = grow32(regs, rp.Reg)
			ls.regNode[rp.Fn] = regs
		}
		regs[rp.Reg] = int32(len(ls.locLists))
		ls.locLists = append(ls.locLists, locs)
	}
	sites := callSites(prog)
	callees := make(map[*ir.Call][]*ir.Function, len(ex.Calls))
	for _, ce := range ex.Calls {
		if ce.Site < 0 || ce.Site >= len(sites) {
			return nil, fmt.Errorf("pointer: import: call site %d out of range", ce.Site)
		}
		fns := make([]*ir.Function, len(ce.Callees))
		for i, fi := range ce.Callees {
			if fi < 0 || int(fi) >= len(prog.Funcs) {
				return nil, fmt.Errorf("pointer: import: callee index %d out of range", fi)
			}
			fns[i] = prog.Funcs[fi]
		}
		callees[sites[ce.Site]] = fns
	}
	res := finishResult(prog, ls, callees)
	res.Stats = ex.Stats
	return res, nil
}

// walkCalls visits every call instruction of prog in the deterministic
// export order, handing each its site ordinal.
func walkCalls(prog *ir.Program, f func(ord int, c *ir.Call)) {
	ord := 0
	for _, fn := range prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if c, ok := in.(*ir.Call); ok {
					f(ord, c)
					ord++
				}
			}
		}
	}
}

// callSites returns prog's call instructions indexed by export ordinal.
func callSites(prog *ir.Program) []*ir.Call {
	var sites []*ir.Call
	walkCalls(prog, func(_ int, c *ir.Call) { sites = append(sites, c) })
	return sites
}

// loadedSolver is the ptsSolver of an imported Result: a read-only
// table of per-register location lists. "Node ids" are indices into
// locLists; values other than registers report no node, which routes
// Result.PointsTo to its exact singleton fallbacks for global addresses
// and function values — the same answers the live solver computes for
// them.
type loadedSolver struct {
	fnIdx    map[*ir.Function]int
	regNode  [][]int32 // [fnIdx][regID] → locLists index, -1 = none
	locLists [][]Loc
}

func (ls *loadedSolver) operandNode(v ir.Value, create bool) (int, bool) {
	r, ok := v.(*ir.Register)
	if !ok {
		return 0, false
	}
	fi, ok := ls.fnIdx[r.Fn]
	if !ok {
		return 0, false
	}
	regs := ls.regNode[fi]
	if r.ID >= len(regs) || regs[r.ID] < 0 {
		return 0, false
	}
	return int(regs[r.ID]), true
}

func (ls *loadedSolver) locsOf(n int) []Loc {
	if n < 0 || n >= len(ls.locLists) {
		return nil
	}
	return ls.locLists[n]
}
