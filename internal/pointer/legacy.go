package pointer

import (
	"github.com/valueflow/usher/internal/ir"
)

// This file preserves the original map-based Andersen solver as the
// reference implementation for differential testing. It is the solver the
// repository shipped before the bit-vector rewrite in solver.go: points-to
// sets are map[int]struct{}, deltas are slices, and there is no cycle
// elimination. AnalyzeLegacy runs it; TestSolverABEquivalence diffs its
// results against the production solver over the corpus and randprog
// seeds. It is deliberately kept simple and obviously correct rather than
// fast.

// node keys
type regKey struct {
	fn *ir.Function
	id int
}

type fieldKey struct {
	obj   *ir.Object
	field int
}

type legacyCallCons struct {
	call *ir.Call
}

// legacyNode holds the per-node constraint state.
type legacyNode struct {
	pts   map[int]struct{} // location ids (field/function node ids)
	delta []int            // newly added, pending propagation
	succs map[int]struct{} // copy edges out

	loads   []int // x = *n : dst node ids
	stores  []int // *n = y : src node ids
	fields  []fieldCons
	indexes []int // x = n[idx] : dst node ids
	calls   []legacyCallCons

	// loc is set for location nodes.
	loc Loc
	// isLoc marks nodes that represent an abstract location.
	isLoc bool
}

type legacySolver struct {
	prog *ir.Program

	nodes  []*legacyNode
	parent []int // union-find

	regNodes   map[regKey]int
	fieldNodes map[fieldKey]int
	funcNodes  map[*ir.Function]int
	globNodes  map[*ir.Object]int
	funcConsts map[*ir.Function]int

	// collapsed objects map every field to 0.
	collapsed map[*ir.Object]bool
	// retVals caches each function's returned values.
	retVals map[*ir.Function][]ir.Value

	callees map[*ir.Call][]*ir.Function
	// resolved guards against re-adding call edges.
	resolved map[*ir.Call]map[*ir.Function]bool

	work []int
}

func newLegacySolver(prog *ir.Program) *legacySolver {
	return &legacySolver{
		prog:       prog,
		regNodes:   make(map[regKey]int),
		fieldNodes: make(map[fieldKey]int),
		funcNodes:  make(map[*ir.Function]int),
		globNodes:  make(map[*ir.Object]int),
		collapsed:  make(map[*ir.Object]bool),
		retVals:    make(map[*ir.Function][]ir.Value),
		callees:    make(map[*ir.Call][]*ir.Function),
		resolved:   make(map[*ir.Call]map[*ir.Function]bool),
	}
}

func (s *legacySolver) newNode() int {
	id := len(s.nodes)
	s.nodes = append(s.nodes, &legacyNode{
		pts:   make(map[int]struct{}),
		succs: make(map[int]struct{}),
	})
	s.parent = append(s.parent, id)
	return id
}

func (s *legacySolver) find(n int) int {
	for s.parent[n] != n {
		s.parent[n] = s.parent[s.parent[n]]
		n = s.parent[n]
	}
	return n
}

// findRO canonicalizes without path compression. Query entry points use
// it so that a solved Result is strictly read-only and can be shared
// across concurrent consumers (path compression writes would race).
func (s *legacySolver) findRO(n int) int {
	for s.parent[n] != n {
		n = s.parent[n]
	}
	return n
}

// freeze flattens the union-find and materializes lazily-initialized
// tables once solving is done, so subsequent queries perform no writes.
func (s *legacySolver) freeze() {
	for i := range s.parent {
		s.parent[i] = s.find(i)
	}
	if s.funcConsts == nil {
		s.funcConsts = make(map[*ir.Function]int)
	}
}

// union merges node b into node a (both canonicalized), returning the root.
func (s *legacySolver) union(a, b int) int {
	a, b = s.find(a), s.find(b)
	if a == b {
		return a
	}
	na, nb := s.nodes[a], s.nodes[b]
	s.parent[b] = a
	changed := false
	for l := range nb.pts {
		if _, ok := na.pts[l]; !ok {
			na.pts[l] = struct{}{}
			na.delta = append(na.delta, l)
			changed = true
		}
	}
	for e := range nb.succs {
		na.succs[e] = struct{}{}
	}
	na.loads = append(na.loads, nb.loads...)
	na.stores = append(na.stores, nb.stores...)
	na.fields = append(na.fields, nb.fields...)
	na.indexes = append(na.indexes, nb.indexes...)
	na.calls = append(na.calls, nb.calls...)
	if changed || len(nb.loads)+len(nb.stores)+len(nb.fields)+len(nb.indexes)+len(nb.calls) > 0 {
		s.enqueue(a)
	}
	// Re-push all of a's pts through the merged constraints once.
	if len(na.pts) > 0 {
		na.delta = na.delta[:0]
		for l := range na.pts {
			na.delta = append(na.delta, l)
		}
		s.enqueue(a)
	}
	return a
}

func (s *legacySolver) enqueue(n int) { s.work = append(s.work, n) }

func (s *legacySolver) regNode(r *ir.Register) int {
	k := regKey{r.Fn, r.ID}
	if id, ok := s.regNodes[k]; ok {
		return id
	}
	id := s.newNode()
	s.regNodes[k] = id
	return id
}

// fieldNode returns the canonical node for (obj, field).
func (s *legacySolver) fieldNode(obj *ir.Object, field int) int {
	if s.collapsed[obj] || obj.Collapsed() {
		field = 0
	} else if field < 0 || field >= obj.Size {
		// Out-of-bounds constant offset: fold to the collapsed view to
		// stay sound.
		s.collapseObj(obj)
		field = 0
	}
	k := fieldKey{obj, field}
	if id, ok := s.fieldNodes[k]; ok {
		return s.find(id)
	}
	id := s.newNode()
	s.nodes[id].isLoc = true
	s.nodes[id].loc = Loc{Obj: obj, Field: field}
	s.fieldNodes[k] = id
	return id
}

func (s *legacySolver) funcNode(fn *ir.Function) int {
	if id, ok := s.funcNodes[fn]; ok {
		return id
	}
	id := s.newNode()
	s.nodes[id].isLoc = true
	s.nodes[id].loc = Loc{Fn: fn}
	s.funcNodes[fn] = id
	return id
}

// collapseObj makes obj field-insensitive, merging all its field nodes.
func (s *legacySolver) collapseObj(obj *ir.Object) {
	if s.collapsed[obj] {
		return
	}
	s.collapsed[obj] = true
	obj.Collapse()
	base, ok := s.fieldNodes[fieldKey{obj, 0}]
	if !ok {
		base = s.fieldNode(obj, 0)
	}
	base = s.find(base)
	for k, id := range s.fieldNodes {
		if k.obj == obj && k.field != 0 {
			base = s.union(base, s.find(id))
		}
	}
	s.nodes[base].loc = Loc{Obj: obj, Field: 0}
}

// operandNode returns the constraint node of an operand. Constants have
// no node. When create is false, missing nodes are not materialized.
func (s *legacySolver) operandNode(v ir.Value, create bool) (int, bool) {
	switch v := v.(type) {
	case *ir.Register:
		k := regKey{v.Fn, v.ID}
		if id, ok := s.regNodes[k]; ok {
			return s.findRO(id), true
		}
		if !create {
			return 0, false
		}
		return s.regNode(v), true
	case *ir.GlobalAddr:
		if id, ok := s.globNodes[v.Obj]; ok {
			return s.findRO(id), true
		}
		if !create {
			return 0, false
		}
		id := s.newNode()
		s.globNodes[v.Obj] = id
		s.addLoc(id, s.fieldNode(v.Obj, 0))
		return id, true
	case *ir.FuncValue:
		// A constant function address: node with the singleton location.
		id := s.funcConstNode(v.Fn, create)
		if id < 0 {
			return 0, false
		}
		return id, true
	}
	return 0, false
}

func (s *legacySolver) funcConstNode(fn *ir.Function, create bool) int {
	// Cache a const node per function, holding the singleton function
	// location.
	if s.funcConsts == nil {
		if !create {
			return -1
		}
		s.funcConsts = make(map[*ir.Function]int)
	}
	if id, ok := s.funcConsts[fn]; ok {
		return s.findRO(id)
	}
	if !create {
		return -1
	}
	id := s.newNode()
	s.funcConsts[fn] = id
	s.addLoc(id, s.funcNode(fn))
	return id
}

func (s *legacySolver) addLoc(n, loc int) {
	n = s.find(n)
	nd := s.nodes[n]
	if _, ok := nd.pts[loc]; ok {
		return
	}
	nd.pts[loc] = struct{}{}
	nd.delta = append(nd.delta, loc)
	s.enqueue(n)
}

func (s *legacySolver) addEdge(from, to int) {
	from, to = s.find(from), s.find(to)
	if from == to {
		return
	}
	nf := s.nodes[from]
	if _, ok := nf.succs[to]; ok {
		return
	}
	nf.succs[to] = struct{}{}
	// Propagate existing points-to set across the new edge.
	changed := false
	nt := s.nodes[to]
	for l := range nf.pts {
		if _, ok := nt.pts[l]; !ok {
			nt.pts[l] = struct{}{}
			nt.delta = append(nt.delta, l)
			changed = true
		}
	}
	if changed {
		s.enqueue(to)
	}
}

// assign adds pts(dst) ⊇ pts(src) for an operand src.
func (s *legacySolver) assign(dst *ir.Register, src ir.Value) {
	sn, ok := s.operandNode(src, true)
	if !ok {
		return
	}
	s.addEdge(sn, s.regNode(dst))
}

// generate creates the initial constraints from the IR.
func (s *legacySolver) generate() {
	for _, fn := range s.prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if r, ok := in.(*ir.Ret); ok && r.Val != nil {
					s.retVals[fn] = append(s.retVals[fn], r.Val)
				}
			}
		}
	}
	for _, fn := range s.prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				s.genInstr(in)
			}
		}
	}
}

func (s *legacySolver) genInstr(in ir.Instr) {
	switch in := in.(type) {
	case *ir.Alloc:
		s.addLoc(s.regNode(in.Dst), s.fieldNode(in.Obj, 0))
	case *ir.Copy:
		s.assign(in.Dst, in.Src)
	case *ir.Phi:
		for _, v := range in.Vals {
			s.assign(in.Dst, v)
		}
	case *ir.Load:
		an, ok := s.operandNode(in.Addr, true)
		if !ok {
			return
		}
		an = s.find(an)
		s.nodes[an].loads = append(s.nodes[an].loads, s.regNode(in.Dst))
		s.enqueue(an)
	case *ir.Store:
		an, aok := s.operandNode(in.Addr, true)
		vn, vok := s.operandNode(in.Val, true)
		if !aok || !vok {
			return
		}
		an = s.find(an)
		s.nodes[an].stores = append(s.nodes[an].stores, vn)
		s.enqueue(an)
	case *ir.FieldAddr:
		bn, ok := s.operandNode(in.Base, true)
		if !ok {
			return
		}
		bn = s.find(bn)
		s.nodes[bn].fields = append(s.nodes[bn].fields, fieldCons{dst: s.regNode(in.Dst), off: in.Off})
		s.enqueue(bn)
	case *ir.IndexAddr:
		bn, ok := s.operandNode(in.Base, true)
		if !ok {
			return
		}
		bn = s.find(bn)
		s.nodes[bn].indexes = append(s.nodes[bn].indexes, s.regNode(in.Dst))
		s.enqueue(bn)
	case *ir.MemSet:
		// The fill value is a scalar, so no pointer flow; materialize the
		// target operand's node so PointsTo sees the written object.
		s.operandNode(in.To, true)
	case *ir.MemCopy:
		// The runtime range may span any field, so route both ends through
		// index-style constraints (which collapse the touched objects) and
		// copy through a temp: t ⊇ *src; *dst ⊇ t.
		fromN, fok := s.operandNode(in.From, true)
		toN, tok := s.operandNode(in.To, true)
		if !fok || !tok {
			return
		}
		sTmp, dTmp, t := s.newNode(), s.newNode(), s.newNode()
		s.nodes[sTmp].loads = append(s.nodes[sTmp].loads, t)
		s.nodes[dTmp].stores = append(s.nodes[dTmp].stores, t)
		fromN = s.find(fromN)
		s.nodes[fromN].indexes = append(s.nodes[fromN].indexes, sTmp)
		s.enqueue(fromN)
		toN = s.find(toN)
		s.nodes[toN].indexes = append(s.nodes[toN].indexes, dTmp)
		s.enqueue(toN)
	case *ir.Call:
		if in.Builtin != ir.NotBuiltin {
			return
		}
		if direct := in.Direct(); direct != nil {
			s.resolveCall(in, direct)
			return
		}
		cn, ok := s.operandNode(in.Callee, true)
		if !ok {
			return
		}
		cn = s.find(cn)
		s.nodes[cn].calls = append(s.nodes[cn].calls, legacyCallCons{call: in})
		s.enqueue(cn)
	}
}

// resolveCall wires argument and return value flow for a (call, callee)
// pair, once.
func (s *legacySolver) resolveCall(c *ir.Call, fn *ir.Function) {
	if s.resolved[c] == nil {
		s.resolved[c] = make(map[*ir.Function]bool)
	}
	if s.resolved[c][fn] {
		return
	}
	s.resolved[c][fn] = true
	s.callees[c] = append(s.callees[c], fn)
	if !fn.HasBody {
		return
	}
	n := len(c.Args)
	if len(fn.Params) < n {
		n = len(fn.Params)
	}
	for i := 0; i < n; i++ {
		s.assign(fn.Params[i], c.Args[i])
	}
	if c.Dst != nil {
		for _, rv := range s.retVals[fn] {
			s.assign(c.Dst, rv)
		}
	}
}

// solve runs the worklist to a fixpoint.
func (s *legacySolver) solve() {
	for len(s.work) > 0 {
		n := s.work[len(s.work)-1]
		s.work = s.work[:len(s.work)-1]
		n = s.find(n)
		nd := s.nodes[n]
		if len(nd.delta) == 0 {
			continue
		}
		delta := nd.delta
		nd.delta = nil

		for _, rawLoc := range delta {
			loc := s.find(rawLoc)
			ln := s.nodes[loc]
			if !ln.isLoc {
				continue
			}
			if ln.loc.Fn != nil {
				// Function address: resolve indirect calls through n.
				for _, cc := range nd.calls {
					s.resolveCall(cc.call, ln.loc.Fn)
				}
				continue
			}
			// Memory location: apply load/store/field/index constraints.
			for _, dst := range nd.loads {
				s.addEdge(loc, dst)
			}
			for _, src := range nd.stores {
				s.addEdge(src, loc)
			}
			for _, fc := range nd.fields {
				target := s.fieldNode(ln.loc.Obj, ln.loc.Field+fc.off)
				s.addLoc(fc.dst, target)
			}
			for _, dst := range nd.indexes {
				s.collapseObj(ln.loc.Obj)
				s.addLoc(dst, s.fieldNode(ln.loc.Obj, 0))
			}
		}
		// Propagate the delta along copy edges.
		for succ := range nd.succs {
			succ = s.find(succ)
			if succ == n {
				continue
			}
			sn := s.nodes[succ]
			changed := false
			for _, l := range delta {
				if _, ok := sn.pts[l]; !ok {
					sn.pts[l] = struct{}{}
					sn.delta = append(sn.delta, l)
					changed = true
				}
			}
			if changed {
				s.enqueue(succ)
			}
		}
	}
}

// locsOf returns the canonicalized, deduplicated, sorted locations of a
// node.
func (s *legacySolver) locsOf(n int) []Loc {
	n = s.findRO(n)
	seen := make(map[int]struct{})
	var locs []Loc
	for raw := range s.nodes[n].pts {
		c := s.findRO(raw)
		if _, dup := seen[c]; dup {
			continue
		}
		seen[c] = struct{}{}
		ln := s.nodes[c]
		if ln.isLoc {
			locs = append(locs, ln.loc)
		}
	}
	sortLocs(locs)
	return locs
}
