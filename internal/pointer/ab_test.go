package pointer_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/workload"
)

// The A/B harness pins the production bit-vector solver to the legacy
// map-based reference: for every program, both implementations must
// produce identical points-to sets, call-graph edges, recursion marks
// and — end to end — identical warning sites. The two solvers run over
// separately compiled IR, because solving mutates the shared program
// state (object collapsing); the compiler is deterministic, so the
// printed signatures are comparable across compiles.

// pointerSignature renders everything the analysis answers into one
// canonical string: per-register points-to sets, per-call callee lists,
// and the recursive-function set.
func pointerSignature(prog *ir.Program, res *pointer.Result) string {
	var sb strings.Builder
	for _, fn := range prog.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if r := in.Defines(); r != nil {
					if locs := res.PointsTo(r); len(locs) > 0 {
						fmt.Fprintf(&sb, "pts %s %s =", fn.Name, r)
						for _, l := range locs {
							fmt.Fprintf(&sb, " %s", l)
						}
						sb.WriteByte('\n')
					}
				}
				if c, ok := in.(*ir.Call); ok {
					if fns := res.Callees(c); len(fns) > 0 {
						fmt.Fprintf(&sb, "call %s %d =", fn.Name, c.Label())
						for _, f := range fns {
							fmt.Fprintf(&sb, " %s", f.Name)
						}
						sb.WriteByte('\n')
					}
				}
			}
		}
	}
	for _, fn := range prog.Funcs {
		if res.Recursive(fn) {
			fmt.Fprintf(&sb, "rec %s\n", fn.Name)
		}
	}
	return sb.String()
}

// signatureFor compiles src fresh and analyzes it with the requested
// implementation.
func signatureFor(t *testing.T, name, src string, legacy bool) string {
	t.Helper()
	prog, err := usher.Compile(name, src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		t.Fatalf("%s: passes: %v", name, err)
	}
	var res *pointer.Result
	if legacy {
		res = pointer.AnalyzeLegacy(prog)
	} else {
		res = pointer.Analyze(prog)
	}
	return pointerSignature(prog, res)
}

func checkAB(t *testing.T, name, src string) {
	t.Helper()
	got := signatureFor(t, name, src, false)
	want := signatureFor(t, name, src, true)
	if got != want {
		t.Errorf("%s: solver A/B divergence (-bitvector +legacy):\n%s", name, diffLines(got, want))
	}
}

// diffLines renders a compact line diff of two signatures.
func diffLines(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	aset := make(map[string]bool, len(al))
	for _, l := range al {
		aset[l] = true
	}
	bset := make(map[string]bool, len(bl))
	for _, l := range bl {
		bset[l] = true
	}
	var sb strings.Builder
	for _, l := range al {
		if !bset[l] {
			sb.WriteString("- " + l + "\n")
		}
	}
	for _, l := range bl {
		if !aset[l] {
			sb.WriteString("+ " + l + "\n")
		}
	}
	if sb.Len() == 0 {
		return "(signatures differ only in ordering)"
	}
	return sb.String()
}

// TestSolverABCorpus compares the solvers over the checked-in corpus.
func TestSolverABCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.c"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		checkAB(t, filepath.Base(f), string(src))
	}
}

// TestSolverABWorkloads compares the solvers over the SPEC stand-in
// suite and the solver-scaling profiles.
func TestSolverABWorkloads(t *testing.T) {
	for _, p := range workload.Profiles {
		checkAB(t, p.Name, workload.Generate(p))
	}
	for _, p := range workload.LargeProfiles {
		if testing.Short() && p.Name == "solver-large" {
			continue
		}
		checkAB(t, p.Name, workload.GenerateLarge(p))
	}
}

// TestSolverABRandprog sweeps randprog seeds: points-to equivalence on
// every seed, and end-to-end warning-site equivalence (full pipeline,
// instrumented run) on every seed as well — the solver feeds the VFG, so
// a silent divergence would surface as different warning sites.
func TestSolverABRandprog(t *testing.T) {
	seeds := 500
	if testing.Short() {
		seeds = 60
	}
	opts := randprog.DefaultOptions
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := randprog.Generate(seed, opts)
		name := fmt.Sprintf("randprog-%d", seed)
		checkAB(t, name, src)
		gotW := warningsFor(t, name, src, false)
		wantW := warningsFor(t, name, src, true)
		if gotW != wantW {
			t.Errorf("%s: end-to-end warning divergence:\nbitvector: %s\nlegacy:    %s", name, gotW, wantW)
		}
	}
}

// warningsFor runs the full pipeline (analysis, instrumentation, guided
// execution) with the chosen solver and returns the canonical shadow and
// oracle warning sites.
func warningsFor(t *testing.T, name, src string, legacy bool) string {
	t.Helper()
	prev := pointer.UseLegacySolver
	pointer.UseLegacySolver = legacy
	defer func() { pointer.UseLegacySolver = prev }()

	prog, err := usher.Compile(name, src)
	if err != nil {
		t.Fatalf("%s: compile: %v", name, err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		t.Fatalf("%s: passes: %v", name, err)
	}
	a, err := usher.Analyze(prog, usher.ConfigUsherFull)
	if err != nil {
		t.Fatalf("%s: analyze: %v", name, err)
	}
	res, err := a.Run(usher.RunOptions{})
	if err != nil {
		// Generated programs may trap (uninitialized pointers): the trap
		// itself must still be solver-independent, so record it.
		return "run-error: " + err.Error()
	}
	var sb strings.Builder
	sb.WriteString("shadow:")
	for _, w := range res.ShadowWarnings {
		sb.WriteString(" " + w.String())
	}
	sb.WriteString(" oracle:")
	for _, w := range res.OracleWarnings {
		sb.WriteString(" " + w.String())
	}
	return sb.String()
}
