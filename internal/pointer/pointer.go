// Package pointer implements an inclusion-based (Andersen-style),
// offset-based field-sensitive pointer analysis with on-the-fly call-graph
// construction, the prerequisite of the paper's memory SSA and value-flow
// graph (§3.1, §5.4).
//
// Abstract locations are field variables (object, field-index) plus
// function addresses. Arrays and dynamically sized heap objects are
// collapsed to a single field (the paper treats arrays as a whole);
// objects whose address flows into pointer arithmetic are collapsed
// on-line during solving, which keeps the treatment sound.
//
// The paper's 1-callsite heap cloning for allocation wrappers is realized
// upstream by inlining allocation wrappers (package passes), which gives
// each call site its own allocation site and hence its own abstract
// object.
package pointer

import (
	"fmt"
	"sort"

	"github.com/valueflow/usher/internal/ir"
)

// Loc is an abstract memory location: a field of an object, or a function
// address (Fn non-nil).
type Loc struct {
	Obj   *ir.Object
	Field int
	Fn    *ir.Function
}

func (l Loc) String() string {
	if l.Fn != nil {
		return "@" + l.Fn.Name
	}
	if l.Field == 0 {
		return l.Obj.String()
	}
	return fmt.Sprintf("%s.f%d", l.Obj, l.Field)
}

// Result is the outcome of the analysis.
type Result struct {
	solver *solver
	// callees maps each call instruction to its possible targets (direct
	// calls have exactly one).
	callees map[*ir.Call][]*ir.Function
	// callers maps each function to the calls that may invoke it.
	callers map[*ir.Function][]*ir.Call
	// recursive marks functions on call-graph cycles (including
	// self-recursion).
	recursive map[*ir.Function]bool
}

// PointsTo returns the abstract locations v may point to, sorted
// deterministically. Constants and non-pointer values yield nil.
func (r *Result) PointsTo(v ir.Value) []Loc {
	n, ok := r.solver.operandNode(v, false)
	if !ok {
		switch v := v.(type) {
		case *ir.GlobalAddr:
			return []Loc{{Obj: v.Obj}}
		case *ir.FuncValue:
			return []Loc{{Fn: v.Fn}}
		}
		return nil
	}
	return r.solver.locsOf(n)
}

// UniqueTarget returns the single abstract object field v can point to,
// if its points-to set is a singleton non-function location.
func (r *Result) UniqueTarget(v ir.Value) (Loc, bool) {
	locs := r.PointsTo(v)
	if len(locs) == 1 && locs[0].Fn == nil {
		return locs[0], true
	}
	return Loc{}, false
}

// Callees returns the functions a call may invoke (empty for builtins and
// externals).
func (r *Result) Callees(c *ir.Call) []*ir.Function { return r.callees[c] }

// Callers returns the call instructions that may invoke fn.
func (r *Result) Callers(fn *ir.Function) []*ir.Call { return r.callers[fn] }

// Recursive reports whether fn participates in a call-graph cycle.
func (r *Result) Recursive(fn *ir.Function) bool { return r.recursive[fn] }

// CanonField maps a field index through any collapsing the solver
// performed on obj.
func (r *Result) CanonField(obj *ir.Object, field int) int {
	if obj.Collapsed() {
		return 0
	}
	return obj.FieldIndex(field)
}

// Analyze runs the analysis over the whole program.
func Analyze(prog *ir.Program) *Result {
	s := newSolver(prog)
	s.generate()
	s.solve()
	s.freeze()
	res := &Result{
		solver:    s,
		callees:   s.callees,
		callers:   make(map[*ir.Function][]*ir.Call),
		recursive: make(map[*ir.Function]bool),
	}
	for c, fns := range s.callees {
		for _, fn := range fns {
			res.callers[fn] = append(res.callers[fn], c)
		}
	}
	for fn := range res.callers {
		sort.Slice(res.callers[fn], func(i, j int) bool {
			a, b := res.callers[fn][i], res.callers[fn][j]
			if a.Parent().Fn != b.Parent().Fn {
				return a.Parent().Fn.Name < b.Parent().Fn.Name
			}
			return a.Label() < b.Label()
		})
	}
	res.findRecursion(prog)
	return res
}

// findRecursion marks functions in call-graph SCCs of size > 1 or with
// self-loops, using Tarjan's algorithm.
func (r *Result) findRecursion(prog *ir.Program) {
	index := make(map[*ir.Function]int)
	low := make(map[*ir.Function]int)
	onStack := make(map[*ir.Function]bool)
	var stack []*ir.Function
	next := 0

	succs := func(fn *ir.Function) []*ir.Function {
		var out []*ir.Function
		seen := make(map[*ir.Function]bool)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if c, ok := in.(*ir.Call); ok {
					for _, callee := range r.callees[c] {
						if !seen[callee] {
							seen[callee] = true
							out = append(out, callee)
						}
					}
				}
			}
		}
		return out
	}

	var strongconnect func(fn *ir.Function)
	strongconnect = func(fn *ir.Function) {
		index[fn] = next
		low[fn] = next
		next++
		stack = append(stack, fn)
		onStack[fn] = true
		for _, s := range succs(fn) {
			if _, seen := index[s]; !seen {
				strongconnect(s)
				if low[s] < low[fn] {
					low[fn] = low[s]
				}
			} else if onStack[s] {
				if index[s] < low[fn] {
					low[fn] = index[s]
				}
			}
			if s == fn {
				r.recursive[fn] = true // direct self-loop
			}
		}
		if low[fn] == index[fn] {
			var scc []*ir.Function
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				scc = append(scc, top)
				if top == fn {
					break
				}
			}
			if len(scc) > 1 {
				for _, f := range scc {
					r.recursive[f] = true
				}
			}
		}
	}
	for _, fn := range prog.Funcs {
		if fn.HasBody {
			if _, seen := index[fn]; !seen {
				strongconnect(fn)
			}
		}
	}
}
