// Package pointer implements an inclusion-based (Andersen-style),
// offset-based field-sensitive pointer analysis with on-the-fly call-graph
// construction, the prerequisite of the paper's memory SSA and value-flow
// graph (§3.1, §5.4).
//
// Abstract locations are field variables (object, field-index) plus
// function addresses. Arrays and dynamically sized heap objects are
// collapsed to a single field (the paper treats arrays as a whole);
// objects whose address flows into pointer arithmetic are collapsed
// on-line during solving, which keeps the treatment sound.
//
// The paper's 1-callsite heap cloning for allocation wrappers is realized
// upstream by inlining allocation wrappers (package passes), which gives
// each call site its own allocation site and hence its own abstract
// object.
package pointer

import (
	"fmt"
	"sort"

	"github.com/valueflow/usher/internal/ir"
)

// Loc is an abstract memory location: a field of an object, or a function
// address (Fn non-nil).
type Loc struct {
	Obj   *ir.Object
	Field int
	Fn    *ir.Function
}

func (l Loc) String() string {
	if l.Fn != nil {
		return "@" + l.Fn.Name
	}
	if l.Field == 0 {
		return l.Obj.String()
	}
	return fmt.Sprintf("%s.f%d", l.Obj, l.Field)
}

// ptsSolver is the query surface both solver implementations (the
// bit-vector production solver and the map-based legacy reference) expose
// to Result. Both are strictly read-only after freezing.
type ptsSolver interface {
	operandNode(v ir.Value, create bool) (int, bool)
	locsOf(n int) []Loc
}

// SolverStats summarizes the solved constraint system. All fields are
// deterministic functions of the analyzed program (the solver's worklist
// order is deterministic), so the pipeline reports them under the
// bit-identical-for-any-parallelism contract.
type SolverStats struct {
	// Nodes counts constraint nodes, Locations abstract locations.
	Nodes, Locations int
	// Constraints counts complex constraints (loads, stores, field/index
	// offsets, indirect call sites) attached to union-find roots; CopyEdges
	// counts copy-edge insertions over the whole solve.
	Constraints, CopyEdges int
	// Visits counts worklist visits that processed a non-empty delta;
	// Waves counts worklist rounds (the wave-parallel solver's barrier
	// count — identical at every worker count, see parallel.go).
	Visits int
	Waves  int
	// SCCsCollapsed counts multi-node copy cycles folded by online cycle
	// elimination. The legacy solver reports only Nodes (it predates these
	// counters).
	SCCsCollapsed int
}

// Result is the outcome of the analysis.
type Result struct {
	solver ptsSolver
	// Stats describes the constraint system the solver built and solved.
	Stats SolverStats
	// callees maps each call instruction to its possible targets (direct
	// calls have exactly one).
	callees map[*ir.Call][]*ir.Function
	// callers maps each function to the calls that may invoke it.
	callers map[*ir.Function][]*ir.Call
	// recursive marks functions on call-graph cycles (including
	// self-recursion).
	recursive map[*ir.Function]bool
}

// PointsTo returns the abstract locations v may point to, sorted
// deterministically. Constants and non-pointer values yield nil.
func (r *Result) PointsTo(v ir.Value) []Loc {
	n, ok := r.solver.operandNode(v, false)
	if !ok {
		switch v := v.(type) {
		case *ir.GlobalAddr:
			return []Loc{{Obj: v.Obj}}
		case *ir.FuncValue:
			return []Loc{{Fn: v.Fn}}
		}
		return nil
	}
	return r.solver.locsOf(n)
}

// UniqueTarget returns the single abstract object field v can point to,
// if its points-to set is a singleton non-function location.
func (r *Result) UniqueTarget(v ir.Value) (Loc, bool) {
	locs := r.PointsTo(v)
	if len(locs) == 1 && locs[0].Fn == nil {
		return locs[0], true
	}
	return Loc{}, false
}

// Callees returns the functions a call may invoke (empty for builtins and
// externals).
func (r *Result) Callees(c *ir.Call) []*ir.Function { return r.callees[c] }

// Callers returns the call instructions that may invoke fn.
func (r *Result) Callers(fn *ir.Function) []*ir.Call { return r.callers[fn] }

// Recursive reports whether fn participates in a call-graph cycle.
func (r *Result) Recursive(fn *ir.Function) bool { return r.recursive[fn] }

// CanonField maps a field index through any collapsing the solver
// performed on obj.
func (r *Result) CanonField(obj *ir.Object, field int) int {
	if obj.Collapsed() {
		return 0
	}
	return obj.FieldIndex(field)
}

// UseLegacySolver routes Analyze through the retired map-based solver
// (legacy.go) instead of the bit-vector one. It exists for differential
// testing and baseline benchmarking (usher-bench -legacy-solver) and must
// be set before any analysis starts; it is not safe to flip concurrently
// with running analyses.
var UseLegacySolver bool

// Analyze runs the analysis over the whole program, routing through the
// solver selected by the package-level switches (UseLegacySolver, then
// Workers; see AnalyzeWorkers).
func Analyze(prog *ir.Program) *Result {
	if UseLegacySolver {
		return AnalyzeLegacy(prog)
	}
	return AnalyzeWorkers(prog, Workers)
}

// AnalyzeLegacy runs the original map-based solver (see legacy.go). Its
// results are the reference the production solver is diffed against; use
// Analyze everywhere else.
func AnalyzeLegacy(prog *ir.Program) *Result {
	s := newLegacySolver(prog)
	s.generate()
	s.solve()
	s.freeze()
	res := finishResult(prog, s, s.callees)
	res.Stats = SolverStats{Nodes: len(s.nodes)}
	return res
}

// finishResult performs the implementation-independent post-processing:
// canonical callee ordering, the callers index, and recursion detection.
// Canonicalizing callees here makes the two solver implementations
// byte-identical downstream even though their worklist dynamics resolve
// indirect calls in different orders.
func finishResult(prog *ir.Program, impl ptsSolver, callees map[*ir.Call][]*ir.Function) *Result {
	res := &Result{
		solver:    impl,
		callees:   callees,
		callers:   make(map[*ir.Function][]*ir.Call),
		recursive: make(map[*ir.Function]bool),
	}
	for c, fns := range callees {
		sort.Slice(fns, func(i, j int) bool { return fns[i].Name < fns[j].Name })
		for _, fn := range fns {
			res.callers[fn] = append(res.callers[fn], c)
		}
	}
	for fn := range res.callers {
		sort.Slice(res.callers[fn], func(i, j int) bool {
			a, b := res.callers[fn][i], res.callers[fn][j]
			if a.Parent().Fn != b.Parent().Fn {
				return a.Parent().Fn.Name < b.Parent().Fn.Name
			}
			return a.Label() < b.Label()
		})
	}
	res.findRecursion(prog)
	return res
}

// findRecursion marks functions in call-graph SCCs of size > 1 or with
// self-loops, using Tarjan's algorithm over dense function indices (the
// state is flat slices, not per-function maps — this runs on every
// analysis, for either solver).
func (r *Result) findRecursion(prog *ir.Program) {
	nf := len(prog.Funcs)
	fnIdx := make(map[*ir.Function]int, nf)
	for i, fn := range prog.Funcs {
		fnIdx[fn] = i
	}
	// Per-function deduped callee lists (epoch-marked dedup, no maps).
	succs := make([][]int32, nf)
	mark := make([]int32, nf)
	for i := range mark {
		mark[i] = -1
	}
	for fi, fn := range prog.Funcs {
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				c, ok := in.(*ir.Call)
				if !ok {
					continue
				}
				for _, callee := range r.callees[c] {
					if callee == fn {
						r.recursive[fn] = true // direct self-loop
					}
					if ci := fnIdx[callee]; mark[ci] != int32(fi) {
						mark[ci] = int32(fi)
						succs[fi] = append(succs[fi], int32(ci))
					}
				}
			}
		}
	}

	index := make([]int32, nf) // 0 = unvisited, else visit order + 1
	low := make([]int32, nf)
	onStack := make([]bool, nf)
	var stack []int32
	next := int32(0)

	type frame struct {
		v  int32
		si int
	}
	var dfs []frame
	for root := 0; root < nf; root++ {
		if !prog.Funcs[root].HasBody || index[root] != 0 {
			continue
		}
		dfs = append(dfs[:0], frame{int32(root), 0})
		for len(dfs) > 0 {
			f := &dfs[len(dfs)-1]
			v := int(f.v)
			if f.si == 0 {
				next++
				index[v] = next
				low[v] = next
				stack = append(stack, int32(v))
				onStack[v] = true
			}
			advanced := false
			for f.si < len(succs[v]) {
				w := int(succs[v][f.si])
				f.si++
				if index[w] == 0 {
					dfs = append(dfs, frame{int32(w), 0})
					advanced = true
					break
				}
				if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
			}
			if advanced {
				continue
			}
			dfs = dfs[:len(dfs)-1]
			if len(dfs) > 0 {
				if p := int(dfs[len(dfs)-1].v); low[v] < low[p] {
					low[p] = low[v]
				}
			}
			if low[v] != index[v] {
				continue
			}
			popTo := len(stack)
			for popTo > 0 {
				popTo--
				onStack[stack[popTo]] = false
				if int(stack[popTo]) == v {
					break
				}
			}
			if scc := stack[popTo:]; len(scc) > 1 {
				for _, w := range scc {
					r.recursive[prog.Funcs[w]] = true
				}
			}
			stack = stack[:popTo]
		}
	}
}
