package pointer_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/workload"
)

// TestExportImportRoundTrip pins the serialization boundary: an imported
// Result must answer every query identically to the Result it was
// exported from — points-to sets, call graph, recursion marks — which is
// exactly what pointerSignature renders.
func TestExportImportRoundTrip(t *testing.T) {
	for _, p := range workload.LargeProfiles[:2] {
		prog, err := usher.Compile(p.Name, workload.GenerateLarge(p))
		if err != nil {
			t.Fatalf("%s: compile: %v", p.Name, err)
		}
		if err := passes.Apply(prog, passes.O0IM); err != nil {
			t.Fatalf("%s: passes: %v", p.Name, err)
		}
		cold := pointer.Analyze(prog)
		want := pointerSignature(prog, cold)

		ex, err := cold.Export(prog)
		if err != nil {
			t.Fatalf("%s: export: %v", p.Name, err)
		}
		warm, err := pointer.Import(prog, ex)
		if err != nil {
			t.Fatalf("%s: import: %v", p.Name, err)
		}
		if got := pointerSignature(prog, warm); got != want {
			t.Errorf("%s: imported result diverges from cold solve:\n%s",
				p.Name, diffLines(got, want))
		}
		if warm.Stats != cold.Stats {
			t.Errorf("%s: imported stats %+v != cold %+v", p.Name, warm.Stats, cold.Stats)
		}
	}
}

// TestImportRejectsDamage pins the defensive validation: out-of-range
// indices error out instead of panicking, so the snapshot layer can fall
// back to a cold solve.
func TestImportRejectsDamage(t *testing.T) {
	p := workload.LargeProfiles[0]
	prog, err := usher.Compile(p.Name, workload.GenerateLarge(p))
	if err != nil {
		t.Fatal(err)
	}
	if err := passes.Apply(prog, passes.O0IM); err != nil {
		t.Fatal(err)
	}
	cold := pointer.Analyze(prog)
	base, err := cold.Export(prog)
	if err != nil {
		t.Fatal(err)
	}
	damage := []func(*pointer.Export){
		func(e *pointer.Export) { e.Collapsed = append(e.Collapsed, 1<<30) },
		func(e *pointer.Export) { e.Regs = append(e.Regs, pointer.RegPts{Fn: len(prog.Funcs) + 5}) },
		func(e *pointer.Export) {
			e.Regs = append(e.Regs, pointer.RegPts{Fn: 0, Reg: 0, Locs: []int32{int32(len(e.Locs) + 7)}})
		},
		func(e *pointer.Export) { e.Calls = append(e.Calls, pointer.CallEdges{Site: 1 << 30}) },
		func(e *pointer.Export) {
			e.Calls = append(e.Calls, pointer.CallEdges{Site: 0, Callees: []int32{-2}})
		},
	}
	for i, d := range damage {
		ex := *base
		// Shallow copy + append-only damage keeps the base export intact.
		ex.Collapsed = append([]int(nil), base.Collapsed...)
		ex.Regs = append([]pointer.RegPts(nil), base.Regs...)
		ex.Calls = append([]pointer.CallEdges(nil), base.Calls...)
		d(&ex)
		if _, err := pointer.Import(prog, &ex); err == nil {
			t.Errorf("damage %d: import accepted an invalid export", i)
		}
	}
	// The legacy solver's state is not exportable.
	legacy := pointer.AnalyzeLegacy(prog)
	if _, err := legacy.Export(prog); err == nil {
		t.Error("legacy result exported without error")
	}
}
