package pointer_test

import (
	"runtime"
	"testing"
	"time"

	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/workload"
)

// TestWaveSolverSpeedup pins the point of the wave solver: on the
// million-constraint solver-xl profile, eight workers must solve at
// least 2x faster than one. The measurement needs real parallel
// hardware, so the test skips on machines with fewer than four CPUs
// (where the wave solver can only interleave, not overlap) and under
// -short. Result parity across worker counts is pinned separately by
// TestParallelSolverCorpus and TestParallelSolverXL, which run
// everywhere.
func TestWaveSolverSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping solver-xl speedup measurement in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs for a meaningful speedup measurement, have %d", runtime.NumCPU())
	}
	p := workload.XLProfiles[len(workload.XLProfiles)-1] // solver-xl
	solveAt := func(workers int) time.Duration {
		// Fresh IR per run: solving collapses objects in place, and the
		// builds are deterministic.
		prog := workload.BuildXL(p)
		start := time.Now()
		pointer.AnalyzeWorkers(prog, workers)
		return time.Since(start)
	}
	solveAt(1) // warm-up: page in the workload builder and allocator
	best := func(workers int) time.Duration {
		d := solveAt(workers)
		if r := solveAt(workers); r < d {
			d = r
		}
		return d
	}
	one, eight := best(1), best(8)
	speedup := float64(one) / float64(eight)
	t.Logf("%s: workers=1 %v, workers=8 %v, speedup %.2fx", p.Name, one, eight, speedup)
	if speedup < 2 {
		t.Errorf("workers=8 speedup %.2fx, want >= 2x (workers=1 %v, workers=8 %v)", speedup, one, eight)
	}
}
