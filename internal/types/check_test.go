package types_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/types"
)

func check(t *testing.T, src string) (*types.Info, error) {
	t.Helper()
	prog, err := parser.Parse("test.c", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return types.Check(prog)
}

func checkOK(t *testing.T, src string) *types.Info {
	t.Helper()
	info, err := check(t, src)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return info
}

func wantErr(t *testing.T, src, substr string) {
	t.Helper()
	_, err := check(t, src)
	if err == nil {
		t.Fatalf("want error containing %q, got none", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("want error containing %q, got: %v", substr, err)
	}
}

func TestSimpleProgram(t *testing.T) {
	checkOK(t, `
int g;
int add(int a, int b) { return a + b; }
int main() { int x = add(g, 2); return x; }`)
}

func TestStructLayout(t *testing.T) {
	info := checkOK(t, `
struct Node { int val; struct Node *next; int tag; };
int main() { struct Node n; n.val = 1; return n.val; }`)
	st := info.Structs["Node"]
	if st == nil {
		t.Fatal("struct Node not found")
	}
	if st.Size() != 3 {
		t.Errorf("size = %d, want 3", st.Size())
	}
	if f := st.Field("next"); f == nil || f.Offset != 1 {
		t.Errorf("next offset = %+v, want 1", f)
	}
	if f := st.Field("tag"); f == nil || f.Offset != 2 {
		t.Errorf("tag offset = %+v, want 2", f)
	}
}

func TestAddrTaken(t *testing.T) {
	info := checkOK(t, `
int main() {
  int a;
  int b;
  int *p = &a;
  *p = 1;
  b = 2;
  return a + b;
}`)
	var aSym, bSym *types.Symbol
	for node, sym := range info.Symbols {
		if vd, ok := node.(*ast.VarDecl); ok {
			switch vd.Name {
			case "a":
				aSym = sym
			case "b":
				bSym = sym
			}
		}
	}
	if aSym == nil || !aSym.AddrTaken {
		t.Error("a should be address-taken")
	}
	if bSym == nil || bSym.AddrTaken {
		t.Error("b should not be address-taken")
	}
}

func TestMallocCalloc(t *testing.T) {
	checkOK(t, `
int main() {
  int *p = malloc(4);
  int *q = calloc(4);
  *p = 1;
  free(p);
  free(q);
  return 0;
}`)
}

func TestStructPointers(t *testing.T) {
	checkOK(t, `
struct S { int a; int *p; };
int get(struct S *s) { return s->a + *(s->p); }
int main() {
  struct S s;
  int v = 3;
  s.a = 1;
  s.p = &v;
  return get(&s);
}`)
}

func TestFunctionPointers(t *testing.T) {
	info := checkOK(t, `
int inc(int x) { return x + 1; }
int dec(int x) { return x - 1; }
int apply(int (*f)(int), int x) { return f(x); }
int main() {
  int (*g)(int);
  g = inc;
  return apply(g, 1) + apply(dec, 2);
}`)
	if len(info.Funcs) != 4 {
		t.Errorf("funcs = %d, want 4", len(info.Funcs))
	}
}

func TestNullPointerLiteral(t *testing.T) {
	checkOK(t, `
int main() {
  int *p = 0;
  if (p == 0) { return 1; }
  return 0;
}`)
}

func TestPointerArithmetic(t *testing.T) {
	checkOK(t, `
int main() {
  int a[10];
  int *p = a;
  int *q = p + 3;
  *q = 7;
  return q[0] + a[3];
}`)
}

func TestVoidFunction(t *testing.T) {
	checkOK(t, `
int g;
void set(int v) { g = v; return; }
int main() { set(3); return g; }`)
}

func TestErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"undefined var", "int main() { return zz; }", "undefined: zz"},
		{"undefined struct", "struct Q *p;", "undefined struct"},
		{"bad call arity", "int f(int a) { return a; } int main() { return f(); }", "wrong number of arguments"},
		{"deref int", "int main() { int x; return *x; }", "dereference non-pointer"},
		{"assign to rvalue", "int main() { 3 = 4; return 0; }", "cannot assign"},
		{"return mismatch", "int *f() { return 5; }", "cannot return"},
		{"break outside loop", "int main() { break; return 0; }", "break outside loop"},
		{"dup field", "struct S { int a; int a; };", "duplicate field"},
		{"redeclared var", "int main() { int x; int x; return 0; }", "redeclaration"},
		{"array param", "int f(int a[3]) { return 0; }", "scalar or struct"},
		{"arrow on struct", "struct S { int a; }; int main() { struct S s; return s->a; }", "-> on non-pointer"},
		{"missing field", "struct S { int a; }; int main() { struct S s; return s.b; }", "no field b"},
		{"void local", "int main() { void v; return 0; }", "invalid type"},
		{"call non-function", "int main() { int x; return x(1); }", "cannot call"},
		{"redefine builtin", "int malloc(int n) { return n; }", "builtin"},
		{"compare ptr int", "int main() { int *p; int x; if (p == x) {} return 0; }", "cannot compare"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) { wantErr(t, tt.src, tt.want) })
	}
}

func TestExprTypesRecorded(t *testing.T) {
	src := `int main() { int x = 1; int *p = &x; return *p + x; }`
	prog, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	// Every expression node reachable from the return statement must have
	// a recorded type.
	fd := prog.Decls[0].(*ast.FuncDecl)
	ret := fd.Body.Stmts[2].(*ast.ReturnStmt)
	if ty := info.TypeOf(ret.X); ty == nil || !types.IsInt(ty) {
		t.Errorf("type of return expr = %v, want int", ty)
	}
}

func TestRecursiveFunction(t *testing.T) {
	checkOK(t, `
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(10); }`)
}

func TestGlobalInitializerMustBeConstant(t *testing.T) {
	wantErr(t, "int f() { return 1; } int g = f();", "must be an integer or string literal")
}

func TestIdenticalAndAssignable(t *testing.T) {
	pi := &types.Pointer{Elem: types.Int}
	pi2 := &types.Pointer{Elem: types.Int}
	ppi := &types.Pointer{Elem: pi}
	if !types.Identical(pi, pi2) {
		t.Error("int* should be identical to int*")
	}
	if types.Identical(pi, ppi) {
		t.Error("int* should differ from int**")
	}
	if !types.AssignableTo(types.UntypedPtr, pi) {
		t.Error("void* should assign to int*")
	}
	if !types.AssignableTo(pi, types.UntypedPtr) {
		t.Error("int* should assign to void*")
	}
	if types.AssignableTo(types.Int, pi) {
		t.Error("int should not assign to int*")
	}
}

func TestArrayTreatment(t *testing.T) {
	arr := &types.Array{Elem: types.Int, Len: 8}
	if arr.Size() != 8 {
		t.Errorf("array size = %d, want 8", arr.Size())
	}
	st := &types.Struct{Name: "T"}
	if !strings.Contains(st.String(), "T") {
		t.Errorf("struct string = %q", st.String())
	}
}

func TestMoreErrors(t *testing.T) {
	tests := []struct {
		name, src, want string
	}{
		{"void global", "void v;", "invalid type"},
		{"array len zero", "int a[0];", "positive"},
		{"empty struct", "struct E { };", "no fields"},
		{"dup struct", "struct S { int a; }; struct S { int b; };", "redeclaration of struct"},
		{"return in void", "void f() { return 3; }", "void function"},
		{"missing return value", "int f() { return; }", "missing return value"},
		{"continue outside loop", "int main() { continue; return 0; }", "continue outside loop"},
		{"non-scalar condition", "struct S { int a; int b; }; int main() { struct S s; if (s) {} return 0; }", "scalar"},
		{"assign mismatched structs", "struct S { int a; }; struct T { int a; }; int main() { struct S a; struct T b; a = b; return 0; }", "cannot assign"},
		{"assign to array", "int main() { int a[3]; int b[3]; a = b; return 0; }", "cannot assign to array"},
		{"index non-pointer", "int main() { int x; return x[0]; }", "cannot index"},
		{"index with pointer", "int main() { int a[3]; int *p; return a[p]; }", "index must be int"},
		{"dot on pointer", "struct S { int a; }; int main() { struct S *p; return p.a; }", ". on non-struct"},
		{"address of rvalue", "int main() { int *p = &3; return 0; }", "cannot take address"},
		{"deref void pointer", "int main() { return *(malloc(1)); }", "dereference"},
		{"array return declarator", "int f()[3];", "invalid type"},
		{"va_arg outside variadic", "int f(int a) { return va_arg(0); }", "variadic"},
		{"variadic arity", "int f(int a, ...) { return a; } int main() { return f(); }", "at least"},
		{"variadic non-int extra", "int f(int a, ...) { return a; } int main() { int *p; return f(1, p); }", "must be int"},
		{"string too long", "int main() { char s[2] = \"abc\"; return 0; }", "does not fit"},
		{"string into scalar array-less", "int main() { int x = \"a\"; return x; }", "cannot initialize"},
		{"sizeof void", "int main() { return sizeof(void); }", "zero-sized"},
		{"shift pointer", "int main() { int *p; int x = p << 1; return x; }", "requires ints"},
		{"negate pointer", "int main() { int *p; return -p; }", "requires int"},
		{"logic on struct", "struct S { int a; int b; }; int main() { struct S s; return s && 1; }", "requires scalars"},
		{"relational pointers", "int main() { int a; int b; if (&a < &b) {} return 0; }", "requires ints"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) { wantErr(t, tt.src, tt.want) })
	}
}

func TestPrototypeMismatch(t *testing.T) {
	wantErr(t, "int f(int); int f(int a, int b) { return a + b; }", "redeclaration")
}

func TestSelfReferentialStructThroughPointer(t *testing.T) {
	info := checkOK(t, `
struct T { struct T *self; int v; };
int main() { struct T t; t.self = &t; t.v = 1; return t.self->v; }`)
	st := info.Structs["T"]
	if st.Size() != 2 {
		t.Errorf("size = %d, want 2", st.Size())
	}
}

func TestVoidParamList(t *testing.T) {
	checkOK(t, "int f(void) { return 1; } int main() { return f(); }")
}

func TestNullComparisonBothWays(t *testing.T) {
	checkOK(t, `
int main() {
  int *p = 0;
  if (0 == p) { return 1; }
  if (p != 0) { return 2; }
  return 0;
}`)
}

func TestFunctionAsValueInCondition(t *testing.T) {
	// Function designators decay to pointers: scalar, so allowed.
	checkOK(t, "int f() { return 1; } int main() { if (f) { return 1; } return 0; }")
}
