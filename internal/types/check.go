package types

import (
	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/token"
)

// SymKind classifies a symbol.
type SymKind int

// Symbol kinds.
const (
	SymGlobal SymKind = iota
	SymLocal
	SymParam
	SymFunc
	SymBuiltin
)

func (k SymKind) String() string {
	switch k {
	case SymGlobal:
		return "global"
	case SymLocal:
		return "local"
	case SymParam:
		return "param"
	case SymFunc:
		return "func"
	default:
		return "builtin"
	}
}

// Symbol is a declared name: a variable, parameter, function or builtin.
type Symbol struct {
	Name string
	Type Type
	Kind SymKind
	Decl ast.Node // declaring node; nil for builtins
	// AddrTaken records whether the program takes the symbol's address
	// with &. Aggregate-typed locals are memory-resident regardless.
	AddrTaken bool
}

// Builtin function names recognized by the checker. malloc allocates
// uninitialized cells, calloc zero-initialized cells; input reads a defined
// int from the environment; print consumes an int (and, like MSan's checks
// at external calls, is a critical use of its operand). memset fills n
// cells with a value, memcpy/memmove copy n cells (shadow included,
// MSan-style: copying an undefined cell is not itself an error); all three
// return the destination pointer. va_arg reads the i-th extra argument of
// the enclosing variadic function and is only valid there.
var builtinSigs = map[string]*Func{
	"malloc":  {Ret: UntypedPtr, Params: []Type{Int}},
	"calloc":  {Ret: UntypedPtr, Params: []Type{Int}},
	"free":    {Ret: Void, Params: []Type{UntypedPtr}},
	"print":   {Ret: Void, Params: []Type{Int}},
	"input":   {Ret: Int, Params: nil},
	"memset":  {Ret: UntypedPtr, Params: []Type{UntypedPtr, Int, Int}},
	"memcpy":  {Ret: UntypedPtr, Params: []Type{UntypedPtr, UntypedPtr, Int}},
	"memmove": {Ret: UntypedPtr, Params: []Type{UntypedPtr, UntypedPtr, Int}},
	"va_arg":  {Ret: Int, Params: []Type{Int}},
}

// Info holds the results of type checking.
type Info struct {
	Structs map[string]*Struct
	// Types maps every checked expression to its type. Lvalue expressions
	// are mapped to their value type (not the pointer).
	Types map[ast.Expr]Type
	// Uses maps identifier uses to the symbol they denote.
	Uses map[*ast.Ident]*Symbol
	// Symbols maps declaration nodes (VarDecl, FuncDecl and the addresses
	// of Params) to their symbols.
	Symbols map[ast.Node]*Symbol
	// ParamSymbols maps each FuncDecl to its parameter symbols in order.
	ParamSymbols map[*ast.FuncDecl][]*Symbol
	// Funcs are the declared functions with bodies, in source order.
	Funcs []*ast.FuncDecl
	// Globals are the global variables in source order.
	Globals []*Symbol
}

// TypeOf returns the checked type of e.
func (in *Info) TypeOf(e ast.Expr) Type { return in.Types[e] }

type checker struct {
	info   *Info
	diags  diag.List
	scopes []map[string]*Symbol
	// current function context
	curRet      Type
	curVariadic bool
	loopDepth   int
}

// Check type-checks prog and returns the annotation info. All detected
// errors are accumulated as diagnostics and returned as a single error
// in source order. Check never panics on malformed input: an unexpected
// panic (a checker bug) is returned as an internal-error diagnostic.
func Check(prog *ast.Program) (_ *Info, err error) {
	defer diag.Guard(diag.PhaseType, &err)
	return check(prog)
}

func check(prog *ast.Program) (*Info, error) {
	c := &checker{info: &Info{
		Structs:      make(map[string]*Struct),
		Types:        make(map[ast.Expr]Type),
		Uses:         make(map[*ast.Ident]*Symbol),
		Symbols:      make(map[ast.Node]*Symbol),
		ParamSymbols: make(map[*ast.FuncDecl][]*Symbol),
	}}
	c.push() // file scope

	// Includes are resolved by package module before type checking; one
	// reaching this point means the caller compiled a module in
	// single-file mode.
	for _, d := range prog.Decls {
		if inc, ok := d.(*ast.Include); ok {
			c.errorf(inc.Pos(), "unresolved #include %q (compile as a multi-file module set)", inc.Path)
		}
	}
	// Pass 1: struct declarations (in order; forward references to later
	// structs are allowed only through pointers, checked by resolve).
	for _, d := range prog.Decls {
		if sd, ok := d.(*ast.StructDecl); ok {
			c.declareStruct(sd)
		}
	}
	// Pass 2: globals and function signatures.
	for _, d := range prog.Decls {
		switch d := d.(type) {
		case *ast.VarDecl:
			t := c.resolveType(d.Type, d.Pos())
			if t == Void || t.Size() == 0 {
				c.errorf(d.Pos(), "global %s has invalid type %s", d.Name, t)
				t = Int
			}
			sym := &Symbol{Name: d.Name, Type: t, Kind: SymGlobal, Decl: d}
			c.declare(sym, d.Pos())
			c.info.Symbols[d] = sym
			c.info.Globals = append(c.info.Globals, sym)
		case *ast.FuncDecl:
			ft := c.funcType(d)
			if _, isBuiltin := builtinSigs[d.Name]; isBuiltin {
				c.errorf(d.Pos(), "cannot redefine builtin %s", d.Name)
				continue
			}
			if prev := c.lookup(d.Name); prev != nil {
				if prev.Kind == SymFunc && Identical(prev.Type, ft) {
					if fd, ok := prev.Decl.(*ast.FuncDecl); ok && fd.Body != nil && d.Body != nil {
						c.errorf(d.Pos(), "redefinition of %s", d.Name)
						continue
					}
					// Prototype followed by definition: share the symbol.
					c.info.Symbols[d] = prev
					if d.Body != nil {
						prev.Decl = d
					}
					continue
				}
				c.errorf(d.Pos(), "redeclaration of %s", d.Name)
				continue
			}
			sym := &Symbol{Name: d.Name, Type: ft, Kind: SymFunc, Decl: d}
			c.declare(sym, d.Pos())
			c.info.Symbols[d] = sym
		}
	}
	// Pass 3: function bodies.
	for _, d := range prog.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil || c.info.Symbols[fd] == nil {
			continue
		}
		c.info.Funcs = append(c.info.Funcs, fd)
		c.checkFunc(fd)
	}
	// Global initializers must be constants; check after functions exist.
	for _, d := range prog.Decls {
		if vd, ok := d.(*ast.VarDecl); ok && vd.Init != nil {
			switch init := vd.Init.(type) {
			case *ast.NumberLit:
				c.checkExpr(init)
			case *ast.StringLit:
				c.checkExpr(init)
				sym := c.info.Symbols[vd]
				if sym == nil {
					continue
				}
				arr, isArr := sym.Type.(*Array)
				if !isArr || !IsInt(arr.Elem) {
					c.errorf(vd.Pos(), "string initializer requires a char array type, got %s", sym.Type)
				} else if len(init.Value) > arr.Len {
					c.errorf(vd.Pos(), "string literal (%d bytes) does not fit in %s (type %s)", len(init.Value), vd.Name, sym.Type)
				}
			default:
				c.errorf(vd.Pos(), "global initializer for %s must be an integer or string literal", vd.Name)
			}
		}
	}
	return c.info, c.diags.Err()
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.diags.Addf(diag.PhaseType, pos, format, args...)
}

func (c *checker) push() { c.scopes = append(c.scopes, make(map[string]*Symbol)) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(sym *Symbol, pos token.Pos) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[sym.Name]; dup {
		c.errorf(pos, "redeclaration of %s in the same scope", sym.Name)
		return
	}
	top[sym.Name] = sym
}

func (c *checker) lookup(name string) *Symbol {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if s, ok := c.scopes[i][name]; ok {
			return s
		}
	}
	return nil
}

func (c *checker) declareStruct(sd *ast.StructDecl) {
	if _, dup := c.info.Structs[sd.Name]; dup {
		c.errorf(sd.Pos(), "redeclaration of struct %s", sd.Name)
		return
	}
	st := &Struct{Name: sd.Name}
	c.info.Structs[sd.Name] = st // allow self-reference through pointers
	off := 0
	for _, f := range sd.Fields {
		ft := c.resolveType(f.Type, f.Pos)
		if ft.Size() == 0 {
			c.errorf(f.Pos, "field %s has invalid type %s", f.Name, ft)
			ft = Int
		}
		if st.Field(f.Name) != nil {
			c.errorf(f.Pos, "duplicate field %s in struct %s", f.Name, sd.Name)
			continue
		}
		st.Fields = append(st.Fields, StructField{Name: f.Name, Type: ft, Offset: off})
		off += ft.Size()
	}
	st.size = off
	if off == 0 {
		c.errorf(sd.Pos(), "struct %s has no fields", sd.Name)
		st.size = 1
	}
}

func (c *checker) resolveType(te ast.TypeExpr, pos token.Pos) Type {
	switch te := te.(type) {
	case *ast.IntTypeExpr:
		return Int
	case *ast.CharTypeExpr:
		// char is a one-cell integer in the abstract-cell model.
		return Int
	case *ast.VoidTypeExpr:
		return Void
	case *ast.StructTypeExpr:
		st, ok := c.info.Structs[te.Name]
		if !ok {
			c.errorf(pos, "undefined struct %s", te.Name)
			return Int
		}
		if st.size == 0 && len(st.Fields) == 0 {
			// Still being declared: only legal through a pointer; size is
			// filled in by declareStruct before any value use is checked.
			return st
		}
		return st
	case *ast.PointerTypeExpr:
		return &Pointer{Elem: c.resolveType(te.Elem, pos)}
	case *ast.ArrayTypeExpr:
		elem := c.resolveType(te.Elem, pos)
		if te.Len <= 0 {
			c.errorf(pos, "array length must be positive, got %d", te.Len)
			return &Array{Elem: elem, Len: 1}
		}
		return &Array{Elem: elem, Len: int(te.Len)}
	case *ast.FuncTypeExpr:
		ft := &Func{Ret: c.resolveType(te.Ret, pos), Variadic: te.Variadic}
		for _, p := range te.Params {
			ft.Params = append(ft.Params, c.resolveType(p, pos))
		}
		return ft
	}
	c.errorf(pos, "unknown type expression %T", te)
	return Int
}

func (c *checker) funcType(fd *ast.FuncDecl) *Func {
	ft := &Func{Ret: c.resolveType(fd.Ret, fd.Pos()), Variadic: fd.Variadic}
	for _, p := range fd.Params {
		pt := c.resolveType(p.Type, p.Pos)
		_, isStruct := pt.(*Struct)
		if !IsScalar(pt) && !isStruct {
			c.errorf(p.Pos, "parameter %s must have scalar or struct type, got %s (pass arrays by pointer)", p.Name, pt)
			pt = Int
		}
		ft.Params = append(ft.Params, pt)
	}
	if _, isArr := ft.Ret.(*Array); isArr {
		c.errorf(fd.Pos(), "function %s returns an array; return a pointer instead", fd.Name)
		ft.Ret = Int
	}
	return ft
}

func (c *checker) checkFunc(fd *ast.FuncDecl) {
	sym := c.info.Symbols[fd]
	if sym == nil {
		return
	}
	ft := sym.Type.(*Func)
	c.curRet = ft.Ret
	c.curVariadic = ft.Variadic
	c.push()
	var psyms []*Symbol
	for i := range fd.Params {
		p := &fd.Params[i]
		ps := &Symbol{Name: p.Name, Type: ft.Params[i], Kind: SymParam, Decl: fd}
		c.declare(ps, p.Pos)
		psyms = append(psyms, ps)
	}
	c.info.ParamSymbols[fd] = psyms
	c.checkBlock(fd.Body, false)
	c.pop()
}

// checkBlock checks a block; ownScope controls whether the block introduces
// a new scope (function bodies reuse the parameter scope).
func (c *checker) checkBlock(b *ast.Block, ownScope bool) {
	if ownScope {
		c.push()
		defer c.pop()
	}
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
}

func (c *checker) checkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		c.checkBlock(s, true)
	case *ast.EmptyStmt:
	case *ast.DeclStmt:
		c.checkLocalDecl(s.Decl)
	case *ast.ExprStmt:
		c.checkExpr(s.X)
	case *ast.IfStmt:
		c.checkCond(s.Cond)
		c.checkStmt(s.Then)
		if s.Else != nil {
			c.checkStmt(s.Else)
		}
	case *ast.WhileStmt:
		c.checkCond(s.Cond)
		c.loopDepth++
		c.checkStmt(s.Body)
		c.loopDepth--
	case *ast.ForStmt:
		c.push()
		if s.Init != nil {
			c.checkStmt(s.Init)
		}
		if s.Cond != nil {
			c.checkCond(s.Cond)
		}
		if s.Post != nil {
			c.checkExpr(s.Post)
		}
		c.loopDepth++
		c.checkStmt(s.Body)
		c.loopDepth--
		c.pop()
	case *ast.ReturnStmt:
		if s.X == nil {
			if c.curRet != Void {
				c.errorf(s.Pos(), "missing return value (function returns %s)", c.curRet)
			}
			return
		}
		if c.curRet == Void {
			c.errorf(s.Pos(), "return with a value in void function")
			c.checkExpr(s.X)
			return
		}
		t := c.checkExpr(s.X)
		if !c.assignable(s.X, t, c.curRet) {
			c.errorf(s.Pos(), "cannot return %s as %s", t, c.curRet)
		}
	case *ast.BreakStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "break outside loop")
		}
	case *ast.ContinueStmt:
		if c.loopDepth == 0 {
			c.errorf(s.Pos(), "continue outside loop")
		}
	default:
		c.errorf(s.Pos(), "unknown statement %T", s)
	}
}

func (c *checker) checkLocalDecl(d *ast.VarDecl) {
	t := c.resolveType(d.Type, d.Pos())
	if t.Size() == 0 {
		c.errorf(d.Pos(), "local %s has invalid type %s", d.Name, t)
		t = Int
	}
	sym := &Symbol{Name: d.Name, Type: t, Kind: SymLocal, Decl: d}
	c.declare(sym, d.Pos())
	c.info.Symbols[d] = sym
	if d.Init != nil {
		it := c.checkExpr(d.Init)
		if arr, isArr := t.(*Array); isArr {
			sl, isStr := d.Init.(*ast.StringLit)
			switch {
			case !isStr:
				c.errorf(d.Pos(), "cannot initialize %s (type %s) with %s; only string literals initialize arrays", d.Name, t, it)
			case !IsInt(arr.Elem):
				c.errorf(d.Pos(), "cannot initialize %s (type %s) with a string literal", d.Name, t)
			case len(sl.Value) > arr.Len:
				c.errorf(d.Pos(), "string literal (%d bytes) does not fit in %s (type %s)", len(sl.Value), d.Name, t)
			}
		} else if !c.assignable(d.Init, it, t) {
			c.errorf(d.Pos(), "cannot initialize %s (type %s) with %s", d.Name, t, it)
		}
	}
}

func (c *checker) checkCond(e ast.Expr) {
	t := c.checkExpr(e)
	if !IsScalar(t) {
		c.errorf(e.Pos(), "condition must be scalar, got %s", t)
	}
}

// assignable reports whether src-typed expression e may be assigned to a
// dst-typed location, treating literal 0 as a null pointer constant.
func (c *checker) assignable(e ast.Expr, src, dst Type) bool {
	if a, ok := src.(*Array); ok {
		src = &Pointer{Elem: a.Elem} // array-to-pointer decay in rvalue context
	}
	if AssignableTo(src, dst) {
		return true
	}
	if n, ok := e.(*ast.NumberLit); ok && n.Value == 0 && IsPointer(dst) {
		return true
	}
	return false
}

// checkExpr type-checks e and records its type. It returns the recorded
// type (Int on error, so checking continues).
func (c *checker) checkExpr(e ast.Expr) Type {
	t := c.exprType(e)
	c.info.Types[e] = t
	return t
}

func (c *checker) exprType(e ast.Expr) Type {
	switch e := e.(type) {
	case *ast.NumberLit:
		return Int
	case *ast.StringLit:
		// A string literal is a char array including the NUL terminator; it
		// decays to a pointer to a read-only, fully-defined global object in
		// rvalue context like any other array.
		return &Array{Elem: Int, Len: len(e.Value) + 1}
	case *ast.Ident:
		sym := c.lookup(e.Name)
		if sym == nil {
			if _, ok := builtinSigs[e.Name]; ok {
				// Builtins are not first-class values: their addresses cannot
				// be taken and they cannot flow through function pointers
				// (calleeType handles the direct-call case before reaching
				// here).
				c.errorf(e.Pos(), "builtin %s can only be called", e.Name)
				return Int
			}
			c.errorf(e.Pos(), "undefined: %s", e.Name)
			return Int
		}
		c.info.Uses[e] = sym
		if sym.Kind == SymFunc {
			// Function designators decay to function pointers.
			return &Pointer{Elem: sym.Type}
		}
		if arr, ok := sym.Type.(*Array); ok {
			// Arrays decay to element pointers in value context; Index and
			// Unary(&) handle arrays before calling exprType on purpose.
			_ = arr
		}
		return sym.Type
	case *ast.Unary:
		return c.unaryType(e)
	case *ast.Binary:
		return c.binaryType(e)
	case *ast.Assign:
		lt := c.checkExpr(e.LHS)
		if !c.isLvalue(e.LHS) {
			c.errorf(e.LHS.Pos(), "cannot assign to this expression")
		}
		if _, isArr := lt.(*Array); isArr {
			c.errorf(e.LHS.Pos(), "cannot assign to array %s; copy with memcpy or assign elements", lt)
		}
		rt := c.checkExpr(e.RHS)
		if st, isStruct := lt.(*Struct); isStruct {
			// Struct assignment copies the whole value (lowered to MemCopy).
			if !Identical(rt, st) {
				c.errorf(e.Pos(), "cannot assign %s to %s", rt, lt)
			}
		} else if IsScalar(lt) && !c.assignable(e.RHS, rt, lt) {
			c.errorf(e.Pos(), "cannot assign %s to %s", rt, lt)
		}
		return lt
	case *ast.Call:
		return c.callType(e)
	case *ast.Index:
		xt := c.checkExpr(e.X)
		it := c.checkExpr(e.Idx)
		if !IsInt(it) {
			c.errorf(e.Idx.Pos(), "array index must be int, got %s", it)
		}
		switch xt := xt.(type) {
		case *Array:
			return xt.Elem
		case *Pointer:
			if xt.Elem.Size() == 0 {
				c.errorf(e.Pos(), "cannot index %s", xt)
				return Int
			}
			return xt.Elem
		default:
			c.errorf(e.Pos(), "cannot index non-pointer %s", xt)
			return Int
		}
	case *ast.FieldAccess:
		xt := c.checkExpr(e.X)
		var st *Struct
		if e.Arrow {
			pt, ok := xt.(*Pointer)
			if !ok {
				c.errorf(e.Pos(), "-> on non-pointer %s", xt)
				return Int
			}
			st, ok = pt.Elem.(*Struct)
			if !ok {
				c.errorf(e.Pos(), "-> on pointer to non-struct %s", pt.Elem)
				return Int
			}
		} else {
			var ok bool
			st, ok = xt.(*Struct)
			if !ok {
				c.errorf(e.Pos(), ". on non-struct %s", xt)
				return Int
			}
			if !c.isLvalue(e.X) {
				c.errorf(e.Pos(), ". requires an addressable struct")
			}
		}
		f := st.Field(e.Name)
		if f == nil {
			c.errorf(e.Pos(), "struct %s has no field %s", st.Name, e.Name)
			return Int
		}
		return f.Type
	case *ast.SizeofExpr:
		t := c.resolveType(e.T, e.Pos())
		if t.Size() == 0 {
			c.errorf(e.Pos(), "sizeof of zero-sized type %s", t)
		}
		return Int
	}
	c.errorf(e.Pos(), "unknown expression %T", e)
	return Int
}

func (c *checker) unaryType(e *ast.Unary) Type {
	switch e.Op {
	case token.STAR:
		xt := c.checkExpr(e.X)
		if a, ok := xt.(*Array); ok {
			return a.Elem
		}
		pt, ok := xt.(*Pointer)
		if !ok {
			c.errorf(e.Pos(), "cannot dereference non-pointer %s", xt)
			return Int
		}
		if pt.Elem.Size() == 0 {
			c.errorf(e.Pos(), "cannot dereference %s", pt)
			return Int
		}
		return pt.Elem
	case token.AMP:
		// &arr and &x: mark address-taken idents.
		xt := c.checkExpr(e.X)
		if !c.isLvalue(e.X) {
			c.errorf(e.Pos(), "cannot take address of this expression")
			return &Pointer{Elem: Int}
		}
		if id, ok := e.X.(*ast.Ident); ok {
			if sym := c.info.Uses[id]; sym != nil {
				sym.AddrTaken = true
			}
		}
		if arr, ok := xt.(*Array); ok {
			// &arr yields a pointer to the element type (decayed), which is
			// how the IR models whole-array objects.
			return &Pointer{Elem: arr.Elem}
		}
		return &Pointer{Elem: xt}
	case token.MINUS, token.TILDE:
		xt := c.checkExpr(e.X)
		if !IsInt(xt) {
			c.errorf(e.Pos(), "unary %s requires int, got %s", e.Op, xt)
		}
		return Int
	case token.NOT:
		xt := c.checkExpr(e.X)
		if !IsScalar(xt) {
			c.errorf(e.Pos(), "! requires scalar, got %s", xt)
		}
		return Int
	}
	c.errorf(e.Pos(), "unknown unary operator %s", e.Op)
	return Int
}

func (c *checker) binaryType(e *ast.Binary) Type {
	xt := c.checkExpr(e.X)
	yt := c.checkExpr(e.Y)
	decay := func(t Type) Type {
		if a, ok := t.(*Array); ok {
			return &Pointer{Elem: a.Elem}
		}
		return t
	}
	xt, yt = decay(xt), decay(yt)
	switch e.Op {
	case token.PLUS, token.MINUS:
		// Pointer arithmetic: ptr ± int.
		if IsPointer(xt) && IsInt(yt) {
			return xt
		}
		if e.Op == token.PLUS && IsInt(xt) && IsPointer(yt) {
			return yt
		}
		fallthrough
	case token.STAR, token.SLASH, token.PERCENT, token.SHL, token.SHR,
		token.AMP, token.PIPE, token.CARET:
		if !IsInt(xt) || !IsInt(yt) {
			c.errorf(e.Pos(), "operator %s requires ints, got %s and %s", e.Op, xt, yt)
		}
		return Int
	case token.EQ, token.NEQ:
		okPtr := IsPointer(xt) && IsPointer(yt)
		okNullX := isNullLit(e.X) && IsPointer(yt)
		okNullY := isNullLit(e.Y) && IsPointer(xt)
		okInt := IsInt(xt) && IsInt(yt)
		if !okPtr && !okInt && !okNullX && !okNullY {
			c.errorf(e.Pos(), "cannot compare %s and %s", xt, yt)
		}
		return Int
	case token.LT, token.GT, token.LEQ, token.GEQ:
		if !IsInt(xt) || !IsInt(yt) {
			c.errorf(e.Pos(), "operator %s requires ints, got %s and %s", e.Op, xt, yt)
		}
		return Int
	case token.LAND, token.LOR:
		if !IsScalar(xt) || !IsScalar(yt) {
			c.errorf(e.Pos(), "operator %s requires scalars, got %s and %s", e.Op, xt, yt)
		}
		return Int
	}
	c.errorf(e.Pos(), "unknown binary operator %s", e.Op)
	return Int
}

func isNullLit(e ast.Expr) bool {
	n, ok := e.(*ast.NumberLit)
	return ok && n.Value == 0
}

func (c *checker) callType(e *ast.Call) Type {
	ft := c.calleeType(e.Fun)
	if ft == nil {
		for _, a := range e.Args {
			c.checkExpr(a)
		}
		return Int
	}
	if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "va_arg" {
		if sym := c.info.Uses[id]; sym != nil && sym.Kind == SymBuiltin && !c.curVariadic {
			c.errorf(e.Pos(), "va_arg is only valid inside a variadic function")
		}
	}
	if ft.Variadic {
		if len(e.Args) < len(ft.Params) {
			c.errorf(e.Pos(), "wrong number of arguments: got %d, want at least %d", len(e.Args), len(ft.Params))
		}
	} else if len(e.Args) != len(ft.Params) {
		c.errorf(e.Pos(), "wrong number of arguments: got %d, want %d", len(e.Args), len(ft.Params))
	}
	for i, a := range e.Args {
		at := c.checkExpr(a)
		if i < len(ft.Params) {
			if !c.assignable(a, at, ft.Params[i]) {
				c.errorf(a.Pos(), "argument %d: cannot use %s as %s", i+1, at, ft.Params[i])
			}
		} else if ft.Variadic && !IsInt(at) {
			c.errorf(a.Pos(), "variadic argument %d must be int, got %s", i+1, at)
		}
	}
	return ft.Ret
}

// calleeType resolves the function type of a call target, checking the
// callee expression. It returns nil if the callee is not callable.
func (c *checker) calleeType(fun ast.Expr) *Func {
	// Direct calls to builtins: the only legal position for a builtin name.
	if id, ok := fun.(*ast.Ident); ok && c.lookup(id.Name) == nil {
		if sig, ok := builtinSigs[id.Name]; ok {
			bsym := &Symbol{Name: id.Name, Type: sig, Kind: SymBuiltin}
			c.info.Uses[id] = bsym
			c.info.Types[id] = &Pointer{Elem: sig}
			return sig
		}
	}
	t := c.checkExpr(fun)
	if pt, ok := t.(*Pointer); ok {
		if ft, ok := pt.Elem.(*Func); ok {
			return ft
		}
	}
	if ft, ok := t.(*Func); ok {
		return ft
	}
	c.errorf(fun.Pos(), "cannot call non-function (type %s)", t)
	return nil
}

// isLvalue reports whether e denotes a storage location.
func (c *checker) isLvalue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.Ident:
		sym := c.info.Uses[e]
		return sym != nil && (sym.Kind == SymGlobal || sym.Kind == SymLocal || sym.Kind == SymParam)
	case *ast.Unary:
		return e.Op == token.STAR
	case *ast.Index:
		return true
	case *ast.FieldAccess:
		if e.Arrow {
			return true
		}
		return c.isLvalue(e.X)
	}
	return false
}
