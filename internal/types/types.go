// Package types defines the semantic types of MiniC and the type checker
// that resolves and annotates a parsed program.
//
// Sizes are measured in abstract cells: every scalar (int or pointer)
// occupies one cell. This matches the offset-based field-sensitive pointer
// analysis of the paper, where a struct field is identified by its cell
// offset and arrays are treated as a whole.
package types

import (
	"fmt"
	"strings"
)

// Type is a semantic MiniC type.
type Type interface {
	// Size is the type's size in cells. Void and function types have size 0.
	Size() int
	String() string
}

// BasicKind distinguishes the basic types.
type BasicKind int

// Basic type kinds.
const (
	KindInt BasicKind = iota
	KindVoid
	// KindUntypedPtr is the type of malloc/calloc results and of the
	// literal 0 used in pointer contexts; it is assignment-compatible with
	// every pointer type.
	KindUntypedPtr
)

// Basic is a predeclared type.
type Basic struct{ Kind BasicKind }

// Predeclared type singletons.
var (
	Int        = &Basic{KindInt}
	Void       = &Basic{KindVoid}
	UntypedPtr = &Basic{KindUntypedPtr}
)

// Size implements Type.
func (b *Basic) Size() int {
	switch b.Kind {
	case KindVoid:
		return 0
	default:
		return 1
	}
}

func (b *Basic) String() string {
	switch b.Kind {
	case KindInt:
		return "int"
	case KindVoid:
		return "void"
	default:
		return "void*"
	}
}

// Pointer is a pointer type.
type Pointer struct{ Elem Type }

// Size implements Type.
func (*Pointer) Size() int { return 1 }

func (p *Pointer) String() string { return p.Elem.String() + "*" }

// StructField is a named field at a fixed cell offset.
type StructField struct {
	Name   string
	Type   Type
	Offset int
}

// Struct is a named struct type. Structs are nominal: two structs are the
// same type only if they are the same *Struct.
type Struct struct {
	Name   string
	Fields []StructField
	size   int
}

// Size implements Type.
func (s *Struct) Size() int { return s.size }

func (s *Struct) String() string { return "struct " + s.Name }

// Field returns the field with the given name, or nil.
func (s *Struct) Field(name string) *StructField {
	for i := range s.Fields {
		if s.Fields[i].Name == name {
			return &s.Fields[i]
		}
	}
	return nil
}

// Array is a fixed-length array type.
type Array struct {
	Elem Type
	Len  int
}

// Size implements Type.
func (a *Array) Size() int { return a.Len * a.Elem.Size() }

func (a *Array) String() string { return fmt.Sprintf("%s[%d]", a.Elem, a.Len) }

// Func is a function type. Variadic functions accept any number of
// additional int arguments after the fixed parameters.
type Func struct {
	Ret      Type
	Params   []Type
	Variadic bool
}

// Size implements Type. Function types are not storable values; only
// pointers to them are.
func (*Func) Size() int { return 0 }

func (f *Func) String() string {
	var b strings.Builder
	b.WriteString(f.Ret.String())
	b.WriteString("(")
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	if f.Variadic {
		if len(f.Params) > 0 {
			b.WriteString(", ")
		}
		b.WriteString("...")
	}
	b.WriteString(")")
	return b.String()
}

// Identical reports whether two types are the same type.
func Identical(a, b Type) bool {
	switch a := a.(type) {
	case *Basic:
		b, ok := b.(*Basic)
		return ok && a.Kind == b.Kind
	case *Pointer:
		b, ok := b.(*Pointer)
		return ok && Identical(a.Elem, b.Elem)
	case *Struct:
		return a == b
	case *Array:
		b, ok := b.(*Array)
		return ok && a.Len == b.Len && Identical(a.Elem, b.Elem)
	case *Func:
		b, ok := b.(*Func)
		if !ok || len(a.Params) != len(b.Params) || a.Variadic != b.Variadic || !Identical(a.Ret, b.Ret) {
			return false
		}
		for i := range a.Params {
			if !Identical(a.Params[i], b.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// IsPointer reports whether t is a typed pointer or the untyped pointer.
func IsPointer(t Type) bool {
	if _, ok := t.(*Pointer); ok {
		return true
	}
	b, ok := t.(*Basic)
	return ok && b.Kind == KindUntypedPtr
}

// IsInt reports whether t is the int type.
func IsInt(t Type) bool {
	b, ok := t.(*Basic)
	return ok && b.Kind == KindInt
}

// IsScalar reports whether values of t fit in a single cell (int or any
// pointer).
func IsScalar(t Type) bool { return IsInt(t) || IsPointer(t) }

// AssignableTo reports whether a value of type src may be assigned to a
// location of type dst.
func AssignableTo(src, dst Type) bool {
	if Identical(src, dst) {
		return true
	}
	if IsPointer(dst) {
		// Untyped pointers (malloc results, literal 0 handled by the
		// checker) convert to any pointer, and vice versa (free's
		// parameter).
		if b, ok := src.(*Basic); ok && b.Kind == KindUntypedPtr {
			return true
		}
	}
	if b, ok := dst.(*Basic); ok && b.Kind == KindUntypedPtr {
		if IsPointer(src) {
			return true
		}
	}
	return false
}
