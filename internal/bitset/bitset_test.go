package bitset

import (
	"math/rand"
	"testing"
)

func members(s *Set) map[int]bool {
	m := make(map[int]bool)
	s.ForEach(func(i int) { m[i] = true })
	return m
}

func TestAddHasCount(t *testing.T) {
	s := New(10)
	if s.Count() != 0 || !s.Empty() {
		t.Fatal("new set not empty")
	}
	for _, i := range []int{0, 1, 63, 64, 65, 1000} {
		if !s.Add(i) {
			t.Errorf("Add(%d) reported already present", i)
		}
		if s.Add(i) {
			t.Errorf("re-Add(%d) reported newly added", i)
		}
		if !s.Has(i) {
			t.Errorf("Has(%d) = false after Add", i)
		}
	}
	if s.Has(2) || s.Has(999) || s.Has(1001) {
		t.Error("Has reports absent members")
	}
	if got := s.Count(); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if s.Empty() {
		t.Error("Empty on non-empty set")
	}
}

func TestNilReceiverReads(t *testing.T) {
	var s *Set
	if s.Has(3) || s.Count() != 0 || !s.Empty() {
		t.Error("nil set must behave as empty")
	}
	s.ForEach(func(int) { t.Error("ForEach on nil set visited a member") })
	if got := s.AppendTo(nil); len(got) != 0 {
		t.Errorf("AppendTo on nil set = %v", got)
	}
	u := New(4)
	if u.UnionWith(s) {
		t.Error("UnionWith(nil) reported change")
	}
	if !u.Equal(s) || !s.Equal(u) {
		t.Error("empty and nil sets must be Equal")
	}
}

func TestUnionWith(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(1)
	a.Add(70)
	b.Add(70)
	b.Add(200)
	if !a.UnionWith(b) {
		t.Error("union adding 200 reported no change")
	}
	if a.UnionWith(b) {
		t.Error("idempotent union reported change")
	}
	want := []int{1, 70, 200}
	if got := a.AppendTo(nil); len(got) != len(want) || got[0] != 1 || got[1] != 70 || got[2] != 200 {
		t.Errorf("members = %v, want %v", got, want)
	}
}

func TestUnionDiffInto(t *testing.T) {
	s, tt, diff := New(0), New(0), New(0)
	s.Add(1)
	s.Add(64)
	tt.Add(64)
	tt.Add(65)
	tt.Add(130)
	if !s.UnionDiffInto(tt, diff) {
		t.Error("no change reported")
	}
	if got := diff.AppendTo(nil); len(got) != 2 || got[0] != 65 || got[1] != 130 {
		t.Errorf("diff = %v, want [65 130]", got)
	}
	// Second push: everything already seen, diff must stay unchanged.
	if s.UnionDiffInto(tt, diff) {
		t.Error("warm push reported change")
	}
	if diff.Count() != 2 {
		t.Errorf("diff grew on warm push: %v", diff.AppendTo(nil))
	}
}

func TestEqualAcrossLengths(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(3)
	b.Add(3)
	b.Add(500)
	if a.Equal(b) {
		t.Error("unequal sets reported Equal")
	}
	// Removing the high bit by rebuilding: a set with trailing zero words
	// must equal its short form.
	c := New(600)
	c.Add(3)
	c.Add(500)
	c.words[500>>6] = 0 // manually clear: trailing zero words remain
	if !a.Equal(c) || !c.Equal(a) {
		t.Error("sets differing only in trailing zero words must be Equal")
	}
}

func TestCopyFromAndClear(t *testing.T) {
	a, b := New(0), New(0)
	a.Add(9)
	a.Add(400)
	b.Add(77)
	b.CopyFrom(a)
	if !b.Equal(a) || b.Has(77) {
		t.Errorf("CopyFrom: got %v", b.AppendTo(nil))
	}
	// Copy of a shorter set must clear the tail.
	short := New(0)
	short.Add(2)
	b.CopyFrom(short)
	if !b.Equal(short) || b.Has(400) {
		t.Errorf("CopyFrom shorter: got %v", b.AppendTo(nil))
	}
	b.Clear()
	if !b.Empty() || b.Has(2) {
		t.Error("Clear left members behind")
	}
	b.CopyFrom(nil)
	if !b.Empty() {
		t.Error("CopyFrom(nil) must clear")
	}
}

func TestForEachOrder(t *testing.T) {
	s := New(0)
	ids := []int{512, 0, 63, 64, 1, 200}
	for _, i := range ids {
		s.Add(i)
	}
	got := s.AppendTo(nil)
	want := []int{0, 1, 63, 64, 200, 512}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v (ascending)", got, want)
		}
	}
}

// TestRandomizedAgainstMap cross-checks the word-level operations against
// a map-based model.
func TestRandomizedAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a, b := New(0), New(0)
		ma, mb := map[int]bool{}, map[int]bool{}
		for i := 0; i < 200; i++ {
			x := rng.Intn(1 << uint(3+rng.Intn(8)))
			if rng.Intn(2) == 0 {
				a.Add(x)
				ma[x] = true
			} else {
				b.Add(x)
				mb[x] = true
			}
		}
		diff := New(0)
		a.UnionDiffInto(b, diff)
		for x := range mb {
			if !ma[x] && !diff.Has(x) {
				t.Fatalf("trial %d: %d missing from diff", trial, x)
			}
			if ma[x] && diff.Has(x) {
				t.Fatalf("trial %d: %d wrongly in diff", trial, x)
			}
			ma[x] = true
		}
		if got := len(members(a)); got != len(ma) {
			t.Fatalf("trial %d: count %d, want %d", trial, got, len(ma))
		}
		if a.Count() != len(ma) {
			t.Fatalf("trial %d: popcount %d, want %d", trial, a.Count(), len(ma))
		}
	}
}
