// Package bitset provides the bit-vector set shared by the pointer
// solver's points-to and delta sets and the VFG's resolution frontiers.
//
// A Set is a growable dense bit vector: one word per 64 ids, sized to the
// highest id ever added (not to the universe), so sets over a large but
// sparsely-touched id space stay small. All bulk operations — union,
// union-with-difference, equality — run word-at-a-time, and Count uses
// popcount, which is what makes difference propagation in the Andersen
// solver cheap: propagating an already-seen fact across a warm copy edge
// costs a few word compares instead of a per-element map probe.
package bitset

import "math/bits"

// Set is a growable bit vector over small non-negative integer ids.
// The zero value is an empty set ready for use. Methods that can grow the
// underlying storage take pointer receivers; read-only methods work on
// nil receivers (as the empty set) so callers can keep sparse []*Set
// tables with nil holes.
type Set struct {
	words  []uint64
	sealed bool
}

// New returns an empty set with capacity preallocated for ids in [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, 0, (n+63)/64)}
}

// Words returns a copy of the set's backing words, least-significant id
// first. It is the serialization surface (the snapshot format's VSUM
// section stores resolved Γ bit vectors verbatim); pair with FromWords.
func (s *Set) Words() []uint64 {
	if s == nil || len(s.words) == 0 {
		return nil
	}
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return w
}

// FromWords reconstructs a set from a Words dump. The slice is copied.
func FromWords(words []uint64) *Set {
	w := make([]uint64, len(words))
	copy(w, words)
	return &Set{words: w}
}

// Seal freezes the set: any later mutation panics. Sealing is one-way
// and exists to enforce the solved-state read-only contract — the pointer
// solver seals every points-to set at freeze() time, so a Result shared
// across concurrent readers (the usher.Session contract) cannot be
// mutated by a buggy consumer without a loud, immediate failure. Sealing
// a nil set is a no-op (nil is already immutably empty).
func (s *Set) Seal() {
	if s != nil {
		s.sealed = true
	}
}

// Sealed reports whether the set has been sealed against mutation.
func (s *Set) Sealed() bool { return s != nil && s.sealed }

// mustMutable panics if the set was sealed.
func (s *Set) mustMutable() {
	if s.sealed {
		panic("bitset: mutation of sealed set")
	}
}

// ensure grows s to hold at least w words.
func (s *Set) ensure(w int) {
	if w <= len(s.words) {
		return
	}
	if w <= cap(s.words) {
		s.words = s.words[:w]
		return
	}
	grown := make([]uint64, w, max(w, 2*cap(s.words)))
	copy(grown, s.words)
	s.words = grown
}

// Has reports whether i is in the set.
func (s *Set) Has(i int) bool {
	if s == nil {
		return false
	}
	w := i >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(i)&63)) != 0
}

// Add inserts i, reporting whether it was newly added.
func (s *Set) Add(i int) bool {
	s.mustMutable()
	w, mask := i>>6, uint64(1)<<(uint(i)&63)
	s.ensure(w + 1)
	if s.words[w]&mask != 0 {
		return false
	}
	s.words[w] |= mask
	return true
}

// Remove deletes i from the set.
func (s *Set) Remove(i int) {
	s.mustMutable()
	if w := i >> 6; w < len(s.words) {
		s.words[w] &^= 1 << (uint(i) & 63)
	}
}

// UnionWith adds every member of t to s, reporting whether s changed.
func (s *Set) UnionWith(t *Set) bool {
	if t == nil || len(t.words) == 0 {
		return false
	}
	s.mustMutable()
	s.ensure(len(t.words))
	changed := false
	for w, tw := range t.words {
		if old := s.words[w]; old|tw != old {
			s.words[w] = old | tw
			changed = true
		}
	}
	return changed
}

// UnionDiffInto adds every member of t to s and records the members new
// to s into diff, reporting whether s changed. It is the difference-
// propagation primitive: diff accumulates exactly the facts the caller
// has not yet pushed to s.
func (s *Set) UnionDiffInto(t, diff *Set) bool {
	if t == nil || len(t.words) == 0 {
		return false
	}
	s.mustMutable()
	diff.mustMutable()
	s.ensure(len(t.words))
	changed := false
	for w, tw := range t.words {
		old := s.words[w]
		if fresh := tw &^ old; fresh != 0 {
			s.words[w] = old | tw
			diff.ensure(w + 1)
			diff.words[w] |= fresh
			changed = true
		}
	}
	return changed
}

// CopyFrom makes s an exact copy of t, reusing s's storage.
func (s *Set) CopyFrom(t *Set) {
	s.mustMutable()
	if t == nil {
		s.Clear()
		return
	}
	s.ensure(len(t.words))
	copy(s.words, t.words)
	for w := len(t.words); w < len(s.words); w++ {
		s.words[w] = 0
	}
}

// Clear empties the set, keeping its storage for reuse.
func (s *Set) Clear() {
	s.mustMutable()
	for w := range s.words {
		s.words[w] = 0
	}
	s.words = s.words[:0]
}

// Empty reports whether the set has no members.
func (s *Set) Empty() bool {
	if s == nil {
		return true
	}
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of members (popcount over the words).
func (s *Set) Count() int {
	if s == nil {
		return 0
	}
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Equal reports whether s and t have the same members.
func (s *Set) Equal(t *Set) bool {
	a, b := s.wordsOf(), t.wordsOf()
	if len(a) > len(b) {
		a, b = b, a
	}
	for w := range a {
		if a[w] != b[w] {
			return false
		}
	}
	for _, bw := range b[len(a):] {
		if bw != 0 {
			return false
		}
	}
	return true
}

func (s *Set) wordsOf() []uint64 {
	if s == nil {
		return nil
	}
	return s.words
}

// ForEach calls f for every member in ascending order.
func (s *Set) ForEach(f func(i int)) {
	if s == nil {
		return
	}
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			w &^= 1 << uint(b)
			f(wi<<6 | b)
		}
	}
}

// AppendTo appends the members in ascending order to buf and returns it.
func (s *Set) AppendTo(buf []int) []int {
	s.ForEach(func(i int) { buf = append(buf, i) })
	return buf
}
