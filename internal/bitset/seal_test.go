package bitset

import (
	"sync"
	"testing"
)

// mustPanic asserts that f panics (the sealed-mutation contract).
func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s on a sealed set did not panic", what)
		}
	}()
	f()
}

func TestSealBlocksMutation(t *testing.T) {
	s := New(128)
	for _, i := range []int{1, 64, 100} {
		s.Add(i)
	}
	s.Seal()
	if !s.Sealed() {
		t.Fatal("Sealed() = false after Seal")
	}
	s.Seal() // idempotent
	other := New(8)
	other.Add(3)

	mustPanic(t, "Add", func() { s.Add(7) })
	mustPanic(t, "Remove", func() { s.Remove(1) })
	mustPanic(t, "UnionWith", func() { s.UnionWith(other) })
	mustPanic(t, "UnionDiffInto", func() { s.UnionDiffInto(other, &Set{}) })
	mustPanic(t, "UnionDiffInto(diff)", func() { other.UnionDiffInto(other, s) })
	mustPanic(t, "CopyFrom", func() { s.CopyFrom(other) })
	mustPanic(t, "Clear", func() { s.Clear() })

	// Reads stay available after sealing.
	if !s.Has(64) || s.Count() != 3 || s.Empty() {
		t.Error("sealed set reads changed")
	}
	var nilSet *Set
	nilSet.Seal() // no-op, must not panic
	if nilSet.Sealed() {
		t.Error("nil set reports sealed")
	}
}

// TestUnionDiffIntoEmptyDelta pins the no-write fast path: a union from
// an empty (or nil) source performs no mutation, so it is legal even on
// a sealed receiver. This is the warm-edge case the solver hits
// constantly once propagation converges.
func TestUnionDiffIntoEmptyDelta(t *testing.T) {
	s := New(64)
	s.Add(5)
	s.Seal()
	var diff Set
	if s.UnionDiffInto(nil, &diff) {
		t.Error("UnionDiffInto(nil) reported change")
	}
	if s.UnionDiffInto(New(0), &diff) {
		t.Error("UnionDiffInto(empty) reported change")
	}
	if !diff.Empty() {
		t.Error("diff gained members from empty source")
	}
	// Cleared-but-allocated source: words exist, all zero.
	src := New(64)
	src.Add(9)
	src.Remove(9)
	unsealed := New(64)
	var d2 Set
	if unsealed.UnionDiffInto(src, &d2) {
		t.Error("UnionDiffInto(zeroed) reported change")
	}
	if !d2.Empty() {
		t.Error("diff gained members from zeroed source")
	}
}

// TestUnionDiffIntoAliasedReceivers pins aliasing behavior: s as its own
// source is a no-op, and s as its own diff accumulator stays coherent
// (every fresh bit must appear in both).
func TestUnionDiffIntoAliasedReceivers(t *testing.T) {
	s := New(128)
	s.Add(1)
	s.Add(70)
	var diff Set
	if s.UnionDiffInto(s, &diff) {
		t.Error("self-union reported change")
	}
	if !diff.Empty() {
		t.Error("self-union produced a diff")
	}

	// diff aliased to the destination: fresh members land in both.
	dst := New(128)
	dst.Add(2)
	src := New(128)
	src.Add(2)
	src.Add(65)
	if !dst.UnionDiffInto(src, dst) {
		t.Error("aliased-diff union reported no change")
	}
	for _, i := range []int{2, 65} {
		if !dst.Has(i) {
			t.Errorf("dst missing %d after aliased-diff union", i)
		}
	}
	if dst.Count() != 2 {
		t.Errorf("dst count = %d, want 2", dst.Count())
	}
}

// TestSealedConcurrentReadOnlySharing exercises the solver's sharing
// pattern under the race detector: one sealed source set is read
// concurrently by many goroutines, each unioning it into private
// destinations. A data race here would mean the sealed read-only
// contract is not actually race-free.
func TestSealedConcurrentReadOnlySharing(t *testing.T) {
	src := New(4096)
	for i := 0; i < 4096; i += 3 {
		src.Add(i)
	}
	src.Seal()
	want := src.Count()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := New(4096)
			dst.Add(g) // private state differs per goroutine
			var diff Set
			if !dst.UnionDiffInto(src, &diff) {
				t.Error("concurrent union reported no change")
			}
			if diff.Count() < want-1 {
				t.Errorf("diff count = %d, want >= %d", diff.Count(), want-1)
			}
			// Interleave pure reads of the shared set.
			n := 0
			src.ForEach(func(int) { n++ })
			if n != want || !src.Has(0) || src.Has(1) {
				t.Error("concurrent read of sealed set inconsistent")
			}
			if dst.Equal(src) != (g%3 == 0) {
				t.Errorf("goroutine %d: Equal against shared set wrong", g)
			}
		}(g)
	}
	wg.Wait()
}
