package instrument_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/randprog"
)

// The Opt III scenario: one possibly-undefined SSA value used at several
// critical operations where the first dominates the rest.
const optIIISrc = `
int main() {
  int *p = malloc(1);
  int v = p[0];          // ⊥
  print(v);              // check 1: dominates everything below
  print(v);              // check 2 on the same SSA value: redundant
  print(v);              // check 3: redundant
  return 0;
}`

func TestOptIIIElidesDominatedChecks(t *testing.T) {
	prog := usher.MustCompile("t.c", optIIISrc)
	base := usher.MustAnalyze(prog, usher.ConfigUsherFull)
	ext := usher.MustAnalyze(prog, usher.ConfigUsherOptIII)
	if ext.ChecksElided != 2 {
		t.Errorf("checks elided = %d, want 2", ext.ChecksElided)
	}
	if ext.StaticStats().Checks >= base.StaticStats().Checks {
		t.Errorf("OptIII checks %d not below Usher's %d",
			ext.StaticStats().Checks, base.StaticStats().Checks)
	}
	// The bug must still be reported (at the dominating site).
	res, err := ext.Run(usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShadowWarnings) == 0 {
		t.Fatal("OptIII suppressed every report")
	}
	if len(res.ShadowViolations) != 0 {
		t.Fatalf("violations: %v", res.ShadowViolations)
	}
}

func TestOptIIIKeepsNonDominatedChecks(t *testing.T) {
	// Sibling branches: neither check dominates the other, both stay.
	src := `
int main(int sel) {
  int *p = malloc(1);
  int v = p[0];
  if (sel) { print(v); } else { if (v) { return 1; } }
  return 0;
}`
	prog := usher.MustCompile("t.c", src)
	ext := usher.MustAnalyze(prog, usher.ConfigUsherOptIII)
	if ext.ChecksElided != 0 {
		t.Errorf("checks elided = %d, want 0 (no dominance)", ext.ChecksElided)
	}
}

// TestOptIIISoundOnRandomPrograms extends the soundness property to the
// Opt III configuration: never silent when the oracle warns, never a
// false positive.
func TestOptIIISoundOnRandomPrograms(t *testing.T) {
	for seed := int64(0); seed < 120; seed++ {
		src := randprog.Generate(seed, randprog.DefaultOptions)
		prog, err := usher.Compile("rand.c", src)
		if err != nil {
			t.Fatal(err)
		}
		native, err := usher.RunNative(prog, usher.RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		an := usher.MustAnalyze(prog, usher.ConfigUsherOptIII)
		res, err := an.Run(usher.RunOptions{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(res.ShadowViolations) != 0 {
			t.Fatalf("seed %d: violations: %v", seed, res.ShadowViolations)
		}
		oracle := native.OracleSites()
		for s := range res.ShadowSites() {
			if !oracle[s] {
				t.Fatalf("seed %d: false positive at %v\n%s", seed, s, src)
			}
		}
		if len(oracle) > 0 && len(res.ShadowSites()) == 0 {
			t.Fatalf("seed %d: all %d oracle sites suppressed\n%s", seed, len(oracle), src)
		}
		if res.Exit.Int != native.Exit.Int {
			t.Fatalf("seed %d: exit diverged", seed)
		}
	}
}
