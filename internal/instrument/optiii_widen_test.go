package instrument_test

import (
	"testing"

	"github.com/valueflow/usher"
)

// Opt III edge cases for the widened constructs: struct copies, string
// literal arrays and memory intrinsics define some bytes of an object
// but not others. A dominating check on a *defined* byte must never
// elide the sole check guarding a *still-undefined* byte of the same
// object — the classes differ per byte, not per object.

// optIIIWarnSites runs src under Opt III and returns the reported
// shadow sites, failing on compile/run errors.
func optIIIWarnSites(t *testing.T, src string) int {
	t.Helper()
	prog := usher.MustCompile("t.c", src)
	ext := usher.MustAnalyze(prog, usher.ConfigUsherOptIII)
	res, err := ext.Run(usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return len(res.ShadowSites())
}

// A struct-copy chain propagates per-field definedness: after two
// whole-value copies of a partially-initialized struct, the checked use
// of the defined field dominates the use of the undefined field, yet
// the latter must still report.
func TestOptIIIStructCopyChainKeepsUndefinedFieldCheck(t *testing.T) {
	src := `
struct S { int a; int b; };
int main() {
  struct S s;
  s.a = 1;
  struct S t = s;
  struct S u = t;
  print(u.a);
  print(u.b);
  return 0;
}`
	if got := optIIIWarnSites(t, src); got != 1 {
		t.Errorf("reported sites = %d, want exactly the undefined-field use", got)
	}
}

// A short string literal only defines a prefix of the destination
// buffer when copied with an explicit length: the checked read inside
// the copied prefix dominates the read past it, and the past-the-copy
// read must keep its check and warn.
func TestOptIIIShortStringCopyKeepsTailCheck(t *testing.T) {
	src := `
char lit[8] = "hi";
int main() {
  char c[8];
  memcpy(c, lit, 3);
  print(c[0]);
  print(c[5]);
  return 0;
}`
	if got := optIIIWarnSites(t, src); got != 1 {
		t.Errorf("reported sites = %d, want exactly the past-the-copy read", got)
	}
}

// A full string-literal initializer zero-fills the tail, so every byte
// is defined and Opt III must stay silent — the elision machinery must
// not manufacture a report either.
func TestOptIIIFullStringLiteralArrayIsClean(t *testing.T) {
	src := `
int main() {
  char c[8] = "abc";
  print(c[0]);
  print(c[7]);
  return 0;
}`
	if got := optIIIWarnSites(t, src); got != 0 {
		t.Errorf("reported sites = %d on a fully-defined literal array, want 0", got)
	}
}

// A partial memset defines only its requested range: the checked read
// inside the range dominates the read outside it, and the out-of-range
// read must keep its sole check.
func TestOptIIIPartialMemsetKeepsOutOfRangeCheck(t *testing.T) {
	src := `
int main() {
  char buf[8];
  memset(buf, 1, 4);
  print(buf[0]);
  print(buf[6]);
  return 0;
}`
	if got := optIIIWarnSites(t, src); got != 1 {
		t.Errorf("reported sites = %d, want exactly the out-of-range read", got)
	}
}

// Re-checking the same undefined byte twice is the case Opt III *may*
// elide — but never down to zero: the dominating first check must
// still report.
func TestOptIIIElisionNeverSuppressesSoleReport(t *testing.T) {
	src := `
int main() {
  char buf[8];
  memset(buf, 1, 4);
  print(buf[6]);
  print(buf[6]);
  return 0;
}`
	if got := optIIIWarnSites(t, src); got < 1 {
		t.Errorf("reported sites = %d, want at least one for the undefined byte", got)
	}
}
