package instrument_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/interp"
)

// programs used across the soundness tests: a mix of clean and buggy
// code exercising heap, globals, fields, loops, recursion and function
// pointers.
var soundnessPrograms = []struct {
	name string
	src  string
	args []int64
	// buggy marks programs with a real use of an undefined value.
	buggy bool
}{
	{"clean-loop", `
int main() {
  int s = 0;
  for (int i = 0; i < 50; i++) { s += i; }
  print(s);
  return s;
}`, nil, false},
	{"clean-heap", `
int main() {
  int *p = malloc(4);
  for (int i = 0; i < 4; i++) { p[i] = i * i; }
  int s = 0;
  for (int i = 0; i < 4; i++) { s += p[i]; }
  free(p);
  return s;
}`, nil, false},
	{"uninit-branch", `
int main(int c) {
  int x;
  if (c) { x = 1; }
  if (x) { return 1; }
  return 0;
}`, []int64{0}, true},
	{"uninit-heap-interproc", `
int get(int *p, int i) { return p[i]; }
int main() {
  int *p = malloc(3);
  p[0] = 5;
  int v = get(p, 2);
  print(v);
  return 0;
}`, nil, true},
	{"clean-struct-list", `
struct Node { int val; struct Node *next; };
int main() {
  struct Node *head = 0;
  for (int i = 0; i < 6; i++) {
    struct Node *n = malloc(sizeof(struct Node));
    n->val = i;
    n->next = head;
    head = n;
  }
  int s = 0;
  while (head != 0) { s += head->val; head = head->next; }
  print(s);
  return s;
}`, nil, false},
	{"uninit-struct-field", `
struct P { int x; int y; };
int main() {
  struct P *p = malloc(sizeof(struct P));
  p->x = 1;
  print(p->y);
  return 0;
}`, nil, true},
	{"clean-funcptr", `
int inc(int x) { return x + 1; }
int dbl(int x) { return x * 2; }
int fold(int (*f)(int), int n) {
  int acc = 0;
  for (int i = 0; i < n; i++) { acc += f(i); }
  return acc;
}
int main() { return fold(inc, 5) + fold(dbl, 5); }`, nil, false},
	{"uninit-through-funcptr", `
int pass(int x) { return x; }
int main() {
  int (*f)(int);
  f = pass;
  int u;
  int v = f(u);
  if (v) { return 1; }
  return 0;
}`, nil, true},
	{"clean-globals", `
int acc;
void add(int v) { acc += v; }
int main() {
  for (int i = 0; i < 10; i++) { add(i); }
  print(acc);
  return acc;
}`, nil, false},
	{"uninit-recursion", `
int walk(int *p, int n) {
  if (n == 0) { return p[0]; }
  return walk(p, n - 1);
}
int main() {
  int *p = malloc(1);
  int v = walk(p, 3);
  print(v);
  return 0;
}`, nil, true},
	{"clean-semistrong", `
int consume() {
  int *q = malloc(1);
  *q = 7;
  int v = *q;
  free(q);
  return v;
}
int main() {
  int s = 0;
  for (int i = 0; i < 5; i++) { s += consume(); }
  return s;
}`, nil, false},
}

func runConfig(t *testing.T, src string, args []int64, cfg usher.Config) *interp.Result {
	t.Helper()
	prog := usher.MustCompile("t.c", src)
	an := usher.MustAnalyze(prog, cfg)
	res, err := an.Run(usher.RunOptions{Args: args})
	if err != nil {
		t.Fatalf("[%v] run: %v", cfg, err)
	}
	return res
}

// TestSoundnessAllConfigs verifies the paper's central soundness claim:
// every configuration detects an error whenever the ground-truth oracle
// does, and none fabricates errors on clean runs. Configurations without
// Opt II must report exactly the oracle's sites.
func TestSoundnessAllConfigs(t *testing.T) {
	for _, tt := range soundnessPrograms {
		t.Run(tt.name, func(t *testing.T) {
			for _, cfg := range usher.Configs {
				res := runConfig(t, tt.src, tt.args, cfg)
				oracle := res.OracleSites()
				shadow := res.ShadowSites()

				if len(res.ShadowViolations) != 0 {
					t.Errorf("[%v] shadow soundness violations: %v", cfg, res.ShadowViolations)
				}
				if tt.buggy && len(oracle) == 0 {
					t.Fatalf("[%v] test expectation broken: no oracle warnings", cfg)
				}
				if !tt.buggy && len(oracle) != 0 {
					t.Fatalf("[%v] test expectation broken: oracle warned on clean program: %v",
						cfg, res.OracleWarnings)
				}
				// No fabricated warnings, ever.
				for s := range shadow {
					if !oracle[s] {
						t.Errorf("[%v] false positive at %v", cfg, s)
					}
				}
				if cfg == usher.ConfigUsherFull {
					// Opt II may suppress downstream duplicates but must
					// keep at least one report when the oracle has any.
					if len(oracle) > 0 && len(shadow) == 0 {
						t.Errorf("[%v] all oracle sites suppressed: oracle=%v", cfg, res.OracleWarnings)
					}
					continue
				}
				// Without Opt II the reported sites must match exactly.
				for s := range oracle {
					if !shadow[s] {
						t.Errorf("[%v] missed oracle site %v", cfg, s)
					}
				}
			}
		})
	}
}

// TestMonotoneSavings checks invariant 5: static instrumentation counts
// never increase along MSan ≥ UsherTL ≥ UsherTL+AT ≥ UsherOptI ≥ Usher.
func TestMonotoneSavings(t *testing.T) {
	for _, tt := range soundnessPrograms {
		prog := usher.MustCompile("t.c", tt.src)
		prevProps, prevChecks := -1, -1
		for _, cfg := range usher.Configs {
			an := usher.MustAnalyze(prog, cfg)
			st := an.StaticStats()
			if prevProps >= 0 {
				if st.Props > prevProps {
					t.Errorf("%s: [%v] props %d > previous config's %d", tt.name, cfg, st.Props, prevProps)
				}
				if st.Checks > prevChecks {
					t.Errorf("%s: [%v] checks %d > previous config's %d", tt.name, cfg, st.Checks, prevChecks)
				}
			}
			prevProps, prevChecks = st.Props, st.Checks
		}
	}
}

// TestGuidedSavesOverFull checks that guided instrumentation actually
// removes work on a clean program.
func TestGuidedSavesOverFull(t *testing.T) {
	src := soundnessPrograms[0].src // clean-loop
	prog := usher.MustCompile("t.c", src)
	full := usher.MustAnalyze(prog, usher.ConfigMSan).StaticStats()
	guided := usher.MustAnalyze(prog, usher.ConfigUsherFull).StaticStats()
	if guided.Props >= full.Props {
		t.Errorf("guided props %d not below full %d", guided.Props, full.Props)
	}
	if guided.Checks >= full.Checks {
		t.Errorf("guided checks %d not below full %d", guided.Checks, full.Checks)
	}
	// A fully clean program needs no checks at all.
	if guided.Checks != 0 {
		t.Errorf("clean program still has %d checks under Usher", guided.Checks)
	}
}

// TestDynamicSavings checks that the runtime shadow work shrinks too.
func TestDynamicSavings(t *testing.T) {
	src := soundnessPrograms[4].src // clean-struct-list
	msan := runConfig(t, src, nil, usher.ConfigMSan)
	ush := runConfig(t, src, nil, usher.ConfigUsherFull)
	if msan.Out[0] != ush.Out[0] {
		t.Fatalf("outputs differ: %v vs %v", msan.Out, ush.Out)
	}
	if ush.ShadowProps >= msan.ShadowProps {
		t.Errorf("usher dynamic props %d not below msan %d", ush.ShadowProps, msan.ShadowProps)
	}
	if ush.ShadowChecks > msan.ShadowChecks {
		t.Errorf("usher dynamic checks %d above msan %d", ush.ShadowChecks, msan.ShadowChecks)
	}
}

// TestOptIIStillDetects exercises the Figure 9 scenario: two checks on
// the same undefined source, the dominated one eliminated, the bug still
// reported once.
func TestOptIIStillDetects(t *testing.T) {
	src := `
int main() {
  int *buf = malloc(2);
  int b = buf[1];       // undefined
  int c = b + 1;
  print(c);             // first critical use (dominates the next)
  int e = b * 2;
  if (e) { return 1; }  // second critical use of the same source
  return 0;
}`
	full := runConfig(t, src, nil, usher.ConfigUsherOptI)
	opt2 := runConfig(t, src, nil, usher.ConfigUsherFull)
	if len(full.ShadowSites()) == 0 {
		t.Fatal("OptI config missed the bug entirely")
	}
	if len(opt2.ShadowSites()) == 0 {
		t.Error("Opt II suppressed every report")
	}
	if len(opt2.ShadowSites()) > len(full.ShadowSites()) {
		t.Errorf("Opt II added sites: %d > %d", len(opt2.ShadowSites()), len(full.ShadowSites()))
	}
	// The static check count must drop.
	prog := usher.MustCompile("t.c", src)
	cOptI := usher.MustAnalyze(prog, usher.ConfigUsherOptI).StaticStats().Checks
	cFull := usher.MustAnalyze(prog, usher.ConfigUsherFull).StaticStats().Checks
	if cFull >= cOptI {
		t.Errorf("Opt II did not reduce checks: %d >= %d", cFull, cOptI)
	}
}

// TestOptIReducesPropagations builds a deep copy/arithmetic chain whose
// interior propagations Opt I should skip.
func TestOptIReducesPropagations(t *testing.T) {
	src := `
int main() {
  int *p = malloc(1);
  int a = p[0];          // ⊥ source
  int b = a + 1;
  int c = b * 2;
  int d = c - 3;
  int e = d + c;
  if (e) { return 1; }
  return 0;
}`
	prog := usher.MustCompile("t.c", src)
	plain := usher.MustAnalyze(prog, usher.ConfigUsherTLAT)
	opt := usher.MustAnalyze(prog, usher.ConfigUsherOptI)
	if opt.MFCsSimplified == 0 {
		t.Error("Opt I simplified no closures")
	}
	if opt.StaticStats().Props >= plain.StaticStats().Props {
		t.Errorf("Opt I props %d not below plain %d",
			opt.StaticStats().Props, plain.StaticStats().Props)
	}
	// Detection must be preserved.
	res, err := opt.Run(usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShadowSites()) != len(res.OracleSites()) {
		t.Errorf("OptI detection mismatch: shadow %v, oracle %v",
			res.ShadowWarnings, res.OracleWarnings)
	}
	if len(res.ShadowViolations) != 0 {
		t.Errorf("OptI shadow violations: %v", res.ShadowViolations)
	}
}
