package instrument_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/instrument"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
	"github.com/valueflow/usher/internal/vfg"
)

// guidedPlan builds the guided plan (no optimizations) for src.
func guidedPlan(t *testing.T, src string) (*ir.Program, *instrument.Plan) {
	t.Helper()
	prog := compile.MustSource("t.c", src)
	pa := pointer.Analyze(prog)
	mem := memssa.Build(prog, pa)
	g := vfg.Build(prog, pa, mem, vfg.Options{})
	gm := vfg.Resolve(g)
	res := instrument.Guided("test", g, gm, instrument.GuidedOptions{})
	return prog, res.Plan
}

// itemsOfKind collects (instr, item) pairs of one kind in fn.
func itemsOfKind(plan *instrument.Plan, fn *ir.Function, kind instrument.ItemKind) []ir.Instr {
	fp := plan.FnPlanOf(fn)
	var out []ir.Instr
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			for _, it := range fp.Items[in.Label()] {
				if it.Kind == kind {
					out = append(out, in)
				}
			}
		}
	}
	return out
}

// Figure 7, [⊥-Load]: a load that may yield an undefined value gets
// σ(x) := σ(*y), and the allocation feeding it gets its memory shadow
// initialized ([⊥-Alloc] σ(*x) := F).
func TestRuleBottomLoadAndAlloc(t *testing.T) {
	prog, plan := guidedPlan(t, `
int main() {
  int *p = malloc(2);
  int v = p[1];
  if (v) { return 1; }
  return 0;
}`)
	main := prog.FuncByName("main")
	if n := len(itemsOfKind(plan, main, instrument.PropLoad)); n != 1 {
		t.Errorf("PropLoad items = %d, want 1", n)
	}
	memsets := itemsOfKind(plan, main, instrument.MemSetF)
	if len(memsets) != 1 {
		t.Fatalf("MemSetF items = %d, want 1 (at the alloc)", len(memsets))
	}
	if _, isAlloc := memsets[0].(*ir.Alloc); !isAlloc {
		t.Errorf("MemSetF attached to %T, want Alloc", memsets[0])
	}
	if n := len(itemsOfKind(plan, main, instrument.CheckVal)); n != 1 {
		t.Errorf("CheckVal items = %d, want 1 (the branch)", n)
	}
}

// [⊤-Check]: critical operations on provably defined values get no check
// and no shadow work at all.
func TestRuleTopCheckEmitsNothing(t *testing.T) {
	prog, plan := guidedPlan(t, `
int main() {
  int v = 3;
  if (v) { print(v); }
  return 0;
}`)
	main := prog.FuncByName("main")
	fp := plan.FnPlanOf(main)
	total := 0
	for _, items := range fp.Items {
		total += len(items)
	}
	if total != 0 {
		t.Errorf("items = %d, want 0 for a trivially defined program", total)
	}
}

// [⊥-Store_*]: the stored value's shadow is written to memory and the
// value is tracked.
func TestRuleBottomStore(t *testing.T) {
	prog, plan := guidedPlan(t, `
int taint() { int *p = malloc(1); return p[0]; }
int main() {
  int *buf = malloc(1);
  buf[0] = taint();       // stores a ⊥ value
  int v = buf[0];
  print(v);
  return 0;
}`)
	main := prog.FuncByName("main")
	stores := itemsOfKind(plan, main, instrument.PropStore)
	if len(stores) != 1 {
		t.Fatalf("PropStore items = %d, want 1", len(stores))
	}
	if _, isStore := stores[0].(*ir.Store); !isStore {
		t.Errorf("PropStore attached to %T", stores[0])
	}
}

// [⊤-Store_SU]: a strong update to a concrete location whose version a
// demanded (possibly aliasing) load may read writes σ(*x) := T once, with
// no value tracking. The demand arises because the ⊥ load's mu set covers
// both the undefined heap cell and the strongly updated stack cell.
func TestRuleTopStoreStrongUpdate(t *testing.T) {
	prog, plan := guidedPlan(t, `
int main(int c) {
  int a;
  int *p = malloc(1);
  int *q;
  if (c) { q = &a; } else { q = p; }
  a = 5;            // strong update of the concrete stack cell
  int v = *q;       // may read a (⊤, strong) or *p (⊥)
  if (v) { return 1; }
  return 0;
}`)
	main := prog.FuncByName("main")
	foundSU := false
	for _, in := range itemsOfKind(plan, main, instrument.MemSetT) {
		if _, ok := in.(*ir.Store); ok {
			foundSU = true
		}
	}
	if !foundSU {
		t.Error("no MemSetT at the strong-update store of a")
	}
	// The ⊤ strong-update store must not track the stored value's shadow.
	for _, in := range itemsOfKind(plan, main, instrument.PropStore) {
		if _, ok := in.(*ir.Store); ok {
			t.Error("⊤ strong-update store should not propagate the value's shadow")
		}
	}
	if n := len(itemsOfKind(plan, main, instrument.PropLoad)); n != 1 {
		t.Errorf("PropLoad items = %d, want 1 (the aliasing load)", n)
	}
}

// When a ⊤ value is demanded only as a ⊤ operand of a ⊥ computation, no
// memory work is generated at all: unshadowed registers are implicitly T.
func TestRuleTopOperandIsFree(t *testing.T) {
	prog, plan := guidedPlan(t, `
int flag;
int main(int c) {
  int *p = malloc(1);
  flag = c;
  int u = p[0] + flag;   // flag's side is ⊤: implicit T, no tracking
  if (u) { return 1; }
  return 0;
}`)
	main := prog.FuncByName("main")
	for _, in := range itemsOfKind(plan, main, instrument.MemSetT) {
		if st, ok := in.(*ir.Store); ok {
			if _, isGlobal := st.Addr.(*ir.GlobalAddr); isGlobal {
				t.Error("⊤-only global flow should need no shadow write at all")
			}
		}
	}
}

// [⊥-Para]/[⊥-Ret]: undefined values crossing function boundaries set the
// relay flags.
func TestRuleParamAndReturnRelay(t *testing.T) {
	prog, plan := guidedPlan(t, `
int id(int x) { return x; }
int main() {
  int *p = malloc(1);
  int v = id(p[0]);
  if (v) { return 1; }
  return 0;
}`)
	id := prog.FuncByName("id")
	fp := plan.FnPlanOf(id)
	if len(fp.ParamRecv) != 1 || !fp.ParamRecv[0] {
		t.Errorf("id.ParamRecv = %v, want [true]", fp.ParamRecv)
	}
	if !fp.RetSend {
		t.Error("id.RetSend = false, want true")
	}
}

// ⊤ functions need no relays at all.
func TestRuleNoRelayForDefinedFlows(t *testing.T) {
	prog, plan := guidedPlan(t, `
int id(int x) { return x; }
int main() {
  int v = id(5);
  if (v) { return 1; }
  return 0;
}`)
	id := prog.FuncByName("id")
	fp := plan.FnPlanOf(id)
	if fp.ParamRecv[0] || fp.RetSend {
		t.Errorf("relays set for an all-⊤ function: recv=%v ret=%v", fp.ParamRecv, fp.RetSend)
	}
}

// Values never reaching a critical operation need no tracking even when
// undefined ("a value that is never used at any critical operation does
// not need to be tracked", §1).
func TestRuleNoTrackingWithoutCriticalUse(t *testing.T) {
	prog, plan := guidedPlan(t, `
int sink;
int main() {
  int *p = malloc(1);
  sink = p[0];     // undefined value stored to a global, never branched on
  return 0;
}`)
	main := prog.FuncByName("main")
	fp := plan.FnPlanOf(main)
	for label, items := range fp.Items {
		for _, it := range items {
			if it.Kind == instrument.CheckVal {
				t.Errorf("unexpected check at l%d", label)
			}
		}
	}
}
