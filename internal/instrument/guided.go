package instrument

import (
	"github.com/valueflow/usher/internal/cfg"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/vfg"
	"github.com/valueflow/usher/internal/vfgopt"
)

// GuidedOptions selects the optional VFG-based optimizations (§3.5).
type GuidedOptions struct {
	// OptI enables value-flow simplification over Must Flow-from
	// Closures.
	OptI bool
	// OptII enables redundant check elimination (Algorithm 1).
	OptII bool
	// MemoryFull instruments every allocation and store unconditionally.
	// This is required for the Usher_TL configuration, whose VFG does not
	// model address-taken variables and therefore cannot prove any memory
	// shadow unnecessary.
	MemoryFull bool
	// OptIII enables dominated same-value check elimination, an extension
	// in the spirit of the paper's future work (§6): when one SSA value
	// is consumed by several critical operations and one check site
	// dominates another, the dominated check is redundant — the value's
	// shadow cannot change between the two, so any error is already
	// reported at the dominating site.
	OptIII bool
}

// GuidedResult carries the plan and the optimization statistics reported
// in Table 1.
type GuidedResult struct {
	Plan *Plan
	// Gamma is the definedness used for instrumentation (re-resolved when
	// Opt II is enabled).
	Gamma *vfg.Gamma
	// MFCsSimplified counts the closures Opt I simplified (Table 1's S).
	MFCsSimplified int
	// Redirected counts the nodes Opt II redirected to T (Table 1's R).
	Redirected int
	// ChecksElided counts the checks removed by Opt III.
	ChecksElided int
	// Demanded counts VFG nodes that required tracking.
	Demanded int
}

// Guided computes the paper's guided instrumentation (§3.4): starting
// from the critical operations that may consume undefined values, it
// walks the VFG backwards, emitting the Figure 7 items. ⊤ registers need
// no shadow slots at all (their shadow is the constant T); ⊤ memory
// versions produced by allocations and strong-update stores get a single
// strong shadow write; everything else propagates.
func Guided(name string, g *vfg.Graph, gm *vfg.Gamma, opts GuidedOptions) *GuidedResult {
	redirected := 0
	if opts.OptII {
		gm, redirected = vfgopt.RedundantCheckElim(g, gm)
	}
	return Emit(name, g, gm, redirected, opts)
}

// Emit is the plan-emission pass proper: it instruments against an
// already-resolved Γ. Opt II runs upstream (see internal/pipeline's optII
// pass) and hands its re-resolved Γ plus redirect count here, so several
// configurations can share one Opt II artifact; Guided wraps both steps
// for callers outside the pipeline. opts.OptII is ignored.
func Emit(name string, g *vfg.Graph, gm *vfg.Gamma, redirected int, opts GuidedOptions) *GuidedResult {
	res := &GuidedResult{Gamma: gm, Redirected: redirected}

	plan := &Plan{Name: name, Fns: make(map[*ir.Function]*FnPlan)}
	res.Plan = plan
	for _, fn := range g.Prog.Funcs {
		if fn.HasBody {
			plan.Fns[fn] = &FnPlan{
				Fn:        fn,
				Items:     make(map[int][]Item),
				ParamRecv: make([]bool, len(fn.Params)),
				ParamSetT: make([]bool, len(fn.Params)),
			}
		}
	}

	in := &instrumenter{
		g:        g,
		gm:       gm,
		plan:     plan,
		opts:     opts,
		demanded: make(map[int]bool),
		memsets:  make(map[ir.Instr]bool),
		mfcCache: make(map[*ir.Register]*vfgopt.MFC),
	}
	in.seedChecks()
	if opts.MemoryFull {
		in.seedFullMemory()
	}
	in.run()
	res.MFCsSimplified = in.mfcSimplified
	res.ChecksElided = in.checksElided
	res.Demanded = len(in.demanded)
	return res
}

type instrumenter struct {
	g    *vfg.Graph
	gm   *vfg.Gamma
	plan *Plan
	opts GuidedOptions

	demanded map[int]bool
	work     []*vfg.Node
	// memsets dedups MemSet items per allocation/store instruction.
	memsets       map[ir.Instr]bool
	mfcCache      map[*ir.Register]*vfgopt.MFC
	mfcSimplified int
	checksElided  int
}

func (in *instrumenter) demand(n *vfg.Node) {
	if n == nil || n.Kind == vfg.NodeRootT || n.Kind == vfg.NodeRootF {
		return
	}
	if in.demanded[n.ID] {
		return
	}
	in.demanded[n.ID] = true
	in.work = append(in.work, n)
}

func (in *instrumenter) demandDeps(n *vfg.Node) {
	for _, e := range n.Deps {
		in.demand(e.To)
	}
}

// seedChecks applies [⊥-Check]: a runtime check at every critical
// operation consuming a possibly undefined value ([⊤-Check] emits
// nothing). With OptIII, a check on a value already checked at a
// dominating site is elided: SSA values never change, so the dominating
// check reports the same error first.
func (in *instrumenter) seedChecks() {
	for _, fn := range in.g.Prog.Funcs {
		if !fn.HasBody {
			continue
		}
		fp := in.plan.Fns[fn]

		type cand struct {
			instr ir.Instr
			val   ir.Value
			node  *vfg.Node
		}
		var cands []cand
		for _, b := range fn.Blocks {
			for _, instr := range b.Instrs {
				vals, critical := ir.IsCritical(instr)
				if !critical {
					continue
				}
				for _, v := range vals {
					r, isReg := v.(*ir.Register)
					if !isReg {
						continue
					}
					n := in.g.RegNode(r)
					if in.gm.Of(n) == vfg.Bottom {
						cands = append(cands, cand{instr, v, n})
					}
				}
			}
		}

		drop := make(map[int]bool)
		if in.opts.OptIII && len(cands) > 1 {
			dom := cfg.NewDomTree(fn)
			// Group candidates by their definedness representative: the
			// register whose shadow the checked value's shadow provably
			// equals (through copies, field addresses, and operations
			// whose other operands are ⊤). A check dominated by a check
			// of the same representative is redundant.
			byNode := make(map[*vfg.Node][]int)
			for i, c := range cands {
				rep := in.defednessRep(c.val.(*ir.Register))
				byNode[in.g.RegNode(rep)] = append(byNode[in.g.RegNode(rep)], i)
			}
			for _, idxs := range byNode {
				for _, i := range idxs {
					if drop[i] {
						continue
					}
					for _, j := range idxs {
						if i == j || drop[j] {
							continue
						}
						if dom.InstrDominates(cands[i].instr, cands[j].instr) {
							drop[j] = true
							in.checksElided++
						}
					}
				}
			}
		}

		// Emit remaining checks, grouped per instruction in program order.
		byInstr := make(map[ir.Instr][]ir.Value)
		var order []ir.Instr
		for i, c := range cands {
			if drop[i] {
				continue
			}
			if _, seen := byInstr[c.instr]; !seen {
				order = append(order, c.instr)
			}
			byInstr[c.instr] = append(byInstr[c.instr], c.val)
			in.demand(c.node)
		}
		for _, instr := range order {
			fp.add(instr.Label(), Item{Kind: CheckVal, Srcs: byInstr[instr]})
		}
	}
}

// defednessRep walks a register's definition chain through operations
// that preserve definedness exactly — copies, field-address computations,
// index computations with ⊤ indices, and binary operations with one ⊤
// operand — to the register whose shadow value it always equals.
func (in *instrumenter) defednessRep(r *ir.Register) *ir.Register {
	for depth := 0; depth < 64; depth++ {
		var next ir.Value
		switch def := r.Def.(type) {
		case *ir.Copy:
			next = def.Src
		case *ir.FieldAddr:
			next = def.Base
		case *ir.IndexAddr:
			if in.gm.OfValue(def.Idx) == vfg.Top {
				next = def.Base
			}
		case *ir.BinOp:
			xTop := in.gm.OfValue(def.X) == vfg.Top
			yTop := in.gm.OfValue(def.Y) == vfg.Top
			switch {
			case yTop && !xTop:
				next = def.X
			case xTop && !yTop:
				next = def.Y
			}
		}
		nr, ok := next.(*ir.Register)
		if !ok {
			return r
		}
		r = nr
	}
	return r
}

// seedFullMemory instruments every allocation and store (the memory side
// of full instrumentation) and demands the stored values, for
// configurations whose VFG cannot reason about address-taken variables.
func (in *instrumenter) seedFullMemory() {
	for _, fn := range in.g.Prog.Funcs {
		if !fn.HasBody {
			continue
		}
		fp := in.plan.Fns[fn]
		for _, b := range fn.Blocks {
			for _, instr := range b.Instrs {
				switch instr := instr.(type) {
				case *ir.Alloc:
					kind := MemSetF
					if instr.Obj.ZeroInit {
						kind = MemSetT
					}
					in.memSet(instr, kind)
				case *ir.Store:
					if !in.memsets[instr] {
						in.memsets[instr] = true
						fp.add(instr.Label(), Item{Kind: PropStore, Val: instr.Val})
					}
					in.shadowReg(instr.Val)
					if r, ok := instr.Val.(*ir.Register); ok {
						in.demand(in.g.RegNode(r))
					}
				case *ir.MemSet:
					if !in.memsets[instr] {
						in.memsets[instr] = true
						fp.add(instr.Label(), Item{Kind: MemFill, Val: instr.Val})
					}
					in.shadowReg(instr.Val)
					if r, ok := instr.Val.(*ir.Register); ok {
						in.demand(in.g.RegNode(r))
					}
				case *ir.MemCopy:
					if !in.memsets[instr] {
						in.memsets[instr] = true
						fp.add(instr.Label(), Item{Kind: MemShadowCopy})
					}
				}
			}
		}
	}
}

func (in *instrumenter) run() {
	for len(in.work) > 0 {
		n := in.work[len(in.work)-1]
		in.work = in.work[:len(in.work)-1]
		if in.gm.Of(n) == vfg.Bottom {
			in.processBottom(n)
		} else {
			in.processTop(n)
		}
	}
}

// processTop applies the ⊤ rules: registers are implicitly T (no shadow
// slot); allocation and strong-update memory versions get one strong
// shadow write; pass-through memory versions forward the demand to their
// sources ([⊤-Store_WU/SemiSU], [Phi], [VPara], [VRet]).
func (in *instrumenter) processTop(n *vfg.Node) {
	if n.Kind == vfg.NodeReg {
		return // [⊤-Assign]/[⊤-Para]: σ is the constant T, no code needed
	}
	d := n.Mem
	switch d.Kind {
	case memssa.DefEntryUndef:
		return
	case memssa.DefEntry, memssa.DefPhi:
		in.demandDeps(n)
	case memssa.DefChi:
		switch instr := d.Instr.(type) {
		case *ir.Alloc:
			// [⊤-Alloc]: σ(*x) := T, once per allocation site.
			in.memSet(instr, MemSetT)
		case *ir.Store:
			if in.g.StoreUpdates[d] == vfg.UpdateStrong {
				// [⊤-Store_SU]: σ(*x) := T.
				in.memSet(instr, MemSetT)
				return
			}
			// [⊤-Store_WU/SemiSU]: rely on the incoming version's shadow
			// being correct; forward the demand to the memory source.
			for _, e := range n.Deps {
				if e.To.Kind == vfg.NodeMem {
					in.demand(e.To)
				}
			}
		case *ir.MemSet, *ir.MemCopy:
			// [⊤-Intrinsic]: range chis are always weak updates (the range
			// may not cover the object), so ⊤ means the written values AND
			// the incoming version are defined — existing shadows already
			// read T; forward the demand to the memory sources.
			for _, e := range n.Deps {
				if e.To.Kind == vfg.NodeMem {
					in.demand(e.To)
				}
			}
		case *ir.Call:
			// [VRet]: forward demand through the call.
			in.demandDeps(n)
		}
	}
}

// processBottom applies the ⊥ rules of Figure 7.
func (in *instrumenter) processBottom(n *vfg.Node) {
	if n.Kind == vfg.NodeMem {
		d := n.Mem
		switch d.Kind {
		case memssa.DefEntry, memssa.DefPhi:
			// [VPara]/[Phi]: memory shadows live in the shadow map and
			// survive joins and calls without code; just forward demand.
			in.demandDeps(n)
		case memssa.DefChi:
			switch instr := d.Instr.(type) {
			case *ir.Alloc:
				// [⊥-Alloc]: σ(*x) := T/F, plus the older versions.
				kind := MemSetF
				if instr.Obj.ZeroInit {
					kind = MemSetT
				}
				in.memSet(instr, kind)
				in.demandDeps(n)
			case *ir.Store:
				// [⊥-Store_*]: σ(*x) := σ(y); the value's shadow and, for
				// weak/semi-strong updates, the older version are tracked.
				fp := in.plan.Fns[instr.Parent().Fn]
				if !in.memsets[instr] {
					in.memsets[instr] = true
					fp.add(instr.Label(), Item{Kind: PropStore, Val: instr.Val})
				}
				in.shadowReg(instr.Val)
				in.demandDeps(n)
			case *ir.MemSet:
				// [⊥-MemSet]: σ(*to+i) := σ(v) over the runtime range; the
				// fill value's shadow and the older versions are tracked.
				fp := in.plan.Fns[instr.Parent().Fn]
				if !in.memsets[instr] {
					in.memsets[instr] = true
					fp.add(instr.Label(), Item{Kind: MemFill, Val: instr.Val})
				}
				in.shadowReg(instr.Val)
				in.demandDeps(n)
			case *ir.MemCopy:
				// [⊥-MemCopy]: σ(*to+i) := σ(*from+i) over the runtime
				// range; the source versions' shadows must be maintained, so
				// demand flows into the source's reaching definitions.
				fp := in.plan.Fns[instr.Parent().Fn]
				if !in.memsets[instr] {
					in.memsets[instr] = true
					fp.add(instr.Label(), Item{Kind: MemShadowCopy})
				}
				in.demandDeps(n)
			case *ir.Call:
				// [VRet]: demand flows into the callee's exit versions.
				in.demandDeps(n)
			}
		}
		return
	}

	// ⊥ register.
	r := n.Reg
	fp := in.plan.Fns[r.Fn]
	if r.Def == nil {
		// [⊥-Para]: receive the shadow from every call site.
		for i, prm := range r.Fn.Params {
			if prm == r {
				fp.ParamRecv[i] = true
			}
		}
		fp.setShadowed(r)
		in.demandDeps(n) // the actuals
		return
	}
	switch def := r.Def.(type) {
	case *ir.Copy:
		in.emitCompute(fp, n, def.Label(), []ir.Value{def.Src})
	case *ir.BinOp:
		in.emitCompute(fp, n, def.Label(), []ir.Value{def.X, def.Y})
	case *ir.FieldAddr:
		in.emitCompute(fp, n, def.Label(), []ir.Value{def.Base})
	case *ir.IndexAddr:
		in.emitCompute(fp, n, def.Label(), []ir.Value{def.Base, def.Idx})
	case *ir.Phi:
		// [Phi]: the shadow follows the dynamically chosen edge.
		fp.setShadowed(r)
		fp.add(def.Label(), Item{Kind: PropCompute, Dst: r, Srcs: def.Vals})
		in.demandDeps(n)
	case *ir.Load:
		// [⊥-Load]: σ(x) := σ(*y).
		fp.setShadowed(r)
		fp.add(def.Label(), Item{Kind: PropLoad, Dst: r})
		in.demandDeps(n)
	case *ir.Call:
		// [⊥-Ret]: the callee relays its return shadow.
		fp.setShadowed(r)
		for _, callee := range in.g.Pointer.Callees(def) {
			if cp := in.plan.Fns[callee]; cp != nil {
				cp.RetSend = true
			}
		}
		in.demandDeps(n)
	case *ir.Alloc:
		// Allocation results are always defined; unreachable for ⊥.
	}
}

// emitCompute handles [⊥-VCopy]/[⊥-Bop] with optional Opt I
// simplification: when the register heads a non-trivial Must Flow-from
// Closure, its shadow is computed directly from the closure's ⊥ sources,
// skipping the interior propagations.
func (in *instrumenter) emitCompute(fp *FnPlan, n *vfg.Node, label int, srcs []ir.Value) {
	r := n.Reg
	fp.setShadowed(r)
	if in.opts.OptI {
		m := in.mfcCache[r]
		if m == nil {
			m = vfgopt.ComputeMFC(r)
			in.mfcCache[r] = m
		}
		if m.Simplified() {
			bottom := m.BottomSources(in.g, in.gm)
			vals := make([]ir.Value, len(bottom))
			for i, s := range bottom {
				vals[i] = s
				in.demand(in.g.RegNode(s))
				in.shadowReg(s)
			}
			fp.add(label, Item{Kind: PropCompute, Dst: r, Srcs: vals})
			in.mfcSimplified++
			return
		}
	}
	fp.add(label, Item{Kind: PropCompute, Dst: r, Srcs: srcs})
	in.demandDeps(n)
}

// shadowReg ensures a ⊥ register read by an item has a shadow slot.
func (in *instrumenter) shadowReg(v ir.Value) {
	r, ok := v.(*ir.Register)
	if !ok {
		return
	}
	if in.gm.Of(in.g.RegNode(r)) == vfg.Bottom {
		if fp := in.plan.Fns[r.Fn]; fp != nil {
			fp.setShadowed(r)
		}
	}
}

// memSet emits a whole-object or single-cell strong shadow write, once
// per instruction.
func (in *instrumenter) memSet(instr ir.Instr, kind ItemKind) {
	if in.memsets[instr] {
		return
	}
	in.memsets[instr] = true
	fp := in.plan.Fns[instr.Parent().Fn]
	fp.add(instr.Label(), Item{Kind: kind})
}
