// Package instrument computes instrumentation plans: which shadow
// propagations and definedness checks a program must execute at run time.
//
// Two producers exist:
//
//   - Full (this file) shadows every value and checks every critical
//     operation, modelling MSan-style full instrumentation (§2.2).
//   - Guided (guided.go) applies the paper's Figure 7 rules over a
//     value-flow graph and its definedness resolution, emitting shadow
//     work only where an undefined value may reach a critical operation.
//
// A Plan is consumed by the interpreter's shadow machine (package
// interp), which executes the planned items alongside the program and
// counts them, and by the static counters behind Figure 11.
package instrument

import (
	"fmt"
	"sort"
	"strings"

	"github.com/valueflow/usher/internal/ir"
)

// ItemKind is the operation an instrumentation item performs.
type ItemKind int

// Item kinds, corresponding to the shadow statements of Figure 7.
const (
	// PropCompute: σ(Dst) := ∧ σ(src) over Srcs.
	PropCompute ItemKind = iota
	// PropSetT: σ(Dst) := T (strong update of a register shadow).
	PropSetT
	// PropSetF: σ(Dst) := F.
	PropSetF
	// PropLoad: σ(Dst) := σ(*addr) for the instruction's load address.
	PropLoad
	// PropStore: σ(*addr) := σ(Val) for the instruction's store address.
	PropStore
	// MemSetT: σ(*x) := T over the allocated object (alloc_T) or the
	// stored-to cell (strong update at a store).
	MemSetT
	// MemSetF: σ(*x) := F over the allocated object (alloc_F).
	MemSetF
	// CheckVal: E(l) |= (σ(v) = F) for each value in Srcs.
	CheckVal
	// MemFill: σ(*to+i) := σ(Val) for i in [0, len) at a MemSet
	// intrinsic. The range is the runtime-evaluated length, so shadow
	// work is charged by the requested range, never the (possibly
	// collapsed) object size.
	MemFill
	// MemShadowCopy: σ(*to+i) := σ(*from+i) for i in [0, len) at a
	// MemCopy intrinsic (memcpy/memmove both lower to it).
	MemShadowCopy
)

func (k ItemKind) String() string {
	switch k {
	case PropCompute:
		return "prop-compute"
	case PropSetT:
		return "prop-setT"
	case PropSetF:
		return "prop-setF"
	case PropLoad:
		return "prop-load"
	case PropStore:
		return "prop-store"
	case MemSetT:
		return "mem-setT"
	case MemSetF:
		return "mem-setF"
	case MemFill:
		return "mem-fill"
	case MemShadowCopy:
		return "mem-shadow-copy"
	default:
		return "check"
	}
}

// Item is one piece of instrumentation attached to an instruction.
type Item struct {
	Kind ItemKind
	Dst  *ir.Register // for PropCompute/PropSetT/PropSetF/PropLoad
	Val  ir.Value     // for PropStore: the stored value
	Srcs []ir.Value   // for PropCompute (conjunction) and CheckVal
}

// shadowReads returns the number of shadow-variable reads the item
// performs, the unit of Figure 11's propagation counts.
func (it Item) shadowReads(fp *FnPlan) int {
	switch it.Kind {
	case PropCompute:
		n := 0
		for _, s := range it.Srcs {
			if r, ok := s.(*ir.Register); ok && fp.Shadowed(r) {
				n++
			}
		}
		return n
	case PropLoad:
		return 1
	case PropStore, MemFill:
		if r, ok := it.Val.(*ir.Register); ok && fp.Shadowed(r) {
			return 1
		}
		return 0
	case MemShadowCopy:
		return 1
	}
	return 0
}

// FnPlan is the instrumentation of one function.
type FnPlan struct {
	Fn *ir.Function
	// Items maps instruction labels to the shadow work at that statement.
	Items map[int][]Item
	// shadowRegs[r.ID] marks registers that carry a shadow variable.
	// Unshadowed registers are statically known defined (σ = T).
	shadowRegs []bool
	// ParamRecv[i] marks parameters whose shadow is received from the
	// caller ([⊥-Para]); ParamSetT[i] marks parameters strongly updated to
	// T on entry ([⊤-Para]).
	ParamRecv []bool
	ParamSetT []bool
	// RetSend marks functions that relay the shadow of their return value
	// to call sites ([⊥-Ret]).
	RetSend bool
}

// Shadowed reports whether register r carries a shadow variable.
func (fp *FnPlan) Shadowed(r *ir.Register) bool {
	return r.ID < len(fp.shadowRegs) && fp.shadowRegs[r.ID]
}

func (fp *FnPlan) setShadowed(r *ir.Register) {
	fp.MarkShadowedID(r.ID)
}

// ShadowedRegIDs returns the ids of every register carrying a shadow
// variable, in ascending order. Together with MarkShadowedID it is the
// serialization surface of the shadow-register set (internal/snapshot);
// Fingerprint renders the same list.
func (fp *FnPlan) ShadowedRegIDs() []int {
	var ids []int
	for id, on := range fp.shadowRegs {
		if on {
			ids = append(ids, id)
		}
	}
	return ids
}

// MarkShadowedID marks the register with the given id as carrying a
// shadow variable: the decode-side inverse of ShadowedRegIDs, used when
// a plan is rebuilt from a snapshot. Plan producers go through the
// register-typed setter.
func (fp *FnPlan) MarkShadowedID(id int) {
	for len(fp.shadowRegs) <= id {
		fp.shadowRegs = append(fp.shadowRegs, false)
	}
	fp.shadowRegs[id] = true
}

func (fp *FnPlan) add(label int, it Item) {
	fp.Items[label] = append(fp.Items[label], it)
}

// Plan is a whole-program instrumentation plan.
type Plan struct {
	// Name identifies the configuration that produced the plan.
	Name string
	Fns  map[*ir.Function]*FnPlan
}

// FnPlanOf returns the plan of fn (nil if the function is uninstrumented).
func (p *Plan) FnPlanOf(fn *ir.Function) *FnPlan { return p.Fns[fn] }

// Stats are the static instrumentation counts reported in Figure 11.
type Stats struct {
	// Props is the static number of shadow propagations (reads from
	// shadow variables).
	Props int
	// Checks is the static number of runtime checks at critical
	// operations.
	Checks int
	// Items is the total number of instrumentation items.
	Items int
}

// StaticStats computes the plan's static propagation/check counts.
// Parameter and return relays (the paper's σ_g pairs) are counted once
// per receiving parameter / relaying function rather than once per call
// site; the accounting is identical across configurations, so the
// normalized comparisons of Figure 11 are unaffected.
func (p *Plan) StaticStats() Stats {
	var st Stats
	for _, fp := range p.Fns {
		for _, items := range fp.Items {
			for _, it := range items {
				st.Items++
				if it.Kind == CheckVal {
					st.Checks += len(it.Srcs)
				} else {
					st.Props += it.shadowReads(fp)
				}
			}
		}
		for _, recv := range fp.ParamRecv {
			if recv {
				st.Props++ // σ_g := σ(actual); σ(formal) := σ_g
				st.Items++
			}
		}
		if fp.RetSend {
			st.Props++
			st.Items++
		}
	}
	return st
}

// Fingerprint renders the plan canonically: functions sorted by name,
// labels sorted numerically, items in emission order. Two plans with
// equal fingerprints schedule exactly the same shadow work, so the
// fingerprint is the equality notion used by the session-vs-standalone
// and parallel-vs-serial regression tests.
func (p *Plan) Fingerprint() string {
	fns := make([]*FnPlan, 0, len(p.Fns))
	for _, fp := range p.Fns {
		fns = append(fns, fp)
	}
	sort.Slice(fns, func(i, j int) bool { return fns[i].Fn.Name < fns[j].Fn.Name })

	var sb strings.Builder
	for _, fp := range fns {
		fmt.Fprintf(&sb, "func %s recv=%v setT=%v retSend=%v\n",
			fp.Fn.Name, fp.ParamRecv, fp.ParamSetT, fp.RetSend)
		fmt.Fprintf(&sb, "  shadowed=%v\n", fp.ShadowedRegIDs())
		labels := make([]int, 0, len(fp.Items))
		for l := range fp.Items {
			labels = append(labels, l)
		}
		sort.Ints(labels)
		for _, l := range labels {
			for _, it := range fp.Items[l] {
				fmt.Fprintf(&sb, "  @%d %s dst=%v val=%v srcs=%v\n", l, it.Kind, it.Dst, it.Val, it.Srcs)
			}
		}
	}
	return sb.String()
}

// Full builds the MSan-model plan: every statement is shadowed and every
// critical operation checked (§2.2 of the paper).
func Full(prog *ir.Program) *Plan {
	p := &Plan{Name: "MSan", Fns: make(map[*ir.Function]*FnPlan)}
	for _, fn := range prog.Funcs {
		if !fn.HasBody {
			continue
		}
		fp := &FnPlan{Fn: fn, Items: make(map[int][]Item)}
		p.Fns[fn] = fp
		for _, prm := range fn.Params {
			fp.setShadowed(prm)
		}
		fp.ParamRecv = make([]bool, len(fn.Params))
		for i := range fp.ParamRecv {
			fp.ParamRecv[i] = true
		}
		fp.RetSend = true
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				fullInstrument(fp, in)
			}
		}
	}
	return p
}

func fullInstrument(fp *FnPlan, in ir.Instr) {
	l := in.Label()
	// Checks at critical operations.
	if vals, critical := ir.IsCritical(in); critical {
		fp.add(l, Item{Kind: CheckVal, Srcs: vals})
	}
	switch in := in.(type) {
	case *ir.Alloc:
		fp.setShadowed(in.Dst)
		fp.add(l, Item{Kind: PropSetT, Dst: in.Dst})
		if in.Obj.ZeroInit {
			fp.add(l, Item{Kind: MemSetT})
		} else {
			fp.add(l, Item{Kind: MemSetF})
		}
	case *ir.Copy:
		fp.setShadowed(in.Dst)
		fp.add(l, Item{Kind: PropCompute, Dst: in.Dst, Srcs: []ir.Value{in.Src}})
	case *ir.BinOp:
		fp.setShadowed(in.Dst)
		fp.add(l, Item{Kind: PropCompute, Dst: in.Dst, Srcs: []ir.Value{in.X, in.Y}})
	case *ir.FieldAddr:
		fp.setShadowed(in.Dst)
		fp.add(l, Item{Kind: PropCompute, Dst: in.Dst, Srcs: []ir.Value{in.Base}})
	case *ir.IndexAddr:
		fp.setShadowed(in.Dst)
		fp.add(l, Item{Kind: PropCompute, Dst: in.Dst, Srcs: []ir.Value{in.Base, in.Idx}})
	case *ir.Load:
		fp.setShadowed(in.Dst)
		fp.add(l, Item{Kind: PropLoad, Dst: in.Dst})
	case *ir.Store:
		fp.add(l, Item{Kind: PropStore, Val: in.Val})
	case *ir.MemSet:
		fp.add(l, Item{Kind: MemFill, Val: in.Val})
	case *ir.MemCopy:
		fp.add(l, Item{Kind: MemShadowCopy})
	case *ir.Phi:
		fp.setShadowed(in.Dst)
		fp.add(l, Item{Kind: PropCompute, Dst: in.Dst, Srcs: in.Vals})
	case *ir.Call:
		if in.Dst != nil {
			fp.setShadowed(in.Dst)
			if in.Builtin != ir.NotBuiltin || anyExternal(in) {
				// input() and external calls return defined values.
				fp.add(l, Item{Kind: PropSetT, Dst: in.Dst})
			}
		}
	}
}

// anyExternal reports whether the (direct) callee lacks a body.
func anyExternal(c *ir.Call) bool {
	if d := c.Direct(); d != nil {
		return !d.HasBody
	}
	return false
}
