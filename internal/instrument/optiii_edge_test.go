package instrument_test

import (
	"testing"

	"github.com/valueflow/usher"
)

// Opt III elides a check only when another check of the same definedness
// class strictly dominates it in the CFG. These tests pin the dominance
// edge cases where "executes earlier in practice" does NOT imply
// dominance, so eliding would lose reports.

// A check inside a loop body must not elide the check after the loop:
// the body does not dominate the loop exit (the loop may run zero
// times), so the post-loop use must keep its own check and still warn.
func TestOptIIILoopBodyDoesNotElidePostLoop(t *testing.T) {
	src := `
int main() {
  int *p = malloc(1);
  int v = p[0];
  for (int i = 0; i < 0; i++) { print(v); }
  print(v);
  return 0;
}`
	prog := usher.MustCompile("t.c", src)
	ext := usher.MustAnalyze(prog, usher.ConfigUsherOptIII)
	if ext.ChecksElided != 0 {
		t.Errorf("checks elided = %d, want 0 (loop body does not dominate exit)", ext.ChecksElided)
	}
	res, err := ext.Run(usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShadowWarnings) != 1 {
		t.Fatalf("warnings = %v, want exactly the post-loop site", res.ShadowWarnings)
	}
}

// A check at the end of a loop body reaches the top of the body through
// the back edge on later iterations, but that pseudo-ordering is not
// dominance: it must elide nothing, and both the in-loop and post-loop
// sites must report.
func TestOptIIIBackEdgeIsNotDominance(t *testing.T) {
	src := `
int main() {
  int *p = malloc(1);
  int v = p[0];
  int i = 0;
  while (i < 2) {
    i = i + 1;
    print(v);
  }
  print(v);
  return 0;
}`
	prog := usher.MustCompile("t.c", src)
	ext := usher.MustAnalyze(prog, usher.ConfigUsherOptIII)
	if ext.ChecksElided != 0 {
		t.Errorf("checks elided = %d, want 0 (back edge is not dominance)", ext.ChecksElided)
	}
	res, err := ext.Run(usher.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.ShadowSites()); got != 2 {
		t.Fatalf("reported sites = %v, want both the loop and post-loop sites", res.ShadowSites())
	}
}

// Diamond: checks in the two arms are dominance-incomparable with each
// other and neither dominates the join, so nothing is elided and the
// taken arm plus the join both report.
func TestOptIIIDiamondArmsDoNotElideJoin(t *testing.T) {
	src := `
int main(int sel) {
  int *p = malloc(1);
  int v = p[0];
  if (sel) { print(v); } else { print(v); }
  print(v);
  return 0;
}`
	prog := usher.MustCompile("t.c", src)
	ext := usher.MustAnalyze(prog, usher.ConfigUsherOptIII)
	if ext.ChecksElided != 0 {
		t.Errorf("checks elided = %d, want 0 (arms and join are incomparable)", ext.ChecksElided)
	}
	res, err := ext.Run(usher.RunOptions{Args: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(res.ShadowSites()); got != 2 {
		t.Fatalf("reported sites = %v, want taken arm + join", res.ShadowSites())
	}
}

// Converse diamond: a check before the branch dominates both arms and
// the join, so all three later checks are elided — and the one surviving
// check still reports the bug.
func TestOptIIIEntryCheckDominatesDiamond(t *testing.T) {
	src := `
int main(int sel) {
  int *p = malloc(1);
  int v = p[0];
  print(v);
  if (sel) { print(v); } else { print(v); }
  print(v);
  return 0;
}`
	prog := usher.MustCompile("t.c", src)
	ext := usher.MustAnalyze(prog, usher.ConfigUsherOptIII)
	if ext.ChecksElided != 3 {
		t.Errorf("checks elided = %d, want 3 (entry check dominates the diamond)", ext.ChecksElided)
	}
	if got := ext.StaticStats().Checks; got != 1 {
		t.Errorf("remaining checks = %d, want 1", got)
	}
	res, err := ext.Run(usher.RunOptions{Args: []int64{0}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ShadowWarnings) != 1 {
		t.Fatalf("warnings = %v, want exactly the dominating site", res.ShadowWarnings)
	}
	if len(res.ShadowViolations) != 0 {
		t.Fatalf("violations: %v", res.ShadowViolations)
	}
}
