package cache

import (
	"fmt"
	"sync"
	"testing"
)

func TestLRUBudgetEviction(t *testing.T) {
	var evicted []string
	c := New[int](100)
	c.SetOnEvict(func(k string, _ int) { evicted = append(evicted, k) })
	for i := 0; i < 4; i++ {
		if !c.Put(fmt.Sprintf("k%d", i), i, 30) {
			t.Fatalf("k%d rejected", i)
		}
	}
	// 4×30 = 120 > 100: the least-recently-used entry (k0) must be gone.
	if c.Bytes() != 90 || c.Len() != 3 {
		t.Fatalf("bytes=%d len=%d, want 90/3", c.Bytes(), c.Len())
	}
	if _, ok := c.Get("k0"); ok {
		t.Error("k0 survived past the budget")
	}
	if len(evicted) != 1 || evicted[0] != "k0" {
		t.Errorf("evicted %v, want [k0]", evicted)
	}
	// Touching k1 protects it from the next eviction round.
	if _, ok := c.Get("k1"); !ok {
		t.Fatal("k1 missing")
	}
	c.Put("k4", 4, 30)
	if _, ok := c.Peek("k2"); ok {
		t.Error("k2 survived; LRU order ignored the Get(k1) touch")
	}
	if _, ok := c.Peek("k1"); !ok {
		t.Error("recently used k1 was evicted")
	}
}

func TestLRUReplaceAdjustsSize(t *testing.T) {
	c := New[string](100)
	c.Put("a", "v1", 40)
	c.Put("a", "v2", 70)
	if c.Bytes() != 70 || c.Len() != 1 {
		t.Fatalf("bytes=%d len=%d after replace, want 70/1", c.Bytes(), c.Len())
	}
	if v, _ := c.Get("a"); v != "v2" {
		t.Fatalf("value = %q, want v2", v)
	}
}

func TestLRUOversizeRejected(t *testing.T) {
	c := New[int](50)
	c.Put("small", 1, 20)
	if c.Put("huge", 2, 51) {
		t.Fatal("entry above the whole budget was admitted")
	}
	if _, ok := c.Get("huge"); ok {
		t.Fatal("rejected entry is resident")
	}
	// A rejected replacement must also clear the stale entry it replaces.
	c.Put("small", 3, 51)
	if _, ok := c.Peek("small"); ok {
		t.Error("stale entry survived a size-rejected replacement")
	}
	st := c.Stats()
	if st.Rejected != 2 {
		t.Errorf("rejected = %d, want 2", st.Rejected)
	}
}

func TestLRUZeroBudget(t *testing.T) {
	c := New[int](0)
	if c.Put("a", 1, 1) {
		t.Fatal("zero-budget cache admitted an entry")
	}
	if c.Put("b", 2, 0) {
		// A zero-sized entry technically fits a zero budget, but the
		// package contract says a zero budget disables caching
		// entirely; admitting size-0 entries would grow the map without
		// bound. This pins the documented behavior.
		t.Fatal("zero-budget cache admitted a zero-sized entry")
	}
	if got := c.Stats().Rejected; got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}
}

func TestLRUStatsCounters(t *testing.T) {
	c := New[int](60)
	c.Put("a", 1, 30)
	c.Put("b", 2, 30)
	c.Get("a")    // hit
	c.Get("nope") // miss
	c.Put("c", 3, 30)
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Evictions != 1 {
		t.Errorf("hits/misses/evictions = %d/%d/%d, want 1/1/1", st.Hits, st.Misses, st.Evictions)
	}
	if st.Entries != 2 || st.Bytes != 60 || st.BudgetBytes != 60 {
		t.Errorf("entries/bytes/budget = %d/%d/%d, want 2/60/60", st.Entries, st.Bytes, st.BudgetBytes)
	}
}

func TestLRURemove(t *testing.T) {
	c := New[int](100)
	c.Put("a", 1, 10)
	if !c.Remove("a") || c.Remove("a") {
		t.Fatal("Remove did not report presence correctly")
	}
	if st := c.Stats(); st.Evictions != 0 || st.Bytes != 0 || st.Entries != 0 {
		t.Errorf("stats after Remove: %+v", st)
	}
}

func TestLRURangeOrder(t *testing.T) {
	c := New[int](100)
	c.Put("a", 1, 10)
	c.Put("b", 2, 10)
	c.Put("c", 3, 10)
	c.Get("a") // a becomes most recently used
	var order []string
	c.Range(func(k string, _ int) { order = append(order, k) })
	want := []string{"a", "c", "b"}
	for i := range want {
		if i >= len(order) || order[i] != want[i] {
			t.Fatalf("Range order = %v, want %v", order, want)
		}
	}
	// Range must not perturb recency or the hit/miss counters.
	if st := c.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("Range touched counters: %+v", st)
	}
}

// TestLRUConcurrent hammers the cache from many goroutines (run under
// -race in CI) and then checks the accounting invariants hold.
func TestLRUConcurrent(t *testing.T) {
	c := New[int](1000)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%40)
				if i%3 == 0 {
					c.Put(k, i, int64(10+i%50))
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Bytes > st.BudgetBytes {
		t.Errorf("resident bytes %d exceed budget %d", st.Bytes, st.BudgetBytes)
	}
	if st.Entries != c.Len() {
		t.Errorf("stats entries %d != Len %d", st.Entries, c.Len())
	}
}
