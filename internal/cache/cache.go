// Package cache provides a byte-budgeted, concurrency-safe LRU map for
// long-lived analysis artifacts.
//
// The usherd daemon keys compiled programs and their pipeline stores by
// a content hash of the submitted source; without a bound, sustained
// traffic over distinct sources grows resident memory without limit.
// The LRU bounds it two ways:
//
//   - every entry carries a caller-supplied size (an estimate is fine —
//     usherd uses the pipeline's observed allocation volume, an upper
//     bound on what the artifacts retain), and
//   - inserting past the byte budget evicts least-recently-used entries
//     until the new entry fits. An entry larger than the whole budget is
//     not admitted at all (the request is still served; its artifacts
//     are just not retained).
//
// Hit, miss, eviction and rejection counts are exported for the
// daemon's /stats endpoint. The zero budget means "no caching": every
// Put is rejected, which degenerates the daemon to one-shot behavior.
package cache

import (
	"container/list"
	"sync"
)

// LRU is the byte-budgeted map. The zero value is not usable; call New.
type LRU[V any] struct {
	mu      sync.Mutex
	budget  int64
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	bytes   int64
	onEvict func(key string, value V)

	hits, misses, evictions, rejected int64
}

type lruItem[V any] struct {
	key   string
	value V
	size  int64
}

// Stats is a point-in-time view of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// displaced to enforce the budget (Remove is not an eviction).
	Hits, Misses, Evictions int64
	// Rejected counts Put calls refused because the entry alone exceeds
	// the whole budget.
	Rejected int64
	// Entries and Bytes are the current residency; BudgetBytes the bound.
	Entries     int
	Bytes       int64
	BudgetBytes int64
}

// New returns an LRU bounded to budget bytes of accounted entry size.
func New[V any](budget int64) *LRU[V] {
	if budget < 0 {
		budget = 0
	}
	return &LRU[V]{
		budget: budget,
		ll:     list.New(),
		items:  make(map[string]*list.Element),
	}
}

// SetOnEvict installs a callback invoked for every entry that leaves
// the cache involuntarily: budget evictions, same-key replacements (the
// displaced old value), and stale entries dropped by a rejected
// oversize replacement. It runs under the cache lock, so it must not
// call back into the cache. Call before the cache is shared.
func (c *LRU[V]) SetOnEvict(fn func(key string, value V)) { c.onEvict = fn }

// Get returns the entry for key, marking it most recently used.
func (c *LRU[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.hits++
		c.ll.MoveToFront(el)
		return el.Value.(*lruItem[V]).value, true
	}
	c.misses++
	var zero V
	return zero, false
}

// Peek returns the entry without touching recency or the hit/miss
// counters (used by tests and introspection endpoints).
func (c *LRU[V]) Peek(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		return el.Value.(*lruItem[V]).value, true
	}
	var zero V
	return zero, false
}

// Put inserts or replaces the entry for key with the given accounted
// size, evicting least-recently-used entries until the budget holds.
// Returns false when the entry alone exceeds the budget and was not
// admitted.
func (c *LRU[V]) Put(key string, value V, size int64) bool {
	if size < 0 {
		size = 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.budget || c.budget == 0 {
		c.rejected++
		// A stale smaller entry under the same key must not survive a
		// replacement that was rejected for size.
		if el, ok := c.items[key]; ok {
			c.evict(el)
		}
		return false
	}
	if el, ok := c.items[key]; ok {
		it := el.Value.(*lruItem[V])
		old := it.value
		// Replacement: the budget reflects the new size alone, not the
		// sum, and the displaced value gets the eviction callback so
		// resource-holding values are not silently leaked.
		c.bytes += size - it.size
		it.value, it.size = value, size
		c.ll.MoveToFront(el)
		if c.onEvict != nil {
			c.onEvict(key, old)
		}
	} else {
		el := c.ll.PushFront(&lruItem[V]{key: key, value: value, size: size})
		c.items[key] = el
		c.bytes += size
	}
	for c.bytes > c.budget {
		oldest := c.ll.Back()
		if oldest == nil || oldest.Value.(*lruItem[V]).key == key {
			break
		}
		c.evict(oldest)
	}
	return true
}

// evict removes el and fires the callback. Caller holds c.mu.
func (c *LRU[V]) evict(el *list.Element) {
	it := el.Value.(*lruItem[V])
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.bytes -= it.size
	c.evictions++
	if c.onEvict != nil {
		c.onEvict(it.key, it.value)
	}
}

// Remove deletes the entry for key without counting an eviction.
func (c *LRU[V]) Remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	it := el.Value.(*lruItem[V])
	c.ll.Remove(el)
	delete(c.items, it.key)
	c.bytes -= it.size
	return true
}

// Range calls f for every resident entry, most recently used first,
// without touching recency or counters. f runs under the cache lock and
// must not call back into the cache.
func (c *LRU[V]) Range(f func(key string, value V)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.ll.Front(); el != nil; el = el.Next() {
		it := el.Value.(*lruItem[V])
		f(it.key, it.value)
	}
}

// Len returns the number of resident entries.
func (c *LRU[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Bytes returns the accounted size of the resident entries.
func (c *LRU[V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// Stats returns the current counters.
func (c *LRU[V]) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits: c.hits, Misses: c.misses,
		Evictions: c.evictions, Rejected: c.rejected,
		Entries: len(c.items), Bytes: c.bytes, BudgetBytes: c.budget,
	}
}
