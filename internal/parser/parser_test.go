package parser

import (
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/token"
)

func parseOK(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse("test.c", src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	return prog
}

func TestGlobalVarDecl(t *testing.T) {
	prog := parseOK(t, "int g; int *p; int arr[10];")
	if len(prog.Decls) != 3 {
		t.Fatalf("got %d decls, want 3", len(prog.Decls))
	}
	g := prog.Decls[0].(*ast.VarDecl)
	if g.Name != "g" {
		t.Errorf("name = %q, want g", g.Name)
	}
	if _, ok := g.Type.(*ast.IntTypeExpr); !ok {
		t.Errorf("g type = %T, want IntTypeExpr", g.Type)
	}
	p := prog.Decls[1].(*ast.VarDecl)
	if _, ok := p.Type.(*ast.PointerTypeExpr); !ok {
		t.Errorf("p type = %T, want PointerTypeExpr", p.Type)
	}
	a := prog.Decls[2].(*ast.VarDecl)
	at, ok := a.Type.(*ast.ArrayTypeExpr)
	if !ok || at.Len != 10 {
		t.Errorf("arr type = %#v, want array[10]", a.Type)
	}
}

func TestFuncDecl(t *testing.T) {
	prog := parseOK(t, "int add(int a, int b) { return a + b; }")
	fd := prog.Decls[0].(*ast.FuncDecl)
	if fd.Name != "add" || len(fd.Params) != 2 || fd.Body == nil {
		t.Fatalf("bad func decl: %+v", fd)
	}
	if fd.Params[0].Name != "a" || fd.Params[1].Name != "b" {
		t.Errorf("params = %v", fd.Params)
	}
}

func TestFuncReturningPointer(t *testing.T) {
	prog := parseOK(t, "int *id(int *p) { return p; }")
	fd, ok := prog.Decls[0].(*ast.FuncDecl)
	if !ok {
		t.Fatalf("decl is %T, want FuncDecl", prog.Decls[0])
	}
	if _, ok := fd.Ret.(*ast.PointerTypeExpr); !ok {
		t.Errorf("ret type = %T, want PointerTypeExpr", fd.Ret)
	}
}

func TestFunctionPointerDeclarator(t *testing.T) {
	prog := parseOK(t, "int (*fp)(int, int);")
	vd, ok := prog.Decls[0].(*ast.VarDecl)
	if !ok {
		t.Fatalf("decl is %T, want VarDecl (function pointer variable)", prog.Decls[0])
	}
	pt, ok := vd.Type.(*ast.PointerTypeExpr)
	if !ok {
		t.Fatalf("fp type = %T, want pointer", vd.Type)
	}
	ft, ok := pt.Elem.(*ast.FuncTypeExpr)
	if !ok || len(ft.Params) != 2 {
		t.Fatalf("fp elem = %#v, want func(int,int)", pt.Elem)
	}
}

func TestFunctionPointerParam(t *testing.T) {
	prog := parseOK(t, "int apply(int (*f)(int), int x) { return f(x); }")
	fd := prog.Decls[0].(*ast.FuncDecl)
	if len(fd.Params) != 2 || fd.Params[0].Name != "f" {
		t.Fatalf("params = %+v", fd.Params)
	}
	pt, ok := fd.Params[0].Type.(*ast.PointerTypeExpr)
	if !ok {
		t.Fatalf("param f type = %T, want pointer-to-func", fd.Params[0].Type)
	}
	if _, ok := pt.Elem.(*ast.FuncTypeExpr); !ok {
		t.Fatalf("param f elem = %T, want FuncTypeExpr", pt.Elem)
	}
}

func TestNestedArrays(t *testing.T) {
	prog := parseOK(t, "int m[2][3];")
	vd := prog.Decls[0].(*ast.VarDecl)
	outer := vd.Type.(*ast.ArrayTypeExpr)
	if outer.Len != 2 {
		t.Fatalf("outer len = %d, want 2", outer.Len)
	}
	inner := outer.Elem.(*ast.ArrayTypeExpr)
	if inner.Len != 3 {
		t.Fatalf("inner len = %d, want 3", inner.Len)
	}
}

func TestArrayOfPointers(t *testing.T) {
	prog := parseOK(t, "int *a[3];")
	vd := prog.Decls[0].(*ast.VarDecl)
	at, ok := vd.Type.(*ast.ArrayTypeExpr)
	if !ok || at.Len != 3 {
		t.Fatalf("type = %#v, want array[3]", vd.Type)
	}
	if _, ok := at.Elem.(*ast.PointerTypeExpr); !ok {
		t.Fatalf("elem = %T, want pointer", at.Elem)
	}
}

func TestStructDecl(t *testing.T) {
	prog := parseOK(t, "struct Point { int x; int y; struct Point *next; };")
	sd := prog.Decls[0].(*ast.StructDecl)
	if sd.Name != "Point" || len(sd.Fields) != 3 {
		t.Fatalf("struct = %+v", sd)
	}
	if sd.Fields[2].Name != "next" {
		t.Errorf("field 2 = %+v", sd.Fields[2])
	}
}

func TestPrecedence(t *testing.T) {
	prog := parseOK(t, "int f() { return 1 + 2 * 3; }")
	fd := prog.Decls[0].(*ast.FuncDecl)
	ret := fd.Body.Stmts[0].(*ast.ReturnStmt)
	add := ret.X.(*ast.Binary)
	if add.Op != token.PLUS {
		t.Fatalf("top op = %v, want +", add.Op)
	}
	mul := add.Y.(*ast.Binary)
	if mul.Op != token.STAR {
		t.Fatalf("rhs op = %v, want *", mul.Op)
	}
}

func TestStatements(t *testing.T) {
	src := `
int main() {
  int i;
  int s = 0;
  for (i = 0; i < 10; i++) {
    if (i % 2 == 0) { s += i; } else { continue; }
    while (s > 100) { s -= 1; break; }
  }
  return s;
}`
	prog := parseOK(t, src)
	fd := prog.Decls[0].(*ast.FuncDecl)
	if len(fd.Body.Stmts) != 4 {
		t.Fatalf("got %d stmts, want 4", len(fd.Body.Stmts))
	}
	if _, ok := fd.Body.Stmts[2].(*ast.ForStmt); !ok {
		t.Errorf("stmt 2 = %T, want ForStmt", fd.Body.Stmts[2])
	}
}

func TestCompoundAssignDesugar(t *testing.T) {
	prog := parseOK(t, "int f(int x) { x += 2; return x; }")
	fd := prog.Decls[0].(*ast.FuncDecl)
	es := fd.Body.Stmts[0].(*ast.ExprStmt)
	as, ok := es.X.(*ast.Assign)
	if !ok {
		t.Fatalf("stmt = %T, want Assign", es.X)
	}
	bin, ok := as.RHS.(*ast.Binary)
	if !ok || bin.Op != token.PLUS {
		t.Fatalf("RHS = %#v, want x+2", as.RHS)
	}
	if as.LHS == bin.X {
		t.Error("desugared LHS and RHS share the same AST node; want a clone")
	}
}

func TestIncrementDesugar(t *testing.T) {
	prog := parseOK(t, "int f() { int i = 0; i++; ++i; return i; }")
	fd := prog.Decls[0].(*ast.FuncDecl)
	for _, idx := range []int{1, 2} {
		es := fd.Body.Stmts[idx].(*ast.ExprStmt)
		if _, ok := es.X.(*ast.Assign); !ok {
			t.Errorf("stmt %d = %T, want Assign", idx, es.X)
		}
	}
}

func TestPointerExpressions(t *testing.T) {
	src := `int f() { int x; int *p; p = &x; *p = 5; return *p + p[0]; }`
	prog := parseOK(t, src)
	fd := prog.Decls[0].(*ast.FuncDecl)
	// p = &x
	as := fd.Body.Stmts[2].(*ast.ExprStmt).X.(*ast.Assign)
	amp := as.RHS.(*ast.Unary)
	if amp.Op != token.AMP {
		t.Errorf("op = %v, want &", amp.Op)
	}
	// *p = 5
	as2 := fd.Body.Stmts[3].(*ast.ExprStmt).X.(*ast.Assign)
	star := as2.LHS.(*ast.Unary)
	if star.Op != token.STAR {
		t.Errorf("op = %v, want *", star.Op)
	}
}

func TestFieldAccess(t *testing.T) {
	src := `struct S { int a; }; int f(struct S *p) { struct S s; s.a = 1; return p->a + s.a; }`
	prog := parseOK(t, src)
	fd := prog.Decls[1].(*ast.FuncDecl)
	as := fd.Body.Stmts[1].(*ast.ExprStmt).X.(*ast.Assign)
	fa := as.LHS.(*ast.FieldAccess)
	if fa.Name != "a" || fa.Arrow {
		t.Errorf("field access = %+v", fa)
	}
}

func TestCalls(t *testing.T) {
	src := `int g(int x) { return x; } int main() { int *p = malloc(4); free(p); return g(1) + g(2); }`
	prog := parseOK(t, src)
	if len(prog.Decls) != 2 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
}

func TestSizeof(t *testing.T) {
	src := `struct S { int a; int b; }; int main() { return sizeof(struct S) + sizeof(int*); }`
	prog := parseOK(t, src)
	fd := prog.Decls[1].(*ast.FuncDecl)
	ret := fd.Body.Stmts[0].(*ast.ReturnStmt)
	bin := ret.X.(*ast.Binary)
	if _, ok := bin.X.(*ast.SizeofExpr); !ok {
		t.Errorf("lhs = %T, want SizeofExpr", bin.X)
	}
	sz := bin.Y.(*ast.SizeofExpr)
	if _, ok := sz.T.(*ast.PointerTypeExpr); !ok {
		t.Errorf("sizeof(int*) type = %T, want pointer", sz.T)
	}
}

func TestPrototypes(t *testing.T) {
	prog := parseOK(t, "int helper(int); int helper(int x) { return x; }")
	if len(prog.Decls) != 2 {
		t.Fatalf("decls = %d, want 2", len(prog.Decls))
	}
	proto := prog.Decls[0].(*ast.FuncDecl)
	if proto.Body != nil {
		t.Error("prototype should have nil body")
	}
}

func TestErrorRecovery(t *testing.T) {
	_, err := Parse("bad.c", "int f( { return; }")
	if err == nil {
		t.Fatal("want parse error")
	}
	_, err = Parse("bad2.c", "int x = ;")
	if err == nil {
		t.Fatal("want parse error")
	}
}

func TestErrorHasPosition(t *testing.T) {
	_, err := Parse("pos.c", "int f() {\n  return @;\n}")
	if err == nil {
		t.Fatal("want parse error")
	}
	if !strings.Contains(err.Error(), "pos.c:2") {
		t.Errorf("error should mention pos.c:2, got: %v", err)
	}
}

func TestLogicalOperators(t *testing.T) {
	prog := parseOK(t, "int f(int a, int b) { return a && b || !a; }")
	fd := prog.Decls[0].(*ast.FuncDecl)
	ret := fd.Body.Stmts[0].(*ast.ReturnStmt)
	or := ret.X.(*ast.Binary)
	if or.Op != token.LOR {
		t.Fatalf("top = %v, want ||", or.Op)
	}
}

func TestDeclaratorEdgeCases(t *testing.T) {
	srcs := []string{
		"int (*pa)[4];",            // pointer to array
		"int *(*f)(int (*)(int));", // fp taking abstract fp
		"int (*tbl[3])(int);",      // array of function pointers
		"int f(void);",             // void param list
		"struct S { int (*cb)(int, int); int pad; };",
	}
	for _, src := range srcs {
		if _, err := Parse("d.c", src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct{ name, src string }{
		{"unclosed block", "int main() { return 0;"},
		{"bad array len", "int a[x];"},
		{"missing semi", "int main() { return 0 }"},
		{"stray rbrace", "}"},
		{"empty paren expr", "int main() { return (); }"},
		{"bad field decl", "struct S { int; };"},
		{"decl without name", "int *;"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse("bad.c", tt.src); err == nil {
				t.Errorf("no error for %q", tt.src)
			}
		})
	}
}

func TestForVariants(t *testing.T) {
	srcs := []string{
		"int main() { for (;;) { break; } return 0; }",
		"int main() { int i = 0; for (; i < 3;) { i++; } return i; }",
		"int main() { for (int i = 0; ; i++) { if (i > 2) { break; } } return 0; }",
	}
	for _, src := range srcs {
		if _, err := Parse("f.c", src); err != nil {
			t.Errorf("%q: %v", src, err)
		}
	}
}

func TestNestedStructAccessChain(t *testing.T) {
	src := `
struct A { int x; };
struct B { struct A *a; };
int f(struct B *b) { return b->a->x; }
int main() { return 0; }`
	prog := parseOK(t, src)
	fd := prog.Decls[2].(*ast.FuncDecl)
	ret := fd.Body.Stmts[0].(*ast.ReturnStmt)
	outer := ret.X.(*ast.FieldAccess)
	if outer.Name != "x" || !outer.Arrow {
		t.Fatalf("outer access = %+v", outer)
	}
	inner := outer.X.(*ast.FieldAccess)
	if inner.Name != "a" || !inner.Arrow {
		t.Fatalf("inner access = %+v", inner)
	}
}
