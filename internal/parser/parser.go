// Package parser implements a recursive-descent parser for MiniC.
//
// The grammar is a C subset with full C declarator syntax (pointers,
// arrays, function pointers). Compound assignments (+=, -=) and the ++/--
// operators are desugared to plain assignments during parsing.
package parser

import (
	"strconv"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/diag"
	"github.com/valueflow/usher/internal/lexer"
	"github.com/valueflow/usher/internal/token"
)

// maxNest bounds the nesting depth of statements, expressions and
// declarators. The recursive-descent parser (and the recursive
// typechecker and lowerer behind it) consume native stack per nesting
// level, so unbounded nesting lets a small hostile input crash the
// process with an unrecoverable stack overflow. Real programs nest a
// few dozen levels at most.
const maxNest = 256

// bailout aborts parsing after an unrecoverable diagnostic (nesting
// limit exceeded). It is panicked internally and recovered in Parse.
type bailout struct{}

// Parser parses one MiniC translation unit.
type Parser struct {
	toks  []token.Token
	pos   int
	diags diag.List
	file  string
	prog  *ast.Program
	nest  int
}

// Parse parses src and returns the program. Lexical and syntax errors
// are accumulated as diagnostics and returned as a single error in
// source order; a partial tree is still returned. Parse never panics on
// malformed input.
func Parse(file, src string) (*ast.Program, error) {
	lx := lexer.New(file, src)
	p := &Parser{toks: lx.All(), file: file}
	p.run()
	for _, d := range lx.Errors() {
		p.diags.Add(d)
	}
	return p.prog, p.diags.Err()
}

// run drives parseProgram, recovering the bailout panic raised when the
// nesting limit is hit so that a partial tree and the accumulated
// diagnostics survive.
func (p *Parser) run() {
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(bailout); !ok {
				panic(r)
			}
		}
	}()
	p.parseProgram()
}

// MustParse is Parse for known-good sources (tests, generated workloads);
// it panics on error (a caller contract violation, see package diag).
func MustParse(file, src string) *ast.Program {
	prog, err := Parse(file, src)
	diag.MustNil("parse "+file, err)
	return prog
}

// enter records one nesting level (statement, expression or declarator)
// and aborts the parse when the depth limit is exceeded.
func (p *Parser) enter() {
	p.nest++
	if p.nest > maxNest {
		p.errorf("nesting too deep (limit %d)", maxNest)
		panic(bailout{})
	}
}

func (p *Parser) leave() { p.nest-- }

func (p *Parser) cur() token.Token  { return p.toks[p.pos] }
func (p *Parser) peek() token.Token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *Parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *Parser) advance() token.Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k token.Kind) bool {
	if p.at(k) {
		p.advance()
		return true
	}
	return false
}

func (p *Parser) expect(k token.Kind) token.Token {
	if p.at(k) {
		return p.advance()
	}
	p.errorf("expected %s, found %s", k, p.cur())
	return token.Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(format string, args ...any) {
	p.errorfAt(p.cur().Pos, format, args...)
}

func (p *Parser) errorfAt(pos token.Pos, format string, args ...any) {
	p.diags.Addf(diag.PhaseParse, pos, format, args...)
}

// sync skips tokens until a likely statement/declaration boundary, for
// error recovery.
func (p *Parser) sync() {
	for !p.at(token.EOF) {
		if p.accept(token.SEMI) {
			return
		}
		if p.at(token.RBRACE) {
			return
		}
		p.advance()
	}
}

func (p *Parser) parseProgram() {
	p.prog = &ast.Program{File: p.file}
	for !p.at(token.EOF) {
		start := p.pos
		d := p.parseTopDecl()
		if d != nil {
			p.prog.Decls = append(p.prog.Decls, d)
		}
		if p.pos == start { // no progress: recover
			p.errorf("unexpected token %s", p.cur())
			p.advance()
		}
	}
}

func (p *Parser) parseTopDecl() ast.Decl {
	if p.at(token.INCLUDE) {
		hash := p.advance()
		if !p.at(token.STRING) {
			p.errorf(`expected "name" after #include, found %s`, p.cur())
			p.sync()
			return nil
		}
		path := p.advance()
		if path.Text == "" {
			p.errorfAt(path.Pos, "#include path must not be empty")
			return nil
		}
		return &ast.Include{HashPos: hash.Pos, Path: path.Text, PathPos: path.Pos}
	}
	if p.at(token.KwStruct) && p.peek().Kind == token.IDENT {
		// Either a struct definition or a declaration with struct base type.
		if p.toks[min(p.pos+2, len(p.toks)-1)].Kind == token.LBRACE {
			return p.parseStructDecl()
		}
	}
	base, ok := p.parseBaseType()
	if !ok {
		p.errorf("expected declaration, found %s", p.cur())
		p.sync()
		return nil
	}
	name, ty, params, plainFunc := p.parseDeclarator(base)
	if name == "" {
		p.errorf("expected declarator name")
		p.sync()
		return nil
	}
	namePos := ty.Pos()
	if plainFunc && (p.at(token.LBRACE) || p.at(token.SEMI)) {
		ft := ty.(*ast.FuncTypeExpr)
		fd := &ast.FuncDecl{NamePos: namePos, Ret: ft.Ret, Name: name, Params: params, Variadic: ft.Variadic}
		if p.accept(token.SEMI) {
			return fd // prototype
		}
		for _, pa := range fd.Params {
			if pa.Name == "" {
				p.errorfAt(pa.Pos, "parameter of %s needs a name", name)
			}
		}
		fd.Body = p.parseBlock()
		return fd
	}
	vd := &ast.VarDecl{NamePos: namePos, Type: ty, Name: name}
	if p.accept(token.ASSIGN) {
		vd.Init = p.parseAssignExpr()
	}
	p.expect(token.SEMI)
	return vd
}

func (p *Parser) parseStructDecl() *ast.StructDecl {
	pos := p.expect(token.KwStruct).Pos
	name := p.expect(token.IDENT).Text
	sd := &ast.StructDecl{NamePos: pos, Name: name}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		base, ok := p.parseBaseType()
		if !ok {
			p.errorf("expected field type, found %s", p.cur())
			p.sync()
			continue
		}
		fname, fty, _, _ := p.parseDeclarator(base)
		if fname == "" {
			p.errorf("expected field name")
		}
		sd.Fields = append(sd.Fields, ast.Field{Type: fty, Name: fname, Pos: fty.Pos()})
		p.expect(token.SEMI)
	}
	p.expect(token.RBRACE)
	p.expect(token.SEMI)
	return sd
}

// parseBaseType parses `int`, `void`, or `struct Name`; it returns ok=false
// without consuming input if the current token does not start a type.
func (p *Parser) parseBaseType() (ast.TypeExpr, bool) {
	switch p.cur().Kind {
	case token.KwInt:
		t := p.advance()
		return &ast.IntTypeExpr{P: t.Pos}, true
	case token.KwChar:
		t := p.advance()
		return &ast.CharTypeExpr{P: t.Pos}, true
	case token.KwVoid:
		t := p.advance()
		return &ast.VoidTypeExpr{P: t.Pos}, true
	case token.KwStruct:
		t := p.advance()
		name := p.expect(token.IDENT)
		return &ast.StructTypeExpr{P: t.Pos, Name: name.Text}, true
	}
	return nil, false
}

// typeWrap transforms the "type so far" into the declarator's final type.
type typeWrap func(ast.TypeExpr) ast.TypeExpr

// parseDeclarator parses a (possibly abstract) C declarator applied to
// base. It returns the declared name ("" when abstract), the complete
// type, the parameter list of the outermost function suffix (with names,
// when this is a plain function declarator like `f(int a)`), and whether
// the declarator is a plain function declarator.
func (p *Parser) parseDeclarator(base ast.TypeExpr) (string, ast.TypeExpr, []ast.Param, bool) {
	name, wrap, params, plain := p.declarator()
	return name, wrap(base), params, plain
}

func (p *Parser) declarator() (string, typeWrap, []ast.Param, bool) {
	p.enter()
	defer p.leave()
	stars := 0
	starPos := p.cur().Pos
	for p.accept(token.STAR) {
		stars++
	}
	// Pointer levels build a recursive TypeExpr chain that the checker
	// resolves recursively; cap them like any other nesting.
	if stars > maxNest {
		p.errorfAt(starPos, "too many pointer levels (limit %d)", maxNest)
		panic(bailout{})
	}
	name, direct, params, plain := p.directDeclarator()
	return name, func(t ast.TypeExpr) ast.TypeExpr {
		for i := 0; i < stars; i++ {
			t = &ast.PointerTypeExpr{P: starPos, Elem: t}
		}
		return direct(t)
	}, params, plain
}

func (p *Parser) directDeclarator() (string, typeWrap, []ast.Param, bool) {
	var name string
	inner := func(t ast.TypeExpr) ast.TypeExpr { return t }
	nested := false
	pos := p.cur().Pos

	switch {
	case p.at(token.IDENT):
		name = p.advance().Text
	case p.at(token.LPAREN) && p.nestedDeclaratorAhead():
		p.advance() // (
		var nestedParams []ast.Param
		name, inner, nestedParams, _ = p.declarator()
		_ = nestedParams
		p.expect(token.RPAREN)
		nested = true
	default:
		// Abstract declarator with no name (e.g. parameter `int*`).
	}

	type suffix struct {
		isArray   bool
		arrLen    int64
		fparams   []ast.Param
		ftypes    []ast.TypeExpr
		fvariadic bool
		pos       token.Pos
	}
	var suffixes []suffix
	var firstParams []ast.Param
	for {
		if len(suffixes) > maxNest {
			p.errorf("too many declarator suffixes (limit %d)", maxNest)
			panic(bailout{})
		}
		if p.at(token.LBRACKET) {
			sp := p.advance().Pos
			lenTok := p.expect(token.NUMBER)
			n, err := strconv.ParseInt(lenTok.Text, 10, 64)
			if err != nil {
				p.errorfAt(lenTok.Pos, "bad array length %q", lenTok.Text)
				n = 1
			}
			p.expect(token.RBRACKET)
			suffixes = append(suffixes, suffix{isArray: true, arrLen: n, pos: sp})
			continue
		}
		if p.at(token.LPAREN) {
			sp := p.advance().Pos
			ps, ts, variadic := p.parseParams()
			p.expect(token.RPAREN)
			suffixes = append(suffixes, suffix{fparams: ps, ftypes: ts, fvariadic: variadic, pos: sp})
			if firstParams == nil {
				firstParams = ps
				if firstParams == nil {
					firstParams = []ast.Param{}
				}
			}
			continue
		}
		break
	}

	plain := !nested && name != "" && len(suffixes) == 1 && !suffixes[0].isArray
	wrap := func(t ast.TypeExpr) ast.TypeExpr {
		for i := len(suffixes) - 1; i >= 0; i-- {
			s := suffixes[i]
			if s.isArray {
				t = &ast.ArrayTypeExpr{P: s.pos, Elem: t, Len: s.arrLen}
			} else {
				t = &ast.FuncTypeExpr{P: s.pos, Ret: t, Params: s.ftypes, Variadic: s.fvariadic}
			}
		}
		return inner(t)
	}
	_ = pos
	return name, wrap, firstParams, plain
}

// nestedDeclaratorAhead reports whether the '(' at the current position
// starts a nested declarator rather than a function parameter list.
func (p *Parser) nestedDeclaratorAhead() bool {
	switch p.peek().Kind {
	case token.STAR, token.IDENT, token.LPAREN:
		return true
	}
	return false
}

// parseParams parses a parameter list (already inside the parens). It
// returns named params (for definitions), bare types (for types), and
// whether the list ends with a variadic `...` marker.
func (p *Parser) parseParams() ([]ast.Param, []ast.TypeExpr, bool) {
	var ps []ast.Param
	var ts []ast.TypeExpr
	if p.at(token.RPAREN) {
		return ps, ts, false
	}
	if p.at(token.KwVoid) && p.peek().Kind == token.RPAREN {
		p.advance()
		return ps, ts, false
	}
	for {
		if p.at(token.ELLIPSIS) {
			t := p.advance()
			if len(ps) == 0 {
				p.errorfAt(t.Pos, "a variadic parameter list needs at least one named parameter before ...")
			}
			if !p.at(token.RPAREN) {
				p.errorf("... must be the last parameter")
			}
			return ps, ts, true
		}
		base, ok := p.parseBaseType()
		if !ok {
			p.errorf("expected parameter type, found %s", p.cur())
			return ps, ts, false
		}
		name, ty, _, _ := p.parseDeclarator(base)
		ps = append(ps, ast.Param{Type: ty, Name: name, Pos: ty.Pos()})
		ts = append(ts, ty)
		if !p.accept(token.COMMA) {
			return ps, ts, false
		}
	}
}

func (p *Parser) parseBlock() *ast.Block {
	b := &ast.Block{P: p.cur().Pos}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) {
		start := p.pos
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.pos == start {
			p.errorf("unexpected token %s in block", p.cur())
			p.advance()
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *Parser) startsType() bool {
	switch p.cur().Kind {
	case token.KwInt, token.KwChar, token.KwVoid:
		return true
	case token.KwStruct:
		return true
	}
	return false
}

func (p *Parser) parseStmt() ast.Stmt {
	p.enter()
	defer p.leave()
	switch p.cur().Kind {
	case token.LBRACE:
		return p.parseBlock()
	case token.SEMI:
		t := p.advance()
		return &ast.EmptyStmt{P: t.Pos}
	case token.KwIf:
		return p.parseIf()
	case token.KwWhile:
		return p.parseWhile()
	case token.KwFor:
		return p.parseFor()
	case token.KwReturn:
		t := p.advance()
		rs := &ast.ReturnStmt{P: t.Pos}
		if !p.at(token.SEMI) {
			rs.X = p.parseExpr()
		}
		p.expect(token.SEMI)
		return rs
	case token.KwBreak:
		t := p.advance()
		p.expect(token.SEMI)
		return &ast.BreakStmt{P: t.Pos}
	case token.KwContinue:
		t := p.advance()
		p.expect(token.SEMI)
		return &ast.ContinueStmt{P: t.Pos}
	}
	if p.startsType() {
		d := p.parseLocalDecl()
		return &ast.DeclStmt{Decl: d}
	}
	x := p.parseExpr()
	p.expect(token.SEMI)
	return &ast.ExprStmt{X: x}
}

func (p *Parser) parseLocalDecl() *ast.VarDecl {
	base, _ := p.parseBaseType()
	name, ty, _, _ := p.parseDeclarator(base)
	if name == "" {
		p.errorf("expected variable name")
		name = "_err"
	}
	vd := &ast.VarDecl{NamePos: ty.Pos(), Type: ty, Name: name}
	if p.accept(token.ASSIGN) {
		vd.Init = p.parseAssignExpr()
	}
	p.expect(token.SEMI)
	return vd
}

func (p *Parser) parseIf() *ast.IfStmt {
	t := p.expect(token.KwIf)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	s := &ast.IfStmt{P: t.Pos, Cond: cond, Then: p.parseStmt()}
	if p.accept(token.KwElse) {
		s.Else = p.parseStmt()
	}
	return s
}

func (p *Parser) parseWhile() *ast.WhileStmt {
	t := p.expect(token.KwWhile)
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	return &ast.WhileStmt{P: t.Pos, Cond: cond, Body: p.parseStmt()}
}

func (p *Parser) parseFor() *ast.ForStmt {
	t := p.expect(token.KwFor)
	p.expect(token.LPAREN)
	s := &ast.ForStmt{P: t.Pos}
	if !p.at(token.SEMI) {
		if p.startsType() {
			s.Init = &ast.DeclStmt{Decl: p.parseLocalDecl()} // consumes ';'
		} else {
			s.Init = &ast.ExprStmt{X: p.parseExpr()}
			p.expect(token.SEMI)
		}
	} else {
		p.expect(token.SEMI)
	}
	if !p.at(token.SEMI) {
		s.Cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if !p.at(token.RPAREN) {
		s.Post = p.parseExpr()
	}
	p.expect(token.RPAREN)
	s.Body = p.parseStmt()
	return s
}

// Expressions, by precedence climbing.

func (p *Parser) parseExpr() ast.Expr { return p.parseAssignExpr() }

func (p *Parser) parseAssignExpr() ast.Expr {
	lhs := p.parseBinary(0)
	switch p.cur().Kind {
	case token.ASSIGN:
		t := p.advance()
		rhs := p.parseAssignExpr()
		return &ast.Assign{P: t.Pos, LHS: lhs, RHS: rhs}
	case token.PLUSASSIGN, token.MINUSASSIGN:
		t := p.advance()
		op := token.PLUS
		if t.Kind == token.MINUSASSIGN {
			op = token.MINUS
		}
		rhs := p.parseAssignExpr()
		return &ast.Assign{P: t.Pos, LHS: lhs,
			RHS: &ast.Binary{P: t.Pos, Op: op, X: cloneExpr(lhs), Y: rhs}}
	}
	return lhs
}

// binaryPrec returns the precedence of a binary operator, or -1.
func binaryPrec(k token.Kind) int {
	switch k {
	case token.LOR:
		return 1
	case token.LAND:
		return 2
	case token.PIPE:
		return 3
	case token.CARET:
		return 4
	case token.AMP:
		return 5
	case token.EQ, token.NEQ:
		return 6
	case token.LT, token.GT, token.LEQ, token.GEQ:
		return 7
	case token.SHL, token.SHR:
		return 8
	case token.PLUS, token.MINUS:
		return 9
	case token.STAR, token.SLASH, token.PERCENT:
		return 10
	}
	return -1
}

func (p *Parser) parseBinary(minPrec int) ast.Expr {
	lhs := p.parseUnary()
	for {
		prec := binaryPrec(p.cur().Kind)
		if prec < 0 || prec < minPrec {
			return lhs
		}
		t := p.advance()
		rhs := p.parseBinary(prec + 1)
		lhs = &ast.Binary{P: t.Pos, Op: t.Kind, X: lhs, Y: rhs}
	}
}

// parseUnary guards the nesting depth for all expression forms: every
// level of expression nesting (parenthesis, unary operator, binary
// operand, call argument, index) re-enters it.
func (p *Parser) parseUnary() ast.Expr {
	p.enter()
	defer p.leave()
	switch p.cur().Kind {
	case token.STAR, token.AMP, token.MINUS, token.NOT, token.TILDE:
		t := p.advance()
		return &ast.Unary{P: t.Pos, Op: t.Kind, X: p.parseUnary()}
	case token.PLUSPLUS, token.MINUSMINUS:
		// Prefix ++x desugars to x = x + 1 (value semantics of the result
		// are not needed in statement position, which is all MiniC allows).
		t := p.advance()
		x := p.parseUnary()
		op := token.PLUS
		if t.Kind == token.MINUSMINUS {
			op = token.MINUS
		}
		return &ast.Assign{P: t.Pos, LHS: x,
			RHS: &ast.Binary{P: t.Pos, Op: op, X: cloneExpr(x), Y: &ast.NumberLit{P: t.Pos, Value: 1}}}
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() ast.Expr {
	x := p.parsePrimary()
	for {
		switch p.cur().Kind {
		case token.LBRACKET:
			t := p.advance()
			idx := p.parseExpr()
			p.expect(token.RBRACKET)
			x = &ast.Index{P: t.Pos, X: x, Idx: idx}
		case token.DOT:
			t := p.advance()
			name := p.expect(token.IDENT).Text
			x = &ast.FieldAccess{P: t.Pos, X: x, Name: name}
		case token.ARROW:
			t := p.advance()
			name := p.expect(token.IDENT).Text
			x = &ast.FieldAccess{P: t.Pos, X: x, Name: name, Arrow: true}
		case token.LPAREN:
			t := p.advance()
			call := &ast.Call{P: t.Pos, Fun: x}
			if !p.at(token.RPAREN) {
				for {
					call.Args = append(call.Args, p.parseAssignExpr())
					if !p.accept(token.COMMA) {
						break
					}
				}
			}
			p.expect(token.RPAREN)
			x = call
		case token.PLUSPLUS, token.MINUSMINUS:
			// Postfix x++ in statement position: same desugaring as prefix.
			t := p.advance()
			op := token.PLUS
			if t.Kind == token.MINUSMINUS {
				op = token.MINUS
			}
			x = &ast.Assign{P: t.Pos, LHS: x,
				RHS: &ast.Binary{P: t.Pos, Op: op, X: cloneExpr(x), Y: &ast.NumberLit{P: t.Pos, Value: 1}}}
		default:
			return x
		}
	}
}

func (p *Parser) parsePrimary() ast.Expr {
	switch p.cur().Kind {
	case token.NUMBER:
		t := p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errorfAt(t.Pos, "bad number %q", t.Text)
		}
		return &ast.NumberLit{P: t.Pos, Value: v}
	case token.STRING:
		t := p.advance()
		return &ast.StringLit{P: t.Pos, Value: t.Text}
	case token.CHAR:
		t := p.advance()
		v := int64(0)
		if len(t.Text) > 0 {
			v = int64(t.Text[0])
		}
		return &ast.NumberLit{P: t.Pos, Value: v}
	case token.IDENT:
		t := p.advance()
		return &ast.Ident{P: t.Pos, Name: t.Text}
	case token.LPAREN:
		p.advance()
		x := p.parseExpr()
		p.expect(token.RPAREN)
		return x
	case token.KwSizeof:
		t := p.advance()
		p.expect(token.LPAREN)
		base, ok := p.parseBaseType()
		if !ok {
			p.errorf("sizeof requires a type")
			p.expect(token.RPAREN)
			return &ast.NumberLit{P: t.Pos, Value: 1}
		}
		_, ty, _, _ := p.parseDeclarator(base)
		p.expect(token.RPAREN)
		return &ast.SizeofExpr{P: t.Pos, T: ty}
	}
	p.errorf("expected expression, found %s", p.cur())
	t := p.advance()
	return &ast.NumberLit{P: t.Pos, Value: 0}
}

// cloneExpr deep-copies an lvalue expression so desugared compound
// assignments do not share AST nodes between the LHS and RHS.
func cloneExpr(e ast.Expr) ast.Expr {
	switch e := e.(type) {
	case *ast.NumberLit:
		c := *e
		return &c
	case *ast.StringLit:
		c := *e
		return &c
	case *ast.Ident:
		c := *e
		return &c
	case *ast.Unary:
		return &ast.Unary{P: e.P, Op: e.Op, X: cloneExpr(e.X)}
	case *ast.Binary:
		return &ast.Binary{P: e.P, Op: e.Op, X: cloneExpr(e.X), Y: cloneExpr(e.Y)}
	case *ast.Index:
		return &ast.Index{P: e.P, X: cloneExpr(e.X), Idx: cloneExpr(e.Idx)}
	case *ast.FieldAccess:
		return &ast.FieldAccess{P: e.P, X: cloneExpr(e.X), Name: e.Name, Arrow: e.Arrow}
	case *ast.Call:
		c := &ast.Call{P: e.P, Fun: cloneExpr(e.Fun)}
		for _, a := range e.Args {
			c.Args = append(c.Args, cloneExpr(a))
		}
		return c
	case *ast.Assign:
		return &ast.Assign{P: e.P, LHS: cloneExpr(e.LHS), RHS: cloneExpr(e.RHS)}
	case *ast.SizeofExpr:
		c := *e
		return &c
	}
	return e
}
