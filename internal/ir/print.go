package ir

import (
	"fmt"
	"strings"
)

// Print renders the whole program as text, for debugging and golden tests.
func Print(p *Program) string {
	var b strings.Builder
	for _, g := range p.Globals {
		init := "F"
		if g.ZeroInit {
			init = "T"
		}
		fmt.Fprintf(&b, "global %s [%d cells, init=%s]\n", g, g.Size, init)
	}
	if len(p.Globals) > 0 {
		b.WriteString("\n")
	}
	for i, f := range p.Funcs {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(PrintFunc(f))
	}
	return b.String()
}

// PrintFunc renders one function as text.
func PrintFunc(f *Function) string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(p.String())
	}
	b.WriteString(")")
	if !f.HasBody {
		b.WriteString(" external\n")
		return b.String()
	}
	b.WriteString(" {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "%s:", blk)
		if len(blk.Preds) > 0 {
			preds := make([]string, len(blk.Preds))
			for i, p := range blk.Preds {
				preds[i] = p.String()
			}
			fmt.Fprintf(&b, " ; preds: %s", strings.Join(preds, ", "))
		}
		b.WriteString("\n")
		for _, in := range blk.Instrs {
			fmt.Fprintf(&b, "  l%-3d %s\n", in.Label(), in)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
