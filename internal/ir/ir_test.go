package ir

import (
	"strings"
	"testing"
)

// buildDiamond constructs a minimal function with a diamond CFG by hand:
//
//	entry -> branch(c) -> left/right -> join -> ret phi
func buildDiamond() (*Program, *Function) {
	p := NewProgram()
	fn := &Function{Name: "f", HasBody: true}
	p.AddFunc(fn)
	c := fn.NewReg("c")
	fn.Params = append(fn.Params, c)

	entry := fn.NewBlock("entry")
	left := fn.NewBlock("left")
	right := fn.NewBlock("right")
	join := fn.NewBlock("join")

	entry.Append(NewBranch(c, left, right))
	l := fn.NewReg("l")
	left.Append(NewCopy(l, IntConst(1)))
	left.Append(NewJump(join))
	r := fn.NewReg("r")
	right.Append(NewCopy(r, IntConst(2)))
	right.Append(NewJump(join))
	x := fn.NewReg("x")
	join.Append(NewPhi(x, []Value{l, r}, []*Block{left, right}))
	join.Append(NewRet(x))
	ComputeCFG(fn)
	return p, fn
}

func TestVerifyAcceptsDiamond(t *testing.T) {
	p, _ := buildDiamond()
	if err := Verify(p); err != nil {
		t.Fatalf("verify: %v", err)
	}
}

func TestVerifyRejectsDoubleDefine(t *testing.T) {
	p, fn := buildDiamond()
	// Redefine x in the entry block.
	x := fn.Blocks[3].Instrs[0].(*Phi).Dst
	bad := NewCopy(x, IntConst(9))
	fn.Blocks[0].InsertFront(bad)
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "defined twice") {
		t.Fatalf("verify = %v, want double-definition error", err)
	}
}

func TestVerifyRejectsUnterminatedBlock(t *testing.T) {
	p, fn := buildDiamond()
	join := fn.Blocks[3]
	join.Instrs = join.Instrs[:1] // drop the ret
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "not terminated") {
		t.Fatalf("verify = %v, want termination error", err)
	}
}

func TestVerifyRejectsMisplacedPhi(t *testing.T) {
	p, fn := buildDiamond()
	join := fn.Blocks[3]
	phi := join.Instrs[0]
	// Move the phi after the return.
	join.Instrs = []Instr{join.Instrs[1], phi}
	err := Verify(p)
	if err == nil {
		t.Fatal("verify accepted a phi behind a terminator")
	}
}

func TestVerifyRejectsWrongPhiPred(t *testing.T) {
	p, fn := buildDiamond()
	phi := fn.Blocks[3].Instrs[0].(*Phi)
	phi.Preds[0] = fn.Blocks[0] // entry is not a predecessor of join
	if err := Verify(p); err == nil || !strings.Contains(err.Error(), "not a predecessor") {
		t.Fatalf("verify = %v, want phi predecessor error", err)
	}
}

func TestPhiIncoming(t *testing.T) {
	_, fn := buildDiamond()
	phi := fn.Blocks[3].Instrs[0].(*Phi)
	left, right := fn.Blocks[1], fn.Blocks[2]
	if phi.IncomingIndex(left) != 0 || phi.IncomingIndex(right) != 1 {
		t.Fatalf("incoming indices wrong: %d/%d",
			phi.IncomingIndex(left), phi.IncomingIndex(right))
	}
	if phi.IncomingIndex(fn.Blocks[0]) != -1 {
		t.Fatal("entry should have no incoming index")
	}
	phi.RemoveIncoming(left)
	if len(phi.Vals) != 1 || phi.IncomingIndex(right) != 0 {
		t.Fatalf("RemoveIncoming broken: %v", phi)
	}
}

func TestComputeCFG(t *testing.T) {
	_, fn := buildDiamond()
	entry, left, right, join := fn.Blocks[0], fn.Blocks[1], fn.Blocks[2], fn.Blocks[3]
	if len(entry.Succs) != 2 || entry.Succs[0] != left || entry.Succs[1] != right {
		t.Fatalf("entry succs = %v", entry.Succs)
	}
	if len(join.Preds) != 2 {
		t.Fatalf("join preds = %v", join.Preds)
	}
	if len(entry.Preds) != 0 {
		t.Fatalf("entry preds = %v", entry.Preds)
	}
}

func TestPrintContainsStructure(t *testing.T) {
	p, _ := buildDiamond()
	g := p.NewObject("g", 2, ObjGlobal)
	g.ZeroInit = true
	p.Globals = append(p.Globals, g)
	txt := Print(p)
	for _, want := range []string{"global @g", "func f", "branch", "phi", "ret"} {
		if !strings.Contains(txt, want) {
			t.Errorf("print missing %q:\n%s", want, txt)
		}
	}
}

func TestObjectFields(t *testing.T) {
	p := NewProgram()
	s := p.NewObject("s", 3, ObjStack)
	if s.Collapsed() {
		t.Error("multi-cell object should start field-sensitive")
	}
	if s.NumFields() != 3 || s.FieldIndex(2) != 2 {
		t.Errorf("fields = %d, idx(2) = %d", s.NumFields(), s.FieldIndex(2))
	}
	s.Collapse()
	if !s.Collapsed() || s.NumFields() != 1 || s.FieldIndex(2) != 0 {
		t.Error("collapse did not flatten fields")
	}
	scalar := p.NewObject("x", 1, ObjStack)
	if !scalar.Collapsed() {
		t.Error("scalars are single-field by definition")
	}
	if scalar.FieldIndex(5) != 0 {
		t.Error("out-of-range field index should clamp to 0")
	}
}

func TestIsCritical(t *testing.T) {
	p := NewProgram()
	fn := &Function{Name: "f", HasBody: true}
	p.AddFunc(fn)
	x := fn.NewReg("x")
	addr := fn.NewReg("a")

	tests := []struct {
		in   Instr
		want bool
	}{
		{NewLoad(fn.NewReg(""), addr), true},
		{NewStore(addr, IntConst(1)), true},
		{NewBranch(x, nil, nil), true},
		{NewCall(nil, nil, []Value{x}, BuiltinPrint), true},
		{NewCall(nil, nil, []Value{addr}, BuiltinFree), true},
		{NewCall(fn.NewReg(""), nil, nil, BuiltinInput), false},
		{NewCopy(fn.NewReg(""), x), false},
		{NewBinOp(fn.NewReg(""), OpAdd, x, x), false},
		{NewJump(nil), false},
		{NewRet(x), false},
		{NewCall(fn.NewReg(""), x, nil, NotBuiltin), true}, // indirect call
		{NewCall(fn.NewReg(""), &FuncValue{Fn: fn}, nil, NotBuiltin), false},
	}
	for i, tt := range tests {
		if _, got := IsCritical(tt.in); got != tt.want {
			t.Errorf("case %d (%T): critical = %v, want %v", i, tt.in, got, tt.want)
		}
	}
}

func TestOpString(t *testing.T) {
	if OpAdd.String() != "add" || OpGe.String() != "ge" {
		t.Errorf("op names wrong: %s %s", OpAdd, OpGe)
	}
	if !OpEq.IsComparison() || OpAdd.IsComparison() {
		t.Error("IsComparison wrong")
	}
}

func TestBlockInsertAt(t *testing.T) {
	_, fn := buildDiamond()
	left := fn.Blocks[1]
	n := len(left.Instrs)
	cp := NewCopy(fn.NewReg("m"), IntConst(5))
	left.InsertAt(1, cp)
	if len(left.Instrs) != n+1 || left.Instrs[1] != cp {
		t.Fatalf("InsertAt misplaced: %v", left.Instrs)
	}
	if cp.Parent() != left {
		t.Fatal("parent not set")
	}
}

func TestRemoveInstrs(t *testing.T) {
	_, fn := buildDiamond()
	left := fn.Blocks[1]
	left.RemoveInstrs(func(in Instr) bool {
		_, isCopy := in.(*Copy)
		return isCopy
	})
	if len(left.Instrs) != 1 {
		t.Fatalf("instrs = %v", left.Instrs)
	}
}
