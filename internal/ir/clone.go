package ir

import (
	"fmt"

	"github.com/valueflow/usher/internal/token"
)

// This file provides deep cloning of functions and objects between
// programs. The module linker (package module) compiles each module into
// its own immutable per-module Program, cached by content hash; linking
// clones every module's contribution into one fresh whole-program
// Program so later passes (pointer analysis collapses objects, mem2reg
// already ran per module) can never mutate a cached artifact.

// CloneGlobal copies a global object into p with a fresh program-local
// ID. Analysis-time state (Site, Fn, CloneOf) does not exist on globals
// and is not copied.
func CloneGlobal(p *Program, o *Object) *Object {
	n := &Object{
		Name:     o.Name,
		Size:     o.Size,
		Kind:     o.Kind,
		ZeroInit: o.ZeroInit,
		InitVal:  o.InitVal,
		InitVals: cloneInitVals(o.InitVals),
		Pinned:   o.Pinned,

		fieldSensitive: o.fieldSensitive,
		collapsed:      o.collapsed,
	}
	n.ID = p.nextObjID
	p.nextObjID++
	return n
}

func cloneInitVals(vals []int64) []int64 {
	if vals == nil {
		return nil
	}
	out := make([]int64, len(vals))
	copy(out, vals)
	return out
}

// CloneBody deep-copies the body of src into dst, an empty function
// shell already registered with the destination program. Register IDs,
// block IDs and instruction labels are preserved, so per-function
// artifacts keyed by (function name, label) — warning sites, plan
// entries — are identical between the clone and the original.
//
// Cross-function references are resolved by name: every function
// mentioned by src (callees, function-pointer constants) must already
// have a shell in dst's program, and globalOf must map each source
// global object to its canonical object in the destination program.
// CloneBody panics if either lookup fails — callers (the linker) create
// all shells and globals up front.
func CloneBody(dst, src *Function, globalOf func(*Object) *Object) {
	c := &cloner{
		dst:      dst,
		regs:     make(map[*Register]*Register),
		blocks:   make(map[*Block]*Block),
		globalOf: globalOf,
	}
	for _, p := range src.Params {
		dst.Params = append(dst.Params, c.reg(p))
	}
	for _, sb := range src.Blocks {
		nb := &Block{ID: sb.ID, Name: sb.Name, Fn: dst}
		dst.Blocks = append(dst.Blocks, nb)
		c.blocks[sb] = nb
	}
	for _, sb := range src.Blocks {
		nb := c.blocks[sb]
		for _, in := range sb.Instrs {
			nb.Instrs = append(nb.Instrs, c.instr(in))
		}
	}
	dst.Pos = src.Pos
	dst.HasBody = src.HasBody
	dst.nextReg = src.nextReg
	dst.nextBlock = src.nextBlock
	dst.nextInstr = src.nextInstr
	ComputeCFG(dst)
}

type cloner struct {
	dst      *Function
	regs     map[*Register]*Register
	blocks   map[*Block]*Block
	globalOf func(*Object) *Object
}

// reg returns the clone of r, creating it on first use (operands may
// reference registers whose defining instruction clones later, e.g.
// loop phis).
func (c *cloner) reg(r *Register) *Register {
	if r == nil {
		return nil
	}
	n, ok := c.regs[r]
	if !ok {
		n = &Register{ID: r.ID, Name: r.Name, Fn: c.dst}
		c.regs[r] = n
	}
	return n
}

func (c *cloner) val(v Value) Value {
	switch v := v.(type) {
	case nil:
		return nil
	case *Register:
		return c.reg(v)
	case *Const:
		return v // immutable, shared
	case *FuncValue:
		fn := c.dst.Prog.FuncByName(v.Fn.Name)
		if fn == nil {
			panic(fmt.Sprintf("ir: clone of %s references function %s with no shell in the destination program", c.dst.Name, v.Fn.Name))
		}
		return &FuncValue{Fn: fn}
	case *GlobalAddr:
		obj := c.globalOf(v.Obj)
		if obj == nil {
			panic(fmt.Sprintf("ir: clone of %s references global %s with no canonical object in the destination program", c.dst.Name, v.Obj.Name))
		}
		return &GlobalAddr{Obj: obj}
	}
	panic(fmt.Sprintf("ir: clone: unknown value %T", v))
}

func (c *cloner) vals(vs []Value) []Value {
	if vs == nil {
		return nil
	}
	out := make([]Value, len(vs))
	for i, v := range vs {
		out[i] = c.val(v)
	}
	return out
}

// cloneAllocObject copies a stack/heap object owned by an allocation
// site. Site is rebound by NewAlloc; CloneOf/CloneSite are
// pointer-analysis artifacts that do not exist at clone time.
func (c *cloner) cloneAllocObject(o *Object) *Object {
	p := c.dst.Prog
	n := &Object{
		Name:     o.Name,
		Size:     o.Size,
		Kind:     o.Kind,
		ZeroInit: o.ZeroInit,
		InitVal:  o.InitVal,
		InitVals: cloneInitVals(o.InitVals),
		Pinned:   o.Pinned,
		Fn:       c.dst,

		fieldSensitive: o.fieldSensitive,
		collapsed:      o.collapsed,
	}
	n.ID = p.nextObjID
	p.nextObjID++
	return n
}

func (c *cloner) instr(in Instr) Instr {
	var out Instr
	switch in := in.(type) {
	case *Alloc:
		a := NewAlloc(c.reg(in.Dst), c.cloneAllocObject(in.Obj))
		a.DynSize = c.val(in.DynSize)
		out = a
	case *BinOp:
		out = NewBinOp(c.reg(in.Dst), in.Op, c.val(in.X), c.val(in.Y))
	case *Copy:
		out = NewCopy(c.reg(in.Dst), c.val(in.Src))
	case *Load:
		out = NewLoad(c.reg(in.Dst), c.val(in.Addr))
	case *Store:
		out = NewStore(c.val(in.Addr), c.val(in.Val))
	case *MemSet:
		out = NewMemSet(c.val(in.To), c.val(in.Val), c.val(in.Len))
	case *MemCopy:
		out = NewMemCopy(c.val(in.To), c.val(in.From), c.val(in.Len))
	case *FieldAddr:
		out = NewFieldAddr(c.reg(in.Dst), c.val(in.Base), in.Off)
	case *IndexAddr:
		out = NewIndexAddr(c.reg(in.Dst), c.val(in.Base), c.val(in.Idx))
	case *Call:
		out = NewCall(c.reg(in.Dst), c.val(in.Callee), c.vals(in.Args), in.Builtin)
	case *Ret:
		out = NewRet(c.val(in.Val))
	case *Jump:
		out = NewJump(c.blocks[in.Target])
	case *Branch:
		out = NewBranch(c.val(in.Cond), c.blocks[in.Then], c.blocks[in.Else])
	case *Phi:
		preds := make([]*Block, len(in.Preds))
		for i, b := range in.Preds {
			preds[i] = c.blocks[b]
		}
		out = NewPhi(c.reg(in.Dst), c.vals(in.Vals), preds)
	default:
		panic(fmt.Sprintf("ir: clone: unknown instruction %T", in))
	}
	Adopt(out, c.blocks[in.Parent()], in.Label())
	out.(interface{ SetPos(token.Pos) }).SetPos(in.Pos())
	return out
}
