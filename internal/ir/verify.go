package ir

import (
	"errors"
	"fmt"
)

// Verify checks structural well-formedness of the program: every block
// ends with exactly one terminator, registers have unique definitions that
// match their Def pointers, phi arities match predecessor counts, and
// operands are defined within the same function. It does not check SSA
// dominance (package ssa does, once SSA is established).
func Verify(p *Program) error {
	var errs []error
	for _, f := range p.Funcs {
		if !f.HasBody {
			continue
		}
		errs = append(errs, verifyFunc(f)...)
	}
	return errors.Join(errs...)
}

func containsBlockPtr(s []*Block, b *Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

func verifyFunc(f *Function) []error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("%s: %s", f.Name, fmt.Sprintf(format, args...)))
	}
	if len(f.Blocks) == 0 {
		bad("function with body has no blocks")
		return errs
	}

	defs := make(map[*Register]Instr)
	for _, p := range f.Params {
		defs[p] = nil
	}
	labels := make(map[int]bool)
	for _, b := range f.Blocks {
		if b.Fn != f {
			bad("block %s has wrong parent", b)
		}
		term := b.Terminator()
		if term == nil {
			bad("block %s is not terminated", b)
		}
		for i, in := range b.Instrs {
			if labels[in.Label()] {
				bad("duplicate instruction label l%d", in.Label())
			}
			labels[in.Label()] = true
			if in.Parent() != b {
				bad("instruction %s has wrong parent block", in)
			}
			switch in.(type) {
			case *Jump, *Branch, *Ret:
				if i != len(b.Instrs)-1 {
					bad("terminator %s not at end of block %s", in, b)
				}
			case *Phi:
				// Phis must be grouped at the block front.
				if i > 0 {
					if _, prevPhi := b.Instrs[i-1].(*Phi); !prevPhi {
						bad("phi %s not at front of block %s", in, b)
					}
				}
			}
			if dst := in.Defines(); dst != nil {
				if prev, dup := defs[dst]; dup {
					bad("register %s defined twice (by %v and %s)", dst, prev, in)
				}
				defs[dst] = in
				if dst.Def != in {
					bad("register %s Def pointer does not match defining instruction %s", dst, in)
				}
				if dst.Fn != f {
					bad("register %s belongs to another function", dst)
				}
			}
			if phi, ok := in.(*Phi); ok {
				if len(phi.Vals) != len(phi.Preds) {
					bad("phi %s has %d values for %d incoming blocks", phi, len(phi.Vals), len(phi.Preds))
				}
				if len(phi.Preds) != len(b.Preds) {
					bad("phi %s has %d incoming blocks, block %s has %d preds",
						phi, len(phi.Preds), b, len(b.Preds))
				}
				for _, p := range phi.Preds {
					if !containsBlockPtr(b.Preds, p) {
						bad("phi %s names %s, which is not a predecessor of %s", phi, p, b)
					}
				}
			}
		}
	}
	// All register operands must be defined somewhere in the function.
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, op := range in.Operands() {
				r, ok := op.(*Register)
				if !ok {
					continue
				}
				if _, defined := defs[r]; !defined {
					bad("operand %s of %s has no definition", r, in)
				}
			}
		}
	}
	// CFG consistency.
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			found := false
			for _, p := range s.Preds {
				if p == b {
					found = true
				}
			}
			if !found {
				bad("edge %s -> %s missing from preds", b, s)
			}
		}
	}
	return errs
}
