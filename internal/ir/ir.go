// Package ir defines the intermediate representation that the Usher
// analysis operates on.
//
// The IR mirrors the paper's TinyC/LLVM-IR model (§2.1): values are either
// top-level variables (virtual registers, accessed directly, in Var_TL) or
// address-taken variables (abstract memory objects, accessed only through
// loads and stores, in Var_AT). Lowering from MiniC produces code in the
// Clang -O0 style, where every source variable lives in memory; the
// mem2reg pass in package ssa then promotes non-address-taken scalars to
// registers, after which every register is defined exactly once (SSA).
//
// All scalars occupy one abstract cell; object sizes and field offsets are
// measured in cells.
package ir

import (
	"fmt"

	"github.com/valueflow/usher/internal/token"
)

// Program is a whole compiled program: the unit of the interprocedural
// analysis.
type Program struct {
	Funcs   []*Function
	Globals []*Object
	byName  map[string]*Function

	nextObjID int
}

// NewProgram returns an empty program.
func NewProgram() *Program {
	return &Program{byName: make(map[string]*Function)}
}

// FuncByName returns the named function, or nil.
func (p *Program) FuncByName(name string) *Function { return p.byName[name] }

// AddFunc registers fn with the program.
func (p *Program) AddFunc(fn *Function) {
	fn.Prog = p
	p.Funcs = append(p.Funcs, fn)
	p.byName[fn.Name] = fn
}

// NewObject creates a fresh abstract object owned by the program.
func (p *Program) NewObject(name string, size int, kind ObjKind) *Object {
	o := &Object{ID: p.nextObjID, Name: name, Size: size, Kind: kind}
	p.nextObjID++
	if size > 1 {
		// Multi-cell objects start field-sensitive; Collapse is called for
		// arrays and pointer-arithmetic targets.
		o.fieldSensitive = true
	}
	return o
}

// Objects returns all abstract objects in the program: globals plus every
// allocation site's object, in deterministic order.
func (p *Program) Objects() []*Object {
	var objs []*Object
	objs = append(objs, p.Globals...)
	for _, fn := range p.Funcs {
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if a, ok := in.(*Alloc); ok {
					objs = append(objs, a.Obj)
				}
			}
		}
	}
	return objs
}

// ObjKind classifies an abstract object by its storage.
type ObjKind int

// Object kinds.
const (
	ObjGlobal ObjKind = iota
	ObjStack
	ObjHeap
)

func (k ObjKind) String() string {
	switch k {
	case ObjGlobal:
		return "global"
	case ObjStack:
		return "stack"
	default:
		return "heap"
	}
}

// Object is an abstract memory object: an address-taken variable in the
// paper's Var_AT. Globals have no allocating instruction; stack and heap
// objects are created by their Alloc site (one object per site; heap
// cloning in the pointer analysis duplicates objects per wrapper call
// site).
type Object struct {
	ID   int
	Name string
	Size int // cells
	Kind ObjKind
	// ZeroInit marks objects whose memory is defined on allocation
	// (alloc_T): globals (C default initialization) and calloc'd memory.
	ZeroInit bool
	// Site is the allocating instruction (nil for globals).
	Site *Alloc
	// Fn is the function containing the allocation site (nil for globals).
	Fn *Function
	// CloneOf and CloneSite are set on heap objects duplicated by
	// 1-callsite heap cloning: CloneSite is the call of the allocation
	// wrapper this clone is specific to.
	CloneOf   *Object
	CloneSite *Call
	// InitVal is the explicit initializer of a scalar global (cell 0).
	InitVal int64
	// InitVals are explicit per-cell initializers of an array global
	// (string literals). When non-nil it holds at most Size entries and
	// takes precedence over InitVal; cells past it are zero, and such
	// objects also set ZeroInit, since every cell is defined at program
	// start.
	InitVals []int64
	// Pinned objects are never promoted by mem2reg (used for the synthetic
	// cells that model undefined top-level values).
	Pinned bool

	fieldSensitive bool
	collapsed      bool
}

// Collapse marks the object as field-insensitive: all cells are modelled
// as a single variable. Arrays and objects reached by pointer arithmetic
// are collapsed (the paper treats arrays as a whole).
func (o *Object) Collapse() { o.collapsed = true }

// Collapsed reports whether the object is modelled as a single variable.
func (o *Object) Collapsed() bool { return o.collapsed || !o.fieldSensitive }

// NumFields returns the number of distinct field variables of the object:
// 1 when collapsed, Size otherwise.
func (o *Object) NumFields() int {
	if o.Collapsed() {
		return 1
	}
	return o.Size
}

// FieldIndex maps a cell offset to the object's field-variable index.
func (o *Object) FieldIndex(off int) int {
	if o.Collapsed() {
		return 0
	}
	if off < 0 || off >= o.Size {
		return 0
	}
	return off
}

func (o *Object) String() string {
	return fmt.Sprintf("@%s#%d", o.Name, o.ID)
}

// Function is a single function.
type Function struct {
	Name   string
	Prog   *Program
	Params []*Register
	Blocks []*Block
	Pos    token.Pos
	// HasBody is false for declared-but-undefined functions (treated as
	// external).
	HasBody bool

	nextReg   int
	nextBlock int
	nextInstr int
}

// Entry returns the entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewReg creates a fresh virtual register. Registers are the top-level
// variables (Var_TL) of the paper.
func (f *Function) NewReg(name string) *Register {
	r := &Register{ID: f.nextReg, Name: name, Fn: f}
	f.nextReg++
	return r
}

// NumRegs returns the number of registers created so far.
func (f *Function) NumRegs() int { return f.nextReg }

// NewBlock creates and appends a new basic block.
func (f *Function) NewBlock(name string) *Block {
	b := &Block{ID: f.nextBlock, Name: name, Fn: f}
	f.nextBlock++
	f.Blocks = append(f.Blocks, b)
	return b
}

// nextInstrID hands out per-function instruction labels (the paper's
// statement labels l).
func (f *Function) nextInstrID() int {
	id := f.nextInstr
	f.nextInstr++
	return id
}

func (f *Function) String() string { return f.Name }

// Block is a basic block. Preds and Succs are maintained by
// ComputeCFG after construction or mutation.
type Block struct {
	ID     int
	Name   string
	Fn     *Function
	Instrs []Instr
	Preds  []*Block
	Succs  []*Block
}

func (b *Block) String() string { return fmt.Sprintf("%s.%d", b.Name, b.ID) }

// Terminator returns the block's final instruction, or nil if the block is
// empty or not terminated.
func (b *Block) Terminator() Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	switch last.(type) {
	case *Jump, *Branch, *Ret:
		return last
	}
	return nil
}

// Append adds an instruction to the block, assigning its label and parent.
func (b *Block) Append(in Instr) {
	in.setParent(b, b.Fn.nextInstrID())
	b.Instrs = append(b.Instrs, in)
}

// InsertFront prepends an instruction (used for phi insertion).
func (b *Block) InsertFront(in Instr) {
	in.setParent(b, b.Fn.nextInstrID())
	b.Instrs = append([]Instr{in}, b.Instrs...)
}

// InsertAt inserts an instruction at index i, assigning its label.
func (b *Block) InsertAt(i int, in Instr) {
	in.setParent(b, b.Fn.nextInstrID())
	b.Instrs = append(b.Instrs, nil)
	copy(b.Instrs[i+1:], b.Instrs[i:])
	b.Instrs[i] = in
}

// Reparent moves an existing instruction to block b, keeping its label.
// Callers are responsible for placing the instruction in b.Instrs.
func Reparent(in Instr, b *Block) { in.setParent(b, in.Label()) }

// Adopt attaches a freshly constructed replacement instruction to block b
// under an explicit label (usually the label of the instruction it
// replaces). Callers are responsible for placing it in b.Instrs.
func Adopt(in Instr, b *Block, label int) { in.setParent(b, label) }

// RemoveInstrs deletes all instructions for which drop returns true.
func (b *Block) RemoveInstrs(drop func(Instr) bool) {
	kept := b.Instrs[:0]
	for _, in := range b.Instrs {
		if !drop(in) {
			kept = append(kept, in)
		}
	}
	b.Instrs = kept
}

// ComputeCFG recomputes Preds/Succs for all blocks of f from the block
// terminators.
func ComputeCFG(f *Function) {
	for _, b := range f.Blocks {
		b.Preds = b.Preds[:0]
		b.Succs = b.Succs[:0]
	}
	for _, b := range f.Blocks {
		switch t := b.Terminator().(type) {
		case *Jump:
			b.Succs = append(b.Succs, t.Target)
		case *Branch:
			b.Succs = append(b.Succs, t.Then, t.Else)
		}
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs {
			s.Preds = append(s.Preds, b)
		}
	}
}

// Value is an operand: a register, constant, or function reference.
type Value interface {
	value()
	String() string
}

// Register is a top-level variable (virtual register). After lowering and
// mem2reg, every register has exactly one defining instruction.
type Register struct {
	ID   int
	Name string
	Fn   *Function
	// Def is the unique defining instruction, set by block construction.
	Def Instr
}

func (*Register) value() {}

func (r *Register) String() string {
	if r.Name != "" {
		return fmt.Sprintf("%%%s.%d", r.Name, r.ID)
	}
	return fmt.Sprintf("%%t%d", r.ID)
}

// Const is an integer constant. Constants are always defined values.
type Const struct{ Val int64 }

func (*Const) value() {}

func (c *Const) String() string { return fmt.Sprintf("%d", c.Val) }

// IntConst returns a constant value.
func IntConst(v int64) *Const { return &Const{Val: v} }

// FuncValue is the address of a function, used for function pointers and
// direct call targets.
type FuncValue struct{ Fn *Function }

func (*FuncValue) value() {}

func (fv *FuncValue) String() string { return "@" + fv.Fn.Name }

// GlobalAddr is the address of a global object (cell 0).
type GlobalAddr struct{ Obj *Object }

func (*GlobalAddr) value() {}

func (g *GlobalAddr) String() string { return g.Obj.String() }
