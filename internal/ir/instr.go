package ir

import (
	"fmt"

	"github.com/valueflow/usher/internal/token"
)

// Instr is a single IR instruction. Every instruction has a per-function
// label (the paper's statement label l) and a parent block.
type Instr interface {
	// Label is the instruction's per-function id, stable across analyses.
	Label() int
	Parent() *Block
	// Pos is the originating source position (best effort).
	Pos() token.Pos
	// Defines returns the register defined by the instruction, or nil.
	Defines() *Register
	// Operands returns the value operands read by the instruction.
	Operands() []Value
	String() string

	setParent(b *Block, label int)
}

// instrBase carries the bookkeeping shared by all instructions.
type instrBase struct {
	blk   *Block
	label int
	pos   token.Pos
}

func (i *instrBase) Label() int     { return i.label }
func (i *instrBase) Parent() *Block { return i.blk }
func (i *instrBase) Pos() token.Pos { return i.pos }
func (i *instrBase) setParent(b *Block, label int) {
	i.blk = b
	i.label = label
}

// SetPos records the source position of the instruction.
func (i *instrBase) SetPos(p token.Pos) { i.pos = p }

func def(dst *Register, in Instr) *Register {
	if dst != nil {
		dst.Def = in
	}
	return dst
}

// Alloc allocates an abstract object and defines Dst as the address of its
// first cell. This is the paper's `x := alloc_T ρ` / `x := alloc_F ρ`
// (Obj.ZeroInit distinguishes the two). Stack allocations appear in entry
// blocks; heap allocations come from malloc/calloc.
type Alloc struct {
	instrBase
	Dst *Register
	Obj *Object
	// DynSize, when non-nil, is the runtime cell count of a heap
	// allocation whose size is not a compile-time constant. The static
	// model then uses Obj.Size=1 with the object collapsed.
	DynSize Value
}

// NewAlloc constructs an Alloc and binds Dst's definition.
func NewAlloc(dst *Register, obj *Object) *Alloc {
	a := &Alloc{Dst: dst, Obj: obj}
	obj.Site = a
	def(dst, a)
	return a
}

func (a *Alloc) Defines() *Register { return a.Dst }
func (a *Alloc) Operands() []Value {
	if a.DynSize != nil {
		return []Value{a.DynSize}
	}
	return nil
}
func (a *Alloc) String() string {
	init := "F"
	if a.Obj.ZeroInit {
		init = "T"
	}
	return fmt.Sprintf("%s = alloc_%s %s [%d cells, %s]", a.Dst, init, a.Obj, a.Obj.Size, a.Obj.Kind)
}

// Op is a binary operator.
type Op int

// Binary operators. Comparisons yield 0 or 1.
const (
	OpAdd Op = iota
	OpSub
	OpMul
	OpDiv
	OpRem
	OpShl
	OpShr
	OpAnd
	OpOr
	OpXor
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var opNames = [...]string{
	"add", "sub", "mul", "div", "rem", "shl", "shr", "and", "or", "xor",
	"eq", "ne", "lt", "le", "gt", "ge",
}

func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator is a comparison.
func (o Op) IsComparison() bool { return o >= OpEq }

// BinOp computes Dst = X op Y. This is the paper's `x := y ⊕ z`.
type BinOp struct {
	instrBase
	Dst  *Register
	Op   Op
	X, Y Value
}

// NewBinOp constructs a BinOp and binds Dst's definition.
func NewBinOp(dst *Register, op Op, x, y Value) *BinOp {
	b := &BinOp{Dst: dst, Op: op, X: x, Y: y}
	def(dst, b)
	return b
}

func (b *BinOp) Defines() *Register { return b.Dst }
func (b *BinOp) Operands() []Value  { return []Value{b.X, b.Y} }
func (b *BinOp) String() string {
	return fmt.Sprintf("%s = %s %s, %s", b.Dst, b.Op, b.X, b.Y)
}

// Copy is `x := y` (or `x := n` when Src is a constant).
type Copy struct {
	instrBase
	Dst *Register
	Src Value
}

// NewCopy constructs a Copy and binds Dst's definition.
func NewCopy(dst *Register, src Value) *Copy {
	c := &Copy{Dst: dst, Src: src}
	def(dst, c)
	return c
}

func (c *Copy) Defines() *Register { return c.Dst }
func (c *Copy) Operands() []Value  { return []Value{c.Src} }
func (c *Copy) String() string     { return fmt.Sprintf("%s = %s", c.Dst, c.Src) }

// Load is `x := *y`: a critical operation on the pointer operand.
type Load struct {
	instrBase
	Dst  *Register
	Addr Value
}

// NewLoad constructs a Load and binds Dst's definition.
func NewLoad(dst *Register, addr Value) *Load {
	l := &Load{Dst: dst, Addr: addr}
	def(dst, l)
	return l
}

func (l *Load) Defines() *Register { return l.Dst }
func (l *Load) Operands() []Value  { return []Value{l.Addr} }
func (l *Load) String() string     { return fmt.Sprintf("%s = load %s", l.Dst, l.Addr) }

// Store is `*x := y`: a critical operation on the pointer operand.
type Store struct {
	instrBase
	Addr Value
	Val  Value
}

// NewStore constructs a Store.
func NewStore(addr, val Value) *Store { return &Store{Addr: addr, Val: val} }

func (s *Store) Defines() *Register { return nil }
func (s *Store) Operands() []Value  { return []Value{s.Addr, s.Val} }
func (s *Store) String() string     { return fmt.Sprintf("store %s, %s", s.Val, s.Addr) }

// MemSet fills Len cells starting at To with the value Val. Lowered from
// the memset builtin and from the zero-fill tail of string-initialized
// arrays. The To and Len operands are critical uses; Val is not: the
// runtime stores Val's shadow into the range, MSan-style, so setting
// memory to an undefined value is not itself an error.
type MemSet struct {
	instrBase
	To  Value
	Val Value
	Len Value
}

// NewMemSet constructs a MemSet.
func NewMemSet(to, val, length Value) *MemSet { return &MemSet{To: to, Val: val, Len: length} }

func (m *MemSet) Defines() *Register { return nil }
func (m *MemSet) Operands() []Value  { return []Value{m.To, m.Val, m.Len} }
func (m *MemSet) String() string {
	return fmt.Sprintf("memset %s, %s, %s", m.To, m.Val, m.Len)
}

// MemCopy copies Len cells from From to To, shadow included: copying an
// undefined cell is not an error, only a later critical use of the copy
// is. Lowered from memcpy and memmove (the interpreter buffers the
// source, so overlap is always safe), struct assignment, by-value struct
// arguments and returns, and string-literal array initialization. The
// To, From and Len operands are critical uses.
type MemCopy struct {
	instrBase
	To   Value
	From Value
	Len  Value
}

// NewMemCopy constructs a MemCopy.
func NewMemCopy(to, from, length Value) *MemCopy { return &MemCopy{To: to, From: from, Len: length} }

func (m *MemCopy) Defines() *Register { return nil }
func (m *MemCopy) Operands() []Value  { return []Value{m.To, m.From, m.Len} }
func (m *MemCopy) String() string {
	return fmt.Sprintf("memcopy %s, %s, %s", m.To, m.From, m.Len)
}

// FieldAddr computes Dst = &Base[Off] for a constant struct-field offset.
// The result is always a defined value when Base is.
type FieldAddr struct {
	instrBase
	Dst  *Register
	Base Value
	Off  int
}

// NewFieldAddr constructs a FieldAddr and binds Dst's definition.
func NewFieldAddr(dst *Register, base Value, off int) *FieldAddr {
	f := &FieldAddr{Dst: dst, Base: base, Off: off}
	def(dst, f)
	return f
}

func (f *FieldAddr) Defines() *Register { return f.Dst }
func (f *FieldAddr) Operands() []Value  { return []Value{f.Base} }
func (f *FieldAddr) String() string {
	return fmt.Sprintf("%s = fieldaddr %s, +%d", f.Dst, f.Base, f.Off)
}

// IndexAddr computes Dst = Base + Idx cells (array indexing or pointer
// arithmetic). The pointer analysis collapses any object flowing into
// Base, implementing the paper's arrays-as-a-whole treatment soundly.
type IndexAddr struct {
	instrBase
	Dst  *Register
	Base Value
	Idx  Value
}

// NewIndexAddr constructs an IndexAddr and binds Dst's definition.
func NewIndexAddr(dst *Register, base, idx Value) *IndexAddr {
	ia := &IndexAddr{Dst: dst, Base: base, Idx: idx}
	def(dst, ia)
	return ia
}

func (ia *IndexAddr) Defines() *Register { return ia.Dst }
func (ia *IndexAddr) Operands() []Value  { return []Value{ia.Base, ia.Idx} }
func (ia *IndexAddr) String() string {
	return fmt.Sprintf("%s = indexaddr %s, %s", ia.Dst, ia.Base, ia.Idx)
}

// Builtin identifies intrinsic callees.
type Builtin int

// Builtins. malloc/calloc never reach Call (they lower to Alloc), and
// neither do memset/memcpy/memmove (MemSet/MemCopy) or va_arg (a load
// from the packed argument array).
const (
	NotBuiltin Builtin = iota
	BuiltinFree
	BuiltinPrint
	BuiltinInput
)

func (b Builtin) String() string {
	switch b {
	case BuiltinFree:
		return "free"
	case BuiltinPrint:
		return "print"
	case BuiltinInput:
		return "input"
	default:
		return ""
	}
}

// Call invokes Callee (a FuncValue for direct calls, a register for
// indirect calls through function pointers) or a builtin. The callee
// operand of an indirect call and the arguments of print/free are critical
// uses.
type Call struct {
	instrBase
	Dst     *Register // nil for void calls
	Callee  Value     // nil when Builtin != NotBuiltin
	Args    []Value
	Builtin Builtin
}

// NewCall constructs a Call and binds Dst's definition.
func NewCall(dst *Register, callee Value, args []Value, builtin Builtin) *Call {
	c := &Call{Dst: dst, Callee: callee, Args: args, Builtin: builtin}
	def(dst, c)
	return c
}

// Direct returns the statically known callee, or nil for indirect calls
// and builtins.
func (c *Call) Direct() *Function {
	if fv, ok := c.Callee.(*FuncValue); ok {
		return fv.Fn
	}
	return nil
}

func (c *Call) Defines() *Register { return c.Dst }
func (c *Call) Operands() []Value {
	var ops []Value
	if c.Callee != nil {
		ops = append(ops, c.Callee)
	}
	return append(ops, c.Args...)
}

func (c *Call) String() string {
	callee := c.Builtin.String()
	if c.Builtin == NotBuiltin {
		callee = c.Callee.String()
	}
	s := fmt.Sprintf("call %s(", callee)
	for i, a := range c.Args {
		if i > 0 {
			s += ", "
		}
		s += a.String()
	}
	s += ")"
	if c.Dst != nil {
		s = fmt.Sprintf("%s = %s", c.Dst, s)
	}
	return s
}

// Ret returns from the function; Val is nil for void returns.
type Ret struct {
	instrBase
	Val Value
}

// NewRet constructs a Ret.
func NewRet(val Value) *Ret { return &Ret{Val: val} }

func (r *Ret) Defines() *Register { return nil }
func (r *Ret) Operands() []Value {
	if r.Val == nil {
		return nil
	}
	return []Value{r.Val}
}
func (r *Ret) String() string {
	if r.Val == nil {
		return "ret"
	}
	return "ret " + r.Val.String()
}

// Jump transfers control unconditionally.
type Jump struct {
	instrBase
	Target *Block
}

// NewJump constructs a Jump.
func NewJump(target *Block) *Jump { return &Jump{Target: target} }

func (j *Jump) Defines() *Register { return nil }
func (j *Jump) Operands() []Value  { return nil }
func (j *Jump) String() string     { return "jump " + j.Target.String() }

// Branch transfers control on Cond != 0: the paper's `if x goto l`, a
// critical operation on Cond.
type Branch struct {
	instrBase
	Cond Value
	Then *Block
	Else *Block
}

// NewBranch constructs a Branch.
func NewBranch(cond Value, then, els *Block) *Branch {
	return &Branch{Cond: cond, Then: then, Else: els}
}

func (b *Branch) Defines() *Register { return nil }
func (b *Branch) Operands() []Value  { return []Value{b.Cond} }
func (b *Branch) String() string {
	return fmt.Sprintf("branch %s, %s, %s", b.Cond, b.Then, b.Else)
}

// Phi merges values at a control-flow join; Vals[i] is the value flowing
// in from predecessor Preds[i]. Phis carry their predecessor blocks
// explicitly so CFG transformations (inlining, branch folding) cannot
// misalign them. Phis must stay at the front of their block.
type Phi struct {
	instrBase
	Dst   *Register
	Vals  []Value
	Preds []*Block
}

// NewPhi constructs a Phi and binds Dst's definition. vals and preds must
// be parallel.
func NewPhi(dst *Register, vals []Value, preds []*Block) *Phi {
	p := &Phi{Dst: dst, Vals: vals, Preds: preds}
	def(dst, p)
	return p
}

// IncomingIndex returns the operand index for predecessor pred, or -1.
func (p *Phi) IncomingIndex(pred *Block) int {
	for i, b := range p.Preds {
		if b == pred {
			return i
		}
	}
	return -1
}

// RemoveIncoming drops the operand arriving from pred.
func (p *Phi) RemoveIncoming(pred *Block) {
	i := p.IncomingIndex(pred)
	if i < 0 {
		return
	}
	p.Vals = append(p.Vals[:i], p.Vals[i+1:]...)
	p.Preds = append(p.Preds[:i], p.Preds[i+1:]...)
}

func (p *Phi) Defines() *Register { return p.Dst }
func (p *Phi) Operands() []Value  { return p.Vals }
func (p *Phi) String() string {
	s := fmt.Sprintf("%s = phi ", p.Dst)
	for i, v := range p.Vals {
		if i > 0 {
			s += ", "
		}
		pred := "?"
		if i < len(p.Preds) && p.Preds[i] != nil {
			pred = p.Preds[i].String()
		}
		s += fmt.Sprintf("[%s: %s]", pred, v)
	}
	return s
}

// IsCritical reports whether the instruction performs a critical operation
// (Definition 1 of the paper: loads, stores and branches) and returns the
// values whose definedness must be checked. Beyond the paper's TinyC, the
// callee of an indirect call and the arguments of print/free are also
// critical, mirroring MSan's checks at external calls.
func IsCritical(in Instr) (vals []Value, ok bool) {
	switch in := in.(type) {
	case *Load:
		return []Value{in.Addr}, true
	case *Store:
		return []Value{in.Addr}, true
	case *MemSet:
		// The filled value's shadow is copied, not checked.
		return []Value{in.To, in.Len}, true
	case *MemCopy:
		return []Value{in.To, in.From, in.Len}, true
	case *Branch:
		return []Value{in.Cond}, true
	case *Call:
		switch in.Builtin {
		case BuiltinPrint, BuiltinFree:
			return in.Args, true
		}
		if in.Direct() == nil && in.Callee != nil {
			return []Value{in.Callee}, true
		}
	}
	return nil, false
}
