package diag

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/token"
)

func at(line, col int) token.Pos {
	return token.Pos{File: "t.c", Line: line, Col: col}
}

func TestDiagnosticRendering(t *testing.T) {
	d := &Diagnostic{Phase: PhaseLex, Pos: at(3, 7), Msg: "illegal character '$'"}
	if got, want := d.Error(), "t.c:3:7: lex: illegal character '$'"; got != want {
		t.Errorf("positioned: got %q, want %q", got, want)
	}
	d = &Diagnostic{Phase: PhaseInternal, Msg: "boom"}
	if got, want := d.Error(), "internal: boom"; got != want {
		t.Errorf("position-less: got %q, want %q", got, want)
	}
}

func TestListErrSortsIntoSourceOrder(t *testing.T) {
	var l List
	l.Addf(PhaseType, at(5, 1), "third")
	l.Addf(PhaseParse, at(2, 9), "second")
	l.Addf(PhaseLex, at(2, 3), "first")
	l.Addf(PhaseInternal, token.Pos{}, "last: no position")

	err := l.Err()
	ds := All(err)
	if len(ds) != 4 {
		t.Fatalf("All returned %d diagnostics, want 4", len(ds))
	}
	var got []string
	for _, d := range ds {
		got = append(got, d.Msg)
	}
	want := []string{"first", "second", "third", "last: no position"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if !strings.Contains(err.Error(), "first") || !strings.Contains(err.Error(), "\n") {
		t.Errorf("multi-diagnostic rendering = %q", err)
	}
}

func TestEmptyListErrIsNil(t *testing.T) {
	var l List
	if err := l.Err(); err != nil {
		t.Errorf("empty list Err = %v, want nil", err)
	}
	if l.Len() != 0 {
		t.Errorf("empty list Len = %d", l.Len())
	}
}

func TestMergeAbsorbsDiagnosticsAndForeignErrors(t *testing.T) {
	var inner List
	inner.Addf(PhaseLex, at(1, 1), "from inner")
	var l List
	l.Merge(PhaseParse, inner.Err())
	l.Merge(PhaseParse, nil)
	l.Merge(PhaseVerify, errors.New("plain error"))
	ds := All(l.Err())
	if len(ds) != 2 {
		t.Fatalf("merged %d diagnostics, want 2", len(ds))
	}
	if ds[0].Phase != PhaseLex || ds[0].Msg != "from inner" {
		t.Errorf("diagnostic not absorbed verbatim: %s", ds[0])
	}
	if ds[1].Phase != PhaseVerify || ds[1].Msg != "plain error" {
		t.Errorf("foreign error not recorded under the merge phase: %s", ds[1])
	}
}

func TestGuardConvertsPanics(t *testing.T) {
	f := func() (err error) {
		defer Guard(PhaseAnalyze, &err)
		panic("invariant broken")
	}
	err := f()
	ds := All(err)
	if len(ds) != 1 || ds[0].Phase != PhaseAnalyze {
		t.Fatalf("guard produced %v, want one analyze diagnostic", err)
	}
	if !strings.Contains(ds[0].Msg, "internal error: invariant broken") {
		t.Errorf("Msg = %q", ds[0].Msg)
	}

	g := func() (err error) {
		defer Guard(PhaseAnalyze, &err)
		return nil
	}
	if err := g(); err != nil {
		t.Errorf("guard overwrote a clean return with %v", err)
	}
}

func TestAllUnwrapsThroughWrapping(t *testing.T) {
	var l List
	l.Addf(PhaseLower, at(4, 2), "inner")
	wrapped := fmt.Errorf("profile mcf: %w", l.Err())
	ds := All(wrapped)
	if len(ds) != 1 || ds[0].Msg != "inner" {
		t.Fatalf("All through %%w = %v", ds)
	}
	single := fmt.Errorf("outer: %w", &Diagnostic{Phase: PhaseInterp, Msg: "trap"})
	if ds := All(single); len(ds) != 1 || ds[0].Msg != "trap" {
		t.Fatalf("All on wrapped *Diagnostic = %v", ds)
	}
	if ds := All(errors.New("opaque")); ds != nil {
		t.Fatalf("All on a foreign error = %v, want nil", ds)
	}
}

func TestMustNil(t *testing.T) {
	MustNil("ok", nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("MustNil did not panic on a non-nil error")
		}
		if s, ok := r.(string); !ok || !strings.Contains(s, "compile t.c") {
			t.Errorf("panic value = %v", r)
		}
	}()
	MustNil("compile t.c", errors.New("bad input"))
}
