// Package diag defines the structured diagnostics shared by every stage
// of the MiniC frontend and the analysis pipeline.
//
// A Diagnostic carries the pipeline phase that produced it, a source
// position and a message. Stages accumulate diagnostics in a List
// instead of panicking or stopping at the first problem; the List
// renders them as a single error with the diagnostics in source order,
// so a program with several independent mistakes reports all of them.
//
// The package also centralizes the two sanctioned escape hatches of the
// otherwise panic-free pipeline: Recovered converts an unexpected panic
// (an internal invariant violation) into a diagnostic at an API
// boundary, and MustNil backs the Must* convenience constructors that
// are documented to panic on caller contract violations.
package diag

import (
	"errors"
	"fmt"
	"sort"

	"github.com/valueflow/usher/internal/token"
)

// Phase identifies the pipeline stage that produced a diagnostic.
type Phase string

// The pipeline phases, in execution order.
const (
	PhaseLex      Phase = "lex"
	PhaseParse    Phase = "parse"
	PhaseModule   Phase = "module"
	PhaseType     Phase = "typecheck"
	PhaseLower    Phase = "lower"
	PhaseVerify   Phase = "verify"
	PhaseLink     Phase = "link"
	PhaseAnalyze  Phase = "analyze"
	PhaseInterp   Phase = "interp"
	PhaseInternal Phase = "internal"
)

// Diagnostic is one positioned error from a pipeline phase. It
// implements error, rendering as "file:line:col: phase: message" (the
// position is omitted when unknown).
type Diagnostic struct {
	Phase Phase
	Pos   token.Pos
	Msg   string
}

func (d *Diagnostic) Error() string {
	if d.Pos.IsValid() {
		return fmt.Sprintf("%s: %s: %s", d.Pos, d.Phase, d.Msg)
	}
	return fmt.Sprintf("%s: %s", d.Phase, d.Msg)
}

// Recovered converts a value recovered from a panic into an
// internal-error diagnostic for the given phase. It is the wrapper used
// at the public API boundaries: an unexpected panic anywhere below
// becomes an ordinary error instead of crashing the process.
func Recovered(phase Phase, r any) *Diagnostic {
	return &Diagnostic{Phase: phase, Msg: fmt.Sprintf("internal error: %v", r)}
}

// Guard is the deferred form of Recovered:
//
//	func Source(file, src string) (_ *ir.Program, err error) {
//		defer diag.Guard(diag.PhaseInternal, &err)
//		...
//	}
//
// It recovers any in-flight panic and stores it in *errp as a
// single-diagnostic Error, leaving *errp untouched when no panic
// occurred.
func Guard(phase Phase, errp *error) {
	if r := recover(); r != nil {
		*errp = &Error{Diags: []*Diagnostic{Recovered(phase, r)}}
	}
}

// MustNil panics when err is non-nil. It backs the Must* convenience
// constructors (MustParse, MustCompile, MustAnalyze): calling those on
// input that does not compile is a caller contract violation, which is
// the one kind of panic the error contract permits.
func MustNil(what string, err error) {
	if err != nil {
		panic(fmt.Sprintf("%s: %v", what, err))
	}
}

// List accumulates diagnostics. The zero value is ready to use.
type List struct {
	diags []*Diagnostic
}

// Add appends one diagnostic.
func (l *List) Add(d *Diagnostic) { l.diags = append(l.diags, d) }

// Addf appends a formatted diagnostic.
func (l *List) Addf(phase Phase, pos token.Pos, format string, args ...any) {
	l.Add(&Diagnostic{Phase: phase, Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// Len returns the number of accumulated diagnostics.
func (l *List) Len() int { return len(l.diags) }

// Merge absorbs the diagnostics carried by err (see All). A non-nil err
// carrying no diagnostics is recorded as a single position-less
// diagnostic under the given phase.
func (l *List) Merge(phase Phase, err error) {
	if err == nil {
		return
	}
	if ds := All(err); len(ds) > 0 {
		l.diags = append(l.diags, ds...)
		return
	}
	l.Addf(phase, token.Pos{}, "%v", err)
}

// Err returns nil when the list is empty, and otherwise an *Error
// holding the diagnostics sorted into source order.
func (l *List) Err() error {
	if len(l.diags) == 0 {
		return nil
	}
	ds := append([]*Diagnostic(nil), l.diags...)
	sortDiags(ds)
	return &Error{Diags: ds}
}

// Error is an error holding one or more diagnostics in source order.
type Error struct {
	Diags []*Diagnostic
}

func (e *Error) Error() string {
	switch len(e.Diags) {
	case 0:
		return "no diagnostics"
	case 1:
		return e.Diags[0].Error()
	}
	s := e.Diags[0].Error()
	for _, d := range e.Diags[1:] {
		s += "\n" + d.Error()
	}
	return s
}

// Unwrap exposes the individual diagnostics to errors.Is / errors.As.
func (e *Error) Unwrap() []error {
	errs := make([]error, len(e.Diags))
	for i, d := range e.Diags {
		errs[i] = d
	}
	return errs
}

// All extracts the diagnostics carried by err: the slice of a *Error,
// the single *Diagnostic itself, or nil for any other error (including
// wrapped forms, which are searched via errors.As).
func All(err error) []*Diagnostic {
	var e *Error
	if errors.As(err, &e) {
		return e.Diags
	}
	var d *Diagnostic
	if errors.As(err, &d) {
		return []*Diagnostic{d}
	}
	return nil
}

// sortDiags orders diagnostics by source position (file, line, column),
// stably, with position-less diagnostics last.
func sortDiags(ds []*Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i].Pos, ds[j].Pos
		if a.IsValid() != b.IsValid() {
			return a.IsValid()
		}
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
}
