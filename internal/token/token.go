// Package token defines the lexical tokens of the MiniC language and
// source positions used across the frontend.
//
// MiniC is the C subset used throughout this repository as the input
// language for the Usher analysis. It is a strict superset of the paper's
// TinyC: it adds structs, arrays, multi-level pointers, function pointers
// and the usual C statement forms, all of which lower onto the TinyC-style
// IR in package ir.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. Keyword kinds are contiguous so IsKeyword is a range check.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT  // main
	NUMBER // 12345
	STRING // "abc" (string literal, decoded; also #include paths)
	CHAR   // 'a' (character literal, decoded to one byte)

	// Punctuation and operators.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	COMMA    // ,
	SEMI     // ;
	ASSIGN   // =
	PLUS     // +
	MINUS    // -
	STAR     // *
	SLASH    // /
	PERCENT  // %
	AMP      // &
	PIPE     // |
	CARET    // ^
	SHL      // <<
	SHR      // >>
	NOT      // !
	TILDE    // ~
	EQ       // ==
	NEQ      // !=
	LT       // <
	GT       // >
	LEQ      // <=
	GEQ      // >=
	LAND     // &&
	LOR      // ||
	DOT      // .
	ELLIPSIS // ... (variadic parameter marker)
	ARROW    // ->
	PLUSPLUS // ++ (desugared by the parser)
	MINUSMINUS
	PLUSASSIGN  // +=
	MINUSASSIGN // -=
	INCLUDE     // #include

	keywordStart
	KwInt
	KwChar
	KwVoid
	KwStruct
	KwIf
	KwElse
	KwWhile
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwSizeof
	keywordEnd
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", NUMBER: "NUMBER",
	STRING: "STRING", CHAR: "CHAR", INCLUDE: "#include",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}",
	LBRACKET: "[", RBRACKET: "]", COMMA: ",", SEMI: ";",
	ASSIGN: "=", PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	PERCENT: "%", AMP: "&", PIPE: "|", CARET: "^", SHL: "<<", SHR: ">>",
	NOT: "!", TILDE: "~", EQ: "==", NEQ: "!=", LT: "<", GT: ">",
	LEQ: "<=", GEQ: ">=", LAND: "&&", LOR: "||", DOT: ".", ELLIPSIS: "...",
	ARROW: "->",
	PLUSPLUS: "++", MINUSMINUS: "--", PLUSASSIGN: "+=", MINUSASSIGN: "-=",
	KwInt: "int", KwChar: "char", KwVoid: "void", KwStruct: "struct", KwIf: "if",
	KwElse: "else", KwWhile: "while", KwFor: "for", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwSizeof: "sizeof",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// IsKeyword reports whether the kind is a reserved word.
func (k Kind) IsKeyword() bool { return k > keywordStart && k < keywordEnd }

// Keywords maps reserved words to their kinds.
var Keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "void": KwVoid, "struct": KwStruct, "if": KwIf,
	"else": KwElse, "while": KwWhile, "for": KwFor, "return": KwReturn,
	"break": KwBreak, "continue": KwContinue, "sizeof": KwSizeof,
}

// Pos is a source position: 1-based line and column within a named file.
type Pos struct {
	File string
	Line int
	Col  int
}

// String formats the position as file:line:col.
func (p Pos) String() string {
	f := p.File
	if f == "" {
		f = "<input>"
	}
	return fmt.Sprintf("%s:%d:%d", f, p.Line, p.Col)
}

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its source text and position.
type Token struct {
	Kind Kind
	Text string
	Pos  Pos
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, NUMBER, STRING, CHAR:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
