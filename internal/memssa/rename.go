package memssa

import (
	"sort"

	"github.com/valueflow/usher/internal/cfg"
	"github.com/valueflow/usher/internal/ir"
)

// buildFunc versions every tracked variable of fn.
func (info *Info) buildFunc(fn *ir.Function) {
	in, out := info.virtualParams(fn)
	fi := &FuncInfo{
		Fn:          fn,
		InVars:      in,
		OutVars:     out,
		EntryDefs:   make(map[MemVar]*Def),
		Mus:         make(map[int][]Mu),
		Chis:        make(map[int][]*Def),
		Phis:        make(map[*ir.Block][]*Def),
		RetVersions: make(map[int]map[MemVar]*Def),
	}
	info.Funcs[fn] = fi

	vars := info.trackedVars(fn)
	if len(vars) == 0 {
		return
	}
	varIdx := make(map[MemVar]int, len(vars))
	for i, v := range vars {
		varIdx[v] = i
	}
	inSet := make(map[MemVar]bool, len(in))
	for _, v := range in {
		inSet[v] = true
	}

	versions := make([]int, len(vars))
	newDef := func(v MemVar, kind DefKind) *Def {
		d := &Def{Var: v, Version: versions[varIdx[v]], Kind: kind, Fn: fn}
		versions[varIdx[v]]++
		fi.AllDefs = append(fi.AllDefs, d)
		return d
	}

	// chiVarsAt returns the variables chi-defined at an instruction, and
	// muVarsAt the variables mu-used.
	chiVarsAt := func(in ir.Instr) []MemVar {
		switch in := in.(type) {
		case *ir.Store:
			return info.locVars(info.Pointer.PointsTo(in.Addr))
		case *ir.MemSet:
			return info.rangeVars(info.Pointer.PointsTo(in.To))
		case *ir.MemCopy:
			return info.rangeVars(info.Pointer.PointsTo(in.To))
		case *ir.Alloc:
			return allocVars(in.Obj)
		case *ir.Call:
			seen := make(map[MemVar]bool)
			var vs []MemVar
			for _, callee := range info.Pointer.Callees(in) {
				cfi := info.Funcs[callee]
				var outs []MemVar
				if cfi != nil {
					outs = cfi.OutVars
				} else {
					_, outs = info.virtualParams(callee)
				}
				for _, v := range outs {
					if !seen[v] {
						seen[v] = true
						vs = append(vs, v)
					}
				}
			}
			sortVars(vs)
			return vs
		}
		return nil
	}
	muVarsAt := func(in ir.Instr) []MemVar {
		switch in := in.(type) {
		case *ir.Load:
			return info.locVars(info.Pointer.PointsTo(in.Addr))
		case *ir.MemCopy:
			return info.rangeVars(info.Pointer.PointsTo(in.From))
		case *ir.Call:
			seen := make(map[MemVar]bool)
			var vs []MemVar
			for _, callee := range info.Pointer.Callees(in) {
				cfi := info.Funcs[callee]
				var ins []MemVar
				if cfi != nil {
					ins = cfi.InVars
				} else {
					ins, _ = info.virtualParams(callee)
				}
				for _, v := range ins {
					if !seen[v] {
						seen[v] = true
						vs = append(vs, v)
					}
				}
			}
			sortVars(vs)
			return vs
		}
		return nil
	}

	ir.ComputeCFG(fn)
	dom := cfg.NewDomTree(fn)
	df := cfg.DominanceFrontiers(dom)
	entry := fn.Entry()

	// Entry definitions.
	entryDefs := make([]*Def, len(vars))
	for i, v := range vars {
		kind := DefEntryUndef
		if inSet[v] {
			kind = DefEntry
		}
		d := newDef(v, kind)
		entryDefs[i] = d
		fi.EntryDefs[v] = d
	}

	// Precompute the chi/mu variable lists per instruction once; the
	// points-to and callee lookups behind them are too expensive to
	// repeat per variable.
	chiAt := make(map[int][]MemVar)
	muAt := make(map[int][]MemVar)
	defBlocksOf := make([]map[*ir.Block]bool, len(vars))
	for i := range vars {
		defBlocksOf[i] = map[*ir.Block]bool{entry: true}
	}
	for _, b := range fn.Blocks {
		for _, instr := range b.Instrs {
			cvs := chiVarsAt(instr)
			if len(cvs) > 0 {
				chiAt[instr.Label()] = cvs
				for _, v := range cvs {
					defBlocksOf[varIdx[v]][b] = true
				}
			}
			if mvs := muVarsAt(instr); len(mvs) > 0 {
				muAt[instr.Label()] = mvs
			}
		}
	}

	// Phi placement: iterated dominance frontier of the chi-def blocks
	// (plus the entry, which defines everything).
	type phiRec struct {
		def *Def
		idx int
	}
	phiRecs := make(map[*ir.Block][]phiRec)
	for i, v := range vars {
		defBlocks := defBlocksOf[i]
		work := make([]*ir.Block, 0, len(defBlocks))
		for b := range defBlocks {
			work = append(work, b)
		}
		// The worklist is seeded from map iteration; sort it so phi
		// creation order — and with it version numbering and every
		// downstream artifact keyed by def order (VFG node ids, snapshot
		// Γ bit vectors) — is identical on every run.
		sort.Slice(work, func(x, y int) bool { return work[x].ID < work[y].ID })
		placed := make(map[*ir.Block]bool)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if placed[fb] {
					continue
				}
				placed[fb] = true
				d := newDef(v, DefPhi)
				d.Block = fb
				d.PhiArgs = make([]*Def, len(fb.Preds))
				phiRecs[fb] = append(phiRecs[fb], phiRec{d, i})
				fi.Phis[fb] = append(fi.Phis[fb], d)
				if !defBlocks[fb] {
					defBlocks[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Renaming walk.
	var rename func(b *ir.Block, cur []*Def)
	rename = func(b *ir.Block, cur []*Def) {
		cur = append([]*Def(nil), cur...)
		for _, pr := range phiRecs[b] {
			cur[pr.idx] = pr.def
		}
		for _, instr := range b.Instrs {
			for _, v := range muAt[instr.Label()] {
				fi.Mus[instr.Label()] = append(fi.Mus[instr.Label()],
					Mu{Var: v, Use: cur[varIdx[v]]})
			}
			for _, v := range chiAt[instr.Label()] {
				d := newDef(v, DefChi)
				d.Instr = instr
				d.Prev = cur[varIdx[v]]
				fi.Chis[instr.Label()] = append(fi.Chis[instr.Label()], d)
				cur[varIdx[v]] = d
			}
			if ret, ok := instr.(*ir.Ret); ok {
				m := make(map[MemVar]*Def, len(fi.OutVars))
				for _, v := range fi.OutVars {
					m[v] = cur[varIdx[v]]
				}
				fi.RetVersions[ret.Label()] = m
			}
		}
		for _, s := range b.Succs {
			predIdx := -1
			for i, p := range s.Preds {
				if p == b {
					predIdx = i
					break
				}
			}
			for _, pr := range phiRecs[s] {
				pr.def.PhiArgs[predIdx] = cur[pr.idx]
			}
		}
		for _, kid := range dom.Children(b) {
			rename(kid, cur)
		}
	}
	rename(entry, entryDefs)
}
