package memssa_test

import (
	"testing"

	"github.com/valueflow/usher/internal/compile"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/memssa"
	"github.com/valueflow/usher/internal/pointer"
)

func build(t *testing.T, src string) (*ir.Program, *memssa.Info) {
	t.Helper()
	irp := compile.MustSource("t.c", src)
	pa := pointer.Analyze(irp)
	return irp, memssa.Build(irp, pa)
}

func TestLoadGetsMu(t *testing.T) {
	irp, info := build(t, `
int main() {
  int a;
  int *p = &a;
  *p = 1;
  return a;
}`)
	main := irp.FuncByName("main")
	fi := info.Funcs[main]
	var muCount, chiCount int
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			muCount += len(fi.Mus[in.Label()])
			chiCount += len(fi.Chis[in.Label()])
		}
	}
	if muCount == 0 {
		t.Errorf("no mu annotations:\n%s", ir.PrintFunc(main))
	}
	// chis: the alloca of a (+undef machinery if any) and the store.
	if chiCount < 2 {
		t.Errorf("chis = %d, want >= 2:\n%s", chiCount, ir.PrintFunc(main))
	}
}

func TestChiVersionsChain(t *testing.T) {
	irp, info := build(t, `
int main() {
  int a;
  int *p = &a;
  *p = 1;
  *p = 2;
  return a;
}`)
	main := irp.FuncByName("main")
	fi := info.Funcs[main]
	// Find the two store chis of variable a; the second's Prev must be the
	// first's def.
	var chis []*memssa.Def
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Store); ok {
				for _, d := range fi.Chis[in.Label()] {
					if d.Var.Obj.Name == "a" {
						chis = append(chis, d)
					}
				}
			}
		}
	}
	if len(chis) != 2 {
		t.Fatalf("store chis of a = %d, want 2", len(chis))
	}
	if chis[1].Prev != chis[0] {
		t.Errorf("second chi's Prev = %v, want %v", chis[1].Prev, chis[0])
	}
	if chis[0].Version == chis[1].Version {
		t.Error("chi versions must differ")
	}
}

func TestMemPhiAtJoin(t *testing.T) {
	irp, info := build(t, `
int main(int c) {
  int a;
  int *p = &a;
  if (c) { *p = 1; } else { *p = 2; }
  return a;
}`)
	main := irp.FuncByName("main")
	fi := info.Funcs[main]
	total := 0
	for _, phis := range fi.Phis {
		for _, d := range phis {
			if d.Var.Obj.Name == "a" {
				total++
				if len(d.PhiArgs) != 2 {
					t.Errorf("phi args = %d, want 2", len(d.PhiArgs))
				}
				for _, a := range d.PhiArgs {
					if a == nil {
						t.Error("phi arg not filled")
					}
				}
			}
		}
	}
	if total == 0 {
		t.Errorf("no memory phi for a at the join:\n%s", ir.PrintFunc(main))
	}
}

func TestGlobalsAreVirtualParams(t *testing.T) {
	irp, info := build(t, `
int g;
void set(int v) { g = v; }
int get() { return g; }
int main() { set(3); return get(); }`)
	gObj := irp.Globals[0]
	set := info.Funcs[irp.FuncByName("set")]
	get := info.Funcs[irp.FuncByName("get")]
	mainFi := info.Funcs[irp.FuncByName("main")]

	hasVar := func(vs []memssa.MemVar, obj *ir.Object) bool {
		for _, v := range vs {
			if v.Obj == obj {
				return true
			}
		}
		return false
	}
	if !hasVar(set.OutVars, gObj) {
		t.Errorf("set OutVars = %v, want g", set.OutVars)
	}
	if !hasVar(get.InVars, gObj) {
		t.Errorf("get InVars = %v, want g", get.InVars)
	}
	// main transitively mods and refs g.
	if !hasVar(mainFi.OutVars, gObj) && !hasVar(mainFi.InVars, gObj) {
		t.Errorf("main virtual params missing g: in=%v out=%v", mainFi.InVars, mainFi.OutVars)
	}
	// The call to set in main must chi-define g; the call to get must
	// mu-use it.
	main := irp.FuncByName("main")
	var setChi, getMu bool
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			c, ok := in.(*ir.Call)
			if !ok {
				continue
			}
			if d := c.Direct(); d != nil {
				switch d.Name {
				case "set":
					for _, chi := range mainFi.Chis[c.Label()] {
						if chi.Var.Obj == gObj {
							setChi = true
						}
					}
				case "get":
					for _, mu := range mainFi.Mus[c.Label()] {
						if mu.Var.Obj == gObj {
							getMu = true
						}
					}
				}
			}
		}
	}
	if !setChi {
		t.Error("call to set() lacks chi for g")
	}
	if !getMu {
		t.Error("call to get() lacks mu for g")
	}
}

func TestOwnStackNotVirtualParam(t *testing.T) {
	irp, info := build(t, `
int main() {
  int a;
  int *p = &a;
  *p = 1;
  return a;
}`)
	fi := info.Funcs[irp.FuncByName("main")]
	for _, v := range fi.InVars {
		if v.Obj.Kind == ir.ObjStack {
			t.Errorf("own stack object %v is a virtual input param of non-recursive main", v)
		}
	}
}

func TestHeapAllocatedInCalleeIsOutputParam(t *testing.T) {
	irp, info := build(t, `
int *make() { int *p = malloc(2); p[0] = 1; return p; }
int main() { int *q = make(); return q[0]; }`)
	makeFi := info.Funcs[irp.FuncByName("make")]
	foundOut := false
	for _, v := range makeFi.OutVars {
		if v.Obj.Kind == ir.ObjHeap {
			foundOut = true
		}
	}
	if !foundOut {
		t.Errorf("heap object not in make's OutVars: %v", makeFi.OutVars)
	}
	// Per Figure 6 of the paper, a heap object allocated in the callee is
	// also a virtual *input* parameter (earlier calls' instances).
	foundIn := false
	for _, v := range makeFi.InVars {
		if v.Obj.Kind == ir.ObjHeap {
			foundIn = true
		}
	}
	if !foundIn {
		t.Errorf("heap object not in make's InVars: %v", makeFi.InVars)
	}
	// main's load q[0] must mu-use the heap variable.
	main := irp.FuncByName("main")
	mainFi := info.Funcs[main]
	found := false
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Load); ok {
				for _, mu := range mainFi.Mus[in.Label()] {
					if mu.Var.Obj.Kind == ir.ObjHeap {
						found = true
					}
				}
			}
		}
	}
	if !found {
		t.Error("main's load of q[0] lacks mu on the heap variable")
	}
}

func TestRecursiveFunctionKeepsOwnStack(t *testing.T) {
	irp, info := build(t, `
int rec(int n) {
  int local;
  int *p = &local;
  *p = n;
  if (n == 0) { return *p; }
  return rec(n - 1) + *p;
}
int main() { return rec(3); }`)
	fi := info.Funcs[irp.FuncByName("rec")]
	found := false
	for _, v := range fi.InVars {
		if v.Obj.Kind == ir.ObjStack && v.Obj.Name == "local" {
			found = true
		}
	}
	if !found {
		t.Errorf("recursive function's stack object missing from InVars: %v", fi.InVars)
	}
}

func TestFieldSensitiveVersioning(t *testing.T) {
	irp, info := build(t, `
struct S { int a; int b; };
int main() {
  struct S s;
  s.a = 1;
  s.b = 2;
  return s.a;
}`)
	main := irp.FuncByName("main")
	fi := info.Funcs[main]
	// The two stores must chi different field variables.
	var fieldsSeen = map[int]bool{}
	for _, b := range main.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(*ir.Store); ok {
				for _, chi := range fi.Chis[in.Label()] {
					if chi.Var.Obj.Name == "s" {
						fieldsSeen[chi.Var.Field] = true
					}
				}
			}
		}
	}
	if len(fieldsSeen) != 2 {
		t.Errorf("fields chi'd = %v, want 2 distinct fields", fieldsSeen)
	}
}

func TestRetVersions(t *testing.T) {
	irp, info := build(t, `
int g;
int bump() { g = g + 1; return g; }
int main() { return bump(); }`)
	bump := irp.FuncByName("bump")
	fi := info.Funcs[bump]
	gObj := irp.Globals[0]
	count := 0
	for _, vers := range fi.RetVersions {
		d, ok := vers[memssa.MemVar{Obj: gObj, Field: 0}]
		if !ok {
			t.Error("ret versions missing g")
			continue
		}
		if d.Kind != memssa.DefChi {
			t.Errorf("g's version at ret = %v, want the store chi", d)
		}
		count++
	}
	if count == 0 {
		t.Error("no ret versions recorded")
	}
}
