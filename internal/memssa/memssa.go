// Package memssa constructs memory SSA for address-taken variables,
// following §3.1 of the paper (the mu/chi form of Chow et al.).
//
// The unit of versioning is the field variable (object, field): the
// paper's address-taken variable ρ. Each load is annotated with mu(ρ)
// uses, each store and allocation site with ρ := χ(ρ) defs, and each call
// with mus/chis for the callee's virtual input and output parameters.
// Per-function SSA renaming then versions every field variable, with phi
// defs at control-flow joins.
//
// Virtual parameters: a function's input variables are everything it may
// reference or modify transitively, excluding its own stack objects when
// it is not recursive; its output variables are everything it may modify
// (allocation counts as modification). Globals flow across function
// boundaries this way, exactly as the paper handles LLVM globals.
package memssa

import (
	"fmt"
	"sort"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/pointer"
)

// MemVar is an address-taken variable: one field of an abstract object
// (field 0 for collapsed objects).
type MemVar struct {
	Obj   *ir.Object
	Field int
}

func (v MemVar) String() string {
	if v.Field == 0 {
		return v.Obj.String()
	}
	return fmt.Sprintf("%s.f%d", v.Obj, v.Field)
}

// varLess orders MemVars deterministically.
func varLess(a, b MemVar) bool {
	if a.Obj.ID != b.Obj.ID {
		return a.Obj.ID < b.Obj.ID
	}
	return a.Field < b.Field
}

func sortVars(vs []MemVar) {
	sort.Slice(vs, func(i, j int) bool { return varLess(vs[i], vs[j]) })
}

// DefKind classifies a memory SSA definition.
type DefKind int

// Definition kinds.
const (
	// DefEntry is the version live at function entry: the virtual input
	// parameter for input variables.
	DefEntry DefKind = iota
	// DefEntryUndef is the entry version of a variable that cannot exist
	// before the function runs (its own stack objects); it is never
	// observable at a use in well-formed code because stack allocas sit in
	// the entry block.
	DefEntryUndef
	// DefChi is a (potential) definition at a store, allocation or call.
	DefChi
	// DefPhi merges versions at a join.
	DefPhi
)

func (k DefKind) String() string {
	switch k {
	case DefEntry:
		return "entry"
	case DefEntryUndef:
		return "entry-undef"
	case DefChi:
		return "chi"
	default:
		return "phi"
	}
}

// Def is one SSA version of a MemVar within a function.
type Def struct {
	Var     MemVar
	Version int
	Kind    DefKind
	Fn      *ir.Function
	// Instr is the annotated instruction for chi defs.
	Instr ir.Instr
	// Block is the join block for phi defs.
	Block *ir.Block
	// Prev is the incoming version a chi may merge with (the χ's use).
	Prev *Def
	// PhiArgs are a phi's incoming versions, aligned with Block.Preds.
	PhiArgs []*Def
}

func (d *Def) String() string {
	return fmt.Sprintf("%s_%d(%s)", d.Var, d.Version, d.Kind)
}

// Mu is a use of a version at a load or call.
type Mu struct {
	Var MemVar
	Use *Def
}

// FuncInfo is the memory SSA of one function.
type FuncInfo struct {
	Fn *ir.Function
	// InVars/OutVars are the virtual input and output parameters, sorted.
	InVars  []MemVar
	OutVars []MemVar
	// EntryDefs maps each tracked variable to its entry version.
	EntryDefs map[MemVar]*Def
	// Mus maps instruction labels (loads and calls) to their mu uses.
	Mus map[int][]Mu
	// Chis maps instruction labels (stores, allocs, calls) to chi defs.
	Chis map[int][]*Def
	// Phis maps blocks to their memory phis.
	Phis map[*ir.Block][]*Def
	// RetVersions maps each Ret instruction label to the out-flowing
	// version of every output variable.
	RetVersions map[int]map[MemVar]*Def
	// AllDefs lists every Def created for the function.
	AllDefs []*Def
}

// Info is the whole-program memory SSA.
type Info struct {
	Prog    *ir.Program
	Pointer *pointer.Result
	Funcs   map[*ir.Function]*FuncInfo
	// Ref and Mod are the transitive reference/modification sets.
	Ref map[*ir.Function]map[MemVar]bool
	Mod map[*ir.Function]map[MemVar]bool
}

// Build constructs memory SSA for the whole program.
func Build(prog *ir.Program, pa *pointer.Result) *Info {
	info := &Info{
		Prog:    prog,
		Pointer: pa,
		Funcs:   make(map[*ir.Function]*FuncInfo),
		Ref:     make(map[*ir.Function]map[MemVar]bool),
		Mod:     make(map[*ir.Function]map[MemVar]bool),
	}
	info.modRef()
	for _, fn := range prog.Funcs {
		if fn.HasBody {
			info.buildFunc(fn)
		}
	}
	return info
}

// locVars converts points-to locations into MemVars (skipping functions).
func (info *Info) locVars(locs []pointer.Loc) []MemVar {
	var vars []MemVar
	for _, l := range locs {
		if l.Fn != nil {
			continue
		}
		vars = append(vars, MemVar{Obj: l.Obj, Field: info.Pointer.CanonField(l.Obj, l.Field)})
	}
	sortVars(vars)
	// dedup after canonicalization
	out := vars[:0]
	for i, v := range vars {
		if i == 0 || vars[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

// rangeVars widens points-to locations to every field variable of the
// pointed-to objects. Memory intrinsics (MemSet/MemCopy) access a
// runtime-sized range, so any field reachable from the base pointer's
// object may be touched regardless of the pointed-at offset; versioning
// the whole object keeps their chis/mus sound for every length.
func (info *Info) rangeVars(locs []pointer.Loc) []MemVar {
	seen := make(map[MemVar]bool)
	var vars []MemVar
	for _, l := range locs {
		if l.Fn != nil {
			continue
		}
		n := l.Obj.NumFields()
		for f := 0; f < n; f++ {
			v := MemVar{Obj: l.Obj, Field: info.Pointer.CanonField(l.Obj, f)}
			if !seen[v] {
				seen[v] = true
				vars = append(vars, v)
			}
		}
	}
	sortVars(vars)
	return vars
}

// allocVars returns every field variable of obj.
func allocVars(obj *ir.Object) []MemVar {
	n := obj.NumFields()
	vars := make([]MemVar, n)
	for i := 0; i < n; i++ {
		vars[i] = MemVar{Obj: obj, Field: i}
	}
	return vars
}

// modRef computes the transitive Ref/Mod sets over the call graph.
func (info *Info) modRef() {
	for _, fn := range info.Prog.Funcs {
		info.Ref[fn] = make(map[MemVar]bool)
		info.Mod[fn] = make(map[MemVar]bool)
		if !fn.HasBody {
			continue
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in := in.(type) {
				case *ir.Load:
					for _, v := range info.locVars(info.Pointer.PointsTo(in.Addr)) {
						info.Ref[fn][v] = true
					}
				case *ir.Store:
					for _, v := range info.locVars(info.Pointer.PointsTo(in.Addr)) {
						info.Mod[fn][v] = true
					}
				case *ir.Alloc:
					for _, v := range allocVars(in.Obj) {
						info.Mod[fn][v] = true
					}
				case *ir.MemSet:
					for _, v := range info.rangeVars(info.Pointer.PointsTo(in.To)) {
						info.Mod[fn][v] = true
					}
				case *ir.MemCopy:
					for _, v := range info.rangeVars(info.Pointer.PointsTo(in.To)) {
						info.Mod[fn][v] = true
					}
					for _, v := range info.rangeVars(info.Pointer.PointsTo(in.From)) {
						info.Ref[fn][v] = true
					}
				}
			}
		}
	}
	// Propagate over the call graph to a fixpoint.
	changed := true
	for changed {
		changed = false
		for _, fn := range info.Prog.Funcs {
			if !fn.HasBody {
				continue
			}
			for _, b := range fn.Blocks {
				for _, in := range b.Instrs {
					c, ok := in.(*ir.Call)
					if !ok {
						continue
					}
					for _, callee := range info.Pointer.Callees(c) {
						for v := range info.Ref[callee] {
							if !info.Ref[fn][v] {
								info.Ref[fn][v] = true
								changed = true
							}
						}
						for v := range info.Mod[callee] {
							if !info.Mod[fn][v] {
								info.Mod[fn][v] = true
								changed = true
							}
						}
					}
				}
			}
		}
	}
}

// virtualParams computes the virtual input and output parameters of fn.
func (info *Info) virtualParams(fn *ir.Function) (in, out []MemVar) {
	ownStack := func(v MemVar) bool {
		return v.Obj.Kind == ir.ObjStack && v.Obj.Fn == fn
	}
	recursive := info.Pointer.Recursive(fn)
	seenIn := make(map[MemVar]bool)
	for v := range info.Ref[fn] {
		if ownStack(v) && !recursive {
			continue
		}
		if !seenIn[v] {
			seenIn[v] = true
			in = append(in, v)
		}
	}
	for v := range info.Mod[fn] {
		if ownStack(v) && !recursive {
			continue
		}
		if !seenIn[v] {
			// A chi at a call uses the old version too, so modified
			// variables are also inputs.
			seenIn[v] = true
			in = append(in, v)
		}
		out = append(out, v)
	}
	sortVars(in)
	sortVars(out)
	return in, out
}

// trackedVars returns every variable fn must version: its virtual
// parameters plus its own accessed stack objects.
func (info *Info) trackedVars(fn *ir.Function) []MemVar {
	seen := make(map[MemVar]bool)
	var vars []MemVar
	add := func(v MemVar) {
		if !seen[v] {
			seen[v] = true
			vars = append(vars, v)
		}
	}
	for v := range info.Ref[fn] {
		add(v)
	}
	for v := range info.Mod[fn] {
		add(v)
	}
	sortVars(vars)
	return vars
}
