package difftest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/stats"
)

// TestCheckAgreesOnHandWritten pins the oracle on programs where the
// expected outcome is obvious by inspection.
func TestCheckAgreesOnHandWritten(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"clean", `
int main() {
  int x = 3;
  int y = x + 4;
  print(y);
  return y;
}
`},
		{"uninit-local", `
int main() {
  int x;
  print(x);
  return 0;
}
`},
		{"partial-heap", `
int main() {
  int *p = malloc(8);
  p[0] = 1;
  print(p[3]);
  return 0;
}
`},
		{"branch-defined", `
int main() {
  int x;
  if (1 < 2) { x = 5; }
  print(x);
  return x;
}
`},
	}
	c := New()
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if d := c.Check(tc.src); d != nil {
				t.Fatalf("unexpected divergence: %v", d)
			}
		})
	}
}

// TestCheckReportsCompileError: the oracle classifies unparseable input
// instead of panicking, so minimization candidates can be rejected.
func TestCheckReportsCompileError(t *testing.T) {
	d := New().Check("int main( {")
	if d == nil || d.Kind != KindCompile {
		t.Fatalf("want compile-error divergence, got %v", d)
	}
}

// TestCampaignCleanSweep runs a small campaign and expects full agreement.
func TestCampaignCleanSweep(t *testing.T) {
	n := int64(60)
	if testing.Short() {
		n = 15
	}
	rep, err := Campaign(CampaignOptions{Seeds: n, Parallel: 4, Minimize: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Checked != n {
		t.Fatalf("checked %d of %d seeds", rep.Checked, n)
	}
	for _, f := range rep.Findings {
		t.Errorf("seed %d diverged: %v\nminimized repro:\n%s", f.Seed, f.Divergence, f.Minimized)
	}
	if rep.SchemaVersion != SchemaVersion {
		t.Fatalf("schemaVersion %d, want %d", rep.SchemaVersion, SchemaVersion)
	}
}

// TestCampaignDeterministic: the JSON report must be bit-identical for
// any worker count (the acceptance bar for -parallel).
func TestCampaignDeterministic(t *testing.T) {
	n := int64(40)
	if testing.Short() {
		n = 10
	}
	var blobs [][]byte
	for _, parallel := range []int{1, 8} {
		rep, err := Campaign(CampaignOptions{From: 100, Seeds: n, Parallel: parallel})
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, data)
	}
	if !bytes.Equal(blobs[0], blobs[1]) {
		t.Fatalf("report differs between -parallel 1 and 8:\n%s\n----\n%s", blobs[0], blobs[1])
	}
}

// TestMinimizeRejectsNonRepro: input that does not satisfy the predicate
// is returned unchanged.
func TestMinimizeRejectsNonRepro(t *testing.T) {
	src := "int main() { return 0; }\n"
	if got := Minimize(src, func(string) bool { return false }); got != src {
		t.Fatalf("Minimize changed a non-reproducing input:\n%s", got)
	}
}

// TestMinimizeShrinksInjectedDivergence injects a detector bug — an
// "exact" configuration that drops every report, so any program with a
// non-empty oracle diverges with missed-warning — and requires the
// minimizer to shrink a large diverging program by at least 80% of its
// statements. This is the acceptance bar for the reducer.
func TestMinimizeShrinksInjectedDivergence(t *testing.T) {
	injected := func(src string) *Divergence {
		prog, err := usher.Compile("inject.c", src)
		if err != nil {
			return &Divergence{Kind: KindCompile, Detail: err.Error()}
		}
		res, err := usher.RunNative(prog, usher.RunOptions{})
		if err != nil {
			return &Divergence{Kind: KindNativeTrap, Detail: err.Error()}
		}
		if len(res.OracleWarnings) > 0 {
			// The broken detector reported nothing; first oracle site missed.
			return &Divergence{Config: "msan", Kind: KindMissed,
				Detail: res.OracleWarnings[0].String()}
		}
		return nil
	}

	// Find a comfortably large diverging program.
	opts := randprog.Options{Helpers: 3, StmtsPerFunc: 14, MaxDepth: 3, UninitFrac: 0.4}
	var src string
	var orig *Divergence
	for seed := int64(0); seed < 400; seed++ {
		cand := randprog.Generate(seed, opts)
		if CountStmts(cand) < 40 {
			continue
		}
		if d := injected(cand); d != nil && d.Kind == KindMissed {
			src, orig = cand, d
			break
		}
	}
	if src == "" {
		t.Fatal("no large diverging program found in 400 seeds")
	}

	min := Minimize(src, func(cand string) bool {
		return orig.SameBug(injected(cand))
	})
	before, after := CountStmts(src), CountStmts(min)
	t.Logf("minimized %d -> %d statements:\n%s", before, after, min)
	if !orig.SameBug(injected(min)) {
		t.Fatalf("minimized program no longer reproduces:\n%s", min)
	}
	if after > before/5 {
		t.Fatalf("minimizer shrunk %d -> %d statements; want at least 80%% reduction", before, after)
	}
}

// TestMinimizeFixpoint: re-minimizing a minimal program is a no-op, so
// committed repros in testdata/difftest are stable.
func TestMinimizeFixpoint(t *testing.T) {
	src := "int main() {\n  int x;\n  print(x);\n  return 0;\n}\n"
	keep := func(cand string) bool {
		prog, err := usher.Compile("fix.c", cand)
		if err != nil {
			return false
		}
		res, err := usher.RunNative(prog, usher.RunOptions{})
		return err == nil && len(res.OracleWarnings) > 0
	}
	min := Minimize(src, keep)
	if again := Minimize(min, keep); again != min {
		t.Fatalf("not a fixpoint:\n%s\n----\n%s", min, again)
	}
}

// TestCommittedRepros replays every minimized repro committed under
// testdata/difftest. Each one was a real divergence when found; after
// the corresponding fix it must pass the full oracle, and this test
// keeps it passing.
func TestCommittedRepros(t *testing.T) {
	dir := filepath.Join("..", "..", "testdata", "difftest")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Skipf("no committed repros: %v", err)
	}
	c := New()
	ran := false
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".c") {
			continue
		}
		ran = true
		t.Run(e.Name(), func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if d := c.Check(string(data)); d != nil {
				t.Fatalf("repro diverges again (regression): %v", d)
			}
		})
	}
	if !ran {
		t.Skip("testdata/difftest holds no .c repros")
	}
}

// TestCampaignStatsDeterministic extends the bit-identical contract to
// the -stats pass counters: two sweeps over the same seed range at
// different worker counts must report identical scrubbed pass stats
// (runs + counters; wall time and allocations are measurements and are
// exempt, see internal/stats).
func TestCampaignStatsDeterministic(t *testing.T) {
	n := int64(30)
	if testing.Short() {
		n = 8
	}
	var snaps [][]stats.PassStats
	for _, parallel := range []int{1, 8} {
		sc := stats.New()
		if _, err := Campaign(CampaignOptions{From: 200, Seeds: n, Parallel: parallel, Stats: sc}); err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, stats.Scrub(sc.Snapshot()))
	}
	if len(snaps[0]) == 0 {
		t.Fatal("observed campaign recorded no pass stats")
	}
	if !reflect.DeepEqual(snaps[0], snaps[1]) {
		t.Fatalf("pass stats differ between -parallel 1 and 8:\n%+v\n----\n%+v", snaps[0], snaps[1])
	}
}

// TestCampaignStatsInReport: with a collector the report carries the
// snapshot in Phases; without one the field stays empty (and omitted from
// the JSON rendering, keeping stat-less reports byte-stable).
func TestCampaignStatsInReport(t *testing.T) {
	sc := stats.New()
	rep, err := Campaign(CampaignOptions{Seeds: 2, Parallel: 1, Stats: sc})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Phases) == 0 {
		t.Error("observed campaign report has no phases section")
	}
	bare, err := Campaign(CampaignOptions{Seeds: 2, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	if bare.Phases != nil {
		t.Errorf("unobserved campaign report has phases: %+v", bare.Phases)
	}
	data, err := json.Marshal(bare)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"phases"`)) {
		t.Error("unobserved report JSON contains a phases key")
	}
}
