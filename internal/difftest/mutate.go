package difftest

import (
	"fmt"

	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/token"
)

// MutationKind names one UBfuzz-style semantic mutation. Unlike the
// byte-flipping fuzz targets (which probe the frontend with near-valid
// junk), these mutations keep the program well-typed and trap-free while
// deliberately perturbing its *definedness*: dropping an initializing
// memset, shrinking a copy's length, reordering whole-struct
// assignments, or routing a value through a varargs call. Replaying a
// mutant under every instrumentation configuration against the mutant's
// own interpreter ground truth is the sanitizer-vs-sanitizer campaign:
// each sanitizer build must agree with the oracle on the bug the
// mutation may have planted.
type MutationKind string

// The four mutation kinds.
const (
	// DropMemset removes one memset statement, potentially leaving the
	// filled range undefined at later reads.
	DropMemset MutationKind = "drop-memset"
	// ShrinkCopyLen masks a memcpy/memmove length down to at most 3
	// cells, potentially leaving the copy's tail undefined.
	ShrinkCopyLen MutationKind = "shrink-copy-length"
	// ReorderStructAssign swaps two adjacent whole-struct or field
	// assignments, potentially changing which fields are defined.
	ReorderStructAssign MutationKind = "reorder-struct-assign"
	// RouteThroughVarargs rewrites an int initializer `e` to
	// `vsum(1, e)`, forcing the value (and its shadow) through the
	// caller-side varargs array and the callee's va_arg load. The
	// program must define the randprog-style `int vsum(int n, ...)`
	// accumulator for this mutation to apply.
	RouteThroughVarargs MutationKind = "route-through-varargs"
)

// MutationKinds lists every kind in enumeration order.
var MutationKinds = []MutationKind{DropMemset, ShrinkCopyLen, ReorderStructAssign, RouteThroughVarargs}

// Mutation identifies one applicable mutation: the Index-th candidate
// site of the given kind, in deterministic source order.
type Mutation struct {
	Kind  MutationKind
	Index int
}

func (m Mutation) String() string { return fmt.Sprintf("%s#%d", m.Kind, m.Index) }

// Mutations enumerates every single mutation applicable to src, in
// deterministic order (kinds in MutationKinds order, sites in source
// order). Programs that fail to parse have no mutations.
func Mutations(src string) []Mutation {
	prog, err := parser.Parse("mutate.c", src)
	if err != nil {
		return nil
	}
	sites := collectSites(prog)
	var out []Mutation
	for _, k := range MutationKinds {
		for i := range sites[k] {
			out = append(out, Mutation{Kind: k, Index: i})
		}
	}
	return out
}

// Apply returns src with m applied, or ok=false when the mutation does
// not exist (wrong index, construct absent, parse failure).
func Apply(src string, m Mutation) (string, bool) {
	prog, err := parser.Parse("mutate.c", src)
	if err != nil {
		return "", false
	}
	sites := collectSites(prog)
	ss := sites[m.Kind]
	if m.Index < 0 || m.Index >= len(ss) {
		return "", false
	}
	ss[m.Index]()
	return ast.Print(prog), true
}

// collectSites walks the program once and returns, per kind, the apply
// closures of every candidate site in source order. The closures mutate
// the parsed tree, so each Apply call works on its own parse.
func collectSites(prog *ast.Program) map[MutationKind][]func() {
	sites := make(map[MutationKind][]func())
	hasVsum := false
	for _, d := range prog.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name == "vsum" && fd.Variadic && fd.Body != nil {
			hasVsum = true
		}
	}
	for _, d := range prog.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		// vsum's own body must stay intact: routing its internals through
		// itself would recurse, and its loop is the varargs semantics the
		// other mutants rely on.
		if fd.Name == "vsum" {
			continue
		}
		collectStmtSites(fd.Body, hasVsum, sites)
	}
	return sites
}

func collectStmtSites(b *ast.Block, hasVsum bool, sites map[MutationKind][]func()) {
	for i := range b.Stmts {
		i := i
		switch s := b.Stmts[i].(type) {
		case *ast.Block:
			collectStmtSites(s, hasVsum, sites)
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.Call); ok {
				switch calleeName(call) {
				case "memset":
					sites[DropMemset] = append(sites[DropMemset], func() {
						b.Stmts[i] = &ast.EmptyStmt{P: s.X.Pos()}
					})
				case "memcpy", "memmove":
					if len(call.Args) == 3 {
						sites[ShrinkCopyLen] = append(sites[ShrinkCopyLen], func() {
							call.Args[2] = &ast.Binary{
								P: call.Args[2].Pos(), Op: token.AMP,
								X: call.Args[2], Y: &ast.NumberLit{P: call.Args[2].Pos(), Value: 3},
							}
						})
					}
				}
			}
			if i+1 < len(b.Stmts) && isStructAssign(b.Stmts[i]) && isStructAssign(b.Stmts[i+1]) {
				sites[ReorderStructAssign] = append(sites[ReorderStructAssign], func() {
					b.Stmts[i], b.Stmts[i+1] = b.Stmts[i+1], b.Stmts[i]
				})
			}
		case *ast.DeclStmt:
			d := s.Decl
			if _, isInt := d.Type.(*ast.IntTypeExpr); isInt && d.Init != nil && hasVsum {
				if call, ok := d.Init.(*ast.Call); !ok || calleeName(call) != "vsum" {
					sites[RouteThroughVarargs] = append(sites[RouteThroughVarargs], func() {
						d.Init = &ast.Call{
							P:    d.Init.Pos(),
							Fun:  &ast.Ident{P: d.Init.Pos(), Name: "vsum"},
							Args: []ast.Expr{&ast.NumberLit{P: d.Init.Pos(), Value: 1}, d.Init},
						}
					})
				}
			}
		case *ast.IfStmt:
			descendStmtSites(s.Then, hasVsum, sites)
			if s.Else != nil {
				descendStmtSites(s.Else, hasVsum, sites)
			}
		case *ast.WhileStmt:
			descendStmtSites(s.Body, hasVsum, sites)
		case *ast.ForStmt:
			descendStmtSites(s.Body, hasVsum, sites)
		}
	}
}

func descendStmtSites(s ast.Stmt, hasVsum bool, sites map[MutationKind][]func()) {
	if blk, ok := s.(*ast.Block); ok {
		collectStmtSites(blk, hasVsum, sites)
	}
}

func calleeName(call *ast.Call) string {
	if id, ok := call.Fun.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// isStructAssign recognizes the assignment shapes the reorder mutation
// swaps: whole-value `s = t` / `s = mk...(…)` copies and `s.f = e` field
// stores. Types are not resolved at this level, so the heuristic keys on
// the shapes randprog emits; swapping two adjacent statements of these
// shapes never skips a declaration and never introduces a trap.
func isStructAssign(s ast.Stmt) bool {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return false
	}
	as, ok := es.X.(*ast.Assign)
	if !ok {
		return false
	}
	if fa, ok := as.LHS.(*ast.FieldAccess); ok {
		return !fa.Arrow
	}
	if _, ok := as.LHS.(*ast.Ident); ok {
		switch rhs := as.RHS.(type) {
		case *ast.Ident:
			return true
		case *ast.Call:
			name := calleeName(rhs)
			return len(name) >= 2 && name[:2] == "mk"
		}
	}
	return false
}
