package difftest

import (
	"fmt"
	"math/rand"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/stats"
)

// SchemaVersion identifies the JSON layout of Report. The two drivers
// (usher-bench and usher-difftest) share one schema version so their
// reports evolve in lockstep.
const SchemaVersion = bench.SchemaVersion

// CampaignOptions configure a differential-testing sweep.
type CampaignOptions struct {
	// From is the first randprog seed; Seeds is the number of seeds.
	From, Seeds int64
	// Parallel is the worker count (<= 1 means serial). Results are
	// bit-identical for any value.
	Parallel int
	// Gen bounds the generated programs (zero value: randprog defaults).
	Gen randprog.Options
	// Minimize shrinks every diverging program to a minimal repro.
	Minimize bool
	// Stats optionally collects per-pass pipeline observations across the
	// whole sweep; the snapshot lands in Report.Phases.
	Stats *stats.Collector
}

// Finding is one diverging seed, with its minimized reproducer when
// minimization was requested.
type Finding struct {
	Seed       int64       `json:"seed"`
	Divergence *Divergence `json:"divergence"`
	// Mutation names the semantic mutation applied before the divergence
	// was observed (empty for plain generated programs).
	Mutation string `json:"mutation,omitempty"`
	// Clean is the generator's implied label for the program.
	Clean bool `json:"clean"`
	// Stmts and MinStmts count statements before and after minimization.
	Stmts     int    `json:"stmts"`
	MinStmts  int    `json:"min_stmts,omitempty"`
	Source    string `json:"source"`
	Minimized string `json:"minimized,omitempty"`
}

// Report is the machine-readable outcome of one campaign. Without
// Phases, every field is a pure function of the options, so the JSON
// rendering is bit-identical for any Parallel value and carries no timing
// or host information. With -stats, Phases is present: its runs and
// counters keep that guarantee, its wall_sec/alloc_bytes measurements do
// not (see internal/stats).
type Report struct {
	SchemaVersion int              `json:"schemaVersion"`
	Tool          string           `json:"tool"`
	Configs       []string         `json:"configs"`
	From          int64            `json:"from"`
	Seeds         int64            `json:"seeds"`
	Generator     randprog.Options `json:"generator"`
	// Checked counts seeds actually compared; Divergent counts findings.
	Checked   int64     `json:"checked"`
	Divergent int       `json:"divergent"`
	// Mutants counts mutated programs replayed (mutation campaigns only).
	Mutants  int64     `json:"mutants,omitempty"`
	Findings []Finding `json:"findings,omitempty"`
	// Phases is the per-pass analysis breakdown (present with -stats).
	Phases []stats.PassStats `json:"phases,omitempty"`
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	return bench.WriteJSONFile(path, r)
}

// Campaign sweeps the seed range through the differential oracle on
// opts.Parallel workers (reusing the deterministic usher-bench pool) and
// returns the findings ordered by seed. A divergence is a *finding*, not
// an error: the sweep always covers the whole range. The error return is
// reserved for infrastructure failures.
func Campaign(opts CampaignOptions) (*Report, error) {
	if opts.Seeds < 0 {
		return nil, fmt.Errorf("difftest: negative seed count %d", opts.Seeds)
	}
	gen := opts.Gen
	if gen == (randprog.Options{}) {
		gen = randprog.DefaultOptions
	}
	checker := New()
	checker.Stats = opts.Stats
	report := &Report{
		SchemaVersion: SchemaVersion,
		Tool:          "usher-difftest",
		From:          opts.From,
		Seeds:         opts.Seeds,
		Generator:     gen,
	}
	for _, cfg := range checker.Configs {
		report.Configs = append(report.Configs, cfg.String())
	}

	// findings[i] belongs to seed From+i: the slice is pre-sized and
	// written by index, so ordering never depends on scheduling.
	findings := make([]*Finding, opts.Seeds)
	err := bench.ForEach(opts.Parallel, int(opts.Seeds), func(i int) error {
		seed := opts.From + int64(i)
		src, info := randprog.GenerateInfo(seed, gen)
		div := checker.Check(src)
		if div == nil {
			return nil
		}
		f := &Finding{
			Seed:       seed,
			Divergence: div,
			Clean:      info.Clean(),
			Stmts:      CountStmts(src),
			Source:     src,
		}
		if opts.Minimize {
			min := Minimize(src, func(candidate string) bool {
				return div.SameBug(checker.Check(candidate))
			})
			f.Minimized = min
			f.MinStmts = CountStmts(min)
		}
		findings[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range findings {
		report.Checked++
		if f != nil {
			report.Divergent++
			report.Findings = append(report.Findings, *f)
		}
	}
	report.Checked = opts.Seeds
	report.Phases = opts.Stats.Snapshot()
	return report, nil
}

// MutationCampaignOptions configure a sanitizer-vs-sanitizer sweep:
// every seed's generated program is perturbed by semantic mutations
// (see MutationKinds) and each mutant is replayed under every
// configuration against the mutant's own interpreter ground truth.
type MutationCampaignOptions struct {
	CampaignOptions
	// MutantsPerSeed bounds the mutants replayed per seed; 0 replays
	// every applicable mutation. Mutants are sampled deterministically
	// per seed, spread across the mutation kinds.
	MutantsPerSeed int
}

// MutationCampaign sweeps the seed range, mutating each generated
// program and cross-checking every mutant. Divergences become findings
// tagged with their mutation; the report is bit-identical for any
// Parallel value.
func MutationCampaign(opts MutationCampaignOptions) (*Report, error) {
	if opts.Seeds < 0 {
		return nil, fmt.Errorf("difftest: negative seed count %d", opts.Seeds)
	}
	gen := opts.Gen
	if gen == (randprog.Options{}) {
		gen = randprog.DefaultOptions
	}
	checker := New()
	checker.Stats = opts.Stats
	report := &Report{
		SchemaVersion: SchemaVersion,
		Tool:          "usher-difftest",
		From:          opts.From,
		Seeds:         opts.Seeds,
		Generator:     gen,
	}
	for _, cfg := range checker.Configs {
		report.Configs = append(report.Configs, cfg.String())
	}

	// findings[i] and mutants[i] belong to seed From+i; per-seed work is
	// fully deterministic, so the report never depends on scheduling.
	findings := make([][]Finding, opts.Seeds)
	mutants := make([]int64, opts.Seeds)
	err := bench.ForEach(opts.Parallel, int(opts.Seeds), func(i int) error {
		seed := opts.From + int64(i)
		src, info := randprog.GenerateInfo(seed, gen)
		for _, m := range sampleMutations(src, seed, opts.MutantsPerSeed) {
			mutated, ok := Apply(src, m)
			if !ok {
				continue
			}
			mutants[i]++
			div := checker.Check(mutated)
			if div == nil {
				continue
			}
			f := Finding{
				Seed:       seed,
				Divergence: div,
				Mutation:   m.String(),
				Clean:      info.Clean(),
				Stmts:      CountStmts(mutated),
				Source:     mutated,
			}
			if opts.Minimize {
				min := Minimize(mutated, func(candidate string) bool {
					return div.SameBug(checker.Check(candidate))
				})
				f.Minimized = min
				f.MinStmts = CountStmts(min)
			}
			findings[i] = append(findings[i], f)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, fs := range findings {
		report.Mutants += mutants[i]
		report.Divergent += len(fs)
		report.Findings = append(report.Findings, fs...)
	}
	report.Checked = opts.Seeds
	report.Phases = opts.Stats.Snapshot()
	return report, nil
}

// sampleMutations picks up to limit mutations of src (all of them when
// limit <= 0), deterministically per seed and spread across kinds:
// candidates are taken round-robin — one of each kind per round, the
// in-kind order shuffled by the seed — so a low limit still covers
// every applicable kind.
func sampleMutations(src string, seed int64, limit int) []Mutation {
	all := Mutations(src)
	if limit <= 0 || len(all) <= limit {
		return all
	}
	byKind := make(map[MutationKind][]Mutation)
	for _, m := range all {
		byKind[m.Kind] = append(byKind[m.Kind], m)
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6d75746174)) // "mutat"
	for _, ms := range byKind {
		rng.Shuffle(len(ms), func(a, b int) { ms[a], ms[b] = ms[b], ms[a] })
	}
	var out []Mutation
	for len(out) < limit {
		advanced := false
		for _, k := range MutationKinds {
			if ms := byKind[k]; len(ms) > 0 {
				out = append(out, ms[0])
				byKind[k] = ms[1:]
				advanced = true
				if len(out) == limit {
					break
				}
			}
		}
		if !advanced {
			break
		}
	}
	return out
}
