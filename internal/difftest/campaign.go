package difftest

import (
	"fmt"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/stats"
)

// SchemaVersion identifies the JSON layout of Report. The two drivers
// (usher-bench and usher-difftest) share one schema version so their
// reports evolve in lockstep.
const SchemaVersion = bench.SchemaVersion

// CampaignOptions configure a differential-testing sweep.
type CampaignOptions struct {
	// From is the first randprog seed; Seeds is the number of seeds.
	From, Seeds int64
	// Parallel is the worker count (<= 1 means serial). Results are
	// bit-identical for any value.
	Parallel int
	// Gen bounds the generated programs (zero value: randprog defaults).
	Gen randprog.Options
	// Minimize shrinks every diverging program to a minimal repro.
	Minimize bool
	// Stats optionally collects per-pass pipeline observations across the
	// whole sweep; the snapshot lands in Report.Phases.
	Stats *stats.Collector
}

// Finding is one diverging seed, with its minimized reproducer when
// minimization was requested.
type Finding struct {
	Seed       int64       `json:"seed"`
	Divergence *Divergence `json:"divergence"`
	// Clean is the generator's implied label for the program.
	Clean bool `json:"clean"`
	// Stmts and MinStmts count statements before and after minimization.
	Stmts     int    `json:"stmts"`
	MinStmts  int    `json:"min_stmts,omitempty"`
	Source    string `json:"source"`
	Minimized string `json:"minimized,omitempty"`
}

// Report is the machine-readable outcome of one campaign. Without
// Phases, every field is a pure function of the options, so the JSON
// rendering is bit-identical for any Parallel value and carries no timing
// or host information. With -stats, Phases is present: its runs and
// counters keep that guarantee, its wall_sec/alloc_bytes measurements do
// not (see internal/stats).
type Report struct {
	SchemaVersion int              `json:"schemaVersion"`
	Tool          string           `json:"tool"`
	Configs       []string         `json:"configs"`
	From          int64            `json:"from"`
	Seeds         int64            `json:"seeds"`
	Generator     randprog.Options `json:"generator"`
	// Checked counts seeds actually compared; Divergent counts findings.
	Checked   int64     `json:"checked"`
	Divergent int       `json:"divergent"`
	Findings  []Finding `json:"findings,omitempty"`
	// Phases is the per-pass analysis breakdown (present with -stats).
	Phases []stats.PassStats `json:"phases,omitempty"`
}

// WriteJSON writes the report, indented, to path.
func (r *Report) WriteJSON(path string) error {
	return bench.WriteJSONFile(path, r)
}

// Campaign sweeps the seed range through the differential oracle on
// opts.Parallel workers (reusing the deterministic usher-bench pool) and
// returns the findings ordered by seed. A divergence is a *finding*, not
// an error: the sweep always covers the whole range. The error return is
// reserved for infrastructure failures.
func Campaign(opts CampaignOptions) (*Report, error) {
	if opts.Seeds < 0 {
		return nil, fmt.Errorf("difftest: negative seed count %d", opts.Seeds)
	}
	gen := opts.Gen
	if gen == (randprog.Options{}) {
		gen = randprog.DefaultOptions
	}
	checker := New()
	checker.Stats = opts.Stats
	report := &Report{
		SchemaVersion: SchemaVersion,
		Tool:          "usher-difftest",
		From:          opts.From,
		Seeds:         opts.Seeds,
		Generator:     gen,
	}
	for _, cfg := range checker.Configs {
		report.Configs = append(report.Configs, cfg.String())
	}

	// findings[i] belongs to seed From+i: the slice is pre-sized and
	// written by index, so ordering never depends on scheduling.
	findings := make([]*Finding, opts.Seeds)
	err := bench.ForEach(opts.Parallel, int(opts.Seeds), func(i int) error {
		seed := opts.From + int64(i)
		src, info := randprog.GenerateInfo(seed, gen)
		div := checker.Check(src)
		if div == nil {
			return nil
		}
		f := &Finding{
			Seed:       seed,
			Divergence: div,
			Clean:      info.Clean(),
			Stmts:      CountStmts(src),
			Source:     src,
		}
		if opts.Minimize {
			min := Minimize(src, func(candidate string) bool {
				return div.SameBug(checker.Check(candidate))
			})
			f.Minimized = min
			f.MinStmts = CountStmts(min)
		}
		findings[i] = f
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, f := range findings {
		report.Checked++
		if f != nil {
			report.Divergent++
			report.Findings = append(report.Findings, *f)
		}
	}
	report.Checked = opts.Seeds
	report.Phases = opts.Stats.Snapshot()
	return report, nil
}
