package difftest

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/vfgsum"
)

// mutationFixture exercises every mutation kind at least once: a
// load-bearing memset, a full-length memcpy, adjacent struct
// assignments, and an int initializer eligible for varargs routing.
const mutationFixture = `
int vsum(int n, ...) {
  int t = 0;
  for (int i = 0; i < n; i++) { t += va_arg(i); }
  return t;
}
struct S { int a; int b; };
struct S mks(int a) { struct S s; s.a = a; s.b = a * 2; return s; }
int main() {
  char buf[8];
  memset(buf, 65, 8);
  char dst[8];
  memcpy(dst, buf, 8);
  struct S s = mks(3);
  struct S t = mks(4);
  t = s;
  s.a = 9;
  int v = vsum(2, s.a, t.b);
  int w = dst[3] + buf[5];
  print(v + w + t.a);
  return 0;
}
`

func oracleSiteCount(t *testing.T, src string) int {
	t.Helper()
	prog, err := pipeline.Compile("mutfix.c", src, nil)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	native, err := usher.RunNative(prog, usher.RunOptions{})
	if err != nil {
		t.Fatalf("native run trapped: %v", err)
	}
	return len(native.OracleSites())
}

// TestMutationsEnumerate pins that the fixture yields every kind, in
// deterministic kind-major order, and that every mutant still compiles
// and runs trap-free (mutations perturb definedness, never validity).
func TestMutationsEnumerate(t *testing.T) {
	muts := Mutations(mutationFixture)
	if len(muts) == 0 {
		t.Fatal("no mutations enumerated")
	}
	seen := map[MutationKind]int{}
	lastKind := -1
	kindRank := map[MutationKind]int{}
	for i, k := range MutationKinds {
		kindRank[k] = i
	}
	for _, m := range muts {
		seen[m.Kind]++
		if r := kindRank[m.Kind]; r < lastKind {
			t.Errorf("mutation %v out of kind-major order", m)
		} else {
			lastKind = r
		}
	}
	for _, k := range MutationKinds {
		if seen[k] == 0 {
			t.Errorf("fixture yields no %s mutation", k)
		}
	}
	for _, m := range muts {
		mutated, ok := Apply(mutationFixture, m)
		if !ok {
			t.Fatalf("Apply(%v) failed", m)
		}
		if mutated == mutationFixture {
			t.Errorf("Apply(%v) returned the original program", m)
		}
		if _, err := pipeline.Compile("mut.c", mutated, nil); err != nil {
			t.Errorf("mutant %v does not compile: %v\n%s", m, err, mutated)
		}
	}
	// Unknown index: reported as inapplicable, not a panic.
	if _, ok := Apply(mutationFixture, Mutation{Kind: DropMemset, Index: 99}); ok {
		t.Error("Apply with out-of-range index succeeded")
	}
}

// TestMutantsPlantRealBugs is the sanitizer-vs-sanitizer core: dropping
// the load-bearing memset (and shrinking the copy feeding dst) plants a
// genuine undefined-value use — the interpreter oracle flags it — and
// every instrumentation configuration still agrees with the oracle on
// the planted bug (Check reports no divergence).
func TestMutantsPlantRealBugs(t *testing.T) {
	if n := oracleSiteCount(t, mutationFixture); n != 0 {
		t.Fatalf("fixture is not clean: %d oracle sites", n)
	}
	checker := New()
	for _, m := range []Mutation{{Kind: DropMemset, Index: 0}, {Kind: ShrinkCopyLen, Index: 0}} {
		mutated, ok := Apply(mutationFixture, m)
		if !ok {
			t.Fatalf("Apply(%v) failed", m)
		}
		if n := oracleSiteCount(t, mutated); n == 0 {
			t.Errorf("%v planted no bug (oracle empty)", m)
		}
		if div := checker.Check(mutated); div != nil {
			t.Errorf("sanitizers disagree on %v mutant: %v", m, div)
		}
	}
}

// TestRouteThroughVarargsPreservesCleanliness: vsum(1, e) is t = 0 + e,
// so routing a defined value through the varargs array must not
// introduce a warning or a divergence.
func TestRouteThroughVarargsPreservesCleanliness(t *testing.T) {
	m := Mutation{Kind: RouteThroughVarargs, Index: 0}
	mutated, ok := Apply(mutationFixture, m)
	if !ok {
		t.Fatalf("Apply(%v) failed", m)
	}
	if n := oracleSiteCount(t, mutated); n != 0 {
		t.Errorf("varargs routing introduced %d oracle site(s)", n)
	}
	if div := New().Check(mutated); div != nil {
		t.Errorf("divergence on varargs-routed program: %v", div)
	}
}

// TestCommittedMutantCorpusWarns keeps the committed per-kind mutant
// corpus (testdata/difftest/mutant-*.c) non-vacuous: each program must
// have a non-empty interpreter oracle — a real planted bug — with all
// four mutation kinds represented. TestCommittedRepros separately
// replays the same files through the full agreement contract.
func TestCommittedMutantCorpusWarns(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "difftest", "mutant-*.c"))
	if err != nil || len(files) < len(MutationKinds) {
		t.Fatalf("expected one corpus file per mutation kind, got %v (err %v)", files, err)
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			if n := oracleSiteCount(t, string(data)); n == 0 {
				t.Error("corpus program plants no bug (oracle empty)")
			}
		})
	}
}

// TestSampleMutationsCoverage pins the sampler: deterministic per seed,
// round-robin across kinds so a low limit still touches every
// applicable kind, and a pass-through when the limit is off.
func TestSampleMutationsCoverage(t *testing.T) {
	all := Mutations(mutationFixture)
	if got := sampleMutations(mutationFixture, 7, 0); !reflect.DeepEqual(got, all) {
		t.Errorf("limit 0 did not return all mutations")
	}
	limited := sampleMutations(mutationFixture, 7, len(MutationKinds))
	if len(limited) != len(MutationKinds) {
		t.Fatalf("limit %d returned %d mutations", len(MutationKinds), len(limited))
	}
	kinds := map[MutationKind]bool{}
	for _, m := range limited {
		kinds[m.Kind] = true
	}
	for _, k := range MutationKinds {
		if !kinds[k] {
			t.Errorf("sampler with limit %d skipped kind %s", len(MutationKinds), k)
		}
	}
	again := sampleMutations(mutationFixture, 7, len(MutationKinds))
	if !reflect.DeepEqual(limited, again) {
		t.Error("sampler is not deterministic for a fixed seed")
	}
}

// TestMutationCampaignSmoke runs the sanitizer-vs-sanitizer sweep over
// generated programs: every mutant of every seed must agree with its
// own interpreter ground truth.
func TestMutationCampaignSmoke(t *testing.T) {
	seeds, perSeed := int64(24), 5
	if testing.Short() {
		seeds, perSeed = 6, 3
	}
	report, err := MutationCampaign(MutationCampaignOptions{
		CampaignOptions: CampaignOptions{Seeds: seeds, Parallel: 8, Minimize: true},
		MutantsPerSeed:  perSeed,
	})
	if err != nil {
		t.Fatalf("MutationCampaign: %v", err)
	}
	if report.Checked != seeds {
		t.Errorf("checked %d seeds, want %d", report.Checked, seeds)
	}
	if report.Mutants == 0 {
		t.Error("campaign replayed no mutants (sweep is vacuous)")
	}
	for _, f := range report.Findings {
		t.Errorf("seed %d mutation %s diverged: %v\n%s", f.Seed, f.Mutation, f.Divergence, f.Minimized)
	}
}

// TestCampaignsUnderGammaSummaries smokes both campaign styles with the
// summary-based Γ resolver (Opt IV, the -gamma-summaries flag): the
// soundness contract must hold under either resolution strategy.
func TestCampaignsUnderGammaSummaries(t *testing.T) {
	defer func(old bool) { vfgsum.Enabled = old }(vfgsum.Enabled)
	vfgsum.Enabled = true
	seeds := int64(20)
	if testing.Short() {
		seeds = 5
	}
	plain, err := Campaign(CampaignOptions{Seeds: seeds, Parallel: 8, Minimize: true})
	if err != nil {
		t.Fatalf("Campaign: %v", err)
	}
	for _, f := range plain.Findings {
		t.Errorf("summary resolver: seed %d diverged: %v", f.Seed, f.Divergence)
	}
	mutated, err := MutationCampaign(MutationCampaignOptions{
		CampaignOptions: CampaignOptions{Seeds: seeds, Parallel: 8, Minimize: true},
		MutantsPerSeed:  3,
	})
	if err != nil {
		t.Fatalf("MutationCampaign: %v", err)
	}
	if mutated.Mutants == 0 {
		t.Error("no mutants replayed under the summary resolver")
	}
	for _, f := range mutated.Findings {
		t.Errorf("summary resolver: seed %d mutation %s diverged: %v", f.Seed, f.Mutation, f.Divergence)
	}
}

// TestMutationCampaignDeterministic: the report bytes are identical for
// any worker count.
func TestMutationCampaignDeterministic(t *testing.T) {
	run := func(parallel int) []byte {
		report, err := MutationCampaign(MutationCampaignOptions{
			CampaignOptions: CampaignOptions{From: 100, Seeds: 6, Parallel: parallel, Minimize: true},
			MutantsPerSeed:  3,
		})
		if err != nil {
			t.Fatalf("MutationCampaign(parallel=%d): %v", parallel, err)
		}
		buf, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return buf
	}
	serial, parallel := run(1), run(8)
	if !bytes.Equal(serial, parallel) {
		t.Errorf("mutation campaign report depends on worker count:\nserial:\n%s\nparallel:\n%s", serial, parallel)
	}
}
