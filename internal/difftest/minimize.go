package difftest

import (
	"github.com/valueflow/usher/internal/ast"
	"github.com/valueflow/usher/internal/parser"
)

// Predicate reports whether a candidate source still exhibits the
// behaviour being minimized. Candidates that no longer compile or no
// longer diverge must return false; Minimize never inspects the program
// itself, only the predicate's verdict, so it works for any property.
type Predicate func(src string) bool

// Minimize delta-debugs src down to a (locally) minimal program that
// still satisfies keep. Reduction works on the MiniC AST in three
// granularities, coarse to fine:
//
//   - declaration level: drop whole top-level functions and globals;
//   - statement level: ddmin-style contiguous chunk removal inside every
//     statement list, plus unwrapping if/else, while and for bodies into
//     their enclosing block;
//   - expression level: replace a binary operation by either operand,
//     an index expression by index zero, and initializers, conditions
//     and call arguments by the literal 0.
//
// After each accepted cut the candidate is reparsed and the passes
// restart, so reductions compose until a fixpoint: no single remaining
// cut preserves the predicate. If src itself fails keep (or fails to
// parse), it is returned unchanged.
func Minimize(src string, keep Predicate) string {
	if !keep(src) {
		return src
	}
	cur := src
	for {
		prog, err := parser.Parse("minimize.c", cur)
		if err != nil {
			return cur // not reachable for printer output; be safe
		}
		next, improved := reduceOnce(prog, keep)
		if !improved {
			return cur
		}
		cur = next
	}
}

// CountStmts returns the number of statements in the program, the size
// metric quoted by minimization reports ("shrunk by N% of statements").
// Parse failures count as zero statements.
func CountStmts(src string) int {
	prog, err := parser.Parse("count.c", src)
	if err != nil {
		return 0
	}
	n := 0
	for _, d := range prog.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			walkStmts(fd.Body, func(ast.Stmt) { n++ })
		}
	}
	return n
}

func walkStmts(b *ast.Block, f func(ast.Stmt)) {
	for _, s := range b.Stmts {
		f(s)
		switch s := s.(type) {
		case *ast.Block:
			walkStmts(s, f)
		case *ast.IfStmt:
			walkBody(s.Then, f)
			if s.Else != nil {
				walkBody(s.Else, f)
			}
		case *ast.WhileStmt:
			walkBody(s.Body, f)
		case *ast.ForStmt:
			walkBody(s.Body, f)
		}
	}
}

func walkBody(s ast.Stmt, f func(ast.Stmt)) {
	if blk, ok := s.(*ast.Block); ok {
		walkStmts(blk, f)
	} else if s != nil {
		f(s)
	}
}

// edit is one candidate reduction: apply mutates the AST, undo restores
// it exactly. Edits are generated against the current tree and applied
// one at a time; an accepted edit's rendering becomes the new tree.
type edit struct {
	apply func()
	undo  func()
}

// reduceOnce tries every candidate edit, coarsest first, and returns the
// rendering of the first accepted one.
func reduceOnce(prog *ast.Program, keep Predicate) (string, bool) {
	for _, e := range collectEdits(prog) {
		e.apply()
		candidate := ast.Print(prog)
		e.undo()
		if keep(candidate) {
			return candidate, true
		}
	}
	return "", false
}

func collectEdits(prog *ast.Program) []edit {
	var edits []edit

	// Declaration level: drop each top-level declaration.
	for i := range prog.Decls {
		i := i
		var removed ast.Decl
		edits = append(edits, edit{
			apply: func() {
				removed = prog.Decls[i]
				prog.Decls = append(prog.Decls[:i:i], prog.Decls[i+1:]...)
			},
			undo: func() {
				prog.Decls = append(prog.Decls[:i:i], append([]ast.Decl{removed}, prog.Decls[i:]...)...)
			},
		})
	}

	// Statement level: chunk removal over every statement list, halving
	// chunk sizes ddmin-style, then structure unwrapping.
	var lists []*[]ast.Stmt
	var unwraps []edit
	var exprs []*ast.Expr
	for _, d := range prog.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		collectBlock(fd.Body, &lists, &unwraps, &exprs)
	}
	for _, lp := range lists {
		n := len(*lp)
		for size := n; size >= 1; size /= 2 {
			for start := 0; start+size <= n; start += size {
				edits = append(edits, removeChunk(lp, start, size))
			}
		}
	}
	edits = append(edits, unwraps...)

	// Expression level: structural simplifications.
	for _, ep := range exprs {
		edits = append(edits, exprEdits(ep)...)
	}
	return edits
}

func removeChunk(lp *[]ast.Stmt, start, size int) edit {
	var removed []ast.Stmt
	return edit{
		apply: func() {
			s := *lp
			removed = append([]ast.Stmt(nil), s[start:start+size]...)
			*lp = append(s[:start:start], s[start+size:]...)
		},
		undo: func() {
			s := *lp
			restored := make([]ast.Stmt, 0, len(s)+len(removed))
			restored = append(restored, s[:start]...)
			restored = append(restored, removed...)
			restored = append(restored, s[start:]...)
			*lp = restored
		},
	}
}

// collectBlock gathers, in one walk: every statement list (for chunk
// removal), every control-structure unwrap, and every expression slot.
func collectBlock(b *ast.Block, lists *[]*[]ast.Stmt, unwraps *[]edit, exprs *[]*ast.Expr) {
	*lists = append(*lists, &b.Stmts)
	for i := range b.Stmts {
		i := i
		switch s := b.Stmts[i].(type) {
		case *ast.Block:
			collectBlock(s, lists, unwraps, exprs)
		case *ast.DeclStmt:
			if s.Decl.Init != nil {
				collectExpr(&s.Decl.Init, exprs)
			}
		case *ast.ExprStmt:
			collectExpr(&s.X, exprs)
		case *ast.IfStmt:
			collectExpr(&s.Cond, exprs)
			// Unwrap: replace the if with its then (or else) arm.
			*unwraps = append(*unwraps, replaceStmt(&b.Stmts, i, s.Then))
			if s.Else != nil {
				*unwraps = append(*unwraps, replaceStmt(&b.Stmts, i, s.Else))
			}
			descend(s.Then, lists, unwraps, exprs)
			if s.Else != nil {
				descend(s.Else, lists, unwraps, exprs)
			}
		case *ast.WhileStmt:
			collectExpr(&s.Cond, exprs)
			*unwraps = append(*unwraps, replaceStmt(&b.Stmts, i, s.Body))
			descend(s.Body, lists, unwraps, exprs)
		case *ast.ForStmt:
			if s.Cond != nil {
				collectExpr(&s.Cond, exprs)
			}
			*unwraps = append(*unwraps, replaceStmt(&b.Stmts, i, s.Body))
			descend(s.Body, lists, unwraps, exprs)
		case *ast.ReturnStmt:
			if s.X != nil {
				collectExpr(&s.X, exprs)
			}
		}
	}
}

func descend(s ast.Stmt, lists *[]*[]ast.Stmt, unwraps *[]edit, exprs *[]*ast.Expr) {
	if blk, ok := s.(*ast.Block); ok {
		collectBlock(blk, lists, unwraps, exprs)
	}
}

func replaceStmt(list *[]ast.Stmt, i int, with ast.Stmt) edit {
	var saved ast.Stmt
	return edit{
		apply: func() { saved = (*list)[i]; (*list)[i] = with },
		undo:  func() { (*list)[i] = saved },
	}
}

// collectExpr records the slot and recurses into subexpressions.
func collectExpr(ep *ast.Expr, exprs *[]*ast.Expr) {
	*exprs = append(*exprs, ep)
	switch e := (*ep).(type) {
	case *ast.Unary:
		collectExpr(&e.X, exprs)
	case *ast.Binary:
		collectExpr(&e.X, exprs)
		collectExpr(&e.Y, exprs)
	case *ast.Assign:
		collectExpr(&e.RHS, exprs)
	case *ast.Call:
		for i := range e.Args {
			collectExpr(&e.Args[i], exprs)
		}
	case *ast.Index:
		collectExpr(&e.Idx, exprs)
	}
}

// exprEdits proposes simplifications of the expression in slot ep.
func exprEdits(ep *ast.Expr) []edit {
	var out []edit
	replace := func(with ast.Expr) edit {
		var saved ast.Expr
		return edit{
			apply: func() { saved = *ep; *ep = with },
			undo:  func() { *ep = saved },
		}
	}
	switch e := (*ep).(type) {
	case *ast.Binary:
		out = append(out, replace(e.X), replace(e.Y))
	case *ast.Index:
		if n, ok := e.Idx.(*ast.NumberLit); !ok || n.Value != 0 {
			idx := &e.Idx
			var saved ast.Expr
			out = append(out, edit{
				apply: func() { saved = *idx; *idx = &ast.NumberLit{P: e.P} },
				undo:  func() { *idx = saved },
			})
		}
	case *ast.NumberLit, *ast.Ident, *ast.Assign, *ast.Call:
		// Assign/Call simplification happens through their slots below.
	}
	// Any non-literal, non-assignment expression may collapse to 0.
	switch (*ep).(type) {
	case *ast.NumberLit, *ast.Assign:
	default:
		out = append(out, replace(&ast.NumberLit{P: (*ep).Pos()}))
	}
	return out
}
