// Package difftest is the differential soundness oracle for the Usher
// instrumentation pipeline.
//
// The paper's central claim (§3.5) is that the guided instrumentation
// and its optimizations prune shadow work *without changing what the
// detector reports*. This package turns that claim into an executable
// oracle: each candidate MiniC program is compiled once, executed
// natively for the ground truth, and then executed under every
// instrumentation configuration — Full (MSan), Usher_TL, Usher_TL+AT,
// Usher+OptI, Usher (OptII) and Usher+OptIII — with the canonical
// warning sets cross-checked against the oracle and against each
// configuration's soundness contract:
//
//   - every configuration: identical program semantics (exit value,
//     output stream, executed instruction count), no shadow-soundness
//     violations (reads of uninitialized shadow state), and no false
//     positives (a reported site the oracle never reached);
//   - configurations without check elimination (MSan, Usher_TL,
//     Usher_TL+AT, Usher+OptI): the reported sites equal the oracle
//     sites exactly;
//   - configurations with check elimination (Usher, Usher+OptIII):
//     reported sites are a subset of the oracle's, and at least one
//     report survives whenever the oracle is non-empty (elision may
//     suppress dominated duplicates, never the detection itself).
//
// Any violation is a Divergence. The integrated minimizer (minimize.go)
// shrinks a diverging program to a minimal repro, and the campaign
// driver (campaign.go) sweeps randprog seed ranges in parallel with
// bit-identical output for any worker count.
package difftest

import (
	"fmt"
	"sort"
	"strings"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/stats"
)

// Kind classifies a divergence.
type Kind string

// Divergence kinds, roughly ordered by severity.
const (
	// KindCompile: a generated program failed to compile (generator bug).
	KindCompile Kind = "compile-error"
	// KindNativeTrap: the uninstrumented run trapped (generator bug —
	// generated programs must terminate cleanly within budget).
	KindNativeTrap Kind = "native-trap"
	// KindAnalyze: the static analysis failed on a compiled program.
	KindAnalyze Kind = "analyze-error"
	// KindRunTrap: an instrumented run trapped while the native run did
	// not — instrumentation must never change termination behaviour.
	KindRunTrap Kind = "run-trap"
	// KindExit: the instrumented exit value differs from the native one.
	KindExit Kind = "exit-mismatch"
	// KindOutput: the print streams differ.
	KindOutput Kind = "output-mismatch"
	// KindSteps: the executed instruction counts differ (shadow work is
	// accounted separately and must not perturb the instruction stream).
	KindSteps Kind = "step-mismatch"
	// KindViolation: the shadow machine read shadow state the plan never
	// initialized (the §3.4 well-definedness guarantee is broken).
	KindViolation Kind = "shadow-violation"
	// KindFalsePositive: a reported site the oracle never flagged.
	KindFalsePositive Kind = "false-positive"
	// KindMissed: an exact configuration failed to report an oracle site.
	KindMissed Kind = "missed-warning"
	// KindSuppressed: an eliding configuration suppressed every report of
	// a non-empty oracle.
	KindSuppressed Kind = "all-suppressed"
)

// Divergence describes one soundness violation found on one program.
type Divergence struct {
	// Config is the configuration that diverged ("" for compile/native
	// failures that precede any configuration).
	Config string `json:"config,omitempty"`
	// Kind classifies the violation.
	Kind Kind `json:"kind"`
	// Detail is a human-readable description.
	Detail string `json:"detail"`
}

func (d *Divergence) String() string {
	if d == nil {
		return "<no divergence>"
	}
	if d.Config == "" {
		return fmt.Sprintf("%s: %s", d.Kind, d.Detail)
	}
	return fmt.Sprintf("[%s] %s: %s", d.Config, d.Kind, d.Detail)
}

// SameBug reports whether two divergences witness the same underlying
// bug for minimization purposes: same configuration and same kind. The
// detail (labels, positions) is allowed to drift as the program shrinks.
func (d *Divergence) SameBug(o *Divergence) bool {
	return d != nil && o != nil && d.Config == o.Config && d.Kind == o.Kind
}

// exactConfigs report every oracle site; elidingConfigs may suppress
// dominated duplicates (Opt II / Opt III) but never the detection. The
// capability comes from usher's config table, the same source
// Session.Analyze dispatches on.
func eliding(cfg usher.Config) bool {
	return cfg.ElidesChecks()
}

// Checker runs one program under every configuration and compares the
// canonical warning sets. The zero value is not usable; call New.
type Checker struct {
	// Configs are the instrumentation configurations to cross-check.
	Configs []usher.Config
	// RunOpts configure every execution (the same options are applied to
	// the native ground-truth run and each instrumented run).
	RunOpts usher.RunOptions
	// Stats optionally records per-pass pipeline observations for every
	// checked program (nil records nothing).
	Stats *stats.Collector
}

// New returns a Checker covering every configuration, the paper's five
// plus the Opt III extension.
func New() *Checker {
	return &Checker{Configs: usher.ExtendedConfigs}
}

// Check compiles and cross-executes src, returning the first divergence
// found, or nil when every configuration agrees with the oracle.
func (c *Checker) Check(src string) *Divergence {
	prog, err := pipeline.Compile("difftest.c", src, c.Stats)
	if err != nil {
		return &Divergence{Kind: KindCompile, Detail: err.Error()}
	}
	native, err := usher.RunNative(prog, c.RunOpts)
	if err != nil {
		return &Divergence{Kind: KindNativeTrap, Detail: err.Error()}
	}
	oracle := native.OracleSites()

	session := usher.NewSessionObserved(prog, c.Stats)
	for _, cfg := range c.Configs {
		an, err := session.Analyze(cfg)
		if err != nil {
			return &Divergence{Config: cfg.String(), Kind: KindAnalyze, Detail: err.Error()}
		}
		res, err := an.Run(c.RunOpts)
		if err != nil {
			return &Divergence{Config: cfg.String(), Kind: KindRunTrap, Detail: err.Error()}
		}
		if d := compare(cfg, native, oracle, res); d != nil {
			return d
		}
	}
	return nil
}

// compare applies the per-configuration soundness contract.
func compare(cfg usher.Config, native *interp.Result, oracle map[interp.Site]bool, res *interp.Result) *Divergence {
	name := cfg.String()
	if res.Exit.Int != native.Exit.Int {
		return &Divergence{Config: name, Kind: KindExit,
			Detail: fmt.Sprintf("exit %d, native %d", res.Exit.Int, native.Exit.Int)}
	}
	if !equalInts(res.Out, native.Out) {
		return &Divergence{Config: name, Kind: KindOutput,
			Detail: fmt.Sprintf("output %v, native %v", clip(res.Out), clip(native.Out))}
	}
	if res.Steps != native.Steps {
		return &Divergence{Config: name, Kind: KindSteps,
			Detail: fmt.Sprintf("steps %d, native %d", res.Steps, native.Steps)}
	}
	if len(res.ShadowViolations) > 0 {
		return &Divergence{Config: name, Kind: KindViolation, Detail: res.ShadowViolations[0]}
	}
	shadow := res.ShadowSites()
	for _, w := range res.ShadowWarnings {
		if !oracle[interp.Site{Fn: w.Fn, Label: w.Label}] {
			return &Divergence{Config: name, Kind: KindFalsePositive,
				Detail: fmt.Sprintf("reported %v, oracle %s", w, siteSet(oracle))}
		}
	}
	if eliding(cfg) {
		if len(oracle) > 0 && len(shadow) == 0 {
			return &Divergence{Config: name, Kind: KindSuppressed,
				Detail: fmt.Sprintf("oracle has %d site(s) %s, none reported", len(oracle), siteSet(oracle))}
		}
		return nil
	}
	for _, w := range native.OracleWarnings {
		if !shadow[interp.Site{Fn: w.Fn, Label: w.Label}] {
			return &Divergence{Config: name, Kind: KindMissed,
				Detail: fmt.Sprintf("oracle site %v not reported (reported: %s)", w, siteSet(shadow))}
		}
	}
	return nil
}

func equalInts(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func clip(xs []int64) []int64 {
	if len(xs) > 8 {
		return xs[:8]
	}
	return xs
}

// siteSet renders a site set canonically (sorted) for divergence details.
func siteSet(s map[interp.Site]bool) string {
	keys := make([]string, 0, len(s))
	for site := range s {
		keys = append(keys, fmt.Sprintf("%s:l%d", site.Fn, site.Label))
	}
	sort.Strings(keys)
	return "{" + strings.Join(keys, ", ") + "}"
}
