package ssa_test

import (
	"strings"
	"testing"

	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/lower"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/ssa"
	"github.com/valueflow/usher/internal/types"
)

func buildSSA(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		t.Fatal(err)
	}
	ssa.Promote(irp)
	if err := ir.Verify(irp); err != nil {
		t.Fatalf("post-mem2reg verify: %v\n%s", err, ir.Print(irp))
	}
	if err := ssa.VerifySSA(irp); err != nil {
		t.Fatalf("SSA dominance: %v\n%s", err, ir.Print(irp))
	}
	return irp
}

func countKind[T ir.Instr](fn *ir.Function) int {
	n := 0
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if _, ok := in.(T); ok {
				n++
			}
		}
	}
	return n
}

func TestPromoteStraightLine(t *testing.T) {
	irp := buildSSA(t, `int main() { int x = 1; int y = x + 2; return y; }`)
	main := irp.FuncByName("main")
	if n := countKind[*ir.Load](main); n != 0 {
		t.Errorf("loads remaining = %d, want 0:\n%s", n, ir.PrintFunc(main))
	}
	if n := countKind[*ir.Store](main); n != 0 {
		t.Errorf("stores remaining = %d, want 0:\n%s", n, ir.PrintFunc(main))
	}
	if n := countKind[*ir.Alloc](main); n != 0 {
		t.Errorf("allocas remaining = %d, want 0:\n%s", n, ir.PrintFunc(main))
	}
}

func TestPromoteDiamondInsertsPhi(t *testing.T) {
	irp := buildSSA(t, `
int main(int c) {
  int x;
  if (c) { x = 1; } else { x = 2; }
  return x;
}`)
	main := irp.FuncByName("main")
	if n := countKind[*ir.Phi](main); n != 1 {
		t.Errorf("phis = %d, want 1:\n%s", n, ir.PrintFunc(main))
	}
}

func TestPromoteLoop(t *testing.T) {
	irp := buildSSA(t, `
int main() {
  int s = 0;
  for (int i = 0; i < 10; i++) { s += i; }
  return s;
}`)
	main := irp.FuncByName("main")
	if n := countKind[*ir.Phi](main); n < 2 {
		t.Errorf("phis = %d, want >= 2 (s and i at loop head):\n%s", n, ir.PrintFunc(main))
	}
	if n := countKind[*ir.Load](main); n != 0 {
		t.Errorf("loads = %d, want 0:\n%s", n, ir.PrintFunc(main))
	}
}

func TestAddressTakenNotPromoted(t *testing.T) {
	irp := buildSSA(t, `
int main() {
  int a;
  int b = 1;
  int *p = &a;
  *p = b;
  return a + b;
}`)
	main := irp.FuncByName("main")
	// a's slot must survive; b's and p's must not.
	allocNames := map[string]bool{}
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if a, ok := in.(*ir.Alloc); ok {
				allocNames[a.Obj.Name] = true
			}
		}
	}
	if !allocNames["a"] {
		t.Errorf("address-taken a was promoted: %v\n%s", allocNames, ir.PrintFunc(main))
	}
	if allocNames["b"] || allocNames["p"] {
		t.Errorf("b or p not promoted: %v\n%s", allocNames, ir.PrintFunc(main))
	}
}

func TestUninitializedReadBecomesUndefLoad(t *testing.T) {
	irp := buildSSA(t, `
int main(int c) {
  int x;
  if (c) { x = 1; }
  return x;
}`)
	main := irp.FuncByName("main")
	txt := ir.PrintFunc(main)
	if !strings.Contains(txt, "undef") {
		t.Errorf("expected pinned undef cell for read-before-write:\n%s", txt)
	}
	// The pinned object must not itself be promoted.
	found := false
	for _, blk := range main.Blocks {
		for _, in := range blk.Instrs {
			if a, ok := in.(*ir.Alloc); ok && a.Obj.Pinned {
				found = true
			}
		}
	}
	if !found {
		t.Error("pinned undef alloca missing")
	}
}

func TestAggregatesNotPromoted(t *testing.T) {
	irp := buildSSA(t, `
struct S { int a; int b; };
int main() {
  struct S s;
  int arr[4];
  s.a = 1;
  arr[0] = 2;
  return s.a + arr[0];
}`)
	main := irp.FuncByName("main")
	if n := countKind[*ir.Alloc](main); n != 2 {
		t.Errorf("allocas = %d, want 2 (struct + array):\n%s", n, ir.PrintFunc(main))
	}
}

func TestTrivialPhisRemoved(t *testing.T) {
	// x is assigned the same value on both paths via no assignment at all
	// inside the branch; the join needs no phi.
	irp := buildSSA(t, `
int main(int c) {
  int x = 5;
  if (c) { print(1); }
  return x;
}`)
	main := irp.FuncByName("main")
	if n := countKind[*ir.Phi](main); n != 0 {
		t.Errorf("phis = %d, want 0:\n%s", n, ir.PrintFunc(main))
	}
}

func TestParamPromotion(t *testing.T) {
	irp := buildSSA(t, `int add(int a, int b) { return a + b; } int main() { return add(1, 2); }`)
	add := irp.FuncByName("add")
	if n := countKind[*ir.Alloc](add); n != 0 {
		t.Errorf("param slots not promoted:\n%s", ir.PrintFunc(add))
	}
}

func TestShortCircuitPromotes(t *testing.T) {
	irp := buildSSA(t, `
int main(int a, int b) {
  if (a && b) { return 1; }
  return 0;
}`)
	main := irp.FuncByName("main")
	if n := countKind[*ir.Load](main); n != 0 {
		t.Errorf("sc slot not promoted, %d loads:\n%s", n, ir.PrintFunc(main))
	}
	if n := countKind[*ir.Phi](main); n < 1 {
		t.Errorf("phis = %d, want >= 1:\n%s", n, ir.PrintFunc(main))
	}
}

func TestGlobalsUntouched(t *testing.T) {
	irp := buildSSA(t, `int g; int main() { g = 1; return g; }`)
	main := irp.FuncByName("main")
	if n := countKind[*ir.Store](main); n != 1 {
		t.Errorf("global store removed? stores = %d, want 1:\n%s", n, ir.PrintFunc(main))
	}
	if n := countKind[*ir.Load](main); n != 1 {
		t.Errorf("global load removed? loads = %d, want 1:\n%s", n, ir.PrintFunc(main))
	}
}
