// Package ssa establishes SSA form for top-level variables.
//
// The Promote pass is the analogue of LLVM's mem2reg: stack slots of
// scalar, non-address-escaping locals are rewritten into virtual registers
// with phi functions at join points, using iterated dominance frontiers
// and a dominator-tree renaming walk. After Promote, every remaining load
// and store accesses a genuinely address-taken variable (Var_AT), exactly
// the setting of the paper's O0+IM configuration.
//
// A local scalar read before any write is an undefined top-level value; it
// is modelled by a load from a fresh pinned alloc_F cell, so undefinedness
// continues to flow through the ordinary memory machinery and remains
// visible to both the analysis and the shadow runtime.
package ssa

import (
	"fmt"

	"github.com/valueflow/usher/internal/cfg"
	"github.com/valueflow/usher/internal/ir"
)

// Promote runs mem2reg on every function of the program and returns the
// number of promoted slots.
func Promote(p *ir.Program) int {
	total := 0
	for _, fn := range p.Funcs {
		if fn.HasBody {
			total += promoteFunc(fn)
		}
	}
	return total
}

func promoteFunc(fn *ir.Function) int {
	ir.ComputeCFG(fn)
	dom := cfg.NewDomTree(fn)
	df := cfg.DominanceFrontiers(dom)

	allocas := promotableAllocas(fn)
	if len(allocas) == 0 {
		return 0
	}
	slot := make(map[*ir.Register]int, len(allocas)) // addr reg -> alloca index
	for i, a := range allocas {
		slot[a.Dst] = i
	}

	// Phi placement at iterated dominance frontiers of the defining blocks.
	type phiInfo struct {
		phi  *ir.Phi
		slot int
	}
	phis := make(map[*ir.Block][]phiInfo)
	for i, a := range allocas {
		defBlocks := make(map[*ir.Block]bool)
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if st, ok := in.(*ir.Store); ok {
					if r, ok := st.Addr.(*ir.Register); ok && r == a.Dst {
						defBlocks[b] = true
					}
				}
			}
		}
		// Seed the worklist in block order so the phi registers created
		// below are numbered deterministically across runs.
		work := make([]*ir.Block, 0, len(defBlocks))
		for _, b := range fn.Blocks {
			if defBlocks[b] {
				work = append(work, b)
			}
		}
		placed := make(map[*ir.Block]bool)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fb := range df[b] {
				if placed[fb] {
					continue
				}
				placed[fb] = true
				phi := ir.NewPhi(fn.NewReg(a.Obj.Name),
					make([]ir.Value, len(fb.Preds)),
					append([]*ir.Block(nil), fb.Preds...))
				fb.InsertFront(phi)
				phis[fb] = append(phis[fb], phiInfo{phi, i})
				if !defBlocks[fb] {
					defBlocks[fb] = true
					work = append(work, fb)
				}
			}
		}
	}

	// Lazily created undefined value for reads before any write.
	var undefVal ir.Value
	undef := func() ir.Value {
		if undefVal == nil {
			entry := fn.Entry()
			obj := fn.Prog.NewObject("undef", 1, ir.ObjStack)
			obj.Fn = fn
			obj.Pinned = true
			addr := fn.NewReg("undef.addr")
			dst := fn.NewReg("undef")
			// Insert before the entry terminator.
			at := len(entry.Instrs)
			if entry.Terminator() != nil {
				at--
			}
			entry.InsertAt(at, ir.NewAlloc(addr, obj))
			entry.InsertAt(at+1, ir.NewLoad(dst, addr))
			undefVal = dst
		}
		return undefVal
	}

	// Renaming walk over the dominator tree.
	replace := make(map[*ir.Register]ir.Value) // load dsts -> values
	var resolve func(v ir.Value) ir.Value
	resolve = func(v ir.Value) ir.Value {
		r, ok := v.(*ir.Register)
		if !ok {
			return v
		}
		if rep, ok := replace[r]; ok {
			res := resolve(rep)
			replace[r] = res // path compression
			return res
		}
		return v
	}

	dead := make(map[ir.Instr]bool)
	var rename func(b *ir.Block, cur []ir.Value)
	rename = func(b *ir.Block, cur []ir.Value) {
		cur = append([]ir.Value(nil), cur...) // copy for this subtree
		for _, pi := range phis[b] {
			cur[pi.slot] = pi.phi.Dst
		}
		for _, in := range b.Instrs {
			switch in := in.(type) {
			case *ir.Load:
				if r, ok := in.Addr.(*ir.Register); ok {
					if idx, isSlot := slot[r]; isSlot {
						if cur[idx] == nil {
							cur[idx] = undef()
						}
						replace[in.Dst] = cur[idx]
						dead[in] = true
					}
				}
			case *ir.Store:
				if r, ok := in.Addr.(*ir.Register); ok {
					if idx, isSlot := slot[r]; isSlot {
						cur[idx] = in.Val
						dead[in] = true
					}
				}
			}
		}
		for _, s := range b.Succs {
			for _, pi := range phis[s] {
				idx := pi.phi.IncomingIndex(b)
				if idx < 0 {
					continue
				}
				v := cur[pi.slot]
				if v == nil {
					v = undef()
				}
				pi.phi.Vals[idx] = v
			}
		}
		for _, kid := range dom.Children(b) {
			rename(kid, cur)
		}
	}
	rename(fn.Entry(), make([]ir.Value, len(allocas)))

	// Delete promoted allocas, loads and stores; rewrite operands.
	for _, a := range allocas {
		dead[a] = true
	}
	for _, b := range fn.Blocks {
		b.RemoveInstrs(func(in ir.Instr) bool { return dead[in] })
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			rewriteOperands(in, resolve)
		}
	}
	simplifyPhis(fn, resolve)
	return len(allocas)
}

// promotableAllocas returns the stack allocas whose address register is
// used only as the direct address of loads and stores.
func promotableAllocas(fn *ir.Function) []*ir.Alloc {
	escaped := make(map[*ir.Register]bool)
	candidates := make(map[*ir.Register]*ir.Alloc)
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if a, ok := in.(*ir.Alloc); ok {
				// Scalars only; aggregates are address-taken by nature and
				// their element accesses (FieldAddr/IndexAddr) escape the
				// address anyway.
				if a.Obj.Kind == ir.ObjStack && a.Obj.Size == 1 && !a.Obj.Pinned {
					candidates[a.Dst] = a
				}
			}
		}
	}
	mark := func(v ir.Value) {
		if r, ok := v.(*ir.Register); ok {
			escaped[r] = true
		}
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			switch in := in.(type) {
			case *ir.Load:
				// Addr use is fine.
			case *ir.Store:
				mark(in.Val) // storing the address escapes it
			default:
				for _, op := range in.Operands() {
					mark(op)
				}
			}
		}
	}
	var out []*ir.Alloc
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			if a, ok := in.(*ir.Alloc); ok {
				if candidates[a.Dst] != nil && !escaped[a.Dst] {
					out = append(out, a)
				}
			}
		}
	}
	return out
}

// rewriteOperands applies resolve to every operand of in, in place.
func rewriteOperands(in ir.Instr, resolve func(ir.Value) ir.Value) {
	switch in := in.(type) {
	case *ir.Alloc:
		if in.DynSize != nil {
			in.DynSize = resolve(in.DynSize)
		}
	case *ir.BinOp:
		in.X, in.Y = resolve(in.X), resolve(in.Y)
	case *ir.Copy:
		in.Src = resolve(in.Src)
	case *ir.Load:
		in.Addr = resolve(in.Addr)
	case *ir.Store:
		in.Addr, in.Val = resolve(in.Addr), resolve(in.Val)
	case *ir.MemSet:
		in.To, in.Val, in.Len = resolve(in.To), resolve(in.Val), resolve(in.Len)
	case *ir.MemCopy:
		in.To, in.From, in.Len = resolve(in.To), resolve(in.From), resolve(in.Len)
	case *ir.FieldAddr:
		in.Base = resolve(in.Base)
	case *ir.IndexAddr:
		in.Base, in.Idx = resolve(in.Base), resolve(in.Idx)
	case *ir.Call:
		if in.Callee != nil {
			in.Callee = resolve(in.Callee)
		}
		for i := range in.Args {
			in.Args[i] = resolve(in.Args[i])
		}
	case *ir.Ret:
		if in.Val != nil {
			in.Val = resolve(in.Val)
		}
	case *ir.Branch:
		in.Cond = resolve(in.Cond)
	case *ir.Phi:
		for i := range in.Vals {
			in.Vals[i] = resolve(in.Vals[i])
		}
	}
}

// simplifyPhis removes trivial phis (all incoming values identical,
// ignoring self-references) to a fixpoint.
func simplifyPhis(fn *ir.Function, resolve func(ir.Value) ir.Value) {
	replace := make(map[*ir.Register]ir.Value)
	var res func(v ir.Value) ir.Value
	res = func(v ir.Value) ir.Value {
		if r, ok := v.(*ir.Register); ok {
			if rep, ok := replace[r]; ok {
				return res(rep)
			}
		}
		return v
	}
	for changed := true; changed; {
		changed = false
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				phi, ok := in.(*ir.Phi)
				if !ok {
					continue
				}
				if _, gone := replace[phi.Dst]; gone {
					continue
				}
				var uniq ir.Value
				trivial := true
				for _, v := range phi.Vals {
					v = res(v)
					if v == phi.Dst {
						continue
					}
					if uniq == nil {
						uniq = v
					} else if uniq != v {
						trivial = false
						break
					}
				}
				if trivial && uniq != nil {
					replace[phi.Dst] = uniq
					changed = true
				}
			}
		}
	}
	if len(replace) == 0 {
		return
	}
	for _, b := range fn.Blocks {
		b.RemoveInstrs(func(in ir.Instr) bool {
			phi, ok := in.(*ir.Phi)
			if !ok {
				return false
			}
			_, gone := replace[phi.Dst]
			return gone
		})
	}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			rewriteOperands(in, res)
		}
	}
	_ = resolve
}

// VerifySSA checks SSA dominance: every register use is dominated by its
// definition (phi uses are checked at the end of the corresponding
// predecessor).
func VerifySSA(p *ir.Program) error {
	for _, fn := range p.Funcs {
		if !fn.HasBody {
			continue
		}
		ir.ComputeCFG(fn)
		dom := cfg.NewDomTree(fn)
		params := make(map[*ir.Register]bool)
		for _, pr := range fn.Params {
			params[pr] = true
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if phi, ok := in.(*ir.Phi); ok {
					for i, v := range phi.Vals {
						r, ok := v.(*ir.Register)
						if !ok || params[r] {
							continue
						}
						if r.Def == nil {
							return fmt.Errorf("%s: phi %s uses undefined %s", fn.Name, phi, r)
						}
						pred := phi.Preds[i]
						if !dom.Dominates(r.Def.Parent(), pred) {
							return fmt.Errorf("%s: phi operand %s (def in %s) does not dominate pred %s",
								fn.Name, r, r.Def.Parent(), pred)
						}
					}
					continue
				}
				for _, v := range in.Operands() {
					r, ok := v.(*ir.Register)
					if !ok || params[r] {
						continue
					}
					if r.Def == nil {
						return fmt.Errorf("%s: %s uses undefined register %s", fn.Name, in, r)
					}
					if !dom.InstrDominates(r.Def, in) {
						return fmt.Errorf("%s: use of %s in %q not dominated by def %q",
							fn.Name, r, in, r.Def)
					}
				}
			}
		}
	}
	return nil
}
