package service

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"sync"
	"testing"

	"github.com/valueflow/usher/internal/stats"
)

// multiFiles is a small module set with one executed undefined-value
// use (main branches on the conditionally assigned u).
func multiFiles() []FileEntry {
	return []FileEntry{
		{Name: "lib", Source: "#include \"base\"\nint twice(int x) { return helper(x) + x; }\n"},
		{Name: "base", Source: "int helper(int v) { return v + 1; }\n"},
		{Name: "main", Source: `
#include "lib"
int main() {
  int u;
  int v = twice(3);
  if (v > 100) { u = 1; }
  if (u > 0) { v += 1; }
  print(v);
  return 0;
}
`},
	}
}

func TestAnalyzeMultiFile(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	run := true
	resp, ar := postAnalyze(t, ts.URL, AnalyzeRequest{Files: multiFiles(), Run: &run})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ar.CacheHit {
		t.Error("first multi-file request was a cache hit")
	}
	if ar.Modules == nil || ar.Modules.Count != 3 || ar.Modules.Compiled != 3 || ar.Modules.Reused != 0 {
		t.Fatalf("modules summary = %+v, want count 3, compiled 3", ar.Modules)
	}
	if len(ar.Configs) != 1 || ar.Configs[0].Run == nil {
		t.Fatalf("configs = %+v", ar.Configs)
	}
	if len(ar.Configs[0].Run.Warnings) == 0 {
		t.Error("planted undefined use produced no warning")
	}

	// Identical resubmission: same key, full cache hit, zero passes.
	resp2, ar2 := postAnalyze(t, ts.URL, AnalyzeRequest{Files: multiFiles(), Run: &run})
	if resp2.StatusCode != http.StatusOK || !ar2.CacheHit || ar2.Key != ar.Key {
		t.Fatalf("resubmission: status %d, hit %v, key match %v",
			resp2.StatusCode, ar2.CacheHit, ar2.Key == ar.Key)
	}
	if len(ar2.Phases) != 0 {
		t.Errorf("cache hit ran %d passes, want 0", len(ar2.Phases))
	}

	// A 1-line edit of one leaf module: new program key (a miss), but
	// the unaffected modules resolve from warm units.
	edited := multiFiles()
	edited[1].Source = strings.Replace(edited[1].Source, "v + 1", "v + 2", 1)
	resp3, ar3 := postAnalyze(t, ts.URL, AnalyzeRequest{Files: edited, Run: &run})
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("edited set: status %d", resp3.StatusCode)
	}
	if ar3.CacheHit || ar3.Key == ar.Key {
		t.Fatal("edited set reused the old program key")
	}
	// base changed, so base, its dependent lib and main recompile —
	// every module here depends on base. Reused stays 0 for this shape;
	// the interesting half is module-cache hits when the edit misses a
	// module's closure:
	edited2 := multiFiles()
	edited2[2].Source = strings.Replace(edited2[2].Source, "twice(3)", "twice(4)", 1)
	resp4, ar4 := postAnalyze(t, ts.URL, AnalyzeRequest{Files: edited2, Run: &run})
	if resp4.StatusCode != http.StatusOK {
		t.Fatalf("edited main: status %d", resp4.StatusCode)
	}
	if ar4.Modules == nil || ar4.Modules.Reused != 2 || ar4.Modules.Compiled != 1 {
		t.Fatalf("after editing main only, modules = %+v, want reused 2 compiled 1", ar4.Modules)
	}

	st := s.Stats()
	if st.ModuleCache.Hits == 0 {
		t.Errorf("module cache recorded no hits: %+v", st.ModuleCache)
	}
}

// TestMultiFileStatsIncludeResolve pins the per-pass observability of
// module ("files") sessions: the resolution passes — resolve over the
// demanded graph variants and the Opt II re-resolution — must appear
// both in the request's own phase delta and in the /stats resident
// aggregate, exactly as they do for single-source sessions. The CI
// usherd smoke greps the same pass names out of a live /stats response.
func TestMultiFileStatsIncludeResolve(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	run := false
	resp, ar := postAnalyze(t, ts.URL, AnalyzeRequest{Files: multiFiles(), Run: &run})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	check := func(where string, phases []stats.PassStats) {
		t.Helper()
		seen := map[string]bool{}
		for _, ps := range phases {
			if ps.Runs > 0 {
				seen[ps.Pass] = true
			}
		}
		for _, pass := range []string{"resolve", "optII", "plan"} {
			if !seen[pass] {
				t.Errorf("%s omits the %s pass for a files session", where, pass)
			}
		}
	}
	check("request phase delta", ar.Phases)
	st := s.Stats()
	check("/stats aggregate", st.Phases)
	// The aggregate must still carry the module compile passes, proving
	// the resolve counters above come from the same files entry.
	var sawModuleCompile bool
	for _, ps := range st.Phases {
		if ps.Pass == "parse" && ps.Variant == "base" {
			sawModuleCompile = true
		}
	}
	if !sawModuleCompile {
		t.Error("/stats aggregate lost the per-module compile passes")
	}
}

func TestAnalyzeMultiFileErrors(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	post := func(req AnalyzeRequest) int {
		t.Helper()
		body, _ := json.Marshal(req)
		resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// source and files together are ambiguous.
	if got := post(AnalyzeRequest{Source: "int main() { return 0; }", Files: multiFiles()}); got != http.StatusBadRequest {
		t.Errorf("source+files: status %d, want 400", got)
	}
	// Empty files carry nothing to analyze.
	if got := post(AnalyzeRequest{Files: []FileEntry{{Name: "a"}}}); got != http.StatusBadRequest {
		t.Errorf("empty files: status %d, want 400", got)
	}
	// Graph errors are the client's fault.
	cyc := []FileEntry{
		{Name: "a", Source: "#include \"b\"\nint f();\n"},
		{Name: "b", Source: "#include \"a\"\nint g();\n"},
	}
	if got := post(AnalyzeRequest{Files: cyc}); got != http.StatusUnprocessableEntity {
		t.Errorf("cycle: status %d, want 422", got)
	}
	// So are per-module compile errors.
	broken := []FileEntry{
		{Name: "main", Source: "int main() { return undefined_fn(); }\n"},
	}
	if got := post(AnalyzeRequest{Files: broken}); got != http.StatusUnprocessableEntity {
		t.Errorf("compile error: status %d, want 422", got)
	}
}

// TestSingleFlightNoRebuild pins the fixed publication order in
// finish(): across many rounds of concurrent identical submissions,
// every key compiles exactly once — no request can slip between the
// in-flight claim being dropped and the LRU publication, because both
// happen under the same lock. Run under -race in CI.
func TestSingleFlightNoRebuild(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	const rounds, clients = 6, 8
	run := false
	for r := 0; r < rounds; r++ {
		src := fmt.Sprintf("int main() { int x = %d; print(x); return 0; }", r)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				body, _ := json.Marshal(AnalyzeRequest{Source: src, Run: &run})
				resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(string(body)))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status %d", resp.StatusCode)
				}
			}()
		}
		wg.Wait()
	}
	st := s.Stats()
	if st.CacheMisses != rounds {
		t.Errorf("cache misses = %d for %d distinct programs, want %d (a rebuild slipped through the single-flight window)",
			st.CacheMisses, rounds, rounds)
	}
	if st.CacheHits != rounds*(clients-1) {
		t.Errorf("cache hits = %d, want %d", st.CacheHits, rounds*(clients-1))
	}
	for _, ps := range st.Phases {
		if ps.Runs != rounds {
			t.Errorf("pass %s/%s ran %d times, want %d", ps.Pass, ps.Variant, ps.Runs, rounds)
		}
	}
}

func TestQuantile(t *testing.T) {
	cases := []struct {
		sorted []float64
		p      float64
		want   float64
	}{
		{[]float64{5}, 0, 5},
		{[]float64{5}, 0.99, 5},
		{[]float64{5}, 1, 5},
		// Median of two is the lower sample under nearest-rank (the old
		// round-half-up formula read the higher one).
		{[]float64{1, 2}, 0.5, 1},
		{[]float64{1, 2}, 0.51, 2},
		{[]float64{1, 2, 3, 4}, 0.5, 2},
		// p99 of a small sample clamps to the worst observed value
		// instead of indexing past the data.
		{[]float64{1, 2, 3, 4, 5}, 0.99, 5},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.90, 9},
		{[]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		// Out-of-range p clamps instead of panicking.
		{[]float64{1, 2, 3}, -0.5, 1},
		{[]float64{1, 2, 3}, 1.5, 3},
	}
	for _, tc := range cases {
		if got := Quantile(tc.sorted, tc.p); got != tc.want {
			t.Errorf("Quantile(%v, %v) = %v, want %v", tc.sorted, tc.p, got, tc.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile of an empty sample is not NaN")
	}
	// summarize feeds the helper: P99 of a tiny sample is its max.
	ls := summarize([]float64{3, 1, 2})
	if ls.P99 != 3 || ls.P50 != 2 || ls.Max != 3 {
		t.Errorf("summarize percentiles = %+v", ls)
	}
}
