// Package service implements usherd's long-running analysis server: an
// HTTP/JSON front end over the usher pipeline that amortizes static
// value-flow analysis across requests, the way the paper amortizes it
// across dynamic runs.
//
// # Request lifecycle
//
// POST /analyze carries MiniC source — either one file ("source") or a
// multi-file module set ("files"). The server keys the compiled program
// — and the pipeline.Store behind its usher.Session — by the SHA-256 of
// (optimization level, source) for single files and by (level,
// module.Graph.SetHash) for module sets, so a repeated or re-submitted
// identical program reuses every analysis artifact the earlier requests
// materialized: the second identical request runs zero pipeline passes
// (visible in the response's empty "phases" list and the /stats cache
// counters). Distinct programs occupy a byte-budgeted LRU
// (internal/cache) whose entry sizes are the pipeline's observed
// allocation volume — an upper bound on what the artifacts retain — so
// resident memory stays bounded under sustained traffic; least recently
// used programs are evicted whole.
//
// Module sets additionally share a per-module unit cache
// (module.Cache, budget ModuleCacheBytes) keyed by transitive content
// hash: a request that edits one module of a previously analyzed set
// gets a new program key — a program-cache miss — but its build re-runs
// the frontend only for the edited module and its dependents; every
// other module resolves from a warm unit. The response's "modules"
// summary reports the split.
//
// Concurrent identical submissions are single-flighted: the first
// request claims the key and builds; the rest coalesce onto the same
// entry (counted in /stats "coalesced") and wait for its build. An
// entry is published to the LRU before its in-flight claim is dropped,
// so there is no window where a racing request misses both and rebuilds.
//
// Per-request limits: the request body is capped (MaxBodyBytes), the
// whole request races a deadline (Timeout; the analysis itself is not
// preempted — a timed-out request's work completes and is cached for
// the next caller), and at most Workers requests analyze concurrently
// (the same bound discipline as bench.ForEach's pool; excess requests
// queue until the deadline).
//
// Failure discipline: compile errors are the client's fault (422) and
// are never cached — each submission of a broken source re-compiles.
// Analysis errors are the server's fault (500); the session's cached
// failure is evicted immediately (Session.EvictErrors) so a transient
// fault cannot poison the content-hash key for the daemon's lifetime.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/cache"
	"github.com/valueflow/usher/internal/interp"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/module"
	"github.com/valueflow/usher/internal/passes"
	"github.com/valueflow/usher/internal/pipeline"
	"github.com/valueflow/usher/internal/stats"
)

// SchemaVersion versions the /analyze, /stats and load-report JSON.
const SchemaVersion = 1

// Options configures a Server. The zero value is completed by New with
// the documented defaults.
type Options struct {
	// CacheBytes is the LRU budget for resident analysis artifacts
	// (default 256 MiB). Zero disables caching entirely.
	CacheBytes int64
	// ModuleCacheBytes is the budget for the per-module compile-unit
	// cache shared by multi-file requests (default 64 MiB). Negative
	// disables module reuse; every multi-file build compiles from
	// scratch.
	ModuleCacheBytes int64
	// MaxBodyBytes caps the /analyze request body (default 1 MiB).
	MaxBodyBytes int64
	// Timeout is the per-request deadline covering queueing, compile,
	// analysis and the dynamic run (default 30s).
	Timeout time.Duration
	// Workers bounds concurrently analyzing requests (default: NumCPU,
	// matching bench.DefaultParallelism).
	Workers int
	// MaxSteps bounds each dynamic run (default 50M instructions).
	MaxSteps int64
}

func (o Options) withDefaults() Options {
	if o.CacheBytes == 0 {
		o.CacheBytes = 256 << 20
	}
	if o.CacheBytes < 0 {
		o.CacheBytes = 0
	}
	if o.ModuleCacheBytes == 0 {
		o.ModuleCacheBytes = 64 << 20
	}
	if o.ModuleCacheBytes < 0 {
		o.ModuleCacheBytes = 0
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Timeout <= 0 {
		o.Timeout = 30 * time.Second
	}
	if o.Workers <= 0 {
		o.Workers = bench.DefaultParallelism()
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 50_000_000
	}
	return o
}

// Server is the analysis daemon's state: the artifact cache plus the
// request counters /stats reports. Create with New, serve via Handler.
type Server struct {
	opts    Options
	start   time.Time
	lru     *cache.LRU[*progEntry]
	modules *module.Cache
	sem     chan struct{}

	mu       sync.Mutex
	inflight map[string]*progEntry

	requests      atomic.Int64
	cacheHits     atomic.Int64
	coalesced     atomic.Int64
	cacheMisses   atomic.Int64
	compileErrors atomic.Int64
	analyzeErrors atomic.Int64
	timeouts      atomic.Int64
	runsExecuted  atomic.Int64
	errorsEvicted atomic.Int64
}

// progEntry is one cached program: the compiled IR, its analysis
// session, and the per-entry stats collector whose snapshot deltas
// yield each request's "passes run" list.
type progEntry struct {
	key    string
	srcLen int64

	once  sync.Once
	file  string
	src   string
	files []module.File // multi-file set; nil for single-source requests
	lvl   passes.Level
	mc    *module.Cache
	par   int

	prog *ir.Program
	sess *usher.Session
	sc   *stats.Collector
	mods *ModuleSummary
	err  error
}

func (e *progEntry) build() {
	var prog *ir.Program
	if e.files != nil {
		res, err := module.Build(e.files, module.Options{
			Cache: e.mc, Stats: e.sc, Parallel: e.par,
		})
		if err != nil {
			e.err = err
			return
		}
		prog = res.Prog
		e.mods = &ModuleSummary{
			Count: len(res.Units), Reused: res.Reused, Compiled: res.Compiled,
		}
	} else {
		var err error
		if prog, err = pipeline.Compile(e.file, e.src, e.sc); err != nil {
			e.err = err
			return
		}
	}
	if err := pipeline.ApplyLevel(prog, e.lvl, e.sc); err != nil {
		e.err = err
		return
	}
	e.prog = prog
	e.sess = usher.NewSessionObserved(prog, e.sc)
	// The sources are not retained past the build; only their length
	// feeds the size estimate.
	e.src = ""
	e.files = nil
}

// size is the entry's accounted cache footprint: the source length plus
// every observed pass's allocation volume. Total allocation over-counts
// what the artifacts retain (solver scratch is freed), which errs on
// the safe side of the memory bound.
func (e *progEntry) size() int64 {
	var total int64 = e.srcLen
	for _, ps := range e.sc.Snapshot() {
		total += int64(ps.AllocBytes)
	}
	return total
}

// New prepares a server (no listener; pair Handler with http.Server).
func New(opts Options) *Server {
	opts = opts.withDefaults()
	return &Server{
		opts:     opts,
		start:    time.Now(),
		lru:      cache.New[*progEntry](opts.CacheBytes),
		modules:  module.NewCache(opts.ModuleCacheBytes),
		sem:      make(chan struct{}, opts.Workers),
		inflight: make(map[string]*progEntry),
	}
}

// Handler returns the daemon's routes: POST /analyze, GET /stats,
// GET /healthz, and the standard pprof tree under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", s.handleAnalyze)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ---- /analyze ----

// FileEntry is one module of a multi-file submission.
type FileEntry struct {
	// Name is the module name: the position file name and the key other
	// modules' `#include "name"` directives resolve against.
	Name string `json:"name"`
	// Source is the module's MiniC source.
	Source string `json:"source"`
}

// AnalyzeRequest is the /analyze request body. Exactly one of Source
// (a single translation unit) or Files (a multi-file module set linked
// via `#include "name"` directives) must be set.
type AnalyzeRequest struct {
	// File is the display name used in diagnostics (default "request.c").
	// Single-file form only.
	File string `json:"file,omitempty"`
	// Source is the MiniC program (single-file form).
	Source string `json:"source,omitempty"`
	// Files is the module set (multi-file form). The program is keyed by
	// (level, set content hash); per-module compile units are reused
	// across requests from the daemon's module cache.
	Files []FileEntry `json:"files,omitempty"`
	// Configs names the instrumentation configurations to analyze under
	// (plan names like "Usher", or the usherc aliases msan/tl/tlat/opti/
	// usher/optiii; default ["Usher"]).
	Configs []string `json:"configs,omitempty"`
	// Level is the optimization level: O0, O0+IM (default), O1 or O2.
	Level string `json:"level,omitempty"`
	// Run selects whether to execute the program under each plan and
	// report dynamic warnings (default true).
	Run *bool `json:"run,omitempty"`
}

// Warning is one reported use of an undefined value.
type Warning struct {
	Fn    string `json:"fn"`
	Label int    `json:"label"`
	Pos   string `json:"pos"`
	What  string `json:"what"`
}

// RunResult is the dynamic half of one configuration's answer.
type RunResult struct {
	Exit         int64     `json:"exit"`
	Steps        int64     `json:"steps"`
	ShadowProps  int64     `json:"shadow_props"`
	ShadowChecks int64     `json:"shadow_checks"`
	Warnings     []Warning `json:"warnings"`
	// Error reports a trapped execution (division by zero, step budget,
	// ...): a property of the submitted program, not a server failure.
	Error string `json:"error,omitempty"`
}

// ConfigResult is one configuration's static plan statistics plus the
// optional dynamic run.
type ConfigResult struct {
	Config         string     `json:"config"`
	StaticProps    int        `json:"static_props"`
	StaticChecks   int        `json:"static_checks"`
	MFCsSimplified int        `json:"mfcs_simplified,omitempty"`
	Redirected     int        `json:"redirected,omitempty"`
	ChecksElided   int        `json:"checks_elided,omitempty"`
	Run            *RunResult `json:"run,omitempty"`
}

// ModuleSummary reports how a multi-file build split between warm
// units and fresh compiles.
type ModuleSummary struct {
	// Count is the number of modules in the set.
	Count int `json:"count"`
	// Reused counts modules resolved from warm compile units (module
	// cache hits or coalesced builds); Compiled counts modules whose
	// frontend passes ran. The split reflects the build that created
	// this program entry, not necessarily this request.
	Reused   int `json:"reused"`
	Compiled int `json:"compiled"`
}

// AnalyzeResponse is the /analyze response body.
type AnalyzeResponse struct {
	SchemaVersion int `json:"schema_version"`
	// Key is the content hash the program's artifacts are cached under:
	// hex SHA-256 of level + source (single-file) or of level + the
	// module set's SetHash (multi-file).
	Key string `json:"key"`
	// CacheHit reports whether the program's session already existed
	// (resident or being built by a concurrent request).
	CacheHit bool `json:"cache_hit"`
	// Modules summarizes a multi-file build (absent for single files).
	Modules *ModuleSummary `json:"modules,omitempty"`
	Configs []ConfigResult `json:"configs"`
	// Phases lists the pipeline passes that ran during THIS request
	// (empty on a full cache hit) with their wall time and counters.
	Phases    []stats.PassStats `json:"phases"`
	ElapsedMS float64           `json:"elapsed_ms"`
}

type httpError struct {
	status int
	msg    string
}

func (e *httpError) Error() string { return e.msg }

func fail(status int, format string, args ...any) *httpError {
	return &httpError{status: status, msg: fmt.Sprintf(format, args...)}
}

// Key returns the cache key for a single source at a level: the full
// hex SHA-256 of the level name and the source text.
func Key(level passes.Level, source string) string {
	h := sha256.New()
	h.Write([]byte(level.String()))
	h.Write([]byte{0})
	h.Write([]byte(source))
	return hex.EncodeToString(h.Sum(nil))
}

// KeySet returns the cache key for a module set at a level. The set
// hash already covers every module's name, source and dependency
// hashes; the domain separator keeps single-file and multi-file keys
// disjoint even for colliding strings.
func KeySet(level passes.Level, setHash string) string {
	h := sha256.New()
	h.Write([]byte(level.String()))
	h.Write([]byte{0})
	h.Write([]byte("module-set\x00"))
	h.Write([]byte(setHash))
	return hex.EncodeToString(h.Sum(nil))
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.requests.Add(1)
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	var req AnalyzeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}

	start := time.Now()
	deadline := time.NewTimer(s.opts.Timeout)
	defer deadline.Stop()
	done := make(chan struct{})
	var resp *AnalyzeResponse
	var herr *httpError
	go func() {
		defer close(done)
		resp, herr = s.analyze(&req, deadline.C)
	}()
	select {
	case <-done:
	case <-deadline.C:
		// The worker is not preempted: its result is cached for the next
		// request; only this response gives up.
		s.timeouts.Add(1)
		writeError(w, http.StatusGatewayTimeout,
			"request exceeded the %s deadline", s.opts.Timeout)
		return
	}
	if herr != nil {
		writeError(w, herr.status, "%s", herr.msg)
		return
	}
	resp.ElapsedMS = float64(time.Since(start).Microseconds()) / 1000
	writeJSON(w, http.StatusOK, resp)
}

// analyze is the worker half of handleAnalyze: validate, acquire a
// worker slot, resolve the cached session, analyze and optionally run.
func (s *Server) analyze(req *AnalyzeRequest, deadline <-chan time.Time) (*AnalyzeResponse, *httpError) {
	multi := len(req.Files) > 0
	if multi && strings.TrimSpace(req.Source) != "" {
		return nil, fail(http.StatusBadRequest, `"source" and "files" are mutually exclusive`)
	}
	if !multi && strings.TrimSpace(req.Source) == "" {
		return nil, fail(http.StatusBadRequest, `"source" or "files" is required`)
	}
	file := req.File
	if file == "" {
		file = "request.c"
	}
	levelName := req.Level
	if levelName == "" {
		levelName = "O0+IM"
	}
	level, err := ParseLevel(levelName)
	if err != nil {
		return nil, fail(http.StatusBadRequest, "%v", err)
	}
	cfgNames := req.Configs
	if len(cfgNames) == 0 {
		cfgNames = []string{"usher"}
	}
	cfgs := make([]usher.Config, len(cfgNames))
	for i, name := range cfgNames {
		if cfgs[i], err = ParseConfig(name); err != nil {
			return nil, fail(http.StatusBadRequest, "%v", err)
		}
	}
	run := req.Run == nil || *req.Run

	// Worker slot: the bounded pool. Queueing counts against the
	// request's own deadline rather than blocking without bound.
	select {
	case s.sem <- struct{}{}:
		defer func() { <-s.sem }()
	case <-deadline:
		return nil, fail(http.StatusServiceUnavailable,
			"no worker became available within the %s deadline", s.opts.Timeout)
	}

	var key string
	var files []module.File
	if multi {
		files = make([]module.File, len(req.Files))
		var srcLen int64
		for i, f := range req.Files {
			files[i] = module.File{Name: f.Name, Source: f.Source}
			srcLen += int64(len(f.Source))
		}
		if srcLen == 0 {
			return nil, fail(http.StatusBadRequest, `"files" must carry source`)
		}
		// The dependency graph is validated (and the set hash computed)
		// before the cache lookup; a broken graph is the client's fault.
		g, gerr := module.NewGraph(files)
		if gerr != nil {
			s.compileErrors.Add(1)
			return nil, fail(http.StatusUnprocessableEntity, "modules: %v", gerr)
		}
		key = KeySet(level, g.SetHash())
	} else {
		key = Key(level, req.Source)
	}
	e, hit := s.lookup(key, file, req.Source, files, level)
	if hit {
		s.cacheHits.Add(1)
	} else {
		s.cacheMisses.Add(1)
	}
	e.once.Do(e.build)
	if e.err != nil {
		// Compile errors are never cached: drop the entry so a corrected
		// resubmission (or even the same source) starts clean.
		s.abandon(e)
		s.compileErrors.Add(1)
		return nil, fail(http.StatusUnprocessableEntity, "compile: %v", e.err)
	}

	before := e.sc.Snapshot()
	resp := &AnalyzeResponse{SchemaVersion: SchemaVersion, Key: key, CacheHit: hit, Modules: e.mods}
	for i, cfg := range cfgs {
		an, err := e.sess.Analyze(cfg)
		if err != nil {
			// Evict the cached failure immediately: the next request must
			// retry the pass, not replay a possibly transient fault.
			s.errorsEvicted.Add(int64(e.sess.EvictErrors()))
			s.analyzeErrors.Add(1)
			s.finish(e)
			return nil, fail(http.StatusInternalServerError,
				"analyze %s: %v", cfgNames[i], err)
		}
		st := an.StaticStats()
		cr := ConfigResult{
			Config:         cfg.String(),
			StaticProps:    st.Props,
			StaticChecks:   st.Checks,
			MFCsSimplified: an.MFCsSimplified,
			Redirected:     an.Redirected,
			ChecksElided:   an.ChecksElided,
		}
		if run {
			cr.Run = s.runPlan(an)
		}
		resp.Configs = append(resp.Configs, cr)
	}
	resp.Phases = statsDelta(before, e.sc.Snapshot())
	s.finish(e)
	return resp, nil
}

// runPlan executes the program under the analysis' instrumentation and
// converts the result. A trap is reported in-band: the submitted
// program misbehaving is an answer, not a server failure.
func (s *Server) runPlan(an *usher.Analysis) *RunResult {
	s.runsExecuted.Add(1)
	res, err := an.Run(usher.RunOptions{MaxSteps: s.opts.MaxSteps})
	rr := &RunResult{}
	if err != nil {
		rr.Error = err.Error()
	}
	if res != nil {
		rr.Exit = res.Exit.Int
		rr.Steps = res.Steps
		rr.ShadowProps = res.ShadowProps
		rr.ShadowChecks = res.ShadowChecks
		rr.Warnings = convertWarnings(res.ShadowWarnings)
	}
	return rr
}

func convertWarnings(ws []interp.Warning) []Warning {
	out := make([]Warning, len(ws))
	for i, w := range ws {
		out[i] = Warning{Fn: w.Fn, Label: w.Label, Pos: w.Pos.String(), What: w.What}
	}
	return out
}

// lookup resolves the cache entry for key, creating and claiming it on
// a miss. The second return is true when the entry already existed —
// resident in the LRU or still being built by a concurrent request
// (the latter also counts as coalesced in /stats).
func (s *Server) lookup(key, file, src string, files []module.File, lvl passes.Level) (*progEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.lru.Get(key); ok {
		return e, true
	}
	if e, ok := s.inflight[key]; ok {
		s.coalesced.Add(1)
		return e, true
	}
	srcLen := int64(len(src))
	for _, f := range files {
		srcLen += int64(len(f.Source))
	}
	e := &progEntry{
		key: key, srcLen: srcLen,
		file: file, src: src, files: files, lvl: lvl,
		mc: s.modules, par: s.opts.Workers,
		sc: stats.New(),
	}
	s.inflight[key] = e
	return e, false
}

// finish publishes a successfully built entry: admitted to (or
// refreshed in) the LRU at its current accounted size, and cleared from
// the in-flight set. The Put happens before the in-flight claim is
// dropped — both under s.mu, the same order lookup takes the locks — so
// a racing identical request always finds the entry in one of the two
// maps and never rebuilds.
func (s *Server) finish(e *progEntry) {
	size := e.size()
	s.mu.Lock()
	s.lru.Put(e.key, e, size)
	delete(s.inflight, e.key)
	s.mu.Unlock()
}

// abandon drops an entry that must not be cached (compile failure).
func (s *Server) abandon(e *progEntry) {
	s.mu.Lock()
	s.lru.Remove(e.key)
	delete(s.inflight, e.key)
	s.mu.Unlock()
}

// ---- /stats ----

// ServerStats is the /stats response body.
type ServerStats struct {
	SchemaVersion int     `json:"schema_version"`
	UptimeSec     float64 `json:"uptime_sec"`
	NumCPU        int     `json:"num_cpu"`
	GOMAXPROCS    int     `json:"gomaxprocs"`
	Workers       int     `json:"workers"`

	Requests  int64 `json:"requests"`
	CacheHits int64 `json:"cache_hits"`
	// Coalesced counts the subset of cache hits that attached to a
	// concurrent identical request's in-flight build instead of a
	// resident entry.
	Coalesced     int64 `json:"coalesced"`
	CacheMisses   int64 `json:"cache_misses"`
	CompileErrors int64 `json:"compile_errors"`
	AnalyzeErrors int64 `json:"analyze_errors"`
	Timeouts      int64 `json:"timeouts"`
	RunsExecuted  int64 `json:"runs_executed"`
	// ErrorsEvicted counts cached pass failures discarded for retry
	// (Session.EvictErrors) after analysis errors.
	ErrorsEvicted int64 `json:"errors_evicted"`

	Cache cache.Stats `json:"cache"`
	// ModuleCache is the per-module compile-unit cache serving
	// multi-file requests.
	ModuleCache cache.Stats `json:"module_cache"`
	// HeapBytes is the Go runtime's live-heap estimate, for judging the
	// LRU budget against actual residency.
	HeapBytes uint64 `json:"heap_bytes"`
	// Phases aggregates the pipeline passes of every RESIDENT cache
	// entry (evicted programs leave the aggregate with their artifacts).
	Phases []stats.PassStats `json:"phases,omitempty"`
}

// Stats assembles the daemon's point-in-time statistics.
func (s *Server) Stats() ServerStats {
	var mem runtime.MemStats
	runtime.ReadMemStats(&mem)
	st := ServerStats{
		SchemaVersion: SchemaVersion,
		UptimeSec:     time.Since(s.start).Seconds(),
		NumCPU:        runtime.NumCPU(),
		GOMAXPROCS:    runtime.GOMAXPROCS(0),
		Workers:       s.opts.Workers,
		Requests:      s.requests.Load(),
		CacheHits:     s.cacheHits.Load(),
		Coalesced:     s.coalesced.Load(),
		CacheMisses:   s.cacheMisses.Load(),
		CompileErrors: s.compileErrors.Load(),
		AnalyzeErrors: s.analyzeErrors.Load(),
		Timeouts:      s.timeouts.Load(),
		RunsExecuted:  s.runsExecuted.Load(),
		ErrorsEvicted: s.errorsEvicted.Load(),
		Cache:         s.lru.Stats(),
		ModuleCache:   s.modules.Stats(),
		HeapBytes:     mem.HeapAlloc,
	}
	var snaps [][]stats.PassStats
	s.lru.Range(func(_ string, e *progEntry) {
		snaps = append(snaps, e.sc.Snapshot())
	})
	st.Phases = mergeSnapshots(snaps)
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// ---- helpers ----

// ParseConfig resolves a configuration name: either a plan name
// ("Usher", "UsherTL+AT", ...) or the usherc aliases.
func ParseConfig(name string) (usher.Config, error) {
	switch strings.ToLower(name) {
	case "msan", "full":
		return usher.ConfigMSan, nil
	case "tl":
		return usher.ConfigUsherTL, nil
	case "tlat", "tl+at":
		return usher.ConfigUsherTLAT, nil
	case "opti":
		return usher.ConfigUsherOptI, nil
	case "usher":
		return usher.ConfigUsherFull, nil
	case "optiii", "opt3", "usher3":
		return usher.ConfigUsherOptIII, nil
	}
	for _, c := range usher.ExtendedConfigs {
		if strings.EqualFold(c.String(), name) {
			return c, nil
		}
	}
	return 0, fmt.Errorf("unknown config %q (want a plan name like Usher, or msan/tl/tlat/opti/usher/optiii)", name)
}

// ParseLevel resolves an optimization-level name.
func ParseLevel(name string) (passes.Level, error) {
	switch strings.ToUpper(name) {
	case "O0":
		return passes.O0, nil
	case "O0+IM", "O0IM":
		return passes.O0IM, nil
	case "O1":
		return passes.O1, nil
	case "O2":
		return passes.O2, nil
	}
	return 0, fmt.Errorf("unknown level %q (want O0, O0+IM, O1 or O2)", name)
}

// statsDelta returns the passes whose run count grew between two
// snapshots of one collector: the work THIS request caused. Wall time,
// allocation and counters are differenced alongside.
func statsDelta(before, after []stats.PassStats) []stats.PassStats {
	type k struct{ pass, variant string }
	prev := make(map[k]stats.PassStats, len(before))
	for _, ps := range before {
		prev[k{ps.Pass, ps.Variant}] = ps
	}
	delta := []stats.PassStats{}
	for _, ps := range after {
		b := prev[k{ps.Pass, ps.Variant}]
		if ps.Runs <= b.Runs {
			continue
		}
		d := ps
		d.Runs -= b.Runs
		d.WallSec -= b.WallSec
		d.AllocBytes -= b.AllocBytes
		if len(b.Counters) > 0 {
			d.Counters = make(map[string]int64, len(ps.Counters))
			for name, v := range ps.Counters {
				if dv := v - b.Counters[name]; dv != 0 {
					d.Counters[name] = dv
				}
			}
		}
		delta = append(delta, d)
	}
	return delta
}

// mergeSnapshots folds several collectors' snapshots into one list,
// summing by (pass, variant) and keeping the pipeline order of the
// first snapshot that mentions each pass.
func mergeSnapshots(snaps [][]stats.PassStats) []stats.PassStats {
	type k struct{ pass, variant string }
	idx := make(map[k]int)
	var out []stats.PassStats
	for _, snap := range snaps {
		for _, ps := range snap {
			key := k{ps.Pass, ps.Variant}
			i, ok := idx[key]
			if !ok {
				idx[key] = len(out)
				cp := ps
				if ps.Counters != nil {
					cp.Counters = make(map[string]int64, len(ps.Counters))
					for name, v := range ps.Counters {
						cp.Counters[name] = v
					}
				}
				out = append(out, cp)
				continue
			}
			out[i].Runs += ps.Runs
			out[i].WallSec += ps.WallSec
			out[i].AllocBytes += ps.AllocBytes
			for name, v := range ps.Counters {
				if out[i].Counters == nil {
					out[i].Counters = make(map[string]int64)
				}
				out[i].Counters[name] += v
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pass != out[j].Pass {
			return out[i].Pass < out[j].Pass
		}
		return out[i].Variant < out[j].Variant
	})
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]any{
		"error":  fmt.Sprintf(format, args...),
		"status": status,
	})
}
