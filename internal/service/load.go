package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"time"

	"github.com/valueflow/usher/internal/bench"
	"github.com/valueflow/usher/internal/randprog"
	"github.com/valueflow/usher/internal/workload"
)

// LoadProgram is one corpus member the load generator submits.
type LoadProgram struct {
	Name   string
	Source string
}

// Corpus assembles the load-generator corpus: the 15 Table 1 workload
// profiles plus randSeeds random programs. The mix exercises both sides
// of the cache — a bounded set of distinct keys submitted repeatedly.
func Corpus(randSeeds int) []LoadProgram {
	var out []LoadProgram
	for _, p := range workload.Profiles {
		out = append(out, LoadProgram{Name: p.Name + ".c", Source: workload.Generate(p)})
	}
	for i := 0; i < randSeeds; i++ {
		seed := int64(1000 + i)
		out = append(out, LoadProgram{
			Name:   fmt.Sprintf("rand%03d.c", seed),
			Source: randprog.Generate(seed, randprog.DefaultOptions),
		})
	}
	return out
}

// LoadOptions configures RunLoad.
type LoadOptions struct {
	// Requests is the total request count (default 200).
	Requests int
	// Concurrency is the number of in-flight clients, driven through
	// bench.ForEach's pool (default bench.DefaultParallelism).
	Concurrency int
	// Configs and Level are forwarded in every request body.
	Configs []string
	Level   string
	// Run executes each program dynamically as well (default false: the
	// load benchmark measures the analysis service, not the interpreter).
	Run bool
	// RandSeeds extends the corpus past the 15 workload profiles.
	RandSeeds int
}

// LatencyStats summarizes per-request latency in milliseconds.
type LatencyStats struct {
	P50  float64 `json:"p50_ms"`
	P90  float64 `json:"p90_ms"`
	P99  float64 `json:"p99_ms"`
	Max  float64 `json:"max_ms"`
	Mean float64 `json:"mean_ms"`
}

// LoadReport is the load generator's result, committed as
// BENCH_usherd.json by cmd/usherd-load.
type LoadReport struct {
	SchemaVersion    int          `json:"schema_version"`
	Requests         int          `json:"requests"`
	Concurrency      int          `json:"concurrency"`
	DistinctPrograms int          `json:"distinct_programs"`
	Run              bool         `json:"run"`
	Errors           int          `json:"errors"`
	CacheHits        int          `json:"cache_hits"`
	DurationSec      float64      `json:"duration_sec"`
	RequestsPerSec   float64      `json:"requests_per_sec"`
	Latency          LatencyStats `json:"latency"`
	// Server is the daemon's /stats view after the run (cache residency,
	// evictions, heap bytes), tying throughput to the memory bound.
	Server *ServerStats `json:"server,omitempty"`
}

// RunLoad drives baseURL's /analyze endpoint with the corpus assigned
// round-robin — every program is submitted Requests/len(corpus) times,
// so steady state is cache-hit dominated — and reports throughput and
// latency percentiles. Individual request failures are counted, not
// fatal; a transport-level failure aborts the run.
func RunLoad(client *http.Client, baseURL string, opts LoadOptions) (*LoadReport, error) {
	if opts.Requests <= 0 {
		opts.Requests = 200
	}
	if opts.Concurrency <= 0 {
		opts.Concurrency = bench.DefaultParallelism()
	}
	if client == nil {
		client = http.DefaultClient
	}
	corpus := Corpus(opts.RandSeeds)

	bodies := make([][]byte, len(corpus))
	run := opts.Run
	for i, p := range corpus {
		b, err := json.Marshal(AnalyzeRequest{
			File: p.Name, Source: p.Source,
			Configs: opts.Configs, Level: opts.Level, Run: &run,
		})
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	latencies := make([]float64, opts.Requests)
	hits := make([]bool, opts.Requests)
	failures := make([]bool, opts.Requests)
	start := time.Now()
	err := bench.ForEach(opts.Concurrency, opts.Requests, func(i int) error {
		t0 := time.Now()
		resp, err := client.Post(baseURL+"/analyze", "application/json",
			bytes.NewReader(bodies[i%len(bodies)]))
		if err != nil {
			return fmt.Errorf("request %d: %w", i, err)
		}
		var ar AnalyzeResponse
		decErr := json.NewDecoder(resp.Body).Decode(&ar)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		latencies[i] = float64(time.Since(t0).Microseconds()) / 1000
		if resp.StatusCode != http.StatusOK || decErr != nil {
			failures[i] = true
			return nil
		}
		hits[i] = ar.CacheHit
		return nil
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, err
	}

	rep := &LoadReport{
		SchemaVersion:    SchemaVersion,
		Requests:         opts.Requests,
		Concurrency:      opts.Concurrency,
		DistinctPrograms: len(corpus),
		Run:              opts.Run,
		DurationSec:      elapsed.Seconds(),
		RequestsPerSec:   float64(opts.Requests) / elapsed.Seconds(),
		Latency:          summarize(latencies),
	}
	for i := range hits {
		if hits[i] {
			rep.CacheHits++
		}
		if failures[i] {
			rep.Errors++
		}
	}

	if stats, err := fetchStats(client, baseURL); err == nil {
		rep.Server = stats
	}
	return rep, nil
}

func fetchStats(client *http.Client, baseURL string) (*ServerStats, error) {
	resp, err := client.Get(baseURL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, err
	}
	// The aggregated per-pass phases are bulky and vary with eviction
	// timing; the committed benchmark keeps the scalar counters only.
	st.Phases = nil
	return &st, nil
}

// Quantile returns the nearest-rank p-quantile of an ascending-sorted
// sample: the smallest element with at least a p fraction of the
// samples at or below it (index ceil(p*n)-1, clamped into [0, n-1]).
// NaN for an empty sample.
//
// The clamped nearest-rank definition replaces the earlier
// round-half-up interpolation index int(p*(n-1)+0.5), which
// over-indexed small samples — the median of 2 read the larger sample,
// and p-values near 1 could round past the intended rank — and carried
// no range guard for p outside [0, 1].
func Quantile(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	i := int(math.Ceil(p*float64(n))) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

func summarize(ms []float64) LatencyStats {
	if len(ms) == 0 {
		return LatencyStats{}
	}
	sorted := append([]float64(nil), ms...)
	sort.Float64s(sorted)
	var sum float64
	for _, v := range sorted {
		sum += v
	}
	return LatencyStats{
		P50:  Quantile(sorted, 0.50),
		P90:  Quantile(sorted, 0.90),
		P99:  Quantile(sorted, 0.99),
		Max:  sorted[len(sorted)-1],
		Mean: sum / float64(len(sorted)),
	}
}
