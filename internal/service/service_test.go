package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

const testSrc = `
int main() {
  int x;
  int y = 0;
  if (y > 10) { x = 1; }
  print(x);
  return 0;
}
`

const cleanSrc = `
int main() {
  int total = 0;
  for (int i = 0; i < 10; i++) { total += i; }
  print(total);
  return 0;
}
`

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postAnalyze(t *testing.T, url string, req AnalyzeRequest) (*http.Response, *AnalyzeResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/analyze", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ar AnalyzeResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ar); err != nil {
			t.Fatalf("decoding response: %v", err)
		}
	}
	return resp, &ar
}

// TestAnalyzeCacheHit is the tentpole's acceptance criterion: the second
// identical request must be a cache hit that runs ZERO pipeline passes —
// no pointer, memssa, vfg, resolve or plan work — and still returns the
// same warnings.
func TestAnalyzeCacheHit(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := AnalyzeRequest{File: "warn.c", Source: testSrc, Configs: []string{"usher"}}

	resp1, ar1 := postAnalyze(t, ts.URL, req)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first request: status %d", resp1.StatusCode)
	}
	if ar1.CacheHit {
		t.Error("first request reported a cache hit")
	}
	if len(ar1.Phases) == 0 {
		t.Error("first request reported no pipeline phases")
	}
	if len(ar1.Configs) != 1 || ar1.Configs[0].Run == nil {
		t.Fatalf("malformed configs: %+v", ar1.Configs)
	}
	if len(ar1.Configs[0].Run.Warnings) == 0 {
		t.Error("known-buggy program produced no warnings")
	}

	resp2, ar2 := postAnalyze(t, ts.URL, req)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second request: status %d", resp2.StatusCode)
	}
	if !ar2.CacheHit {
		t.Error("second identical request missed the cache")
	}
	if len(ar2.Phases) != 0 {
		t.Errorf("cache hit ran %d pipeline passes, want 0: %+v", len(ar2.Phases), ar2.Phases)
	}
	if ar2.Key != ar1.Key {
		t.Errorf("keys differ across identical requests: %s vs %s", ar2.Key, ar1.Key)
	}
	if len(ar2.Configs[0].Run.Warnings) != len(ar1.Configs[0].Run.Warnings) {
		t.Error("cached session changed the warning count")
	}

	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("stats hits/misses = %d/%d, want 1/1", st.CacheHits, st.CacheMisses)
	}
}

// TestAnalyzeDistinctKeys pins the cache key: same source at a different
// optimization level is a different program.
func TestAnalyzeDistinctKeys(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	_, a := postAnalyze(t, ts.URL, AnalyzeRequest{Source: cleanSrc, Level: "O0"})
	_, b := postAnalyze(t, ts.URL, AnalyzeRequest{Source: cleanSrc, Level: "O2"})
	if a.Key == b.Key {
		t.Error("O0 and O2 share a cache key")
	}
	// The display file name must NOT be part of the key.
	_, c := postAnalyze(t, ts.URL, AnalyzeRequest{Source: cleanSrc, Level: "O0", File: "other.c"})
	if c.Key != a.Key || !c.CacheHit {
		t.Error("renaming the file changed the cache key")
	}
}

// TestAnalyzeMultiConfig checks a multi-config request and that the
// shared artifacts make the second config cheap (plan-only phases).
func TestAnalyzeMultiConfig(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	resp, ar := postAnalyze(t, ts.URL, AnalyzeRequest{
		Source:  testSrc,
		Configs: []string{"msan", "usher", "optiii"},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if len(ar.Configs) != 3 {
		t.Fatalf("got %d config results, want 3", len(ar.Configs))
	}
	msan, ush := ar.Configs[0], ar.Configs[1]
	if msan.StaticChecks <= ush.StaticChecks {
		t.Errorf("MSan checks (%d) not above Usher's (%d)", msan.StaticChecks, ush.StaticChecks)
	}
	// All three configs share one session: exactly one pointer pass ran.
	pointerRuns := int64(0)
	for _, ps := range ar.Phases {
		if ps.Pass == "pointer" {
			pointerRuns += ps.Runs
		}
	}
	if pointerRuns != 1 {
		t.Errorf("pointer pass ran %d times for 3 configs, want 1", pointerRuns)
	}
}

// TestAnalyzeCompileErrorNotCached submits a broken program twice: both
// must fail with 422 and neither may occupy the cache.
func TestAnalyzeCompileErrorNotCached(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	req := AnalyzeRequest{Source: "int main( { return 0; }"}
	for i := 0; i < 2; i++ {
		resp, _ := postAnalyze(t, ts.URL, req)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("attempt %d: status %d, want 422", i, resp.StatusCode)
		}
	}
	st := s.Stats()
	if st.CompileErrors != 2 {
		t.Errorf("compile_errors = %d, want 2", st.CompileErrors)
	}
	if st.Cache.Entries != 0 {
		t.Errorf("broken program is resident in the cache (%d entries)", st.Cache.Entries)
	}
}

// TestAnalyzeBadRequests sweeps the validation surface.
func TestAnalyzeBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxBodyBytes: 512})
	cases := []struct {
		name   string
		body   string
		status int
	}{
		{"empty source", `{"source":""}`, http.StatusBadRequest},
		{"bad json", `{"source":`, http.StatusBadRequest},
		{"bad config", `{"source":"int main() { return 0; }","configs":["turbo"]}`, http.StatusBadRequest},
		{"bad level", `{"source":"int main() { return 0; }","level":"O9"}`, http.StatusBadRequest},
		{"oversized body", `{"source":"` + strings.Repeat("x", 600) + `"}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.status)
		}
	}
	if resp, err := http.Get(ts.URL + "/analyze"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /analyze: status %d, want 405", resp.StatusCode)
		}
	}
}

// TestCacheEvictionBounds drives many distinct programs through a tiny
// cache budget and checks residency stays bounded while every request is
// still answered.
func TestCacheEvictionBounds(t *testing.T) {
	// Trivial programs cost ~20KiB of observed allocation each; a 64KiB
	// budget holds about three, forcing the sweep below to evict.
	s, ts := newTestServer(t, Options{CacheBytes: 64 << 10})
	run := false
	for i := 0; i < 8; i++ {
		src := fmt.Sprintf("int main() { int v%d = %d; print(v%d); return 0; }", i, i, i)
		resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: src, Run: &run})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d", i, resp.StatusCode)
		}
	}
	st := s.Stats()
	if st.Cache.Bytes > st.Cache.BudgetBytes {
		t.Errorf("resident %d bytes exceed the %d budget", st.Cache.Bytes, st.Cache.BudgetBytes)
	}
	if st.Cache.Evictions+st.Cache.Rejected == 0 {
		t.Error("8 programs through a 64KiB budget caused no evictions or rejections; sizes are not being accounted")
	}
	if st.Requests != 8 {
		t.Errorf("requests = %d, want 8", st.Requests)
	}
}

// TestStatsAndHealthEndpoints smoke-tests the observability surface,
// including pprof.
func TestStatsAndHealthEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	postAnalyze(t, ts.URL, AnalyzeRequest{Source: cleanSrc})

	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st ServerStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 1 || st.Cache.Entries != 1 || len(st.Phases) == 0 {
		t.Errorf("stats after one request: requests=%d entries=%d phases=%d",
			st.Requests, st.Cache.Entries, len(st.Phases))
	}
	if st.HeapBytes == 0 {
		t.Error("heap_bytes not populated")
	}

	for _, path := range []string{"/healthz", "/debug/pprof/", "/debug/pprof/cmdline"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d", path, resp.StatusCode)
		}
	}
}

// TestAnalyzeConcurrentIdentical hammers one source from many clients at
// once (run under -race): exactly one compile happens, everyone gets the
// same key, and the pipeline runs each pass once across ALL requests.
func TestAnalyzeConcurrentIdentical(t *testing.T) {
	s, ts := newTestServer(t, Options{})
	const clients = 8
	var wg sync.WaitGroup
	keys := make([]string, clients)
	errs := make([]error, clients)
	run := false
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, _ := json.Marshal(AnalyzeRequest{Source: testSrc, Run: &run})
			resp, err := http.Post(ts.URL+"/analyze", "application/json", strings.NewReader(string(body)))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			var ar AnalyzeResponse
			if errs[i] = json.NewDecoder(resp.Body).Decode(&ar); errs[i] == nil {
				keys[i] = ar.Key
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
	for i := 1; i < clients; i++ {
		if keys[i] != keys[0] {
			t.Fatalf("client %d got key %s, client 0 got %s", i, keys[i], keys[0])
		}
	}
	st := s.Stats()
	if st.CacheMisses != 1 {
		t.Errorf("cache misses = %d for one distinct program, want 1", st.CacheMisses)
	}
	for _, ps := range st.Phases {
		if ps.Runs != 1 {
			t.Errorf("pass %s/%s ran %d times across %d concurrent clients, want 1",
				ps.Pass, ps.Variant, ps.Runs, clients)
		}
	}
}

// TestRequestTimeout pins the deadline path: a request that cannot get a
// worker (or finish) inside the budget gets a timeout status instead of
// hanging.
func TestRequestTimeout(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, Timeout: 50 * time.Millisecond})
	// Saturate the single worker slot directly.
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	resp, _ := postAnalyze(t, ts.URL, AnalyzeRequest{Source: cleanSrc})
	if resp.StatusCode != http.StatusServiceUnavailable && resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 503 or 504", resp.StatusCode)
	}
	if s.Stats().Timeouts == 0 && resp.StatusCode == http.StatusGatewayTimeout {
		t.Error("timeout served but not counted")
	}
}

// TestRunLoadInProcess drives the real load generator against an
// in-process server: every request answered, hits dominate repeats.
func TestRunLoadInProcess(t *testing.T) {
	if testing.Short() {
		t.Skip("load generation is not short")
	}
	// The 17-program corpus sums to a few hundred MiB of accounted
	// artifacts; a 2GiB budget keeps them all resident so round two of
	// the round-robin is all hits. (Round-robin over a set LARGER than
	// the budget is LRU's pathological case — each entry is evicted just
	// before its next use — which TestCacheEvictionBounds exercises.)
	_, ts := newTestServer(t, Options{CacheBytes: 2 << 30})
	rep, err := RunLoad(ts.Client(), ts.URL, LoadOptions{
		Requests:    34, // 17 distinct programs, two rounds
		Concurrency: 4,
		RandSeeds:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d request errors", rep.Errors)
	}
	if rep.DistinctPrograms != 17 {
		t.Fatalf("corpus size %d, want 17", rep.DistinctPrograms)
	}
	// Round two of the round-robin must be all hits.
	if rep.CacheHits < rep.Requests-rep.DistinctPrograms {
		t.Errorf("cache hits %d below the repeat count %d",
			rep.CacheHits, rep.Requests-rep.DistinctPrograms)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("implausible latency summary: %+v", rep.Latency)
	}
	if rep.Server == nil || rep.Server.Requests < int64(rep.Requests) {
		t.Errorf("server stats not attached or inconsistent: %+v", rep.Server)
	}
}

func TestParseConfigAndLevel(t *testing.T) {
	for _, name := range []string{"usher", "Usher", "MSan", "msan", "UsherTL+AT", "tlat", "optiii", "Usher+OptIII"} {
		if _, err := ParseConfig(name); err != nil {
			t.Errorf("ParseConfig(%q): %v", name, err)
		}
	}
	if _, err := ParseConfig("turbo"); err == nil {
		t.Error("ParseConfig accepted an unknown name")
	}
	for _, name := range []string{"O0", "o0+im", "O1", "O2"} {
		if _, err := ParseLevel(name); err != nil {
			t.Errorf("ParseLevel(%q): %v", name, err)
		}
	}
	if _, err := ParseLevel("O9"); err == nil {
		t.Error("ParseLevel accepted an unknown level")
	}
}
