// Package cfg provides control-flow-graph analyses over IR functions:
// reverse postorder, dominator trees (Cooper–Harvey–Kennedy), dominance
// frontiers and natural-loop detection. These underpin SSA construction
// (package ssa), memory SSA (package memssa) and the dominance conditions
// of the paper's semi-strong updates and Opt II.
package cfg

import "github.com/valueflow/usher/internal/ir"

// DomTree is the dominator tree of a function.
type DomTree struct {
	fn *ir.Function
	// rpo[i] is the i-th block in reverse postorder; rpoNum is its index.
	rpo    []*ir.Block
	rpoNum map[*ir.Block]int
	idom   map[*ir.Block]*ir.Block
	// children of each block in the dominator tree.
	kids map[*ir.Block][]*ir.Block
	// dfs pre/post numbering of the dominator tree for O(1) dominance
	// queries.
	pre, post map[*ir.Block]int
}

// NewDomTree computes the dominator tree of fn using the iterative
// algorithm of Cooper, Harvey and Kennedy. Unreachable blocks are ignored.
func NewDomTree(fn *ir.Function) *DomTree {
	d := &DomTree{
		fn:     fn,
		rpoNum: make(map[*ir.Block]int),
		idom:   make(map[*ir.Block]*ir.Block),
		kids:   make(map[*ir.Block][]*ir.Block),
		pre:    make(map[*ir.Block]int),
		post:   make(map[*ir.Block]int),
	}
	entry := fn.Entry()
	if entry == nil {
		return d
	}
	d.rpo = ReversePostorder(fn)
	for i, b := range d.rpo {
		d.rpoNum[b] = i
	}

	d.idom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range d.rpo[1:] {
			var newIdom *ir.Block
			for _, p := range b.Preds {
				if _, processed := d.idom[p]; !processed {
					continue
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom != nil && d.idom[b] != newIdom {
				d.idom[b] = newIdom
				changed = true
			}
		}
	}
	for _, b := range d.rpo {
		if b != entry {
			d.kids[d.idom[b]] = append(d.kids[d.idom[b]], b)
		}
	}
	// DFS numbering for dominance queries.
	clock := 0
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		clock++
		d.pre[b] = clock
		for _, k := range d.kids[b] {
			dfs(k)
		}
		clock++
		d.post[b] = clock
	}
	dfs(entry)
	return d
}

func (d *DomTree) intersect(b1, b2 *ir.Block) *ir.Block {
	f1, f2 := b1, b2
	for f1 != f2 {
		for d.rpoNum[f1] > d.rpoNum[f2] {
			f1 = d.idom[f1]
		}
		for d.rpoNum[f2] > d.rpoNum[f1] {
			f2 = d.idom[f2]
		}
	}
	return f1
}

// Idom returns the immediate dominator of b (the entry's idom is itself).
func (d *DomTree) Idom(b *ir.Block) *ir.Block { return d.idom[b] }

// Children returns b's children in the dominator tree.
func (d *DomTree) Children(b *ir.Block) []*ir.Block { return d.kids[b] }

// RPO returns the blocks in reverse postorder.
func (d *DomTree) RPO() []*ir.Block { return d.rpo }

// Dominates reports whether a dominates b (reflexively).
func (d *DomTree) Dominates(a, b *ir.Block) bool {
	pa, ok := d.pre[a]
	if !ok {
		return false
	}
	pb, ok := d.pre[b]
	if !ok {
		return false
	}
	return pa <= pb && d.post[b] <= d.post[a]
}

// InstrDominates reports whether instruction a dominates instruction b:
// strictly earlier in the same block, or in a strictly dominating block.
// An instruction does not dominate itself.
func (d *DomTree) InstrDominates(a, b ir.Instr) bool {
	ba, bb := a.Parent(), b.Parent()
	if ba == bb {
		for _, in := range ba.Instrs {
			if in == a {
				return a != b
			}
			if in == b {
				return false
			}
		}
		return false
	}
	return ba != bb && d.Dominates(ba, bb)
}

// ReversePostorder returns fn's reachable blocks in reverse postorder.
func ReversePostorder(fn *ir.Function) []*ir.Block {
	entry := fn.Entry()
	if entry == nil {
		return nil
	}
	seen := make(map[*ir.Block]bool)
	var post []*ir.Block
	var dfs func(b *ir.Block)
	dfs = func(b *ir.Block) {
		seen[b] = true
		for _, s := range b.Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(entry)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// DominanceFrontiers computes the dominance frontier of every block using
// the standard algorithm over the dominator tree.
func DominanceFrontiers(d *DomTree) map[*ir.Block][]*ir.Block {
	df := make(map[*ir.Block][]*ir.Block)
	for _, b := range d.rpo {
		if len(b.Preds) < 2 {
			continue
		}
		for _, p := range b.Preds {
			runner := p
			for runner != nil && runner != d.idom[b] {
				if !containsBlock(df[runner], b) {
					df[runner] = append(df[runner], b)
				}
				next := d.idom[runner]
				if next == runner { // entry
					break
				}
				runner = next
			}
		}
	}
	return df
}

func containsBlock(s []*ir.Block, b *ir.Block) bool {
	for _, x := range s {
		if x == b {
			return true
		}
	}
	return false
}

// LoopInfo records, per block, whether it is inside any natural loop.
type LoopInfo struct {
	inLoop map[*ir.Block]bool
}

// FindLoops detects natural loops (back edges a->b where b dominates a)
// and marks all blocks in their bodies.
func FindLoops(fn *ir.Function, d *DomTree) *LoopInfo {
	li := &LoopInfo{inLoop: make(map[*ir.Block]bool)}
	for _, b := range d.rpo {
		for _, s := range b.Succs {
			if d.Dominates(s, b) {
				// back edge b -> s; collect the loop body by walking
				// predecessors from b until s.
				li.inLoop[s] = true
				stack := []*ir.Block{b}
				for len(stack) > 0 {
					n := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					if li.inLoop[n] {
						continue
					}
					li.inLoop[n] = true
					for _, p := range n.Preds {
						stack = append(stack, p)
					}
				}
			}
		}
	}
	return li
}

// InLoop reports whether b lies inside any natural loop.
func (li *LoopInfo) InLoop(b *ir.Block) bool { return li.inLoop[b] }
