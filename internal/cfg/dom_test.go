package cfg_test

import (
	"testing"

	"github.com/valueflow/usher/internal/cfg"
	"github.com/valueflow/usher/internal/ir"
	"github.com/valueflow/usher/internal/lower"
	"github.com/valueflow/usher/internal/parser"
	"github.com/valueflow/usher/internal/types"
)

func build(t *testing.T, src string) *ir.Program {
	t.Helper()
	prog, err := parser.Parse("t.c", src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := types.Check(prog)
	if err != nil {
		t.Fatal(err)
	}
	irp, err := lower.Lower(prog, info)
	if err != nil {
		t.Fatal(err)
	}
	return irp
}

// diamond builds a function with an if/else diamond.
func diamond(t *testing.T) *ir.Function {
	irp := build(t, `
int main(int c) {
  int x;
  if (c) { x = 1; } else { x = 2; }
  return x;
}`)
	return irp.FuncByName("main")
}

func TestDomTreeDiamond(t *testing.T) {
	fn := diamond(t)
	dom := cfg.NewDomTree(fn)
	entry := fn.Entry()

	byName := make(map[string]*ir.Block)
	for _, b := range fn.Blocks {
		byName[b.Name] = b
	}
	then, els, done := byName["if.then"], byName["if.else"], byName["if.done"]
	body := byName["body"]
	if then == nil || els == nil || done == nil || body == nil {
		t.Fatalf("blocks missing: %v", fn.Blocks)
	}
	if !dom.Dominates(entry, done) || !dom.Dominates(body, done) {
		t.Error("entry and body must dominate if.done")
	}
	if dom.Dominates(then, done) {
		t.Error("if.then must not dominate if.done")
	}
	if dom.Idom(done) != body {
		t.Errorf("idom(if.done) = %s, want body", dom.Idom(done))
	}
	if !dom.Dominates(done, done) {
		t.Error("dominance must be reflexive")
	}
}

func TestDominanceFrontiers(t *testing.T) {
	fn := diamond(t)
	dom := cfg.NewDomTree(fn)
	df := cfg.DominanceFrontiers(dom)
	byName := make(map[string]*ir.Block)
	for _, b := range fn.Blocks {
		byName[b.Name] = b
	}
	then, done := byName["if.then"], byName["if.done"]
	found := false
	for _, b := range df[then] {
		if b == done {
			found = true
		}
	}
	if !found {
		t.Errorf("DF(if.then) = %v, want to contain if.done", df[then])
	}
	if len(df[done]) != 0 {
		t.Errorf("DF(if.done) = %v, want empty", df[done])
	}
}

func TestRPOStartsAtEntry(t *testing.T) {
	fn := diamond(t)
	rpo := cfg.ReversePostorder(fn)
	if len(rpo) == 0 || rpo[0] != fn.Entry() {
		t.Fatalf("rpo[0] = %v, want entry", rpo)
	}
	// every block's preds appear consistent: a block other than loop heads
	// appears after at least one pred
	seen := map[*ir.Block]int{}
	for i, b := range rpo {
		seen[b] = i
	}
	if len(seen) != len(rpo) {
		t.Error("duplicate blocks in RPO")
	}
}

func TestLoopDetection(t *testing.T) {
	irp := build(t, `
int main() {
  int s = 0;
  for (int i = 0; i < 4; i++) { s += i; }
  return s;
}`)
	fn := irp.FuncByName("main")
	dom := cfg.NewDomTree(fn)
	li := cfg.FindLoops(fn, dom)
	var inLoop, outLoop int
	for _, b := range fn.Blocks {
		if li.InLoop(b) {
			inLoop++
		} else {
			outLoop++
		}
	}
	if inLoop < 3 {
		t.Errorf("blocks in loop = %d, want >= 3 (cond, body, post)", inLoop)
	}
	if outLoop < 2 {
		t.Errorf("blocks outside loop = %d, want >= 2 (entry, done)", outLoop)
	}
	if li.InLoop(fn.Entry()) {
		t.Error("entry must not be in a loop")
	}
}

func TestInstrDominates(t *testing.T) {
	fn := diamond(t)
	dom := cfg.NewDomTree(fn)
	body := fn.Blocks[1]
	if len(body.Instrs) < 2 {
		t.Skip("body too short")
	}
	a, b := body.Instrs[0], body.Instrs[1]
	if !dom.InstrDominates(a, b) {
		t.Error("earlier instruction must dominate later one in same block")
	}
	if dom.InstrDominates(b, a) {
		t.Error("later instruction must not dominate earlier one")
	}
	if dom.InstrDominates(a, a) {
		t.Error("instruction must not dominate itself")
	}
}

func TestNestedLoops(t *testing.T) {
	irp := build(t, `
int main() {
  int s = 0;
  for (int i = 0; i < 3; i++) {
    for (int j = 0; j < 3; j++) { s += j; }
  }
  return s;
}`)
	fn := irp.FuncByName("main")
	dom := cfg.NewDomTree(fn)
	li := cfg.FindLoops(fn, dom)
	count := 0
	for _, b := range fn.Blocks {
		if li.InLoop(b) {
			count++
		}
	}
	if count < 6 {
		t.Errorf("nested-loop blocks = %d, want >= 6", count)
	}
}
