package workload_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/module"
	"github.com/valueflow/usher/internal/workload"
)

func toModuleFiles(mf []workload.ModuleFile) []module.File {
	out := make([]module.File, len(mf))
	for i, f := range mf {
		out[i] = module.File{Name: f.Name, Source: f.Source}
	}
	return out
}

func TestModuleProjectShape(t *testing.T) {
	p := workload.DefaultModuleProject
	files := p.GenerateModules()
	if len(files) != p.NumModules() || len(files) != 50 {
		t.Fatalf("modules = %d (NumModules %d), want 50", len(files), p.NumModules())
	}
	again := p.GenerateModules()
	for i := range files {
		if files[i] != again[i] {
			t.Fatalf("generation is not deterministic at %s", files[i].Name)
		}
	}
	g, err := module.NewGraph(toModuleFiles(files))
	if err != nil {
		t.Fatalf("graph: %v", err)
	}
	// The layering pins the batch structure: core, util, the libs, the
	// aggregators, main — five topological levels.
	batches := g.Batches()
	if len(batches) != 5 {
		t.Fatalf("batches = %d, want 5", len(batches))
	}
	want := []int{1, 1, 40, 7, 1}
	for i, b := range batches {
		if len(b) != want[i] {
			t.Errorf("batch %d has %d modules, want %d", i, len(b), want[i])
		}
	}
}

// TestModuleProjectRuns builds the 50-module project, runs it under the
// full Usher plan, and checks the planted bugs surface: libs 13, 26 and
// 39 (1-based) leave a heap field uninitialized on an executed path.
func TestModuleProjectRuns(t *testing.T) {
	files := workload.DefaultModuleProject.GenerateModules()
	res, err := module.Build(toModuleFiles(files), module.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	sess := usher.NewSession(res.Prog)
	an, err := sess.Analyze(usher.ConfigUsherFull)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	run, err := an.Run(usher.RunOptions{})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(run.ShadowWarnings) != 3 {
		t.Fatalf("dynamic warnings = %d, want 3 (the planted bugs)", len(run.ShadowWarnings))
	}
}

func TestModuleProjectEdit(t *testing.T) {
	p := workload.DefaultModuleProject
	files := p.GenerateModules()
	edited, ok := workload.Edit(files, "lib_07", 2)
	if !ok {
		t.Fatal("Edit(lib_07) did not find the tweak line")
	}
	changed := 0
	for i := range files {
		if files[i].Source != edited[i].Source {
			changed++
			if files[i].Name != "lib_07" {
				t.Errorf("Edit touched %s", files[i].Name)
			}
		}
	}
	if changed != 1 {
		t.Fatalf("Edit changed %d modules, want 1", changed)
	}
	if _, ok := workload.Edit(files, "core", 2); ok {
		t.Error("Edit claimed success on a module without a tweak line")
	}
	if _, ok := workload.Edit(files, "nonesuch", 2); ok {
		t.Error("Edit claimed success on an unknown module")
	}

	// The transitive hashes must shift for exactly the edited lib, its
	// aggregator and main.
	g0, err := module.NewGraph(toModuleFiles(files))
	if err != nil {
		t.Fatal(err)
	}
	g1, err := module.NewGraph(toModuleFiles(edited))
	if err != nil {
		t.Fatal(err)
	}
	var dirty []string
	for _, m := range g1.Modules {
		if g0.ByName(m.Name).Hash != m.Hash {
			dirty = append(dirty, m.Name)
		}
	}
	want := map[string]bool{"lib_07": true, "agg_1": true, "main": true}
	if len(dirty) != len(want) {
		t.Fatalf("dirty modules = %v, want lib_07, agg_1, main", dirty)
	}
	for _, name := range dirty {
		if !want[name] {
			t.Errorf("unexpected dirty module %s", name)
		}
	}
	if g0.SetHash() == g1.SetHash() {
		t.Error("set hash unchanged by the edit")
	}
}
