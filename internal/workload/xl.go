package workload

import (
	"fmt"

	"github.com/valueflow/usher/internal/ir"
)

// XLProfile parameterizes the IR-level constraint-graph generator behind
// the million-constraint solver-scaling work. Unlike LargeProfiles —
// MiniC sources pushed through the whole frontend — XL programs are
// built directly as ir.Program: at 10x–100x the large profiles'
// constraint counts, parsing and lowering would dominate the very solve
// being measured, and the solver consumes IR, not source.
//
// The three structures are chosen to stress the three phases of the
// wave-parallel solver (internal/pointer/parallel.go):
//
//   - A function-pointer table with large fan-out: FPSites dispatchers
//     call through a table holding FPTargets targets, so on-the-fly
//     resolution wires FPSites×FPTargets (call, callee) pairs — each
//     with an argument and a return copy edge. This quadratic term is
//     what pushes the constraint count past a million, and the resulting
//     wide waves of word-level unions are the parallel phase's payload.
//   - Deep forwarding call chains: every new fact at a chain head
//     crosses ChainDepth parameter and return edges, maximizing wave
//     count (difference propagation and barrier overhead's worst case).
//   - Heap-allocation rings: each ring function allocates a two-cell
//     heap node, stores its pointer parameter into the node, reloads it
//     and forwards to the next function in the ring. The parameter /
//     field / load registers form copy cycles through memory — online
//     cycle elimination's target — and every function contributes a
//     distinct allocation site (load/store/field complex constraints).
//
// Generation is pure construction: deterministic, no randomness, no
// source text.
type XLProfile struct {
	Name string
	// FPTargets is the function-pointer table size; FPSites the number
	// of dispatch helpers calling through it.
	FPTargets int
	FPSites   int
	// ChainGroups deep forwarding chains of ChainDepth functions each.
	ChainGroups int
	ChainDepth  int
	// Rings allocation rings of RingLen functions each.
	Rings   int
	RingLen int
	// Cells is the number of address-seeded int globals; points-to sets
	// grow toward this bound.
	Cells int

	// The Undef* fields parameterize the resolve-stress undef-dispatch
	// structure used by the Γ-resolution scaling profiles
	// (ResolveProfiles). They are zero in the solver profiles, and a
	// zero UndefSites disables the structure entirely, so the solver
	// profiles' generated IR is byte-identical to what it was before
	// these fields existed.
	//
	// The structure is built to separate dense Γ resolution from the
	// summary-based resolver (internal/vfgsum): UndefSites site
	// functions each load an uninitialized stack cell — the ⊥ seed —
	// and pass the result to every one of UndefTargets worker functions
	// through direct calls; each worker body is a chain of UndefBodyLen
	// binops folding the parameter into itself, ending in a ret of the
	// chain tail. Dense resolution re-walks each worker body once per
	// calling context (sites × targets × body states); the condensed
	// graph collapses each body into one supernode, expanded exactly
	// once, leaving only the cheap per-context return checks.
	UndefSites   int
	UndefTargets int
	UndefBodyLen int
}

// XLProfiles is the solver-scaling XL suite. solver-xl is the
// million-constraint acceptance profile; the smaller siblings keep tests
// and -short runs fast while exercising identical structure.
var XLProfiles = []XLProfile{
	{Name: "solver-xl-small", FPTargets: 160, FPSites: 60, ChainGroups: 8, ChainDepth: 40, Rings: 10, RingLen: 12, Cells: 64},
	{Name: "solver-xl-medium", FPTargets: 400, FPSites: 200, ChainGroups: 20, ChainDepth: 80, Rings: 30, RingLen: 24, Cells: 128},
	{Name: "solver-xl", FPTargets: 1000, FPSites: 520, ChainGroups: 50, ChainDepth: 100, Rings: 100, RingLen: 50, Cells: 256},
}

// ResolveProfiles is the Γ-resolution scaling suite: mostly-empty
// solver structure (the pointer phase is not what is being measured)
// with a large undef-dispatch fan-out whose dense resolution cost is
// sites × targets × body length. resolve-xl is the acceptance profile;
// the small sibling keeps tests and -short runs fast.
var ResolveProfiles = []XLProfile{
	{Name: "resolve-xl-small", Cells: 16, UndefSites: 40, UndefTargets: 24, UndefBodyLen: 60},
	{Name: "resolve-xl", Cells: 32, UndefSites: 150, UndefTargets: 80, UndefBodyLen: 300},
}

// XLByName returns the named XL profile, searching the solver and
// resolve suites.
func XLByName(name string) (XLProfile, bool) {
	for _, ps := range [][]XLProfile{XLProfiles, ResolveProfiles} {
		for _, p := range ps {
			if p.Name == name {
				return p, true
			}
		}
	}
	return XLProfile{}, false
}

// BuildXL constructs the profile's program directly in IR.
func BuildXL(p XLProfile) *ir.Program {
	g := &xlGen{p: p, prog: ir.NewProgram()}
	g.globals()
	targets := g.fpTargets()
	fptab := g.fpTable(targets)
	dispatchers := g.dispatchers(fptab)
	chains := g.chains()
	rings := g.rings()
	usites := g.undefDispatch()
	g.root(dispatchers, chains, rings, usites)
	return g.prog
}

type xlGen struct {
	p     XLProfile
	prog  *ir.Program
	cells []*ir.Object
	slots []*ir.Object
}

// cellAddr returns the address of cell i (mod the cell count).
func (g *xlGen) cellAddr(i int) *ir.GlobalAddr {
	return &ir.GlobalAddr{Obj: g.cells[i%len(g.cells)]}
}

// newFunc creates a one-parameter, single-block function ready for
// instruction appends.
func (g *xlGen) newFunc(name string) (*ir.Function, *ir.Block, *ir.Register) {
	fn := &ir.Function{Name: name, HasBody: true}
	g.prog.AddFunc(fn)
	param := fn.NewReg("p")
	fn.Params = []*ir.Register{param}
	b := fn.NewBlock("entry")
	return fn, b, param
}

// globals creates the address-seeded cells and the pointer slots the
// function-pointer targets store their arguments into.
func (g *xlGen) globals() {
	g.cells = make([]*ir.Object, g.p.Cells)
	for i := range g.cells {
		o := g.prog.NewObject(fmt.Sprintf("cell_%d", i), 1, ir.ObjGlobal)
		o.ZeroInit = true
		g.prog.Globals = append(g.prog.Globals, o)
		g.cells[i] = o
	}
	nslots := g.p.Cells/4 + 1
	g.slots = make([]*ir.Object, nslots)
	for i := range g.slots {
		o := g.prog.NewObject(fmt.Sprintf("gp_%d", i), 1, ir.ObjGlobal)
		o.ZeroInit = true
		g.prog.Globals = append(g.prog.Globals, o)
		g.slots[i] = o
	}
}

// fpTargets emits the dispatch targets: each stores its argument into a
// pointer slot and returns a distinct cell's address, so every resolved
// (site, target) pair contributes one argument and one return copy edge
// and grows the dispatch sites' points-to sets.
func (g *xlGen) fpTargets() []*ir.Function {
	targets := make([]*ir.Function, g.p.FPTargets)
	for t := range targets {
		fn, b, param := g.newFunc(fmt.Sprintf("fptarget_%d", t))
		b.Append(ir.NewStore(&ir.GlobalAddr{Obj: g.slots[t%len(g.slots)]}, param))
		// Return the cell address through a private register: the return
		// copy edge is then distinct per (site, target) pair instead of
		// deduplicating through the shared global-address node.
		rv := fn.NewReg("rv")
		b.Append(ir.NewCopy(rv, g.cellAddr(t)))
		b.Append(ir.NewRet(rv))
		ir.ComputeCFG(fn)
		targets[t] = fn
	}
	return targets
}

// fpTable creates the table object (a single collapsed cell holding
// every target's address) and the initializer that fills it.
func (g *xlGen) fpTable(targets []*ir.Function) *ir.Object {
	fptab := g.prog.NewObject("fptab", 1, ir.ObjGlobal)
	fptab.ZeroInit = true
	g.prog.Globals = append(g.prog.Globals, fptab)
	fn := &ir.Function{Name: "fpinit", HasBody: true}
	g.prog.AddFunc(fn)
	b := fn.NewBlock("entry")
	for _, t := range targets {
		b.Append(ir.NewStore(&ir.GlobalAddr{Obj: fptab}, &ir.FuncValue{Fn: t}))
	}
	b.Append(ir.NewRet(nil))
	ir.ComputeCFG(fn)
	return fptab
}

// dispatchers emit the indirect-call sites: load a function pointer from
// the table, call it with the pointer parameter, return the result. Each
// site resolves against every table target.
func (g *xlGen) dispatchers(fptab *ir.Object) []*ir.Function {
	sites := make([]*ir.Function, g.p.FPSites)
	for s := range sites {
		fn, b, param := g.newFunc(fmt.Sprintf("dispatch_%d", s))
		f := fn.NewReg("f")
		b.Append(ir.NewLoad(f, &ir.GlobalAddr{Obj: fptab}))
		r := fn.NewReg("r")
		b.Append(ir.NewCall(r, f, []ir.Value{param}, ir.NotBuiltin))
		b.Append(ir.NewRet(r))
		ir.ComputeCFG(fn)
		sites[s] = fn
	}
	return sites
}

// chains emit deep linear forwarding chains; heads are returned for the
// root to feed.
func (g *xlGen) chains() []*ir.Function {
	heads := make([]*ir.Function, g.p.ChainGroups)
	for c := range heads {
		fns := make([]*ir.Function, g.p.ChainDepth)
		for k := range fns {
			fn, _, _ := g.newFunc(fmt.Sprintf("chain_%d_%d", c, k))
			fns[k] = fn
		}
		for k, fn := range fns {
			b := fn.Blocks[0]
			param := fn.Params[0]
			if k == len(fns)-1 {
				b.Append(ir.NewRet(param))
			} else {
				r := fn.NewReg("r")
				b.Append(ir.NewCall(r, &ir.FuncValue{Fn: fns[k+1]}, []ir.Value{param}, ir.NotBuiltin))
				b.Append(ir.NewRet(r))
			}
			ir.ComputeCFG(fn)
		}
		heads[c] = fns[0]
	}
	return heads
}

// rings emit heap-allocation rings: every member allocates its own
// two-cell heap node, stores the incoming pointer through a field,
// reloads it and forwards to the next member, closing a copy cycle that
// runs through memory.
func (g *xlGen) rings() []*ir.Function {
	heads := make([]*ir.Function, g.p.Rings)
	for r := range heads {
		fns := make([]*ir.Function, g.p.RingLen)
		for k := range fns {
			fn, _, _ := g.newFunc(fmt.Sprintf("ring_%d_%d", r, k))
			fns[k] = fn
		}
		for k, fn := range fns {
			b := fn.Blocks[0]
			param := fn.Params[0]
			obj := g.prog.NewObject(fmt.Sprintf("node_%d_%d", r, k), 2, ir.ObjHeap)
			obj.Fn = fn
			n := fn.NewReg("n")
			b.Append(ir.NewAlloc(n, obj))
			fa := fn.NewReg("fa")
			b.Append(ir.NewFieldAddr(fa, n, 1))
			b.Append(ir.NewStore(fa, param))
			l := fn.NewReg("l")
			b.Append(ir.NewLoad(l, fa))
			res := fn.NewReg("res")
			b.Append(ir.NewCall(res, &ir.FuncValue{Fn: fns[(k+1)%len(fns)]}, []ir.Value{l}, ir.NotBuiltin))
			b.Append(ir.NewRet(res))
			ir.ComputeCFG(fn)
		}
		heads[r] = fns[0]
	}
	return heads
}

// undefDispatch emits the resolve-stress structure (see the Undef*
// field docs): UndefTargets binop-chain workers and UndefSites site
// functions that load an uninitialized stack cell and hand the ⊥ value
// to every worker. Returns the site functions for the root to call;
// nil (and no IR at all) when the profile does not request it.
func (g *xlGen) undefDispatch() []*ir.Function {
	if g.p.UndefSites == 0 {
		return nil
	}
	targets := make([]*ir.Function, g.p.UndefTargets)
	for t := range targets {
		fn, b, param := g.newFunc(fmt.Sprintf("utarget_%d", t))
		cur := ir.Value(param)
		for k := 0; k < g.p.UndefBodyLen; k++ {
			r := fn.NewReg(fmt.Sprintf("b%d", k))
			b.Append(ir.NewBinOp(r, ir.OpAdd, cur, cur))
			cur = r
		}
		b.Append(ir.NewRet(cur))
		ir.ComputeCFG(fn)
		targets[t] = fn
	}
	sites := make([]*ir.Function, g.p.UndefSites)
	for s := range sites {
		fn, b, _ := g.newFunc(fmt.Sprintf("usite_%d", s))
		// The ⊥ seed: an uninitialized (non-ZeroInit) stack cell read
		// before any store. In the full graph the load's mu reaches the
		// alloc's undefined initial version; in the top-level-only graph
		// every load is unknown. Both variants seed ⊥ here.
		obj := g.prog.NewObject(fmt.Sprintf("ucell_%d", s), 1, ir.ObjStack)
		obj.Fn = fn
		addr := fn.NewReg("ua")
		b.Append(ir.NewAlloc(addr, obj))
		x := fn.NewReg("ux")
		b.Append(ir.NewLoad(x, addr))
		for _, t := range targets {
			r := fn.NewReg("ur")
			b.Append(ir.NewCall(r, &ir.FuncValue{Fn: t}, []ir.Value{x}, ir.NotBuiltin))
		}
		b.Append(ir.NewRet(nil))
		ir.ComputeCFG(fn)
		sites[s] = fn
	}
	return sites
}

// root wires everything reachable from one entry function, feeding each
// structure a spread of distinct cell addresses.
func (g *xlGen) root(dispatchers, chains, rings, usites []*ir.Function) {
	fn := &ir.Function{Name: "main", HasBody: true}
	g.prog.AddFunc(fn)
	b := fn.NewBlock("entry")
	init := g.prog.FuncByName("fpinit")
	b.Append(ir.NewCall(nil, &ir.FuncValue{Fn: init}, nil, ir.NotBuiltin))
	feed := func(fns []*ir.Function, stride int) {
		for i, f := range fns {
			r := fn.NewReg("r")
			b.Append(ir.NewCall(r, &ir.FuncValue{Fn: f}, []ir.Value{g.cellAddr(i * stride)}, ir.NotBuiltin))
		}
	}
	feed(dispatchers, 1)
	feed(chains, 3)
	feed(rings, 7)
	feed(usites, 11)
	b.Append(ir.NewRet(nil))
	ir.ComputeCFG(fn)
}
