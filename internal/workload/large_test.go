package workload_test

import (
	"testing"

	"github.com/valueflow/usher"
	"github.com/valueflow/usher/internal/workload"
)

func TestLargeDeterministic(t *testing.T) {
	for _, p := range workload.LargeProfiles {
		a := workload.GenerateLarge(p)
		b := workload.GenerateLarge(p)
		if a != b {
			t.Fatalf("%s: generation is not deterministic", p.Name)
		}
	}
}

func TestLargeByName(t *testing.T) {
	p, ok := workload.LargeByName("solver-medium")
	if !ok || p.Seed != 1002 {
		t.Fatalf("LargeByName(solver-medium) = %+v, %v", p, ok)
	}
	if _, ok := workload.LargeByName("nonesuch"); ok {
		t.Error("lookup of unknown large profile succeeded")
	}
}

// TestLargeProfilesCompileAndRunClean compiles every solver-scaling
// profile and runs the two smaller ones natively: the generated programs
// initialize every allocation before use, so the ground-truth oracle must
// stay silent. solver-large is compile-checked only — its job is solver
// scaling, and a full native run is disproportionately slow for a test.
func TestLargeProfilesCompileAndRunClean(t *testing.T) {
	for _, p := range workload.LargeProfiles {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			src := workload.GenerateLarge(p)
			prog, err := usher.Compile(p.Name+".c", src)
			if err != nil {
				t.Fatalf("compile: %v\n--- head of source ---\n%s", err, head(src, 40))
			}
			if p.Name == "solver-large" {
				return
			}
			res, err := usher.RunNative(prog, usher.RunOptions{})
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(res.OracleWarnings) != 0 {
				t.Fatalf("clean profile has oracle warnings: %v", res.OracleWarnings)
			}
		})
	}
}
